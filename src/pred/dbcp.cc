#include "pred/dbcp.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

Dbcp::Dbcp(const DbcpConfig &config)
    : config_(config), history_(config.l1Sets, config.lineBytes)
{
    if (config_.tableEntries != 0) {
        std::uint64_t sets = std::max<std::uint64_t>(
            1, config_.tableEntries / config_.tableAssoc);
        if (!isPowerOf2(sets))
            sets = ceilPowerOf2(sets) / 2; // round down to a power of 2
        sets = std::max<std::uint64_t>(sets, 1);
        tableSets_ = sets;
        table_.resize(tableSets_ * config_.tableAssoc);
    }
}

std::uint32_t
Dbcp::setOf(Addr addr) const
{
    const unsigned line_bits = floorLog2(config_.lineBytes);
    return static_cast<std::uint32_t>((addr >> line_bits) &
                                      (config_.l1Sets - 1));
}

Addr
Dbcp::blockOf(Addr addr) const
{
    return addr & ~static_cast<Addr>(config_.lineBytes - 1);
}

void
Dbcp::record(std::uint64_t key, Addr replacement, Addr victim)
{
    recorded_++;
    if (config_.tableEntries == 0) {
        auto [it, inserted] = oracle_.try_emplace(key);
        Payload &p = it->second;
        if (inserted) {
            p.replacement = replacement;
            p.victim = victim;
            p.confidence = config_.confidenceInit;
        } else if (p.replacement == replacement) {
            p.confidence =
                std::min<std::uint8_t>(config_.confidenceMax,
                                       p.confidence + 1);
            reinforced_++;
        } else if (p.confidence > 0) {
            p.confidence--;
            conflicts_++;
        } else {
            p.replacement = replacement;
            p.victim = victim;
            p.confidence = config_.confidenceInit;
            conflicts_++;
        }
        return;
    }

    // Finite set-associative table with LRU replacement.
    const std::uint64_t set = key & (tableSets_ - 1);
    TableLine *base = &table_[set * config_.tableAssoc];
    TableLine *victim_line = nullptr;
    for (std::uint32_t w = 0; w < config_.tableAssoc; w++) {
        TableLine &line = base[w];
        if (line.valid && line.key == key) {
            line.lastUse = ++stamp_;
            if (line.payload.replacement == replacement) {
                line.payload.confidence =
                    std::min<std::uint8_t>(config_.confidenceMax,
                                           line.payload.confidence + 1);
                reinforced_++;
            } else if (line.payload.confidence > 0) {
                line.payload.confidence--;
                conflicts_++;
            } else {
                line.payload.replacement = replacement;
                line.payload.victim = victim;
                line.payload.confidence = config_.confidenceInit;
                conflicts_++;
            }
            return;
        }
        if (!line.valid) {
            if (!victim_line || victim_line->valid)
                victim_line = &line;
        } else if (!victim_line ||
                   (victim_line->valid &&
                    line.lastUse < victim_line->lastUse)) {
            victim_line = &line;
        }
    }
    ltc_assert(victim_line, "no victim line in DBCP table set");
    victim_line->valid = true;
    victim_line->key = key;
    victim_line->payload.replacement = replacement;
    victim_line->payload.victim = victim;
    victim_line->payload.confidence = config_.confidenceInit;
    victim_line->lastUse = ++stamp_;
}

const Dbcp::Payload *
Dbcp::lookup(std::uint64_t key)
{
    lookups_++;
    if (config_.tableEntries == 0) {
        auto it = oracle_.find(key);
        if (it == oracle_.end())
            return nullptr;
        matches_++;
        return &it->second;
    }
    const std::uint64_t set = key & (tableSets_ - 1);
    TableLine *base = &table_[set * config_.tableAssoc];
    for (std::uint32_t w = 0; w < config_.tableAssoc; w++) {
        TableLine &line = base[w];
        if (line.valid && line.key == key) {
            line.lastUse = ++stamp_;
            matches_++;
            return &line.payload;
        }
    }
    return nullptr;
}

void
Dbcp::observe(const MemRef &ref, const HierOutcome &out)
{
    const std::uint32_t set = out.l1Set;

    // A demand miss that evicted a block defines a last-touch
    // signature: key sampled BEFORE the miss PC enters the window.
    if (!out.l1Hit() && out.l1Evicted) {
        const std::uint64_t key = history_.signatureKey(set);
        record(key, blockOf(ref.addr), out.l1VictimAddr);
        history_.closeWindow(set, out.l1VictimAddr);
    }

    history_.recordAccess(set, ref.pc);

    const std::uint64_t lookup_key = history_.signatureKey(set);
    if (const Payload *p = lookup(lookup_key)) {
        if (p->confidence >= config_.confidenceThreshold) {
            predictions_++;
            PrefetchRequest req;
            req.target = p->replacement;
            req.predictedVictim = p->victim;
            req.intoL1 = true;
            enqueue(req);
        } else {
            lowConfidence_++;
        }
    }
}

void
Dbcp::onPrefetchEviction(Addr victim_addr, Addr incoming_addr)
{
    // The prefetch fill closed this set's window early; keep the
    // history aligned with what recording saw (see history_table.hh).
    history_.closeWindow(setOf(incoming_addr), victim_addr);
}

std::string
Dbcp::name() const
{
    if (config_.tableEntries == 0)
        return "dbcp-unlimited";
    return "dbcp-" +
        std::to_string(config_.tableEntries * config_.entryBytes /
                       1024) +
        "KB";
}

void
Dbcp::exportStats(StatSet &set) const
{
    set.set("recorded", static_cast<double>(recorded_));
    set.set("reinforced", static_cast<double>(reinforced_));
    set.set("conflicts", static_cast<double>(conflicts_));
    set.set("lookups", static_cast<double>(lookups_));
    set.set("matches", static_cast<double>(matches_));
    set.set("predictions", static_cast<double>(predictions_));
    set.set("low_confidence", static_cast<double>(lowConfidence_));
    set.set("stored_signatures",
            static_cast<double>(storedSignatures()));
}

std::uint64_t
Dbcp::storedSignatures() const
{
    if (config_.tableEntries == 0)
        return oracle_.size();
    std::uint64_t n = 0;
    for (const TableLine &line : table_)
        n += line.valid ? 1 : 0;
    return n;
}

void
Dbcp::clear()
{
    oracle_.clear();
    for (TableLine &line : table_)
        line.valid = false;
    history_.clear();
}

} // namespace ltc
