#include "pred/history_table.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

HistoryTable::HistoryTable(std::uint32_t num_sets,
                           std::uint32_t line_bytes)
    : entries_(num_sets), lineBytes_(line_bytes)
{
    ltc_assert(num_sets > 0, "history table needs at least one set");
    ltc_assert(isPowerOf2(line_bytes), "line size must be power of two");
}

void
HistoryTable::recordAccess(std::uint32_t set, Addr pc)
{
    ltc_assert(set < entries_.size(), "history set out of range: ", set);
    entries_[set].trace.update(pc);
}

std::uint64_t
HistoryTable::signatureKey(std::uint32_t set) const
{
    ltc_assert(set < entries_.size(), "history set out of range: ", set);
    const Entry &e = entries_[set];
    std::uint64_t key = e.trace.value();
    key = hashCombine(key, e.evicted[0]);
    key = hashCombine(key, e.evicted[1]);
    // Fold the set in so identical traces in different sets do not
    // alias to the same signature.
    key = hashCombine(key, set);
    return key;
}

void
HistoryTable::closeWindow(std::uint32_t set, Addr victim_block)
{
    ltc_assert(set < entries_.size(), "history set out of range: ", set);
    Entry &e = entries_[set];
    e.trace.clear();
    e.evicted[1] = e.evicted[0];
    e.evicted[0] = victim_block & ~static_cast<Addr>(lineBytes_ - 1);
}

void
HistoryTable::clear()
{
    for (Entry &e : entries_) {
        e.trace.clear();
        e.evicted[0] = invalidAddr;
        e.evicted[1] = invalidAddr;
    }
}

std::uint64_t
HistoryTable::storageBits(std::uint32_t tag_bits) const
{
    constexpr std::uint64_t trace_bits = 23; // Section 5.6
    return entries_.size() * (trace_bits + 2ull * tag_bits);
}

} // namespace ltc
