/**
 * @file
 * Common prefetcher interface.
 *
 * Engines drive predictors with one observe() call per committed
 * memory reference (after the functional cache access) and then drain
 * the prefetch requests the predictor generated. Two request flavours
 * exist:
 *
 *  - last-touch prefetches (DBCP, LT-cords) that go directly into
 *    L1D replacing a predicted dead block, and
 *  - conventional prefetches (GHB, stride) that install into L2 only,
 *    avoiding L1 pollution at the cost of leaving L2 latency exposed.
 */

#ifndef LTC_PRED_PREFETCHER_HH
#define LTC_PRED_PREFETCHER_HH

#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace ltc
{

/** One prefetch the predictor wants issued. */
struct PrefetchRequest
{
    /** Block (any address within it) to fetch. */
    Addr target = 0;
    /** Predicted dead block to replace in L1D (invalidAddr = none). */
    Addr predictedVictim = invalidAddr;
    /** Fill L1D directly (last-touch style) or stop at L2. */
    bool intoL1 = false;
};

/** Feedback given to the predictor about an issued prefetch. */
struct PrefetchFeedback
{
    Addr target = 0;
    /**
     * True when the prefetch was wasted: the block was already
     * resident, or was evicted again without ever being referenced.
     * False when a demand access consumed the prefetched block.
     */
    bool useless = false;
};

class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one committed memory reference and the outcome of its
     * cache access. May enqueue prefetch requests.
     */
    virtual void observe(const MemRef &ref, const HierOutcome &out) = 0;

    /**
     * A prefetch fill evicted a valid L1D block. Last-touch
     * predictors must know this to keep their history windows aligned
     * between recording (evictions at demand fills) and prediction
     * (evictions at prefetch fills).
     */
    virtual void
    onPrefetchEviction(Addr victim_addr, Addr incoming_addr)
    {
        (void)victim_addr;
        (void)incoming_addr;
    }

    /** Feedback for an issued request (useless prefetch etc.). */
    virtual void feedback(const PrefetchFeedback &fb) { (void)fb; }

    /**
     * Feedback for a batch of issued requests in event order. The
     * engines buffer the outcome events of each reference and flush
     * them in one call, so predictors pay one virtual dispatch per
     * drain instead of one per event; the default simply loops over
     * feedback(), which overrides must match event-for-event.
     */
    virtual void
    feedbackBatch(const PrefetchFeedback *fbs, std::size_t n)
    {
        for (std::size_t i = 0; i < n; i++)
            feedback(fbs[i]);
    }

    /**
     * Advance the predictor's notion of time (cycle engine). Trace
     * engines never call this; predictors that model internal
     * latencies (LT-cords signature streaming) use it.
     */
    virtual void setNow(Cycle now) { (void)now; }

    /**
     * Route subsequent observations to @p tenant (multi-programmed
     * runs, Section 5.5). Predictors with tenant-aware structures
     * (LT-cords' partitioned signature cache and per-tenant sequence
     * storage attribution) override this; the default ignores the
     * call, so every predictor composes with the multi-tenant engine
     * loop. Cold path: called once per scheduling quantum.
     */
    virtual void selectTenant(std::uint32_t tenant) { (void)tenant; }

    /**
     * Move the pending requests into @p out, replacing its contents
     * (the queue is left empty). The engines call this once per
     * reference with a reusable buffer: the two vectors swap storage,
     * so the steady state allocates nothing — unlike drainRequests(),
     * which returns a fresh vector every call.
     */
    void
    drainRequestsInto(std::vector<PrefetchRequest> &out)
    {
        out.clear();
        std::swap(out, requests_);
    }

    /**
     * Move the pending requests out (clears the queue). Convenience
     * wrapper over drainRequestsInto() for tests and tools; hot loops
     * should pass a reusable buffer instead.
     */
    std::vector<PrefetchRequest>
    drainRequests()
    {
        std::vector<PrefetchRequest> out;
        drainRequestsInto(out);
        return out;
    }

    bool hasRequests() const { return !requests_.empty(); }

    virtual std::string name() const = 0;

    /** Export predictor statistics. */
    virtual void exportStats(StatSet &set) const { (void)set; }

    /**
     * LTC_CHECK the predictor's internal structural invariants
     * (LT-cords audits its sequence storage and streaming state).
     * Cold path: engines call this at batch boundaries when auditing
     * is enabled (util/check.hh). Default: nothing to audit.
     */
    virtual void auditInvariants() const {}

    /**
     * Off-chip traffic this predictor generated for its own metadata
     * since the last call (bytes): {writes, reads}. LT-cords overrides
     * this to report sequence-creation and sequence-fetch traffic.
     */
    virtual std::pair<std::uint64_t, std::uint64_t>
    drainMetaTraffic()
    {
        return {0, 0};
    }

  protected:
    void
    enqueue(const PrefetchRequest &req)
    {
        requests_.push_back(req);
    }

  private:
    std::vector<PrefetchRequest> requests_;
};

/** No-op predictor for baseline runs. */
class NullPrefetcher : public Prefetcher
{
  public:
    void observe(const MemRef &, const HierOutcome &) override {}
    std::string name() const override { return "none"; }
};

} // namespace ltc

#endif // LTC_PRED_PREFETCHER_HH
