#include "pred/stride.hh"

#include "util/bitops.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace ltc
{

StridePrefetcher::StridePrefetcher(const StrideConfig &config)
    : config_(config)
{
    ltc_assert(isPowerOf2(config_.entries),
               "stride table size must be a power of two");
    table_.resize(config_.entries);
}

void
StridePrefetcher::observe(const MemRef &ref, const HierOutcome &out)
{
    if (out.l1Hit())
        return;

    Entry &e = table_[mix64(ref.pc) & (config_.entries - 1)];
    if (!e.valid || e.pcTag != ref.pc) {
        e.valid = true;
        e.pcTag = ref.pc;
        e.lastAddr = ref.addr;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    const std::int64_t stride = static_cast<std::int64_t>(ref.addr) -
        static_cast<std::int64_t>(e.lastAddr);
    e.lastAddr = ref.addr;
    if (stride == 0)
        return;

    if (stride == e.stride) {
        if (e.confidence < 3)
            e.confidence++;
    } else {
        if (e.confidence > 0) {
            e.confidence--;
        } else {
            e.stride = stride;
        }
        return;
    }

    if (e.confidence >= 2) {
        armed_++;
        Addr target = ref.addr;
        for (std::uint32_t i = 0; i < config_.degree; i++) {
            target += static_cast<Addr>(e.stride);
            PrefetchRequest req;
            req.target = target;
            req.intoL1 = false;
            enqueue(req);
            issued_++;
        }
    }
}

void
StridePrefetcher::exportStats(StatSet &set) const
{
    set.set("armed", static_cast<double>(armed_));
    set.set("prefetches_issued", static_cast<double>(issued_));
}

void
StridePrefetcher::clear()
{
    table_.assign(config_.entries, Entry{});
}

} // namespace ltc
