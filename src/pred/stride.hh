/**
 * @file
 * PC-indexed stride prefetcher (reference prediction table).
 *
 * A sanity baseline subsumed by GHB PC/DC: each PC's miss stream is
 * checked for a constant stride; two consecutive confirmations arm
 * the entry and prefetches of the next `degree` strided blocks are
 * issued into L2.
 */

#ifndef LTC_PRED_STRIDE_HH
#define LTC_PRED_STRIDE_HH

#include <cstdint>
#include <vector>

#include "pred/prefetcher.hh"

namespace ltc
{

/** Stride prefetcher configuration. */
struct StrideConfig
{
    std::uint32_t entries = 256;
    std::uint32_t degree = 2;
    std::uint32_t lineBytes = 64;
};

class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StrideConfig &config);

    void observe(const MemRef &ref, const HierOutcome &out) override;
    std::string name() const override { return "stride"; }
    void exportStats(StatSet &set) const override;

    void clear();

  private:
    struct Entry
    {
        Addr pcTag = invalidAddr;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    StrideConfig config_;
    std::vector<Entry> table_;
    std::uint64_t issued_ = 0;
    std::uint64_t armed_ = 0;
};

} // namespace ltc

#endif // LTC_PRED_STRIDE_HH
