/**
 * @file
 * Last-touch history table shared by DBCP and LT-cords (Section 4.1).
 *
 * Organised like the L1D tag array: one entry per L1D set holding the
 * running PC-trace hash of committed memory instructions that touched
 * the set, plus the tags of the last two blocks evicted from the set.
 *
 * Window discipline (this is the part that makes recording and
 * prediction line up):
 *
 *  - Every committed access folds its PC into the set's trace.
 *  - The *signature key* of a set is hash(trace, prev-evicted tags).
 *    It is sampled in two places:
 *      (a) at a demand miss, BEFORE the miss PC is folded in: this is
 *          the key recorded with the eviction (it captures the window
 *          ending at the last pre-miss access to the set — the last
 *          touch);
 *      (b) after every access's PC is folded in: this is the lookup
 *          key, which matches (a) exactly when the recorded access
 *          sequence recurs.
 *  - Every eviction (demand or prefetch) closes the window: the trace
 *    resets and the victim tag shifts into the evicted-tag history.
 *    Under prediction, the prefetch fill evicts the victim at the same
 *    access position where the demand fill closed the window during
 *    recording (the replacement block maps to the victim's own set),
 *    so window contents stay identical across covered misses.
 */

#ifndef LTC_PRED_HISTORY_TABLE_HH
#define LTC_PRED_HISTORY_TABLE_HH

#include <cstdint>
#include <vector>

#include "util/hash.hh"
#include "util/types.hh"

namespace ltc
{

/** A last-touch signature key plus the prediction payload. */
struct LastTouchSignature
{
    /** Hashed (trace, evicted-tag history) key. */
    std::uint64_t key = 0;
    /** Block address the victim is replaced by (prefetch target). */
    Addr replacement = invalidAddr;
    /** Block address predicted dead at signature match. */
    Addr victim = invalidAddr;
};

class HistoryTable
{
  public:
    /**
     * @param num_sets   L1D set count (table mirrors the tag array).
     * @param line_bytes L1D line size, for block alignment.
     */
    HistoryTable(std::uint32_t num_sets, std::uint32_t line_bytes);

    /** Fold a committed access's PC into its set's trace. */
    void recordAccess(std::uint32_t set, Addr pc);

    /**
     * Current signature key of @p set: hash of the running trace and
     * the last two evicted tags.
     */
    std::uint64_t signatureKey(std::uint32_t set) const;

    /**
     * Close the window of @p set: reset its trace and shift
     * @p victim_block into the evicted-tag history. Call on every
     * eviction, demand or prefetch.
     */
    void closeWindow(std::uint32_t set, Addr victim_block);

    /** Forget everything (context-switch loss experiments). */
    void clear();

    std::uint32_t numSets() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

    /**
     * On-chip storage estimate in bits: per set, a trace hash
     * (23 bits per Section 5.6) plus two tags.
     */
    std::uint64_t storageBits(std::uint32_t tag_bits = 20) const;

  private:
    struct Entry
    {
        TraceHash trace;
        Addr evicted[2] = {invalidAddr, invalidAddr};
    };

    std::vector<Entry> entries_;
    std::uint32_t lineBytes_;
};

} // namespace ltc

#endif // LTC_PRED_HISTORY_TABLE_HH
