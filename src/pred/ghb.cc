#include "pred/ghb.hh"

#include "util/bitops.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace ltc
{

Ghb::Ghb(const GhbConfig &config) : config_(config)
{
    ltc_assert(config_.ghbEntries > 1, "GHB needs >= 2 entries");
    ltc_assert(isPowerOf2(config_.indexEntries),
               "GHB index size must be a power of two");
    ghb_.resize(config_.ghbEntries);
    index_.resize(config_.indexEntries);
}

bool
Ghb::serialLive(std::uint64_t serial) const
{
    // Serial s lives in the buffer until ghbEntries newer insertions
    // overwrite its slot.
    return serial != 0 && serial + config_.ghbEntries >= nextSerial_ &&
        serial < nextSerial_;
}

void
Ghb::insertMiss(Addr pc, Addr block_addr)
{
    const std::uint64_t serial = nextSerial_++;
    GhbEntry &entry = ghb_[serial % config_.ghbEntries];

    IndexEntry &idx =
        index_[mix64(pc) & (config_.indexEntries - 1)];

    entry.missAddr = block_addr;
    entry.hasPrev = idx.valid && idx.pcTag == pc &&
        serialLive(idx.headSerial);
    entry.prevSerial = entry.hasPrev ? idx.headSerial : 0;

    idx.valid = true;
    idx.pcTag = pc;
    idx.headSerial = serial;
}

std::vector<Addr>
Ghb::chainFor(Addr pc) const
{
    std::vector<Addr> history; // newest first
    const IndexEntry &idx =
        index_[mix64(pc) & (config_.indexEntries - 1)];
    if (!idx.valid || idx.pcTag != pc)
        return history;

    std::uint64_t serial = idx.headSerial;
    while (serialLive(serial) && history.size() < config_.maxChain) {
        const GhbEntry &entry = ghb_[serial % config_.ghbEntries];
        history.push_back(entry.missAddr);
        if (!entry.hasPrev)
            break;
        serial = entry.prevSerial;
    }
    return history;
}

void
Ghb::observe(const MemRef &ref, const HierOutcome &out)
{
    if (out.l1Hit())
        return;
    misses_++;

    const Addr block =
        ref.addr & ~static_cast<Addr>(config_.lineBytes - 1);
    insertMiss(ref.pc, block);

    // history[0] is the current miss; deltas[i] = history[i] -
    // history[i+1] (newest delta first).
    const std::vector<Addr> history = chainFor(ref.pc);
    if (history.size() < 4)
        return; // need two deltas to correlate plus context

    std::vector<std::int64_t> deltas;
    deltas.reserve(history.size() - 1);
    for (std::size_t i = 0; i + 1 < history.size(); i++) {
        deltas.push_back(static_cast<std::int64_t>(history[i]) -
                         static_cast<std::int64_t>(history[i + 1]));
    }

    // Search the older delta stream for the most recent delta pair.
    const std::int64_t d1 = deltas[0];
    const std::int64_t d2 = deltas[1];
    std::size_t match = deltas.size();
    for (std::size_t i = 2; i + 1 < deltas.size(); i++) {
        if (deltas[i] == d1 && deltas[i + 1] == d2) {
            match = i;
            break;
        }
    }
    if (match == deltas.size())
        return;
    matches_++;

    // Replay the deltas that followed the matched pair (remember:
    // deltas are newest-first, so "followed in time" = lower index).
    // If fewer than `depth` deltas follow the match, the pattern is
    // replayed cyclically with period `match` -- for a constant
    // stride this extends the two follow-on deltas to the full
    // prefetch depth, as PC/DC implementations do.
    Addr target = block;
    std::uint32_t issued = 0;
    std::size_t i = match;
    while (issued < config_.depth) {
        if (i == 0)
            i = match;
        i--;
        target += static_cast<Addr>(deltas[i]);
        PrefetchRequest req;
        req.target = target;
        req.intoL1 = false; // install into L2 only
        enqueue(req);
        issued++;
        issued_++;
    }
}

void
Ghb::exportStats(StatSet &set) const
{
    set.set("misses_observed", static_cast<double>(misses_));
    set.set("delta_matches", static_cast<double>(matches_));
    set.set("prefetches_issued", static_cast<double>(issued_));
}

void
Ghb::clear()
{
    ghb_.assign(config_.ghbEntries, GhbEntry{});
    index_.assign(config_.indexEntries, IndexEntry{});
    nextSerial_ = 1;
}

} // namespace ltc
