/**
 * @file
 * Global History Buffer PC/DC prefetcher (Nesbit & Smith, HPCA'04).
 *
 * The delta-correlating baseline of the paper (subsumes stride
 * prefetching). The GHB is a circular buffer of L1D miss addresses;
 * each entry links to the previous miss by the same PC. On a miss,
 * the PC's chain yields its recent miss-address history; the two most
 * recent deltas are searched for in the older delta stream (delta
 * correlation) and, on a match, the deltas that followed the match
 * are replayed from the current miss address to generate prefetches.
 *
 * Configuration follows the paper: 256-entry index table, 256-entry
 * GHB, prefetch depth 4. GHB prefetches install into L2 only — unlike
 * last-touch prefetchers it has no dead-block information, so filling
 * L1D directly would pollute it (Section 5.7).
 */

#ifndef LTC_PRED_GHB_HH
#define LTC_PRED_GHB_HH

#include <cstdint>
#include <vector>

#include "pred/prefetcher.hh"

namespace ltc
{

/** GHB PC/DC configuration. */
struct GhbConfig
{
    std::uint32_t indexEntries = 256;
    std::uint32_t ghbEntries = 256;
    /** Prefetch depth after a delta-pair match. */
    std::uint32_t depth = 4;
    /** Maximum chain length walked when building the history. */
    std::uint32_t maxChain = 64;
    std::uint32_t lineBytes = 64;
};

class Ghb : public Prefetcher
{
  public:
    explicit Ghb(const GhbConfig &config);

    void observe(const MemRef &ref, const HierOutcome &out) override;
    std::string name() const override { return "ghb-pc/dc"; }
    void exportStats(StatSet &set) const override;

    void clear();

  private:
    struct GhbEntry
    {
        Addr missAddr = 0;
        /** Serial number of the previous miss by the same PC. */
        std::uint64_t prevSerial = 0;
        bool hasPrev = false;
    };

    struct IndexEntry
    {
        Addr pcTag = invalidAddr;
        std::uint64_t headSerial = 0;
        bool valid = false;
    };

    bool serialLive(std::uint64_t serial) const;
    void insertMiss(Addr pc, Addr block_addr);
    std::vector<Addr> chainFor(Addr pc) const;

    GhbConfig config_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    /** Serial number of the next GHB insertion (1-based). */
    std::uint64_t nextSerial_ = 1;

    std::uint64_t misses_ = 0;
    std::uint64_t matches_ = 0;
    std::uint64_t issued_ = 0;
};

} // namespace ltc

#endif // LTC_PRED_GHB_HH
