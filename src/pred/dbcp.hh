/**
 * @file
 * Dead-Block Correlating Prefetcher (Lai & Falsafi, ISCA'01), the
 * on-chip-table baseline of the paper (Section 2).
 *
 * DBCP correlates each last touch of a cache block with the address
 * of the block that replaces it. The correlation table maps a
 * last-touch signature key (PC-trace hash + evicted-tag history, see
 * pred/history_table.hh) to the replacement block address and the
 * predicted-dead victim. On a signature match with saturated
 * confidence, the replacement block is prefetched directly into L1D,
 * replacing the victim.
 *
 * Two table flavours:
 *  - unlimited: an "oracle" used as the coverage upper bound
 *    (Figs. 4 and 8 normalise against it), and
 *  - finite: a set-associative LRU table of the configured capacity
 *    (2MB in the paper's realistic configuration, Table 1).
 */

#ifndef LTC_PRED_DBCP_HH
#define LTC_PRED_DBCP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pred/history_table.hh"
#include "pred/prefetcher.hh"

namespace ltc
{

/** DBCP configuration. */
struct DbcpConfig
{
    /** Correlation table entries; 0 = unlimited ("oracle"). */
    std::uint64_t tableEntries = 0;
    /** Associativity of the finite table. */
    std::uint32_t tableAssoc = 8;
    /** Confidence counter initial value (Section 4.4 uses 2). */
    std::uint8_t confidenceInit = 2;
    /** Minimum confidence to act on a match. */
    std::uint8_t confidenceThreshold = 2;
    /** Saturation value of the 2-bit counter. */
    std::uint8_t confidenceMax = 3;

    /** L1D geometry (for the history table and set mapping). */
    std::uint32_t l1Sets = 512;
    std::uint32_t lineBytes = 64;

    /** Bytes per correlation-table entry, for capacity conversions. */
    std::uint32_t entryBytes = 8;

    /** Entry count for an on-chip table of @p bytes capacity. */
    static std::uint64_t
    entriesForBytes(std::uint64_t bytes, std::uint32_t entry_bytes = 8)
    {
        return bytes / entry_bytes;
    }
};

class Dbcp : public Prefetcher
{
  public:
    explicit Dbcp(const DbcpConfig &config);

    void observe(const MemRef &ref, const HierOutcome &out) override;
    void onPrefetchEviction(Addr victim_addr,
                            Addr incoming_addr) override;
    std::string name() const override;
    void exportStats(StatSet &set) const override;

    /** Signatures currently stored (distinct keys). */
    std::uint64_t storedSignatures() const;

    /** Drop all learned state. */
    void clear();

    const DbcpConfig &config() const { return config_; }

  private:
    struct Payload
    {
        Addr replacement = invalidAddr;
        Addr victim = invalidAddr;
        std::uint8_t confidence = 0;
    };

    /** Finite-table line. */
    struct TableLine
    {
        std::uint64_t key = 0;
        Payload payload;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t setOf(Addr addr) const;
    Addr blockOf(Addr addr) const;

    void record(std::uint64_t key, Addr replacement, Addr victim);
    const Payload *lookup(std::uint64_t key);

    DbcpConfig config_;
    HistoryTable history_;

    // Unlimited table.
    std::unordered_map<std::uint64_t, Payload> oracle_;
    // Finite table (used when tableEntries != 0).
    std::vector<TableLine> table_;
    std::uint64_t tableSets_ = 0;
    std::uint64_t stamp_ = 0;

    // Statistics.
    std::uint64_t recorded_ = 0;
    std::uint64_t reinforced_ = 0;
    std::uint64_t conflicts_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t matches_ = 0;
    std::uint64_t predictions_ = 0;
    std::uint64_t lowConfidence_ = 0;
};

} // namespace ltc

#endif // LTC_PRED_DBCP_HH
