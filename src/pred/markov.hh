/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA'97), reference [11] of
 * the paper — the classic address-correlating design that DBCP and
 * LT-cords descend from.
 *
 * A finite table maps each miss block address to the block addresses
 * that followed it in the miss stream (first-order Markov chain with
 * a small successor list, most-recently-confirmed first). On a miss,
 * the current block's successors are prefetched into L2.
 *
 * Included as an extra baseline: it correlates miss->miss (one step
 * of lookahead, no last-touch timeliness) and its table faces the
 * same footprint-proportional storage problem as DBCP, which is what
 * motivates LT-cords' off-chip sequence storage.
 */

#ifndef LTC_PRED_MARKOV_HH
#define LTC_PRED_MARKOV_HH

#include <cstdint>
#include <vector>

#include "pred/prefetcher.hh"

namespace ltc
{

/** Markov prefetcher configuration. */
struct MarkovConfig
{
    /** Table entries (miss addresses tracked); power of two. */
    std::uint32_t entries = 64 * 1024;
    /** Successors kept per entry. */
    std::uint32_t ways = 2;
    /** Successors prefetched on a hit. */
    std::uint32_t degree = 2;
    std::uint32_t lineBytes = 64;
};

class MarkovPrefetcher : public Prefetcher
{
  public:
    explicit MarkovPrefetcher(const MarkovConfig &config);

    void observe(const MemRef &ref, const HierOutcome &out) override;
    std::string name() const override { return "markov"; }
    void exportStats(StatSet &set) const override;

    void clear();

    /** On-chip bytes at ~8B per (tag, successor) pair. */
    std::uint64_t
    storageBytes() const
    {
        return static_cast<std::uint64_t>(config_.entries) *
            config_.ways * 8;
    }

  private:
    struct Entry
    {
        Addr tag = invalidAddr;
        /** Successor blocks, most recently confirmed first. */
        std::vector<Addr> successors;
        bool valid = false;
    };

    Entry &entryFor(Addr block);

    MarkovConfig config_;
    std::vector<Entry> table_;
    Addr lastMissBlock_ = invalidAddr;

    std::uint64_t misses_ = 0;
    std::uint64_t updates_ = 0;
    std::uint64_t issued_ = 0;
};

} // namespace ltc

#endif // LTC_PRED_MARKOV_HH
