#include "pred/markov.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace ltc
{

MarkovPrefetcher::MarkovPrefetcher(const MarkovConfig &config)
    : config_(config)
{
    ltc_assert(isPowerOf2(config_.entries),
               "Markov table size must be a power of two");
    ltc_assert(config_.ways > 0, "Markov needs >= 1 successor way");
    table_.resize(config_.entries);
}

MarkovPrefetcher::Entry &
MarkovPrefetcher::entryFor(Addr block)
{
    return table_[mix64(block) & (config_.entries - 1)];
}

void
MarkovPrefetcher::observe(const MemRef &ref, const HierOutcome &out)
{
    if (out.l1Hit())
        return;
    misses_++;

    const Addr block =
        ref.addr & ~static_cast<Addr>(config_.lineBytes - 1);

    // Learn: the previous miss's entry gains this block as its most
    // recent successor.
    if (lastMissBlock_ != invalidAddr && lastMissBlock_ != block) {
        Entry &prev = entryFor(lastMissBlock_);
        if (!prev.valid || prev.tag != lastMissBlock_) {
            prev.valid = true;
            prev.tag = lastMissBlock_;
            prev.successors.clear();
        }
        auto it = std::find(prev.successors.begin(),
                            prev.successors.end(), block);
        if (it != prev.successors.end())
            prev.successors.erase(it);
        prev.successors.insert(prev.successors.begin(), block);
        if (prev.successors.size() > config_.ways)
            prev.successors.pop_back();
        updates_++;
    }
    lastMissBlock_ = block;

    // Predict: prefetch this block's known successors into L2.
    const Entry &cur = entryFor(block);
    if (cur.valid && cur.tag == block) {
        std::uint32_t issued = 0;
        for (Addr successor : cur.successors) {
            if (issued >= config_.degree)
                break;
            PrefetchRequest req;
            req.target = successor;
            req.intoL1 = false;
            enqueue(req);
            issued++;
            issued_++;
        }
    }
}

void
MarkovPrefetcher::exportStats(StatSet &set) const
{
    set.set("misses_observed", static_cast<double>(misses_));
    set.set("updates", static_cast<double>(updates_));
    set.set("prefetches_issued", static_cast<double>(issued_));
    set.set("storage_bytes", static_cast<double>(storageBytes()));
}

void
MarkovPrefetcher::clear()
{
    table_.assign(config_.entries, Entry{});
    lastMissBlock_ = invalidAddr;
}

} // namespace ltc
