/**
 * @file
 * Multi-programmed simulation (Section 5.5 of the paper).
 *
 * Alternates execution between applications in round-robin quanta,
 * mimicking context switches. All on-chip and off-chip predictor
 * structures are shared and persist across switches; each
 * application's addresses are shifted into a disjoint physical range.
 * Coverage is attributed per application via the trace engine's stat
 * buckets.
 */

#ifndef LTC_SIM_MULTIPROG_HH
#define LTC_SIM_MULTIPROG_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pred/prefetcher.hh"
#include "sim/trace_engine.hh"
#include "trace/trace.hh"

namespace ltc
{

/** Configuration for a multi-programmed run. */
struct MultiProgConfig
{
    /** Shared L1/L2 hierarchy geometry. */
    HierarchyConfig hier;
    /** References per scheduling quantum, per application. */
    std::vector<std::uint64_t> quantumRefs;
    /** Total number of context switches simulated. */
    std::uint64_t switches = 60;
    /** Address shift between consecutive applications' spaces. */
    Addr addressStride = Addr{1} << 32;
    /**
     * Deterministic tenant churn (the scaled-out Fig. 11 sweep): when
     * nonzero, the schedule is drawn from an Rng seeded with this
     * value — roughly half the tenants start live, each context
     * switch has a 1-in-8 chance of an arrival or death and a 1-in-8
     * chance of an out-of-order context swap, and scheduling is
     * otherwise round-robin over the live set. Zero keeps the static
     * round-robin interleaving (bit-identical to the historical
     * `app = switch % n` loop).
     */
    std::uint64_t churnSeed = 0;
    /**
     * Drive both passes through the scalar per-quantum loop
     * (selectBucket + selectTenant + run per quantum) instead of the
     * batched TraceEngine::runSchedule. The two are pinned equivalent
     * by the multiprog equivalence suite; the knob exists so
     * benchmarks can measure the scalar path and tests can diff
     * against it.
     */
    bool scalarQuantums = false;
};

/**
 * Materialise the schedule @p config describes: one quantum per
 * context switch, static round-robin or churn-driven (see churnSeed).
 * Exposed so tests and the Fig. 11 scale bench can inspect or replay
 * the exact interleaving runMultiProg executes.
 */
std::vector<TraceEngine::ScheduleQuantum>
buildMultiProgSchedule(const MultiProgConfig &config);

/**
 * Run @p apps under @p config with a shared @p pred.
 *
 * @param apps Unshifted trace sources, one per application (each is
 *             wrapped with a disjoint address shift internally).
 * @return Per-application coverage stats with opportunity filled in
 *         from a predictor-less pass over the identical interleaving.
 */
std::vector<CoverageStats>
runMultiProg(const MultiProgConfig &config, Prefetcher *pred,
             std::vector<std::unique_ptr<TraceSource>> apps);

} // namespace ltc

#endif // LTC_SIM_MULTIPROG_HH
