#include "sim/multiprog.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace ltc
{

namespace
{

/** One pass over the schedule; returns per-app stats. */
std::vector<CoverageStats>
interleavedPass(const MultiProgConfig &config, Prefetcher *pred,
                std::vector<std::unique_ptr<TraceSource>> &apps,
                const std::vector<TraceEngine::ScheduleQuantum> &schedule)
{
    const auto n = static_cast<std::uint32_t>(apps.size());
    TraceEngine engine(config.hier, pred, n);

    if (config.scalarQuantums) {
        // The reference path: re-enter run() per quantum. Kept for
        // benchmark comparison and as the oracle the equivalence
        // suite diffs runSchedule against.
        for (const TraceEngine::ScheduleQuantum &q : schedule) {
            engine.selectBucket(q.tenant);
            if (pred)
                pred->selectTenant(q.tenant);
            engine.run(*apps[q.tenant], q.refs);
        }
    } else {
        std::vector<TraceEngine::TenantSlot> tenants(n);
        for (std::uint32_t i = 0; i < n; i++) {
            tenants[i].src = apps[i].get();
            tenants[i].bucket = i;
        }
        engine.runSchedule(tenants, schedule);
    }

    std::vector<CoverageStats> stats;
    for (std::uint32_t i = 0; i < n; i++)
        stats.push_back(engine.stats(i));
    return stats;
}

std::vector<std::unique_ptr<TraceSource>>
shiftApps(const MultiProgConfig &config,
          std::vector<std::unique_ptr<TraceSource>> apps)
{
    std::vector<std::unique_ptr<TraceSource>> shifted;
    for (std::size_t i = 0; i < apps.size(); i++) {
        shifted.push_back(std::make_unique<ShiftSource>(
            std::move(apps[i]),
            config.addressStride * static_cast<Addr>(i)));
    }
    return shifted;
}

} // namespace

std::vector<TraceEngine::ScheduleQuantum>
buildMultiProgSchedule(const MultiProgConfig &config)
{
    const auto n =
        static_cast<std::uint32_t>(config.quantumRefs.size());
    ltc_assert(n > 0, "schedule needs at least one app");
    std::vector<TraceEngine::ScheduleQuantum> schedule;
    schedule.reserve(config.switches);

    if (config.churnSeed == 0) {
        // Static round-robin, bit-identical to the historical
        // `app = switch % n` interleaving.
        std::uint32_t app = 0;
        for (std::uint64_t s = 0; s < config.switches; s++) {
            schedule.push_back({app, config.quantumRefs[app]});
            app++;
            if (app == n)
                app = 0;
        }
        return schedule;
    }

    // Churn model: a live set evolves under seeded arrivals and
    // deaths while the scheduler round-robins over it, with the
    // occasional out-of-order swap. Everything is a function of the
    // seed, so a schedule replays exactly (the cell cache depends on
    // that).
    Rng rng(config.churnSeed);
    std::vector<std::uint8_t> live(n, 0);
    std::uint32_t live_count = 0;
    for (std::uint32_t i = 0; i < n; i++) {
        if (rng.chance(0.5)) {
            live[i] = 1;
            live_count++;
        }
    }
    if (live_count == 0) {
        live[0] = 1;
        live_count = 1;
    }

    const auto next_live = [&](std::uint32_t from) {
        std::uint32_t i = from;
        for (;;) {
            i++;
            if (i == n)
                i = 0;
            if (live[i])
                return i;
        }
    };

    std::uint32_t cur = live[0] ? 0 : next_live(0);
    for (std::uint64_t s = 0; s < config.switches; s++) {
        // Arrival or death (never kills the last live tenant).
        if (rng.chance(0.125)) {
            const std::uint32_t pick = rng.below(n);
            if (live[pick]) {
                if (live_count > 1) {
                    live[pick] = 0;
                    live_count--;
                    if (pick == cur)
                        cur = next_live(cur);
                }
            } else {
                live[pick] = 1;
                live_count++;
            }
        }
        // Out-of-order context swap: jump ahead in the rotation.
        if (rng.chance(0.125)) {
            for (std::uint32_t h = rng.below(live_count); h > 0; h--)
                cur = next_live(cur);
        }
        schedule.push_back({cur, config.quantumRefs[cur]});
        cur = next_live(cur);
    }
    return schedule;
}

std::vector<CoverageStats>
runMultiProg(const MultiProgConfig &config, Prefetcher *pred,
             std::vector<std::unique_ptr<TraceSource>> apps)
{
    ltc_assert(!apps.empty(), "multiprog needs at least one app");
    ltc_assert(config.quantumRefs.size() == apps.size(),
               "quantumRefs must have one entry per app");
    for (auto q : config.quantumRefs)
        ltc_assert(q > 0, "zero-length scheduling quantum");

    auto shifted = shiftApps(config, std::move(apps));
    const auto schedule = buildMultiProgSchedule(config);

    // Baseline pass for opportunity.
    std::vector<CoverageStats> base =
        interleavedPass(config, nullptr, shifted, schedule);

    // Reset every source and run the predictor pass on the identical
    // interleaving.
    for (auto &src : shifted)
        src->reset();
    std::vector<CoverageStats> stats =
        interleavedPass(config, pred, shifted, schedule);

    for (std::size_t i = 0; i < stats.size(); i++)
        stats[i].opportunity = base[i].l1Misses;
    return stats;
}

} // namespace ltc
