#include "sim/multiprog.hh"

#include "util/logging.hh"

namespace ltc
{

namespace
{

/** One interleaved pass over all apps; returns per-app stats. */
std::vector<CoverageStats>
interleavedPass(const MultiProgConfig &config, Prefetcher *pred,
                std::vector<std::unique_ptr<TraceSource>> &apps)
{
    const auto n = static_cast<std::uint32_t>(apps.size());
    TraceEngine engine(config.hier, pred, n);
    for (std::uint64_t s = 0; s < config.switches; s++) {
        const std::uint32_t app = static_cast<std::uint32_t>(s % n);
        engine.selectBucket(app);
        engine.run(*apps[app], config.quantumRefs[app]);
    }
    std::vector<CoverageStats> stats;
    for (std::uint32_t i = 0; i < n; i++)
        stats.push_back(engine.stats(i));
    return stats;
}

std::vector<std::unique_ptr<TraceSource>>
shiftApps(const MultiProgConfig &config,
          std::vector<std::unique_ptr<TraceSource>> apps)
{
    std::vector<std::unique_ptr<TraceSource>> shifted;
    for (std::size_t i = 0; i < apps.size(); i++) {
        shifted.push_back(std::make_unique<ShiftSource>(
            std::move(apps[i]),
            config.addressStride * static_cast<Addr>(i)));
    }
    return shifted;
}

} // namespace

std::vector<CoverageStats>
runMultiProg(const MultiProgConfig &config, Prefetcher *pred,
             std::vector<std::unique_ptr<TraceSource>> apps)
{
    ltc_assert(!apps.empty(), "multiprog needs at least one app");
    ltc_assert(config.quantumRefs.size() == apps.size(),
               "quantumRefs must have one entry per app");
    for (auto q : config.quantumRefs)
        ltc_assert(q > 0, "zero-length scheduling quantum");

    auto shifted = shiftApps(config, std::move(apps));

    // Baseline pass for opportunity.
    std::vector<CoverageStats> base = interleavedPass(config, nullptr,
                                                      shifted);

    // Reset every source and run the predictor pass on the identical
    // interleaving.
    for (auto &src : shifted)
        src->reset();
    std::vector<CoverageStats> stats =
        interleavedPass(config, pred, shifted);

    for (std::size_t i = 0; i < stats.size(); i++)
        stats[i].opportunity = base[i].l1Misses;
    return stats;
}

} // namespace ltc
