#include "sim/sampling.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace ltc
{

SampledResult
runSampled(TimingSim &sim, TraceSource &src, const SamplingConfig &config)
{
    ltc_assert(config.measureRefs > 0, "measureRefs must be positive");

    RunningStats window_ipc;
    SampledResult result;

    while (config.maxSamples == 0 ||
           window_ipc.count() < config.maxSamples) {
        if (config.skipRefs &&
            sim.run(src, config.skipRefs) < config.skipRefs)
            break;
        if (config.warmupRefs &&
            sim.run(src, config.warmupRefs) < config.warmupRefs)
            break;

        sim.core().beginInterval();
        if (sim.run(src, config.measureRefs) < config.measureRefs)
            break;
        const Cycle cycles = sim.core().intervalCycles();
        const InstCount insts = sim.core().intervalInstructions();
        if (cycles == 0)
            continue;
        window_ipc.sample(static_cast<double>(insts) /
                          static_cast<double>(cycles));
        result.instructions += insts;
    }

    result.samples = window_ipc.count();
    result.meanIpc = window_ipc.mean();
    if (result.samples >= 2 && result.meanIpc > 0.0) {
        const double sem = window_ipc.stddev() /
            std::sqrt(static_cast<double>(result.samples));
        result.ci95Frac = 1.96 * sem / result.meanIpc;
    }
    return result;
}

} // namespace ltc
