/**
 * @file
 * Parallel sharded experiment runner and machine-readable result
 * sinks for the benchmark harness.
 *
 * Every bench binary reproduces one of the paper's figures or tables
 * by evaluating a sweep of independent (workload x config) cells.
 * ExperimentRunner shards such a sweep over a pool of worker threads
 * while keeping results bit-identical to a serial run: cells are
 * indexed, each cell derives its RNG seed from (base seed, cell
 * index) alone, and results are written into an index-addressed
 * vector, so neither thread count nor scheduling order can leak into
 * the output.
 *
 * ResultSink collects the per-cell RunResult records plus any
 * rendered tables and summary notes, prints the familiar text
 * output, and additionally exports the whole run as JSON and/or CSV
 * (`--json out.json` / `--csv out.csv`, or the LTC_JSON / LTC_CSV
 * environment variables) for scripted post-processing.
 */

#ifndef LTC_SIM_RUNNER_HH
#define LTC_SIM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/random.hh"
#include "util/table.hh"

namespace ltc
{

class CellStore;
struct CellStoreStats;

/**
 * Worker-thread count for experiment sweeps: the LTC_JOBS
 * environment variable if set (>= 1), otherwise
 * std::thread::hardware_concurrency(), otherwise 1.
 */
unsigned defaultJobs();

/**
 * One shard of a sweep: an independent (workload x config) pair.
 *
 * The seed is derived deterministically from the sweep's base seed
 * and the cell index, never from the executing thread, so a cell
 * that wants cell-local randomness (via rng()) still produces
 * identical results under any LTC_JOBS. Cells that must replay the
 * identical reference stream across configs (e.g. speedup tables
 * comparing predictors on one workload) should instead seed their
 * workload from a per-workload constant, as makeWorkload() defaults
 * to.
 */
struct RunCell
{
    /** Position in the sweep; results are ordered by this index. */
    std::size_t index = 0;
    /** Workload name ("" when the sweep is not over workloads). */
    std::string workload;
    /** Configuration label ("" for single-config sweeps). */
    std::string config;
    /** Deterministic per-cell seed: hashCombine(base_seed, index). */
    std::uint64_t seed = 0;

    /** Fresh RNG seeded for this cell. */
    Rng rng() const { return Rng(seed); }
};

/**
 * The record an experiment cell produces: its cell identity plus an
 * insertion-ordered list of named scalar metrics. Insertion order is
 * preserved so serialized output is stable and human-diffable.
 */
class RunResult
{
  public:
    RunCell cell;

    /** Set metric @p key to @p value (overwrites, keeps position). */
    void set(const std::string &key, double value);

    /** Value of metric @p key; 0 if absent. */
    double get(const std::string &key) const;

    /** True if metric @p key was set. */
    bool has(const std::string &key) const;

    /** All metrics in insertion order. */
    const std::vector<std::pair<std::string, double>> &metrics() const
    {
        return metrics_;
    }

  private:
    std::vector<std::pair<std::string, double>> metrics_;
};

/**
 * Thread-pooled sweep executor.
 *
 * Cells are claimed from an atomic cursor by `jobs` worker threads
 * and their results stored by cell index, so any thread count
 * produces byte-identical output. Exceptions thrown by a cell are
 * captured and rethrown on the calling thread after the pool drains.
 */
class ExperimentRunner
{
  public:
    /** @param jobs Worker threads; 0 selects defaultJobs(). */
    explicit ExperimentRunner(unsigned jobs = 0);

    /** Worker threads this runner will use. */
    unsigned jobs() const { return jobs_; }

    /**
     * Execute @p fn once per cell and return the RunResult records
     * in cell-index order. @p fn receives a result pre-populated
     * with the cell identity.
     */
    std::vector<RunResult>
    run(const std::vector<RunCell> &cells,
        const std::function<void(const RunCell &, RunResult &)> &fn)
        const;

    /**
     * Generic deterministic parallel map over [0, count): for cells
     * whose products are richer than scalar metrics (histograms,
     * full distributions). T must be default-constructible.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t count,
        const std::function<T(std::size_t)> &fn) const
    {
        std::vector<T> out(count);
        forEachIndex(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Run @p fn for every index in [0, count) across the worker
     * pool. Deterministic output is the caller's responsibility:
     * write only to index-addressed slots.
     */
    void forEachIndex(std::size_t count,
                      const std::function<void(std::size_t)> &fn)
        const;

    /**
     * Build the (workload x config) cross-product sweep, workloads
     * major, with indices and per-cell seeds assigned.
     */
    static std::vector<RunCell>
    cross(const std::vector<std::string> &workloads,
          const std::vector<std::string> &configs,
          std::uint64_t base_seed = 1);

    /** Single-config sweep over @p workloads. */
    static std::vector<RunCell>
    cells(const std::vector<std::string> &workloads,
          std::uint64_t base_seed = 1);

    /**
     * Assign indices and deterministic seeds to a hand-built cell
     * list (for sweeps that are not a plain cross product).
     */
    static void assignSeeds(std::vector<RunCell> &cells,
                            std::uint64_t base_seed = 1);

    /**
     * Position of @p cell's config within its workload's sweep, for
     * a cross() layout with @p num_configs configs per workload.
     * Use these instead of hand-rolled index arithmetic so the
     * workloads-major convention lives in one place.
     */
    static std::size_t
    configIndex(const RunCell &cell, std::size_t num_configs)
    {
        return cell.index % num_configs;
    }

    /** Position of @p cell's workload in a cross() layout. */
    static std::size_t
    workloadIndex(const RunCell &cell, std::size_t num_configs)
    {
        return cell.index / num_configs;
    }

    /**
     * Element for (workload @p w, config @p c) in a cross()-ordered
     * result vector with @p num_configs configs per workload.
     */
    template <typename T>
    static T &
    at(std::vector<T> &results, std::size_t w, std::size_t c,
       std::size_t num_configs)
    {
        return results[w * num_configs + c];
    }

    /** Const overload of at(). */
    template <typename T>
    static const T &
    at(const std::vector<T> &results, std::size_t w, std::size_t c,
       std::size_t num_configs)
    {
        return results[w * num_configs + c];
    }

  private:
    unsigned jobs_;
};

/**
 * Serialize records as a JSON array (stable key order, shortest
 * round-trip number formatting; no timing or host state, so output
 * is byte-identical across thread counts and machines).
 */
std::string resultsToJson(const std::vector<RunResult> &records);

/**
 * Serialize records as RFC-4180 CSV. Columns: cell, workload,
 * config, seed, then the union of metric keys in first-appearance
 * order; cells lacking a metric emit an empty field.
 */
std::string resultsToCsv(const std::vector<RunResult> &records);

/**
 * Parse records back from JSON produced by resultsToJson() or by
 * ResultSink (whose document nests the array under "records").
 * Fatal error on malformed input.
 */
std::vector<RunResult> resultsFromJson(const std::string &text);

/** Parse records back from resultsToCsv() output. */
std::vector<RunResult> resultsFromCsv(const std::string &text);

/**
 * Per-bench output collector.
 *
 * Tables and notes print to stdout exactly as the historical
 * harness did (aligned text plus a `[csv]` block). finish() then
 * writes the machine-readable exports if requested via `--json
 * <path>` / `--csv <path>` arguments or the LTC_JSON / LTC_CSV
 * environment variables ("-" selects stdout). The JSON document is
 *
 *     {"bench": ..., "schema": 1, "records": [...],
 *      "tables": [{"title", "header", "rows"}...], "notes": [...]}
 *
 * and deliberately contains no timestamps, durations, or thread
 * counts: two runs of one bench differing only in LTC_JOBS produce
 * byte-identical files.
 *
 * The sink is also the bench-side entry to the experiment fabric
 * (sim/cell_store.hh): run() executes a sweep through the
 * content-addressed cell cache when one is configured (`--cell-cache
 * <dir>` / LTC_CELL_CACHE) and through the multi-process backend
 * when requested (`--procs <n>` / LTC_SWEEP_PROCS), falling back to
 * the plain ExperimentRunner otherwise. Any cache/process
 * configuration keeps the exports byte-identical to an uncached
 * single-process run.
 */
class ResultSink
{
  public:
    /**
     * @param bench Bench name recorded in the JSON document.
     * @param argc/@p argv Optional CLI arguments; recognises
     *        `--json <path>`/`--json=<path>` and `--csv` likewise,
     *        plus `--trace-dir <dir>` which sets the registry's
     *        trace-discovery directory (setTraceDir() in
     *        trace/workloads.hh, the flag equivalent of
     *        LTC_TRACE_DIR) so benches sweep file-backed .ltct
     *        workloads, `--cell-cache <dir>` (LTC_CELL_CACHE) which
     *        enables the cell cache, and `--procs <n>`
     *        (LTC_SWEEP_PROCS) which runs cached sweeps with n
     *        cooperating processes. Unknown arguments are a fatal
     *        usage error. When LTC_SWEEP_WORKER marks this process
     *        as a spawned sweep worker, stdout and the exports are
     *        suppressed: the worker's only output is the records it
     *        publishes into the shared cell cache.
     */
    ResultSink(std::string bench, int argc = 0,
               char *const *argv = nullptr);

    ~ResultSink();

    /**
     * Execute a sweep through the experiment fabric: equivalent to
     * `runner.run(cells, fn)` but consulting the cell cache first
     * when one is configured, so cache hits skip simulation, killed
     * sweeps resume, and `--procs` distributes cells over worker
     * processes. Pass @p cacheable = false for sweeps whose results
     * are not a pure function of the cell identity (self-timing
     * benches); those always run uncached.
     */
    std::vector<RunResult>
    run(const ExperimentRunner &runner,
        const std::vector<RunCell> &cells,
        const std::function<void(const RunCell &, RunResult &)> &fn,
        bool cacheable = true);

    /**
     * Counters of the cell store behind run(), all zero when no
     * cache is configured. `sims` is the number of cells actually
     * simulated - the warm-cache acceptance criterion asserts it.
     */
    CellStoreStats cellStats() const;

    /** Print @p t (text + [csv] block) and retain it for export. */
    void table(const Table &t);

    /** Append records to the exported result set. */
    void add(std::vector<RunResult> records);

    /** Print a summary line (with newline) and retain it. */
    void note(const std::string &line);

    /** Records accumulated so far. */
    const std::vector<RunResult> &records() const { return records_; }

    /** The full JSON document described above. */
    std::string json() const;

    /**
     * Write any requested exports; returns the bench's exit status
     * (0). Call once, last.
     */
    int finish();

  private:
    std::string bench_;
    std::string jsonPath_;
    std::string csvPath_;
    std::string cacheDir_;    //!< cell-cache directory ("" = off)
    unsigned procs_ = 1;      //!< cooperating processes for run()
    unsigned workerIndex_ = 0; //!< >0 when this is a sweep worker
    std::uint64_t sweepCalls_ = 0; //!< run() ordinal = sweep segment
    char *const *argv_ = nullptr; //!< retained for worker re-exec
    std::unique_ptr<CellStore> store_;
    std::vector<RunResult> records_;
    std::vector<Table> tables_;
    std::vector<std::string> notes_;
};

} // namespace ltc

#endif // LTC_SIM_RUNNER_HH
