#include "sim/timing_engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ltc
{

TimingSim::TimingSim(const TimingConfig &config, Prefetcher *pred)
    : config_(config), core_(config.core), hier_(config.hier),
      mshrs_(config.core.l1dMshrs), l1l2Req_(config.l1l2Bus),
      l1l2Data_(config.l1l2Bus), memReq_(config.memBus),
      memData_(config.memBus), pfPace_(config.memBus),
      metaBus_(config.memBus), dram_(config.dram), pred_(pred)
{
    hier_.l1d().setListener(this);
}

TimingSim::~TimingSim()
{
    hier_.l1d().setListener(nullptr);
}

void
TimingSim::onEviction(Addr victim_addr, Addr incoming_addr,
                      std::uint32_t set, bool by_prefetch,
                      bool victim_was_untouched_prefetch,
                      std::uint8_t victim_meta)
{
    (void)incoming_addr;
    (void)set;
    (void)by_prefetch;
    if (!victim_was_untouched_prefetch)
        return;
    running_.useless++;
    // The classification entry rides on the victim line; a later
    // conventional prefetch may have moved the block's entry to the
    // L2 line (at most one entry exists per block).
    std::uint8_t meta = victim_meta;
    if (!(meta & LineMetaFetched))
        meta = hier_.l2().takeMeta(victim_addr);
    if ((meta & LineMetaFetched) && (meta & LineMetaOffChip)) {
        running_.traffic.add(Traffic::IncorrectPrefetch,
                             config_.hier.l1d.lineBytes);
    }
    inflight_.erase(victim_addr);
    if (pred_) {
        PrefetchFeedback fb;
        fb.target = victim_addr;
        fb.useless = true;
        pred_->feedback(fb);
    }
}

Cycle
TimingSim::missCompletion(Addr block, HitLevel level, Cycle ready)
{
    (void)block;
    // Request leaves L1 after its lookup latency, crosses the L1/L2
    // bus (request phase only), then either hits in L2 or continues
    // to memory; the data crosses the L1/L2 bus on the way back.
    const Cycle req_start = ready + config_.hier.l1d.latency;
    const Cycle req_done = l1l2Req_.transfer(req_start, 0);

    Cycle data_ready;
    if (level == HitLevel::L2) {
        data_ready = req_done + config_.hier.l2.latency;
    } else {
        // L2 lookup (miss) then the memory round trip.
        const Cycle mem_req =
            memReq_.transfer(req_done + config_.hier.l2.latency, 0);
        data_ready = mem_req + dram_.read(config_.hier.l1d.lineBytes);
        // Block transfer over the memory data bus.
        data_ready =
            memData_.transfer(data_ready, config_.hier.l1d.lineBytes);
    }
    return l1l2Data_.transfer(data_ready, config_.hier.l1d.lineBytes);
}

void
TimingSim::enqueuePrefetch(const PrefetchRequest &req)
{
    // Duplicate filter: requests whose block is already resident (or
    // already in flight) would waste request-queue slots and issue
    // bandwidth; real prefetchers filter them against the tag array.
    const Addr block = hier_.l1d().blockAlign(req.target);
    if (inflight_.count(block))
        return;
    if (req.intoL1 ? hier_.l1d().probe(block) : hier_.l2().probe(block))
        return;

    if (prefetchQueue_.size() >= config_.prefetchQueueEntries) {
        // New requests replace old unissued ones (Section 5). The
        // dropped prediction gets no confidence feedback: the
        // signature was not wrong, the queue was full.
        prefetchQueue_.pop_front();
        running_.dropped++;
    }
    prefetchQueue_.push_back(req);
}

void
TimingSim::drainPrefetchQueue(Cycle now)
{
    // Paced issue: one prefetch per memory-bus block-transfer time,
    // sustained. The pacing channel's horizon hands out issue slots;
    // slots are back-filled between engine events (the queue would
    // have drained continuously in hardware), bounded so stale slots
    // far in the past are not used. The transfers themselves contend
    // with demand on the shared data channels.
    drainClock_ = std::max(drainClock_, now > 1024 ? now - 1024 : 0);
    while (!prefetchQueue_.empty()) {
        // Re-filter just before issue: an earlier prefetch or demand
        // fill may have brought the block in meanwhile. Filtered
        // requests consume no issue slot.
        const PrefetchRequest &front = prefetchQueue_.front();
        const Addr block = hier_.l1d().blockAlign(front.target);
        const bool resident = front.intoL1
            ? hier_.l1d().probe(block)
            : hier_.l2().probe(block);
        if (resident || inflight_.count(block)) {
            prefetchQueue_.pop_front();
            continue;
        }
        const Cycle slot = std::max(pfPace_.freeAt(0), drainClock_);
        if (slot > now)
            break;
        const PrefetchRequest req = prefetchQueue_.front();
        prefetchQueue_.pop_front();
        pfPace_.transfer(slot, config_.hier.l1d.lineBytes);
        issuePrefetch(req, slot);
    }
}

void
TimingSim::issuePrefetch(const PrefetchRequest &req, Cycle now)
{
    const Addr block = hier_.l1d().blockAlign(req.target);

    if (req.intoL1) {
        if (hier_.l1d().probe(block)) {
            if (pred_) {
                PrefetchFeedback fb;
                fb.target = req.target;
                fb.useless = true;
                pred_->feedback(fb);
            }
            return;
        }
    } else if (hier_.l2().probe(block)) {
        return;
    }

    const bool l2_hit = hier_.l2().probe(block);
    const Cycle req_done = l1l2Req_.transfer(now, 0);
    Cycle data_ready;
    if (l2_hit) {
        data_ready = req_done + config_.hier.l2.latency;
    } else {
        const Cycle mem_req =
            memReq_.transfer(req_done + config_.hier.l2.latency, 0);
        data_ready = mem_req + dram_.read(config_.hier.l1d.lineBytes);
        data_ready =
            memData_.transfer(data_ready, config_.hier.l1d.lineBytes);
    }

    if (req.intoL1) {
        const Cycle complete =
            l1l2Data_.transfer(data_ready, config_.hier.l1d.lineBytes);
        const PrefetchOutcome out =
            hier_.prefetch(req.target, req.predictedVictim);
        if (out.alreadyInL1)
            return;
        inflight_[block] = complete;
        // One classification entry per block: retire any stale
        // L2-side entry before writing the L1 line's.
        hier_.l2().takeMeta(block);
        hier_.l1d().setMeta(block,
                            LineMetaFetched |
                                (l2_hit ? 0 : LineMetaOffChip));
        if (out.l1Evicted && pred_)
            pred_->onPrefetchEviction(out.l1VictimAddr, req.target);
    } else {
        hier_.l2().fill(block);
        inflight_[block] = data_ready;
        hier_.l1d().takeMeta(block);
        hier_.l2().setMeta(block, LineMetaFetched | LineMetaOffChip);
    }
}

void
TimingSim::chargeMetaTraffic(Cycle now)
{
    if (!pred_)
        return;
    const auto [write_bytes, read_bytes] = pred_->drainMetaTraffic();
    if (write_bytes) {
        running_.traffic.add(Traffic::SequenceCreate, write_bytes);
        metaBus_.transfer(now, static_cast<std::uint32_t>(
                                   std::min<std::uint64_t>(write_bytes,
                                                           1 << 20)));
    }
    if (read_bytes) {
        running_.traffic.add(Traffic::SequenceFetch, read_bytes);
        metaBus_.transfer(now, static_cast<std::uint32_t>(
                                   std::min<std::uint64_t>(read_bytes,
                                                           1 << 20)));
    }
}

void
TimingSim::step(const MemRef &ref)
{
    core_.issueNonMem(ref.nonMemGap);
    const Cycle issue = core_.beginMem();
    Cycle ready = issue;
    if (ref.dependsOnPrev)
        ready = std::max(ready, lastLoadComplete_);

    const Addr block = hier_.l1d().blockAlign(ref.addr);
    const HierOutcome out = hier_.access(ref.addr, ref.op);
    running_.accesses++;

    Cycle complete;
    if (out.l1Hit()) {
        complete = ready + config_.hier.l1d.latency;
        // The block may be present functionally but still in flight.
        auto it = inflight_.find(block);
        if (it != inflight_.end()) {
            if (it->second > complete) {
                complete = it->second;
                running_.partial++;
            }
            inflight_.erase(it);
        }
        if (out.l1HitOnPrefetch) {
            running_.correct++;
            // The access consumed the L1 line's classification
            // entry; fall back to an L2-side entry.
            std::uint8_t meta = out.l1Meta;
            if (!(meta & LineMetaFetched))
                meta = hier_.l2().takeMeta(block);
            if ((meta & LineMetaFetched) && (meta & LineMetaOffChip)) {
                running_.traffic.add(Traffic::BaseData,
                                     config_.hier.l1d.lineBytes);
            }
            if (pred_) {
                PrefetchFeedback fb;
                fb.target = ref.addr;
                fb.useless = false;
                pred_->feedback(fb);
            }
        }
    } else {
        running_.l1Misses++;
        if (out.level == HitLevel::Memory) {
            running_.l2Misses++;
            running_.traffic.add(Traffic::BaseData,
                                 config_.hier.l1d.lineBytes);
        } else if (out.l2HitOnPrefetch) {
            if ((out.l2Meta & LineMetaFetched) &&
                (out.l2Meta & LineMetaOffChip)) {
                running_.traffic.add(Traffic::BaseData,
                                     config_.hier.l1d.lineBytes);
            }
            if (pred_) {
                PrefetchFeedback fb;
                fb.target = ref.addr;
                fb.useless = false;
                pred_->feedback(fb);
            }
        }

        // An L2 prefetch still in flight partially hides the L2 hit.
        Cycle inflight_floor = 0;
        auto it = inflight_.find(block);
        if (it != inflight_.end()) {
            inflight_floor = it->second;
            running_.partial++;
            inflight_.erase(it);
        }

        if (auto merged = mshrs_.lookup(block)) {
            mshrs_.noteMerge();
            complete = std::max(*merged, ready +
                                config_.hier.l1d.latency);
        } else {
            const Cycle alloc = mshrs_.allocReadyAt(ready);
            complete = missCompletion(block, out.level, alloc);
            complete = std::max(complete, inflight_floor);
            mshrs_.allocate(block, alloc, complete);
        }
        running_.missLatencyTotal += complete - ready;
    }

    core_.completeMem(complete);
    if (ref.isLoad())
        lastLoadComplete_ = complete;
    mshrs_.retire(complete);

    if (pred_) {
        pred_->setNow(issue);
        pred_->observe(ref, out);
        pred_->drainRequestsInto(reqBuf_);
        for (const PrefetchRequest &req : reqBuf_)
            enqueuePrefetch(req);
        drainPrefetchQueue(ready);
        chargeMetaTraffic(issue);
    }
}

std::uint64_t
TimingSim::run(TraceSource &src, std::uint64_t refs)
{
    constexpr std::size_t batch_refs = 256;
    if (batch_.size() < batch_refs)
        batch_.resize(batch_refs);
    std::uint64_t done = 0;
    while (done < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, batch_refs));
        const std::size_t got = src.fill({batch_.data(), want});
        for (std::size_t i = 0; i < got; i++)
            step(batch_[i]);
        done += got;
        if (got < want)
            break; // end of trace
    }
    return done;
}

TimingStats
TimingSim::stats() const
{
    TimingStats s = running_;
    s.cycles = core_.finishCycle();
    s.instructions = core_.instructions();
    s.ipc = core_.ipc();
    s.memBusBusy = memReq_.busyCycles() + memData_.busyCycles() +
        metaBus_.busyCycles();
    s.l1l2BusBusy = l1l2Req_.busyCycles() + l1l2Data_.busyCycles();
    s.l1l2ReqQueue = l1l2Req_.queueCycles();
    s.l1l2DataQueue = l1l2Data_.queueCycles();
    s.memReqQueue = memReq_.queueCycles();
    s.memDataQueue = memData_.queueCycles();
    return s;
}

} // namespace ltc
