#include "sim/timing_engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ltc
{

/**
 * L2 eviction listener: a dirty L2 victim leaves the chip. Charged as
 * Writeback traffic and as occupancy on the shared memory data
 * channel at the cycle of the eviction-causing event (wbNow_), so
 * writebacks contend with demand fills the way they would in
 * hardware. Dirtiness and untouched-prefetch state can coexist at L2
 * (an L1 writeback can land on a still-untouched prefetched L2 copy),
 * but the untouched-prefetch classification of L2 victims is the
 * trace engine's concern — the timing engine tracks prefetch
 * usefulness through L1 evictions and the in-flight table only.
 */
class TimingSim::L2WritebackListener : public CacheListener
{
  public:
    explicit L2WritebackListener(TimingSim &owner) : owner_(owner) {}

    void
    onEviction(Addr victim_addr, Addr incoming_addr,
               std::uint32_t set, bool by_prefetch,
               bool victim_was_untouched_prefetch,
               bool victim_dirty, std::uint8_t victim_meta) override
    {
        (void)victim_addr;
        (void)incoming_addr;
        (void)set;
        (void)by_prefetch;
        (void)victim_was_untouched_prefetch;
        (void)victim_meta;
        if (!victim_dirty)
            return;
        const std::uint32_t line = owner_.config_.hier.l2.lineBytes;
        owner_.running_.traffic.add(Traffic::Writeback, line);
        owner_.memData_.transfer(owner_.wbNow_, line);
    }

  private:
    TimingSim &owner_;
};

TimingSim::TimingSim(const TimingConfig &config, Prefetcher *pred)
    : config_(config), core_(config.core), hier_(config.hier),
      mshrs_(config.core.l1dMshrs), l1l2Req_(config.l1l2Bus),
      l1l2Data_(config.l1l2Bus), memReq_(config.memBus),
      memData_(config.memBus), pfPace_(config.memBus),
      metaBus_(config.memBus), dram_(config.dram), pred_(pred)
{
    const std::uint32_t line = config_.hier.l1d.lineBytes;
    l1l2ReqOcc_ = config_.l1l2Bus.occupancy(0);
    l1l2LineOcc_ = config_.l1l2Bus.occupancy(line);
    memReqOcc_ = config_.memBus.occupancy(0);
    memLineOcc_ = config_.memBus.occupancy(line);
    dramLineLat_ = dram_.latency(line);
    hier_.l1d().setListener(this);
    if (config_.hier.modelWritebacks) {
        // Only attached when writebacks are modelled, so the default
        // configuration keeps its listener-free L2 insert path.
        l2Writeback_ = std::make_unique<L2WritebackListener>(*this);
        hier_.l2().setListener(l2Writeback_.get());
    }
}

TimingSim::~TimingSim()
{
    hier_.l1d().setListener(nullptr);
    hier_.l2().setListener(nullptr);
}

void
TimingSim::onEviction(Addr victim_addr, Addr incoming_addr,
                      std::uint32_t set, bool by_prefetch,
                      bool victim_was_untouched_prefetch,
                      bool victim_dirty,
                      std::uint8_t victim_meta)
{
    (void)incoming_addr;
    (void)set;
    (void)by_prefetch;
    if (victim_dirty && config_.hier.modelWritebacks) {
        // A dirty L1 victim writes back over the L1/L2 data channel;
        // it only continues off chip when L2 no longer holds the
        // block (no allocation on writeback: the block just left).
        const std::uint32_t line = config_.hier.l1d.lineBytes;
        l1l2Data_.transfer(wbNow_, line);
        if (!hier_.l2().setDirty(victim_addr)) {
            running_.traffic.add(Traffic::Writeback, line);
            memData_.transfer(wbNow_, line);
        }
    }
    if (!victim_was_untouched_prefetch)
        return;
    running_.useless++;
    // The classification entry rides on the victim line; a later
    // conventional prefetch may have moved the block's entry to the
    // L2 line (at most one entry exists per block).
    std::uint8_t meta = victim_meta;
    if (!(meta & LineMetaFetched))
        meta = hier_.l2().takeMeta(victim_addr);
    if ((meta & LineMetaFetched) && (meta & LineMetaOffChip)) {
        running_.traffic.add(Traffic::IncorrectPrefetch,
                             config_.hier.l1d.lineBytes);
    }
    // The victim's in-flight entry (if any) is deliberately kept: the
    // eviction removes the L1 copy, but the physical fill is still on
    // the busses, and a re-reference that hits the block's L2 copy
    // must wait for that arrival. Erasing here dropped the completion
    // time and let such re-references under-count latency; stale
    // entries are bounded by purgeInflight() instead.
    if (pred_)
        bufferFeedback(victim_addr, true);
}

Cycle
TimingSim::missCompletion(Addr block, HitLevel level, Cycle ready)
{
    (void)block;
    // Request leaves L1 after its lookup latency, crosses the L1/L2
    // bus (request phase only), then either hits in L2 or continues
    // to memory; the data crosses the L1/L2 bus on the way back.
    const std::uint32_t line = config_.hier.l1d.lineBytes;
    const Cycle req_start = ready + config_.hier.l1d.latency;
    const Cycle req_done =
        l1l2Req_.transferPrecomputed(req_start, 0, l1l2ReqOcc_);

    Cycle data_ready;
    if (level == HitLevel::L2) {
        data_ready = req_done + config_.hier.l2.latency;
    } else {
        // L2 lookup (miss) then the memory round trip.
        const Cycle mem_req = memReq_.transferPrecomputed(
            req_done + config_.hier.l2.latency, 0, memReqOcc_);
        dram_.noteRead(line);
        data_ready = mem_req + dramLineLat_;
        // Block transfer over the memory data bus.
        data_ready = memData_.transferPrecomputed(data_ready, line,
                                                  memLineOcc_);
    }
    return l1l2Data_.transferPrecomputed(data_ready, line,
                                         l1l2LineOcc_);
}

void
TimingSim::enqueuePrefetch(const PrefetchRequest &req, Cycle now)
{
    // Dead-block-aware replacement consumes the predictor's last-touch
    // prediction at enqueue time — the moment the prediction is made —
    // shared by the scalar and batched paths (both reach here through
    // stepImpl), so the two cannot diverge.
    if (req.predictedVictim != invalidAddr) {
        if (config_.hier.l1d.policy == ReplPolicy::DeadBlock)
            hier_.l1d().markDead(req.predictedVictim);
        // A last touch is program-wide: the L2 copy of the victim is
        // just as dead. The L2 mark is the one with real leverage —
        // L2 recency only updates on L1 misses, so its LRU order
        // diverges from death order far more than the L1's.
        if (config_.hier.l2.policy == ReplPolicy::DeadBlock)
            hier_.l2().markDead(req.predictedVictim);
    }
    // Duplicate filter: requests whose block is already resident (or
    // already in flight) would waste request-queue slots and issue
    // bandwidth; real prefetchers filter them against the tag array.
    // An in-flight entry counts only while its fill is still pending
    // (completion in the future): entries now outlive L1 evictions
    // (see onEviction), and a long-completed fill of a since-evicted
    // block must not veto a fresh prefetch.
    const Addr block = hier_.l1d().blockAlign(req.target);
    const Cycle *fill = inflight_.find(block);
    if (fill && *fill > now)
        return;
    if (req.intoL1 ? hier_.l1d().probe(block) : hier_.l2().probe(block))
        return;

    if (prefetchQueue_.size() >= config_.prefetchQueueEntries) {
        // New requests replace old unissued ones (Section 5). The
        // dropped prediction gets no confidence feedback: the
        // signature was not wrong, the queue was full.
        prefetchQueue_.pop_front();
        running_.dropped++;
    }
    prefetchQueue_.push_back(req);
}

void
TimingSim::drainPrefetchQueue(Cycle now)
{
    // Paced issue: one prefetch per memory-bus block-transfer time,
    // sustained. The pacing channel's horizon hands out issue slots;
    // slots are back-filled between engine events (the queue would
    // have drained continuously in hardware), bounded so stale slots
    // far in the past are not used. The transfers themselves contend
    // with demand on the shared data channels.
    drainClock_ = std::max(drainClock_, now > 1024 ? now - 1024 : 0);
    while (!prefetchQueue_.empty()) {
        // Re-filter just before issue: an earlier prefetch or demand
        // fill may have brought the block in meanwhile. Filtered
        // requests consume no issue slot.
        const PrefetchRequest &front = prefetchQueue_.front();
        const Addr block = hier_.l1d().blockAlign(front.target);
        const bool resident = front.intoL1
            ? hier_.l1d().probe(block)
            : hier_.l2().probe(block);
        const Cycle *fill = inflight_.find(block);
        if (resident || (fill && *fill > now)) {
            prefetchQueue_.pop_front();
            continue;
        }
        const Cycle slot = std::max(pfPace_.freeAt(0), drainClock_);
        if (slot > now)
            break;
        const PrefetchRequest req = prefetchQueue_.front();
        prefetchQueue_.pop_front();
        pfPace_.transferPrecomputed(slot, config_.hier.l1d.lineBytes,
                                    memLineOcc_);
        issuePrefetch(req, slot);
    }
}

void
TimingSim::issuePrefetch(const PrefetchRequest &req, Cycle now)
{
    if (config_.hier.modelWritebacks)
        wbNow_ = now; // prefetch fills can evict dirty lines
    const Addr block = hier_.l1d().blockAlign(req.target);

    if (req.intoL1) {
        if (hier_.l1d().probe(block)) {
            if (pred_)
                bufferFeedback(req.target, true);
            return;
        }
    } else if (hier_.l2().probe(block)) {
        return;
    }

    const bool l2_hit = hier_.l2().probe(block);
    const std::uint32_t line = config_.hier.l1d.lineBytes;
    const Cycle req_done =
        l1l2Req_.transferPrecomputed(now, 0, l1l2ReqOcc_);
    Cycle data_ready;
    if (l2_hit) {
        data_ready = req_done + config_.hier.l2.latency;
    } else {
        const Cycle mem_req = memReq_.transferPrecomputed(
            req_done + config_.hier.l2.latency, 0, memReqOcc_);
        dram_.noteRead(line);
        data_ready = mem_req + dramLineLat_;
        data_ready = memData_.transferPrecomputed(data_ready, line,
                                                  memLineOcc_);
    }

    if (req.intoL1) {
        const Cycle complete = l1l2Data_.transferPrecomputed(
            data_ready, line, l1l2LineOcc_);
        // Under DeadBlock the directed replacement is gated on the
        // dead mark surviving the enqueue->issue window: a demand
        // touch in between revived the block (the prediction was
        // wrong), so spare it and let the policy pick the victim
        // (which itself prefers other marked-dead ways).
        Addr directed = req.predictedVictim;
        if (config_.hier.l1d.policy == ReplPolicy::DeadBlock &&
            directed != invalidAddr && !hier_.l1d().isDead(directed))
            directed = invalidAddr;
        const PrefetchOutcome out = hier_.prefetch(req.target, directed);
        if (out.alreadyInL1)
            return;
        inflight_.insert(block, complete);
        // One classification entry per block: retire any stale
        // L2-side entry before writing the L1 line's.
        hier_.l2().takeMeta(block);
        hier_.l1d().setMeta(block,
                            LineMetaFetched |
                                (l2_hit ? 0 : LineMetaOffChip));
        if (out.l1Evicted && pred_)
            pred_->onPrefetchEviction(out.l1VictimAddr, req.target);
    } else {
        hier_.l2().fill(block);
        inflight_.insert(block, data_ready);
        hier_.l1d().takeMeta(block);
        hier_.l2().setMeta(block, LineMetaFetched | LineMetaOffChip);
    }
}

void
TimingSim::chargeMetaTraffic(Cycle now)
{
    if (!pred_)
        return;
    const auto [write_bytes, read_bytes] = pred_->drainMetaTraffic();
    if (write_bytes) {
        running_.traffic.add(Traffic::SequenceCreate, write_bytes);
        metaBus_.transfer(now, static_cast<std::uint32_t>(
                                   std::min<std::uint64_t>(write_bytes,
                                                           1 << 20)));
    }
    if (read_bytes) {
        running_.traffic.add(Traffic::SequenceFetch, read_bytes);
        metaBus_.transfer(now, static_cast<std::uint32_t>(
                                   std::min<std::uint64_t>(read_bytes,
                                                           1 << 20)));
    }
}

void
TimingSim::purgeInflight(Cycle horizon)
{
    // Safety: the core's issue cycle never decreases, every later
    // completion is at least its (later) ready >= issue cycle, so an
    // entry whose fill completed at or before the current issue cycle
    // can never raise a later completion — dropping it is invisible.
    inflight_.eraseIf([horizon](Addr, const Cycle &fill) {
        return fill <= horizon;
    });
    inflightPurgeTrigger_ =
        std::max<std::size_t>(64, 2 * inflight_.size());
}

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
          typename Policy>
void
TimingSim::stepImpl(const MemRef &ref, PredCursor &cur)
{
    core_.issueNonMem(ref.nonMemGap);
    const Cycle issue = core_.beginMem();
    Cycle ready = issue;
    if (ref.dependsOnPrev)
        ready = std::max(ready, cur.lastLoad);

    const Addr block = hier_.l1d().blockAlign(ref.addr);
    if (config_.hier.modelWritebacks)
        wbNow_ = ready; // eviction listeners fire inside access()
    const HierOutcome out =
        hier_.access<L1Assoc, L2Assoc, Policy>(ref.addr, ref.op);
    cur.accesses++;

    Cycle complete;
    if (out.l1Hit()) {
        complete = ready + config_.hier.l1d.latency;
        // The block may be present functionally but still in flight;
        // an open-addressed probe is cheap enough to do every time.
        if (const Cycle *fill = inflight_.find(block)) {
            if (*fill > complete) {
                complete = *fill;
                cur.partial++;
            }
            inflight_.erase(block);
        }
        if (out.l1HitOnPrefetch) {
            cur.correct++;
            // The access consumed the L1 line's classification
            // entry; fall back to an L2-side entry.
            std::uint8_t meta = out.l1Meta;
            if (!(meta & LineMetaFetched))
                meta = hier_.l2().takeMeta(block);
            if ((meta & LineMetaFetched) && (meta & LineMetaOffChip)) {
                running_.traffic.add(Traffic::BaseData,
                                     config_.hier.l1d.lineBytes);
            }
            if (pred_)
                bufferFeedback(ref.addr, false);
        }
    } else {
        cur.l1Misses++;
        if (out.level == HitLevel::Memory) {
            cur.l2Misses++;
            running_.traffic.add(Traffic::BaseData,
                                 config_.hier.l1d.lineBytes);
        } else if (out.l2HitOnPrefetch) {
            if ((out.l2Meta & LineMetaFetched) &&
                (out.l2Meta & LineMetaOffChip)) {
                running_.traffic.add(Traffic::BaseData,
                                     config_.hier.l1d.lineBytes);
            }
            if (pred_)
                bufferFeedback(ref.addr, false);
        }

        // A prefetch fill still in flight (L2 prefetch, or an L1
        // prefetch whose line was evicted before arrival) floors the
        // completion: the demand cannot finish before the data shows
        // up. Counted as partial only when the floor binds.
        Cycle inflight_floor = 0;
        if (const Cycle *fill = inflight_.find(block)) {
            inflight_floor = *fill;
            inflight_.erase(block);
        }

        if (auto merged = mshrs_.lookup(block)) {
            mshrs_.noteMerge();
            complete = std::max(*merged, ready +
                                config_.hier.l1d.latency);
            if (inflight_floor > complete) {
                complete = inflight_floor;
                cur.partial++;
            }
        } else {
            const Cycle alloc = mshrs_.allocReadyAt(ready);
            complete = missCompletion(block, out.level, alloc);
            if (inflight_floor > complete) {
                complete = inflight_floor;
                cur.partial++;
            }
            mshrs_.allocate(block, alloc, complete);
        }
        cur.missLatency += complete - ready;
    }

    core_.completeMem(complete);
    if (ref.isLoad())
        cur.lastLoad = complete;
    mshrs_.retire(complete);

    if (pred_) {
        // Access-time feedback (evictions, consumed prefetches) must
        // be visible before the predictor reads confidences.
        flushFeedback();
        pred_->setNow(issue);
        pred_->observe(ref, out);
        pred_->drainRequestsInto(reqBuf_);
        for (const PrefetchRequest &req : reqBuf_)
            enqueuePrefetch(req, ready);
        drainPrefetchQueue(ready);
        // Issue-time feedback writes confidence bytes the metadata
        // charge below accounts.
        flushFeedback();
        chargeMetaTraffic(issue);
        if (inflight_.size() >= inflightPurgeTrigger_)
            purgeInflight(issue);
    }
}

void
TimingSim::step(const MemRef &ref)
{
    PredCursor cur;
    cur.lastLoad = lastLoadComplete_;
    stepImpl<0, 0, PolicyAuto>(ref, cur);
    commitPred(cur);
}

/**
 * How many references run() pulls per fill() call (matches the trace
 * engine's batch: large enough to amortize the virtual hop, small
 * enough to stay L1-resident).
 */
constexpr std::size_t timingBatchRefs = 256;

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
          typename Policy>
std::uint64_t
TimingSim::runBaselineLoop(TraceSource &src, std::uint64_t refs)
{
    // See the declaration comment: step() with no predictor attached
    // and no prefetch state in the hierarchy degenerates to the
    // core/MSHR/bus event sequence below. Counters live in locals for
    // the whole run (the caches' via BaselineCursor) and state is
    // reconciled afterwards; the associativity template arguments let
    // the compiler unroll the way scans for the common geometries.
    Cache &l1 = hier_.l1d();
    Cache &l2 = hier_.l2();
    Cache::BaselineCursor c1 = l1.baselineCursor();
    Cache::BaselineCursor c2 = l2.baselineCursor();
    const Cycle l1_lat = config_.hier.l1d.latency;
    std::uint64_t accesses = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;
    Cycle miss_latency = 0;
    Cycle last_load = lastLoadComplete_;

    std::uint64_t done = 0;
    while (done < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, timingBatchRefs));
        const std::size_t got = src.fill({batch_.data(), want});
        for (std::size_t i = 0; i < got; i++) {
            const MemRef &ref = batch_[i];
            core_.issueNonMem(ref.nonMemGap);
            const Cycle issue = core_.beginMem();
            Cycle ready = issue;
            if (ref.dependsOnPrev)
                ready = std::max(ready, last_load);

            Cycle complete;
            if (l1.accessBaseline<L1Assoc, Policy>(ref.addr, ref.op,
                                                   c1)) {
                complete = ready + l1_lat;
            } else {
                l1_misses++;
                const bool l2_hit = l2.accessBaseline<L2Assoc, Policy>(
                    ref.addr, ref.op, c2);
                if (!l2_hit)
                    l2_misses++;
                const Addr block = l1.blockAlign(ref.addr);
                if (auto merged = mshrs_.lookup(block)) {
                    mshrs_.noteMerge();
                    complete = std::max(*merged, ready + l1_lat);
                } else {
                    const Cycle alloc = mshrs_.allocReadyAt(ready);
                    complete = missCompletion(
                        block, l2_hit ? HitLevel::L2 : HitLevel::Memory,
                        alloc);
                    mshrs_.allocate(block, alloc, complete);
                }
                miss_latency += complete - ready;
            }

            core_.completeMem(complete);
            if (ref.isLoad())
                last_load = complete;
            mshrs_.retire(complete);
        }
        accesses += got;
        done += got;
        if (got < want)
            break; // end of trace
    }

    l1.commitBaseline(c1);
    l2.commitBaseline(c2);
    hier_.noteBaselineBatch(accesses, l1_misses, l2_misses);
    lastLoadComplete_ = last_load;
    running_.accesses += accesses;
    running_.l1Misses += l1_misses;
    running_.l2Misses += l2_misses;
    running_.missLatencyTotal += miss_latency;
    running_.traffic.add(Traffic::BaseData,
                         l2_misses * config_.hier.l1d.lineBytes);
    return done;
}

std::uint64_t
TimingSim::runBaseline(TraceSource &src, std::uint64_t refs)
{
    // Dispatch once per run to a way-scan-unrolled, policy-inlined
    // instantiation for the geometries the experiments actually
    // sweep; anything else takes the runtime loop (same semantics).
    return dispatchHierarchyKernel(
        hier_.l1d().config(), hier_.l2().config(),
        [&](auto a1, auto a2, auto pol) {
            return runBaselineLoop<a1(), a2(), decltype(pol)>(src,
                                                              refs);
        });
}

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
          typename Policy>
std::uint64_t
TimingSim::runPredictedLoop(TraceSource &src, std::uint64_t refs)
{
    // Same per-reference events as step() (shared stepImpl), but the
    // cursor counters live in registers for the whole run and the way
    // scans are unrolled for the static associativities.
    PredCursor cur;
    cur.lastLoad = lastLoadComplete_;
    std::uint64_t done = 0;
    while (done < refs) {
        // Clamp the pull to the caller's budget: a multi-programmed
        // quantum must not consume records its next quantum replays.
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, timingBatchRefs));
        const std::size_t got = src.fill({batch_.data(), want});
        for (std::size_t i = 0; i < got; i++)
            stepImpl<L1Assoc, L2Assoc, Policy>(batch_[i], cur);
        done += got;
        if (got < want)
            break; // end of trace
    }
    commitPred(cur);
    return done;
}

std::uint64_t
TimingSim::runPredicted(TraceSource &src, std::uint64_t refs)
{
    return dispatchHierarchyKernel(
        hier_.l1d().config(), hier_.l2().config(),
        [&](auto a1, auto a2, auto pol) {
            return runPredictedLoop<a1(), a2(), decltype(pol)>(src,
                                                               refs);
        });
}

std::uint64_t
TimingSim::run(TraceSource &src, std::uint64_t refs)
{
    if (batch_.size() < timingBatchRefs)
        batch_.resize(timingBatchRefs);

    // Baseline runs take the trimmed kernel. The prefetchFills guard
    // keeps it exact even if the caller injected prefetches by hand
    // (then lines may carry prefetched/meta state the kernel skips);
    // with no predictor the in-flight table and request queue are
    // empty by construction. Writeback modelling needs the eviction
    // listeners, which the trimmed kernel bypasses.
    if (pred_ == nullptr && !config_.hier.perfectL1 &&
        !config_.hier.modelWritebacks &&
        hier_.l1d().prefetchFills() == 0 &&
        hier_.l2().prefetchFills() == 0) {
        const std::uint64_t done = runBaseline(src, refs);
        maybeAudit();
        return done;
    }

    const std::uint64_t done = runPredicted(src, refs);
    maybeAudit();
    return done;
}

void
TimingSim::auditInvariants() const
{
    hier_.l1d().auditInvariants();
    hier_.l2().auditInvariants();
    mshrs_.auditInvariants();
    core_.auditInvariants();
    l1l2Req_.auditInvariants();
    l1l2Data_.auditInvariants();
    memReq_.auditInvariants();
    memData_.auditInvariants();
    pfPace_.auditInvariants();
    metaBus_.auditInvariants();
    dram_.auditInvariants();
    if (pred_)
        pred_->auditInvariants();
    inflight_.auditInvariants();
    inflight_.forEach([this](Addr block, const Cycle &) {
        LTC_CHECK(hier_.l1d().blockAlign(block) == block,
                  "unaligned in-flight block ", block);
    });
}

TimingStats
TimingSim::stats() const
{
    TimingStats s = running_;
    s.cycles = core_.finishCycle();
    s.instructions = core_.instructions();
    s.ipc = core_.ipc();
    s.memBusBusy = memReq_.busyCycles() + memData_.busyCycles() +
        metaBus_.busyCycles();
    s.l1l2BusBusy = l1l2Req_.busyCycles() + l1l2Data_.busyCycles();
    s.l1l2ReqQueue = l1l2Req_.queueCycles();
    s.l1l2DataQueue = l1l2Data_.queueCycles();
    s.memReqQueue = memReq_.queueCycles();
    s.memDataQueue = memData_.queueCycles();
    return s;
}

} // namespace ltc
