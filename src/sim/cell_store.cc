#include "sim/cell_store.hh"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/experiment.hh"
#include "trace/workloads.hh"
#include "util/check.hh"
#include "util/hash.hh"
#include "util/logging.hh"

extern char **environ;

namespace ltc
{

namespace fs = std::filesystem;

// ----------------------------------------------------------- CellKey

void
CellKey::add(const std::string &field, const std::string &value)
{
    // Escape the separator characters so canonical() stays an
    // injective encoding of the field set: equal canonical strings
    // if and only if equal (field, value) multisets.
    std::string escaped;
    escaped.reserve(value.size());
    for (const char ch : value) {
        if (ch == '\\' || ch == '\n' || ch == '=')
            escaped += '\\';
        escaped += ch;
    }
    fields_.emplace_back(field, std::move(escaped));
}

void
CellKey::add(const std::string &field, std::uint64_t value)
{
    fields_.emplace_back(field, std::to_string(value));
}

std::string
CellKey::canonical() const
{
    auto sorted = fields_;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto &[field, value] : sorted) {
        out += field;
        out += '=';
        out += value;
        out += '\n';
    }
    return out;
}

std::uint64_t
CellKey::hash() const
{
    const std::string text = canonical();
    return fnv1a64(
        reinterpret_cast<const unsigned char *>(text.data()),
        text.size());
}

std::string
cellHashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

// ------------------------------------------------------ record files

namespace
{

/** The record field the integrity checksum sits in, checksum last. */
constexpr const char checksumMarker[] = ", \"checksum\": ";

/** Serialize @p r as the on-disk record for @p hash. */
std::string
encodeCellRecord(const std::string &epoch, std::uint64_t hash,
                 const RunResult &r)
{
    std::string out = "{\"schema\": 1, \"epoch\": \"";
    out += epoch;
    out += "\", \"hash\": \"";
    out += cellHashHex(hash);
    out += "\", \"records\": ";
    out += resultsToJson({r});
    out += checksumMarker;
    const std::uint64_t ck = fnv1a64(
        reinterpret_cast<const unsigned char *>(out.data()),
        out.size());
    out += std::to_string(ck);
    out += "}\n";
    return out;
}

/**
 * Value of the first `"key": "..."` field in @p text; empty if the
 * key is absent. Only called on checksum-verified records, whose
 * epoch/hash fields precede any free-form content and contain no
 * escapes by construction.
 */
std::string
extractStringField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\": \"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t begin = at + needle.size();
    const std::size_t end = text.find('"', begin);
    if (end == std::string::npos)
        return "";
    return text.substr(begin, end - begin);
}

} // namespace

CellRecordStatus
probeCellRecord(const std::string &path,
                const std::string &expected_epoch,
                std::uint64_t expected_hash, RunResult *out,
                std::string *out_epoch)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return CellRecordStatus::Corrupt;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in)
        return CellRecordStatus::Corrupt;
    const std::string text = buf.str();

    // Integrity first: nothing below touches the JSON parser (which
    // is fatal on malformed input) until the checksum has proven the
    // file is exactly what store() wrote.
    const std::size_t at = text.rfind(checksumMarker);
    if (at == std::string::npos)
        return CellRecordStatus::Corrupt;
    const std::size_t prefix =
        at + (sizeof(checksumMarker) - 1);
    std::uint64_t claimed = 0;
    const char *digits = text.data() + prefix;
    const char *end = text.data() + text.size();
    const auto res = std::from_chars(digits, end, claimed);
    if (res.ec != std::errc{})
        return CellRecordStatus::Corrupt;
    const std::string tail(res.ptr, end);
    if (tail != "}\n" && tail != "}")
        return CellRecordStatus::Corrupt;
    const std::uint64_t actual = fnv1a64(
        reinterpret_cast<const unsigned char *>(text.data()), prefix);
    if (actual != claimed)
        return CellRecordStatus::Corrupt;

    if (out_epoch)
        *out_epoch = extractStringField(text, "epoch");

    // A record renamed onto the wrong hash is corruption, not a hit.
    if (extractStringField(text, "hash") != cellHashHex(expected_hash))
        return CellRecordStatus::Corrupt;
    if (extractStringField(text, "epoch") != expected_epoch)
        return CellRecordStatus::StaleEpoch;

    std::vector<RunResult> records = resultsFromJson(text);
    if (records.size() != 1)
        return CellRecordStatus::Corrupt;
    if (out)
        *out = std::move(records.front());
    return CellRecordStatus::Ok;
}

// --------------------------------------------------------- CellStore

CellStore::CellStore(std::string dir, std::string epoch)
    : dir_(std::move(dir)),
      epoch_(epoch.empty() ? cellCodeEpoch() : std::move(epoch))
{
    LTC_CHECK(!dir_.empty(), "cell store needs a directory");
    for (const char ch : epoch_) {
        LTC_CHECK(ch != '"' && ch != '\\' &&
                      static_cast<unsigned char>(ch) >= 0x20,
                  "epoch token '", epoch_,
                  "' must embed verbatim in JSON records");
    }
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        ltc_fatal("LTC_CELL_CACHE: cannot create directory '", dir_,
                  "': ", ec.message());
}

std::string
CellStore::recordPath(std::uint64_t hash) const
{
    return dir_ + "/" + cellHashHex(hash) + ".json";
}

std::string
CellStore::claimPath(std::uint64_t hash) const
{
    return dir_ + "/" + cellHashHex(hash) + ".claim";
}

bool
CellStore::lookup(std::uint64_t hash, RunResult &out)
{
    const std::string path = recordPath(hash);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
        std::lock_guard<std::mutex> hold(lock_);
        stats_.lookups++;
        stats_.misses++;
        return false;
    }
    const CellRecordStatus status =
        probeCellRecord(path, epoch_, hash, &out);
    std::lock_guard<std::mutex> hold(lock_);
    stats_.lookups++;
    if (status == CellRecordStatus::Ok) {
        stats_.hits++;
        return true;
    }
    stats_.misses++;
    if (status == CellRecordStatus::Corrupt)
        stats_.corrupt++;
    else
        stats_.stale++;
    return false;
}

void
CellStore::store(std::uint64_t hash, const RunResult &r)
{
    const std::string path = recordPath(hash);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const std::string text = encodeCellRecord(epoch_, hash, r);
    {
        std::ofstream out(tmp, std::ios::binary);
        if (out)
            out << text;
        if (!out) {
            // Best effort: a store that cannot be written costs a
            // recompute next run, never a wrong result.
            ltc_warn("cell store: cannot write '", tmp, "'");
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        ltc_warn("cell store: cannot publish '", path,
                 "': ", ec.message());
        fs::remove(tmp, ec);
        return;
    }
    std::lock_guard<std::mutex> hold(lock_);
    stats_.stores++;
}

bool
CellStore::claim(std::uint64_t hash)
{
    const std::string path = claimPath(hash);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary);
        if (out)
            out << ::getpid() << "\n";
        if (!out) {
            ltc_warn("cell store: cannot write claim '", tmp, "'");
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    // link(2) is atomic-exclusive: exactly one of N racing processes
    // sees success, everyone else gets EEXIST.
    const int rc = ::link(tmp.c_str(), path.c_str());
    const int saved = errno;
    ::unlink(tmp.c_str());
    if (rc != 0) {
        if (saved != EEXIST)
            ltc_warn("cell store: claim link '", path,
                     "' failed: ", std::strerror(saved));
        return false;
    }
    std::lock_guard<std::mutex> hold(lock_);
    stats_.claims++;
    return true;
}

long
CellStore::claimOwner(std::uint64_t hash) const
{
    std::ifstream in(claimPath(hash));
    long pid = 0;
    if (!(in >> pid) || pid <= 0)
        return 0;
    return pid;
}

void
CellStore::clearStale()
{
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (entry.path().extension() == ".claim" ||
            name.find(".tmp.") != std::string::npos) {
            std::error_code rm;
            fs::remove(entry.path(), rm);
        }
    }
    if (ec)
        ltc_warn("cell store: cannot scan '", dir_,
                 "': ", ec.message());
}

void
CellStore::noteSim()
{
    std::lock_guard<std::mutex> hold(lock_);
    stats_.sims++;
}

CellStoreStats
CellStore::stats() const
{
    std::lock_guard<std::mutex> hold(lock_);
    return stats_;
}

void
CellStore::auditInvariants() const
{
    const CellStoreStats s = stats();
    LTC_CHECK(!dir_.empty() && !epoch_.empty(),
              "cell store identity lost");
    LTC_CHECK(s.hits + s.misses == s.lookups,
              "cell store lookup accounting broken: ", s.hits, " + ",
              s.misses, " != ", s.lookups);
    LTC_CHECK(s.corrupt + s.stale <= s.misses,
              "more bad records (", s.corrupt, " corrupt + ", s.stale,
              " stale) than misses (", s.misses, ")");
    LTC_CHECK(s.sims <= s.misses,
              "simulated ", s.sims, " cells with only ", s.misses,
              " cache misses: a hit was re-simulated");
    LTC_CHECK(s.stores <= s.sims,
              "published ", s.stores, " records from ", s.sims,
              " simulations");
}

void
CellStore::maybeAudit() const
{
    if (ltcAuditEnabled())
        auditInvariants();
}

// ------------------------------------------------------ cell hashing

std::uint64_t
workloadDigest(const std::string &name)
{
    if (name.rfind("trace:", 0) != 0)
        return 0;

    // One digest per container file, however many cells sweep it.
    static std::mutex lock;
    static std::map<std::string, std::uint64_t> cache;

    std::string path;
    for (const auto &w : fileWorkloads()) {
        if (w.info.name == name) {
            path = w.path;
            break;
        }
    }
    if (path.empty())
        ltc_fatal("workload '", name,
                  "' is not a registered trace workload");

    std::lock_guard<std::mutex> hold(lock);
    const auto it = cache.find(path);
    if (it != cache.end())
        return it->second;

    std::ifstream in(path, std::ios::binary);
    if (!in)
        ltc_fatal("cannot read trace container '", path, "'");
    std::uint64_t digest = 14695981039346656037ULL;
    char buf[1 << 16];
    while (in) {
        in.read(buf, sizeof(buf));
        digest = fnv1a64(
            reinterpret_cast<const unsigned char *>(buf),
            static_cast<std::size_t>(in.gcount()), digest);
    }
    if (!in.eof())
        ltc_fatal("error reading trace container '", path, "'");
    cache.emplace(path, digest);
    return digest;
}

std::uint64_t
cellHash(const SweepSpec &spec, const RunCell &cell,
         const std::string &epoch)
{
    CellKey key;
    key.add("epoch", epoch);
    key.add("bench", spec.bench);
    key.add("segment", spec.segment);
    key.add("workload", cell.workload);
    key.add("workload_digest", workloadDigest(cell.workload));
    key.add("config", cell.config);
    key.add("seed", cell.seed);
    // Benches size their sweeps from the LTC_REFS budget before the
    // cells are built, so the raw knob is part of cell identity.
    const char *refs = std::getenv("LTC_REFS");
    key.add("refs", std::string(refs ? refs : ""));
    return key.hash();
}

// ------------------------------------------------------- sweep modes

namespace
{

/** Copy @p src's metrics into @p dst (identity stays @p dst's). */
void
adoptMetrics(RunResult &dst, const RunResult &src)
{
    for (const auto &[key, value] : src.metrics())
        dst.set(key, value);
}

/** True while @p pid names a live process we may not own. */
bool
processAlive(long pid)
{
    return ::kill(static_cast<pid_t>(pid), 0) == 0 ||
           errno == EPERM;
}

} // namespace

std::vector<RunResult>
runCellsCached(const ExperimentRunner &runner, CellStore &store,
               const SweepSpec &spec,
               const std::vector<RunCell> &cells, const CellFn &fn)
{
    std::vector<RunResult> results(cells.size());
    runner.forEachIndex(cells.size(), [&](std::size_t i) {
        results[i].cell = cells[i];
        const std::uint64_t h =
            cellHash(spec, cells[i], store.epoch());
        RunResult cached;
        if (store.lookup(h, cached)) {
            adoptMetrics(results[i], cached);
            return;
        }
        store.noteSim();
        fn(cells[i], results[i]);
        store.store(h, results[i]);
    });
    store.maybeAudit();
    return results;
}

std::vector<RunResult>
runCellsClaiming(CellStore &store, const SweepSpec &spec,
                 const std::vector<RunCell> &cells, const CellFn &fn,
                 std::size_t start_offset)
{
    const std::size_t n = cells.size();
    std::vector<RunResult> results(n);
    if (n == 0)
        return results;

    std::vector<std::uint64_t> hashes(n);
    std::vector<char> done(n, 0);
    for (std::size_t i = 0; i < n; i++) {
        hashes[i] = cellHash(spec, cells[i], store.epoch());
        results[i].cell = cells[i];
    }

    auto compute = [&](std::size_t i) {
        store.noteSim();
        RunResult r;
        r.cell = cells[i];
        fn(cells[i], r);
        store.store(hashes[i], r);
        // Use the direct result: correct even if store() failed.
        adoptMetrics(results[i], r);
        done[i] = 1;
    };

    // Pass 1: claim-and-compute. Participants start at different
    // offsets so they mostly claim disjoint cells and contention
    // stays on the claim files, not on the simulations.
    for (std::size_t k = 0; k < n; k++) {
        const std::size_t i = (start_offset + k) % n;
        RunResult cached;
        if (store.lookup(hashes[i], cached)) {
            adoptMetrics(results[i], cached);
            done[i] = 1;
            continue;
        }
        if (store.claim(hashes[i]))
            compute(i);
    }

    // Pass 2: merge the cells other participants claimed, waiting on
    // live claimants and recomputing after dead ones. Recomputing is
    // always safe - cells are deterministic, so a duplicated compute
    // publishes identical bytes - so the generous deadline only
    // guards against a recycled pid keeping a dead claim "alive".
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::minutes(10);
    for (std::size_t i = 0; i < n; i++) {
        while (!done[i]) {
            RunResult cached;
            if (store.lookup(hashes[i], cached)) {
                adoptMetrics(results[i], cached);
                done[i] = 1;
                break;
            }
            const long owner = store.claimOwner(hashes[i]);
            if (owner == 0 || !processAlive(owner) ||
                std::chrono::steady_clock::now() > deadline) {
                compute(i);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    }

    store.maybeAudit();
    return results;
}

std::vector<std::pair<std::string, std::string>>
workerEnvironment(const std::string &store_dir, unsigned index)
{
    std::vector<std::pair<std::string, std::string>> env;
    env.emplace_back("LTC_SWEEP_WORKER", std::to_string(index));
    env.emplace_back("LTC_CELL_CACHE", store_dir);
    // setTraceDir() (a --trace-dir flag) is process-global state a
    // re-executed worker would lose; hand the effective directory
    // down explicitly so trace:<stem> cells resolve identically.
    const std::string traces = traceDir();
    if (!traces.empty())
        env.emplace_back("LTC_TRACE_DIR", traces);
    return env;
}

std::vector<RunResult>
runCellsMultiProcess(CellStore &store, const SweepSpec &spec,
                     const std::vector<RunCell> &cells,
                     const CellFn &fn, unsigned workers,
                     char *const *argv)
{
    LTC_CHECK(argv && argv[0], "worker spawn needs the bench argv");
    store.clearStale();

    // Re-execute this binary, not argv[0]: the bench may have been
    // found via PATH or run from another directory.
    char exe[4096];
    const ssize_t len =
        ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    const std::string self =
        len > 0 ? std::string(exe, static_cast<std::size_t>(len))
                : std::string(argv[0]);

    std::vector<pid_t> kids;
    for (unsigned k = 1; k <= workers; k++) {
        const auto overrides =
            workerEnvironment(store.dir(), k);
        // Build the worker environment before fork: inherited
        // variables minus the overridden names, plus the overrides.
        std::vector<std::string> env_strings;
        for (char **e = environ; *e; e++) {
            const std::string entry = *e;
            const std::size_t eq = entry.find('=');
            const std::string name = entry.substr(0, eq);
            bool overridden = false;
            for (const auto &[k2, v2] : overrides)
                overridden = overridden || k2 == name;
            if (!overridden)
                env_strings.push_back(entry);
        }
        for (const auto &[k2, v2] : overrides)
            env_strings.push_back(k2 + "=" + v2);
        std::vector<char *> envp;
        envp.reserve(env_strings.size() + 1);
        for (auto &s : env_strings)
            envp.push_back(s.data());
        envp.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            ltc_warn("cell store: fork failed: ",
                     std::strerror(errno), "; running with ", k - 1,
                     " workers");
            break;
        }
        if (pid == 0) {
            ::execve(self.c_str(),
                     const_cast<char *const *>(argv), envp.data());
            // Only reached on failure; stdio state is shared with
            // the parent, so leave via _exit.
            ::_exit(127);
        }
        kids.push_back(pid);
    }

    std::vector<RunResult> results =
        runCellsClaiming(store, spec, cells, fn, 0);

    for (const pid_t pid : kids) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0) {
            ltc_warn("cell store: waitpid(", pid,
                     ") failed: ", std::strerror(errno));
        } else if (!WIFEXITED(status) ||
                   WEXITSTATUS(status) != 0) {
            // The claim loop already recomputed whatever the worker
            // left unfinished, so a dead worker costs time, not
            // correctness.
            ltc_warn("cell store: worker ", pid,
                     " exited abnormally (status ", status, ")");
        }
    }
    return results;
}

} // namespace ltc
