#include "sim/runner.hh"

#include <atomic>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <limits>
#include <mutex>
#include <thread>

#include "sim/cell_store.hh"
#include "trace/workloads.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace ltc
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("LTC_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        // strtoul accepts a leading '-' (wrapping around), so check
        // the first character ourselves.
        if (env[0] < '0' || env[0] > '9' || end == env ||
            *end != '\0' || v == 0 ||
            v > std::numeric_limits<unsigned>::max())
            ltc_fatal("LTC_JOBS must be a positive integer, got '",
                      env, "'");
        return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

// ------------------------------------------------------- RunResult

void
RunResult::set(const std::string &key, double value)
{
    for (auto &[k, v] : metrics_) {
        if (k == key) {
            v = value;
            return;
        }
    }
    metrics_.emplace_back(key, value);
}

double
RunResult::get(const std::string &key) const
{
    for (const auto &[k, v] : metrics_)
        if (k == key)
            return v;
    return 0.0;
}

bool
RunResult::has(const std::string &key) const
{
    for (const auto &[k, v] : metrics_)
        if (k == key)
            return true;
    return false;
}

// ------------------------------------------------ ExperimentRunner

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
}

void
ExperimentRunner::forEachIndex(
    std::size_t count,
    const std::function<void(std::size_t)> &fn) const
{
    if (count == 0)
        return;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; i++)
            fn(i);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorLock;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> hold(errorLock);
                    if (!error)
                        error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; t++)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

std::vector<RunResult>
ExperimentRunner::run(
    const std::vector<RunCell> &cells,
    const std::function<void(const RunCell &, RunResult &)> &fn)
    const
{
    std::vector<RunResult> results(cells.size());
    forEachIndex(cells.size(), [&](std::size_t i) {
        results[i].cell = cells[i];
        fn(cells[i], results[i]);
    });
    return results;
}

std::vector<RunCell>
ExperimentRunner::cross(const std::vector<std::string> &workloads,
                        const std::vector<std::string> &configs,
                        std::uint64_t base_seed)
{
    std::vector<RunCell> cells;
    cells.reserve(workloads.size() * configs.size());
    for (const auto &w : workloads) {
        for (const auto &c : configs) {
            RunCell cell;
            cell.workload = w;
            cell.config = c;
            cells.push_back(std::move(cell));
        }
    }
    assignSeeds(cells, base_seed);
    return cells;
}

std::vector<RunCell>
ExperimentRunner::cells(const std::vector<std::string> &workloads,
                        std::uint64_t base_seed)
{
    return cross(workloads, {""}, base_seed);
}

void
ExperimentRunner::assignSeeds(std::vector<RunCell> &cells,
                              std::uint64_t base_seed)
{
    for (std::size_t i = 0; i < cells.size(); i++) {
        cells[i].index = i;
        cells[i].seed = hashCombine(base_seed, i);
    }
}

// ---------------------------------------------------- serialization

namespace
{

/** Shortest representation that parses back to the same double. */
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

void
appendRecordJson(std::string &out, const RunResult &r)
{
    out += "{\"cell\": ";
    out += std::to_string(r.cell.index);
    out += ", \"workload\": \"";
    out += jsonEscape(r.cell.workload);
    out += "\", \"config\": \"";
    out += jsonEscape(r.cell.config);
    out += "\", \"seed\": ";
    out += std::to_string(r.cell.seed);
    out += ", \"metrics\": {";
    bool first = true;
    for (const auto &[key, value] : r.metrics()) {
        if (!first)
            out += ", ";
        first = false;
        out += '"';
        out += jsonEscape(key);
        out += "\": ";
        out += formatDouble(value);
    }
    out += "}}";
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

/**
 * Recursive-descent parser for the JSON subset the sink emits
 * (objects, arrays, strings, numbers, true/false/null). Enough to
 * round-trip our own documents; not a general-purpose validator.
 */
class JsonCursor
{
  public:
    explicit JsonCursor(const std::string &text) : text_(text) {}

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\r' || text_[pos_] == '\t'))
            pos_++;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            ltc_fatal("JSON parse error: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char ch)
    {
        if (peek() != ch)
            ltc_fatal("JSON parse error: expected '", ch, "' at byte ",
                      pos_, ", got '", text_[pos_], "'");
        pos_++;
    }

    bool
    consume(char ch)
    {
        if (peek() == ch) {
            pos_++;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                ltc_fatal("JSON parse error: unterminated string");
            const char ch = text_[pos_++];
            if (ch == '"')
                return out;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size())
                ltc_fatal("JSON parse error: dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    ltc_fatal("JSON parse error: short \\u escape");
                unsigned code = 0;
                const auto res = std::from_chars(
                    text_.data() + pos_, text_.data() + pos_ + 4,
                    code, 16);
                if (res.ptr != text_.data() + pos_ + 4)
                    ltc_fatal("JSON parse error: bad \\u escape");
                pos_ += 4;
                // The sink only emits \u00xx control codes; decode
                // the Latin-1 subset and reject the rest.
                if (code > 0xff)
                    ltc_fatal("JSON parse error: unsupported \\u",
                              "escape > 0xff");
                out += static_cast<char>(code);
                break;
              }
              default:
                ltc_fatal("JSON parse error: bad escape '\\", esc,
                          "'");
            }
        }
    }

    double
    parseNumber()
    {
        skipSpace();
        double v = 0.0;
        const auto res = std::from_chars(
            text_.data() + pos_, text_.data() + text_.size(), v);
        if (res.ec != std::errc{})
            ltc_fatal("JSON parse error: bad number at byte ", pos_);
        pos_ = static_cast<std::size_t>(res.ptr - text_.data());
        return v;
    }

    std::uint64_t
    parseUint()
    {
        skipSpace();
        std::uint64_t v = 0;
        const auto res = std::from_chars(
            text_.data() + pos_, text_.data() + text_.size(), v);
        if (res.ec != std::errc{})
            ltc_fatal("JSON parse error: bad integer at byte ", pos_);
        pos_ = static_cast<std::size_t>(res.ptr - text_.data());
        return v;
    }

    /** Skip one complete value of any supported type. */
    void
    skipValue()
    {
        const char ch = peek();
        if (ch == '"') {
            parseString();
        } else if (ch == '{') {
            pos_++;
            if (consume('}'))
                return;
            do {
                parseString();
                expect(':');
                skipValue();
            } while (consume(','));
            expect('}');
        } else if (ch == '[') {
            pos_++;
            if (consume(']'))
                return;
            do {
                skipValue();
            } while (consume(','));
            expect(']');
        } else if (ch == 't' || ch == 'f' || ch == 'n') {
            while (pos_ < text_.size() &&
                   std::isalpha(static_cast<unsigned char>(
                       text_[pos_])))
                pos_++;
        } else {
            parseNumber();
        }
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
};

RunResult
parseRecord(JsonCursor &cur)
{
    RunResult r;
    cur.expect('{');
    if (cur.consume('}'))
        return r;
    do {
        const std::string key = cur.parseString();
        cur.expect(':');
        if (key == "cell") {
            r.cell.index =
                static_cast<std::size_t>(cur.parseUint());
        } else if (key == "workload") {
            r.cell.workload = cur.parseString();
        } else if (key == "config") {
            r.cell.config = cur.parseString();
        } else if (key == "seed") {
            r.cell.seed = cur.parseUint();
        } else if (key == "metrics") {
            cur.expect('{');
            if (!cur.consume('}')) {
                do {
                    const std::string mkey = cur.parseString();
                    cur.expect(':');
                    r.set(mkey, cur.parseNumber());
                } while (cur.consume(','));
                cur.expect('}');
            }
        } else {
            cur.skipValue();
        }
    } while (cur.consume(','));
    cur.expect('}');
    return r;
}

std::vector<RunResult>
parseRecordArray(JsonCursor &cur)
{
    std::vector<RunResult> records;
    cur.expect('[');
    if (cur.consume(']'))
        return records;
    do {
        records.push_back(parseRecord(cur));
    } while (cur.consume(','));
    cur.expect(']');
    return records;
}

/**
 * Split CSV text into records of fields, honouring RFC-4180
 * quoting — including record separators inside quoted fields, so
 * any resultsToCsv() output parses back.
 */
std::vector<std::vector<std::string>>
splitCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    bool rowStarted = false;
    auto endRow = [&] {
        if (!rowStarted)
            return;
        fields.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(fields));
        fields.clear();
        rowStarted = false;
    };
    for (std::size_t i = 0; i < text.size(); i++) {
        const char ch = text[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    i++;
                } else {
                    quoted = false;
                }
            } else {
                field += ch;
            }
        } else if (ch == '"') {
            quoted = true;
            rowStarted = true;
        } else if (ch == ',') {
            fields.push_back(std::move(field));
            field.clear();
            rowStarted = true;
        } else if (ch == '\n') {
            endRow();
        } else if (ch != '\r') {
            field += ch;
            rowStarted = true;
        }
    }
    endRow();
    return rows;
}

} // namespace

std::string
resultsToJson(const std::vector<RunResult> &records)
{
    std::string out = "[";
    for (std::size_t i = 0; i < records.size(); i++) {
        out += i ? ",\n " : "\n ";
        appendRecordJson(out, records[i]);
    }
    out += records.empty() ? "]" : "\n]";
    return out;
}

std::string
resultsToCsv(const std::vector<RunResult> &records)
{
    // Metric columns: union of keys in first-appearance order.
    std::vector<std::string> keys;
    for (const auto &r : records) {
        for (const auto &[key, value] : r.metrics()) {
            bool known = false;
            for (const auto &k : keys)
                if (k == key)
                    known = true;
            if (!known)
                keys.push_back(key);
        }
    }

    std::string out = "cell,workload,config,seed";
    for (const auto &k : keys) {
        out += ',';
        out += csvEscape(k);
    }
    out += '\n';
    for (const auto &r : records) {
        out += std::to_string(r.cell.index);
        out += ',';
        out += csvEscape(r.cell.workload);
        out += ',';
        out += csvEscape(r.cell.config);
        out += ',';
        out += std::to_string(r.cell.seed);
        for (const auto &k : keys) {
            out += ',';
            if (r.has(k))
                out += formatDouble(r.get(k));
        }
        out += '\n';
    }
    return out;
}

std::vector<RunResult>
resultsFromJson(const std::string &text)
{
    JsonCursor cur(text);
    if (cur.peek() == '[')
        return parseRecordArray(cur);

    // Full sink document: scan the top-level object for "records".
    std::vector<RunResult> records;
    bool found = false;
    cur.expect('{');
    if (cur.consume('}'))
        ltc_fatal("JSON document has no \"records\" array");
    do {
        const std::string key = cur.parseString();
        cur.expect(':');
        if (key == "records") {
            records = parseRecordArray(cur);
            found = true;
        } else {
            cur.skipValue();
        }
    } while (cur.consume(','));
    cur.expect('}');
    if (!found)
        ltc_fatal("JSON document has no \"records\" array");
    return records;
}

std::vector<RunResult>
resultsFromCsv(const std::string &text)
{
    std::vector<RunResult> records;
    std::vector<std::string> keys;
    bool header = true;
    for (auto &fields : splitCsv(text)) {
        if (header) {
            if (fields.size() < 4 || fields[0] != "cell")
                ltc_fatal("CSV parse error: bad header row of ",
                          fields.size(), " fields");
            keys.assign(fields.begin() + 4, fields.end());
            header = false;
            continue;
        }
        if (fields.size() != keys.size() + 4)
            ltc_fatal("CSV parse error: row width ", fields.size(),
                      " != header width ", keys.size() + 4);
        auto parseId = [](const std::string &field,
                          const char *what) {
            std::uint64_t v = 0;
            const auto res = std::from_chars(
                field.data(), field.data() + field.size(), v);
            if (res.ec != std::errc{} ||
                res.ptr != field.data() + field.size())
                ltc_fatal("CSV parse error: bad ", what, " '", field,
                          "'");
            return v;
        };
        RunResult r;
        r.cell.index =
            static_cast<std::size_t>(parseId(fields[0], "cell"));
        r.cell.workload = fields[1];
        r.cell.config = fields[2];
        r.cell.seed = parseId(fields[3], "seed");
        for (std::size_t k = 0; k < keys.size(); k++) {
            const std::string &field = fields[4 + k];
            if (field.empty())
                continue;
            double v = 0.0;
            const auto res = std::from_chars(
                field.data(), field.data() + field.size(), v);
            if (res.ec != std::errc{})
                ltc_fatal("CSV parse error: bad number '", field,
                          "'");
            r.set(keys[k], v);
        }
        records.push_back(std::move(r));
    }
    return records;
}

// --------------------------------------------------------- ResultSink

namespace
{

/** Parse a positive integer environment/flag value or die. */
unsigned
parsePositive(const char *text, const char *what)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (text[0] < '0' || text[0] > '9' || end == text ||
        *end != '\0' || v == 0 ||
        v > std::numeric_limits<unsigned>::max())
        ltc_fatal(what, " must be a positive integer, got '", text,
                  "'");
    return static_cast<unsigned>(v);
}

} // namespace

ResultSink::ResultSink(std::string bench, int argc,
                       char *const *argv)
    : bench_(std::move(bench)), argv_(argv)
{
    if (const char *env = std::getenv("LTC_JSON"))
        jsonPath_ = env;
    if (const char *env = std::getenv("LTC_CSV"))
        csvPath_ = env;
    if (const char *env = std::getenv("LTC_CELL_CACHE"))
        cacheDir_ = env;
    if (const char *env = std::getenv("LTC_SWEEP_PROCS"))
        procs_ = parsePositive(env, "LTC_SWEEP_PROCS");
    if (const char *env = std::getenv("LTC_SWEEP_WORKER"))
        workerIndex_ = parsePositive(env, "LTC_SWEEP_WORKER");

    auto takeValue = [&](int &i, const std::string &arg,
                         const char *flag) -> const char * {
        const std::string prefix = std::string(flag) + "=";
        if (arg.rfind(prefix, 0) == 0)
            return argv[i] + prefix.size();
        if (arg == flag) {
            if (i + 1 >= argc)
                ltc_fatal(flag, " requires a path argument");
            return argv[++i];
        }
        return nullptr;
    };

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (const char *v = takeValue(i, arg, "--json")) {
            if (*v == '\0')
                ltc_fatal("--json requires a non-empty path");
            jsonPath_ = v;
        } else if (const char *v = takeValue(i, arg, "--csv")) {
            if (*v == '\0')
                ltc_fatal("--csv requires a non-empty path");
            csvPath_ = v;
        } else if (const char *v = takeValue(i, arg, "--trace-dir")) {
            if (*v == '\0')
                ltc_fatal("--trace-dir requires a non-empty path");
            // Equivalent to LTC_TRACE_DIR: the workload registry
            // (trace/workloads.hh) discovers *.ltct containers there
            // and benches sweep them like built-ins.
            setTraceDir(v);
        } else if (const char *v = takeValue(i, arg, "--cell-cache")) {
            if (*v == '\0')
                ltc_fatal("--cell-cache requires a non-empty path");
            cacheDir_ = v;
        } else if (const char *v = takeValue(i, arg, "--procs")) {
            procs_ = parsePositive(v, "--procs");
        } else {
            ltc_fatal("unknown argument '", arg, "'; usage: ", bench_,
                      " [--json <path>] [--csv <path>]",
                      " [--trace-dir <dir>] [--cell-cache <dir>]",
                      " [--procs <n>] (or LTC_JSON/LTC_CSV/",
                      "LTC_TRACE_DIR/LTC_CELL_CACHE/LTC_SWEEP_PROCS",
                      " env vars; \"-\" = stdout)");
        }
    }

    if (procs_ > 1 && cacheDir_.empty())
        ltc_fatal("--procs/LTC_SWEEP_PROCS needs a cell cache ",
                  "(--cell-cache/LTC_CELL_CACHE): workers exchange ",
                  "results through the store");

    if (workerIndex_ > 0) {
        // A sweep worker replays the bench's main() for its side
        // effects on the shared store only: silence the tables and
        // notes and drop the exports so workers never race the
        // coordinator's output files.
        if (cacheDir_.empty())
            ltc_fatal("LTC_SWEEP_WORKER=", workerIndex_,
                      " without LTC_CELL_CACHE");
        if (!std::freopen("/dev/null", "w", stdout))
            ltc_fatal("sweep worker: cannot silence stdout");
        jsonPath_.clear();
        csvPath_.clear();
    }
}

ResultSink::~ResultSink() = default;

std::vector<RunResult>
ResultSink::run(
    const ExperimentRunner &runner, const std::vector<RunCell> &cells,
    const std::function<void(const RunCell &, RunResult &)> &fn,
    bool cacheable)
{
    // Segment ordinal: part of every cell hash, so two sweeps of one
    // bench with identical (workload, config) labels cannot collide.
    // Workers replay the same main(), so their ordinals line up.
    const std::uint64_t segment = sweepCalls_++;
    if (!cacheable || cacheDir_.empty())
        return runner.run(cells, fn);

    if (!store_)
        store_ = std::make_unique<CellStore>(cacheDir_);
    SweepSpec spec;
    spec.bench = bench_;
    spec.segment = segment;

    if (workerIndex_ > 0) {
        // Decorrelate worker starting points (Fibonacci hashing);
        // runCellsClaiming reduces the offset modulo the cell count.
        const std::size_t offset =
            static_cast<std::size_t>(workerIndex_) * 2654435761ULL;
        return runCellsClaiming(*store_, spec, cells, fn, offset);
    }
    if (procs_ > 1) {
        if (!argv_)
            ltc_fatal("--procs needs ResultSink(bench, argc, argv): ",
                      "workers re-execute the bench's command line");
        return runCellsMultiProcess(*store_, spec, cells, fn,
                                    procs_ - 1, argv_);
    }
    return runCellsCached(runner, *store_, spec, cells, fn);
}

CellStoreStats
ResultSink::cellStats() const
{
    return store_ ? store_->stats() : CellStoreStats{};
}

void
ResultSink::table(const Table &t)
{
    std::fputs(t.render().c_str(), stdout);
    std::fputs("\n[csv]\n", stdout);
    std::fputs(t.csv().c_str(), stdout);
    std::fputs("\n", stdout);
    tables_.push_back(t);
}

void
ResultSink::add(std::vector<RunResult> records)
{
    for (auto &r : records)
        records_.push_back(std::move(r));
}

void
ResultSink::note(const std::string &line)
{
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    notes_.push_back(line);
}

std::string
ResultSink::json() const
{
    std::string out = "{\"bench\": \"";
    out += jsonEscape(bench_);
    out += "\", \"schema\": 1,\n\"records\": ";
    out += resultsToJson(records_);
    out += ",\n\"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); t++) {
        const Table &table = tables_[t];
        out += t ? ",\n " : "\n ";
        out += "{\"title\": \"";
        out += jsonEscape(table.title());
        out += "\", \"header\": [";
        for (std::size_t i = 0; i < table.header().size(); i++) {
            if (i)
                out += ", ";
            out += '"';
            out += jsonEscape(table.header()[i]);
            out += '"';
        }
        out += "], \"rows\": [";
        for (std::size_t r = 0; r < table.rows().size(); r++) {
            if (r)
                out += ", ";
            out += '[';
            const auto &row = table.rows()[r];
            for (std::size_t i = 0; i < row.size(); i++) {
                if (i)
                    out += ", ";
                out += '"';
                out += jsonEscape(row[i]);
                out += '"';
            }
            out += ']';
        }
        out += "]}";
    }
    out += tables_.empty() ? "]" : "\n]";
    out += ",\n\"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); i++) {
        if (i)
            out += ", ";
        out += '"';
        out += jsonEscape(notes_[i]);
        out += '"';
    }
    out += "]}\n";
    return out;
}

int
ResultSink::finish()
{
    auto write = [&](const std::string &path,
                     const std::string &content, const char *kind) {
        if (path.empty())
            return;
        if (path == "-") {
            std::fputs(content.c_str(), stdout);
            return;
        }
        std::ofstream out(path, std::ios::binary);
        if (!out)
            ltc_fatal("cannot open ", kind, " output file '", path,
                      "'");
        out << content;
        if (!out)
            ltc_fatal("error writing ", kind, " output file '", path,
                      "'");
    };
    write(jsonPath_, json(), "JSON");
    write(csvPath_, resultsToCsv(records_), "CSV");

    // LTC_CELL_STATS=1: one machine-greppable stderr line with the
    // fabric counters (stderr so it never lands in "-" exports).
    // CI's warm-cache gate asserts `sims=0` from it.
    if (store_ && std::getenv("LTC_CELL_STATS")) {
        const CellStoreStats s = store_->stats();
        std::fprintf(stderr,
                     "[cell-cache] %s lookups=%llu hits=%llu "
                     "misses=%llu corrupt=%llu stale=%llu "
                     "sims=%llu stores=%llu claims=%llu\n",
                     bench_.c_str(),
                     static_cast<unsigned long long>(s.lookups),
                     static_cast<unsigned long long>(s.hits),
                     static_cast<unsigned long long>(s.misses),
                     static_cast<unsigned long long>(s.corrupt),
                     static_cast<unsigned long long>(s.stale),
                     static_cast<unsigned long long>(s.sims),
                     static_cast<unsigned long long>(s.stores),
                     static_cast<unsigned long long>(s.claims));
    }
    return 0;
}

} // namespace ltc
