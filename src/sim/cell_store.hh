/**
 * @file
 * Content-addressed, resumable experiment fabric.
 *
 * Production-scale parameter studies re-run thousands of
 * (figure x geometry x predictor x trace) cells after every change;
 * recomputing a whole sweep because one predictor changed, or losing
 * a killed run entirely, does not scale. This layer models a sweep
 * the way an incremental build system models commands (the riker
 * BuildGraph idea: commands as cached nodes, prune and reload on
 * change):
 *
 *  - every cell gets a stable 64-bit **content hash** over its
 *    canonicalized identity: bench, sweep segment, config label,
 *    workload identity (for file-backed workloads the digest of the
 *    .ltct container, which covers every chunk checksum), per-cell
 *    seed, the LTC_REFS budget, and a code-epoch token
 *    (sim/experiment.hh) that is bumped whenever simulation
 *    semantics change;
 *
 *  - a **CellStore** keeps one integrity-checksummed JSON record per
 *    hash in an on-disk directory (the LTC_CELL_CACHE knob). Hits
 *    skip simulation entirely; truncated, bit-flipped, mislabelled
 *    or stale-epoch records are treated as misses and recomputed,
 *    never served and never fatal;
 *
 *  - a **multi-process backend**: LTC_SWEEP_PROCS=N re-executes the
 *    bench binary N times in worker mode; workers claim cells
 *    through atomically linked claim files in the store and publish
 *    results via atomic rename, and the parent merges the records
 *    through the existing JSON round-trip, so any process count is
 *    byte-identical - exactly the guarantee LTC_JOBS already gives
 *    for threads.
 *
 * A killed sweep resumes where it stopped: records are published
 * atomically, so on re-run every completed cell is a cache hit and
 * only the remainder simulates. tools/ltc_sweep.cc is the companion
 * CLI for inspecting, verifying and garbage-collecting a store.
 */

#ifndef LTC_SIM_CELL_STORE_HH
#define LTC_SIM_CELL_STORE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/runner.hh"

namespace ltc
{

/**
 * Canonicalized key material for one experiment cell.
 *
 * Fields are (name, value) pairs; canonical() sorts them by name so
 * the resulting hash is independent of the order in which callers
 * add them. Hashes must be stable across processes, platforms and
 * field orderings - they name on-disk records that outlive the run.
 */
class CellKey
{
  public:
    /** Add a string-valued field. */
    void add(const std::string &field, const std::string &value);

    /** Add an unsigned-integer field (decimal canonical form). */
    void add(const std::string &field, std::uint64_t value);

    /**
     * The canonical serialization: "field=value\n" lines sorted
     * bytewise by field (ties broken by value), so any insertion
     * order canonicalizes identically.
     */
    std::string canonical() const;

    /** fnv1a64 of canonical(): the cell's content hash. */
    std::uint64_t hash() const;

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** @p hash as the fabric's canonical 16-digit lower-case hex form. */
std::string cellHashHex(std::uint64_t hash);

/** Validation outcome of one on-disk cell record. */
enum class CellRecordStatus
{
    Ok = 0,     //!< checksum, epoch and hash all verified
    Corrupt,    //!< unreadable, truncated, checksum or hash mismatch
    StaleEpoch, //!< valid record written under a different code epoch
};

/**
 * Parse and validate the cell record at @p path.
 *
 * Validation order: the trailing integrity checksum first (so a
 * truncated or bit-flipped file can never reach the JSON parser),
 * then the embedded content hash against @p expected_hash (a record
 * renamed to the wrong name is corrupt, not a hit), then the code
 * epoch against @p expected_epoch. Never fatal on bad input.
 *
 * @param expected_hash Hash the record must be for (its filename).
 * @param out           Optional: the cached RunResult on Ok.
 * @param out_epoch     Optional: the record's stored epoch token,
 *                      filled whenever the checksum verifies (so a
 *                      stale record still reports which epoch wrote
 *                      it).
 */
CellRecordStatus probeCellRecord(const std::string &path,
                                 const std::string &expected_epoch,
                                 std::uint64_t expected_hash,
                                 RunResult *out = nullptr,
                                 std::string *out_epoch = nullptr);

/** In-memory counters of one CellStore (monotonic over its life). */
struct CellStoreStats
{
    std::uint64_t lookups = 0; //!< lookup() calls
    std::uint64_t hits = 0;    //!< records served from disk
    std::uint64_t misses = 0;  //!< lookups that found no usable record
    std::uint64_t corrupt = 0; //!< misses caused by corrupt records
    std::uint64_t stale = 0;   //!< misses caused by stale-epoch records
    std::uint64_t sims = 0;    //!< cells actually simulated
    std::uint64_t stores = 0;  //!< records published via store()
    std::uint64_t claims = 0;  //!< claim files acquired
};

/**
 * On-disk cache of experiment-cell results, one JSON record per
 * content hash.
 *
 * Record layout (a superset of the ResultSink document so the
 * existing resultsFromJson() round-trip parses it):
 *
 *     {"schema": 1, "epoch": "<token>", "hash": "<16 hex>",
 *      "records": [<one RunResult record>], "checksum": <fnv1a64>}
 *
 * The checksum covers every byte before its own field; records are
 * written to a temporary file and published with an atomic rename,
 * so readers never observe a partial record. lookup() and store()
 * are safe to call concurrently from the runner's worker threads and
 * from cooperating processes sharing the directory.
 */
class CellStore
{
  public:
    /**
     * Open (creating if needed) the store at @p dir.
     * @param epoch Code-epoch token records are keyed under; empty
     *        selects cellCodeEpoch() (sim/experiment.hh).
     */
    explicit CellStore(std::string dir, std::string epoch = "");

    CellStore(const CellStore &) = delete;
    CellStore &operator=(const CellStore &) = delete;

    /** Store directory. */
    const std::string &dir() const { return dir_; }

    /** Code-epoch token this store reads and writes under. */
    const std::string &epoch() const { return epoch_; }

    /**
     * Fetch the record for @p hash into @p out (cell identity
     * included, metrics in stored insertion order). Corrupt or
     * stale records count as misses; they are left on disk for
     * `ltc-sweep gc` rather than deleted under a concurrent reader.
     * @return true on a verified hit.
     */
    bool lookup(std::uint64_t hash, RunResult &out);

    /** Publish @p r as the record for @p hash (atomic rename). */
    void store(std::uint64_t hash, const RunResult &r);

    /**
     * Try to acquire the claim file for @p hash: the multi-process
     * backend's mutual exclusion. The claim is taken by atomically
     * link(2)ing a per-process temporary into the claim name, which
     * fails if any other process holds it. Claims record the owning
     * pid and persist until clearStale().
     * @return true if this process now owns the claim.
     */
    bool claim(std::uint64_t hash);

    /** Pid recorded in @p hash's claim file; 0 if unclaimed. */
    long claimOwner(std::uint64_t hash) const;

    /**
     * Remove leftover claim and temporary files (from this or any
     * previous - possibly killed - sweep). The coordinating process
     * calls this once at sweep start, before spawning workers;
     * result records are never touched.
     */
    void clearStale();

    /** On-disk path of @p hash's result record. */
    std::string recordPath(std::uint64_t hash) const;

    /** On-disk path of @p hash's claim file. */
    std::string claimPath(std::uint64_t hash) const;

    /** Count the cell simulated: bookkeeping for the audit algebra. */
    void noteSim();

    /** Snapshot of the counters. */
    CellStoreStats stats() const;

    /**
     * Structural audit of the in-memory counters (util/check.hh):
     * hits + misses == lookups, corrupt + stale <= misses, and every
     * simulation must have been preceded by a miss. Panics on
     * violation.
     */
    void auditInvariants() const;

    /** auditInvariants() when ltcAuditEnabled() (LTC_AUDIT hook). */
    void maybeAudit() const;

  private:
    friend struct CellStoreTestPeer;

    std::string dir_;
    std::string epoch_;
    mutable std::mutex lock_; //!< guards stats_
    CellStoreStats stats_;
};

/**
 * Identity of one sweep within a bench: the key material shared by
 * all its cells. A bench that runs several sweeps distinguishes them
 * by segment ordinal (ResultSink::run() assigns these in call
 * order), because the same (workload, config) pair may mean a
 * different computation in each segment.
 */
struct SweepSpec
{
    std::string bench;        //!< bench name (part of every hash)
    std::uint64_t segment = 0; //!< ordinal of this sweep in the bench
};

/**
 * Identity digest of workload @p name: 0 for synthetic generators
 * (their identity is the name plus the code epoch), and the fnv1a64
 * digest of the backing .ltct container - covering header, every
 * chunk checksum and every payload byte - for "trace:" workloads,
 * so editing a trace file invalidates its cached cells. Digests are
 * memoized per path; fatal if the file cannot be read (a registered
 * trace workload must be usable).
 */
std::uint64_t workloadDigest(const std::string &name);

/**
 * Content hash of @p cell within @p spec under @p epoch: the
 * CellKey over (epoch, bench, segment, workload, workload digest,
 * config, seed, LTC_REFS). Stable across processes and platforms.
 */
std::uint64_t cellHash(const SweepSpec &spec, const RunCell &cell,
                       const std::string &epoch);

/** Cell evaluation function, as taken by ExperimentRunner::run(). */
using CellFn = std::function<void(const RunCell &, RunResult &)>;

/**
 * Thread-pooled cached sweep (the single-process fast path): every
 * cell is looked up in @p store first; hits skip simulation, misses
 * run @p fn on the runner's pool and publish their records. Output
 * is byte-identical to ExperimentRunner::run() for any mix of hits
 * and misses because the record round-trip is exact.
 */
std::vector<RunResult>
runCellsCached(const ExperimentRunner &runner, CellStore &store,
               const SweepSpec &spec,
               const std::vector<RunCell> &cells, const CellFn &fn);

/**
 * Claim-loop participant of a multi-process sweep: first pass claims
 * and computes every cell not yet stored, starting at
 * @p start_offset to spread contention; second pass merges all
 * records in index order, waiting on cells whose claim is held by a
 * live process and recomputing cells whose claimant died (results
 * are deterministic, so duplicated computation publishes identical
 * bytes). Runs cells serially - process-level parallelism comes from
 * running several participants.
 */
std::vector<RunResult>
runCellsClaiming(CellStore &store, const SweepSpec &spec,
                 const std::vector<RunCell> &cells, const CellFn &fn,
                 std::size_t start_offset);

/**
 * Environment overrides a spawned worker needs on top of the
 * inherited environment: its worker index, the store directory, and
 * - because setTraceDir() is process-global state that re-execution
 * would otherwise lose - the effective trace-discovery directory as
 * LTC_TRACE_DIR whenever one is active.
 */
std::vector<std::pair<std::string, std::string>>
workerEnvironment(const std::string &store_dir, unsigned index);

/**
 * Coordinating side of the multi-process backend: clear stale
 * claims, re-execute this binary (@p argv, which the C runtime
 * null-terminates) @p workers times in worker mode via
 * workerEnvironment(), participate in the claim loop, then reap the
 * workers and return the merged, index-ordered results. A worker
 * that dies is only a warning: the claim loop recomputes whatever
 * it left unfinished.
 */
std::vector<RunResult>
runCellsMultiProcess(CellStore &store, const SweepSpec &spec,
                     const std::vector<RunCell> &cells,
                     const CellFn &fn, unsigned workers,
                     char *const *argv);

} // namespace ltc

#endif // LTC_SIM_CELL_STORE_HH
