#include "sim/trace_engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ltc
{

/**
 * How many references run() pulls per fill() call. Large enough to
 * amortize the per-batch virtual hop to nothing, small enough that
 * the buffer stays L1-resident (256 records = 6KB): the batch is
 * written by the generator and immediately re-read by the engine, so
 * spilling it to L2 costs more than the dispatch it saves.
 */
constexpr std::size_t engineBatchRefs = 256;

/**
 * L2 eviction listener: when a block prefetched into L2 (GHB/stride
 * style) dies unused, classify its off-chip transfer as incorrect-
 * prediction traffic and tell the predictor.
 */
class TraceEngine::L2Listener : public CacheListener
{
  public:
    explicit L2Listener(TraceEngine &owner) : owner_(owner) {}

    void
    onEviction(Addr victim_addr, Addr incoming_addr, std::uint32_t set,
               bool by_prefetch, bool victim_was_untouched_prefetch,
               bool victim_dirty, std::uint8_t victim_meta) override
    {
        (void)incoming_addr;
        (void)set;
        (void)by_prefetch;
        if (victim_dirty && owner_.hierConfig_.modelWritebacks) {
            // A dirty L2 victim crosses the chip boundary on its way
            // out. No early return: an L1 writeback (setDirty) can
            // land on a still-untouched prefetched L2 line, and such
            // a victim is both a writeback and a useless prefetch.
            owner_.buckets_[owner_.current_].traffic.add(
                Traffic::Writeback, owner_.hierConfig_.l2.lineBytes);
        }
        if (!victim_was_untouched_prefetch)
            return;
        CoverageStats &s = owner_.buckets_[owner_.current_];
        // The classification entry rides on the victim line; if a
        // later prefetch moved the block's entry to L1D, consume it
        // there (at most one entry exists per block).
        std::uint8_t meta = victim_meta;
        if (!(meta & LineMetaFetched))
            meta = owner_.hier_.l1d().takeMeta(victim_addr);
        if (meta & LineMetaFetched) {
            if (meta & LineMetaOffChip) {
                s.traffic.add(Traffic::IncorrectPrefetch,
                              owner_.hierConfig_.l2.lineBytes);
            }
        }
        s.uselessPrefetches++;
        if (owner_.pred_)
            owner_.bufferFeedback(victim_addr, true);
    }

  private:
    TraceEngine &owner_;
};

TraceEngine::TraceEngine(const HierarchyConfig &hier_config,
                         Prefetcher *pred, std::uint32_t buckets)
    : hierConfig_(hier_config), hier_(hier_config), pred_(pred),
      buckets_(buckets == 0 ? 1 : buckets),
      l2Listener_(std::make_unique<L2Listener>(*this))
{
    hier_.l1d().setListener(this);
    hier_.l2().setListener(l2Listener_.get());
}

TraceEngine::~TraceEngine()
{
    hier_.l1d().setListener(nullptr);
    hier_.l2().setListener(nullptr);
}

void
TraceEngine::selectBucket(std::uint32_t bucket)
{
    ltc_assert(bucket < buckets_.size(), "bucket out of range: ", bucket);
    current_ = bucket;
}

const CoverageStats &
TraceEngine::stats(std::uint32_t bucket) const
{
    ltc_assert(bucket < buckets_.size(), "bucket out of range: ", bucket);
    return buckets_[bucket];
}

CoverageStats &
TraceEngine::stats(std::uint32_t bucket)
{
    ltc_assert(bucket < buckets_.size(), "bucket out of range: ", bucket);
    return buckets_[bucket];
}

void
TraceEngine::onEviction(Addr victim_addr, Addr incoming_addr,
                        std::uint32_t set, bool by_prefetch,
                        bool victim_was_untouched_prefetch,
                        bool victim_dirty, std::uint8_t victim_meta)
{
    (void)incoming_addr;
    (void)set;
    CoverageStats &s = buckets_[current_];

    if (victim_dirty && hierConfig_.modelWritebacks) {
        // The dirty L1 victim writes back into L2 (on-chip, free);
        // only when L2 no longer holds the block does the writeback
        // go off chip. Dirty victims are never untouched prefetches
        // (prefetches fill clean), so the classification below is
        // unaffected.
        if (!hier_.l2().setDirty(victim_addr)) {
            s.traffic.add(Traffic::Writeback,
                          hierConfig_.l1d.lineBytes);
        }
    }

    if (victim_was_untouched_prefetch) {
        // A prefetched block died unused: wrong replacement address.
        s.uselessPrefetches++;
        std::uint8_t meta = victim_meta;
        if (!(meta & LineMetaFetched))
            meta = hier_.l2().takeMeta(victim_addr);
        if (meta & LineMetaFetched) {
            if (meta & LineMetaOffChip) {
                s.traffic.add(Traffic::IncorrectPrefetch,
                              hierConfig_.l1d.lineBytes);
            }
        }
        if (pred_)
            bufferFeedback(victim_addr, true);
        return;
    }

    if (by_prefetch) {
        // A live block evicted by a prefetch fill: if it misses again
        // later, that miss is a premature ("early") eviction.
        hier_.l1d().markEvicted(victim_addr);
    }
}

void
TraceEngine::issuePrefetch(const PrefetchRequest &req)
{
    CoverageStats &s = buckets_[current_];
    const Addr block = hier_.l1d().blockAlign(req.target);

    // Under the dead-block-aware policy the prediction also feeds
    // replacement: mark the predicted victim dead so LRU prefers it.
    // (Both the scalar and batched paths issue through here, so the
    // equivalence suites cover the mark by construction.) In this
    // engine mark and fill are atomic — predictions drain every
    // reference and LT-cords' (victim, replacement) pairs are
    // same-set by construction — so the directed fill consumes the
    // L1 mark immediately and L1 DeadBlock degenerates to LRU; the
    // timing engine's enqueue->issue delay is where the L1 marks
    // earn their keep (see TimingSim::issuePrefetch). The L2 mark
    // below persists in both engines: a last touch is program-wide,
    // so the victim's L2 copy is just as dead, and L2 recency (only
    // updated on L1 misses) tracks death order poorly enough that
    // the mark genuinely reorders L2 evictions.
    if (req.predictedVictim != invalidAddr) {
        if (hierConfig_.l1d.policy == ReplPolicy::DeadBlock)
            hier_.l1d().markDead(req.predictedVictim);
        if (hierConfig_.l2.policy == ReplPolicy::DeadBlock)
            hier_.l2().markDead(req.predictedVictim);
    }

    if (req.intoL1) {
        const PrefetchOutcome out =
            hier_.prefetch(req.target, req.predictedVictim);
        if (out.alreadyInL1) {
            if (pred_)
                bufferFeedback(req.target, true);
            return;
        }
        // At most one classification entry per block: retire any
        // stale L2-side entry before writing the L1 line's.
        hier_.l2().takeMeta(block);
        hier_.l1d().setMeta(block,
                            LineMetaFetched |
                                (out.l2Hit ? 0 : LineMetaOffChip));
        // The prefetch restored the block in time.
        hier_.l1d().clearEvictedMark(block);
        if (out.l1Evicted && pred_)
            pred_->onPrefetchEviction(out.l1VictimAddr, req.target);
    } else {
        // Conventional prefetch: install into L2 only.
        if (hier_.l2().probe(block))
            return;
        hier_.l2().fill(block);
        hier_.l1d().takeMeta(block);
        hier_.l2().setMeta(block, LineMetaFetched | LineMetaOffChip);
        s.traffic.add(Traffic::BaseData, 0); // classified on outcome
    }
}

void
TraceEngine::drainPredictor()
{
    if (!pred_)
        return;
    pred_->drainRequestsInto(reqBuf_);
    for (const PrefetchRequest &req : reqBuf_)
        issuePrefetch(req);
    // Issue-time feedback (filtered prefetches, fills evicting
    // untouched prefetches) writes confidence bytes the metadata
    // drain below accounts.
    flushFeedback();
    const auto [write_bytes, read_bytes] = pred_->drainMetaTraffic();
    CoverageStats &s = buckets_[current_];
    s.traffic.add(Traffic::SequenceCreate, write_bytes);
    s.traffic.add(Traffic::SequenceFetch, read_bytes);
}

void
TraceEngine::step(const MemRef &ref)
{
    CoverageStats &s = buckets_[current_];
    s.accesses++;
    s.instructions += 1 + ref.nonMemGap;

    const HierOutcome out = hier_.access(ref.addr, ref.op);
    const Addr block = hier_.l1d().blockAlign(ref.addr);

    if (out.l1Hit()) {
        if (out.l1HitOnPrefetch) {
            // A miss eliminated by the predictor.
            s.correct++;
            // Charge the block transfer the demand fetch would have
            // performed anyway. The access consumed the L1 line's
            // classification entry; fall back to an L2-side entry.
            std::uint8_t meta = out.l1Meta;
            if (!(meta & LineMetaFetched))
                meta = hier_.l2().takeMeta(block);
            if ((meta & LineMetaFetched) && (meta & LineMetaOffChip)) {
                s.traffic.add(Traffic::BaseData,
                              hierConfig_.l1d.lineBytes);
            }
            if (pred_)
                bufferFeedback(ref.addr, false);
        }
    } else {
        s.l1Misses++;
        if (hier_.l1d().clearEvictedMark(block))
            s.early++;
        if (out.level == HitLevel::Memory) {
            s.l2Misses++;
            s.traffic.add(Traffic::BaseData, hierConfig_.l1d.lineBytes);
        } else if (out.l2HitOnPrefetch) {
            // L2 prefetch (GHB-style) turned an off-chip miss into an
            // L2 hit: account its off-chip transfer as base data.
            if ((out.l2Meta & LineMetaFetched) &&
                (out.l2Meta & LineMetaOffChip)) {
                s.traffic.add(Traffic::BaseData,
                              hierConfig_.l1d.lineBytes);
            }
            if (pred_)
                bufferFeedback(ref.addr, false);
        }
    }

    if (pred_) {
        // Access-time feedback must be visible before the predictor
        // reads confidences in observe().
        flushFeedback();
        pred_->observe(ref, out);
        drainPredictor();
    }
}

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc, typename Policy>
std::uint64_t
TraceEngine::runBaselineLoop(TraceSource &src, std::uint64_t refs)
{
    // The predictor-less kernel: with no predictor attached (and no
    // prefetch state in the hierarchy — guarded by run()), step()
    // degenerates to counting hits and misses. All counters — the
    // engine's, the caches' (via BaselineCursor) and the
    // hierarchy's — live in locals for the whole run, so the inner
    // loop is loads, compares and register increments only; state is
    // reconciled afterwards. The associativity template arguments let
    // the compiler unroll the way scans for the common geometries.
    CoverageStats &s = buckets_[current_];
    Cache &l1 = hier_.l1d();
    Cache &l2 = hier_.l2();
    Cache::BaselineCursor c1 = l1.baselineCursor();
    Cache::BaselineCursor c2 = l2.baselineCursor();
    std::uint64_t accesses = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;

    std::uint64_t done = 0;
    while (done < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, engineBatchRefs));
        const std::size_t got = src.fill({batch_.data(), want});
        for (std::size_t i = 0; i < got; i++) {
            const MemRef &ref = batch_[i];
            instructions += 1 + ref.nonMemGap;
            if (!l1.accessBaseline<L1Assoc, Policy>(ref.addr, ref.op,
                                                    c1)) {
                l1_misses++;
                if (!l2.accessBaseline<L2Assoc, Policy>(ref.addr,
                                                        ref.op, c2))
                    l2_misses++;
            }
        }
        accesses += got;
        done += got;
        if (got < want)
            break; // end of trace
    }

    l1.commitBaseline(c1);
    l2.commitBaseline(c2);
    hier_.noteBaselineBatch(accesses, l1_misses, l2_misses);
    s.accesses += accesses;
    s.instructions += instructions;
    s.l1Misses += l1_misses;
    s.l2Misses += l2_misses;
    s.traffic.add(Traffic::BaseData,
                  l2_misses * hierConfig_.l1d.lineBytes);
    return done;
}

std::uint64_t
TraceEngine::runBaseline(TraceSource &src, std::uint64_t refs)
{
    // Dispatch once per run to a way-scan-unrolled, policy-
    // devirtualized instantiation for the geometries the experiments
    // actually sweep; anything else takes the runtime loop (same
    // semantics).
    return dispatchHierarchyKernel(
        hier_.l1d().config(), hier_.l2().config(),
        [&](auto a1, auto a2, auto pol) {
            return runBaselineLoop<a1(), a2(), decltype(pol)>(src,
                                                              refs);
        });
}

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc, typename Policy>
std::uint64_t
TraceEngine::runPredictedLoop(TraceSource &src, std::uint64_t refs)
{
    // See the declaration comment. The loop-owned counters below are
    // disjoint from everything the eviction listeners and
    // drainPredictor() write into the bucket (uselessPrefetches,
    // early-eviction marks are cleared here but *counted* here too,
    // IncorrectPrefetch/Sequence* traffic), so accumulating them in
    // locals and reconciling once cannot reorder any observable
    // event: predictors still see every reference and drain at the
    // exact same points as step().
    Cache &l1 = hier_.l1d();
    const std::uint32_t line_bytes = hierConfig_.l1d.lineBytes;
    std::uint64_t accesses = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t correct = 0;
    std::uint64_t early = 0;
    std::uint64_t base_bytes = 0;

    std::uint64_t done = 0;
    while (done < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, engineBatchRefs));
        const std::size_t got = src.fill({batch_.data(), want});
        for (std::size_t i = 0; i < got; i++) {
            const MemRef &ref = batch_[i];
            instructions += 1 + ref.nonMemGap;

            const HierOutcome out =
                hier_.access<L1Assoc, L2Assoc, Policy>(ref.addr,
                                                       ref.op);
            const Addr block = l1.blockAlign(ref.addr);

            if (out.l1Hit()) {
                if (out.l1HitOnPrefetch) {
                    // A miss eliminated by the predictor; charge the
                    // block transfer the demand fetch would have
                    // performed anyway (see step()).
                    correct++;
                    std::uint8_t meta = out.l1Meta;
                    if (!(meta & LineMetaFetched))
                        meta = hier_.l2().takeMeta(block);
                    if ((meta & LineMetaFetched) &&
                        (meta & LineMetaOffChip)) {
                        base_bytes += line_bytes;
                    }
                    bufferFeedback(ref.addr, false);
                }
            } else {
                l1_misses++;
                if (l1.clearEvictedMark(block))
                    early++;
                if (out.level == HitLevel::Memory) {
                    l2_misses++;
                    base_bytes += line_bytes;
                } else if (out.l2HitOnPrefetch) {
                    if ((out.l2Meta & LineMetaFetched) &&
                        (out.l2Meta & LineMetaOffChip)) {
                        base_bytes += line_bytes;
                    }
                    bufferFeedback(ref.addr, false);
                }
            }

            // Same two flush points as step(): access-time events
            // before observe(), issue-time events in drainPredictor().
            flushFeedback();
            pred_->observe(ref, out);
            drainPredictor();
        }
        accesses += got;
        done += got;
        if (got < want)
            break; // end of trace
    }

    CoverageStats &s = buckets_[current_];
    s.accesses += accesses;
    s.instructions += instructions;
    s.l1Misses += l1_misses;
    s.l2Misses += l2_misses;
    s.correct += correct;
    s.early += early;
    s.traffic.add(Traffic::BaseData, base_bytes);
    return done;
}

std::uint64_t
TraceEngine::runPredicted(TraceSource &src, std::uint64_t refs)
{
    return dispatchHierarchyKernel(
        hier_.l1d().config(), hier_.l2().config(),
        [&](auto a1, auto a2, auto pol) {
            return runPredictedLoop<a1(), a2(), decltype(pol)>(src,
                                                               refs);
        });
}

// ------------------------------------------------- multi-tenant hot path
//
// The runSchedule kernels below process every quantum of a
// multi-programmed schedule without re-entering run(): associativity
// dispatch and baseline cursors live outside the quantum loop, and
// each quantum's loop-owned counters reconcile into its tenant's
// bucket exactly once. The per-reference bodies are copies of
// runBaselineLoop/runPredictedLoop — the multiprog equivalence suite
// pins them against the scalar quantum loop.
//
// LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
// operator and virtual declarations between these markers.

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc, typename Policy>
std::uint64_t
TraceEngine::runScheduleBaselineLoop(
    std::span<const ScheduleQuantum> schedule)
{
    Cache &l1 = hier_.l1d();
    Cache &l2 = hier_.l2();
    Cache::BaselineCursor c1 = l1.baselineCursor();
    Cache::BaselineCursor c2 = l2.baselineCursor();
    const std::uint32_t line_bytes = hierConfig_.l1d.lineBytes;
    std::uint64_t total_accesses = 0;
    std::uint64_t total_l1 = 0;
    std::uint64_t total_l2 = 0;
    std::uint64_t done = 0;

    for (const ScheduleQuantum &q : schedule) {
        MultiTenantCursor &t = cursors_[q.tenant];
        current_ = t.bucket;
        // All tenants share the one hot pull buffer: each refill is
        // capped at the quantum's remaining refs, so the buffer
        // drains before the next tenant touches it (per-tenant
        // read-ahead slices would go cold between a tenant's quanta
        // and double the memory traffic per record).
        MemRef *buf = batch_.data();
        std::uint64_t accesses = 0;
        std::uint64_t instructions = 0;
        std::uint64_t l1_misses = 0;
        std::uint64_t l2_misses = 0;
        std::uint64_t remaining = q.refs;
        while (remaining) {
            if (t.pos == t.fill) {
                const std::size_t want =
                    std::min<std::uint64_t>(engineBatchRefs,
                                            remaining);
                const std::size_t got = t.src->fill({buf, want});
                t.pos = 0;
                t.fill = static_cast<std::uint32_t>(got);
                if (got == 0)
                    break; // end of this tenant's trace
            }
            const std::uint32_t chunk = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(remaining, t.fill - t.pos));
            const std::uint32_t end = t.pos + chunk;
            for (std::uint32_t i = t.pos; i < end; i++) {
                const MemRef &ref = buf[i];
                instructions += 1 + ref.nonMemGap;
                if (!l1.accessBaseline<L1Assoc, Policy>(ref.addr,
                                                        ref.op, c1)) {
                    l1_misses++;
                    if (!l2.accessBaseline<L2Assoc, Policy>(
                            ref.addr, ref.op, c2))
                        l2_misses++;
                }
            }
            t.pos = end;
            accesses += chunk;
            remaining -= chunk;
        }
        CoverageStats &s = buckets_[t.bucket];
        s.accesses += accesses;
        s.instructions += instructions;
        s.l1Misses += l1_misses;
        s.l2Misses += l2_misses;
        s.traffic.add(Traffic::BaseData, l2_misses * line_bytes);
        total_accesses += accesses;
        total_l1 += l1_misses;
        total_l2 += l2_misses;
        done += accesses;
    }

    l1.commitBaseline(c1);
    l2.commitBaseline(c2);
    hier_.noteBaselineBatch(total_accesses, total_l1, total_l2);
    return done;
}

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc, typename Policy>
std::uint64_t
TraceEngine::runSchedulePredictedLoop(
    std::span<const ScheduleQuantum> schedule)
{
    Cache &l1 = hier_.l1d();
    const std::uint32_t line_bytes = hierConfig_.l1d.lineBytes;
    std::uint64_t done = 0;

    for (const ScheduleQuantum &q : schedule) {
        MultiTenantCursor &t = cursors_[q.tenant];
        current_ = t.bucket;
        pred_->selectTenant(q.tenant);
        MemRef *buf = batch_.data(); // shared hot buffer, see above
        std::uint64_t accesses = 0;
        std::uint64_t instructions = 0;
        std::uint64_t l1_misses = 0;
        std::uint64_t l2_misses = 0;
        std::uint64_t correct = 0;
        std::uint64_t early = 0;
        std::uint64_t base_bytes = 0;
        std::uint64_t remaining = q.refs;
        while (remaining) {
            if (t.pos == t.fill) {
                const std::size_t want =
                    std::min<std::uint64_t>(engineBatchRefs,
                                            remaining);
                const std::size_t got = t.src->fill({buf, want});
                t.pos = 0;
                t.fill = static_cast<std::uint32_t>(got);
                if (got == 0)
                    break; // end of this tenant's trace
            }
            const std::uint32_t chunk = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(remaining, t.fill - t.pos));
            const std::uint32_t end = t.pos + chunk;
            for (std::uint32_t i = t.pos; i < end; i++) {
                const MemRef &ref = buf[i];
                instructions += 1 + ref.nonMemGap;

                const HierOutcome out =
                    hier_.access<L1Assoc, L2Assoc, Policy>(ref.addr,
                                                           ref.op);
                const Addr block = l1.blockAlign(ref.addr);

                if (out.l1Hit()) {
                    if (out.l1HitOnPrefetch) {
                        correct++;
                        std::uint8_t meta = out.l1Meta;
                        if (!(meta & LineMetaFetched))
                            meta = hier_.l2().takeMeta(block);
                        if ((meta & LineMetaFetched) &&
                            (meta & LineMetaOffChip)) {
                            base_bytes += line_bytes;
                        }
                        bufferFeedback(ref.addr, false);
                    }
                } else {
                    l1_misses++;
                    if (l1.clearEvictedMark(block))
                        early++;
                    if (out.level == HitLevel::Memory) {
                        l2_misses++;
                        base_bytes += line_bytes;
                    } else if (out.l2HitOnPrefetch) {
                        if ((out.l2Meta & LineMetaFetched) &&
                            (out.l2Meta & LineMetaOffChip)) {
                            base_bytes += line_bytes;
                        }
                        bufferFeedback(ref.addr, false);
                    }
                }

                // Same two flush points as step(): access-time events
                // before observe(), issue-time events in
                // drainPredictor().
                flushFeedback();
                pred_->observe(ref, out);
                drainPredictor();
            }
            t.pos = end;
            accesses += chunk;
            remaining -= chunk;
        }
        CoverageStats &s = buckets_[t.bucket];
        s.accesses += accesses;
        s.instructions += instructions;
        s.l1Misses += l1_misses;
        s.l2Misses += l2_misses;
        s.correct += correct;
        s.early += early;
        s.traffic.add(Traffic::BaseData, base_bytes);
        done += accesses;
    }
    return done;
}

// LTC_HOT_END

std::uint64_t
TraceEngine::runSchedule(std::span<TenantSlot> tenants,
                         std::span<const ScheduleQuantum> schedule)
{
    ltc_assert(!tenants.empty(), "schedule needs at least one tenant");
    for (const TenantSlot &slot : tenants) {
        ltc_assert(slot.src != nullptr, "tenant without a trace source");
        ltc_assert(slot.bucket < buckets_.size(),
                   "tenant bucket out of range: ", slot.bucket);
    }
    for (const ScheduleQuantum &q : schedule)
        ltc_assert(q.tenant < tenants.size(), "quantum names tenant ",
                   q.tenant, " of ", tenants.size());

    // Per-tenant cursors are rebuilt each call; the shared pull
    // buffer is the same one run() uses.
    cursors_.assign(tenants.size(), MultiTenantCursor{});
    for (std::size_t t = 0; t < tenants.size(); t++) {
        cursors_[t].src = tenants[t].src;
        cursors_[t].bucket = tenants[t].bucket;
    }
    if (batch_.size() < engineBatchRefs)
        batch_.resize(engineBatchRefs);

    // Mirror run()'s kernel guard: the trimmed baseline kernel only
    // when no prefetch state can exist and writebacks are unmodeled
    // (the kernel bypasses the eviction listeners that charge them),
    // the predictor kernel whenever a predictor is attached, the
    // exact scalar path otherwise (perfect L1, hand-injected fills,
    // predictor-less writeback runs).
    std::uint64_t done = 0;
    if (pred_ == nullptr && !hierConfig_.perfectL1 &&
        !hierConfig_.modelWritebacks &&
        hier_.l1d().prefetchFills() == 0 &&
        hier_.l2().prefetchFills() == 0) {
        done = dispatchHierarchyKernel(
            hier_.l1d().config(), hier_.l2().config(),
            [&](auto a1, auto a2, auto pol) {
                return runScheduleBaselineLoop<a1(), a2(),
                                               decltype(pol)>(schedule);
            });
    } else if (pred_ != nullptr) {
        done = dispatchHierarchyKernel(
            hier_.l1d().config(), hier_.l2().config(),
            [&](auto a1, auto a2, auto pol) {
                return runSchedulePredictedLoop<a1(), a2(),
                                                decltype(pol)>(
                    schedule);
            });
    } else {
        for (const ScheduleQuantum &q : schedule) {
            selectBucket(tenants[q.tenant].bucket);
            done += run(*tenants[q.tenant].src, q.refs);
        }
        return done; // run() audited per quantum already
    }
    maybeAudit();
    return done;
}

std::uint64_t
TraceEngine::run(TraceSource &src, std::uint64_t refs)
{
    if (batch_.size() < engineBatchRefs)
        batch_.resize(engineBatchRefs);

    // Baseline runs take the trimmed kernel. The prefetchFills guard
    // keeps it exact even if the caller injected prefetches by hand
    // (then lines may carry prefetched/meta state the kernel skips);
    // the modelWritebacks guard keeps dirty evictions flowing through
    // the listeners that charge them (scalar path below).
    if (pred_ == nullptr && !hierConfig_.perfectL1 &&
        !hierConfig_.modelWritebacks &&
        hier_.l1d().prefetchFills() == 0 &&
        hier_.l2().prefetchFills() == 0) {
        const std::uint64_t done = runBaseline(src, refs);
        maybeAudit();
        return done;
    }

    // Predictor runs take the register-resident batched kernel.
    // (Fills are clamped to the caller's budget inside both kernels:
    // a multi-programmed quantum must not consume records its next
    // quantum replays.)
    if (pred_ != nullptr) {
        const std::uint64_t done = runPredicted(src, refs);
        maybeAudit();
        return done;
    }

    // Predictor-less but with prefetch state present (hand-injected
    // fills, perfect L1): the exact scalar path.
    std::uint64_t done = 0;
    while (done < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, engineBatchRefs));
        const std::size_t got = src.fill({batch_.data(), want});
        for (std::size_t i = 0; i < got; i++)
            step(batch_[i]);
        done += got;
        if (got < want)
            break; // end of trace
    }
    maybeAudit();
    return done;
}

void
TraceEngine::auditInvariants() const
{
    hier_.l1d().auditInvariants();
    hier_.l2().auditInvariants();
    if (pred_)
        pred_->auditInvariants();
}

CoverageStats
runWithOpportunity(const HierarchyConfig &hier_config, Prefetcher *pred,
                   TraceSource &workload, std::uint64_t refs)
{
    // Baseline pass: measures prediction opportunity.
    workload.reset();
    std::uint64_t opportunity = 0;
    {
        TraceEngine base(hier_config, nullptr);
        base.run(workload, refs);
        opportunity = base.stats().l1Misses;
    }

    // Predictor pass over the identical stream.
    workload.reset();
    TraceEngine engine(hier_config, pred);
    engine.run(workload, refs);
    CoverageStats stats = engine.stats();
    stats.opportunity = opportunity;
    return stats;
}

} // namespace ltc
