#include "sim/trace_engine.hh"

#include "util/logging.hh"

namespace ltc
{

/**
 * L2 eviction listener: when a block prefetched into L2 (GHB/stride
 * style) dies unused, classify its off-chip transfer as incorrect-
 * prediction traffic and tell the predictor.
 */
class TraceEngine::L2Listener : public CacheListener
{
  public:
    explicit L2Listener(TraceEngine &owner) : owner_(owner) {}

    void
    onEviction(Addr victim_addr, Addr incoming_addr, std::uint32_t set,
               bool by_prefetch, bool victim_was_untouched_prefetch)
        override
    {
        (void)incoming_addr;
        (void)set;
        (void)by_prefetch;
        if (!victim_was_untouched_prefetch)
            return;
        CoverageStats &s = owner_.buckets_[owner_.current_];
        auto it = owner_.fetchedOffChip_.find(victim_addr);
        if (it != owner_.fetchedOffChip_.end()) {
            if (it->second) {
                s.traffic.add(Traffic::IncorrectPrefetch,
                              owner_.hierConfig_.l2.lineBytes);
            }
            owner_.fetchedOffChip_.erase(it);
        }
        s.uselessPrefetches++;
        if (owner_.pred_) {
            PrefetchFeedback fb;
            fb.target = victim_addr;
            fb.useless = true;
            owner_.pred_->feedback(fb);
        }
    }

  private:
    TraceEngine &owner_;
};

TraceEngine::TraceEngine(const HierarchyConfig &hier_config,
                         Prefetcher *pred, std::uint32_t buckets)
    : hierConfig_(hier_config), hier_(hier_config), pred_(pred),
      buckets_(buckets == 0 ? 1 : buckets),
      l2Listener_(std::make_unique<L2Listener>(*this))
{
    hier_.l1d().setListener(this);
    hier_.l2().setListener(l2Listener_.get());
}

TraceEngine::~TraceEngine()
{
    hier_.l1d().setListener(nullptr);
    hier_.l2().setListener(nullptr);
}

void
TraceEngine::selectBucket(std::uint32_t bucket)
{
    ltc_assert(bucket < buckets_.size(), "bucket out of range: ", bucket);
    current_ = bucket;
}

const CoverageStats &
TraceEngine::stats(std::uint32_t bucket) const
{
    ltc_assert(bucket < buckets_.size(), "bucket out of range: ", bucket);
    return buckets_[bucket];
}

CoverageStats &
TraceEngine::stats(std::uint32_t bucket)
{
    ltc_assert(bucket < buckets_.size(), "bucket out of range: ", bucket);
    return buckets_[bucket];
}

void
TraceEngine::onEviction(Addr victim_addr, Addr incoming_addr,
                        std::uint32_t set, bool by_prefetch,
                        bool victim_was_untouched_prefetch)
{
    (void)incoming_addr;
    (void)set;
    CoverageStats &s = buckets_[current_];

    if (victim_was_untouched_prefetch) {
        // A prefetched block died unused: wrong replacement address.
        s.uselessPrefetches++;
        auto it = fetchedOffChip_.find(victim_addr);
        if (it != fetchedOffChip_.end()) {
            if (it->second) {
                s.traffic.add(Traffic::IncorrectPrefetch,
                              hierConfig_.l1d.lineBytes);
            }
            fetchedOffChip_.erase(it);
        }
        if (pred_) {
            PrefetchFeedback fb;
            fb.target = victim_addr;
            fb.useless = true;
            pred_->feedback(fb);
        }
        return;
    }

    if (by_prefetch) {
        // A live block evicted by a prefetch fill: if it misses again
        // later, that miss is a premature ("early") eviction.
        earlyMarked_.insert(victim_addr);
    }
}

void
TraceEngine::issuePrefetch(const PrefetchRequest &req)
{
    CoverageStats &s = buckets_[current_];
    const Addr block = hier_.l1d().blockAlign(req.target);

    if (req.intoL1) {
        const PrefetchOutcome out =
            hier_.prefetch(req.target, req.predictedVictim);
        if (out.alreadyInL1) {
            if (pred_) {
                PrefetchFeedback fb;
                fb.target = req.target;
                fb.useless = true;
                pred_->feedback(fb);
            }
            return;
        }
        fetchedOffChip_[block] = !out.l2Hit;
        earlyMarked_.erase(block); // the prefetch restored it in time
        if (out.l1Evicted && pred_)
            pred_->onPrefetchEviction(out.l1VictimAddr, req.target);
    } else {
        // Conventional prefetch: install into L2 only.
        if (hier_.l2().probe(block))
            return;
        hier_.l2().fill(block);
        fetchedOffChip_[block] = true;
        s.traffic.add(Traffic::BaseData, 0); // classified on outcome
    }
}

void
TraceEngine::drainPredictor()
{
    if (!pred_)
        return;
    for (const PrefetchRequest &req : pred_->drainRequests())
        issuePrefetch(req);
    const auto [write_bytes, read_bytes] = pred_->drainMetaTraffic();
    CoverageStats &s = buckets_[current_];
    s.traffic.add(Traffic::SequenceCreate, write_bytes);
    s.traffic.add(Traffic::SequenceFetch, read_bytes);
}

void
TraceEngine::step(const MemRef &ref)
{
    CoverageStats &s = buckets_[current_];
    s.accesses++;
    s.instructions += 1 + ref.nonMemGap;

    const HierOutcome out = hier_.access(ref.addr, ref.op);
    const Addr block = hier_.l1d().blockAlign(ref.addr);

    if (out.l1Hit()) {
        if (out.l1HitOnPrefetch) {
            // A miss eliminated by the predictor.
            s.correct++;
            // Charge the block transfer the demand fetch would have
            // performed anyway.
            auto it = fetchedOffChip_.find(block);
            if (it != fetchedOffChip_.end()) {
                if (it->second) {
                    s.traffic.add(Traffic::BaseData,
                                  hierConfig_.l1d.lineBytes);
                }
                fetchedOffChip_.erase(it);
            }
            if (pred_) {
                PrefetchFeedback fb;
                fb.target = ref.addr;
                fb.useless = false;
                pred_->feedback(fb);
            }
        }
    } else {
        s.l1Misses++;
        if (earlyMarked_.erase(block))
            s.early++;
        if (out.level == HitLevel::Memory) {
            s.l2Misses++;
            s.traffic.add(Traffic::BaseData, hierConfig_.l1d.lineBytes);
        } else if (out.l2HitOnPrefetch) {
            // L2 prefetch (GHB-style) turned an off-chip miss into an
            // L2 hit: account its off-chip transfer as base data.
            auto it = fetchedOffChip_.find(block);
            if (it != fetchedOffChip_.end()) {
                if (it->second) {
                    s.traffic.add(Traffic::BaseData,
                                  hierConfig_.l1d.lineBytes);
                }
                fetchedOffChip_.erase(it);
            }
            if (pred_) {
                PrefetchFeedback fb;
                fb.target = ref.addr;
                fb.useless = false;
                pred_->feedback(fb);
            }
        }
    }

    if (pred_) {
        pred_->observe(ref, out);
        drainPredictor();
    }
}

std::uint64_t
TraceEngine::run(TraceSource &src, std::uint64_t refs)
{
    MemRef ref;
    std::uint64_t done = 0;
    while (done < refs && src.next(ref)) {
        step(ref);
        done++;
    }
    return done;
}

CoverageStats
runWithOpportunity(const HierarchyConfig &hier_config, Prefetcher *pred,
                   TraceSource &workload, std::uint64_t refs)
{
    // Baseline pass: measures prediction opportunity.
    workload.reset();
    std::uint64_t opportunity = 0;
    {
        TraceEngine base(hier_config, nullptr);
        base.run(workload, refs);
        opportunity = base.stats().l1Misses;
    }

    // Predictor pass over the identical stream.
    workload.reset();
    TraceEngine engine(hier_config, pred);
    engine.run(workload, refs);
    CoverageStats stats = engine.stats();
    stats.opportunity = opportunity;
    return stats;
}

} // namespace ltc
