/**
 * @file
 * Cycle timing engine.
 *
 * Combines the ROB-window core model (src/cpu) with the functional
 * hierarchy, MSHR file, L1/L2 and memory busses and the DRAM latency
 * model to produce IPC — the engine behind Table 3 and Figure 12.
 *
 * Mechanisms modelled (Section 5 of the paper):
 *  - two L1/L2 channels (an L2 request can issue while a fill is in
 *    progress) — approximated with separate request/data occupancy,
 *  - 64 L1D MSHRs with merge-on-match,
 *  - predictor requests held in a 128-entry queue (new requests
 *    replace the oldest unissued on overflow, per Section 5) and
 *    issued only when the demand channels are idle at the issue
 *    timestamp: prefetch and signature-stream transfers ride
 *    dedicated low-priority channels so they consume otherwise-idle
 *    bandwidth without delaying demand fills,
 *  - prefetched blocks that are still in flight at demand time hide
 *    only part of the miss latency,
 *  - LT-cords signature streaming and sequence-creation traffic
 *    charged to the memory bus.
 */

#ifndef LTC_SIM_TIMING_ENGINE_HH
#define LTC_SIM_TIMING_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "cpu/core_config.hh"
#include "cpu/ooo_core.hh"
#include "mem/bandwidth.hh"
#include "mem/bus.hh"
#include "mem/dram.hh"
#include "pred/prefetcher.hh"
#include "trace/trace.hh"
#include "util/check.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace ltc
{

/** Full configuration of the timing engine (Table 1 defaults). */
struct TimingConfig
{
    /** Out-of-order core model parameters. */
    CoreConfig core;
    /** L1/L2 hierarchy geometry. */
    HierarchyConfig hier;
    /** L1-L2 bus channels. */
    BusConfig l1l2Bus = BusConfig::l1l2();
    /** Memory bus channels. */
    BusConfig memBus = BusConfig::memory();
    /** DRAM latency model parameters. */
    DramConfig dram;
    /** Predictor request queue entries. */
    std::uint32_t prefetchQueueEntries = 128;
};

/** Results of a timing run. */
struct TimingStats
{
    Cycle cycles = 0;           //!< simulated cycles
    InstCount instructions = 0; //!< committed instructions
    double ipc = 0.0;           //!< instructions / cycles

    std::uint64_t accesses = 0; //!< memory references processed
    std::uint64_t l1Misses = 0; //!< demand L1D misses
    std::uint64_t l2Misses = 0; //!< demand L2 misses
    std::uint64_t correct = 0;   //!< demand hits on prefetched blocks
    std::uint64_t partial = 0;   //!< prefetched but still in flight
    std::uint64_t useless = 0;   //!< prefetched blocks never used
    std::uint64_t dropped = 0;   //!< queue overflow drops

    BandwidthAccount traffic; //!< bytes moved, by traffic class
    Cycle memBusBusy = 0;     //!< memory-bus busy cycles
    Cycle l1l2BusBusy = 0;    //!< L1-L2 bus busy cycles
    /** Cycles transfers spent queued, per channel (contention). */
    Cycle l1l2ReqQueue = 0;
    Cycle l1l2DataQueue = 0;
    Cycle memReqQueue = 0;
    Cycle memDataQueue = 0;
    /** Sum of demand L1-miss service latencies (completion - ready). */
    Cycle missLatencyTotal = 0;

    /** Bytes of traffic class @p t moved per committed instruction. */
    double
    bytesPerInstruction(Traffic t) const
    {
        return traffic.perInstruction(t, instructions);
    }
};

/** The cycle timing engine (see the file comment). */
class TimingSim : public CacheListener
{
  public:
    /**
     * @param config Machine configuration.
     * @param pred   Predictor driven by the engine (may be null for
     *               baseline runs); not owned.
     */
    TimingSim(const TimingConfig &config, Prefetcher *pred);
    /** Detaches the engine from the hierarchy's listener list. */
    ~TimingSim() override;

    TimingSim(const TimingSim &) = delete;            //!< non-copyable
    TimingSim &operator=(const TimingSim &) = delete; //!< non-copyable

    /** Process one reference. */
    void step(const MemRef &ref);

    /**
     * Run up to @p refs references, pulled in batches through
     * TraceSource::fill() into a reusable buffer (the batched kernel;
     * see TraceEngine::run). Never pulls more than @p refs records.
     */
    std::uint64_t run(TraceSource &src, std::uint64_t refs);

    /** Snapshot of current results. */
    TimingStats stats() const;

    /** The core model (test access). */
    OooCore &core() { return core_; }
    /** The cache hierarchy (test access). */
    CacheHierarchy &hierarchy() { return hier_; }
    /** The MSHR file (test access: occupancy trajectory checks). */
    MshrFile &mshrs() { return mshrs_; }

    /** CacheListener: L1D evictions -> prefetch usefulness feedback
     *  and (under modelWritebacks) dirty-victim writebacks. */
    void onEviction(Addr victim_addr, Addr incoming_addr,
                    std::uint32_t set, bool by_prefetch,
                    bool victim_was_untouched_prefetch,
                    bool victim_dirty,
                    std::uint8_t victim_meta) override;

    /**
     * Audit every structure the timing model owns: both caches, the
     * MSHR file, all six bus channels, the DRAM model, the core's
     * rings, the predictor, and the engine-side in-flight table.
     * run() calls this automatically after every batch of work when
     * auditing is enabled — debug builds, or LTC_AUDIT=1 in the
     * environment (util/check.hh).
     */
    void auditInvariants() const;

  private:
    /** The run()-boundary audit hook (no-op unless auditing is on). */
    void
    maybeAudit() const
    {
        if (ltcAuditEnabled())
            auditInvariants();
    }

    /**
     * Trimmed kernel for predictor-less runs: same event sequence as
     * step() — core issue/retire, MSHR allocate/merge/retire, bus and
     * DRAM transfers — but with the prefetch machinery (in-flight
     * table, request queue, metadata bits) compiled out and the
     * TimingStats counters register-resident for the whole run. The
     * per-reference work is then the core rings, the packed-tag way
     * scans and the (usually no-op) MSHR retire compare.
     */
    std::uint64_t runBaseline(TraceSource &src, std::uint64_t refs);
    /**
     * runBaseline's loop, specialized per cache associativity and
     * replacement policy (dispatchHierarchyKernel; the same contract
     * for runPredictedLoop/stepImpl below).
     */
    template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
              typename Policy>
    std::uint64_t runBaselineLoop(TraceSource &src,
                                  std::uint64_t refs);

    /**
     * Register-resident counter state for the predicted kernel (the
     * treatment runBaselineLoop gives baseline runs): the TimingStats
     * counters the per-reference path increments live in this POD for
     * a whole run, so the inner loop carries no loop-carried
     * dependences through the engine's memory. step() commits one
     * immediately; runPredictedLoop() commits at run end.
     */
    struct PredCursor
    {
        std::uint64_t accesses = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t correct = 0;
        std::uint64_t partial = 0;
        Cycle missLatency = 0;
        Cycle lastLoad = 0;
    };

    /**
     * The full per-reference event sequence — shared verbatim by the
     * scalar step() (instantiated with runtime associativity and
     * PolicyAuto) and the batched runPredictedLoop() (static
     * associativity and policy), so the two paths cannot diverge; the
     * timing-equivalence suite pins it.
     */
    template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
              typename Policy>
    void stepImpl(const MemRef &ref, PredCursor &cur);

    /** Fold a cursor back into the running statistics. */
    void
    commitPred(const PredCursor &cur)
    {
        running_.accesses += cur.accesses;
        running_.l1Misses += cur.l1Misses;
        running_.l2Misses += cur.l2Misses;
        running_.correct += cur.correct;
        running_.partial += cur.partial;
        running_.missLatencyTotal += cur.missLatency;
        lastLoadComplete_ = cur.lastLoad;
    }

    /** Batched predictor-run kernel (see PredCursor). */
    std::uint64_t runPredicted(TraceSource &src, std::uint64_t refs);
    /** runPredicted's loop, specialized per assoc and policy. */
    template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
              typename Policy>
    std::uint64_t runPredictedLoop(TraceSource &src,
                                   std::uint64_t refs);

    /** Queue one feedback event for the next flushFeedback(). */
    void
    bufferFeedback(Addr target, bool useless)
    {
        PrefetchFeedback fb;
        fb.target = target;
        fb.useless = useless;
        fbBuf_.push_back(fb);
    }

    /**
     * Deliver buffered feedback events, in order, as one batch.
     * stepImpl() flushes at exactly two points per reference: before
     * the predictor observes (access-time events must be visible to
     * the confidence reads of observe()) and after the prefetch-issue
     * drain, before metadata traffic is charged (feedback writes
     * confidence bytes the charge accounts).
     */
    void
    flushFeedback()
    {
        if (fbBuf_.empty())
            return;
        pred_->feedbackBatch(fbBuf_.data(), fbBuf_.size());
        fbBuf_.clear();
    }

    /**
     * Drop in-flight entries whose fill completed at or before
     * @p horizon (the current issue cycle, which the core never
     * rewinds). Such an entry can never floor a later completion —
     * every later completion is at least the later issue cycle — so
     * the purge is semantics-preserving; it only bounds the table,
     * which no longer shrinks at evictions (an evicted block's
     * pending fill must keep its completion time, see onEviction).
     * Amortized: runs when the table reaches the trigger size, which
     * then doubles.
     */
    void purgeInflight(Cycle horizon);

    /** Latency path for a demand L1 miss; returns completion cycle. */
    Cycle missCompletion(Addr block, HitLevel level, Cycle ready);

    /** Enqueue a predictor request (dropping the oldest when full);
     *  @p now bounds the "still in flight" duplicate filter. */
    void enqueuePrefetch(const PrefetchRequest &req, Cycle now);

    /** Issue queued prefetches while the channels are idle at @p now. */
    void drainPrefetchQueue(Cycle now);

    /** Issue one prefetch request at time @p now. */
    void issuePrefetch(const PrefetchRequest &req, Cycle now);

    /** Charge predictor metadata traffic to the memory bus. */
    void chargeMetaTraffic(Cycle now);

    TimingConfig config_;
    OooCore core_;
    CacheHierarchy hier_;
    MshrFile mshrs_;
    /**
     * Split-transaction busses: a request channel and a data channel
     * each, so an L2 request can issue while a fill is in progress
     * (the paper's "two channels between the L1 and L2").
     */
    Bus l1l2Req_;
    Bus l1l2Data_;
    Bus memReq_;
    Bus memData_;
    /**
     * Prefetch pacing channel: every issued prefetch occupies it for
     * one block transfer, and the queue drains only while it is free,
     * so prefetch issue is rate-limited to the memory bus's transfer
     * rate and cannot burst (the paper issues requests one at a time,
     * "when the L1/L2 bus is free"). Pacing only; not accounted.
     */
    Bus pfPace_;
    /**
     * LT-cords sequence traffic (signature writes/streams). Carried
     * on its own low-priority channel: it is accounted toward memory
     * bus utilization (Fig. 12) but does not delay demand fills,
     * modelling the paper's use of otherwise-unused bus cycles
     * (Section 4.4).
     */
    Bus metaBus_;
    DramModel dram_;
    Prefetcher *pred_;

    /** Pending predictor requests (the 128-entry request queue). */
    std::deque<PrefetchRequest> prefetchQueue_;

    /**
     * Blocks prefetched but whose data is still in flight, mapped to
     * the cycle the fill completes. Open-addressed (util/flat_map.hh):
     * probes are cheap by construction — an absent key on an
     * empty-ish table is one masked load — so the hit/miss/enqueue
     * paths probe unconditionally instead of guarding with empty()
     * checks that once let the call sites diverge. Entries persist
     * across L1 evictions (the data is still physically in flight;
     * see onEviction) and are bounded by purgeInflight().
     */
    AddrMap<Cycle> inflight_;
    /** purgeInflight() trigger size (doubles after each purge). */
    std::size_t inflightPurgeTrigger_ = 64;
    /**
     * Off-chip classification of prefetched blocks rides on the
     * cache lines themselves (LineMeta* bits, cache/cache.hh); the
     * engine keeps only reusable buffers.
     */
    std::vector<MemRef> batch_;           //!< run() pull buffer
    std::vector<PrefetchRequest> reqBuf_; //!< predictor drain buffer
    std::vector<PrefetchFeedback> fbBuf_; //!< feedback batch buffer

    /** Listener charging dirty L2 victims (modelWritebacks only). */
    class L2WritebackListener;
    std::unique_ptr<L2WritebackListener> l2Writeback_;
    /**
     * Cycle the current event's evictions happen at (the demand ready
     * cycle in stepImpl, the issue slot in issuePrefetch): the
     * eviction listener runs inside Cache::insert and needs a
     * timestamp to occupy the writeback busses from. Only maintained
     * under modelWritebacks.
     */
    Cycle wbNow_ = 0;

    // Per-run constants of the miss event path, hoisted out of the
    // per-event arithmetic: bus occupancies for the two transfer
    // sizes the demand/prefetch paths move (a bare request and one
    // cache block) and the DRAM latency of a block read. All are
    // functions of the configuration only.
    Cycle l1l2ReqOcc_;  //!< L1/L2 bus occupancy of a bare request
    Cycle l1l2LineOcc_; //!< L1/L2 bus occupancy of a block transfer
    Cycle memReqOcc_;   //!< memory bus occupancy of a bare request
    Cycle memLineOcc_;  //!< memory bus occupancy of a block transfer
    Cycle dramLineLat_; //!< DRAM latency of one block read

    Cycle lastLoadComplete_ = 0;
    /** Monotonic clock for prefetch issue pacing (reference ready
     *  times regress when independent and dependent streams
     *  interleave; pacing must not). */
    Cycle drainClock_ = 0;
    TimingStats running_;
};

} // namespace ltc

#endif // LTC_SIM_TIMING_ENGINE_HH
