/**
 * @file
 * Trace-driven simulation engine.
 *
 * Drives a reference stream through the functional cache hierarchy
 * and a predictor, and classifies every prediction-opportunity cache
 * miss the way Figure 8 of the paper does:
 *
 *  - correct:   a miss eliminated by a prefetch (the demand access
 *               hit a prefetched, never-yet-touched L1D block),
 *  - incorrect: a predicted-but-wrong replacement address (measured
 *               as prefetched blocks evicted unused),
 *  - train:     a miss the predictor made no (confident) prediction
 *               for,
 *  - early:     an extra miss caused by the predictor evicting a
 *               still-live block (reported above 100% in the paper).
 *
 * Prediction opportunity (the denominator) is the L1D miss count of a
 * baseline run without a predictor over the identical stream.
 *
 * The engine supports multiple stat buckets so the multi-programmed
 * experiments (Section 5.5) can attribute events to the application
 * that caused them.
 */

#ifndef LTC_SIM_TRACE_ENGINE_HH
#define LTC_SIM_TRACE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/hierarchy.hh"
#include "mem/bandwidth.hh"
#include "pred/prefetcher.hh"
#include "trace/trace.hh"
#include "util/check.hh"
#include "util/types.hh"

namespace ltc
{

/** Per-bucket coverage and traffic statistics. */
struct CoverageStats
{
    std::uint64_t accesses = 0; //!< memory references processed
    std::uint64_t l1Misses = 0; //!< demand L1D misses
    std::uint64_t l2Misses = 0; //!< demand L2 misses

    std::uint64_t correct = 0; //!< misses eliminated by prefetches
    /** Prefetched blocks evicted without ever being touched. */
    std::uint64_t uselessPrefetches = 0;
    /** Extra misses from predictor-evicted still-live blocks. */
    std::uint64_t early = 0;
    /** Baseline misses over the same stream (set by the harness). */
    std::uint64_t opportunity = 0;

    std::uint64_t instructions = 0; //!< memory refs + nonMemGap

    BandwidthAccount traffic; //!< bytes moved, by traffic class

    /** Misses attributed to wrong predictions (Fig. 8 "incorrect"). */
    std::uint64_t
    incorrect() const
    {
        const std::uint64_t remaining =
            l1Misses > early ? l1Misses - early : 0;
        return std::min(uselessPrefetches, remaining);
    }

    /** Misses with no prediction (Fig. 8 "train"). */
    std::uint64_t
    train() const
    {
        const std::uint64_t remaining =
            l1Misses > early ? l1Misses - early : 0;
        return remaining - incorrect();
    }

    /** Fraction of opportunity eliminated. */
    double
    coverage() const
    {
        return opportunity ? static_cast<double>(correct) /
                static_cast<double>(opportunity)
                           : 0.0;
    }

    /** L1D misses per access. */
    double l1MissRate() const
    {
        return accesses ? static_cast<double>(l1Misses) /
                static_cast<double>(accesses)
                        : 0.0;
    }
};

/** The trace-driven coverage engine (see the file comment). */
class TraceEngine : public CacheListener
{
  public:
    /**
     * @param hier_config Hierarchy configuration.
     * @param pred        Predictor driven by the engine (may be null
     *                    for baseline runs); not owned.
     * @param buckets     Number of stat buckets (>= 1).
     */
    TraceEngine(const HierarchyConfig &hier_config, Prefetcher *pred,
                std::uint32_t buckets = 1);
    /** Detaches the engine from the hierarchy's listener list. */
    ~TraceEngine() override;

    TraceEngine(const TraceEngine &) = delete;            //!< non-copyable
    TraceEngine &operator=(const TraceEngine &) = delete; //!< non-copyable

    /** Route subsequent events to bucket @p bucket. */
    void selectBucket(std::uint32_t bucket);

    /** Process one reference. */
    void step(const MemRef &ref);

    /**
     * Process up to @p refs references from @p src.
     *
     * The batched kernel: references are pulled through
     * TraceSource::fill() into a reusable buffer and stepped in a
     * tight non-virtual inner loop, so the per-reference cost is the
     * cache model itself — no virtual dispatch, no hash probes, no
     * allocation. Never pulls more than @p refs records (quantum
     * interleavings replay exactly).
     */
    std::uint64_t run(TraceSource &src, std::uint64_t refs);

    /** One tenant of a multi-programmed schedule (see runSchedule). */
    struct TenantSlot
    {
        /** The tenant's reference stream; not owned. */
        TraceSource *src = nullptr;
        /** Stat bucket the tenant's events are attributed to. */
        std::uint32_t bucket = 0;
    };

    /** One scheduling quantum: run @p tenant for @p refs references. */
    struct ScheduleQuantum
    {
        std::uint32_t tenant = 0;
        std::uint64_t refs = 0;
    };

    /**
     * Process a whole multi-programmed schedule in one call.
     *
     * Semantically identical to the scalar quantum loop
     *
     *     for (q : schedule) {
     *         selectBucket(tenants[q.tenant].bucket);
     *         if (predictor()) predictor()->selectTenant(q.tenant);
     *         run(*tenants[q.tenant].src, q.refs);
     *     }
     *
     * (the multiprog equivalence suite pins this), but the
     * associativity dispatch and the baseline cursors are hoisted
     * outside the quantum loop: one dispatch and one cursor commit
     * per schedule instead of one per quantum. All tenants pull
     * through the one shared batch buffer — each refill is capped at
     * the quantum's remaining references, so the buffer drains within
     * the quantum and stays hot in the host cache across tenant
     * switches (a per-tenant read-ahead slice would go cold between a
     * tenant's quanta at Fig. 11 scale — 1024 tenants, a few hundred
     * references per quantum — and be re-read from memory).
     *
     * @return References actually consumed (short on trace ends).
     */
    std::uint64_t runSchedule(std::span<TenantSlot> tenants,
                              std::span<const ScheduleQuantum> schedule);

    /** Statistics of bucket @p bucket. */
    const CoverageStats &stats(std::uint32_t bucket = 0) const;
    /** Mutable statistics of bucket @p bucket (harness use). */
    CoverageStats &stats(std::uint32_t bucket = 0);

    /** The cache hierarchy (test access). */
    CacheHierarchy &hierarchy() { return hier_; }
    /** The attached predictor (null for baseline runs). */
    Prefetcher *predictor() { return pred_; }

    /** CacheListener: classifies L1D eviction events. */
    void onEviction(Addr victim_addr, Addr incoming_addr,
                    std::uint32_t set, bool by_prefetch,
                    bool victim_was_untouched_prefetch,
                    bool victim_dirty,
                    std::uint8_t victim_meta) override;

    /**
     * Audit both caches and the attached predictor (see
     * Cache::auditInvariants). run() calls this automatically after
     * every batch of work when auditing is enabled — debug builds,
     * or LTC_AUDIT=1 in the environment (util/check.hh).
     */
    void auditInvariants() const;

  private:
    /** The run()-boundary audit hook (no-op unless auditing is on). */
    void
    maybeAudit() const
    {
        if (ltcAuditEnabled())
            auditInvariants();
    }

    void issuePrefetch(const PrefetchRequest &req);
    void drainPredictor();

    /** Queue one feedback event for the next flushFeedback(). */
    void
    bufferFeedback(Addr target, bool useless)
    {
        PrefetchFeedback fb;
        fb.target = target;
        fb.useless = useless;
        fbBuf_.push_back(fb);
    }

    /**
     * Deliver buffered feedback events, in order, as one batch. The
     * engine flushes at exactly two points per reference: before the
     * predictor observes (access-time events — demand evictions,
     * consumed prefetches — must be visible to the confidence reads
     * of observe()) and inside drainPredictor() after the issue loop,
     * before the metadata drain (feedback writes confidence bytes the
     * drain accounts).
     */
    void
    flushFeedback()
    {
        if (fbBuf_.empty())
            return;
        pred_->feedbackBatch(fbBuf_.data(), fbBuf_.size());
        fbBuf_.clear();
    }
    /** Trimmed kernel for predictor-less runs (see run()). */
    std::uint64_t runBaseline(TraceSource &src, std::uint64_t refs);
    /**
     * runBaseline's loop, specialized per cache associativity and
     * replacement policy (dispatchHierarchyKernel; the same contract
     * for every batched kernel below).
     */
    template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
              typename Policy>
    std::uint64_t runBaselineLoop(TraceSource &src,
                                  std::uint64_t refs);
    /**
     * Batched kernel for predictor runs: the same event sequence as
     * step()+drainPredictor(), but the loop-owned CoverageStats
     * counters stay register-resident between predictor drains and
     * are reconciled into the bucket once per run — the bucket only
     * sees the callback-owned counters (useless prefetches, incorrect
     * traffic, sequence bytes) while the loop is hot. The
     * associativity template arguments unroll the way scans as in
     * runBaselineLoop.
     */
    std::uint64_t runPredicted(TraceSource &src, std::uint64_t refs);
    /** runPredicted's loop, specialized per assoc and policy. */
    template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
              typename Policy>
    std::uint64_t runPredictedLoop(TraceSource &src,
                                   std::uint64_t refs);

    /**
     * Per-tenant pull state for runSchedule. pos/fill index the
     * shared batch_ buffer within a quantum; refills are capped at
     * the quantum's remaining references, so they are always equal
     * (buffer drained) at quantum boundaries. Rebuilt per
     * runSchedule call.
     */
    struct MultiTenantCursor
    {
        TraceSource *src = nullptr;
        std::uint32_t bucket = 0;
        std::uint32_t pos = 0;  //!< next unconsumed record
        std::uint32_t fill = 0; //!< valid records in the buffer
    };
    /** runSchedule's baseline kernel (see runBaselineLoop). */
    template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
              typename Policy>
    std::uint64_t
    runScheduleBaselineLoop(std::span<const ScheduleQuantum> schedule);
    /** runSchedule's predictor kernel (see runPredictedLoop). */
    template <std::uint32_t L1Assoc, std::uint32_t L2Assoc,
              typename Policy>
    std::uint64_t
    runSchedulePredictedLoop(std::span<const ScheduleQuantum> schedule);

    HierarchyConfig hierConfig_;
    CacheHierarchy hier_;
    Prefetcher *pred_;
    std::vector<CoverageStats> buckets_;
    std::uint32_t current_ = 0;

    /**
     * Classification state that used to live here in hash tables
     * (earlyMarked_, fetchedOffChip_) now rides on the cache lines
     * themselves as LineMeta* bits plus per-set eviction marks — see
     * cache/cache.hh. The engine only keeps reusable buffers.
     */
    /** Pull buffer shared by run() and the runSchedule kernels. */
    std::vector<MemRef> batch_;
    /** runSchedule tenant cursors (rebuilt per call). */
    std::vector<MultiTenantCursor> cursors_;
    std::vector<PrefetchRequest> reqBuf_; //!< predictor drain buffer
    std::vector<PrefetchFeedback> fbBuf_; //!< feedback batch buffer
    /** Listener adapter for L2 (classifies GHB-style L2 prefetches). */
    class L2Listener;
    std::unique_ptr<L2Listener> l2Listener_;
};

/**
 * Convenience harness: run @p workload for @p refs against
 * @p hier_config with @p pred, after measuring opportunity with a
 * baseline (predictor-less) pass over the identical stream.
 */
CoverageStats runWithOpportunity(const HierarchyConfig &hier_config,
                                 Prefetcher *pred, TraceSource &workload,
                                 std::uint64_t refs);

} // namespace ltc

#endif // LTC_SIM_TRACE_ENGINE_HH
