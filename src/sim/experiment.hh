/**
 * @file
 * Experiment presets: the paper's system configurations (Table 1)
 * and a predictor factory keyed by the names used in Table 3.
 */

#ifndef LTC_SIM_EXPERIMENT_HH
#define LTC_SIM_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "core/ltcords_config.hh"
#include "pred/prefetcher.hh"
#include "sim/timing_engine.hh"

namespace ltc
{

/** The paper's baseline hierarchy (Table 1). */
HierarchyConfig paperHierarchy();

/** Baseline hierarchy with a 4MB L2 (Table 3's "4MB L2" row). */
HierarchyConfig bigL2Hierarchy();

/** Baseline hierarchy with a perfect L1D. */
HierarchyConfig perfectL1Hierarchy();

/** The paper's timing configuration (Table 1). */
TimingConfig paperTiming();

/** LT-cords configured per Section 5.6, sized for @p hier. */
LtcordsConfig paperLtcords(const HierarchyConfig &hier,
                           bool model_stream_latency = false);

/**
 * Predictor configurations compared in the paper:
 *   "none"           baseline demand fetching,
 *   "lt-cords"       the paper's contribution (Section 5.6 config),
 *   "dbcp"           realistic DBCP with a 1MB table -- the
 *                    capacity-equivalent stand-in for the paper's 2MB
 *                    table at this repository's ~8x-scaled workloads,
 *   "dbcp-2mb"       the paper's literal 2MB table,
 *   "dbcp-unlimited" oracle DBCP,
 *   "ghb"            GHB PC/DC (256/256, depth 4),
 *   "stride"         PC-indexed stride RPT,
 *   "markov"         first-order Markov miss predictor [11] (extra
 *                    address-correlating baseline).
 */
std::vector<std::string> predictorNames();

/**
 * Instantiate predictor @p name for @p hier; returns nullptr for
 * "none"; fatal error for unknown names.
 * @param model_stream_latency enable LT-cords stream latency
 *        modelling (cycle engine runs).
 */
std::unique_ptr<Prefetcher>
makePredictor(const std::string &name, const HierarchyConfig &hier,
              bool model_stream_latency = false);

/**
 * Code-epoch token for the experiment fabric (sim/cell_store.hh):
 * part of every cell's content hash, so cached results from an
 * older epoch read as stale misses and are recomputed. Bump the
 * token whenever a change alters what any cell computes - new
 * predictor semantics, changed workload generators, different
 * metric definitions - and leave it alone for pure refactors; the
 * per-trace digest and the canonicalized config already cover
 * workload-file and parameter changes.
 */
const std::string &cellCodeEpoch();

} // namespace ltc

#endif // LTC_SIM_EXPERIMENT_HH
