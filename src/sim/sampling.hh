/**
 * @file
 * Systematic simulation sampling in the spirit of SMARTS (Section 5).
 *
 * The paper launches cycle-accurate simulation from checkpoints and
 * measures 10M-instruction regions after 10M-instruction warm-up,
 * sized for a 95% confidence interval of +-3% on performance change.
 * Our simulator is fast enough to run streams end to end, so sampling
 * here runs a single timing simulation and alternates skip / warm-up
 * / measure windows, recording per-window IPC and reporting the mean
 * and its confidence interval.
 */

#ifndef LTC_SIM_SAMPLING_HH
#define LTC_SIM_SAMPLING_HH

#include <cstdint>

#include "sim/timing_engine.hh"
#include "trace/trace.hh"

namespace ltc
{

/** Sampling window schedule (units: memory references). */
struct SamplingConfig
{
    /** References fast-forwarded (still simulated, not measured). */
    std::uint64_t skipRefs = 100'000;
    /** Warm-up references before each measurement. */
    std::uint64_t warmupRefs = 50'000;
    /** Measured references per sample. */
    std::uint64_t measureRefs = 50'000;
    /** Stop after this many samples (0 = until the stream ends). */
    std::uint64_t maxSamples = 16;
};

/** Aggregated sampled measurement. */
struct SampledResult
{
    double meanIpc = 0.0; //!< mean of the per-window IPCs
    /** 95% confidence half-width as a fraction of the mean. */
    double ci95Frac = 0.0;
    std::uint64_t samples = 0;  //!< measurement windows taken
    InstCount instructions = 0; //!< instructions in measured windows
};

/**
 * Run @p sim over @p src with the given sampling schedule.
 * The TimingSim must be freshly constructed.
 */
SampledResult runSampled(TimingSim &sim, TraceSource &src,
                         const SamplingConfig &config);

} // namespace ltc

#endif // LTC_SIM_SAMPLING_HH
