#include "sim/experiment.hh"

#include "core/ltcords.hh"
#include "pred/dbcp.hh"
#include "pred/ghb.hh"
#include "pred/markov.hh"
#include "pred/stride.hh"
#include "util/logging.hh"

namespace ltc
{

HierarchyConfig
paperHierarchy()
{
    return HierarchyConfig{};
}

HierarchyConfig
bigL2Hierarchy()
{
    HierarchyConfig h;
    h.l2.sizeBytes = 4 * 1024 * 1024;
    // Conservatively the same access latency as the base 1MB cache
    // (Section 5.7).
    return h;
}

HierarchyConfig
perfectL1Hierarchy()
{
    HierarchyConfig h;
    h.perfectL1 = true;
    return h;
}

TimingConfig
paperTiming()
{
    return TimingConfig{};
}

LtcordsConfig
paperLtcords(const HierarchyConfig &hier, bool model_stream_latency)
{
    LtcordsConfig c;
    c.l1Sets = static_cast<std::uint32_t>(hier.l1d.numSets());
    c.lineBytes = hier.l1d.lineBytes;
    c.modelStreamLatency = model_stream_latency;
    return c;
}

std::vector<std::string>
predictorNames()
{
    return {"none",           "lt-cords", "dbcp",    "dbcp-2mb",
            "dbcp-unlimited", "ghb",      "stride",  "markov"};
}

std::unique_ptr<Prefetcher>
makePredictor(const std::string &name, const HierarchyConfig &hier,
              bool model_stream_latency)
{
    if (name == "none")
        return nullptr;
    if (name == "lt-cords") {
        return std::make_unique<LtCords>(
            paperLtcords(hier, model_stream_latency));
    }
    if (name == "dbcp" || name == "dbcp-2mb" ||
        name == "dbcp-unlimited") {
        DbcpConfig c;
        c.l1Sets = static_cast<std::uint32_t>(hier.l1d.numSets());
        c.lineBytes = hier.l1d.lineBytes;
        if (name == "dbcp") {
            // The paper's realistic DBCP uses a 2MB on-chip table
            // (Table 1), whose 256K entries cover 4x more footprint
            // than the 4MB L2 holds. Our workloads are ~8x scaled
            // down; a 1MB table preserves both relations: the same
            // benchmark class fits (mcf's working set, bh, treeadd)
            // while large-signature-footprint benchmarks (swim,
            // lucas, wupwise, em3d, applu...) still thrash, and the
            // table still covers more footprint than the 4MB L2.
            c.tableEntries =
                DbcpConfig::entriesForBytes(1024 * 1024);
        } else if (name == "dbcp-2mb") {
            c.tableEntries =
                DbcpConfig::entriesForBytes(2 * 1024 * 1024);
        }
        return std::make_unique<Dbcp>(c);
    }
    if (name == "ghb") {
        GhbConfig c;
        c.lineBytes = hier.l1d.lineBytes;
        return std::make_unique<Ghb>(c);
    }
    if (name == "stride") {
        StrideConfig c;
        c.lineBytes = hier.l1d.lineBytes;
        return std::make_unique<StridePrefetcher>(c);
    }
    if (name == "markov") {
        MarkovConfig c;
        c.lineBytes = hier.l1d.lineBytes;
        return std::make_unique<MarkovPrefetcher>(c);
    }
    ltc_fatal("unknown predictor '", name, "'");
}

const std::string &
cellCodeEpoch()
{
    // History: ltc-fabric-1 = first fabric release (this PR's cell
    // semantics). Must stay free of quotes, backslashes and control
    // characters: cell records embed it verbatim (CellStore checks).
    static const std::string epoch = "ltc-fabric-1";
    return epoch;
}

} // namespace ltc
