#include "core/ltcords.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/check.hh"
#include "util/logging.hh"

namespace ltc
{

namespace
{

std::uint64_t
computeOnChipBytes(const LtcordsConfig &c)
{
    // Signature cache: 42-bit entries (Section 5.6). Sequence tag
    // array: per frame, a head hash (we charge 23 bits) plus a window
    // position (log2(fragment) bits, <= 13 in the paper's config).
    const std::uint64_t sig_bits =
        static_cast<std::uint64_t>(c.sigCacheEntries) * 42;
    const std::uint64_t tag_bits =
        static_cast<std::uint64_t>(c.numFrames) * (23 + 13);
    return (sig_bits + tag_bits) / 8;
}

} // namespace

std::uint64_t
LtcordsConfig::onChipBytes() const
{
    return computeOnChipBytes(*this);
}

LtCords::LtCords(const LtcordsConfig &config)
    : config_(config), history_(config.l1Sets, config.lineBytes),
      sigCache_(config.sigCacheEntries, config.sigCacheAssoc),
      storage_(config), streams_(config.numFrames)
{
    sigCache_.configurePartitions(config.sigCachePartitions);
    storage_.setReallocCallback([this](std::uint32_t frame) {
        // A frame was re-recorded: every on-chip copy and every
        // in-flight batch from the old fragment is stale.
        sigCache_.invalidateFrame(frame);
        streams_[frame] = StreamState{};
        std::erase_if(pending_, [frame](const PendingBatch &b) {
            return b.frame == frame;
        });
    });
}

void
LtCords::selectTenant(std::uint32_t tenant)
{
    sigCache_.selectTenant(tenant);
    storage_.setTenant(tenant);
}

void
LtCords::setNow(Cycle now)
{
    now_ = std::max(now_, now);
    processPending();
}

void
LtCords::processPending()
{
    while (!pending_.empty() && pending_.front().ready <= now_) {
        const PendingBatch b = pending_.front();
        pending_.pop_front();
        for (std::uint32_t off = b.from; off < b.to; off++)
            installSignature(b.frame, off);
    }
}

void
LtCords::installSignature(std::uint32_t frame, std::uint32_t offset)
{
    const StoredSignature *sig = storage_.at(frame, offset);
    if (!sig)
        return; // fragment shrank (re-recorded); pointer is stale
    SigCacheEntry entry;
    entry.key = sig->key;
    entry.replacement = sig->replacement;
    entry.victim = sig->victim;
    entry.confidence = sig->confidence;
    entry.frame = frame;
    entry.offset = offset;
    sigCache_.insert(entry);
    sigStreamed_++;
}

void
LtCords::streamRange(std::uint32_t frame, std::uint32_t from,
                     std::uint32_t to)
{
    if (from >= to)
        return;
    storage_.noteStreamRead(to - from);
    if (!config_.modelStreamLatency) {
        for (std::uint32_t off = from; off < to; off++)
            installSignature(frame, off);
        return;
    }
    // Transfers move in streamBatch units; each batch arrives after
    // the stream latency (batches pipeline, so we charge one latency
    // per batch from request time — conservative for back-to-back
    // batches).
    for (std::uint32_t start = from; start < to;
         start += config_.streamBatch) {
        PendingBatch b;
        b.ready = now_ + config_.streamLatencyCycles;
        b.frame = frame;
        b.from = start;
        b.to = std::min<std::uint32_t>(start + config_.streamBatch, to);
        pending_.push_back(b);
    }
}

void
LtCords::activateFrame(std::uint32_t frame)
{
    headActivations_++;
    StreamState &s = streams_[frame];
    // A head recurrence means the sequence is starting again: rewind
    // the window to the fragment start.
    s.active = true;
    s.streamedPos = std::min<std::uint32_t>(
        config_.windowAhead, storage_.frameFill(frame));
    streamRange(frame, 0, s.streamedPos);
}

void
LtCords::advanceWindow(std::uint32_t frame, std::uint32_t offset)
{
    StreamState &s = streams_[frame];
    const std::uint32_t fill = storage_.frameFill(frame);
    const std::uint32_t target = std::min<std::uint32_t>(
        fill,
        std::min<std::uint64_t>(
            static_cast<std::uint64_t>(offset) + config_.windowAhead,
            fill));
    if (target > s.streamedPos) {
        streamRange(frame, s.streamedPos, target);
        s.streamedPos = target;
    }
}

void
LtCords::observe(const MemRef &ref, const HierOutcome &out)
{
    processPending();

    const std::uint32_t set = out.l1Set;
    const Addr block = ref.addr & ~static_cast<Addr>(config_.lineBytes - 1);

    // Record: a demand miss that evicted a block defines a last-touch
    // signature, keyed by the window state BEFORE the miss PC enters.
    if (!out.l1Hit() && out.l1Evicted) {
        const std::uint64_t record_key = history_.signatureKey(set);
        storage_.record(record_key, block, out.l1VictimAddr);
        history_.closeWindow(set, out.l1VictimAddr);
    }

    history_.recordAccess(set, ref.pc);
    const std::uint64_t lookup_key = history_.signatureKey(set);

    // Head recurrence: begin streaming the fragment this head
    // precedes (Section 4.2).
    if (auto frame = storage_.frameForHead(lookup_key))
        activateFrame(*frame);

    // Prediction: a signature-cache hit identifies a last touch.
    if (const SigPayload *e = sigCache_.lookup(lookup_key)) {
        // Capture before advancing: streaming may overwrite *e.
        const Addr replacement = e->replacement;
        const Addr victim = e->victim;
        const std::uint8_t confidence = e->confidence;
        const std::uint32_t frame = e->frame;
        const std::uint32_t offset = e->offset;

        advanceWindow(frame, offset);

        if (confidence >= config_.confidenceThreshold) {
            predictions_++;
            PrefetchRequest req;
            req.target = replacement;
            req.predictedVictim = victim;
            req.intoL1 = true;
            enqueue(req);
            outstanding_.insert(
                replacement & ~static_cast<Addr>(config_.lineBytes - 1),
                SigPtr{frame, offset});
        } else {
            lowConfidence_++;
        }
    }
}

void
LtCords::onPrefetchEviction(Addr victim_addr, Addr incoming_addr)
{
    const unsigned line_bits = floorLog2(config_.lineBytes);
    const auto set = static_cast<std::uint32_t>(
        (incoming_addr >> line_bits) & (config_.l1Sets - 1));
    history_.closeWindow(set, victim_addr);
}

void
LtCords::feedback(const PrefetchFeedback &fb)
{
    const Addr block =
        fb.target & ~static_cast<Addr>(config_.lineBytes - 1);
    const SigPtr *found = outstanding_.find(block);
    if (!found)
        return;
    const SigPtr ptr = *found;
    outstanding_.erase(block);

    const StoredSignature *sig = storage_.at(ptr.frame, ptr.offset);
    if (!sig)
        return; // fragment re-recorded since the prediction
    std::uint8_t conf = sig->confidence;
    if (fb.useless) {
        conf = conf > 0 ? conf - 1 : 0;
        confidenceDowns_++;
    } else {
        conf = std::min<std::uint8_t>(config_.confidenceMax, conf + 1);
        confidenceUps_++;
    }
    // Exact off-chip update through the self-pointer (Section 4.4);
    // the on-chip copy refreshes the next time the window streams it.
    storage_.updateConfidence(ptr.frame, ptr.offset, conf);
}

void
LtCords::feedbackBatch(const PrefetchFeedback *fbs, std::size_t n)
{
    // One virtual call per engine drain instead of one per outcome;
    // the per-event work is identical to feedback() by construction.
    for (std::size_t i = 0; i < n; i++)
        feedback(fbs[i]);
}

std::pair<std::uint64_t, std::uint64_t>
LtCords::drainMetaTraffic()
{
    return {storage_.drainWriteBytes(), storage_.drainReadBytes()};
}

void
LtCords::exportStats(StatSet &set) const
{
    set.set("head_activations", static_cast<double>(headActivations_));
    set.set("predictions", static_cast<double>(predictions_));
    set.set("low_confidence", static_cast<double>(lowConfidence_));
    set.set("signatures_streamed", static_cast<double>(sigStreamed_));
    set.set("signatures_recorded",
            static_cast<double>(storage_.recordedTotal()));
    set.set("frames_in_use", static_cast<double>(storage_.framesInUse()));
    set.set("frame_conflicts",
            static_cast<double>(storage_.frameConflicts()));
    set.set("cross_tenant_conflicts",
            static_cast<double>(storage_.crossTenantConflicts()));
    set.set("sigcache_hits", static_cast<double>(sigCache_.hits()));
    set.set("sigcache_lookups", static_cast<double>(sigCache_.lookups()));
    set.set("sigcache_fifo_evictions",
            static_cast<double>(sigCache_.fifoEvictions()));
    set.set("confidence_ups", static_cast<double>(confidenceUps_));
    set.set("confidence_downs", static_cast<double>(confidenceDowns_));
    set.set("onchip_bytes", static_cast<double>(onChipBytes()));
}

void
LtCords::auditInvariants() const
{
    storage_.auditInvariants();
    LTC_CHECK(streams_.size() == config_.numFrames,
              streams_.size(), " stream windows for ",
              config_.numFrames, " frames");
    for (std::size_t i = 0; i < streams_.size(); i++) {
        if (!streams_[i].active)
            continue;
        LTC_CHECK(storage_.frameValid(static_cast<std::uint32_t>(i)),
                  "active stream over invalid frame ", i);
        LTC_CHECK(streams_[i].streamedPos <= config_.fragmentSignatures,
                  "stream window of frame ", i, " past fragment end: ",
                  streams_[i].streamedPos);
    }
    for (const PendingBatch &b : pending_) {
        LTC_CHECK(b.frame < config_.numFrames,
                  "pending batch for frame ", b.frame, " of ",
                  config_.numFrames);
        LTC_CHECK(b.from <= b.to, "pending batch range reversed: [",
                  b.from, ", ", b.to, ")");
    }
    outstanding_.auditInvariants();
    outstanding_.forEach([this](Addr target, const SigPtr &ptr) {
        LTC_CHECK(ptr.frame < config_.numFrames,
                  "outstanding prediction for block ", target,
                  " points at frame ", ptr.frame, " of ",
                  config_.numFrames);
    });
}

void
LtCords::clear()
{
    history_.clear();
    sigCache_.clear();
    storage_.clear();
    streams_.assign(config_.numFrames, StreamState{});
    pending_.clear();
    outstanding_.clear();
}

std::uint64_t
LtCords::onChipBytes() const
{
    return computeOnChipBytes(config_);
}

} // namespace ltc
