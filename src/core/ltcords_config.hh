/**
 * @file
 * LT-cords configuration (defaults follow Section 5.6 of the paper).
 *
 * The cycle-accurate configuration in the paper: 160MB of off-chip
 * sequence storage partitioned into 4K frames of 8K signatures each;
 * a 204KB 2-way set-associative signature cache holding 32K
 * signatures with FIFO replacement; a 10KB sequence tag array; 2-bit
 * confidence counters initialised to 2; 5-byte signatures off chip.
 */

#ifndef LTC_CORE_LTCORDS_CONFIG_HH
#define LTC_CORE_LTCORDS_CONFIG_HH

#include <cstdint>

#include "util/types.hh"

namespace ltc
{

/** Full parameter set for an LT-cords instance. */
struct LtcordsConfig
{
    //
    // On-chip signature cache (Section 5.6).
    //
    /** Total signature-cache entries (32K => ~204KB). */
    std::uint32_t sigCacheEntries = 32 * 1024;
    /** Signature-cache associativity (2-way at 32K entries). */
    std::uint32_t sigCacheAssoc = 2;
    /**
     * Partition the signature cache's set space into this many
     * per-tenant slices (multi-programming scaled out; see
     * SignatureCache::configurePartitions). 0/1 = shared mode, which
     * is bit-identical to an unpartitioned cache and is what every
     * single-program experiment uses.
     */
    std::uint32_t sigCachePartitions = 1;

    //
    // Off-chip sequence storage (Sections 4.2, 5.6).
    //
    /** Number of frames in main-memory sequence storage. */
    std::uint32_t numFrames = 4096;
    /**
     * Signatures per fragment (one fragment per frame). The paper
     * uses 8K — the largest size with <2% coverage loss at its
     * billion-instruction scale (Section 5.4). Our workloads are ~8x
     * scaled down, so the default here is 1K, which keeps the
     * fragment small relative to a loop iteration (the same ratio the
     * paper's choice achieves); paper() restores 8K and the ablation
     * bench sweeps the parameter.
     */
    std::uint32_t fragmentSignatures = 1024;
    /** Bytes per signature in off-chip storage (5B, Section 5.8). */
    std::uint32_t signatureBytes = 5;

    //
    // Streaming (Sections 3.3, 4.3).
    //
    /**
     * The head signature precedes its fragment by this many
     * signatures in the recorded sequence ("several hundred").
     */
    std::uint32_t headLookahead = 512;
    /**
     * Sliding window: keep signatures streamed in up to this far
     * beyond the most recently used signature of a fragment. Must
     * cover the last-touch/miss reorder distance (~1K, Section 5.2).
     */
    std::uint32_t windowAhead = 1024;
    /** Signatures moved per off-chip transfer unit (Section 4.1). */
    std::uint32_t streamBatch = 32;
    /**
     * Model the off-chip retrieval latency of signature streams
     * (cycle engine); the trace engine leaves this off, matching the
     * paper's trace-driven studies.
     */
    bool modelStreamLatency = false;
    /**
     * Cycles from requesting a signature batch to its on-chip
     * arrival (DRAM access + transfer of a streamBatch unit).
     */
    Cycle streamLatencyCycles = 230;

    //
    // Confidence (Section 4.4).
    //
    /** Initial 2-bit confidence (2 expedites training). */
    std::uint8_t confidenceInit = 2;
    /** Confidence at or above which predictions are acted on. */
    std::uint8_t confidenceThreshold = 2;
    /** Saturation value of the confidence counter. */
    std::uint8_t confidenceMax = 3;

    //
    // L1D geometry (for the history table and victim set mapping).
    //
    /** L1D set count (history table is per-set). */
    std::uint32_t l1Sets = 512;
    /** Cache line size in bytes. */
    std::uint32_t lineBytes = 64;

    /** Off-chip sequence storage capacity, bytes. */
    std::uint64_t
    offChipBytes() const
    {
        return static_cast<std::uint64_t>(numFrames) *
            fragmentSignatures * signatureBytes;
    }

    /** Total signatures the off-chip storage can hold. */
    std::uint64_t
    offChipSignatures() const
    {
        return static_cast<std::uint64_t>(numFrames) *
            fragmentSignatures;
    }

    /**
     * On-chip storage estimate, bytes: 42-bit signature-cache entries
     * plus the sequence tag array (head hash + window position per
     * frame), per Section 5.6.
     */
    std::uint64_t onChipBytes() const;

    /** Paper configuration (Section 5.6): 4K frames x 8K signatures. */
    static LtcordsConfig
    paper()
    {
        LtcordsConfig c;
        c.fragmentSignatures = 8192;
        return c;
    }
};

} // namespace ltc

#endif // LTC_CORE_LTCORDS_CONFIG_HH
