/**
 * @file
 * Last-Touch Correlated Data Streaming — the paper's contribution.
 *
 * LT-cords combines:
 *  - a DBCP-style history table producing last-touch signatures
 *    (pred/history_table.hh),
 *  - off-chip sequence storage recording those signatures in
 *    discovery (cache-miss) order (core/sequence_storage.hh),
 *  - a small on-chip signature cache holding sliding windows of the
 *    active sequences (core/signature_cache.hh), and
 *  - a streaming engine: when a fragment's head signature recurs, the
 *    fragment is streamed on chip; each used signature advances its
 *    fragment's sliding window.
 *
 * Signature-cache hits with saturated confidence identify last
 * touches and trigger prefetches of the recorded replacement block
 * directly into L1D, replacing the predicted dead block.
 */

#ifndef LTC_CORE_LTCORDS_HH
#define LTC_CORE_LTCORDS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/ltcords_config.hh"
#include "core/sequence_storage.hh"
#include "core/signature_cache.hh"
#include "pred/history_table.hh"
#include "pred/prefetcher.hh"
#include "util/flat_map.hh"

namespace ltc
{

/** The LT-cords streaming predictor (see the file comment). */
class LtCords : public Prefetcher
{
  public:
    /** Build an engine sized by @p config. */
    explicit LtCords(const LtcordsConfig &config);

    /** Observe one reference: train, record, stream, predict. */
    void observe(const MemRef &ref, const HierOutcome &out) override;
    /** A prefetched block evicted @p victim_addr (tracking). */
    void onPrefetchEviction(Addr victim_addr,
                            Addr incoming_addr) override;
    /** Prefetch outcome feedback: drives confidence updates. */
    void feedback(const PrefetchFeedback &fb) override;
    /**
     * Batched feedback: one virtual call for a whole engine drain
     * (the engines buffer outcome events and flush them at the two
     * ordering points of each reference; see Prefetcher).
     */
    void feedbackBatch(const PrefetchFeedback *fbs,
                       std::size_t n) override;
    /** Advance the engine's notion of time (latency modelling). */
    void setNow(Cycle now) override;
    /**
     * Route the on-chip signature cache to @p tenant's partition
     * slice (no-op layout in shared mode) and attribute subsequently
     * recorded fragments to it. Cold path: once per quantum.
     */
    void selectTenant(std::uint32_t tenant) override;
    /** Drain (write, read) off-chip signature bytes since last call. */
    std::pair<std::uint64_t, std::uint64_t> drainMetaTraffic() override;

    /** Predictor name ("lt-cords"). */
    std::string name() const override { return "lt-cords"; }
    /** Export engine counters into @p set. */
    void exportStats(StatSet &set) const override;
    /**
     * Audit the off-chip sequence storage plus the engine's own
     * streaming state (per-frame windows, pending batches,
     * outstanding-prediction pointers). See Prefetcher.
     */
    void auditInvariants() const override;

    /** Drop all predictor state (not normally done; see Section 5.5). */
    void clear();

    /** Configuration the engine was built with. */
    const LtcordsConfig &config() const { return config_; }
    /** Off-chip sequence storage (read access for stats/tests). */
    const SequenceStorage &storage() const { return storage_; }
    /** On-chip signature cache (read access for stats/tests). */
    const SignatureCache &signatureCache() const { return sigCache_; }

    /** On-chip storage in bytes (signature cache + tag array). */
    std::uint64_t onChipBytes() const;

  private:
    /** Begin streaming @p frame from its start (head recurrence). */
    void activateFrame(std::uint32_t frame);

    /** Used signature at (frame, offset): advance the window. */
    void advanceWindow(std::uint32_t frame, std::uint32_t offset);

    /**
     * Stream signatures [from, to) of @p frame into the signature
     * cache, batched; with latency modelling enabled, arrival is
     * deferred by the configured stream latency.
     */
    void streamRange(std::uint32_t frame, std::uint32_t from,
                     std::uint32_t to);

    /** Insert one stored signature (made visible on chip). */
    void installSignature(std::uint32_t frame, std::uint32_t offset);

    /** Deliver deferred stream arrivals up to now_. */
    void processPending();

    LtcordsConfig config_;
    HistoryTable history_;
    SignatureCache sigCache_;
    SequenceStorage storage_;

    /** Per-frame streaming state (window position per Section 4.3). */
    struct StreamState
    {
        /** Next off-chip offset to stream in. */
        std::uint32_t streamedPos = 0;
        /** Frame has been activated since its last (re-)recording. */
        bool active = false;
    };
    std::vector<StreamState> streams_;

    /** Deferred arrival of a streamed batch (latency modelling). */
    struct PendingBatch
    {
        Cycle ready = 0;
        std::uint32_t frame = 0;
        std::uint32_t from = 0;
        std::uint32_t to = 0;
    };
    std::deque<PendingBatch> pending_;
    Cycle now_ = 0;

    /** Outstanding predictions: target block -> signature pointer.
     *  Open-addressed (util/flat_map.hh): one insert per prediction
     *  and one probe+erase per feedback sit on the hot path, and the
     *  node churn of the hash map this replaces dominated the
     *  lt-cords profile. */
    struct SigPtr
    {
        std::uint32_t frame = 0;
        std::uint32_t offset = 0;
    };
    AddrMap<SigPtr> outstanding_;

    // Statistics.
    std::uint64_t headActivations_ = 0;
    std::uint64_t predictions_ = 0;
    std::uint64_t lowConfidence_ = 0;
    std::uint64_t sigStreamed_ = 0;
    std::uint64_t confidenceUps_ = 0;
    std::uint64_t confidenceDowns_ = 0;
};

} // namespace ltc

#endif // LTC_CORE_LTCORDS_HH
