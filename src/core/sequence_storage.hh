/**
 * @file
 * Off-chip sequence storage and the sequence tag array (Section 4.2).
 *
 * Main memory is partitioned into frames, each holding one fragment:
 * a fixed-length sub-sequence of consecutive last-touch signatures in
 * the order they were discovered (cache-miss order). A fragment is
 * associated with a *head signature* — the signature that precedes
 * the fragment in the recorded sequence by `headLookahead` positions —
 * and maps to a frame by the low-order bits of that head (direct
 * mapped; a new fragment overwrites an old one in the same frame).
 * The on-chip sequence tag array stores each frame's head hash so a
 * recurring head can be recognised and the fragment streamed back in.
 *
 * There is no explicit sequence start/stop: recording appends for as
 * long as cache misses occur (Section 4.2). Write traffic is batched
 * in `streamBatch`-signature units (Section 4.1) and accounted so the
 * engines can charge the memory bus.
 */

#ifndef LTC_CORE_SEQUENCE_STORAGE_HH
#define LTC_CORE_SEQUENCE_STORAGE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/ltcords_config.hh"
#include "util/check.hh"
#include "util/types.hh"

namespace ltc
{

/** One signature as stored off chip. */
struct StoredSignature
{
    /** Last-touch signature (history-trace hash mixed with tag). */
    std::uint64_t key = 0;
    /** Predicted replacement block to prefetch. */
    Addr replacement = invalidAddr;
    /** Block whose last touch this signature identifies. */
    Addr victim = invalidAddr;
    /** 2-bit prediction confidence (written back, Section 4.4). */
    std::uint8_t confidence = 0;
};

/** Frames-of-fragments sequence store (see the file comment). */
class SequenceStorage
{
  public:
    /** Build storage sized by @p config (numFrames x fragment). */
    explicit SequenceStorage(const LtcordsConfig &config);

    /**
     * Append one signature to the recorded sequence (confidence is
     * set to the configured initial value). Defined inline below: one
     * call per L1 miss in the LT-cords observe path.
     */
    void record(std::uint64_t key, Addr replacement, Addr victim);

    /**
     * Sequence tag array lookup: the frame whose head hash matches
     * @p key, if any. Inline: probed once per L1 miss.
     */
    std::optional<std::uint32_t> frameForHead(std::uint64_t key) const;

    /** Signature at (frame, offset); nullptr past the fragment fill.
     *  Inline: the streaming path reads a window per head match. */
    const StoredSignature *at(std::uint32_t frame,
                              std::uint32_t offset) const;

    /** Signatures currently recorded in @p frame. */
    std::uint32_t frameFill(std::uint32_t frame) const;

    /** True when @p frame holds a (possibly partial) fragment. */
    bool frameValid(std::uint32_t frame) const;

    /**
     * Direct off-chip confidence update through a signature-cache
     * pointer (Section 4.4).
     */
    void updateConfidence(std::uint32_t frame, std::uint32_t offset,
                          std::uint8_t confidence);

    /**
     * Called whenever a frame is re-allocated to a new fragment, so
     * the owner can invalidate stale on-chip copies.
     */
    void
    setReallocCallback(std::function<void(std::uint32_t)> cb)
    {
        reallocCallback_ = std::move(cb);
    }

    /** Account a streaming read of @p sigs signatures. */
    void noteStreamRead(std::uint64_t sigs);

    /**
     * Attribute subsequently recorded fragments to @p tenant
     * (multi-programming, Section 5.5 scaled out). Cold path: set
     * once per scheduling quantum. Frames record their owner when a
     * fragment begins, which is what the occupancy and interference
     * counters below aggregate.
     */
    void setTenant(std::uint32_t tenant) { currentTenant_ = tenant; }

    /** Frames currently holding a fragment owned by @p tenant. */
    std::uint32_t tenantFrames(std::uint32_t tenant) const;

    /** Signatures resident in frames owned by @p tenant. */
    std::uint64_t tenantResidentSignatures(std::uint32_t tenant) const;

    /**
     * Frame conflicts where the new fragment's tenant overwrote a
     * fragment recorded by a *different* tenant — the cross-tenant
     * interference the scaled-out Fig. 11 sweep tracks.
     */
    std::uint64_t crossTenantConflicts() const
    {
        return crossTenantConflicts_;
    }

    /** Total signatures ever recorded. */
    std::uint64_t recordedTotal() const { return recordedTotal_; }
    /** Signatures currently resident across all frames. */
    std::uint64_t residentSignatures() const;
    /** Frames holding fragments. */
    std::uint32_t framesInUse() const;
    /** Fragments overwritten by frame conflicts. */
    std::uint64_t frameConflicts() const { return frameConflicts_; }

    /** Off-chip bytes written since the last drain (seq. creation). */
    std::uint64_t drainWriteBytes();
    /** Off-chip bytes read since the last drain (seq. fetch). */
    std::uint64_t drainReadBytes();

    /** Drop all recorded sequences. */
    void clear();

    /**
     * LTC_CHECK every frame-link invariant: a valid frame's head key
     * must map back to that frame (the direct-mapped link the
     * streaming path follows), fragments never exceed the configured
     * length, invalid frames hold nothing, the record cursor points
     * at a valid frame, and the occupancy counters are mutually
     * consistent. Cold path; panics on the first violation.
     */
    void auditInvariants() const;

    /** Configuration the storage was built with. */
    const LtcordsConfig &config() const { return config_; }

  private:
    void beginFragment(std::uint64_t incoming_key);

    LtcordsConfig config_;

    struct Frame
    {
        std::uint64_t headKey = 0;
        std::vector<StoredSignature> sigs;
        bool valid = false;
        /** Tenant that recorded the resident fragment. */
        std::uint32_t owner = 0;
    };

    std::vector<Frame> frames_;
    /** Frame currently being appended to; none before first record. */
    std::optional<std::uint32_t> recordFrame_;

    /**
     * Ring of the most recent `headLookahead` recorded keys, used to
     * pick the head signature when a new fragment begins. recentPos_
     * always names the oldest slot (the next to be overwritten) and
     * wraps explicitly on increment — indexing a monotonic counter
     * with `% size` would skew head selection for non-power-of-two
     * lookaheads once the counter wraps, and costs a division per
     * record besides.
     */
    std::vector<std::uint64_t> recentKeys_;
    std::size_t recentPos_ = 0;

    std::function<void(std::uint32_t)> reallocCallback_;

    std::uint64_t recordedTotal_ = 0;
    std::uint64_t frameConflicts_ = 0;
    std::uint64_t pendingWriteBytes_ = 0;
    std::uint64_t pendingReadBytes_ = 0;

    /** Tenant new fragments are attributed to (setTenant). */
    std::uint32_t currentTenant_ = 0;
    std::uint64_t crossTenantConflicts_ = 0;

    /** Death-test hook: lets the invariant suite corrupt state. */
    friend struct TestPeer;
};

// ------------------------------------------------------ hot path
//
// record() runs once per L1 miss and frameForHead()/at() once per
// miss / streamed signature in the LT-cords observe path; defined
// inline so the predictor's per-reference loop crosses no call
// boundary for them (beginFragment stays out of line — it runs once
// per fragment).
//
// LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
// operator and virtual declarations between these markers.

inline void
SequenceStorage::record(std::uint64_t key, Addr replacement,
                        Addr victim)
{
    if (!recordFrame_ ||
        frames_[*recordFrame_].sigs.size() >= config_.fragmentSignatures)
        beginFragment(key);

    Frame &f = frames_[*recordFrame_];
    StoredSignature sig;
    sig.key = key;
    sig.replacement = replacement;
    sig.victim = victim;
    sig.confidence = config_.confidenceInit;
    f.sigs.push_back(sig);

    // Head-history ring: recentPos_ is the oldest slot (the key
    // recorded `headLookahead` positions ago, which beginFragment
    // reads as the head); overwrite it and advance with an explicit
    // wrap.
    recentKeys_[recentPos_] = key;
    recentPos_++;
    if (recentPos_ == recentKeys_.size())
        recentPos_ = 0;

    recordedTotal_++;
    pendingWriteBytes_ += config_.signatureBytes;
}

inline std::optional<std::uint32_t>
SequenceStorage::frameForHead(std::uint64_t key) const
{
    const auto frame =
        static_cast<std::uint32_t>(key & (config_.numFrames - 1));
    const Frame &f = frames_[frame];
    if (f.valid && f.headKey == key)
        return frame;
    return std::nullopt;
}

inline const StoredSignature *
SequenceStorage::at(std::uint32_t frame, std::uint32_t offset) const
{
    LTC_DCHECK(frame < frames_.size(), "frame out of range: ", frame);
    const Frame &f = frames_[frame];
    if (!f.valid || offset >= f.sigs.size())
        return nullptr;
    return &f.sigs[offset];
}

// LTC_HOT_END

} // namespace ltc

#endif // LTC_CORE_SEQUENCE_STORAGE_HH
