/**
 * @file
 * On-chip signature cache (Sections 3.2, 4.3 of the paper).
 *
 * A small set-associative table holding the sliding windows of all
 * active signature sequences. Entries are replaced in FIFO order
 * (Section 4.3). Each entry carries, besides the prediction payload,
 * a pointer (frame, offset) to its exact location in off-chip
 * sequence storage, used to advance the owning fragment's sliding
 * window and to write confidence updates back (Section 4.4).
 *
 * Layout is structure-of-arrays: the signature keys, the FIFO stamps
 * and the prediction payloads live in three parallel arrays. The
 * per-reference lookup scans only the key array — a 2-way set is one
 * 16-byte load — and touches a payload solely on a hit; the AoS
 * layout it replaces dragged the full ~40-byte entry through the
 * cache on every probe of the default 32K-entry configuration. A
 * FIFO stamp of 0 means the way is empty (live stamps start at 1),
 * which also makes empty ways naturally win the oldest-stamp victim
 * scan.
 */

#ifndef LTC_CORE_SIGNATURE_CACHE_HH
#define LTC_CORE_SIGNATURE_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace ltc
{

/** One signature to install in the on-chip cache (insert()). */
struct SigCacheEntry
{
    /** Last-touch signature this entry matches. */
    std::uint64_t key = 0;
    /** Predicted replacement block to prefetch. */
    Addr replacement = invalidAddr;
    /** Block whose last touch this signature identifies. */
    Addr victim = invalidAddr;
    /** 2-bit prediction confidence. */
    std::uint8_t confidence = 0;
    /** Pointer into off-chip storage: frame index. */
    std::uint32_t frame = 0;
    /** Pointer into off-chip storage: offset within the fragment. */
    std::uint32_t offset = 0;
};

/** Prediction payload of a resident signature (lookup()). */
struct SigPayload
{
    /** Predicted replacement block to prefetch. */
    Addr replacement = invalidAddr;
    /** Block whose last touch this signature identifies. */
    Addr victim = invalidAddr;
    /** Pointer into off-chip storage: frame index. */
    std::uint32_t frame = 0;
    /** Pointer into off-chip storage: offset within the fragment. */
    std::uint32_t offset = 0;
    /** 2-bit prediction confidence. */
    std::uint8_t confidence = 0;
};

/** Set-associative FIFO cache of active sliding windows. */
class SignatureCache
{
  public:
    /**
     * @param entries Total entry count (power of two).
     * @param assoc   Associativity (divides entries).
     */
    SignatureCache(std::uint32_t entries, std::uint32_t assoc);

    /**
     * Insert a signature; evicts the oldest (FIFO) entry of the set
     * if full. Re-inserting an existing key refreshes its payload but
     * keeps its FIFO stamp. Defined inline below (streaming installs
     * ride the observe path).
     */
    void insert(const SigCacheEntry &entry);

    /**
     * Payload of the entry for @p key; nullptr when absent. Inline:
     * probed once per L1 reference in the LT-cords observe path.
     */
    const SigPayload *lookup(std::uint64_t key);

    /**
     * Partition the set-index space into @p parts equal slices for
     * multi-tenant isolation (Section 5.5 scaled out): selectTenant()
     * then confines every lookup and insert to one slice, so tenants
     * cannot evict each other's windows. @p parts is clamped to a
     * power of two no larger than the set count; 0 or 1 selects
     * shared mode, whose set mapping is bit-identical to an
     * unpartitioned cache (base 0, full set mask). Callable only
     * while the cache is empty (construction-time configuration).
     */
    void configurePartitions(std::uint32_t parts);

    /**
     * Route subsequent lookups and inserts to the slice of @p tenant
     * (tenants hash onto slices by their low bits when there are more
     * tenants than slices). No-op layout in shared mode. Cold path:
     * engines call this once per scheduling quantum, never per
     * reference.
     */
    void selectTenant(std::uint32_t tenant);

    /** Number of partition slices (1 = shared mode). */
    std::uint32_t partitions() const { return partitions_; }

    /** Invalidate all entries pointing into @p frame (re-recording). */
    void invalidateFrame(std::uint32_t frame);

    /** Drop everything. */
    void clear();

    /** Total entry capacity. */
    std::uint32_t entries() const { return entries_; }
    /** Associativity. */
    std::uint32_t assoc() const { return assoc_; }
    /** Number of sets (entries / assoc). */
    std::uint32_t numSets() const { return sets_; }

    /** Lifetime insert count. */
    std::uint64_t inserts() const { return inserts_; }
    /** Entries displaced by FIFO replacement. */
    std::uint64_t fifoEvictions() const { return fifoEvictions_; }
    /** Lifetime lookup count. */
    std::uint64_t lookups() const { return lookups_; }
    /** Lookups that found a valid entry. */
    std::uint64_t hits() const { return hits_; }

    /** Currently valid entries (O(capacity); for stats/tests). */
    std::uint32_t occupancy() const;

    /**
     * On-chip bytes: 42 bits per entry (15b address tag + 2b
     * confidence + 25b off-chip self-pointer, Section 5.6).
     */
    std::uint64_t
    storageBytes() const
    {
        return static_cast<std::uint64_t>(entries_) * 42 / 8;
    }

  private:
    std::uint32_t setOf(std::uint64_t key) const;

    std::uint32_t entries_;
    std::uint32_t assoc_;
    std::uint32_t sets_;
    /**
     * Tenant partitioning state (configurePartitions/selectTenant).
     * Shared mode keeps partBase_ = 0 and partMask_ = sets_ - 1, so
     * setOf() computes exactly the unpartitioned index; partitioned
     * mode narrows the mask to one slice and offsets it by the
     * selected tenant's slice base.
     */
    std::uint32_t partitions_ = 1;
    std::uint32_t partSets_ = 0;  //!< sets per slice (sets_ if shared)
    std::uint32_t partBase_ = 0;  //!< first set of the selected slice
    std::uint32_t partMask_ = 0;  //!< set-index mask within the slice
    // Parallel arrays, indexed set * assoc + way (see file comment).
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> fill_; //!< FIFO stamp; 0 = empty way
    std::vector<SigPayload> payload_;
    std::uint64_t stamp_ = 0;

    std::uint64_t inserts_ = 0;
    std::uint64_t fifoEvictions_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

// ------------------------------------------------------ hot path
//
// lookup() runs once per L1 reference and insert() once per streamed
// signature inside the LT-cords observe path; both are defined inline
// so that path crosses no call boundary for them.
//
// LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
// operator and virtual declarations between these markers.

inline std::uint32_t
SignatureCache::setOf(std::uint64_t key) const
{
    // Indexed by the low-order bits of the signature (Section 5.6),
    // confined to the selected tenant's slice when partitioned. In
    // shared mode partBase_ is 0 and partMask_ covers every set, so
    // this is exactly `key & (sets_ - 1)` — bit-identical to the
    // unpartitioned cache.
    return partBase_ + static_cast<std::uint32_t>(key & partMask_);
}

inline const SigPayload *
SignatureCache::lookup(std::uint64_t key)
{
    lookups_++;
    const std::size_t base =
        static_cast<std::size_t>(setOf(key)) * assoc_;
    const std::uint64_t *keys = keys_.data() + base;
    for (std::uint32_t w = 0; w < assoc_; w++) {
        if (keys[w] == key && fill_[base + w] != 0) {
            hits_++;
            return &payload_[base + w];
        }
    }
    return nullptr;
}

inline void
SignatureCache::insert(const SigCacheEntry &entry)
{
    inserts_++;
    const std::size_t base =
        static_cast<std::size_t>(setOf(entry.key)) * assoc_;

    // Refresh an existing copy of the same signature in place,
    // keeping its FIFO stamp; otherwise take the oldest way (empty
    // ways carry stamp 0, so they naturally win the scan, lowest way
    // first on ties).
    std::uint32_t way = assoc_;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < assoc_; w++) {
        if (keys_[base + w] == entry.key && fill_[base + w] != 0) {
            way = w;
            break;
        }
        if (fill_[base + w] < fill_[base + victim])
            victim = w;
    }
    if (way == assoc_) {
        way = victim;
        if (fill_[base + way] != 0)
            fifoEvictions_++;
        fill_[base + way] = ++stamp_;
    }
    keys_[base + way] = entry.key;
    SigPayload &p = payload_[base + way];
    p.replacement = entry.replacement;
    p.victim = entry.victim;
    p.frame = entry.frame;
    p.offset = entry.offset;
    p.confidence = entry.confidence;
}

// LTC_HOT_END

} // namespace ltc

#endif // LTC_CORE_SIGNATURE_CACHE_HH
