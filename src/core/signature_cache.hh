/**
 * @file
 * On-chip signature cache (Sections 3.2, 4.3 of the paper).
 *
 * A small set-associative table holding the sliding windows of all
 * active signature sequences. Entries are replaced in FIFO order
 * (Section 4.3). Each entry carries, besides the prediction payload,
 * a pointer (frame, offset) to its exact location in off-chip
 * sequence storage, used to advance the owning fragment's sliding
 * window and to write confidence updates back (Section 4.4).
 */

#ifndef LTC_CORE_SIGNATURE_CACHE_HH
#define LTC_CORE_SIGNATURE_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace ltc
{

/** One signature resident in the on-chip cache. */
struct SigCacheEntry
{
    /** Last-touch signature this entry matches. */
    std::uint64_t key = 0;
    /** Predicted replacement block to prefetch. */
    Addr replacement = invalidAddr;
    /** Block whose last touch this signature identifies. */
    Addr victim = invalidAddr;
    /** 2-bit prediction confidence. */
    std::uint8_t confidence = 0;
    /** Pointer into off-chip storage: frame index. */
    std::uint32_t frame = 0;
    /** Pointer into off-chip storage: offset within the fragment. */
    std::uint32_t offset = 0;
    /** FIFO stamp. */
    std::uint64_t fillTime = 0;
    /** Entry holds a live signature. */
    bool valid = false;
};

/** Set-associative FIFO cache of active sliding windows. */
class SignatureCache
{
  public:
    /**
     * @param entries Total entry count (power of two).
     * @param assoc   Associativity (divides entries).
     */
    SignatureCache(std::uint32_t entries, std::uint32_t assoc);

    /**
     * Insert a signature; evicts the oldest (FIFO) entry of the set
     * if full. Re-inserting an existing key refreshes its payload but
     * keeps its FIFO stamp.
     */
    void insert(const SigCacheEntry &entry);

    /** Find the entry for @p key; nullptr when absent. */
    SigCacheEntry *lookup(std::uint64_t key);

    /** Invalidate all entries pointing into @p frame (re-recording). */
    void invalidateFrame(std::uint32_t frame);

    /** Drop everything. */
    void clear();

    /** Total entry capacity. */
    std::uint32_t entries() const { return entries_; }
    /** Associativity. */
    std::uint32_t assoc() const { return assoc_; }
    /** Number of sets (entries / assoc). */
    std::uint32_t numSets() const { return sets_; }

    /** Lifetime insert count. */
    std::uint64_t inserts() const { return inserts_; }
    /** Entries displaced by FIFO replacement. */
    std::uint64_t fifoEvictions() const { return fifoEvictions_; }
    /** Lifetime lookup count. */
    std::uint64_t lookups() const { return lookups_; }
    /** Lookups that found a valid entry. */
    std::uint64_t hits() const { return hits_; }

    /** Currently valid entries (O(capacity); for stats/tests). */
    std::uint32_t occupancy() const;

    /**
     * On-chip bytes: 42 bits per entry (15b address tag + 2b
     * confidence + 25b off-chip self-pointer, Section 5.6).
     */
    std::uint64_t
    storageBytes() const
    {
        return static_cast<std::uint64_t>(entries_) * 42 / 8;
    }

  private:
    std::uint32_t setOf(std::uint64_t key) const;

    std::uint32_t entries_;
    std::uint32_t assoc_;
    std::uint32_t sets_;
    std::vector<SigCacheEntry> table_;
    std::uint64_t stamp_ = 0;

    std::uint64_t inserts_ = 0;
    std::uint64_t fifoEvictions_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace ltc

#endif // LTC_CORE_SIGNATURE_CACHE_HH
