#include "core/signature_cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

SignatureCache::SignatureCache(std::uint32_t entries, std::uint32_t assoc)
    : entries_(entries), assoc_(assoc)
{
    ltc_assert(assoc_ > 0, "signature cache needs assoc >= 1");
    ltc_assert(entries_ >= assoc_ && entries_ % assoc_ == 0,
               "signature cache entries must be a multiple of assoc");
    sets_ = entries_ / assoc_;
    ltc_assert(isPowerOf2(sets_),
               "signature cache set count must be a power of two, got ",
               sets_);
    partSets_ = sets_;
    partMask_ = sets_ - 1;
    keys_.assign(entries_, 0);
    fill_.assign(entries_, 0);
    payload_.assign(entries_, SigPayload{});
}

void
SignatureCache::configurePartitions(std::uint32_t parts)
{
    ltc_assert(occupancy() == 0,
               "signature cache partitions must be configured while "
               "the cache is empty");
    if (parts <= 1) {
        partitions_ = 1;
        partSets_ = sets_;
        partBase_ = 0;
        partMask_ = sets_ - 1;
        return;
    }
    // Round the request down to a power of two so slices stay plain
    // base+mask windows, and clamp so every slice keeps at least one
    // set.
    std::uint32_t p = std::uint32_t{1} << floorLog2(parts);
    p = std::min(p, sets_);
    partitions_ = p;
    partSets_ = sets_ / p;
    partBase_ = 0;
    partMask_ = partSets_ - 1;
}

void
SignatureCache::selectTenant(std::uint32_t tenant)
{
    // Tenants beyond the slice count hash onto slices by their low
    // bits (partitions_ is a power of two).
    partBase_ = (tenant & (partitions_ - 1)) * partSets_;
}

void
SignatureCache::invalidateFrame(std::uint32_t frame)
{
    for (std::size_t i = 0; i < payload_.size(); i++) {
        if (fill_[i] != 0 && payload_[i].frame == frame)
            fill_[i] = 0;
    }
}

void
SignatureCache::clear()
{
    std::fill(fill_.begin(), fill_.end(), 0);
}

std::uint32_t
SignatureCache::occupancy() const
{
    std::uint32_t n = 0;
    for (const std::uint64_t f : fill_)
        n += f != 0 ? 1 : 0;
    return n;
}

} // namespace ltc
