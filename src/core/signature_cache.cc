#include "core/signature_cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

SignatureCache::SignatureCache(std::uint32_t entries, std::uint32_t assoc)
    : entries_(entries), assoc_(assoc)
{
    ltc_assert(assoc_ > 0, "signature cache needs assoc >= 1");
    ltc_assert(entries_ >= assoc_ && entries_ % assoc_ == 0,
               "signature cache entries must be a multiple of assoc");
    sets_ = entries_ / assoc_;
    ltc_assert(isPowerOf2(sets_),
               "signature cache set count must be a power of two, got ",
               sets_);
    keys_.assign(entries_, 0);
    fill_.assign(entries_, 0);
    payload_.assign(entries_, SigPayload{});
}

void
SignatureCache::invalidateFrame(std::uint32_t frame)
{
    for (std::size_t i = 0; i < payload_.size(); i++) {
        if (fill_[i] != 0 && payload_[i].frame == frame)
            fill_[i] = 0;
    }
}

void
SignatureCache::clear()
{
    std::fill(fill_.begin(), fill_.end(), 0);
}

std::uint32_t
SignatureCache::occupancy() const
{
    std::uint32_t n = 0;
    for (const std::uint64_t f : fill_)
        n += f != 0 ? 1 : 0;
    return n;
}

} // namespace ltc
