#include "core/signature_cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

SignatureCache::SignatureCache(std::uint32_t entries, std::uint32_t assoc)
    : entries_(entries), assoc_(assoc)
{
    ltc_assert(assoc_ > 0, "signature cache needs assoc >= 1");
    ltc_assert(entries_ >= assoc_ && entries_ % assoc_ == 0,
               "signature cache entries must be a multiple of assoc");
    sets_ = entries_ / assoc_;
    ltc_assert(isPowerOf2(sets_),
               "signature cache set count must be a power of two, got ",
               sets_);
    table_.resize(entries_);
}

std::uint32_t
SignatureCache::setOf(std::uint64_t key) const
{
    // Indexed by the low-order bits of the signature (Section 5.6).
    return static_cast<std::uint32_t>(key & (sets_ - 1));
}

void
SignatureCache::insert(const SigCacheEntry &entry)
{
    inserts_++;
    const std::uint32_t set = setOf(entry.key);
    SigCacheEntry *base = &table_[static_cast<std::size_t>(set) * assoc_];

    // Refresh an existing copy of the same signature in place.
    for (std::uint32_t w = 0; w < assoc_; w++) {
        if (base[w].valid && base[w].key == entry.key) {
            const std::uint64_t stamp = base[w].fillTime;
            base[w] = entry;
            base[w].valid = true;
            base[w].fillTime = stamp;
            return;
        }
    }

    // FIFO victim: the oldest fillTime; invalid ways first.
    SigCacheEntry *victim = &base[0];
    for (std::uint32_t w = 0; w < assoc_; w++) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].fillTime < victim->fillTime)
            victim = &base[w];
    }
    if (victim->valid)
        fifoEvictions_++;
    *victim = entry;
    victim->valid = true;
    victim->fillTime = ++stamp_;
}

SigCacheEntry *
SignatureCache::lookup(std::uint64_t key)
{
    lookups_++;
    const std::uint32_t set = setOf(key);
    SigCacheEntry *base = &table_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; w++) {
        if (base[w].valid && base[w].key == key) {
            hits_++;
            return &base[w];
        }
    }
    return nullptr;
}

void
SignatureCache::invalidateFrame(std::uint32_t frame)
{
    for (SigCacheEntry &e : table_) {
        if (e.valid && e.frame == frame)
            e.valid = false;
    }
}

void
SignatureCache::clear()
{
    for (SigCacheEntry &e : table_)
        e.valid = false;
}

std::uint32_t
SignatureCache::occupancy() const
{
    std::uint32_t n = 0;
    for (const SigCacheEntry &e : table_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace ltc
