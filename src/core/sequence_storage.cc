#include "core/sequence_storage.hh"

#include "util/bitops.hh"
#include "util/check.hh"
#include "util/logging.hh"

namespace ltc
{

SequenceStorage::SequenceStorage(const LtcordsConfig &config)
    : config_(config)
{
    ltc_assert(isPowerOf2(config_.numFrames),
               "frame count must be a power of two, got ",
               config_.numFrames);
    ltc_assert(config_.fragmentSignatures > 0,
               "fragments must hold at least one signature");
    frames_.resize(config_.numFrames);
    recentKeys_.assign(std::max<std::uint32_t>(1, config_.headLookahead),
                       0);
}

void
SequenceStorage::beginFragment(std::uint64_t incoming_key)
{
    // The head is the signature recorded `headLookahead` positions
    // ago; before enough history exists, the incoming signature
    // itself serves as head (zero lookahead for the very first
    // fragment).
    std::uint64_t head = incoming_key;
    if (recordedTotal_ >= config_.headLookahead && config_.headLookahead)
        head = recentKeys_[recentPos_]; // oldest slot, see record()

    const auto frame =
        static_cast<std::uint32_t>(head & (config_.numFrames - 1));
    Frame &f = frames_[frame];
    if (f.valid) {
        frameConflicts_++;
        if (f.owner != currentTenant_)
            crossTenantConflicts_++;
        if (reallocCallback_)
            reallocCallback_(frame);
    }
    f.valid = true;
    f.headKey = head;
    f.owner = currentTenant_;
    f.sigs.clear();
    f.sigs.reserve(std::min<std::uint32_t>(config_.fragmentSignatures,
                                           4096));
    recordFrame_ = frame;
}

std::uint32_t
SequenceStorage::frameFill(std::uint32_t frame) const
{
    ltc_assert(frame < frames_.size(), "frame out of range: ", frame);
    const Frame &f = frames_[frame];
    return f.valid ? static_cast<std::uint32_t>(f.sigs.size()) : 0;
}

bool
SequenceStorage::frameValid(std::uint32_t frame) const
{
    ltc_assert(frame < frames_.size(), "frame out of range: ", frame);
    return frames_[frame].valid;
}

void
SequenceStorage::updateConfidence(std::uint32_t frame,
                                  std::uint32_t offset,
                                  std::uint8_t confidence)
{
    ltc_assert(frame < frames_.size(), "frame out of range: ", frame);
    Frame &f = frames_[frame];
    if (!f.valid || offset >= f.sigs.size())
        return; // the fragment was re-recorded under us; stale pointer
    f.sigs[offset].confidence = confidence;
    // Confidence updates ride otherwise-unused bus cycles
    // (Section 4.4); we still account the byte moved.
    pendingWriteBytes_ += 1;
}

void
SequenceStorage::noteStreamRead(std::uint64_t sigs)
{
    pendingReadBytes_ += sigs * config_.signatureBytes;
}

std::uint64_t
SequenceStorage::residentSignatures() const
{
    std::uint64_t n = 0;
    for (const Frame &f : frames_)
        if (f.valid)
            n += f.sigs.size();
    return n;
}

std::uint32_t
SequenceStorage::tenantFrames(std::uint32_t tenant) const
{
    std::uint32_t n = 0;
    for (const Frame &f : frames_)
        n += (f.valid && f.owner == tenant) ? 1 : 0;
    return n;
}

std::uint64_t
SequenceStorage::tenantResidentSignatures(std::uint32_t tenant) const
{
    std::uint64_t n = 0;
    for (const Frame &f : frames_)
        if (f.valid && f.owner == tenant)
            n += f.sigs.size();
    return n;
}

std::uint32_t
SequenceStorage::framesInUse() const
{
    std::uint32_t n = 0;
    for (const Frame &f : frames_)
        n += f.valid ? 1 : 0;
    return n;
}

std::uint64_t
SequenceStorage::drainWriteBytes()
{
    const std::uint64_t v = pendingWriteBytes_;
    pendingWriteBytes_ = 0;
    return v;
}

std::uint64_t
SequenceStorage::drainReadBytes()
{
    const std::uint64_t v = pendingReadBytes_;
    pendingReadBytes_ = 0;
    return v;
}

void
SequenceStorage::auditInvariants() const
{
    LTC_CHECK(frames_.size() == config_.numFrames, frames_.size(),
              " frames allocated, configured for ", config_.numFrames);
    LTC_CHECK(recentKeys_.size() ==
                  std::max<std::uint32_t>(1, config_.headLookahead),
              "head-history ring holds ", recentKeys_.size(),
              " keys for lookahead ", config_.headLookahead);
    LTC_CHECK(recentPos_ < recentKeys_.size(),
              "head-history cursor ", recentPos_,
              " outside the ring of ", recentKeys_.size());

    std::uint64_t resident = 0;
    for (std::size_t i = 0; i < frames_.size(); i++) {
        const Frame &f = frames_[i];
        if (!f.valid) {
            LTC_CHECK(f.sigs.empty(), "invalid frame ", i, " holds ",
                      f.sigs.size(), " signatures");
            continue;
        }
        LTC_CHECK(f.sigs.size() <= config_.fragmentSignatures,
                  "frame ", i, " overfull: ", f.sigs.size(), " of ",
                  config_.fragmentSignatures, " signatures");
        LTC_CHECK((f.headKey & (config_.numFrames - 1)) == i,
                  "frame link broken: head key of frame ", i,
                  " maps to frame ",
                  f.headKey & (config_.numFrames - 1));
        resident += f.sigs.size();
    }
    if (recordFrame_) {
        LTC_CHECK(*recordFrame_ < frames_.size(), "record cursor ",
                  *recordFrame_, " outside ", frames_.size(),
                  " frames");
        LTC_CHECK(frames_[*recordFrame_].valid,
                  "record cursor points at invalid frame ",
                  *recordFrame_);
    }
    LTC_CHECK(resident <= recordedTotal_, resident,
              " resident signatures exceed ", recordedTotal_,
              " ever recorded");
}

void
SequenceStorage::clear()
{
    for (Frame &f : frames_) {
        f.valid = false;
        f.owner = 0;
        f.sigs.clear();
    }
    recordFrame_.reset();
    recentPos_ = 0;
    std::fill(recentKeys_.begin(), recentKeys_.end(), 0);
}

} // namespace ltc
