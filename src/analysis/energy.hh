/**
 * @file
 * Analytical energy comparison of LT-cords structures vs the L1D
 * (Section 5.9 of the paper).
 *
 * The paper's argument, reproduced with its CACTI 4.2 anchors at
 * 70nm: the L1D must look tags and data up in parallel on a fast
 * four-ported array (~73pJ per access, ~18pJ for the data array
 * alone); LT-cords structures are narrower (42-bit entries), use
 * serial tag-then-data lookup (~30pJ for the tag check) and read
 * signature data only on the small fraction of accesses that miss
 * (~6.5pJ). Leakage favours the L1D (230mW vs 800mW with identical
 * transistors), but LT-cords lookups are off the critical path and
 * can use high-Vt devices.
 */

#ifndef LTC_ANALYSIS_ENERGY_HH
#define LTC_ANALYSIS_ENERGY_HH

namespace ltc
{

/** CACTI-anchored energy model for the Section 5.9 comparison. */
struct EnergyModel
{
    // Dynamic energy, picojoules (CACTI 4.2, 70nm; Section 5.9).
    double l1dAccessPj = 73.0;      //!< parallel tag+data, 4 ports
    double l1dDataReadPj = 18.0;    //!< data array block read alone
    double ltcTagCheckPj = 30.0;    //!< serial lookup, both structures
    double ltcDataReadPj = 6.5;     //!< signature data read (on miss)
    double sigReadPj = 6.0;         //!< signature array read alone

    // Leakage, milliwatts, same-technology assumption.
    double l1dLeakMw = 230.0;
    double ltcLeakMw = 800.0;

    /** Average LT-cords dynamic energy per L1D access. */
    double
    ltcDynamicPerAccessPj(double l1_miss_rate) const
    {
        return ltcTagCheckPj + l1_miss_rate * ltcDataReadPj;
    }

    /** LT-cords dynamic power relative to the L1D's. */
    double
    relativeDynamic(double l1_miss_rate) const
    {
        return ltcDynamicPerAccessPj(l1_miss_rate) / l1dAccessPj;
    }
};

} // namespace ltc

#endif // LTC_ANALYSIS_ENERGY_HH
