/**
 * @file
 * Cache-block dead-time analysis (Figure 2 of the paper).
 *
 * Dead time is the interval between the last touch to a block and its
 * eventual eviction. The paper shows >85% of L1D dead times exceed
 * the memory access latency, which is what gives last-touch
 * prefetching its lookahead. This analysis replays a stream through a
 * standalone L1D and histograms dead times in estimated cycles (the
 * caller supplies the average cycles per access of the baseline
 * machine, e.g. from a quick timing run).
 */

#ifndef LTC_ANALYSIS_DEADTIME_HH
#define LTC_ANALYSIS_DEADTIME_HH

#include <unordered_map>

#include "cache/cache.hh"
#include "trace/trace.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace ltc
{

class DeadTimeAnalysis : public CacheListener
{
  public:
    /**
     * @param l1d_config        L1D geometry.
     * @param cycles_per_access Baseline cycles per memory reference,
     *                          used to express dead times in cycles.
     */
    DeadTimeAnalysis(const CacheConfig &l1d_config,
                     double cycles_per_access);
    ~DeadTimeAnalysis() override;

    void step(const MemRef &ref);
    std::uint64_t run(TraceSource &src, std::uint64_t refs);

    /** Dead-time histogram (cycles, log2 buckets). */
    const Log2Histogram &histogram() const { return hist_; }

    /** Fraction of dead times longer than @p cycles. */
    double fractionLongerThan(Cycle cycles) const;

    void onEviction(Addr victim_addr, Addr incoming_addr,
                    std::uint32_t set, bool by_prefetch,
                    bool victim_was_untouched_prefetch,
                    bool victim_dirty,
                    std::uint8_t victim_meta) override;

  private:
    Cache l1d_;
    double cyclesPerAccess_;
    double now_ = 0.0;
    std::unordered_map<Addr, double> lastTouch_;
    Log2Histogram hist_{40};
};

} // namespace ltc

#endif // LTC_ANALYSIS_DEADTIME_HH
