/**
 * @file
 * Temporal-correlation analyses (Sections 5.1 and 5.2 of the paper).
 *
 * Three metrics over the L1D miss stream:
 *
 *  1. Temporal correlation distance (Fig. 6 left): for consecutive
 *     misses (m[i-1], m[i]), the distance between the previous
 *     occurrences of the same two misses — prevPos(m[i]) -
 *     prevPos(m[i-1]). +1 means the pair recurred in exactly the same
 *     order; -1 means it reversed. Misses are labelled with the tuple
 *     (miss PC, miss block, evicted block), as in the paper.
 *
 *  2. Correlated-sequence lengths (Fig. 6 right): lengths of maximal
 *     runs of misses whose correlation distance stays within +-16.
 *
 *  3. Last-touch-to-miss correlation distance (Fig. 7): order the
 *     evictions by their victims' last-touch times; for consecutive
 *     last touches, the distance between the positions of their
 *     corresponding misses in miss order. This is the reordering
 *     LT-cords must tolerate when following sequences recorded in
 *     miss order.
 */

#ifndef LTC_ANALYSIS_CORRELATION_HH
#define LTC_ANALYSIS_CORRELATION_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "trace/trace.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace ltc
{

/** Results of the miss-stream correlation analysis. */
struct CorrelationResult
{
    std::uint64_t misses = 0;
    /** Misses whose pair had no previous occurrence. */
    std::uint64_t uncorrelated = 0;
    /** Misses with correlation distance exactly +1. */
    std::uint64_t perfect = 0;

    /** Histogram of |temporal correlation distance|. */
    Log2Histogram distance{40};
    /** Histogram of correlated-sequence lengths (weighted by length). */
    Log2Histogram sequenceLength{40};
    /** Histogram of |last-touch-to-miss correlation distance|. */
    Log2Histogram lastTouchDistance{40};

    double
    uncorrelatedFraction() const
    {
        return misses ? static_cast<double>(uncorrelated) /
                static_cast<double>(misses)
                      : 0.0;
    }

    double
    perfectFraction() const
    {
        return misses ? static_cast<double>(perfect) /
                static_cast<double>(misses)
                      : 0.0;
    }
};

class CorrelationAnalysis : public CacheListener
{
  public:
    /**
     * @param l1d_config L1D geometry generating the miss stream.
     * @param window     Correlation-distance window defining a
     *                   "correlated" miss for sequence lengths (+-16
     *                   in the paper).
     */
    explicit CorrelationAnalysis(const CacheConfig &l1d_config,
                                 std::int64_t window = 16);
    ~CorrelationAnalysis() override;

    void step(const MemRef &ref);
    std::uint64_t run(TraceSource &src, std::uint64_t refs);

    /** Finalise (flushes the open run, sorts last-touch data). */
    CorrelationResult finish();

    void onEviction(Addr victim_addr, Addr incoming_addr,
                    std::uint32_t set, bool by_prefetch,
                    bool victim_was_untouched_prefetch,
                    bool victim_dirty,
                    std::uint8_t victim_meta) override;

  private:
    struct MissLabel
    {
        Addr pc;
        Addr missBlock;
        Addr evictedBlock;

        bool
        operator==(const MissLabel &o) const
        {
            return pc == o.pc && missBlock == o.missBlock &&
                evictedBlock == o.evictedBlock;
        }
    };

    struct MissLabelHash
    {
        std::size_t operator()(const MissLabel &label) const;
    };

    void closeRun();

    Cache l1d_;
    std::int64_t window_;

    // Current access context (step() fills, onEviction() consumes).
    Addr curPc_ = 0;
    Addr curBlock_ = 0;

    /** Per-resident-block last access index. */
    std::unordered_map<Addr, std::uint64_t> lastTouch_;
    /** (last-touch time, miss index) per eviction, for metric 3. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> evictions_;

    /** Previous-occurrence index per miss label. */
    std::unordered_map<MissLabel, std::uint64_t, MissLabelHash> prevPos_;

    std::uint64_t accessIndex_ = 0;
    std::uint64_t missIndex_ = 0;
    bool havePrevMiss_ = false;
    bool prevMissSeenBefore_ = false;
    std::uint64_t prevMissPrevPos_ = 0;
    std::uint64_t runLength_ = 0;

    CorrelationResult result_;
};

} // namespace ltc

#endif // LTC_ANALYSIS_CORRELATION_HH
