#include "analysis/deadtime.hh"

#include "util/logging.hh"

namespace ltc
{

DeadTimeAnalysis::DeadTimeAnalysis(const CacheConfig &l1d_config,
                                   double cycles_per_access)
    : l1d_(l1d_config), cyclesPerAccess_(cycles_per_access)
{
    ltc_assert(cycles_per_access > 0.0,
               "cycles per access must be positive");
    l1d_.setListener(this);
}

DeadTimeAnalysis::~DeadTimeAnalysis()
{
    l1d_.setListener(nullptr);
}

void
DeadTimeAnalysis::onEviction(Addr victim_addr, Addr incoming_addr,
                             std::uint32_t set, bool by_prefetch,
                             bool victim_was_untouched_prefetch,
                             bool victim_dirty,
                             std::uint8_t victim_meta)
{
    (void)incoming_addr;
    (void)set;
    (void)by_prefetch;
    (void)victim_was_untouched_prefetch;
    (void)victim_dirty;
    (void)victim_meta;
    auto it = lastTouch_.find(victim_addr);
    if (it == lastTouch_.end())
        return;
    const double dead = now_ - it->second;
    lastTouch_.erase(it);
    hist_.sample(static_cast<std::uint64_t>(dead));
}

void
DeadTimeAnalysis::step(const MemRef &ref)
{
    now_ += cyclesPerAccess_ * (1.0 + ref.nonMemGap);
    l1d_.access(ref.addr, ref.op);
    lastTouch_[l1d_.blockAlign(ref.addr)] = now_;
}

std::uint64_t
DeadTimeAnalysis::run(TraceSource &src, std::uint64_t refs)
{
    constexpr std::size_t batch_refs = 256;
    std::vector<MemRef> batch(batch_refs);
    std::uint64_t done = 0;
    while (done < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, batch_refs));
        const std::size_t got = src.fill({batch.data(), want});
        for (std::size_t i = 0; i < got; i++)
            step(batch[i]);
        done += got;
        if (got < want)
            break;
    }
    return done;
}

double
DeadTimeAnalysis::fractionLongerThan(Cycle cycles) const
{
    return 1.0 - hist_.cdfAt(cycles);
}

} // namespace ltc
