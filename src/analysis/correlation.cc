#include "analysis/correlation.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace ltc
{

std::size_t
CorrelationAnalysis::MissLabelHash::operator()(
    const MissLabel &label) const
{
    std::uint64_t h = mix64(label.pc);
    h = hashCombine(h, label.missBlock);
    h = hashCombine(h, label.evictedBlock);
    return static_cast<std::size_t>(h);
}

CorrelationAnalysis::CorrelationAnalysis(const CacheConfig &l1d_config,
                                         std::int64_t window)
    : l1d_(l1d_config), window_(window)
{
    ltc_assert(window_ > 0, "correlation window must be positive");
    l1d_.setListener(this);
}

CorrelationAnalysis::~CorrelationAnalysis()
{
    l1d_.setListener(nullptr);
}

void
CorrelationAnalysis::closeRun()
{
    if (runLength_ > 0) {
        // Weight by length: the CDF reads as "fraction of correlated
        // misses found in sequences of at least this length".
        result_.sequenceLength.sample(runLength_, runLength_);
        runLength_ = 0;
    }
}

void
CorrelationAnalysis::onEviction(Addr victim_addr, Addr incoming_addr,
                                std::uint32_t set, bool by_prefetch,
                                bool victim_was_untouched_prefetch,
                                bool victim_dirty,
                                std::uint8_t victim_meta)
{
    (void)incoming_addr;
    (void)set;
    (void)by_prefetch;
    (void)victim_was_untouched_prefetch;
    (void)victim_dirty;
    (void)victim_meta;

    // A cache replacement: this is a "cache miss" event in the
    // paper's Section 5.1 sense, labelled (miss PC, miss block,
    // evicted block).
    result_.misses++;
    const std::uint64_t this_index = missIndex_++;

    // Metric 3: victim's last-touch time vs this miss's position.
    auto lt = lastTouch_.find(victim_addr);
    if (lt != lastTouch_.end()) {
        evictions_.emplace_back(lt->second, this_index);
        lastTouch_.erase(lt);
    }

    // Metrics 1 and 2: temporal correlation distance.
    const MissLabel label{curPc_, curBlock_, victim_addr};
    auto it = prevPos_.find(label);
    const bool seen = it != prevPos_.end();
    const std::uint64_t prev = seen ? it->second : 0;

    if (havePrevMiss_ && seen && prevMissSeenBefore_) {
        const auto distance = static_cast<std::int64_t>(prev) -
            static_cast<std::int64_t>(prevMissPrevPos_);
        const std::uint64_t abs_distance = static_cast<std::uint64_t>(
            distance < 0 ? -distance : distance);
        result_.distance.sample(abs_distance);
        if (distance == 1)
            result_.perfect++;
        if (distance != 0 &&
            abs_distance <= static_cast<std::uint64_t>(window_)) {
            runLength_++;
        } else {
            closeRun();
        }
    } else {
        result_.uncorrelated++;
        closeRun();
    }

    prevPos_[label] = this_index;
    havePrevMiss_ = true;
    prevMissSeenBefore_ = seen;
    prevMissPrevPos_ = prev;
}

void
CorrelationAnalysis::step(const MemRef &ref)
{
    accessIndex_++;
    curPc_ = ref.pc;
    curBlock_ = l1d_.blockAlign(ref.addr);
    l1d_.access(ref.addr, ref.op);
    lastTouch_[curBlock_] = accessIndex_;
}

std::uint64_t
CorrelationAnalysis::run(TraceSource &src, std::uint64_t refs)
{
    constexpr std::size_t batch_refs = 256;
    std::vector<MemRef> batch(batch_refs);
    std::uint64_t done = 0;
    while (done < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(refs - done, batch_refs));
        const std::size_t got = src.fill({batch.data(), want});
        for (std::size_t i = 0; i < got; i++)
            step(batch[i]);
        done += got;
        if (got < want)
            break;
    }
    return done;
}

CorrelationResult
CorrelationAnalysis::finish()
{
    closeRun();

    // Metric 3: sort evictions into last-touch order and histogram
    // the distances between consecutive last touches' miss positions.
    std::sort(evictions_.begin(), evictions_.end());
    for (std::size_t i = 1; i < evictions_.size(); i++) {
        const auto d =
            static_cast<std::int64_t>(evictions_[i].second) -
            static_cast<std::int64_t>(evictions_[i - 1].second);
        result_.lastTouchDistance.sample(
            static_cast<std::uint64_t>(d < 0 ? -d : d));
    }
    evictions_.clear();
    return result_;
}

} // namespace ltc
