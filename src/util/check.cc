#include "util/check.hh"

#include <cstdlib>

namespace ltc
{

bool
ltcAuditEnabled()
{
    static const bool enabled = [] {
        if (LTC_DCHECKS_ENABLED)
            return true;
        const char *env = std::getenv("LTC_AUDIT");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }();
    return enabled;
}

} // namespace ltc
