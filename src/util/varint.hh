/**
 * @file
 * LEB128 varint and zigzag encoding for the compact trace container.
 *
 * The .ltct v2 trace format (trace/trace_io.hh) stores PC and address
 * deltas between consecutive records. Deltas are signed and usually
 * tiny (a loop re-executes the same PC; an array walk advances one
 * block), so zigzag-mapping them to unsigned values and emitting
 * LEB128 varints shrinks the common record to a few bytes. All
 * encodings are little-endian and platform-independent.
 */

#ifndef LTC_UTIL_VARINT_HH
#define LTC_UTIL_VARINT_HH

#include <cstdint>
#include <vector>

namespace ltc
{

/** Map a signed value to an unsigned one with small |v| staying small. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode(). */
constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (0 - (v & 1)));
}

/** Append @p v to @p out as a LEB128 varint (1-10 bytes). */
inline void
putVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

/**
 * Decode a LEB128 varint from [@p p, @p end).
 * @return Pointer past the varint, or nullptr if the buffer ends
 *         mid-varint or the encoding exceeds 10 bytes (malformed).
 */
inline const unsigned char *
getVarint(const unsigned char *p, const unsigned char *end,
          std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (p == end)
            return nullptr;
        const unsigned char byte = *p++;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return p;
    }
    return nullptr; // > 10 bytes: not produced by putVarint()
}

} // namespace ltc

#endif // LTC_UTIL_VARINT_HH
