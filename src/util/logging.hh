/**
 * @file
 * Error and status reporting in the gem5 style.
 *
 * panic()  - an internal invariant was violated; this is a simulator
 *            bug. Aborts (core dump friendly).
 * fatal()  - the user asked for something impossible (bad
 *            configuration, invalid arguments). Exits with status 1.
 * warn()   - something is approximated or suspicious but simulation
 *            can continue.
 * inform() - status messages.
 */

#ifndef LTC_UTIL_LOGGING_HH
#define LTC_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace ltc
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Number of warn() calls since process start (useful in tests). */
std::uint64_t warnCount();

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace ltc

#define ltc_panic(...) \
    ::ltc::panicImpl(__FILE__, __LINE__, ::ltc::detail::format(__VA_ARGS__))

#define ltc_fatal(...) \
    ::ltc::fatalImpl(__FILE__, __LINE__, ::ltc::detail::format(__VA_ARGS__))

#define ltc_warn(...) \
    ::ltc::warnImpl(__FILE__, __LINE__, ::ltc::detail::format(__VA_ARGS__))

#define ltc_inform(...) \
    ::ltc::informImpl(::ltc::detail::format(__VA_ARGS__))

/** gem5-style assert that survives NDEBUG and reports context. */
#define ltc_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::ltc::panicImpl(__FILE__, __LINE__,                          \
                ::ltc::detail::format("assertion '" #cond "' failed: ",   \
                                      ##__VA_ARGS__));                    \
        }                                                                 \
    } while (0)

#endif // LTC_UTIL_LOGGING_HH
