/**
 * @file
 * Plain-text table rendering for the benchmark harness.
 *
 * Every bench binary reproduces one of the paper's tables or figures
 * as an aligned text table (plus a machine-readable CSV block), so the
 * output can be compared side by side with the paper and post-
 * processed by scripts.
 */

#ifndef LTC_UTIL_TABLE_HH
#define LTC_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace ltc
{

/** Column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header width if one was set. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 1);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV (header + rows). */
    std::string csv() const;

    std::size_t numRows() const { return rows_.size(); }

    /** Table title ("" if none). */
    const std::string &title() const { return title_; }

    /** Column headers (empty if none set). */
    const std::vector<std::string> &header() const { return header_; }

    /** All rows, in insertion order. */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ltc

#endif // LTC_UTIL_TABLE_HH
