#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

Log2Histogram::Log2Histogram(unsigned num_buckets)
    : buckets_(std::max(1u, num_buckets), 0)
{
}

void
Log2Histogram::sample(std::uint64_t value, std::uint64_t count)
{
    unsigned idx = value == 0 ? 0 : floorLog2(value) + 1;
    idx = std::min<unsigned>(idx, numBuckets() - 1);
    buckets_[idx] += count;
    total_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
}

std::uint64_t
Log2Histogram::bucket(unsigned i) const
{
    return buckets_[std::min<unsigned>(i, numBuckets() - 1)];
}

double
Log2Histogram::cdfAt(std::uint64_t v) const
{
    if (total_ == 0)
        return 0.0;
    // Bucket i holds values in [2^(i-1), 2^i - 1] for i >= 1 and the
    // single value 0 for i == 0. Include every bucket whose upper
    // bound is <= v.
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < numBuckets(); i++) {
        std::uint64_t upper =
            i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
        if (i == numBuckets() - 1)
            upper = ~std::uint64_t{0};
        if (upper > v)
            break;
        acc += buckets_[i];
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::uint64_t
Log2Histogram::percentile(double p) const
{
    ltc_assert(p >= 0.0 && p <= 1.0, "percentile p out of range: ", p);
    if (total_ == 0)
        return 0;
    const auto needed = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total_)));
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < numBuckets(); i++) {
        acc += buckets_[i];
        if (acc >= needed)
            return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
    return ~std::uint64_t{0};
}

double
Log2Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (unsigned i = 0; i < other.numBuckets(); i++) {
        const unsigned idx = std::min<unsigned>(i, numBuckets() - 1);
        buckets_[idx] += other.buckets_[i];
    }
    total_ += other.total_;
    sum_ += other.sum_;
}

void
Log2Histogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

std::vector<std::pair<std::uint64_t, double>>
Log2Histogram::cdfSeries() const
{
    std::vector<std::pair<std::uint64_t, double>> series;
    if (total_ == 0)
        return series;
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < numBuckets(); i++) {
        acc += buckets_[i];
        std::uint64_t upper = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
        series.emplace_back(
            upper, static_cast<double>(acc) / static_cast<double>(total_));
        if (acc == total_)
            break;
    }
    return series;
}

void
RunningStats::sample(double v)
{
    if (n_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    n_++;
    sum_ += v;
    sumSq_ += v * v;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    const double m = mean();
    return std::max(0.0, sumSq_ / static_cast<double>(n_) - m * m);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    n_ += other.n_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
}

void
RunningStats::clear()
{
    *this = RunningStats{};
}

double
StatSet::get(const std::string &key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[key, value] : values_)
        os << name_ << '.' << key << ' ' << value << '\n';
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        ltc_assert(v > 0.0, "geomean of non-positive value ", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

} // namespace ltc
