/**
 * @file
 * Open-addressed hash map for address-keyed hot-path side tables.
 *
 * The engines keep small per-run side tables keyed by block address
 * (the timing engine's in-flight fills, LT-cords' outstanding
 * predictions). `std::unordered_map` puts every probe behind a
 * bucket-pointer chase and every insert behind a node allocation —
 * both on the per-reference hot path. This table is the open-addressed
 * replacement: one flat array of (key, value) slots, linear probing,
 * power-of-two capacity, backward-shift deletion (no tombstones), so
 * the common probe is one indexed load and the steady state allocates
 * nothing.
 *
 * Keys are `Addr` with `invalidAddr` reserved as the empty-slot
 * sentinel (block-aligned addresses can never equal it). A probe of an
 * empty table is a single masked load — cheap by construction, so
 * callers need no `empty()` fast-path guards.
 */

#ifndef LTC_UTIL_FLAT_MAP_HH
#define LTC_UTIL_FLAT_MAP_HH

#include <cstdint>
#include <vector>

#include "util/check.hh"
#include "util/hash.hh"
#include "util/types.hh"

namespace ltc
{

/**
 * Open-addressed Addr -> V map (see the file comment).
 *
 * @tparam V Mapped type; must be trivially copyable (slots move
 *         during backward-shift deletion and rehash).
 */
template <typename V>
class AddrMap
{
  public:
    AddrMap() { reset(kMinCapacity); }

    // LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
    // operator and virtual declarations between these markers.

    /** Value for @p key, or nullptr. One load when the key is absent
     *  and its home slot is empty (the common case on empty tables). */
    V *
    find(Addr key)
    {
        std::size_t i = slotOf(key);
        while (true) {
            Slot &s = slots_[i];
            if (s.key == key)
                return &s.value;
            if (s.key == invalidAddr)
                return nullptr;
            i = (i + 1) & mask_;
        }
    }

    const V *
    find(Addr key) const
    {
        return const_cast<AddrMap *>(this)->find(key);
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /** Insert @p key -> @p value, overwriting any existing mapping. */
    void
    insert(Addr key, const V &value)
    {
        std::size_t i = slotOf(key);
        while (true) {
            Slot &s = slots_[i];
            if (s.key == key) {
                s.value = value;
                return;
            }
            if (s.key == invalidAddr) {
                s.key = key;
                s.value = value;
                size_++;
                if (size_ + (size_ >> 1) > mask_)
                    grow();
                return;
            }
            i = (i + 1) & mask_;
        }
    }

    /** Remove @p key; returns whether it was present. */
    bool
    erase(Addr key)
    {
        std::size_t i = slotOf(key);
        while (true) {
            Slot &s = slots_[i];
            if (s.key == invalidAddr)
                return false;
            if (s.key == key)
                break;
            i = (i + 1) & mask_;
        }
        shiftOut(i);
        size_--;
        return true;
    }

    // LTC_HOT_END

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Drop every entry (capacity is kept). */
    void
    clear()
    {
        for (Slot &s : slots_)
            s.key = invalidAddr;
        size_ = 0;
    }

    /**
     * Remove every entry for which @p pred(key, value) holds. O(n)
     * walk; used for deterministic stale-entry purges at growth
     * thresholds, not on the per-reference path.
     */
    template <typename Pred>
    void
    eraseIf(Pred pred)
    {
        // Backward-shift deletion invalidates a forward walk, so
        // rebuild instead: same capacity, surviving entries rehash
        // into canonical probe order.
        std::vector<Slot> old = std::move(slots_);
        reset(old.size());
        for (const Slot &s : old) {
            if (s.key == invalidAddr || pred(s.key, s.value))
                continue;
            insert(s.key, s.value);
        }
    }

    /** Visit every (key, value) pair (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const Slot &s : slots_) {
            if (s.key != invalidAddr)
                fn(s.key, s.value);
        }
    }

    /**
     * LTC_CHECK the open-addressing representation: slot count is a
     * power of two, the live count matches the occupied slots, no key
     * is duplicated, and every entry is reachable from its home slot
     * without crossing an empty slot (the linear-probe invariant that
     * backward-shift deletion must preserve). Cold path.
     */
    void
    auditInvariants() const
    {
        LTC_CHECK((slots_.size() & (slots_.size() - 1)) == 0,
                  "slot count not a power of two: ", slots_.size());
        std::size_t live = 0;
        for (std::size_t i = 0; i < slots_.size(); i++) {
            const Slot &s = slots_[i];
            if (s.key == invalidAddr)
                continue;
            live++;
            // Reachability: walk from the home slot to i; every slot
            // on the way must be occupied.
            std::size_t j = slotOf(s.key);
            while (j != i) {
                LTC_CHECK(slots_[j].key != invalidAddr,
                          "entry for key ", s.key, " in slot ", i,
                          " unreachable: empty slot ", j,
                          " on its probe path");
                LTC_CHECK(slots_[j].key != s.key, "key ", s.key,
                          " present in slots ", j, " and ", i);
                j = (j + 1) & mask_;
            }
        }
        LTC_CHECK(live == size_, "size ", size_, " but ", live,
                  " occupied slots");
    }

  private:
    struct Slot
    {
        Addr key = invalidAddr;
        V value{};
    };

    static constexpr std::size_t kMinCapacity = 16;

    std::size_t slotOf(Addr key) const { return mix64(key) & mask_; }

    void
    reset(std::size_t capacity)
    {
        slots_.assign(capacity, Slot{});
        mask_ = capacity - 1;
        size_ = 0;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        reset(old.size() * 2);
        for (const Slot &s : old) {
            if (s.key != invalidAddr)
                insert(s.key, s.value);
        }
    }

    /** Backward-shift deletion starting at occupied slot @p i. */
    void
    shiftOut(std::size_t i)
    {
        std::size_t hole = i;
        std::size_t j = (i + 1) & mask_;
        while (slots_[j].key != invalidAddr) {
            // An entry may move back only if its home slot does not
            // lie strictly between the hole and its current slot
            // (cyclically) — otherwise the move would break its own
            // probe chain.
            const std::size_t home = slotOf(slots_[j].key);
            const bool movable = ((j - home) & mask_) >=
                ((j - hole) & mask_);
            if (movable) {
                slots_[hole] = slots_[j];
                hole = j;
            }
            j = (j + 1) & mask_;
        }
        slots_[hole].key = invalidAddr;
        slots_[hole].value = V{};
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace ltc

#endif // LTC_UTIL_FLAT_MAP_HH
