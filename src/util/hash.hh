/**
 * @file
 * Hash functions for last-touch history traces and signatures.
 *
 * DBCP and LT-cords both compress an unbounded PC trace into a
 * fixed-width "history trace hash" by folding each committed PC into a
 * running value (the "truncated addition followed by rotation" family
 * used by the DBCP paper). Signature construction then mixes the trace
 * hash with cache tags. All hashes here are deterministic and
 * platform-independent so traces and experiment results are
 * reproducible bit-for-bit.
 */

#ifndef LTC_UTIL_HASH_HH
#define LTC_UTIL_HASH_HH

#include <cstddef>
#include <cstdint>

namespace ltc
{

/**
 * FNV-1a 32-bit hash of a byte range; the per-chunk payload checksum
 * of the .ltct v2 trace container (trace/trace_io.hh). Chosen for
 * being trivially portable and dependency-free rather than for error
 * models: it reliably flags the truncation/bit-rot cases the trace
 * reader defends against.
 */
inline std::uint32_t
fnv1a32(const unsigned char *data, std::size_t len)
{
    std::uint32_t h = 2166136261u;
    for (std::size_t i = 0; i < len; i++) {
        h ^= data[i];
        h *= 16777619u;
    }
    return h;
}

/**
 * FNV-1a 64-bit hash of a byte range, resumable: pass the previous
 * return value as @p h to fold further blocks into a running digest
 * (the experiment fabric hashes canonicalized cell keys and whole
 * .ltct containers this way, sim/cell_store.hh). Like fnv1a32 it is
 * chosen for portability and determinism, not cryptography: cache
 * records it guards are integrity-checked, not authenticated.
 */
inline std::uint64_t
fnv1a64(const unsigned char *data, std::size_t len,
        std::uint64_t h = 14695981039346656037ULL)
{
    for (std::size_t i = 0; i < len; i++) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/** Finalizer from MurmurHash3; a cheap full-avalanche 64-bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return k;
}

/** Combine two 64-bit values (boost::hash_combine style, 64-bit). */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t v)
{
    return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                   (seed >> 2));
}

/**
 * Incremental last-touch history trace hash.
 *
 * Each committed memory instruction's PC is folded into the running
 * trace encoding; the encoding is reset on every eviction from the
 * history table entry's set (Section 4.1). Rotate-then-xor keeps the
 * hash order-sensitive, which DBCP requires: {PCi, PCj} and
 * {PCj, PCi} are distinct traces.
 */
class TraceHash
{
  public:
    /** Fold one PC into the running trace encoding. */
    void
    update(std::uint64_t pc)
    {
        std::uint64_t v = value_;
        v = (v << 7) | (v >> 57); // rotl 7
        v ^= mix64(pc);
        value_ = v;
        length_++;
    }

    /** Reset on set eviction. */
    void
    clear()
    {
        value_ = 0;
        length_ = 0;
    }

    std::uint64_t value() const { return value_; }

    /** Number of PCs folded in since the last clear. */
    std::uint32_t length() const { return length_; }

  private:
    std::uint64_t value_ = 0;
    std::uint32_t length_ = 0;
};

} // namespace ltc

#endif // LTC_UTIL_HASH_HH
