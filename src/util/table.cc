#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace ltc
{

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty()) {
        ltc_assert(row.size() == header_.size(),
                   "row width ", row.size(), " != header width ",
                   header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); i++)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); i++) {
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << row[i];
            if (i + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };
    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); i++) {
            os << row[i];
            if (i + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace ltc
