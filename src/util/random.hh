/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload generators.
 *
 * We use our own xoshiro256** implementation rather than <random>
 * engines so that every workload trace is reproducible bit-for-bit
 * across standard libraries and platforms: experiment results in
 * EXPERIMENTS.md depend on it.
 */

#ifndef LTC_UTIL_RANDOM_HH
#define LTC_UTIL_RANDOM_HH

#include <cstdint>

#include "util/hash.hh"
#include "util/logging.hh"

namespace ltc
{

/** xoshiro256** by Blackman & Vigna; seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread a small seed over the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            word = mix64(x);
        }
        if (!(state_[0] | state_[1] | state_[2] | state_[3]))
            state_[0] = 1; // all-zero state is a fixed point
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ltc_assert(bound != 0, "Rng::below(0)");
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (~bound + 1) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        ltc_assert(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace ltc

#endif // LTC_UTIL_RANDOM_HH
