#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ltc
{

namespace
{
std::atomic<std::uint64_t> warnCounter{0};
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

} // namespace ltc
