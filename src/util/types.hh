/**
 * @file
 * Fundamental types shared by every LT-cords module.
 *
 * The simulator follows the paper's conventions: byte addresses are
 * 64-bit (the simulated machine uses a 30-bit physical space, Table 1),
 * time is measured in processor cycles at 4 GHz, and a memory reference
 * is the (PC, address, op) tuple that the trace infrastructure produces
 * and the cache hierarchy consumes.
 */

#ifndef LTC_UTIL_TYPES_HH
#define LTC_UTIL_TYPES_HH

#include <cstdint>
#include <string>

namespace ltc
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Processor cycle count (4 GHz clock in the reference configuration). */
using Cycle = std::uint64_t;

/** Dynamic instruction count. */
using InstCount = std::uint64_t;

/** An address that is never produced by any workload generator. */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

/** Kind of memory operation carried by a trace record. */
enum class MemOp : std::uint8_t
{
    Load,
    Store,
};

/** Printable name of a MemOp ("load" / "store"). */
const char *memOpName(MemOp op);

/**
 * One record of a memory-reference trace.
 *
 * Besides the architectural (pc, addr, op) triple, a record carries two
 * pieces of micro-architectural context used by the timing model:
 *
 *  - @c nonMemGap: the number of non-memory instructions that the
 *    workload executes between the previous memory reference and this
 *    one. SimpleScalar traces carry full instruction streams; our
 *    synthetic generators summarise the non-memory work this way.
 *
 *  - @c dependsOnPrev: true when the effective address of this
 *    reference is data-dependent on the value loaded by the previous
 *    memory reference (pointer chasing). Dependent misses cannot
 *    overlap in the baseline machine, which is precisely the
 *    memory-level-parallelism limitation LT-cords attacks (Section 2).
 */
struct MemRef
{
    Addr pc = 0;
    Addr addr = 0;
    MemOp op = MemOp::Load;
    std::uint32_t nonMemGap = 0;
    bool dependsOnPrev = false;

    bool isLoad() const { return op == MemOp::Load; }
    bool isStore() const { return op == MemOp::Store; }

    bool
    operator==(const MemRef &o) const
    {
        return pc == o.pc && addr == o.addr && op == o.op &&
            nonMemGap == o.nonMemGap && dependsOnPrev == o.dependsOnPrev;
    }
};

/** Human-readable "pc=0x.. addr=0x.. load" rendering for diagnostics. */
std::string to_string(const MemRef &ref);

} // namespace ltc

#endif // LTC_UTIL_TYPES_HH
