/**
 * @file
 * Statistics primitives for the simulators and analyses.
 *
 * The paper's figures are cumulative distributions over log2-spaced
 * buckets (dead times, correlation distances, sequence lengths), and
 * its tables are scalar percentages. Log2Histogram and Distribution
 * cover the former; plain counters the latter. A StatSet gives each
 * model a named, dumpable group of values in the spirit of gem5's
 * stats package.
 */

#ifndef LTC_UTIL_STATS_HH
#define LTC_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ltc
{

/**
 * Histogram over log2-spaced buckets: bucket i counts samples v with
 * floor(log2(v)) == i; bucket 0 additionally holds v == 0 samples when
 * @c countZero is set. Used for the CDF figures (Figs. 2, 6, 7).
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(unsigned num_buckets = 40);

    /** Record one sample. */
    void sample(std::uint64_t value, std::uint64_t count = 1);

    /** Total number of samples recorded. */
    std::uint64_t samples() const { return total_; }

    /** Count in bucket @p i (clamped to the last bucket). */
    std::uint64_t bucket(unsigned i) const;

    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }

    /** Fraction of samples with value <= @p v (empirical CDF). */
    double cdfAt(std::uint64_t v) const;

    /** Smallest value v such that cdfAt(v) >= p (p in [0,1]). */
    std::uint64_t percentile(double p) const;

    /** Mean of the recorded samples (exact, not bucketed). */
    double mean() const;

    /**
     * Fold @p other into this histogram bucket-by-bucket. Unlike
     * re-sampling bucket lower bounds, merging preserves the exact
     * sample total and mean. Bucket counts beyond this histogram's
     * range clamp into the last bucket (same as sample()).
     */
    void merge(const Log2Histogram &other);

    void clear();

    /**
     * CDF series for plotting: (upper bound of bucket, cumulative
     * fraction) pairs for non-empty prefixes.
     */
    std::vector<std::pair<std::uint64_t, double>> cdfSeries() const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/** Arithmetic running statistics: mean, min, max, variance. */
class RunningStats
{
  public:
    void sample(double v);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;

    /** Fold @p other's samples into this accumulator. */
    void merge(const RunningStats &other);

    void clear();

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named set of scalar statistics that a model exposes for dumping.
 * Values are stored as doubles; counters cast losslessly for the
 * magnitudes this simulator reaches.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name) : name_(std::move(name)) {}

    void set(const std::string &key, double value) { values_[key] = value; }
    void add(const std::string &key, double delta) { values_[key] += delta; }

    /** Value of @p key; 0 if never set. */
    double get(const std::string &key) const;
    bool has(const std::string &key) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, double> &values() const { return values_; }

    /** Render "name.key value" lines, gem5 stats.txt style. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, double> values_;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0 if empty). */
double amean(const std::vector<double> &values);

} // namespace ltc

#endif // LTC_UTIL_STATS_HH
