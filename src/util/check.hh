/**
 * @file
 * Invariant-check macros for the hand-rolled hot-path structures.
 *
 * The batched kernels (PRs 4-5) trade hash maps and virtual dispatch
 * for packed tag words, raw SoA arrays, presence-filter bitmaps and
 * modulo-free rings — representations where a single off-by-one
 * corrupts results silently instead of crashing. Two tiers of checks
 * guard them:
 *
 * LTC_CHECK(cond, ...)  - always compiled in, every build type. For
 *                         structural invariants whose cost is outside
 *                         the per-reference hot path (auditInvariants
 *                         walks, batch-boundary reconciliation).
 *                         Panics (aborts) on failure, like ltc_assert,
 *                         but reports the violated condition as an
 *                         invariant so audit failures read distinctly
 *                         from precondition failures.
 *
 * LTC_DCHECK(cond, ...) - compiled out in Release (NDEBUG) builds; the
 *                         condition is NOT evaluated there. For checks
 *                         that would sit on the per-reference path.
 *                         Define LTC_FORCE_DCHECKS to keep them in a
 *                         Release build (the sanitizer presets do).
 *
 * The structures expose `auditInvariants()` methods built from
 * LTC_CHECK; the engines call them at batch boundaries under
 * LTC_AUDIT_INVARIANTS (see ltcAuditEnabled below), and the
 * property/fuzz and death-test suites call them directly.
 */

#ifndef LTC_UTIL_CHECK_HH
#define LTC_UTIL_CHECK_HH

#include "util/logging.hh"

/** Always-on structural invariant check; panics with context. */
#define LTC_CHECK(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::ltc::panicImpl(__FILE__, __LINE__,                          \
                ::ltc::detail::format("invariant '" #cond "' violated: ", \
                                      ##__VA_ARGS__));                    \
        }                                                                 \
    } while (0)

#if !defined(NDEBUG) || defined(LTC_FORCE_DCHECKS)
#define LTC_DCHECKS_ENABLED 1
/** Debug-only invariant check; vanishes (unevaluated) under NDEBUG. */
#define LTC_DCHECK(cond, ...) LTC_CHECK(cond, ##__VA_ARGS__)
#else
#define LTC_DCHECKS_ENABLED 0
#define LTC_DCHECK(cond, ...) \
    do {                      \
    } while (0)
#endif

namespace ltc
{

/**
 * True when the engines should run full auditInvariants() sweeps at
 * batch boundaries: any build with dchecks enabled, or any build run
 * with LTC_AUDIT=1 in the environment (the latter lets a Release
 * binary be audited without recompiling). The result is computed once.
 */
bool ltcAuditEnabled();

} // namespace ltc

#endif // LTC_UTIL_CHECK_HH
