#include "util/types.hh"

#include <sstream>

namespace ltc
{

const char *
memOpName(MemOp op)
{
    return op == MemOp::Load ? "load" : "store";
}

std::string
to_string(const MemRef &ref)
{
    std::ostringstream os;
    os << "pc=0x" << std::hex << ref.pc << " addr=0x" << ref.addr
       << std::dec << " " << memOpName(ref.op)
       << " gap=" << ref.nonMemGap
       << (ref.dependsOnPrev ? " dep" : "");
    return os.str();
}

} // namespace ltc
