/**
 * @file
 * Bit manipulation helpers used by cache indexing, signature packing
 * and the off-chip frame mapping.
 */

#ifndef LTC_UTIL_BITOPS_HH
#define LTC_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

#include "util/logging.hh"

namespace ltc
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

/** log2 of a power of two (panics otherwise). */
inline unsigned
exactLog2(std::uint64_t v)
{
    ltc_assert(isPowerOf2(v), "exactLog2 of non-power-of-two ", v);
    return floorLog2(v);
}

/** Smallest power of two >= v (v=0 yields 1). */
constexpr std::uint64_t
ceilPowerOf2(std::uint64_t v)
{
    if (v <= 1)
        return 1;
    return std::uint64_t{1} << (64u - std::countl_zero(v - 1));
}

/** Mask selecting the low @p bits bits. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
}

/** Extract bits [first, first+count) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned count)
{
    return (v >> first) & mask(count);
}

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace ltc

#endif // LTC_UTIL_BITOPS_HH
