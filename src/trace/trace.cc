#include "trace/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ltc
{

namespace
{

/** Clamp for up-front reservations from caller-supplied bounds. */
constexpr std::uint64_t maxReserveRecords = std::uint64_t{1} << 20;

std::size_t
clampReserve(std::uint64_t records)
{
    return static_cast<std::size_t>(
        std::min(records, maxReserveRecords));
}

} // namespace

VectorTrace::VectorTrace(std::vector<MemRef> refs, std::string name)
    : refs_(std::move(refs)), name_(std::move(name))
{
}

bool
VectorTrace::next(MemRef &out)
{
    if (pos_ >= refs_.size())
        return false;
    out = refs_[pos_++];
    return true;
}

std::size_t
VectorTrace::fill(std::span<MemRef> out)
{
    const std::size_t take = std::min(out.size(), refs_.size() - pos_);
    std::copy_n(refs_.data() + pos_, take, out.data());
    pos_ += take;
    return take;
}

LimitSource::LimitSource(std::unique_ptr<TraceSource> inner,
                         std::uint64_t limit)
    : inner_(std::move(inner)), limit_(limit)
{
    ltc_assert(inner_ != nullptr, "LimitSource with null inner source");
}

bool
LimitSource::next(MemRef &out)
{
    if (produced_ >= limit_)
        return false;
    if (!inner_->next(out))
        return false;
    produced_++;
    return true;
}

std::size_t
LimitSource::fill(std::span<MemRef> out)
{
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(out.size(), limit_ - produced_));
    const std::size_t got = inner_->fill(out.first(want));
    produced_ += got;
    return got;
}

void
LimitSource::reset()
{
    inner_->reset();
    produced_ = 0;
}

ShiftSource::ShiftSource(std::unique_ptr<TraceSource> inner, Addr offset)
    : inner_(std::move(inner)), offset_(offset)
{
    ltc_assert(inner_ != nullptr, "ShiftSource with null inner source");
}

bool
ShiftSource::next(MemRef &out)
{
    if (!inner_->next(out))
        return false;
    out.addr += offset_;
    return true;
}

std::size_t
ShiftSource::fill(std::span<MemRef> out)
{
    const std::size_t got = inner_->fill(out);
    for (std::size_t i = 0; i < got; i++)
        out[i].addr += offset_;
    return got;
}

CaptureSource::CaptureSource(std::unique_ptr<TraceSource> inner,
                             std::uint64_t expected_refs)
    : inner_(std::move(inner))
{
    ltc_assert(inner_ != nullptr, "CaptureSource with null inner source");
    reserve(expected_refs);
}

void
CaptureSource::reserve(std::uint64_t expected_refs)
{
    captured_.reserve(clampReserve(expected_refs));
}

bool
CaptureSource::next(MemRef &out)
{
    if (!inner_->next(out))
        return false;
    captured_.push_back(out);
    return true;
}

std::size_t
CaptureSource::fill(std::span<MemRef> out)
{
    const std::size_t got = inner_->fill(out);
    captured_.insert(captured_.end(), out.data(), out.data() + got);
    return got;
}

void
CaptureSource::reset()
{
    inner_->reset();
    captured_.clear();
}

std::vector<MemRef>
collect(TraceSource &source, std::uint64_t limit)
{
    std::vector<MemRef> refs;
    refs.reserve(clampReserve(limit));
    while (refs.size() < limit) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(limit - refs.size(), 4096));
        const std::size_t base = refs.size();
        refs.resize(base + want);
        const std::size_t got =
            source.fill({refs.data() + base, want});
        refs.resize(base + got);
        if (got < want)
            break;
    }
    return refs;
}

} // namespace ltc
