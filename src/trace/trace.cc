#include "trace/trace.hh"

#include "util/logging.hh"

namespace ltc
{

VectorTrace::VectorTrace(std::vector<MemRef> refs, std::string name)
    : refs_(std::move(refs)), name_(std::move(name))
{
}

bool
VectorTrace::next(MemRef &out)
{
    if (pos_ >= refs_.size())
        return false;
    out = refs_[pos_++];
    return true;
}

LimitSource::LimitSource(std::unique_ptr<TraceSource> inner,
                         std::uint64_t limit)
    : inner_(std::move(inner)), limit_(limit)
{
    ltc_assert(inner_ != nullptr, "LimitSource with null inner source");
}

bool
LimitSource::next(MemRef &out)
{
    if (produced_ >= limit_)
        return false;
    if (!inner_->next(out))
        return false;
    produced_++;
    return true;
}

void
LimitSource::reset()
{
    inner_->reset();
    produced_ = 0;
}

ShiftSource::ShiftSource(std::unique_ptr<TraceSource> inner, Addr offset)
    : inner_(std::move(inner)), offset_(offset)
{
    ltc_assert(inner_ != nullptr, "ShiftSource with null inner source");
}

bool
ShiftSource::next(MemRef &out)
{
    if (!inner_->next(out))
        return false;
    out.addr += offset_;
    return true;
}

CaptureSource::CaptureSource(std::unique_ptr<TraceSource> inner)
    : inner_(std::move(inner))
{
    ltc_assert(inner_ != nullptr, "CaptureSource with null inner source");
}

bool
CaptureSource::next(MemRef &out)
{
    if (!inner_->next(out))
        return false;
    captured_.push_back(out);
    return true;
}

void
CaptureSource::reset()
{
    inner_->reset();
    captured_.clear();
}

std::vector<MemRef>
collect(TraceSource &source, std::uint64_t limit)
{
    std::vector<MemRef> refs;
    refs.reserve(limit);
    MemRef ref;
    while (refs.size() < limit && source.next(ref))
        refs.push_back(ref);
    return refs;
}

} // namespace ltc
