/**
 * @file
 * Memory-reference trace abstraction.
 *
 * Every simulator engine in this repository consumes a TraceSource: a
 * pull-based stream of MemRef records. Synthetic workload generators
 * (trace/workloads.hh), file readers (trace/file_trace.hh) and
 * in-memory replay buffers all implement this interface, so the same
 * engine runs the paper's trace-driven studies and the cycle-accurate
 * timing experiments.
 */

#ifndef LTC_TRACE_TRACE_HH
#define LTC_TRACE_TRACE_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/types.hh"

namespace ltc
{

/**
 * A stream of memory references.
 *
 * Sources may be finite (next() eventually returns false) or infinite
 * (workload generators loop forever; engines bound them by reference
 * count). reset() restarts the stream from its beginning with identical
 * content — determinism is a hard requirement for reproducible
 * experiments.
 *
 * Engines pull references in batches through fill(); next() remains
 * the convenient scalar form. The two must produce the identical
 * stream for any interleaving of calls (the batch-equivalence
 * property test drives every adapter through both paths).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @param out Filled in on success.
     * @retval true a record was produced.
     * @retval false end of trace.
     */
    virtual bool next(MemRef &out) = 0;

    /**
     * Produce up to out.size() references into @p out.
     *
     * Returns the number of records written; a short return means end
     * of trace (exactly like next() returning false). The default
     * implementation loops over next(); concrete sources override it
     * with batch loops that skip the per-record virtual dispatch —
     * the simulation engines' hot path.
     */
    virtual std::size_t
    fill(std::span<MemRef> out)
    {
        std::size_t n = 0;
        while (n < out.size() && next(out[n]))
            n++;
        return n;
    }

    /** Restart the stream; the replayed content must be identical. */
    virtual void reset() = 0;

    /** Short identifier used in stats and tables. */
    virtual std::string name() const = 0;
};

/** Replay of an in-memory vector of references. */
class VectorTrace final : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<MemRef> refs,
                         std::string name = "vector");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override { pos_ = 0; }
    std::string name() const override { return name_; }

    std::size_t size() const { return refs_.size(); }

  private:
    std::vector<MemRef> refs_;
    std::size_t pos_ = 0;
    std::string name_;
};

/** Bounds a (possibly infinite) source to at most @c limit records. */
class LimitSource final : public TraceSource
{
  public:
    LimitSource(std::unique_ptr<TraceSource> inner, std::uint64_t limit);

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return inner_->name(); }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t limit_;
    std::uint64_t produced_ = 0;
};

/** Adds a constant byte offset to every address (multi-programming). */
class ShiftSource final : public TraceSource
{
  public:
    ShiftSource(std::unique_ptr<TraceSource> inner, Addr offset);

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override { inner_->reset(); }
    std::string name() const override { return inner_->name(); }

  private:
    std::unique_ptr<TraceSource> inner_;
    Addr offset_;
};

/**
 * Tees every record produced by @c inner into a capture buffer; used
 * by analyses that need to replay the identical stream several times.
 */
class CaptureSource final : public TraceSource
{
  public:
    /**
     * @param expected_refs Capacity hint: reserve the capture buffer
     *        up front so capture-heavy analyses (Figs. 6/7) do not
     *        pay reallocation churn while recording. 0 = grow on
     *        demand (huge hints are clamped; see reserve()).
     */
    explicit CaptureSource(std::unique_ptr<TraceSource> inner,
                           std::uint64_t expected_refs = 0);

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return inner_->name(); }

    /**
     * Reserve buffer capacity for @p expected_refs records, clamped
     * to 1M records (a lying bound must not drive a giant up-front
     * allocation; past the clamp geometric growth takes over).
     */
    void reserve(std::uint64_t expected_refs);

    const std::vector<MemRef> &captured() const { return captured_; }
    std::vector<MemRef> takeCaptured() { return std::move(captured_); }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::vector<MemRef> captured_;
};

/**
 * Materialise the first @p limit records of @p source into a vector,
 * pulling in batches through fill(). The result is reserved up front
 * (clamped like CaptureSource::reserve()), so replay buffers handed
 * to VectorTrace are right-sized from the start.
 */
std::vector<MemRef> collect(TraceSource &source, std::uint64_t limit);

} // namespace ltc

#endif // LTC_TRACE_TRACE_HH
