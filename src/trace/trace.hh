/**
 * @file
 * Memory-reference trace abstraction.
 *
 * Every simulator engine in this repository consumes a TraceSource: a
 * pull-based stream of MemRef records. Synthetic workload generators
 * (trace/workloads.hh), file readers (trace/file_trace.hh) and
 * in-memory replay buffers all implement this interface, so the same
 * engine runs the paper's trace-driven studies and the cycle-accurate
 * timing experiments.
 */

#ifndef LTC_TRACE_TRACE_HH
#define LTC_TRACE_TRACE_HH

#include <memory>
#include <string>
#include <vector>

#include "util/types.hh"

namespace ltc
{

/**
 * A stream of memory references.
 *
 * Sources may be finite (next() eventually returns false) or infinite
 * (workload generators loop forever; engines bound them by reference
 * count). reset() restarts the stream from its beginning with identical
 * content — determinism is a hard requirement for reproducible
 * experiments.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @param out Filled in on success.
     * @retval true a record was produced.
     * @retval false end of trace.
     */
    virtual bool next(MemRef &out) = 0;

    /** Restart the stream; the replayed content must be identical. */
    virtual void reset() = 0;

    /** Short identifier used in stats and tables. */
    virtual std::string name() const = 0;
};

/** Replay of an in-memory vector of references. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<MemRef> refs,
                         std::string name = "vector");

    bool next(MemRef &out) override;
    void reset() override { pos_ = 0; }
    std::string name() const override { return name_; }

    std::size_t size() const { return refs_.size(); }

  private:
    std::vector<MemRef> refs_;
    std::size_t pos_ = 0;
    std::string name_;
};

/** Bounds a (possibly infinite) source to at most @c limit records. */
class LimitSource : public TraceSource
{
  public:
    LimitSource(std::unique_ptr<TraceSource> inner, std::uint64_t limit);

    bool next(MemRef &out) override;
    void reset() override;
    std::string name() const override { return inner_->name(); }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t limit_;
    std::uint64_t produced_ = 0;
};

/** Adds a constant byte offset to every address (multi-programming). */
class ShiftSource : public TraceSource
{
  public:
    ShiftSource(std::unique_ptr<TraceSource> inner, Addr offset);

    bool next(MemRef &out) override;
    void reset() override { inner_->reset(); }
    std::string name() const override { return inner_->name(); }

  private:
    std::unique_ptr<TraceSource> inner_;
    Addr offset_;
};

/**
 * Tees every record produced by @c inner into a capture buffer; used
 * by analyses that need to replay the identical stream several times.
 */
class CaptureSource : public TraceSource
{
  public:
    explicit CaptureSource(std::unique_ptr<TraceSource> inner);

    bool next(MemRef &out) override;
    void reset() override;
    std::string name() const override { return inner_->name(); }

    const std::vector<MemRef> &captured() const { return captured_; }
    std::vector<MemRef> takeCaptured() { return std::move(captured_); }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::vector<MemRef> captured_;
};

/** Materialise the first @p limit records of @p source into a vector. */
std::vector<MemRef> collect(TraceSource &source, std::uint64_t limit);

} // namespace ltc

#endif // LTC_TRACE_TRACE_HH
