#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>

#include "trace/trace.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/varint.hh"

namespace ltc
{

namespace
{

constexpr char magic[8] = {'L', 'T', 'C', 'T', 'R', 'A', 'C', 'E'};

// v1: 16-byte header (magic, u32 version, u32 count) then packed
// 22-byte records. v2: 32-byte header (magic, u32 version, u32 chunk
// capacity, u64 count, u64 reserved) then chunks, each a 16-byte
// header (u32 records, u32 payload bytes, u32 fnv1a checksum, u32
// reserved) followed by the delta/varint payload.
constexpr std::size_t v1HeaderBytes = 16;
constexpr std::size_t v1RecordBytes = 8 + 8 + 1 + 1 + 4;
constexpr std::size_t v2HeaderBytes = 32;
constexpr std::size_t chunkHeaderBytes = 16;
constexpr std::uint64_t v2CountOffset = 16;

/** v1 replay buffers this many records at a time. */
constexpr std::uint32_t v1BufferRecords = 4096;

/** Sanity ceiling on a v2 chunk capacity (16M records). */
constexpr std::uint32_t maxChunkRecords = 1u << 24;

/**
 * Worst-case encoded record: control byte + two 10-byte varint
 * deltas + a 10-byte varint gap. Bounds payload allocations when a
 * chunk header is corrupt.
 */
constexpr std::uint64_t maxRecordBytes = 1 + 10 + 10 + 10;

/** Control byte: bit0 store, bit1 dependsOnPrev, bits 2-7 gap. */
constexpr unsigned char ctrlStore = 0x01;
constexpr unsigned char ctrlDepends = 0x02;
constexpr unsigned ctrlGapShift = 2;
/** Gap field value meaning "varint gap follows". */
constexpr std::uint32_t ctrlGapEscape = 63;

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

int
closeFile(std::FILE *f)
{
    return f ? std::fclose(f) : 0;
}

/** Encode @p ref against (@p prev_pc, @p prev_addr) onto @p out. */
void
encodeRecord(std::vector<unsigned char> &out, const MemRef &ref,
             Addr &prev_pc, Addr &prev_addr)
{
    unsigned char ctrl = 0;
    if (ref.op == MemOp::Store)
        ctrl |= ctrlStore;
    if (ref.dependsOnPrev)
        ctrl |= ctrlDepends;
    const bool gap_inline = ref.nonMemGap < ctrlGapEscape;
    const std::uint32_t gap_field =
        gap_inline ? ref.nonMemGap : ctrlGapEscape;
    ctrl |= static_cast<unsigned char>(gap_field << ctrlGapShift);
    out.push_back(ctrl);
    putVarint(out, zigzagEncode(
        static_cast<std::int64_t>(ref.pc - prev_pc)));
    putVarint(out, zigzagEncode(
        static_cast<std::int64_t>(ref.addr - prev_addr)));
    if (!gap_inline)
        putVarint(out, ref.nonMemGap);
    prev_pc = ref.pc;
    prev_addr = ref.addr;
}

/**
 * Decode one record from [@p p, @p end).
 * @return Pointer past the record, or nullptr on malformed input.
 */
const unsigned char *
decodeRecord(const unsigned char *p, const unsigned char *end,
             MemRef &out, Addr &prev_pc, Addr &prev_addr)
{
    if (p == end)
        return nullptr;
    const unsigned char ctrl = *p++;
    std::uint64_t v = 0;
    if (!(p = getVarint(p, end, v)))
        return nullptr;
    prev_pc += static_cast<Addr>(zigzagDecode(v));
    if (!(p = getVarint(p, end, v)))
        return nullptr;
    prev_addr += static_cast<Addr>(zigzagDecode(v));
    std::uint32_t gap = ctrl >> ctrlGapShift;
    if (gap == ctrlGapEscape) {
        if (!(p = getVarint(p, end, v)))
            return nullptr;
        if (v > 0xffffffffULL)
            return nullptr; // nonMemGap is 32-bit
        gap = static_cast<std::uint32_t>(v);
    }
    out.pc = prev_pc;
    out.addr = prev_addr;
    out.op = (ctrl & ctrlStore) ? MemOp::Store : MemOp::Load;
    out.dependsOnPrev = (ctrl & ctrlDepends) != 0;
    out.nonMemGap = gap;
    return p;
}

/** Decode a v1 fixed-width record. */
MemRef
decodeV1Record(const unsigned char *p)
{
    MemRef ref;
    ref.pc = getU64(p);
    ref.addr = getU64(p + 8);
    ref.op = p[16] ? MemOp::Store : MemOp::Load;
    ref.dependsOnPrev = p[17] != 0;
    ref.nonMemGap = getU32(p + 18);
    return ref;
}

/**
 * Parse a container header from @p f (positioned at the start).
 * On success fills version/records/chunk capacity and leaves the
 * stream at the first record/chunk.
 */
TraceErrc
readHeader(std::FILE *f, std::uint32_t &version, std::uint64_t &records,
           std::uint32_t &chunk_records)
{
    unsigned char header[v2HeaderBytes];
    if (std::fread(header, 1, v1HeaderBytes, f) != v1HeaderBytes)
        return TraceErrc::TruncatedHeader;
    if (std::memcmp(header, magic, 8) != 0)
        return TraceErrc::BadMagic;
    version = getU32(header + 8);
    if (version == 1) {
        records = getU32(header + 12);
        chunk_records = v1BufferRecords;
        return TraceErrc::Ok;
    }
    if (version != 2)
        return TraceErrc::UnsupportedVersion;
    if (std::fread(header + v1HeaderBytes, 1,
                   v2HeaderBytes - v1HeaderBytes,
                   f) != v2HeaderBytes - v1HeaderBytes) {
        return TraceErrc::TruncatedHeader;
    }
    chunk_records = getU32(header + 12);
    records = getU64(header + 16);
    if (chunk_records == 0 || chunk_records > maxChunkRecords)
        return TraceErrc::BadHeader;
    return TraceErrc::Ok;
}

/** Parse a chunk header; validates counts against the file header. */
TraceErrc
readChunkHeader(std::FILE *f, std::uint32_t chunk_capacity,
                std::uint64_t remaining_records,
                std::uint32_t &chunk_count,
                std::uint32_t &payload_bytes, std::uint32_t &checksum)
{
    unsigned char header[chunkHeaderBytes];
    const std::size_t got =
        std::fread(header, 1, chunkHeaderBytes, f);
    if (got != chunkHeaderBytes)
        return TraceErrc::TruncatedChunk;
    chunk_count = getU32(header);
    payload_bytes = getU32(header + 4);
    checksum = getU32(header + 8);
    if (chunk_count == 0 || chunk_count > chunk_capacity)
        return TraceErrc::BadHeader;
    if (chunk_count > remaining_records)
        return TraceErrc::CountMismatch;
    if (payload_bytes > chunk_count * maxRecordBytes)
        return TraceErrc::BadHeader;
    return TraceErrc::Ok;
}

} // namespace

const char *
traceErrcName(TraceErrc errc)
{
    switch (errc) {
      case TraceErrc::Ok:
        return "ok";
      case TraceErrc::OpenFailed:
        return "open-failed";
      case TraceErrc::TruncatedHeader:
        return "truncated-header";
      case TraceErrc::BadMagic:
        return "bad-magic";
      case TraceErrc::UnsupportedVersion:
        return "unsupported-version";
      case TraceErrc::BadHeader:
        return "bad-header";
      case TraceErrc::TruncatedChunk:
        return "truncated-chunk";
      case TraceErrc::ChecksumMismatch:
        return "checksum-mismatch";
      case TraceErrc::MalformedRecord:
        return "malformed-record";
      case TraceErrc::CountMismatch:
        return "count-mismatch";
      case TraceErrc::WriteFailed:
        return "write-failed";
    }
    return "?";
}

const char *
traceErrcMessage(TraceErrc errc)
{
    switch (errc) {
      case TraceErrc::Ok:
        return "success";
      case TraceErrc::OpenFailed:
        return "cannot open trace file";
      case TraceErrc::TruncatedHeader:
        return "truncated trace header";
      case TraceErrc::BadMagic:
        return "bad trace magic";
      case TraceErrc::UnsupportedVersion:
        return "unsupported trace version";
      case TraceErrc::BadHeader:
        return "trace header fields out of range";
      case TraceErrc::TruncatedChunk:
        return "truncated trace chunk";
      case TraceErrc::ChecksumMismatch:
        return "trace chunk checksum mismatch";
      case TraceErrc::MalformedRecord:
        return "malformed trace record encoding";
      case TraceErrc::CountMismatch:
        return "trace record count mismatch";
      case TraceErrc::WriteFailed:
        return "trace write failure";
    }
    return "?";
}

std::uint64_t
TraceFileInfo::v1EquivalentBytes() const
{
    return v1HeaderBytes + records * v1RecordBytes;
}

double
TraceFileInfo::compressionVsV1() const
{
    return fileBytes ? static_cast<double>(v1EquivalentBytes()) /
            static_cast<double>(fileBytes)
                     : 0.0;
}

// ------------------------------------------------------------ writer

StreamingTraceWriter::StreamingTraceWriter(const std::string &path,
                                           std::uint32_t chunk_records)
    : path_(path), chunkRecords_(chunk_records)
{
    ltc_assert(chunk_records >= 1 && chunk_records <= maxChunkRecords,
               "chunk capacity out of range: ", chunk_records);
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        err_ = TraceErrc::OpenFailed;
        return;
    }
    unsigned char header[v2HeaderBytes] = {};
    std::memcpy(header, magic, 8);
    putU32(header + 8, 2);
    putU32(header + 12, chunkRecords_);
    putU64(header + 16, 0); // record count patched by finish()
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        fail(TraceErrc::WriteFailed);
    payload_.reserve(chunkRecords_ * 8);
}

StreamingTraceWriter::~StreamingTraceWriter()
{
    finish();
}

void
StreamingTraceWriter::fail(TraceErrc errc)
{
    if (err_ == TraceErrc::Ok)
        err_ = errc;
}

void
StreamingTraceWriter::append(const MemRef &ref)
{
    if (!ok() || finished_)
        return;
    encodeRecord(payload_, ref, prevPc_, prevAddr_);
    chunkCount_++;
    written_++;
    if (chunkCount_ >= chunkRecords_)
        flushChunk();
}

void
StreamingTraceWriter::flushChunk()
{
    if (!ok() || chunkCount_ == 0)
        return;
    unsigned char header[chunkHeaderBytes] = {};
    putU32(header, chunkCount_);
    putU32(header + 4, static_cast<std::uint32_t>(payload_.size()));
    putU32(header + 8, fnv1a32(payload_.data(), payload_.size()));
    if (std::fwrite(header, 1, sizeof(header), file_) !=
            sizeof(header) ||
        std::fwrite(payload_.data(), 1, payload_.size(), file_) !=
            payload_.size()) {
        fail(TraceErrc::WriteFailed);
    }
    payload_.clear();
    chunkCount_ = 0;
    prevPc_ = 0;
    prevAddr_ = 0; // chunks are independently decodable
}

TraceErrc
StreamingTraceWriter::finish()
{
    if (finished_)
        return err_;
    finished_ = true;
    if (file_) {
        flushChunk();
        if (ok()) {
            unsigned char count[8];
            putU64(count, written_);
            if (std::fseek(file_, v2CountOffset, SEEK_SET) != 0 ||
                std::fwrite(count, 1, sizeof(count), file_) !=
                    sizeof(count)) {
                fail(TraceErrc::WriteFailed);
            }
        }
        if (std::fclose(file_) != 0)
            fail(TraceErrc::WriteFailed);
        file_ = nullptr;
    }
    return err_;
}

// ------------------------------------------------------------ reader

StreamingTraceReader::StreamingTraceReader(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "rb"), closeFile)
{
    if (!file_) {
        err_ = TraceErrc::OpenFailed;
        return;
    }
    err_ = readHeader(file_.get(), version_, records_, chunkRecords_);
    if (err_ != TraceErrc::Ok)
        return;
    dataStart_ = std::ftell(file_.get());

    // A corrupt v2 record count must not drive huge allocations or
    // endless chunk loops: no encoding packs a record into fewer
    // than 3 payload bytes, so the file size bounds the plausible
    // count. (v1 counts are detected lazily as TruncatedChunk so a
    // truncated body keeps its historical error.)
    if (version_ == 2 &&
        std::fseek(file_.get(), 0, SEEK_END) == 0) {
        const long size = std::ftell(file_.get());
        if (size >= 0 &&
            records_ > static_cast<std::uint64_t>(size) / 3 + 1) {
            err_ = TraceErrc::BadHeader;
            return;
        }
        if (std::fseek(file_.get(), dataStart_, SEEK_SET) != 0)
            err_ = TraceErrc::TruncatedHeader;
    }
}

bool
StreamingTraceReader::fail(TraceErrc errc)
{
    if (err_ == TraceErrc::Ok)
        err_ = errc;
    return false;
}

bool
StreamingTraceReader::next(MemRef &out)
{
    if (bufPos_ >= bufLen_ && !loadNextChunk())
        return false;
    out = buffer_[bufPos_++];
    return true;
}

std::size_t
StreamingTraceReader::fill(std::span<MemRef> out)
{
    std::size_t n = 0;
    while (n < out.size()) {
        if (bufPos_ < bufLen_) {
            const std::size_t take =
                std::min(out.size() - n, bufLen_ - bufPos_);
            std::copy_n(buffer_.data() + bufPos_, take,
                        out.data() + n);
            bufPos_ += take;
            n += take;
            continue;
        }
        if (out.size() - n >= nextChunkBound()) {
            // The caller's remaining space holds the whole chunk:
            // decode straight into the batch, no intermediate copy.
            const std::size_t got = decodeChunk(out.data() + n);
            if (got == 0)
                break;
            n += got;
        } else if (!loadNextChunk()) {
            break;
        }
    }
    return n;
}

std::size_t
StreamingTraceReader::nextChunkBound() const
{
    // readChunkHeader() rejects counts above the chunk capacity or
    // the header's remaining record count, so their minimum bounds
    // the next chunk (and keeps a corrupt capacity field from
    // driving a huge buffer allocation).
    const std::uint64_t remaining =
        records_ > consumed_ ? records_ - consumed_ : 0;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(chunkRecords_, remaining));
}

std::size_t
StreamingTraceReader::decodeChunk(MemRef *dst)
{
    if (!ok() || !file_)
        return 0;
    if (consumed_ >= records_)
        return 0; // clean end of trace
    std::size_t got = 0;

    if (version_ == 1) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(records_ - consumed_,
                                    v1BufferRecords));
        rawBuf_.resize(want * v1RecordBytes);
        if (std::fread(rawBuf_.data(), 1, rawBuf_.size(),
                       file_.get()) != rawBuf_.size()) {
            fail(TraceErrc::TruncatedChunk);
            return 0;
        }
        for (std::size_t i = 0; i < want; i++)
            dst[i] = decodeV1Record(rawBuf_.data() + i * v1RecordBytes);
        got = want;
    } else {
        std::uint32_t count = 0, payload_bytes = 0, checksum = 0;
        TraceErrc errc = readChunkHeader(
            file_.get(), chunkRecords_, records_ - consumed_, count,
            payload_bytes, checksum);
        if (errc != TraceErrc::Ok) {
            fail(errc);
            return 0;
        }
        rawBuf_.resize(payload_bytes);
        if (std::fread(rawBuf_.data(), 1, rawBuf_.size(),
                       file_.get()) != rawBuf_.size()) {
            fail(TraceErrc::TruncatedChunk);
            return 0;
        }
        if (fnv1a32(rawBuf_.data(), rawBuf_.size()) != checksum) {
            fail(TraceErrc::ChecksumMismatch);
            return 0;
        }
        const unsigned char *p = rawBuf_.data();
        const unsigned char *end = p + rawBuf_.size();
        Addr prev_pc = 0, prev_addr = 0;
        for (std::uint32_t i = 0; i < count; i++) {
            if (!(p = decodeRecord(p, end, dst[i], prev_pc,
                                   prev_addr))) {
                fail(TraceErrc::MalformedRecord);
                return 0;
            }
        }
        if (p != end) {
            fail(TraceErrc::MalformedRecord); // trailing bytes
            return 0;
        }
        got = count;
    }

    consumed_ += got;
    chunksRead_++;
    return got;
}

bool
StreamingTraceReader::loadNextChunk()
{
    bufPos_ = 0;
    bufLen_ = 0;
    const std::size_t bound = nextChunkBound();
    if (buffer_.size() < bound)
        buffer_.resize(bound);
    bufLen_ = decodeChunk(buffer_.data());
    maxBuffered_ = std::max(maxBuffered_, bufLen_);
    return bufLen_ != 0;
}

void
StreamingTraceReader::reset()
{
    if (!file_ || version_ == 0)
        return;
    // A sticky mid-stream error (corrupt chunk) stays sticky; only
    // a cleanly readable file can be replayed.
    if (err_ != TraceErrc::Ok)
        return;
    if (std::fseek(file_.get(), dataStart_, SEEK_SET) != 0) {
        fail(TraceErrc::TruncatedChunk);
        return;
    }
    bufLen_ = 0;
    bufPos_ = 0;
    consumed_ = 0;
}

// ------------------------------------------------------------- probe

TraceErrc
probeTraceHeader(const std::string &path, TraceFileInfo &info)
{
    info = TraceFileInfo{};
    // The reader constructor parses and sanity-checks the header
    // (including the count-vs-file-size bound) without touching any
    // payload - exactly the O(1) probe discovery needs.
    StreamingTraceReader reader(path);
    if (!reader.ok())
        return reader.error();
    info.version = reader.version();
    info.records = reader.records();
    info.chunkRecords = reader.version() >= 2 ? reader.chunkCapacity()
                                              : 0;
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), closeFile);
    if (f && std::fseek(f.get(), 0, SEEK_END) == 0) {
        const long size = std::ftell(f.get());
        if (size >= 0)
            info.fileBytes = static_cast<std::uint64_t>(size);
    }
    return TraceErrc::Ok;
}

TraceErrc
probeTraceFile(const std::string &path, TraceFileInfo &info)
{
    info = TraceFileInfo{};
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), closeFile);
    if (!f)
        return TraceErrc::OpenFailed;

    TraceErrc errc = readHeader(f.get(), info.version, info.records,
                                info.chunkRecords);
    if (errc != TraceErrc::Ok)
        return errc;

    if (info.version == 1) {
        info.chunkRecords = 0;
        if (std::fseek(f.get(), 0, SEEK_END) != 0)
            return TraceErrc::TruncatedChunk;
        info.fileBytes =
            static_cast<std::uint64_t>(std::ftell(f.get()));
        if (info.fileBytes <
            v1HeaderBytes + info.records * v1RecordBytes) {
            return TraceErrc::TruncatedChunk;
        }
        return TraceErrc::Ok;
    }

    std::uint64_t remaining = info.records;
    std::vector<unsigned char> payload;
    while (remaining > 0) {
        std::uint32_t count = 0, payload_bytes = 0, checksum = 0;
        errc = readChunkHeader(f.get(), info.chunkRecords, remaining,
                               count, payload_bytes, checksum);
        if (errc != TraceErrc::Ok)
            return errc;
        payload.resize(payload_bytes);
        if (std::fread(payload.data(), 1, payload.size(), f.get()) !=
            payload.size()) {
            return TraceErrc::TruncatedChunk;
        }
        if (fnv1a32(payload.data(), payload.size()) != checksum)
            return TraceErrc::ChecksumMismatch;
        remaining -= count;
        info.chunks++;
        info.payloadBytes += payload_bytes;
    }
    info.fileBytes = v2HeaderBytes +
        info.chunks * chunkHeaderBytes + info.payloadBytes;
    return TraceErrc::Ok;
}

// ---------------------------------------------------- capture/convert

TraceErrc
captureToFile(TraceSource &source, const std::string &path,
              std::uint64_t refs, std::uint64_t *out_written,
              std::uint32_t chunk_records)
{
    StreamingTraceWriter writer(path, chunk_records);
    source.reset();
    std::vector<MemRef> batch(4096);
    std::uint64_t remaining = refs;
    while (remaining > 0 && writer.ok()) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, batch.size()));
        const std::size_t got = source.fill({batch.data(), want});
        for (std::size_t i = 0; i < got; i++)
            writer.append(batch[i]);
        remaining -= got;
        if (got < want)
            break;
    }
    if (out_written)
        *out_written = writer.written();
    return writer.finish();
}

TraceErrc
convertTraceFile(const std::string &in_path,
                 const std::string &out_path, std::uint64_t limit,
                 std::uint32_t chunk_records)
{
    StreamingTraceReader reader(in_path);
    if (!reader.ok())
        return reader.error();
    StreamingTraceWriter writer(out_path, chunk_records);
    MemRef ref;
    while ((limit == 0 || writer.written() < limit) && writer.ok() &&
           reader.next(ref)) {
        writer.append(ref);
    }
    if (!reader.ok())
        return reader.error();
    return writer.finish();
}

// --------------------------------------------------- ChampSim import

namespace
{

/** ChampSim's input_instr: 16 bytes of header + 6 memory slots. */
constexpr std::size_t champsimRecordBytes = 64;
constexpr std::size_t champsimSrcSlots = 4;
constexpr std::size_t champsimDstSlots = 2;

} // namespace

TraceErrc
importChampSimFile(const std::string &in_path,
                   const std::string &out_path, std::uint64_t limit,
                   std::uint64_t *out_written,
                   std::uint32_t chunk_records)
{
    if (out_written)
        *out_written = 0;
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> in(
        std::fopen(in_path.c_str(), "rb"), closeFile);
    if (!in)
        return TraceErrc::OpenFailed;

    StreamingTraceWriter writer(out_path, chunk_records);
    unsigned char rec[champsimRecordBytes];
    std::uint32_t gap = 0;
    while (writer.ok() && (limit == 0 || writer.written() < limit)) {
        const std::size_t got =
            std::fread(rec, 1, sizeof(rec), in.get());
        if (got == 0)
            break;
        if (got != sizeof(rec))
            return TraceErrc::MalformedRecord; // trailing partial record
        const std::uint64_t ip = getU64(rec);
        // destination_memory at offset 16, source_memory at 32.
        bool first = true;
        auto emit = [&](std::uint64_t addr, MemOp op) {
            if (addr == 0 || !writer.ok())
                return;
            if (limit != 0 && writer.written() >= limit)
                return;
            MemRef ref;
            ref.pc = ip;
            ref.addr = addr;
            ref.op = op;
            ref.nonMemGap = first ? gap : 0;
            writer.append(ref);
            if (first) {
                gap = 0;
                first = false;
            }
        };
        for (std::size_t i = 0; i < champsimSrcSlots; i++)
            emit(getU64(rec + 32 + 8 * i), MemOp::Load);
        for (std::size_t i = 0; i < champsimDstSlots; i++)
            emit(getU64(rec + 16 + 8 * i), MemOp::Store);
        if (first)
            gap++; // no memory operands: instruction feeds the gap
    }
    if (out_written)
        *out_written = writer.written();
    return writer.finish();
}

} // namespace ltc
