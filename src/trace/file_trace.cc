#include "trace/file_trace.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "util/logging.hh"

namespace ltc
{

namespace
{

constexpr char magic[8] = {'L', 'T', 'C', 'T', 'R', 'A', 'C', 'E'};

/** v1 on-disk record: 8B pc, 8B addr, 1B op, 1B flags, 4B gap. */
constexpr std::size_t v1RecordBytes = 8 + 8 + 1 + 1 + 4;

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
writeTraceFile(const std::string &path, const std::vector<MemRef> &refs)
{
    StreamingTraceWriter writer(path);
    for (const MemRef &ref : refs)
        writer.append(ref);
    const TraceErrc errc = writer.finish();
    if (errc != TraceErrc::Ok) {
        ltc_fatal("cannot write trace file ", path, ": ",
                  traceErrcMessage(errc));
    }
}

void
writeTraceFileV1(const std::string &path,
                 const std::vector<MemRef> &refs)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        ltc_fatal("cannot open trace file for writing: ", path);

    unsigned char header[16];
    std::memcpy(header, magic, 8);
    putU32(header + 8, 1);
    putU32(header + 12, static_cast<std::uint32_t>(refs.size()));
    if (std::fwrite(header, 1, sizeof(header), f.get()) != sizeof(header))
        ltc_fatal("short write on trace header: ", path);

    std::vector<unsigned char> buf(v1RecordBytes);
    for (const MemRef &ref : refs) {
        putU64(buf.data(), ref.pc);
        putU64(buf.data() + 8, ref.addr);
        buf[16] = ref.op == MemOp::Store ? 1 : 0;
        buf[17] = ref.dependsOnPrev ? 1 : 0;
        putU32(buf.data() + 18, ref.nonMemGap);
        if (std::fwrite(buf.data(), 1, v1RecordBytes, f.get()) !=
            v1RecordBytes) {
            ltc_fatal("short write on trace record: ", path);
        }
    }
}

std::vector<MemRef>
readTraceFile(const std::string &path, TraceErrc *err)
{
    StreamingTraceReader reader(path);
    std::vector<MemRef> refs;
    if (reader.ok()) {
        // Cap the pre-allocation: the header count is validated
        // against the file size for v2, but a lying v1 count must
        // not drive a huge up-front reserve either.
        refs.reserve(std::min<std::uint64_t>(reader.records(),
                                             1u << 20));
        MemRef ref;
        while (reader.next(ref))
            refs.push_back(ref);
    }
    if (err) {
        *err = reader.error();
        return refs;
    }
    if (!reader.ok()) {
        ltc_fatal("trace file ", path, ": ",
                  traceErrcMessage(reader.error()), " (",
                  traceErrcName(reader.error()), ")");
    }
    return refs;
}

FileTrace::FileTrace(const std::string &path, std::string name)
    : reader_(std::make_unique<StreamingTraceReader>(path)),
      name_(name.empty() ? "file:" + path : std::move(name))
{
    if (!reader_->ok()) {
        ltc_fatal("trace file ", path, ": ",
                  traceErrcMessage(reader_->error()), " (",
                  traceErrcName(reader_->error()), ")");
    }
}

bool
FileTrace::next(MemRef &out)
{
    if (reader_->next(out))
        return true;
    // The header parsed (the constructor checked), so a mid-stream
    // failure is data corruption: engines cannot recover from a
    // stream that silently ends early, so fail loudly.
    if (!reader_->ok()) {
        ltc_fatal("trace file ", name_, ": ",
                  traceErrcMessage(reader_->error()), " (",
                  traceErrcName(reader_->error()), ")");
    }
    return false;
}

std::size_t
FileTrace::fill(std::span<MemRef> out)
{
    const std::size_t got = reader_->fill(out);
    if (got < out.size() && !reader_->ok()) {
        // Same contract as next(): mid-stream corruption is fatal.
        ltc_fatal("trace file ", name_, ": ",
                  traceErrcMessage(reader_->error()), " (",
                  traceErrcName(reader_->error()), ")");
    }
    return got;
}

} // namespace ltc
