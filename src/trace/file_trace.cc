#include "trace/file_trace.hh"

#include <array>
#include <cstring>
#include <memory>

#include "util/logging.hh"

namespace ltc
{

namespace
{

constexpr char magic[8] = {'L', 'T', 'C', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t version = 1;

/** On-disk record: 8B pc, 8B addr, 1B op, 1B flags, 4B gap (packed). */
constexpr std::size_t recordBytes = 8 + 8 + 1 + 1 + 4;

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
writeTraceFile(const std::string &path, const std::vector<MemRef> &refs)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        ltc_fatal("cannot open trace file for writing: ", path);

    unsigned char header[16];
    std::memcpy(header, magic, 8);
    putU32(header + 8, version);
    putU32(header + 12, static_cast<std::uint32_t>(refs.size()));
    if (std::fwrite(header, 1, sizeof(header), f.get()) != sizeof(header))
        ltc_fatal("short write on trace header: ", path);

    std::vector<unsigned char> buf(recordBytes);
    for (const MemRef &ref : refs) {
        putU64(buf.data(), ref.pc);
        putU64(buf.data() + 8, ref.addr);
        buf[16] = ref.op == MemOp::Store ? 1 : 0;
        buf[17] = ref.dependsOnPrev ? 1 : 0;
        putU32(buf.data() + 18, ref.nonMemGap);
        if (std::fwrite(buf.data(), 1, recordBytes, f.get()) !=
            recordBytes) {
            ltc_fatal("short write on trace record: ", path);
        }
    }
}

std::vector<MemRef>
readTraceFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        ltc_fatal("cannot open trace file: ", path);

    unsigned char header[16];
    if (std::fread(header, 1, sizeof(header), f.get()) != sizeof(header))
        ltc_fatal("truncated trace header: ", path);
    if (std::memcmp(header, magic, 8) != 0)
        ltc_fatal("bad trace magic in ", path);
    if (getU32(header + 8) != version)
        ltc_fatal("unsupported trace version in ", path);

    const std::uint32_t count = getU32(header + 12);
    std::vector<MemRef> refs;
    refs.reserve(count);
    std::vector<unsigned char> buf(recordBytes);
    for (std::uint32_t i = 0; i < count; i++) {
        if (std::fread(buf.data(), 1, recordBytes, f.get()) !=
            recordBytes) {
            ltc_fatal("truncated trace record ", i, " in ", path);
        }
        MemRef ref;
        ref.pc = getU64(buf.data());
        ref.addr = getU64(buf.data() + 8);
        ref.op = buf[16] ? MemOp::Store : MemOp::Load;
        ref.dependsOnPrev = buf[17] != 0;
        ref.nonMemGap = getU32(buf.data() + 18);
        refs.push_back(ref);
    }
    return refs;
}

FileTrace::FileTrace(const std::string &path)
    : refs_(readTraceFile(path)), name_("file:" + path)
{
}

bool
FileTrace::next(MemRef &out)
{
    if (pos_ >= refs_.size())
        return false;
    out = refs_[pos_++];
    return true;
}

} // namespace ltc
