/**
 * @file
 * Named synthetic workloads reproducing the paper's benchmark suite.
 *
 * The paper evaluates all of SPEC CPU2000 except vpr, plus three
 * pointer-intensive Olden benchmarks (bh, em3d, treeadd). SPEC
 * binaries and SimpleScalar are not available here, so each benchmark
 * is replaced by a deterministic generator composed from the
 * primitives in trace/primitives.hh and calibrated to the benchmark's
 * published characteristics:
 *
 *  - approximate baseline L1D/L2 miss rates (Table 2),
 *  - temporal-correlation class (Fig. 6): perfectly correlated loop
 *    code, partially correlated mixes, or uncorrelated hashed access,
 *  - dependence structure: array code vs pointer chasing,
 *  - footprint class, which determines off-chip sequence storage
 *    demand (Fig. 10) and finite-DBCP behaviour (Fig. 4).
 *
 * Footprints are scaled down ~8x from the originals so whole
 * experiments run in seconds; the `scale` parameter restores larger
 * footprints when desired.
 */

#ifndef LTC_TRACE_WORKLOADS_HH
#define LTC_TRACE_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace ltc
{

/** Benchmark suite a workload belongs to. */
enum class Suite
{
    SPECint,
    SPECfp,
    Olden,
    /** File-backed workload discovered via LTC_TRACE_DIR. */
    Captured,
};

const char *suiteName(Suite suite);

/** Catalogue entry describing one named workload. */
struct WorkloadInfo
{
    std::string name;
    Suite suite;
    /** One-line description of the access-pattern recipe. */
    std::string description;
    /**
     * References in one outer iteration of the workload's dominant
     * loop; engines use this to size training and measurement windows.
     */
    std::uint64_t refsPerIteration;
};

/** All synthetic workloads in catalogue order (the paper's Table 2). */
const std::vector<WorkloadInfo> &workloadCatalog();

/**
 * A file-backed workload discovered in LTC_TRACE_DIR: a .ltct trace
 * container (trace/trace_io.hh) registered under the name
 * "trace:<stem>" and swept by benches exactly like a built-in.
 */
struct TraceWorkload
{
    WorkloadInfo info; //!< name, Suite::Captured, record count
    std::string path;  //!< the container file
};

/**
 * Set the trace-discovery directory programmatically (e.g. from a
 * bench's --trace-dir flag). Takes precedence over LTC_TRACE_DIR;
 * an empty string reverts to the environment variable. Call before
 * workload lookups for the sweep that should see the traces.
 */
void setTraceDir(const std::string &dir);

/**
 * The effective trace-discovery directory: the setTraceDir()
 * override if set, else LTC_TRACE_DIR, else "". The experiment
 * fabric forwards this to worker processes (sim/cell_store.hh),
 * which would otherwise lose a --trace-dir registration across
 * re-execution - setTraceDir() is process-global state.
 */
std::string traceDir();

/**
 * File-backed workloads: every *.ltct file in the trace-discovery
 * directory - setTraceDir() if set, else the LTC_TRACE_DIR
 * environment variable (sorted by name; empty when neither is set).
 * Unreadable files or a missing directory are fatal - a requested
 * trace directory must be usable. Only container headers are read
 * at discovery (O(1) per file); full validation happens at replay.
 * Results are cached per directory; thread-safe.
 */
const std::vector<TraceWorkload> &fileWorkloads();

/**
 * Names of all runnable workloads: the synthetic catalogue followed
 * by the file-backed workloads from LTC_TRACE_DIR.
 */
std::vector<std::string> workloadNames();

/** Catalogue entry for @p name; fatal error if unknown. */
const WorkloadInfo &workloadInfo(const std::string &name);

/** True if @p name is a known workload. */
bool isWorkload(const std::string &name);

/**
 * Instantiate the generator for workload @p name.
 *
 * File-backed workloads ("trace:<stem>") replay their container
 * through the streaming reader; @p seed and @p scale are ignored for
 * them (a captured trace is immutable by definition).
 *
 * @param name   Benchmark name (e.g. "mcf", "swim", "trace:foo").
 * @param seed   Seed for any randomised layout/probing decisions.
 * @param scale  Footprint multiplier (1.0 = default scaled-down size).
 */
std::unique_ptr<TraceSource> makeWorkload(const std::string &name,
                                          std::uint64_t seed = 1,
                                          double scale = 1.0);

/**
 * The subset of workloads a bench should run, honouring the
 * LTC_WORKLOADS environment variable (comma-separated names, "all",
 * or "quick" for a representative 8-benchmark subset).
 */
std::vector<std::string> selectedWorkloads();

/**
 * Reference budget for experiments, honouring the LTC_REFS
 * environment variable; defaults to @p fallback.
 */
std::uint64_t refBudget(std::uint64_t fallback);

/**
 * Suggested reference budget for workload @p name: enough outer-loop
 * iterations (~6) for predictor training and steady-state coverage to
 * be visible, clamped to a practical range.
 */
std::uint64_t suggestedRefs(const std::string &name);

} // namespace ltc

#endif // LTC_TRACE_WORKLOADS_HH
