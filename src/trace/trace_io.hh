/**
 * @file
 * Streaming .ltct trace container: v2 chunked format, v1 compatibility.
 *
 * The v2 container stores a MemRef stream as a sequence of
 * independently decodable chunks. Within a chunk, records are
 * delta-encoded against the previous record (PC and address deltas as
 * zigzag varints, util/varint.hh) with a control byte packing the
 * operation, the dependence flag and the common small non-memory gaps;
 * each chunk carries its record count, payload size and an FNV-1a
 * checksum, so corruption is detected per chunk and both reading and
 * writing need only O(chunk) memory. See docs/TRACE_FORMAT.md for the
 * exact wire layout.
 *
 * The reader transparently accepts the legacy v1 format (eager
 * fixed-width records) so existing traces keep replaying; the
 * converter and the `ltc-trace` CLI (tools/ltc_trace.cc) upgrade them.
 * A ChampSim-style importer turns binary instruction traces into
 * MemRef streams so external captures become first-class workloads
 * (trace/workloads.hh discovers .ltct files via LTC_TRACE_DIR).
 *
 * All I/O failures surface as typed TraceErrc values - never
 * fatal() - so callers (tools, tests, the workload registry) can
 * report or recover.
 */

#ifndef LTC_TRACE_TRACE_IO_HH
#define LTC_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/types.hh"

namespace ltc
{

class TraceSource; // trace/trace.hh

/** Typed result of a trace container operation. */
enum class TraceErrc
{
    Ok = 0,             //!< success
    OpenFailed,         //!< cannot open the file
    TruncatedHeader,    //!< file ends inside the file header
    BadMagic,           //!< not an LTCTRACE container
    UnsupportedVersion, //!< written by a future format version
    BadHeader,          //!< header fields are out of range
    TruncatedChunk,     //!< file ends inside a chunk (header or payload)
    ChecksumMismatch,   //!< chunk payload checksum does not match
    MalformedRecord,    //!< record encoding cannot be decoded
    CountMismatch,      //!< chunk record counts disagree with the header
    WriteFailed,        //!< short write / flush failure
};

/** Short identifier for @p errc (e.g. "checksum-mismatch"). */
const char *traceErrcName(TraceErrc errc);

/** Human-readable message for @p errc (e.g. "bad trace magic"). */
const char *traceErrcMessage(TraceErrc errc);

/** Records per chunk when the writer is not told otherwise. */
constexpr std::uint32_t defaultChunkRecords = 1u << 16;

/** Header summary of an on-disk trace container. */
struct TraceFileInfo
{
    std::uint32_t version = 0;      //!< container version (1 or 2)
    std::uint64_t records = 0;      //!< total MemRef records
    std::uint32_t chunkRecords = 0; //!< chunk capacity (0 for v1)
    std::uint64_t chunks = 0;       //!< chunk count (0 for v1)
    std::uint64_t payloadBytes = 0; //!< encoded record bytes (v2)
    std::uint64_t fileBytes = 0;    //!< total file size

    /** Size of the same stream in the v1 fixed-width encoding. */
    std::uint64_t v1EquivalentBytes() const;
    /** v1EquivalentBytes() / fileBytes (v2's compression win). */
    double compressionVsV1() const;
};

/**
 * Parse and sanity-check only the container header: O(1) I/O, no
 * chunk walk, so it is cheap on arbitrarily long traces. chunks and
 * payloadBytes stay 0 in @p info; fileBytes is filled.
 * @return TraceErrc::Ok and a filled @p info on success.
 */
TraceErrc probeTraceHeader(const std::string &path,
                           TraceFileInfo &info);

/**
 * Walk a container's header and chunk structure, verifying chunk
 * checksums, without decoding records. Reads the whole file; prefer
 * probeTraceHeader() when only the header summary is needed.
 * @return TraceErrc::Ok and a filled @p info on success.
 */
TraceErrc probeTraceFile(const std::string &path, TraceFileInfo &info);

/**
 * Append-only v2 container writer with O(chunk) memory.
 *
 * append() buffers encoded records and flushes a chunk whenever the
 * configured capacity fills; finish() flushes the tail chunk and
 * patches the total record count into the header. Errors are sticky:
 * once a write fails, further appends are ignored and finish()
 * reports the first error.
 */
class StreamingTraceWriter
{
  public:
    /**
     * @param path          Output file (truncated).
     * @param chunk_records Records per chunk (>= 1).
     */
    explicit StreamingTraceWriter(
        const std::string &path,
        std::uint32_t chunk_records = defaultChunkRecords);
    /** Calls finish() if the caller has not. */
    ~StreamingTraceWriter();

    StreamingTraceWriter(const StreamingTraceWriter &) = delete;
    StreamingTraceWriter &
    operator=(const StreamingTraceWriter &) = delete;

    /** False once any operation has failed. */
    bool ok() const { return err_ == TraceErrc::Ok; }
    /** First error encountered (Ok if none). */
    TraceErrc error() const { return err_; }

    /** Encode and buffer one record; flushes full chunks. */
    void append(const MemRef &ref);

    /** Records appended so far. */
    std::uint64_t written() const { return written_; }

    /**
     * Flush the tail chunk and patch the header record count.
     * @return the first error encountered over the writer's life.
     */
    TraceErrc finish();

  private:
    void flushChunk();
    void fail(TraceErrc errc);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint32_t chunkRecords_;
    TraceErrc err_ = TraceErrc::Ok;
    bool finished_ = false;

    std::vector<unsigned char> payload_; //!< encoded chunk so far
    std::uint32_t chunkCount_ = 0;       //!< records in payload_
    std::uint64_t written_ = 0;
    Addr prevPc_ = 0;
    Addr prevAddr_ = 0;
};

/**
 * Streaming container reader for v1 and v2 files.
 *
 * Decodes one chunk at a time (v1: a fixed-size block of records), so
 * replay memory is bounded by the file's chunk capacity regardless of
 * trace length. Malformed input surfaces as a typed error: next()
 * returns false and error() identifies the failure; a clean end of
 * trace leaves error() == Ok.
 */
class StreamingTraceReader
{
  public:
    explicit StreamingTraceReader(const std::string &path);

    StreamingTraceReader(const StreamingTraceReader &) = delete;
    StreamingTraceReader &
    operator=(const StreamingTraceReader &) = delete;

    /** False once the header or any chunk failed to parse. */
    bool ok() const { return err_ == TraceErrc::Ok; }
    /** First error encountered (Ok if none). */
    TraceErrc error() const { return err_; }

    /** Container version (1 or 2); 0 if the header failed to parse. */
    std::uint32_t version() const { return version_; }
    /** Total records the header promises. */
    std::uint64_t records() const { return records_; }
    /** Records the reader will buffer at once. */
    std::uint32_t chunkCapacity() const { return chunkRecords_; }

    /**
     * Produce the next record.
     * @retval true  a record was produced.
     * @retval false end of trace (error() == Ok) or failure.
     */
    bool next(MemRef &out);

    /**
     * Produce up to out.size() records into @p out (the batch form
     * of next(); FileTrace's hot path). Drains any buffered records
     * first; once the caller's remaining space can hold a whole
     * chunk, chunks are decoded directly into the caller's batch,
     * skipping the intermediate buffer entirely. A short return
     * means end of trace (error() == Ok) or failure.
     */
    std::size_t fill(std::span<MemRef> out);

    /** Rewind to the first record; keeps high-water statistics. */
    void reset();

    /** High-water mark of records buffered in memory at once. */
    std::size_t maxBufferedRecords() const { return maxBuffered_; }
    /** Chunks decoded so far (v2; v1 counts fixed-size blocks). */
    std::uint64_t chunksRead() const { return chunksRead_; }

  private:
    bool loadNextChunk();
    /**
     * Decode the next chunk into @p dst, which must have room for
     * nextChunkBound() records. Returns the record count (0 on clean
     * end of trace or failure; error() disambiguates).
     */
    std::size_t decodeChunk(MemRef *dst);
    /** Upper bound on the next chunk's record count. */
    std::size_t nextChunkBound() const;
    bool fail(TraceErrc errc);

    std::string path_;
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> file_;
    TraceErrc err_ = TraceErrc::Ok;

    std::uint32_t version_ = 0;
    std::uint64_t records_ = 0;
    std::uint32_t chunkRecords_ = 0;
    long dataStart_ = 0;

    std::vector<MemRef> buffer_;   //!< decoded records (first bufLen_)
    std::size_t bufLen_ = 0;       //!< live records in buffer_
    std::size_t bufPos_ = 0;
    std::vector<unsigned char> rawBuf_; //!< encoded-chunk scratch
    std::uint64_t consumed_ = 0; //!< records handed out + buffered
    std::size_t maxBuffered_ = 0;
    std::uint64_t chunksRead_ = 0;
};

/**
 * Capture up to @p refs records of @p source (from its start; the
 * source is reset() first) into a v2 container at @p path.
 * @param out_written Optional: records actually captured (a finite
 *        source may end early).
 */
TraceErrc captureToFile(TraceSource &source, const std::string &path,
                        std::uint64_t refs,
                        std::uint64_t *out_written = nullptr,
                        std::uint32_t chunk_records = defaultChunkRecords);

/**
 * Re-encode the container at @p in_path (v1 or v2) as a v2 container
 * at @p out_path, preserving the record sequence exactly.
 * @param limit 0 = all records, otherwise stop after @p limit.
 */
TraceErrc convertTraceFile(const std::string &in_path,
                           const std::string &out_path,
                           std::uint64_t limit = 0,
                           std::uint32_t chunk_records = defaultChunkRecords);

/**
 * Import a ChampSim-style binary instruction trace (uncompressed
 * 64-byte input_instr records, little-endian) into a v2 container.
 *
 * Each instruction contributes one MemRef per non-zero source-memory
 * slot (load) and destination-memory slot (store), with pc = ip;
 * instructions without memory operands accumulate into the next
 * record's nonMemGap. Decompress .xz/.gz captures first.
 *
 * @param limit       0 = all, otherwise stop after emitting this many
 *                    memory references.
 * @param out_written Optional: references emitted.
 */
TraceErrc importChampSimFile(
    const std::string &in_path, const std::string &out_path,
    std::uint64_t limit = 0, std::uint64_t *out_written = nullptr,
    std::uint32_t chunk_records = defaultChunkRecords);

} // namespace ltc

#endif // LTC_TRACE_TRACE_IO_HH
