#include "trace/primitives.hh"

#include <algorithm>
#include <numeric>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

namespace
{

/** Word offset within a block for the k-th access to that block. */
constexpr Addr
wordOffset(std::uint32_t k, std::uint64_t block_bytes)
{
    return (static_cast<Addr>(k) * 8) % block_bytes;
}

} // namespace

//
// StridedScanSource
//

StridedScanSource::StridedScanSource(std::vector<ScanArray> arrays,
                                     std::uint32_t non_mem_gap,
                                     std::string name)
    : arrays_(std::move(arrays)), gap_(non_mem_gap),
      name_(std::move(name))
{
    ltc_assert(!arrays_.empty(), "StridedScanSource with no arrays");
    for (const auto &a : arrays_) {
        ltc_assert(a.blocks > 0, "ScanArray with zero blocks");
        ltc_assert(a.accessesPerBlock > 0,
                   "ScanArray with zero accessesPerBlock");
    }
}

bool
StridedScanSource::next(MemRef &out)
{
    const ScanArray &a = arrays_[arrayIdx_];

    Addr base = a.base;
    if (a.advancePerIter) {
        const std::uint64_t wrap =
            a.wrapBytes ? a.wrapBytes : (std::uint64_t{1} << 30);
        base += (iter_ * a.advancePerIter) % wrap;
    }

    out.pc = a.pc + accessIdx_ * 4;
    out.addr = base + blockIdx_ * defaultBlockSize +
        wordOffset(accessIdx_, defaultBlockSize);
    out.op = a.stores ? MemOp::Store : MemOp::Load;
    out.nonMemGap = gap_;
    out.dependsOnPrev = false;

    // Advance position: accesses within block, blocks within array,
    // arrays within iteration.
    if (++accessIdx_ >= a.accessesPerBlock) {
        accessIdx_ = 0;
        if (++blockIdx_ >= a.blocks) {
            blockIdx_ = 0;
            if (++arrayIdx_ >= arrays_.size()) {
                arrayIdx_ = 0;
                iter_++;
            }
        }
    }
    return true;
}

std::size_t
StridedScanSource::fill(std::span<MemRef> out)
{
    // The class is final and next() never ends, so this compiles to a
    // tight non-virtual generation loop.
    for (MemRef &ref : out)
        next(ref);
    return out.size();
}

void
StridedScanSource::reset()
{
    arrayIdx_ = 0;
    blockIdx_ = 0;
    accessIdx_ = 0;
    iter_ = 0;
}

//
// PointerChaseSource
//

PointerChaseSource::PointerChaseSource(PointerChaseParams params,
                                       std::string name)
    : params_(params), name_(std::move(name)), rng_(params.seed)
{
    ltc_assert(params_.nodes >= 2, "PointerChaseSource needs >= 2 nodes");
    ltc_assert(params_.nodes <= (std::uint64_t{1} << 32),
               "PointerChaseSource node count exceeds u32 index space");
    ltc_assert(params_.accessesPerNode > 0,
               "PointerChaseSource zero accessesPerNode");
    ltc_assert(params_.shuffle >= 0.0 && params_.shuffle <= 1.0,
               "shuffle fraction out of [0,1]");
    buildChain();
}

Addr
PointerChaseSource::nodeAddr(std::uint64_t i) const
{
    return params_.base + i * params_.nodeBytes;
}

void
PointerChaseSource::buildChain()
{
    const auto n = static_cast<std::uint32_t>(params_.nodes);
    // Build a single n-cycle visiting every node. Start from the
    // layout-order cycle 0 -> 1 -> ... -> n-1 -> 0 expressed as a
    // visit order, optionally shuffle the visit order (Sattolo-style
    // partial shuffle keyed by the shuffle fraction). The visit order
    // IS the stored representation: the simulated successor of
    // order_[k] is order_[k+1], so deriving explicit links would only
    // re-encode the same permutation in a form the generator would
    // then have to chase one dependent load at a time.
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    if (params_.shuffle > 0.0) {
        const auto shuffled =
            static_cast<std::uint32_t>(params_.shuffle * n);
        // Fisher-Yates over the first `shuffled` positions, drawing
        // partners from the whole array.
        for (std::uint32_t i = 0; i < shuffled; i++) {
            const auto j =
                static_cast<std::uint32_t>(rng_.range(i, n - 1));
            std::swap(order_[i], order_[j]);
        }
    }
    pos_ = 0;
}

void
PointerChaseSource::mutate()
{
    const auto n = static_cast<std::uint32_t>(params_.nodes);
    const auto count = static_cast<std::uint64_t>(
        params_.mutateFraction * static_cast<double>(n));
    // Relinking by transposing successors of random node pairs would
    // keep every node reachable only if both nodes stay in one cycle;
    // a transposition of two elements of a single cycle always yields
    // two cycles. Reversing random segments of the visit order
    // instead preserves the single-cycle property by construction.
    // Mutation fires exactly at a wrap (pos_ == 0), where the stored
    // order already starts at the node the traversal resumes from.
    std::uint64_t mutated = 0;
    while (mutated < count) {
        const auto lo = static_cast<std::uint32_t>(rng_.below(n));
        const auto len = static_cast<std::uint32_t>(
            rng_.range(2, std::min<std::uint64_t>(64, n)));
        const auto hi = std::min<std::uint32_t>(n - 1, lo + len);
        std::reverse(order_.begin() + lo, order_.begin() + hi);
        mutated += hi - lo;
    }
}

bool
PointerChaseSource::next(MemRef &out)
{
    out.pc = params_.pc + accessIdx_ * 4;
    out.addr = nodeAddr(order_[pos_]) +
        wordOffset(accessIdx_, params_.nodeBytes);
    out.op = MemOp::Load;
    out.nonMemGap = params_.nonMemGap;
    // The first access to a node dereferences the pointer loaded from
    // the previous node; subsequent same-node accesses hit the block.
    out.dependsOnPrev = accessIdx_ == 0;

    if (++accessIdx_ >= params_.accessesPerNode) {
        accessIdx_ = 0;
        if (++pos_ >= params_.nodes) {
            pos_ = 0;
            iter_++;
            if (params_.mutateEveryIters &&
                iter_ % params_.mutateEveryIters == 0 &&
                params_.mutateFraction > 0.0) {
                mutate();
            }
        }
    }
    return true;
}

std::size_t
PointerChaseSource::fill(std::span<MemRef> out)
{
    // Batched generation: the common one-access-per-node case runs
    // wrap-free inner sweeps over order_ — sequential indexed loads
    // the hardware prefetcher covers, where the successor-link form
    // of this source serialized one dependent (usually missing) load
    // per simulated node. Multi-access nodes keep the scalar loop;
    // next() already reads order_ sequentially there too.
    if (params_.accessesPerNode != 1) {
        for (MemRef &ref : out)
            next(ref);
        return out.size();
    }
    std::size_t n = 0;
    while (n < out.size()) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(out.size() - n,
                                    params_.nodes - pos_));
        const std::uint32_t *nodes = order_.data() + pos_;
        for (std::size_t i = 0; i < chunk; i++) {
            MemRef &ref = out[n + i];
            ref.pc = params_.pc;
            ref.addr = nodeAddr(nodes[i]);
            ref.op = MemOp::Load;
            ref.nonMemGap = params_.nonMemGap;
            ref.dependsOnPrev = true;
        }
        n += chunk;
        pos_ += chunk;
        if (pos_ >= params_.nodes) {
            pos_ = 0;
            iter_++;
            if (params_.mutateEveryIters &&
                iter_ % params_.mutateEveryIters == 0 &&
                params_.mutateFraction > 0.0) {
                mutate();
            }
        }
    }
    return out.size();
}

void
PointerChaseSource::reset()
{
    rng_.reseed(params_.seed);
    accessIdx_ = 0;
    iter_ = 0;
    buildChain();
}

//
// TreeWalkSource
//

TreeWalkSource::TreeWalkSource(TreeWalkParams params, std::string name)
    : params_(params), name_(std::move(name))
{
    ltc_assert(params_.nodes >= 1, "TreeWalkSource needs >= 1 node");
    ltc_assert(params_.accessesPerNode > 0,
               "TreeWalkSource zero accessesPerNode");

    const auto n = static_cast<std::uint32_t>(params_.nodes);

    placement_.resize(n);
    std::iota(placement_.begin(), placement_.end(), 0);
    if (!params_.regularLayout) {
        Rng rng(params_.seed);
        for (std::uint32_t i = n; i > 1; i--) {
            const auto j = static_cast<std::uint32_t>(rng.below(i));
            std::swap(placement_[i - 1], placement_[j]);
        }
    }

    // Iterative pre-order DFS over the implicit complete binary tree
    // rooted at index 0 (children of i are 2i+1 and 2i+2).
    order_.reserve(n);
    std::vector<std::uint32_t> stack;
    stack.push_back(0);
    while (!stack.empty()) {
        const std::uint32_t i = stack.back();
        stack.pop_back();
        if (i >= n)
            continue;
        order_.push_back(i);
        // Push right child first so the left subtree is visited first.
        stack.push_back(2 * i + 2);
        stack.push_back(2 * i + 1);
    }
    ltc_assert(order_.size() == n, "DFS order incomplete");
}

bool
TreeWalkSource::next(MemRef &out)
{
    const std::uint32_t node = order_[pos_];
    const Addr addr = params_.base +
        static_cast<Addr>(placement_[node]) * params_.nodeBytes;

    out.pc = params_.pc + accessIdx_ * 4;
    out.addr = addr + wordOffset(accessIdx_, params_.nodeBytes);
    out.op = MemOp::Load;
    out.nonMemGap = params_.nonMemGap;
    out.dependsOnPrev = accessIdx_ == 0;

    if (++accessIdx_ >= params_.accessesPerNode) {
        accessIdx_ = 0;
        if (++pos_ >= order_.size()) {
            pos_ = 0;
            iter_++;
        }
    }
    return true;
}

std::size_t
TreeWalkSource::fill(std::span<MemRef> out)
{
    for (MemRef &ref : out)
        next(ref);
    return out.size();
}

void
TreeWalkSource::reset()
{
    pos_ = 0;
    accessIdx_ = 0;
    iter_ = 0;
}

//
// HashProbeSource
//

HashProbeSource::HashProbeSource(HashProbeParams params, std::string name)
    : params_(params), name_(std::move(name)), rng_(params.seed)
{
    ltc_assert(params_.blocks > 0, "HashProbeSource with zero blocks");
    // The hot subset cannot exceed the region; clamp so callers can
    // leave the default hotBlocks with small regions.
    params_.hotBlocks = std::min(params_.hotBlocks, params_.blocks);
    ltc_assert(params_.hotFraction >= 0.0 && params_.hotFraction <= 1.0,
               "hotFraction out of [0,1]");
    ltc_assert(params_.pcCount > 0, "HashProbeSource zero pcCount");
}

bool
HashProbeSource::next(MemRef &out)
{
    std::uint64_t block;
    if (params_.hotFraction > 0.0 && rng_.chance(params_.hotFraction))
        block = rng_.below(std::max<std::uint64_t>(1, params_.hotBlocks));
    else
        block = rng_.below(params_.blocks);

    out.pc = params_.pc + (count_ % params_.pcCount) * 4;
    out.addr = params_.base + block * params_.blockStride *
        defaultBlockSize;
    out.op = rng_.chance(params_.storeFraction) ? MemOp::Store
                                                : MemOp::Load;
    out.nonMemGap = params_.nonMemGap;
    out.dependsOnPrev = false;
    count_++;
    return true;
}

std::size_t
HashProbeSource::fill(std::span<MemRef> out)
{
    for (MemRef &ref : out)
        next(ref);
    return out.size();
}

void
HashProbeSource::reset()
{
    rng_.reseed(params_.seed);
    count_ = 0;
}

//
// InterleaveSource
//

InterleaveSource::InterleaveSource(
    std::vector<std::unique_ptr<TraceSource>> children,
    std::vector<std::uint32_t> chunks, std::string name)
    : children_(std::move(children)), chunks_(std::move(chunks)),
      name_(std::move(name))
{
    ltc_assert(!children_.empty(), "InterleaveSource with no children");
    ltc_assert(children_.size() == chunks_.size(),
               "InterleaveSource children/chunks size mismatch");
    for (auto c : chunks_)
        ltc_assert(c > 0, "InterleaveSource zero chunk length");
}

bool
InterleaveSource::next(MemRef &out)
{
    // A child that ends is skipped; the stream ends when all end.
    for (std::size_t attempts = 0; attempts < children_.size();
         attempts++) {
        if (children_[childIdx_]->next(out)) {
            if (++inChunk_ >= chunks_[childIdx_]) {
                inChunk_ = 0;
                childIdx_ = (childIdx_ + 1) % children_.size();
            }
            return true;
        }
        inChunk_ = 0;
        childIdx_ = (childIdx_ + 1) % children_.size();
    }
    return false;
}

std::size_t
InterleaveSource::fill(std::span<MemRef> out)
{
    // Delegate whole chunk remainders to each child's fill(), so the
    // per-record virtual hop is paid once per chunk, not per record.
    // End-of-stream mirrors next(): the stream ends once every child
    // fails to produce in consecutive attempts.
    std::size_t n = 0;
    std::size_t failed = 0;
    while (n < out.size() && failed < children_.size()) {
        const std::size_t want =
            std::min<std::size_t>(out.size() - n,
                                  chunks_[childIdx_] - inChunk_);
        const std::size_t got =
            children_[childIdx_]->fill(out.subspan(n, want));
        n += got;
        inChunk_ += static_cast<std::uint32_t>(got);
        if (got < want) {
            // This child ended; the attempt that discovered it counts
            // toward the all-children-exhausted condition.
            failed = got ? 1 : failed + 1;
            inChunk_ = 0;
            childIdx_ = (childIdx_ + 1) % children_.size();
        } else {
            failed = 0;
            if (inChunk_ >= chunks_[childIdx_]) {
                inChunk_ = 0;
                childIdx_ = (childIdx_ + 1) % children_.size();
            }
        }
    }
    return n;
}

void
InterleaveSource::reset()
{
    for (auto &c : children_)
        c->reset();
    childIdx_ = 0;
    inChunk_ = 0;
}

//
// PhaseSequenceSource
//

PhaseSequenceSource::PhaseSequenceSource(
    std::vector<std::unique_ptr<TraceSource>> children,
    std::vector<std::uint64_t> lengths, std::string name)
    : children_(std::move(children)), lengths_(std::move(lengths)),
      name_(std::move(name))
{
    ltc_assert(!children_.empty(), "PhaseSequenceSource with no children");
    ltc_assert(children_.size() == lengths_.size(),
               "PhaseSequenceSource children/lengths size mismatch");
    for (auto l : lengths_)
        ltc_assert(l > 0, "PhaseSequenceSource zero phase length");
}

bool
PhaseSequenceSource::next(MemRef &out)
{
    for (std::size_t attempts = 0; attempts <= children_.size();
         attempts++) {
        if (inPhase_ >= lengths_[childIdx_]) {
            inPhase_ = 0;
            childIdx_ = (childIdx_ + 1) % children_.size();
        }
        if (children_[childIdx_]->next(out)) {
            inPhase_++;
            return true;
        }
        // Child exhausted: move on.
        inPhase_ = lengths_[childIdx_];
    }
    return false;
}

std::size_t
PhaseSequenceSource::fill(std::span<MemRef> out)
{
    std::size_t n = 0;
    std::size_t failed = 0;
    while (n < out.size() && failed < children_.size()) {
        if (inPhase_ >= lengths_[childIdx_]) {
            inPhase_ = 0;
            childIdx_ = (childIdx_ + 1) % children_.size();
        }
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(out.size() - n,
                                    lengths_[childIdx_] - inPhase_));
        const std::size_t got =
            children_[childIdx_]->fill(out.subspan(n, want));
        n += got;
        inPhase_ += got;
        if (got < want) {
            failed = got ? 1 : failed + 1;
            inPhase_ = lengths_[childIdx_]; // child exhausted: move on
        } else {
            failed = 0;
        }
    }
    return n;
}

void
PhaseSequenceSource::reset()
{
    for (auto &c : children_)
        c->reset();
    childIdx_ = 0;
    inPhase_ = 0;
}

} // namespace ltc
