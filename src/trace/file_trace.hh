/**
 * @file
 * Binary trace file reader/writer.
 *
 * Lets users capture a reference stream once (e.g. from their own
 * instrumentation) and replay it through any engine in this library.
 * Format: 16-byte header ("LTCTRACE", version, record count) followed
 * by packed little-endian records.
 */

#ifndef LTC_TRACE_FILE_TRACE_HH
#define LTC_TRACE_FILE_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "util/types.hh"

namespace ltc
{

/** Write @p refs to @p path; fatal error on I/O failure. */
void writeTraceFile(const std::string &path,
                    const std::vector<MemRef> &refs);

/** Read an entire trace file; fatal error on malformed input. */
std::vector<MemRef> readTraceFile(const std::string &path);

/** TraceSource that replays a trace file (loaded eagerly). */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    bool next(MemRef &out) override;
    void reset() override { pos_ = 0; }
    std::string name() const override { return name_; }

    std::size_t size() const { return refs_.size(); }

  private:
    std::vector<MemRef> refs_;
    std::size_t pos_ = 0;
    std::string name_;
};

} // namespace ltc

#endif // LTC_TRACE_FILE_TRACE_HH
