/**
 * @file
 * Binary trace file reader/writer.
 *
 * Lets users capture a reference stream once (e.g. from their own
 * instrumentation) and replay it through any engine in this library.
 * writeTraceFile() produces the chunked, delta-compressed .ltct v2
 * container; readTraceFile() and FileTrace accept both v2 and the
 * legacy v1 eager format (see trace/trace_io.hh and
 * docs/TRACE_FORMAT.md). FileTrace replays through the streaming
 * reader, so its memory stays O(chunk) however long the trace is.
 */

#ifndef LTC_TRACE_FILE_TRACE_HH
#define LTC_TRACE_FILE_TRACE_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "util/types.hh"

namespace ltc
{

/** Write @p refs to @p path as a v2 container; fatal on I/O failure. */
void writeTraceFile(const std::string &path,
                    const std::vector<MemRef> &refs);

/**
 * Write @p refs in the legacy v1 eager format (16-byte header plus
 * fixed 22-byte records). Kept for compatibility tests and for
 * producing inputs to the v1 -> v2 conversion path; new traces should
 * use writeTraceFile() / StreamingTraceWriter.
 */
void writeTraceFileV1(const std::string &path,
                      const std::vector<MemRef> &refs);

/**
 * Read an entire trace file (v1 or v2).
 *
 * @param err When non-null, receives the typed result and the
 *        function returns the records decoded before any failure
 *        (malformed input is never fatal). When null, any failure is
 *        a fatal error - the historical convenience behaviour.
 */
std::vector<MemRef> readTraceFile(const std::string &path,
                                  TraceErrc *err = nullptr);

/**
 * TraceSource that replays a trace file through the streaming reader:
 * only one chunk of records is resident at a time. Construction
 * fatals on an unreadable header (a TraceSource has no error
 * channel); use StreamingTraceReader directly for typed errors.
 */
class FileTrace final : public TraceSource
{
  public:
    /** @param name Stats identifier; defaults to "file:<path>". */
    explicit FileTrace(const std::string &path, std::string name = "");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override { reader_->reset(); }
    std::string name() const override { return name_; }

    /** Total records in the file (from the container header). */
    std::size_t size() const { return reader_->records(); }

    /** The underlying streaming reader (memory-bound assertions). */
    const StreamingTraceReader &reader() const { return *reader_; }

  private:
    std::unique_ptr<StreamingTraceReader> reader_;
    std::string name_;
};

} // namespace ltc

#endif // LTC_TRACE_FILE_TRACE_HH
