#include "trace/workloads.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "trace/file_trace.hh"
#include "trace/primitives.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

namespace ltc
{

namespace
{

/** Scale a block count, keeping a sane minimum. */
std::uint64_t
sc(std::uint64_t blocks, double scale)
{
    const auto v =
        static_cast<std::uint64_t>(static_cast<double>(blocks) * scale);
    return std::max<std::uint64_t>(v, 16);
}

/** Region bases: structure i of a workload lives at 64MB * (i+1). */
constexpr Addr
region(unsigned i)
{
    return (static_cast<Addr>(i) + 1) << 26;
}

ScanArray
arr(unsigned reg, std::uint64_t blocks, std::uint32_t apb, Addr pc,
    std::uint64_t advance = 0)
{
    ScanArray a;
    a.base = region(reg);
    a.blocks = blocks;
    a.accessesPerBlock = apb;
    a.pc = pc;
    a.advancePerIter = advance;
    return a;
}

using SourcePtr = std::unique_ptr<TraceSource>;

SourcePtr
scans(std::vector<ScanArray> arrays, std::uint32_t gap,
      const std::string &name)
{
    return std::make_unique<StridedScanSource>(std::move(arrays), gap,
                                               name);
}

SourcePtr
chase(unsigned reg, std::uint64_t nodes, std::uint32_t apn,
      std::uint32_t gap, std::uint64_t seed, const std::string &name,
      std::uint64_t mutate_every = 0, double mutate_frac = 0.0)
{
    PointerChaseParams p;
    p.base = region(reg);
    p.nodes = nodes;
    p.accessesPerNode = apn;
    p.nonMemGap = gap;
    p.seed = seed;
    p.mutateEveryIters = mutate_every;
    p.mutateFraction = mutate_frac;
    p.pc = 0x2000 + reg * 0x100;
    return std::make_unique<PointerChaseSource>(p, name);
}

SourcePtr
tree(unsigned reg, std::uint64_t nodes, std::uint32_t apn, bool regular,
     std::uint32_t gap, std::uint64_t seed, const std::string &name)
{
    TreeWalkParams p;
    p.base = region(reg);
    p.nodes = nodes;
    p.accessesPerNode = apn;
    p.regularLayout = regular;
    p.nonMemGap = gap;
    p.seed = seed;
    p.pc = 0x3000 + reg * 0x100;
    return std::make_unique<TreeWalkSource>(p, name);
}

SourcePtr
hash(unsigned reg, std::uint64_t blocks, double hot_frac,
     std::uint64_t hot_blocks, std::uint32_t gap, std::uint64_t seed,
     const std::string &name)
{
    HashProbeParams p;
    p.base = region(reg);
    p.blocks = blocks;
    p.hotFraction = hot_frac;
    p.hotBlocks = std::min(hot_blocks, blocks);
    p.nonMemGap = gap;
    p.seed = seed;
    p.pc = 0x4000 + reg * 0x100;
    return std::make_unique<HashProbeSource>(p, name);
}

SourcePtr
mix(std::vector<SourcePtr> children, std::vector<std::uint32_t> chunks,
    const std::string &name)
{
    return std::make_unique<InterleaveSource>(std::move(children),
                                              std::move(chunks), name);
}

SourcePtr
phases(std::vector<SourcePtr> children, std::vector<std::uint64_t> lens,
       const std::string &name)
{
    return std::make_unique<PhaseSequenceSource>(std::move(children),
                                                 std::move(lens), name);
}

/** Recipe: build function + iteration length estimator. */
struct Recipe
{
    Suite suite;
    std::string description;
    SourcePtr (*build)(std::uint64_t seed, double scale);
    std::uint64_t (*refsPerIter)(double scale);
};

//
// Per-benchmark recipes. Block counts reflect a ~8x scale-down of the
// original footprints; miss-rate calibration is via accessesPerBlock
// (one block in a streaming structure misses once per sweep, so the
// L1D miss rate of that structure is ~1/accessesPerBlock).
//

SourcePtr
buildAmmp(std::uint64_t seed, double s)
{
    std::vector<SourcePtr> kids;
    kids.push_back(chase(0, sc(48 << 10, s), 6, 3, seed, "ammp.mol"));
    auto nb = [&] {
        HashProbeParams p;
        p.base = region(1);
        p.blocks = sc(8 << 10, s);
        p.hotFraction = 0.9;
        p.hotBlocks = 128; // fits the 64-set slice of a 2-way L1
        p.nonMemGap = 3;
        p.seed = seed + 1;
        p.pc = 0x4100;
        p.blockStride = 8; // confine pollution to 1/8 of the sets
        return std::make_unique<HashProbeSource>(p, "ammp.nb");
    }();
    kids.push_back(std::move(nb));
    return mix(std::move(kids), {6, 2}, "ammp");
}

SourcePtr
buildApplu(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    for (unsigned i = 0; i < 4; i++)
        as.push_back(arr(i, sc(64 << 10, s), 3, 0x1000 + i * 0x40));
    return scans(std::move(as), 6, "applu");
}

SourcePtr
buildApsi(std::uint64_t seed, double s)
{
    (void)seed;
    // Phase B advances its window every sweep: its last-touch
    // sequences never recur (the paper calls out apsi for exactly
    // this: signatures recorded once and never reused).
    std::vector<SourcePtr> kids;
    kids.push_back(
        scans({arr(0, sc(8 << 10, s), 16, 0x1100)}, 4, "apsi.reuse"));
    kids.push_back(scans({arr(1, sc(16 << 10, s), 16, 0x1200,
                              sc(16 << 10, s) * defaultBlockSize)},
                         4, "apsi.fresh"));
    return phases(std::move(kids), {128 << 10, 256 << 10}, "apsi");
}

SourcePtr
buildArt(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    as.push_back(arr(0, sc(32 << 10, s), 2, 0x1000));
    as.push_back(arr(1, sc(32 << 10, s), 2, 0x1040));
    as.push_back(arr(2, sc(16 << 10, s), 1, 0x1080));
    return scans(std::move(as), 5, "art");
}

SourcePtr
buildBh(std::uint64_t seed, double s)
{
    return tree(0, sc(48 << 10, s), 14, false, 6, seed, "bh");
}

SourcePtr
buildBzip2(std::uint64_t seed, double s)
{
    return hash(0, sc(24 << 10, s), 0.93, 512, 7, seed, "bzip2");
}

SourcePtr
buildCrafty(std::uint64_t seed, double s)
{
    (void)seed;
    (void)s; // footprint deliberately fits L1 regardless of scale
    return scans({arr(0, 768, 8, 0x1000)}, 8, "crafty");
}

SourcePtr
buildEm3d(std::uint64_t seed, double s)
{
    std::vector<SourcePtr> kids;
    kids.push_back(chase(0, sc(128 << 10, s), 1, 2, seed, "em3d.graph"));
    kids.push_back(scans({arr(1, 512, 1, 0x1200)}, 2, "em3d.coef"));
    return mix(std::move(kids), {2, 1}, "em3d");
}

SourcePtr
buildEon(std::uint64_t seed, double s)
{
    (void)seed;
    (void)s;
    return scans({arr(0, 512, 6, 0x1000)}, 10, "eon");
}

SourcePtr
buildEquake(std::uint64_t seed, double s)
{
    // Period alignment: mesh = 3*48K*3 = 432K refs at 4/5 of the
    // stream (108K interleave rounds per sweep); the chase's 108K
    // refs at 1/5 complete one traversal in the same 108K rounds, so
    // the combined reference sequence repeats every 540K refs.
    std::vector<SourcePtr> kids;
    std::vector<ScanArray> as;
    for (unsigned i = 0; i < 3; i++)
        as.push_back(arr(i, sc(48 << 10, s), 3, 0x1000 + i * 0x40));
    kids.push_back(scans(std::move(as), 3, "equake.mesh"));
    kids.push_back(chase(3, sc(27 << 10, s), 4, 3, seed, "equake.col"));
    return mix(std::move(kids), {4, 1}, "equake");
}

SourcePtr
buildFacerec(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    as.push_back(arr(0, sc(32 << 10, s), 4, 0x1000));
    as.push_back(arr(1, sc(32 << 10, s), 4, 0x1040));
    as.push_back(arr(2, 512, 4, 0x1080));
    return scans(std::move(as), 4, "facerec");
}

SourcePtr
buildFma3d(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    for (unsigned i = 0; i < 6; i++)
        as.push_back(arr(i, sc(16 << 10, s), 9, 0x1000 + i * 0x40));
    return scans(std::move(as), 5, "fma3d");
}

SourcePtr
buildGalgel(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    as.push_back(arr(0, sc(24 << 10, s), 6, 0x1000));
    as.push_back(arr(1, sc(24 << 10, s), 6, 0x1040));
    as.push_back(arr(2, sc(8 << 10, s), 6, 0x1080));
    return scans(std::move(as), 3, "galgel");
}

SourcePtr
buildGap(std::uint64_t seed, double s)
{
    (void)seed;
    // Streaming over fresh memory each sweep: regular layout, almost
    // no reuse. Delta correlation captures it; address correlation
    // cannot (addresses never recur).
    const std::uint64_t blocks = sc(32 << 10, s);
    return scans({arr(0, blocks, 16, 0x1000,
                      blocks * defaultBlockSize)},
                 6, "gap");
}

SourcePtr
buildGcc(std::uint64_t seed, double s)
{
    // Aligned periods: chase 6K*2 = 12K refs at 3/6 and scan
    // 4K*2 = 8K refs at 2/6 both complete in 4K interleave rounds.
    // Total footprint ~13K blocks (~830KB) stays inside the 1MB L2:
    // gcc's misses are L1 misses that mostly hit in L2 (Table 2 has
    // gcc at 38% L1 / 3% L2 misses), where last-touch prefetching
    // wins by overlapping dependent chains.
    std::vector<SourcePtr> kids;
    kids.push_back(chase(0, sc(6 << 10, s), 2, 5, seed, "gcc.ir"));
    auto sym = [&] {
        HashProbeParams p;
        p.base = region(1);
        p.blocks = sc(3 << 10, s);
        p.hotFraction = 0.6;
        p.hotBlocks = 128;
        p.nonMemGap = 5;
        p.seed = seed + 1;
        p.pc = 0x4100;
        p.blockStride = 4;
        return std::make_unique<HashProbeSource>(p, "gcc.sym");
    }();
    kids.push_back(std::move(sym));
    kids.push_back(scans({arr(2, sc(4 << 10, s), 2, 0x1200)}, 5,
                         "gcc.rtl"));
    return mix(std::move(kids), {3, 1, 2}, "gcc");
}

SourcePtr
buildGzip(std::uint64_t seed, double s)
{
    return hash(0, sc(12 << 10, s), 0.95, 768, 8, seed, "gzip");
}

SourcePtr
buildLucas(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    as.push_back(arr(0, sc(128 << 10, s), 2, 0x1000));
    as.push_back(arr(1, sc(128 << 10, s), 2, 0x1040));
    return scans(std::move(as), 6, "lucas");
}

SourcePtr
buildMcf(std::uint64_t seed, double s)
{
    // Large arc-network chase plus a small, frequently revisited
    // working set: the small set's signatures fit a 2MB DBCP table,
    // which is why the paper's DBCP does well on mcf.
    // Aligned periods: arcs 84K*2 = 168K refs at 6/7 and nodes
    // 28K*1 = 28K refs at 1/7 both complete in 28K interleave rounds,
    // so the combined sequence repeats every 196K refs. The ~112K
    // total signatures fit the scaled realistic DBCP table while the
    // ~7MB data footprint exceeds even the 4MB L2 -- the paper's
    // "large memory footprint but small working set" property that
    // lets DBCP do well on mcf.
    std::vector<SourcePtr> kids;
    kids.push_back(chase(0, sc(84 << 10, s), 2, 2, seed, "mcf.arcs"));
    kids.push_back(chase(4, sc(28 << 10, s), 1, 2, seed + 1,
                         "mcf.nodes"));
    return mix(std::move(kids), {6, 1}, "mcf");
}

SourcePtr
buildMesa(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<SourcePtr> kids;
    kids.push_back(scans({arr(0, 640, 8, 0x1000)}, 8, "mesa.hot"));
    kids.push_back(
        scans({arr(1, sc(8 << 10, s), 8, 0x1100)}, 8, "mesa.tex"));
    return phases(std::move(kids), {256 << 10, 64 << 10}, "mesa");
}

SourcePtr
buildMgrid(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    as.push_back(arr(0, sc(128 << 10, s), 5, 0x1000));
    as.push_back(arr(1, sc(32 << 10, s), 5, 0x1040));
    as.push_back(arr(2, sc(8 << 10, s), 5, 0x1080));
    return scans(std::move(as), 6, "mgrid");
}

SourcePtr
buildParser(std::uint64_t seed, double s)
{
    std::vector<SourcePtr> kids;
    kids.push_back(chase(0, sc(24 << 10, s), 8, 5, seed, "parser.dict",
                         /*mutate_every=*/2, /*mutate_frac=*/0.15));
    auto ph = [&] {
        HashProbeParams p;
        p.base = region(1);
        p.blocks = sc(4 << 10, s);
        p.hotFraction = 0.85;
        p.hotBlocks = 64;
        p.nonMemGap = 5;
        p.seed = seed + 1;
        p.pc = 0x4100;
        p.blockStride = 8;
        return std::make_unique<HashProbeSource>(p, "parser.hash");
    }();
    kids.push_back(std::move(ph));
    return mix(std::move(kids), {5, 1}, "parser");
}

SourcePtr
buildPerlbmk(std::uint64_t seed, double s)
{
    std::vector<SourcePtr> kids;
    kids.push_back(chase(0, sc(6 << 10, s), 6, 7, seed, "perl.sv"));
    auto hv = [&] {
        HashProbeParams p;
        p.base = region(1);
        p.blocks = sc(2 << 10, s);
        p.hotFraction = 0.8;
        p.hotBlocks = 128;
        p.nonMemGap = 7;
        p.seed = seed + 1;
        p.pc = 0x4100;
        p.blockStride = 8;
        return std::make_unique<HashProbeSource>(p, "perl.hv");
    }();
    kids.push_back(std::move(hv));
    return mix(std::move(kids), {4, 1}, "perlbmk");
}

SourcePtr
buildSixtrack(std::uint64_t seed, double s)
{
    (void)seed;
    (void)s;
    std::vector<ScanArray> as;
    as.push_back(arr(0, 2048, 8, 0x1000));
    as.push_back(arr(1, 512, 8, 0x1040));
    return scans(std::move(as), 10, "sixtrack");
}

SourcePtr
buildSwim(std::uint64_t seed, double s)
{
    (void)seed;
    std::vector<ScanArray> as;
    for (unsigned i = 0; i < 3; i++)
        as.push_back(arr(i, sc(96 << 10, s), 2, 0x1000 + i * 0x40));
    return scans(std::move(as), 6, "swim");
}

SourcePtr
buildTreeadd(std::uint64_t seed, double s)
{
    return tree(0, sc(48 << 10, s) | 1, 12, true, 4, seed, "treeadd");
}

SourcePtr
buildTwolf(std::uint64_t seed, double s)
{
    return hash(0, sc(6 << 10, s), 0.55, 768, 5, seed, "twolf");
}

SourcePtr
buildVortex(std::uint64_t seed, double s)
{
    // Aligned periods: obj 8K*4 = 32K refs at 4/5, db 2K*4 = 8K refs
    // at 1/5; both complete in 8K interleave rounds.
    std::vector<SourcePtr> kids;
    kids.push_back(chase(0, sc(8 << 10, s), 4, 6, seed, "vortex.obj"));
    kids.push_back(
        scans({arr(1, sc(2 << 10, s), 4, 0x1100)}, 6, "vortex.db"));
    return mix(std::move(kids), {4, 1}, "vortex");
}

SourcePtr
buildWupwise(std::uint64_t seed, double s)
{
    (void)seed;
    // Many distinct arrays touched by many distinct PCs: the largest
    // last-touch signature footprint in the suite, which makes
    // wupwise the worst case for a finite DBCP table (Fig. 4).
    std::vector<ScanArray> as;
    for (unsigned i = 0; i < 16; i++)
        as.push_back(arr(i, sc(20 << 10, s), 5, 0x1000 + i * 0x80));
    return scans(std::move(as), 5, "wupwise");
}

//
// refs-per-iteration estimators (dominant loop length in references).
//

std::uint64_t
itersAmmp(double s)
{
    return sc(48 << 10, s) * 6 * 8 / 6;
}
std::uint64_t
itersApplu(double s)
{
    return 4 * sc(64 << 10, s) * 3;
}
std::uint64_t
itersApsi(double s)
{
    return sc(8 << 10, s) * 16;
}
std::uint64_t
itersArt(double s)
{
    return sc(32 << 10, s) * 4 + sc(16 << 10, s);
}
std::uint64_t
itersBh(double s)
{
    return sc(48 << 10, s) * 14;
}
std::uint64_t
itersBzip2(double)
{
    return 256 << 10;
}
std::uint64_t
itersCrafty(double)
{
    return 768 * 8;
}
std::uint64_t
itersEm3d(double s)
{
    return sc(128 << 10, s) * 3 / 2;
}
std::uint64_t
itersEon(double)
{
    return 512 * 6;
}
std::uint64_t
itersEquake(double s)
{
    return 3 * sc(48 << 10, s) * 3 * 5 / 4;
}
std::uint64_t
itersFacerec(double s)
{
    return 2 * sc(32 << 10, s) * 4;
}
std::uint64_t
itersFma3d(double s)
{
    return 6 * sc(16 << 10, s) * 9;
}
std::uint64_t
itersGalgel(double s)
{
    return (2 * sc(24 << 10, s) + sc(8 << 10, s)) * 6;
}
std::uint64_t
itersGap(double s)
{
    return sc(32 << 10, s) * 16;
}
std::uint64_t
itersGcc(double s)
{
    return sc(6 << 10, s) * 2 * 2;
}
std::uint64_t
itersGzip(double)
{
    return 256 << 10;
}
std::uint64_t
itersLucas(double s)
{
    return 2 * sc(128 << 10, s) * 2;
}
std::uint64_t
itersMcf(double s)
{
    return sc(84 << 10, s) * 2 * 7 / 6;
}
std::uint64_t
itersMesa(double)
{
    return 640 << 10;
}
std::uint64_t
itersMgrid(double s)
{
    return (sc(128 << 10, s) + sc(32 << 10, s) + sc(8 << 10, s)) * 5;
}
std::uint64_t
itersParser(double s)
{
    return sc(24 << 10, s) * 8 * 6 / 5;
}
std::uint64_t
itersPerlbmk(double s)
{
    return sc(6 << 10, s) * 6 * 5 / 4;
}
std::uint64_t
itersSixtrack(double)
{
    return 2560 * 8;
}
std::uint64_t
itersSwim(double s)
{
    return 3 * sc(96 << 10, s) * 2;
}
std::uint64_t
itersTreeadd(double s)
{
    return (sc(48 << 10, s) | 1) * 12;
}
std::uint64_t
itersTwolf(double)
{
    return 128 << 10;
}
std::uint64_t
itersVortex(double s)
{
    return sc(8 << 10, s) * 4 * 5 / 4;
}
std::uint64_t
itersWupwise(double s)
{
    return 16 * sc(20 << 10, s) * 5;
}

struct NamedRecipe
{
    const char *name;
    Recipe recipe;
};

const NamedRecipe recipes[] = {
    {"ammp",
     {Suite::SPECfp,
      "molecular chase + neighbour-list hash (partially correlated)",
      buildAmmp, itersAmmp}},
    {"applu",
     {Suite::SPECfp, "4 large solver arrays, 3 accesses/block",
      buildApplu, itersApplu}},
    {"apsi",
     {Suite::SPECfp, "reused grid + advancing window (non-recurring)",
      buildApsi, itersApsi}},
    {"art",
     {Suite::SPECfp, "neural-net weight scans, very high miss rate",
      buildArt, itersArt}},
    {"bh",
     {Suite::Olden, "irregular-layout Barnes-Hut tree walk", buildBh,
      itersBh}},
    {"bzip2",
     {Suite::SPECint, "hashed probing, small hot set (uncorrelated)",
      buildBzip2, itersBzip2}},
    {"crafty",
     {Suite::SPECint, "board state fits L1", buildCrafty, itersCrafty}},
    {"em3d",
     {Suite::Olden, "dependent graph chase + coefficient array",
      buildEm3d, itersEm3d}},
    {"eon",
     {Suite::SPECint, "scene data fits L1", buildEon, itersEon}},
    {"equake",
     {Suite::SPECfp, "sparse mesh scans + column chase", buildEquake,
      itersEquake}},
    {"facerec",
     {Suite::SPECfp, "image/gallery scans, modest footprint",
      buildFacerec, itersFacerec}},
    {"fma3d",
     {Suite::SPECfp, "6 element arrays, long recurring sequences",
      buildFma3d, itersFma3d}},
    {"galgel",
     {Suite::SPECfp, "blocked matrix scans, partial L2 residence",
      buildGalgel, itersGalgel}},
    {"gap",
     {Suite::SPECint, "streaming over fresh memory (no address reuse)",
      buildGap, itersGap}},
    {"gcc",
     {Suite::SPECint, "IR chase + symbol hash + RTL scan (mixed)",
      buildGcc, itersGcc}},
    {"gzip",
     {Suite::SPECint, "hashed window probing (uncorrelated)", buildGzip,
      itersGzip}},
    {"lucas",
     {Suite::SPECfp, "two huge FFT arrays (largest storage demand)",
      buildLucas, itersLucas}},
    {"mcf",
     {Suite::SPECint, "arc-network chase + hot node list", buildMcf,
      itersMcf}},
    {"mesa",
     {Suite::SPECfp, "hot rasteriser state + rare texture sweeps",
      buildMesa, itersMesa}},
    {"mgrid",
     {Suite::SPECfp, "multigrid levels, large footprint", buildMgrid,
      itersMgrid}},
    {"parser",
     {Suite::SPECint, "dictionary chase with mutation + hash",
      buildParser, itersParser}},
    {"perlbmk",
     {Suite::SPECint, "small SV chase + hot hash", buildPerlbmk,
      itersPerlbmk}},
    {"sixtrack",
     {Suite::SPECfp, "small tracking arrays, near-zero misses",
      buildSixtrack, itersSixtrack}},
    {"swim",
     {Suite::SPECfp, "3 grid arrays, 2 accesses/block", buildSwim,
      itersSwim}},
    {"treeadd",
     {Suite::Olden, "regular-layout tree walk (delta-predictable)",
      buildTreeadd, itersTreeadd}},
    {"twolf",
     {Suite::SPECint, "randomised placement probing", buildTwolf,
      itersTwolf}},
    {"vortex",
     {Suite::SPECint, "object chase + database scan", buildVortex,
      itersVortex}},
    {"wupwise",
     {Suite::SPECfp, "16 arrays x 11 PCs: largest signature footprint",
      buildWupwise, itersWupwise}},
};

const Recipe *
findRecipe(const std::string &name)
{
    for (const auto &nr : recipes)
        if (name == nr.name)
            return &nr.recipe;
    return nullptr;
}

/** Registry prefix for file-backed workloads. */
constexpr const char traceNamePrefix[] = "trace:";

/** Guards the discovery cache and the setTraceDir() override. */
std::mutex &
traceDirMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::string &
traceDirOverride()
{
    static std::string dir;
    return dir;
}

/**
 * Scan @p dir for .ltct containers. Workers of a runner sweep may
 * race into the first lookup, so the per-directory cache is guarded;
 * after the first scan every call is a cheap map hit. Only the
 * container header is read per file, so discovery stays O(1) I/O
 * however long the captured traces are.
 */
const std::vector<TraceWorkload> &
scanTraceDir(const std::string &dir)
{
    static std::map<std::string, std::vector<TraceWorkload>> cache;

    std::lock_guard<std::mutex> lock(traceDirMutex());
    auto it = cache.find(dir);
    if (it != cache.end())
        return it->second;

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator entries(dir, ec);
    if (ec)
        ltc_fatal("LTC_TRACE_DIR: cannot open directory '", dir,
                  "': ", ec.message());

    std::vector<TraceWorkload> found;
    for (const auto &entry : entries) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".ltct") {
            continue;
        }
        TraceFileInfo info;
        const TraceErrc errc =
            probeTraceHeader(entry.path().string(), info);
        if (errc != TraceErrc::Ok) {
            ltc_fatal("LTC_TRACE_DIR: bad trace file ",
                      entry.path().string(), ": ",
                      traceErrcMessage(errc));
        }
        TraceWorkload w;
        w.info.name = traceNamePrefix + entry.path().stem().string();
        w.info.suite = Suite::Captured;
        w.info.description = "captured trace (" +
            entry.path().filename().string() + ", " +
            std::to_string(info.records) + " refs, v" +
            std::to_string(info.version) + ")";
        w.info.refsPerIteration = std::max<std::uint64_t>(
            info.records, 1);
        w.path = entry.path().string();
        found.push_back(std::move(w));
    }
    std::sort(found.begin(), found.end(),
              [](const TraceWorkload &a, const TraceWorkload &b) {
                  return a.info.name < b.info.name;
              });
    return cache.emplace(dir, std::move(found)).first->second;
}

/** The TraceWorkload registered as @p name, or nullptr. */
const TraceWorkload *
findTraceWorkload(const std::string &name)
{
    if (name.rfind(traceNamePrefix, 0) != 0)
        return nullptr;
    for (const auto &w : fileWorkloads())
        if (w.info.name == name)
            return &w;
    return nullptr;
}

} // namespace

void
setTraceDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(traceDirMutex());
    traceDirOverride() = dir;
}

std::string
traceDir()
{
    {
        std::lock_guard<std::mutex> lock(traceDirMutex());
        if (!traceDirOverride().empty())
            return traceDirOverride();
    }
    const char *env = std::getenv("LTC_TRACE_DIR");
    return (env && *env) ? env : "";
}

const std::vector<TraceWorkload> &
fileWorkloads()
{
    const std::string dir = traceDir();
    if (dir.empty()) {
        static const std::vector<TraceWorkload> empty;
        return empty;
    }
    return scanTraceDir(dir);
}

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::SPECint:
        return "SPECint";
      case Suite::SPECfp:
        return "SPECfp";
      case Suite::Olden:
        return "Olden";
      case Suite::Captured:
        return "trace";
    }
    return "?";
}

const std::vector<WorkloadInfo> &
workloadCatalog()
{
    static const std::vector<WorkloadInfo> catalogue = [] {
        std::vector<WorkloadInfo> v;
        for (const auto &nr : recipes) {
            v.push_back({nr.name, nr.recipe.suite, nr.recipe.description,
                         nr.recipe.refsPerIter(1.0)});
        }
        return v;
    }();
    return catalogue;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &info : workloadCatalog())
        names.push_back(info.name);
    for (const auto &w : fileWorkloads())
        names.push_back(w.info.name);
    return names;
}

const WorkloadInfo &
workloadInfo(const std::string &name)
{
    for (const auto &info : workloadCatalog())
        if (info.name == name)
            return info;
    if (const TraceWorkload *w = findTraceWorkload(name))
        return w->info;
    ltc_fatal("unknown workload '", name, "'");
}

bool
isWorkload(const std::string &name)
{
    return findRecipe(name) != nullptr ||
        findTraceWorkload(name) != nullptr;
}

std::unique_ptr<TraceSource>
makeWorkload(const std::string &name, std::uint64_t seed, double scale)
{
    if (const TraceWorkload *w = findTraceWorkload(name)) {
        // A captured trace is immutable: seed and scale are
        // meaningless for it by design.
        (void)seed;
        (void)scale;
        return std::make_unique<FileTrace>(w->path, w->info.name);
    }
    const Recipe *recipe = findRecipe(name);
    if (!recipe)
        ltc_fatal("unknown workload '", name, "'");
    if (scale <= 0.0)
        ltc_fatal("workload scale must be positive, got ", scale);
    return recipe->build(seed, scale);
}

std::vector<std::string>
selectedWorkloads()
{
    const char *env = std::getenv("LTC_WORKLOADS");
    std::string spec = env ? env : "all";
    if (spec == "all" || spec.empty())
        return workloadNames();
    if (spec == "quick") {
        return {"swim",    "mcf",  "gcc",     "em3d",
                "treeadd", "gzip", "wupwise", "facerec"};
    }
    std::vector<std::string> names;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        if (!isWorkload(item))
            ltc_fatal("LTC_WORKLOADS: unknown workload '", item, "'");
        names.push_back(item);
    }
    if (names.empty())
        ltc_fatal("LTC_WORKLOADS: no workloads selected");
    return names;
}

std::uint64_t
suggestedRefs(const std::string &name)
{
    const WorkloadInfo &info = workloadInfo(name);
    // A captured trace is finite: replay exactly what was recorded
    // rather than the synthetic generators' training-window heuristic.
    if (info.suite == Suite::Captured)
        return info.refsPerIteration;
    const std::uint64_t want = 6 * info.refsPerIteration;
    return std::clamp<std::uint64_t>(want, 1'500'000, 10'000'000);
}

std::uint64_t
refBudget(std::uint64_t fallback)
{
    const char *env = std::getenv("LTC_REFS");
    if (!env)
        return fallback;
    char *end = nullptr;
    const auto v = std::strtoull(env, &end, 10);
    if (end == env || v == 0)
        ltc_fatal("LTC_REFS: invalid value '", env, "'");
    // Allow suffixes k/m/g.
    std::uint64_t mult = 1;
    if (*end == 'k' || *end == 'K')
        mult = 1000;
    else if (*end == 'm' || *end == 'M')
        mult = 1000 * 1000;
    else if (*end == 'g' || *end == 'G')
        mult = 1000 * 1000 * 1000;
    else if (*end != '\0')
        ltc_fatal("LTC_REFS: invalid suffix '", end, "'");
    return v * mult;
}

} // namespace ltc
