/**
 * @file
 * Access-pattern primitives for synthetic workload generation.
 *
 * The paper's results are driven entirely by properties of each
 * benchmark's L1D reference stream: footprint, temporal correlation of
 * the miss sequence, last-touch/miss reordering, dependence structure
 * (pointer chasing vs array code) and memory intensity. These
 * primitives reproduce those properties directly:
 *
 *  - StridedScanSource: SPECfp-style loop nests sweeping arrays, with
 *    an optional per-iteration base advance to model streaming code
 *    with no data reuse (gap-like).
 *  - PointerChaseSource: linked-list traversal over a static (or
 *    occasionally mutated) layout; misses are data-dependent, the
 *    pattern delta-correlation cannot capture (mcf/em3d-like).
 *  - TreeWalkSource: repeated DFS over a binary tree with either a
 *    systematic-heap (regular, treeadd-like) or shuffled (irregular,
 *    bh-like) layout.
 *  - HashProbeSource: uniformly random probing with an optional hot
 *    subset; produces the uncorrelated streams of gzip/bzip2/twolf.
 *  - InterleaveSource / PhaseSequenceSource: deterministic composition
 *    into multi-structure and multi-phase programs.
 *
 * All primitives are deterministic: reset() replays the identical
 * stream (mutating sources replay the identical mutation schedule).
 */

#ifndef LTC_TRACE_PRIMITIVES_HH
#define LTC_TRACE_PRIMITIVES_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace ltc
{

/** Cache block size assumed by footprint-oriented parameters. */
constexpr std::uint64_t defaultBlockSize = 64;

/** One array swept by a StridedScanSource. */
struct ScanArray
{
    Addr base = 0;              //!< first byte of the array
    std::uint64_t blocks = 0;   //!< length in cache blocks
    /** References emitted per block (distinct word offsets). */
    std::uint32_t accessesPerBlock = 1;
    /** Base advances by this many bytes each full sweep (0 = reuse). */
    std::uint64_t advancePerIter = 0;
    /** Wrap the advancing window after this many bytes (0 = 1GB). */
    std::uint64_t wrapBytes = 0;
    Addr pc = 0x1000;           //!< PC of the loop's load instruction
    bool stores = false;        //!< emit stores instead of loads
};

/**
 * Sweeps a list of arrays in order, forever. Each outer iteration
 * repeats the identical block sequence (unless advancePerIter moves
 * the window), producing the perfectly temporally-correlated miss
 * streams of SPECfp loop nests.
 */
class StridedScanSource final : public TraceSource
{
  public:
    StridedScanSource(std::vector<ScanArray> arrays,
                      std::uint32_t non_mem_gap,
                      std::string name = "scan");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return name_; }

    /** Number of completed full sweeps over all arrays. */
    std::uint64_t iterations() const { return iter_; }

  private:
    std::vector<ScanArray> arrays_;
    std::uint32_t gap_;
    std::string name_;

    std::size_t arrayIdx_ = 0;
    std::uint64_t blockIdx_ = 0;
    std::uint32_t accessIdx_ = 0;
    std::uint64_t iter_ = 0;
};

/** Parameters for a linked-list traversal source. */
struct PointerChaseParams
{
    Addr base = 0x10000000;
    std::uint64_t nodes = 1 << 16;  //!< one node = one cache block
    std::uint64_t nodeBytes = defaultBlockSize;
    /** References per visited node (header + payload words). */
    std::uint32_t accessesPerNode = 1;
    std::uint64_t seed = 1;
    /** Fraction of links randomised; 0 keeps the list in layout order. */
    double shuffle = 1.0;
    /** Every N traversals, relink a fraction of nodes (0 = never). */
    std::uint64_t mutateEveryIters = 0;
    double mutateFraction = 0.0;
    std::uint32_t nonMemGap = 4;
    Addr pc = 0x2000;
};

/**
 * Traverses a singly-linked list (a permutation cycle over all nodes)
 * from a fixed head, forever. Every reference is marked
 * dependsOnPrev: the *simulated* machine loads each next address from
 * the current node, so the baseline machine cannot overlap these
 * misses. The generator itself, however, keeps the traversal as a
 * precomputed visit-order array rather than successor links: emitting
 * a batch is then a sequential, prefetch-friendly sweep of that array
 * instead of a data-dependent pointer chase, so generating an
 * mcf/em3d-style stream is no longer bound by one cache-miss latency
 * per simulated node. Optional periodic mutation models
 * data-structure updates that make recorded last-touch signatures
 * stale (Section 3.2); mutations rewrite the visit order in place.
 */
class PointerChaseSource final : public TraceSource
{
  public:
    explicit PointerChaseSource(PointerChaseParams params,
                                std::string name = "chase");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return name_; }

    std::uint64_t iterations() const { return iter_; }

    /** Address of node @p i (for tests). */
    Addr nodeAddr(std::uint64_t i) const;

  private:
    void buildChain();
    void mutate();

    PointerChaseParams params_;
    std::string name_;
    Rng rng_;
    /**
     * order_[k] = index of the k-th node the traversal visits; the
     * successor of order_[k] is order_[k+1] (wrapping), so this is
     * exactly the permutation cycle the simulated list encodes.
     */
    std::vector<std::uint32_t> order_;
    std::uint64_t pos_ = 0;
    std::uint32_t accessIdx_ = 0;
    std::uint64_t iter_ = 0;
};

/** Parameters for a binary-tree traversal source. */
struct TreeWalkParams
{
    Addr base = 0x20000000;
    std::uint64_t nodes = (1 << 16) - 1; //!< complete tree: 2^k - 1
    std::uint64_t nodeBytes = defaultBlockSize;
    /** Systematic heap allocation: node i at base + i*nodeBytes. */
    bool regularLayout = true;
    std::uint64_t seed = 1;
    std::uint32_t accessesPerNode = 1;
    std::uint32_t nonMemGap = 6;
    Addr pc = 0x3000;
};

/**
 * Repeated depth-first (pre-order) traversal of a complete binary
 * tree. With regularLayout the node order is also address-sequential
 * on allocation (treeadd's systematic heap, which delta prefetchers
 * can capture); with a shuffled layout addresses are irregular and
 * only address correlation works (bh-like).
 */
class TreeWalkSource final : public TraceSource
{
  public:
    explicit TreeWalkSource(TreeWalkParams params,
                            std::string name = "tree");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return name_; }

    std::uint64_t iterations() const { return iter_; }

  private:
    TreeWalkParams params_;
    std::string name_;
    /** placement_[i] = layout slot of tree node i. */
    std::vector<std::uint32_t> placement_;
    /** DFS pre-order of node indices, precomputed once. */
    std::vector<std::uint32_t> order_;
    std::uint64_t pos_ = 0;
    std::uint32_t accessIdx_ = 0;
    std::uint64_t iter_ = 0;
};

/** Parameters for a hash-probe (random access) source. */
struct HashProbeParams
{
    Addr base = 0x40000000;
    std::uint64_t blocks = 1 << 14;
    /**
     * Spacing between probed blocks. Values > 1 confine the probed
     * region to every Nth cache set, modelling hashed structures that
     * occupy a slice of the index space (and bounding how much an
     * uncorrelated component pollutes the per-set PC traces of the
     * correlated structures it is mixed with).
     */
    std::uint64_t blockStride = 1;
    /** Fraction of probes directed at the hot subset. */
    double hotFraction = 0.0;
    std::uint64_t hotBlocks = 256;
    std::uint64_t seed = 7;
    std::uint32_t nonMemGap = 10;
    Addr pc = 0x4000;
    std::uint32_t pcCount = 8;   //!< rotate probes over this many PCs
    double storeFraction = 0.2;
};

/**
 * Uniformly random block probing, optionally biased toward a small
 * hot region. The random walk never repeats, so its miss stream has
 * (by construction) no temporal correlation: the gzip/bzip2/twolf
 * class that no address-correlating predictor can cover.
 */
class HashProbeSource final : public TraceSource
{
  public:
    explicit HashProbeSource(HashProbeParams params,
                             std::string name = "hash");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return name_; }

  private:
    HashProbeParams params_;
    std::string name_;
    Rng rng_;
    std::uint64_t count_ = 0;
};

/**
 * Deterministic chunked interleave of several children: emits
 * chunk[i] records from child i, then moves to child i+1, round-robin
 * forever. Models independent structures whose access sequences
 * interleave — the case where per-stream delta correlation fails but
 * address correlation still works (Section 2).
 */
class InterleaveSource final : public TraceSource
{
  public:
    InterleaveSource(std::vector<std::unique_ptr<TraceSource>> children,
                     std::vector<std::uint32_t> chunks,
                     std::string name = "interleave");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return name_; }

  private:
    std::vector<std::unique_ptr<TraceSource>> children_;
    std::vector<std::uint32_t> chunks_;
    std::string name_;
    std::size_t childIdx_ = 0;
    std::uint32_t inChunk_ = 0;
};

/**
 * Sequential phases: child i runs for length[i] records, then the
 * next child, cycling forever. Models program phase behaviour
 * (compute phase, update phase, ...).
 */
class PhaseSequenceSource final : public TraceSource
{
  public:
    PhaseSequenceSource(std::vector<std::unique_ptr<TraceSource>> children,
                        std::vector<std::uint64_t> lengths,
                        std::string name = "phases");

    bool next(MemRef &out) override;
    std::size_t fill(std::span<MemRef> out) override;
    void reset() override;
    std::string name() const override { return name_; }

  private:
    std::vector<std::unique_ptr<TraceSource>> children_;
    std::vector<std::uint64_t> lengths_;
    std::string name_;
    std::size_t childIdx_ = 0;
    std::uint64_t inPhase_ = 0;
};

} // namespace ltc

#endif // LTC_TRACE_PRIMITIVES_HH
