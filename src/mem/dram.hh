/**
 * @file
 * Main-memory latency model.
 *
 * Table 1: "200 cycles first 32B, 3 cycles each additional 32B" over a
 * 1GB (30-bit) space. The same DRAM stores the LT-cords sequence
 * frames; signature reads and writes use the same latency function.
 */

#ifndef LTC_MEM_DRAM_HH
#define LTC_MEM_DRAM_HH

#include <cstdint>

#include "util/types.hh"

namespace ltc
{

/** DRAM access-latency configuration. */
struct DramConfig
{
    Cycle firstChunkCycles = 200;
    Cycle nextChunkCycles = 3;
    std::uint32_t chunkBytes = 32;
    /** Physical space (checking only; 30-bit per Table 1). */
    std::uint32_t addressBits = 30;
};

/** Stateless latency calculator with simple traffic counters. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config = DramConfig{});

    /** Latency to deliver @p bytes (critical-word-first not modelled). */
    Cycle
    latency(std::uint32_t bytes) const
    {
        if (bytes == 0)
            return 0;
        const std::uint64_t chunks =
            (bytes + config_.chunkBytes - 1) / config_.chunkBytes;
        return config_.firstChunkCycles +
            (chunks - 1) * config_.nextChunkCycles;
    }

    /** Record a read of @p bytes and return its latency. */
    Cycle
    read(std::uint32_t bytes)
    {
        bytesRead_ += bytes;
        return latency(bytes);
    }

    /**
     * Record a read of @p bytes whose latency the caller computed
     * once up front (the timing engine reads whole cache blocks, so
     * the latency is a per-run constant).
     */
    void noteRead(std::uint32_t bytes) { bytesRead_ += bytes; }

    /** Record a write of @p bytes and return its latency. */
    Cycle
    write(std::uint32_t bytes)
    {
        bytesWritten_ += bytes;
        return latency(bytes);
    }

    const DramConfig &config() const { return config_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

    /** LTC_CHECK the configuration/latency invariants (cold path). */
    void auditInvariants() const;

  private:
    DramConfig config_;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace ltc

#endif // LTC_MEM_DRAM_HH
