#include "mem/bus.hh"

#include <algorithm>

#include "util/check.hh"
#include "util/logging.hh"

namespace ltc
{

BusConfig
BusConfig::l1l2()
{
    BusConfig c;
    c.name = "l1l2";
    c.requestCycles = 1;
    c.bytesPerCycle = 32;
    c.coreCyclesPerBusCycle = 1;
    return c;
}

BusConfig
BusConfig::memory()
{
    BusConfig c;
    c.name = "membus";
    c.requestCycles = 1;
    c.bytesPerCycle = 32;
    c.coreCyclesPerBusCycle = 3; // 4 GHz core / 1333 MHz bus
    return c;
}

Bus::Bus(const BusConfig &config) : config_(config)
{
    ltc_assert(config_.bytesPerCycle > 0, "bus with zero width");
    ltc_assert(config_.coreCyclesPerBusCycle > 0,
               "bus with zero clock ratio");
}

double
Bus::utilization(Cycle horizon) const
{
    if (horizon == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(busyCycles_) /
                             static_cast<double>(horizon));
}

void
Bus::auditInvariants() const
{
    if (transfers_ == 0) {
        LTC_CHECK(busyCycles_ == 0 && queueCycles_ == 0 &&
                      bytesMoved_ == 0 && busyUntil_ == 0,
                  config_.name, ": idle bus with accounted work");
        return;
    }
    LTC_CHECK(busyUntil_ >= busyCycles_, config_.name,
              ": busy horizon ", busyUntil_,
              " behind accumulated occupancy ", busyCycles_);
    LTC_CHECK(busyCycles_ >= transfers_ * config_.occupancy(0),
              config_.name, ": ", busyCycles_, " busy cycles from ",
              transfers_, " transfers of >= ", config_.occupancy(0),
              " cycles each");
}

void
Bus::reset()
{
    busyUntil_ = 0;
    busyCycles_ = 0;
    queueCycles_ = 0;
    bytesMoved_ = 0;
    transfers_ = 0;
}

} // namespace ltc
