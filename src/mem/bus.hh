/**
 * @file
 * Bus occupancy model.
 *
 * Table 1 defines two busses: the L1/L2 bus (1-cycle request, 32 bytes
 * per cycle data) and the 32-byte-wide 1333 MHz memory bus behind the
 * L2. A transfer occupies the bus for request + data cycles; a
 * transfer that arrives while the bus is busy queues behind it. The
 * model keeps a busy-until horizon, which is exact for in-order
 * request service.
 */

#ifndef LTC_MEM_BUS_HH
#define LTC_MEM_BUS_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/types.hh"

namespace ltc
{

/** Configuration for one bus. */
struct BusConfig
{
    std::string name = "bus";
    /** Cycles to transmit the request/command. */
    Cycle requestCycles = 1;
    /** Data bytes moved per core cycle. */
    std::uint32_t bytesPerCycle = 32;
    /**
     * Clock ratio: core cycles per bus cycle (1 for the on-chip
     * L1/L2 bus; 3 for a 1333 MHz memory bus under a 4 GHz core).
     */
    std::uint32_t coreCyclesPerBusCycle = 1;

    /** Core cycles occupied by a transfer of @p bytes. */
    Cycle
    occupancy(std::uint32_t bytes) const
    {
        const Cycle data_cycles =
            (bytes + bytesPerCycle - 1) / bytesPerCycle;
        return (requestCycles + data_cycles) * coreCyclesPerBusCycle;
    }

    /** L1/L2 bus of Table 1. */
    static BusConfig l1l2();
    /** Memory bus of Table 1 (32-byte, 1333 MHz under 4 GHz core). */
    static BusConfig memory();
};

/** Single-channel bus with FIFO service and utilization accounting. */
class Bus
{
  public:
    explicit Bus(const BusConfig &config);

    /**
     * Schedule a transfer of @p bytes that becomes ready at @p ready.
     * Defined inline below: the timing engine charges several
     * transfers per miss, so this sits on the batched kernel's
     * per-event path.
     * @return Core cycle at which the transfer completes.
     */
    Cycle transfer(Cycle ready, std::uint32_t bytes);

    // LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
    // operator and virtual declarations between these markers.

    /**
     * transfer() with the occupancy precomputed by the caller:
     * @p occ MUST equal config().occupancy(bytes). The timing
     * engine's miss path moves fixed-size transfers (a request or
     * one cache block), so hoisting the occupancy division out of
     * the per-event path is free; any other caller should use
     * transfer().
     */
    Cycle
    transferPrecomputed(Cycle ready, std::uint32_t bytes, Cycle occ)
    {
        const Cycle start = std::max(ready, busyUntil_);
        queueCycles_ += start - ready;
        busyUntil_ = start + occ;
        busyCycles_ += occ;
        bytesMoved_ += bytes;
        transfers_++;
        return busyUntil_;
    }

    /** Earliest cycle >= @p now at which the bus is free. */
    Cycle freeAt(Cycle now) const { return std::max(now, busyUntil_); }

    /** True if a transfer starting at @p now would not queue. */
    bool isFree(Cycle now) const { return busyUntil_ <= now; }

    // LTC_HOT_END

    const BusConfig &config() const { return config_; }

    /** Total core cycles the bus spent occupied. */
    Cycle busyCycles() const { return busyCycles_; }
    /** Total bytes moved. */
    std::uint64_t bytesMoved() const { return bytesMoved_; }
    /** Number of transfers serviced. */
    std::uint64_t transfers() const { return transfers_; }
    /** Total cycles transfers spent queued before starting. */
    Cycle queueCycles() const { return queueCycles_; }

    /** Fraction of wall-clock cycles busy up to @p horizon. */
    double utilization(Cycle horizon) const;

    void reset();

    /**
     * LTC_CHECK the occupancy accounting: the busy horizon is
     * monotone (it can never lag the accumulated busy cycles, since
     * transfers serialize from cycle 0), every transfer contributed
     * at least a bare-request occupancy, and an idle bus has no
     * accounted work. Cold path; panics on the first violation.
     */
    void auditInvariants() const;

  private:
    BusConfig config_;
    Cycle busyUntil_ = 0;
    Cycle busyCycles_ = 0;
    Cycle queueCycles_ = 0;
    std::uint64_t bytesMoved_ = 0;
    std::uint64_t transfers_ = 0;

    /** Death-test hook: lets the invariant suite corrupt state. */
    friend struct TestPeer;
};

inline Cycle
Bus::transfer(Cycle ready, std::uint32_t bytes)
{
    return transferPrecomputed(ready, bytes,
                               config_.occupancy(bytes));
}

} // namespace ltc

#endif // LTC_MEM_BUS_HH
