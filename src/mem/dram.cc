#include "mem/dram.hh"

namespace ltc
{

DramModel::DramModel(const DramConfig &config) : config_(config)
{
}

} // namespace ltc
