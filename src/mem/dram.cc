#include "mem/dram.hh"

namespace ltc
{

DramModel::DramModel(const DramConfig &config) : config_(config)
{
}

Cycle
DramModel::read(std::uint32_t bytes)
{
    bytesRead_ += bytes;
    return latency(bytes);
}

Cycle
DramModel::write(std::uint32_t bytes)
{
    bytesWritten_ += bytes;
    return latency(bytes);
}

} // namespace ltc
