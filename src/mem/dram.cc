#include "mem/dram.hh"

#include "util/check.hh"
#include "util/logging.hh"

namespace ltc
{

DramModel::DramModel(const DramConfig &config) : config_(config)
{
    ltc_assert(config_.chunkBytes > 0, "DRAM with zero chunk size");
}

void
DramModel::auditInvariants() const
{
    LTC_CHECK(config_.chunkBytes > 0, "zero chunk size");
    // Latency must be monotone in the transfer size (occupancy
    // monotonicity: a bigger read can never arrive earlier).
    LTC_CHECK(latency(config_.chunkBytes) <=
                  latency(2 * config_.chunkBytes),
              "latency not monotone in transfer size");
}

} // namespace ltc
