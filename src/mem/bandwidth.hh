/**
 * @file
 * Off-chip traffic accounting by category.
 *
 * Figure 12 of the paper breaks memory bus utilization into: base
 * data (demand cache-block transfers), incorrect predictions
 * (extraneous block transfers from mispredicted replacements),
 * sequence creation (writing signature sequences + confidence
 * updates) and sequence fetch (streaming signatures back on chip).
 * This accountant is shared by the trace and cycle engines. A fifth
 * class, writebacks of dirty victims, sits outside the paper's
 * decomposition and only accrues under the modelWritebacks knob
 * (cache/hierarchy.hh).
 */

#ifndef LTC_MEM_BANDWIDTH_HH
#define LTC_MEM_BANDWIDTH_HH

#include <array>
#include <cstdint>

#include "util/types.hh"

namespace ltc
{

/** Traffic categories of Figure 12. */
enum class Traffic : unsigned
{
    BaseData = 0,      //!< demand block transfers (incl. correct pf)
    IncorrectPrefetch, //!< blocks fetched due to mispredictions
    SequenceCreate,    //!< signature sequence writes + confidence upd.
    SequenceFetch,     //!< signature streaming reads
    Writeback,         //!< dirty victims (modelWritebacks only)
    NumClasses,
};

const char *trafficName(Traffic traffic);

/** Byte counters per traffic class. */
class BandwidthAccount
{
  public:
    void
    add(Traffic traffic, std::uint64_t bytes)
    {
        counters_[static_cast<unsigned>(traffic)] += bytes;
    }

    std::uint64_t
    bytes(Traffic traffic) const
    {
        return counters_[static_cast<unsigned>(traffic)];
    }

    std::uint64_t totalBytes() const;

    /** Bytes per committed instruction for one class. */
    double
    perInstruction(Traffic traffic, InstCount instructions) const
    {
        return instructions ? static_cast<double>(bytes(traffic)) /
                static_cast<double>(instructions)
                            : 0.0;
    }

    void reset() { counters_.fill(0); }

  private:
    std::array<std::uint64_t,
               static_cast<unsigned>(Traffic::NumClasses)>
        counters_{};
};

} // namespace ltc

#endif // LTC_MEM_BANDWIDTH_HH
