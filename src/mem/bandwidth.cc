#include "mem/bandwidth.hh"

namespace ltc
{

const char *
trafficName(Traffic traffic)
{
    switch (traffic) {
      case Traffic::BaseData:
        return "base-data";
      case Traffic::IncorrectPrefetch:
        return "incorrect-predictions";
      case Traffic::SequenceCreate:
        return "sequence-creation";
      case Traffic::SequenceFetch:
        return "sequence-fetch";
      case Traffic::Writeback:
        return "writeback";
      case Traffic::NumClasses:
        break;
    }
    return "?";
}

std::uint64_t
BandwidthAccount::totalBytes() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counters_)
        total += c;
    return total;
}

} // namespace ltc
