/**
 * @file
 * Two-level cache hierarchy (functional).
 *
 * L1D backed by a unified L2 backed by memory (Table 1 geometry by
 * default). The hierarchy reports, for every demand access, where the
 * data came from and what the L1D replacement evicted — the inputs
 * the last-touch predictors consume. Prefetches install into both
 * levels (data returning from memory passes through L2) and into L1D
 * by replacing the predicted dead block.
 */

#ifndef LTC_CACHE_HIERARCHY_HH
#define LTC_CACHE_HIERARCHY_HH

#include <cstdint>
#include <type_traits>
#include <utility>

#include "cache/cache.hh"
#include "cache/cache_config.hh"
#include "util/types.hh"

namespace ltc
{

/**
 * The engines' static-associativity dispatch table, in one place:
 * invoke @p f with two std::integral_constant associativities — a
 * way-scan-unrolled instantiation for the (L1, L2) geometries the
 * experiments actually sweep, or (0, 0) (read the configuration at
 * runtime) for anything else. Both engines route their batched
 * kernels through this, so adding a geometry here extends every
 * kernel at once.
 */
template <typename F>
auto
dispatchByAssociativity(std::uint32_t l1_assoc, std::uint32_t l2_assoc,
                        F &&f)
{
    using std::integral_constant;
    if (l1_assoc == 2 && l2_assoc == 8) {
        return std::forward<F>(f)(
            integral_constant<std::uint32_t, 2>{},
            integral_constant<std::uint32_t, 8>{});
    }
    if (l1_assoc == 2 && l2_assoc == 16) {
        return std::forward<F>(f)(
            integral_constant<std::uint32_t, 2>{},
            integral_constant<std::uint32_t, 16>{});
    }
    if (l1_assoc == 4 && l2_assoc == 8) {
        return std::forward<F>(f)(
            integral_constant<std::uint32_t, 4>{},
            integral_constant<std::uint32_t, 8>{});
    }
    return std::forward<F>(f)(integral_constant<std::uint32_t, 0>{},
                              integral_constant<std::uint32_t, 0>{});
}

/**
 * The full static dispatch for a batched engine kernel: associativity
 * pair (dispatchByAssociativity) × replacement policy
 * (dispatchReplPolicy, cache/repl_policy.hh). Invokes @p f with two
 * std::integral_constant associativities and a policy tag — concrete
 * when both levels share one policy, PolicyAuto otherwise — so a
 * kernel instantiated through here devirtualizes the whole
 * per-reference decision chain.
 */
template <typename F>
auto
dispatchHierarchyKernel(const CacheConfig &l1, const CacheConfig &l2,
                        F &&f)
{
    return dispatchByAssociativity(
        l1.assoc, l2.assoc, [&](auto a1, auto a2) {
            return dispatchReplPolicy(
                l1.policy, l2.policy,
                [&](auto pol) { return f(a1, a2, pol); });
        });
}

/** Configuration for the two-level hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1d = CacheConfig::l1d();
    CacheConfig l2 = CacheConfig::l2();
    /**
     * Perfect L1D: every access hits (the paper's upper-bound
     * configuration in Table 3).
     */
    bool perfectL1 = false;
    /**
     * Model writeback traffic: dirty victims propagate to the next
     * level (L1 -> L2 via Cache::setDirty, L2 -> memory as Writeback
     * bus bytes). Off by default — the committed goldens predate the
     * dirty-bit fix, and the paper's Figure 12 decomposition counts
     * fetch traffic only — and routed through the engines' scalar
     * paths when on.
     */
    bool modelWritebacks = false;
};

/** Where a demand access was satisfied. */
enum class HitLevel
{
    L1,
    L2,
    Memory,
};

const char *hitLevelName(HitLevel level);

/** Result of one demand access through the hierarchy. */
struct HierOutcome
{
    HitLevel level = HitLevel::L1;
    /** The L1 hit consumed an untouched prefetched block. */
    bool l1HitOnPrefetch = false;
    /** The L2 hit consumed an untouched prefetched block. */
    bool l2HitOnPrefetch = false;
    /** L1D eviction caused by this access (fodder for last touches). */
    bool l1Evicted = false;
    /** Engine metadata bits consumed from the hitting L1 line. */
    std::uint8_t l1Meta = 0;
    /** Engine metadata bits consumed from the hitting L2 line. */
    std::uint8_t l2Meta = 0;
    Addr l1VictimAddr = invalidAddr;
    std::uint32_t l1Set = 0;
    bool l1Hit() const { return level == HitLevel::L1; }
};

/** Result of a prefetch insertion. */
struct PrefetchOutcome
{
    /** Block already resident in L1D: the prefetch was useless. */
    bool alreadyInL1 = false;
    /** Data found in L2 (fill is cheap); otherwise fetched off chip. */
    bool l2Hit = false;
    /** L1D eviction caused by the fill. */
    bool l1Evicted = false;
    Addr l1VictimAddr = invalidAddr;
};

class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /**
     * Demand access from the core. Defined inline below — together
     * with the inline Cache::access it forms the engines' tight
     * per-reference inner loop.
     *
     * @tparam L1Assoc,L2Assoc Compile-time associativities for the
     *         way scans, or 0 (the default) to read them from the
     *         configurations. The engines' batched kernels dispatch
     *         to matching non-zero instantiations (the same contract
     *         as Cache::access / Cache::accessBaseline).
     * @tparam Policy Replacement-policy plugin shared by both levels,
     *         or PolicyAuto (the default) for per-call dispatch; the
     *         engines obtain a concrete tag via
     *         dispatchHierarchyKernel only when the two levels'
     *         configured policies agree.
     */
    template <std::uint32_t L1Assoc = 0, std::uint32_t L2Assoc = 0,
              typename Policy = PolicyAuto>
    HierOutcome access(Addr addr, MemOp op);

    /**
     * Reconcile the hierarchy-level counters after a baseline batch
     * (TraceEngine's predictor-less kernel drives the member caches
     * through Cache::accessBaseline and reports the totals here).
     */
    void
    noteBaselineBatch(std::uint64_t accesses, std::uint64_t l1_misses,
                      std::uint64_t l2_misses)
    {
        accesses_ += accesses;
        l1Misses_ += l1_misses;
        l2Misses_ += l2_misses;
    }

    /**
     * Prefetch @p addr into L1D replacing @p predicted_victim, and
     * install into L2 on the way.
     */
    PrefetchOutcome prefetch(Addr addr, Addr predicted_victim);

    /** Drop all cached state (used to model loss of cache contents). */
    void flush();

    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const HierarchyConfig &config() const { return config_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Misses() const { return l1Misses_; }
    std::uint64_t l2Misses() const { return l2Misses_; }

  private:
    HierarchyConfig config_;
    Cache l1d_;
    Cache l2_;
    std::uint64_t accesses_ = 0;
    std::uint64_t l1Misses_ = 0;
    std::uint64_t l2Misses_ = 0;
};

template <std::uint32_t L1Assoc, std::uint32_t L2Assoc, typename Policy>
inline HierOutcome
CacheHierarchy::access(Addr addr, MemOp op)
{
    accesses_++;
    HierOutcome out;

    if (config_.perfectL1) {
        out.level = HitLevel::L1;
        return out;
    }

    const CacheOutcome l1 = l1d_.access<L1Assoc, Policy>(addr, op);
    out.l1Set = l1.set;
    if (l1.hit) {
        out.level = HitLevel::L1;
        out.l1HitOnPrefetch = l1.hitUntouchedPrefetch;
        out.l1Meta = l1.meta;
        return out;
    }

    out.l1Evicted = l1.evicted;
    out.l1VictimAddr = l1.victimAddr;
    l1Misses_++;

    const CacheOutcome l2 = l2_.access<L2Assoc, Policy>(addr, op);
    if (l2.hit) {
        out.level = HitLevel::L2;
        out.l2HitOnPrefetch = l2.hitUntouchedPrefetch;
        out.l2Meta = l2.meta;
        return out;
    }

    l2Misses_++;
    out.level = HitLevel::Memory;
    return out;
}

} // namespace ltc

#endif // LTC_CACHE_HIERARCHY_HH
