/**
 * @file
 * Vectorized set-scan kernels for the packed 8-byte tag words.
 *
 * Each cache set's tag words are contiguous (structure-of-arrays,
 * cache/cache.hh), so an 8-way set spans exactly one host cache line.
 * The per-reference lookup and victim scans reduce to one primitive:
 * "which ways w satisfy (words[w] & select) == want" as a bitmask.
 * With AVX2 that is a broadcast, a vector AND, a vector compare and a
 * movemask per 4 ways; with AVX-512, a single masked compare per 8
 * ways. The first matching way is then a trailing-zero count.
 *
 * Both a portable kernel and (when the compiler targets the ISA) the
 * SIMD kernels are always compiled: the dispatching wrapper
 * `maskedEqBits` picks the widest available at compile time, the
 * portable variant stays callable for the `micro_structures`
 * SIMD-vs-portable benchmark, and `-DLTC_SIMD=OFF` (which defines
 * LTC_FORCE_PORTABLE_SCAN) forces the portable kernel everywhere so
 * CI can pin that both produce byte-identical simulations.
 *
 * Equivalence argument (pinned by tests/cache_test.cc): a set holds
 * each block at most once, so the match mask has at most one bit and
 * any scan order returns the same way; the invalid-way scan takes the
 * lowest set bit, exactly the scalar loop's first-invalid choice.
 */

#ifndef LTC_CACHE_SET_SCAN_HH
#define LTC_CACHE_SET_SCAN_HH

#include <cstdint>

#if defined(__AVX2__) && !defined(LTC_FORCE_PORTABLE_SCAN)
#define LTC_SET_SCAN_AVX2 1
#include <immintrin.h>
#else
#define LTC_SET_SCAN_AVX2 0
#endif

#if defined(__AVX512F__) && !defined(LTC_FORCE_PORTABLE_SCAN)
#define LTC_SET_SCAN_AVX512 1
#include <immintrin.h>
#else
#define LTC_SET_SCAN_AVX512 0
#endif

namespace ltc
{

// LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
// operator and virtual declarations between these markers.

/** True when maskedEqBits resolves to a SIMD kernel for 8-way sets. */
inline constexpr bool simdSetScan = LTC_SET_SCAN_AVX2 != 0 ||
    LTC_SET_SCAN_AVX512 != 0;

/**
 * Portable kernel: bit w of the result is set iff
 * (words[w] & select) == want. @tparam Assoc fixed trip count so the
 * compiler fully unrolls (and often auto-vectorizes) the loop.
 */
template <std::uint32_t Assoc>
inline std::uint32_t
maskedEqBitsPortable(const std::uint64_t *words, std::uint64_t select,
                     std::uint64_t want)
{
    static_assert(Assoc >= 1 && Assoc <= 32, "unsupported set width");
    std::uint32_t bits = 0;
    for (std::uint32_t w = 0; w < Assoc; w++)
        bits |= ((words[w] & select) == want ? 1u : 0u) << w;
    return bits;
}

#if LTC_SET_SCAN_AVX512

/** AVX-512 kernel: one masked 8-lane compare per 8 ways. */
template <std::uint32_t Assoc>
inline std::uint32_t
maskedEqBitsSimd(const std::uint64_t *words, std::uint64_t select,
                 std::uint64_t want)
{
    static_assert(Assoc >= 8 && Assoc <= 32 && (Assoc & 7u) == 0,
                  "AVX-512 scan handles 8/16/24/32-way sets");
    const __m512i sel = _mm512_set1_epi64(
        static_cast<long long>(select));
    const __m512i wt = _mm512_set1_epi64(static_cast<long long>(want));
    std::uint32_t bits = 0;
    for (std::uint32_t g = 0; g < Assoc / 8; g++) {
        const __m512i v = _mm512_loadu_si512(
            reinterpret_cast<const void *>(words + 8 * g));
        const __mmask8 eq =
            _mm512_cmpeq_epi64_mask(_mm512_and_epi64(v, sel), wt);
        bits |= static_cast<std::uint32_t>(eq) << (8 * g);
    }
    return bits;
}

#elif LTC_SET_SCAN_AVX2

/** AVX2 kernel: AND + compare + movemask per 4 ways. */
template <std::uint32_t Assoc>
inline std::uint32_t
maskedEqBitsSimd(const std::uint64_t *words, std::uint64_t select,
                 std::uint64_t want)
{
    static_assert(Assoc >= 4 && Assoc <= 32 && (Assoc & 3u) == 0,
                  "AVX2 scan handles multiples of 4 ways");
    const __m256i sel = _mm256_set1_epi64x(
        static_cast<long long>(select));
    const __m256i wt = _mm256_set1_epi64x(static_cast<long long>(want));
    std::uint32_t bits = 0;
    for (std::uint32_t g = 0; g < Assoc / 4; g++) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + 4 * g));
        const __m256i eq =
            _mm256_cmpeq_epi64(_mm256_and_si256(v, sel), wt);
        const int m = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        bits |= static_cast<std::uint32_t>(m) << (4 * g);
    }
    return bits;
}

#endif // LTC_SET_SCAN_AVX2 / LTC_SET_SCAN_AVX512

/**
 * Widest-available kernel for the engines' static-associativity
 * instantiations: SIMD when compiled in and the width divides the
 * vector lanes, otherwise the portable unrolled scan. Semantically
 * identical either way (see the file comment).
 */
template <std::uint32_t Assoc>
inline std::uint32_t
maskedEqBits(const std::uint64_t *words, std::uint64_t select,
             std::uint64_t want)
{
#if LTC_SET_SCAN_AVX512
    if constexpr (Assoc >= 8 && Assoc <= 32 && (Assoc & 7u) == 0)
        return maskedEqBitsSimd<Assoc>(words, select, want);
    else
        return maskedEqBitsPortable<Assoc>(words, select, want);
#elif LTC_SET_SCAN_AVX2
    if constexpr (Assoc >= 4 && Assoc <= 32 && (Assoc & 3u) == 0)
        return maskedEqBitsSimd<Assoc>(words, select, want);
    else
        return maskedEqBitsPortable<Assoc>(words, select, want);
#else
    return maskedEqBitsPortable<Assoc>(words, select, want);
#endif
}

/** First set bit of a non-zero way mask (lowest matching way). */
inline std::uint32_t
firstWay(std::uint32_t bits)
{
    return static_cast<std::uint32_t>(__builtin_ctz(bits));
}

// LTC_HOT_END

} // namespace ltc

#endif // LTC_CACHE_SET_SCAN_HH
