#include "cache/cache_config.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return "LRU";
      case ReplPolicy::FIFO:
        return "FIFO";
      case ReplPolicy::Random:
        return "Random";
      case ReplPolicy::RRIP:
        return "RRIP";
      case ReplPolicy::DRRIP:
        return "DRRIP";
      case ReplPolicy::SHiP:
        return "SHiP";
      case ReplPolicy::DeadBlock:
        return "DeadBlock";
    }
    return "?";
}

void
CacheConfig::validate() const
{
    if (!isPowerOf2(lineBytes))
        ltc_fatal(name, ": line size must be a power of two, got ",
                  lineBytes);
    if (sizeBytes == 0 || sizeBytes % lineBytes != 0)
        ltc_fatal(name, ": size must be a multiple of the line size");
    if (assoc == 0 || numLines() % assoc != 0)
        ltc_fatal(name, ": associativity must divide the line count");
    if (!isPowerOf2(numSets()))
        ltc_fatal(name, ": set count must be a power of two, got ",
                  numSets());
}

CacheConfig
CacheConfig::l1d()
{
    CacheConfig c;
    c.name = "L1D";
    c.sizeBytes = 64 * 1024;
    c.assoc = 2;
    c.lineBytes = 64;
    c.latency = 2;
    return c;
}

CacheConfig
CacheConfig::l1i()
{
    CacheConfig c;
    c.name = "L1I";
    c.sizeBytes = 64 * 1024;
    c.assoc = 4;
    c.lineBytes = 64;
    c.latency = 2;
    return c;
}

CacheConfig
CacheConfig::l2()
{
    CacheConfig c;
    c.name = "L2";
    c.sizeBytes = 1024 * 1024;
    c.assoc = 8;
    c.lineBytes = 64;
    c.latency = 20;
    return c;
}

} // namespace ltc
