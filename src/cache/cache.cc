#include "cache/cache.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/check.hh"
#include "util/logging.hh"

namespace ltc
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    config_.validate();
    lineBits_ = exactLog2(config_.lineBytes);
    setMask_ = config_.numSets() - 1;
    tagFlags_.resize(config_.numLines());
    stamps_.resize(config_.numLines());
    evictMarks_.resize(config_.numSets());
    // Weakly-reused initial prediction, per the SHiP paper; the other
    // policies never touch the table, so it stays unallocated.
    if (config_.policy == ReplPolicy::SHiP)
        policyState_.shct.assign(shipShctEntries, 1);
}

CacheOutcome
Cache::fillReplacing(Addr addr, Addr predicted_victim)
{
    if (findIndex(addr) != noWay) {
        CacheOutcome out;
        out.hit = true;
        out.set = setIndex(addr);
        return out;
    }
    prefetchFills_++;
    const std::uint64_t tag = tagOf(addr);
    const std::uint32_t set = setIndex(addr);

    if (setIndex(predicted_victim) == set) {
        const std::size_t victim = findIndex(predicted_victim);
        if (victim != noWay) {
            const std::uint32_t way = static_cast<std::uint32_t>(
                victim - static_cast<std::size_t>(set) * config_.assoc);
            return insert(tag, set, way, true, true, false);
        }
    }
    return insert(tag, set, victimWay(set), true, true, false);
}

CacheOutcome
Cache::fill(Addr addr, bool mark_prefetched)
{
    if (findIndex(addr) != noWay) {
        CacheOutcome out;
        out.hit = true;
        out.set = setIndex(addr);
        return out;
    }
    prefetchFills_++;
    const std::uint32_t set = setIndex(addr);
    return insert(tagOf(addr), set, victimWay(set), true,
                  mark_prefetched, false);
}

bool
Cache::invalidate(Addr addr)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return false;
    tagFlags_[idx] = 0;
    stamps_[idx] = 0;
    return true;
}

void
Cache::flush()
{
    // Line state (including engine metadata) dies with the contents;
    // eviction marks describe non-resident blocks and survive, as
    // the engines' side tables always did.
    std::fill(tagFlags_.begin(), tagFlags_.end(), 0);
    std::fill(stamps_.begin(), stamps_.end(), 0);
}

bool
Cache::setMeta(Addr addr, std::uint8_t meta)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return false;
    tagFlags_[idx] = (tagFlags_[idx] & ~lineMetaMask) |
        (static_cast<std::uint64_t>(meta & 0x3) << lineMetaShift);
    return true;
}

std::uint8_t
Cache::takeMeta(Addr addr)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return 0;
    const std::uint8_t meta = lineMeta(tagFlags_[idx]);
    tagFlags_[idx] &= ~lineMetaMask;
    return meta;
}

void
Cache::markEvicted(Addr addr)
{
    const Addr block = blockAlign(addr);
    std::vector<Addr> &bucket = evictMarks_[setIndex(block)];
    for (Addr marked : bucket) {
        if (marked == block)
            return;
    }
    bucket.push_back(block);
}

bool
Cache::clearEvictedMarkSlow(std::vector<Addr> &bucket, Addr block)
{
    for (std::size_t i = 0; i < bucket.size(); i++) {
        if (bucket[i] == block) {
            bucket[i] = bucket.back();
            bucket.pop_back();
            return true;
        }
    }
    return false;
}

void
Cache::auditInvariants() const
{
    const std::size_t lines = config_.numLines();
    LTC_CHECK(tagFlags_.size() == lines,
              "tag array holds ", tagFlags_.size(), " words for ",
              lines, " lines");
    LTC_CHECK(stamps_.size() == lines,
              "stamp array holds ", stamps_.size(), " words for ",
              lines, " lines");
    LTC_CHECK(evictMarks_.size() == config_.numSets(),
              "eviction-mark buckets: ", evictMarks_.size(),
              " for ", config_.numSets(), " sets");
    LTC_CHECK(misses_ <= accesses_,
              misses_, " misses out of ", accesses_, " accesses");
    LTC_CHECK(evictions_ <= misses_ + prefetchFills_,
              evictions_, " evictions from ", misses_, " misses + ",
              prefetchFills_, " prefetch fills");

    // Bits the tag-word layout leaves unused below the tag field
    // (none today — the policy bits filled the gap — but the check
    // guards future layout edits), plus the policy bits the
    // configured plugin never sets.
    constexpr std::uint64_t reservedBits =
        ((std::uint64_t{1} << tagShift) - 1) &
        ~(lineValid | lineDirty | linePrefetched | lineMetaMask |
          linePolicyMask);
    std::uint64_t forbidden = reservedBits;
    switch (config_.policy) {
      case ReplPolicy::LRU:
      case ReplPolicy::FIFO:
      case ReplPolicy::Random:
        forbidden |= linePolicyMask; // stamp policies: all bits idle
        break;
      case ReplPolicy::RRIP:
      case ReplPolicy::DRRIP:
        forbidden |= lineAuxBit; // RRPV only
        break;
      case ReplPolicy::SHiP:
        break; // RRPV + outcome bit both live
      case ReplPolicy::DeadBlock:
        forbidden |= lineRrpvMask; // dead mark only
        break;
    }

    // Policy table state matches the configured plugin.
    if (config_.policy == ReplPolicy::SHiP) {
        LTC_CHECK(policyState_.shct.size() == shipShctEntries,
                  "SHiP signature table holds ",
                  policyState_.shct.size(), " of ", shipShctEntries,
                  " counters");
        for (std::size_t i = 0; i < policyState_.shct.size(); i++) {
            LTC_CHECK(policyState_.shct[i] <= 3, "SHiP counter ", i,
                      " holds ", policyState_.shct[i],
                      ", above the 2-bit ceiling");
        }
    } else {
        LTC_CHECK(policyState_.shct.empty(),
                  "SHiP signature table allocated under policy ",
                  replPolicyName(config_.policy));
    }
    LTC_CHECK(policyState_.psel <= 1023, "DRRIP PSEL ",
              policyState_.psel, " above the 10-bit ceiling");
    LTC_CHECK(policyState_.bipCtr <= 31, "BRRIP epsilon counter ",
              policyState_.bipCtr, " above its 1-in-32 period");

    for (std::uint32_t set = 0; set < config_.numSets(); set++) {
        const std::size_t base =
            static_cast<std::size_t>(set) * config_.assoc;
        for (std::uint32_t w = 0; w < config_.assoc; w++) {
            const std::uint64_t tf = tagFlags_[base + w];
            if (!(tf & lineValid)) {
                LTC_CHECK(tf == 0, "set ", set, " way ", w,
                          ": invalid line carries residual bits");
                LTC_CHECK(stamps_[base + w] == 0, "set ", set, " way ",
                          w, ": invalid line carries a stamp");
                continue;
            }
            LTC_CHECK((tf & forbidden) == 0, "set ", set, " way ",
                      w, ": reserved or foreign-policy tag-word "
                      "bits set");
            LTC_CHECK(stamps_[base + w] <= stamp_, "set ", set,
                      " way ", w, ": stamp ", stamps_[base + w],
                      " ahead of global counter ", stamp_);
            LTC_CHECK(setIndex(lineAddr(tf)) == set, "set ", set,
                      " way ", w, ": tag word maps to set ",
                      setIndex(lineAddr(tf)));
            for (std::uint32_t w2 = w + 1; w2 < config_.assoc; w2++) {
                const std::uint64_t other = tagFlags_[base + w2];
                if (other & lineValid) {
                    LTC_CHECK((other >> tagShift) != (tf >> tagShift),
                              "set ", set, ": block resident in ways ",
                              w, " and ", w2);
                }
            }
        }
    }

    for (std::uint32_t set = 0; set < config_.numSets(); set++) {
        const std::vector<Addr> &bucket = evictMarks_[set];
        for (std::size_t i = 0; i < bucket.size(); i++) {
            const Addr block = bucket[i];
            LTC_CHECK(blockAlign(block) == block,
                      "unaligned eviction mark ", block);
            LTC_CHECK(setIndex(block) == set, "eviction mark ", block,
                      " filed under set ", set, ", maps to ",
                      setIndex(block));
            LTC_CHECK(findIndex(block) == noWay, "eviction-marked "
                      "block ", block, " is resident");
            for (std::size_t j = i + 1; j < bucket.size(); j++) {
                LTC_CHECK(bucket[j] != block,
                          "duplicate eviction mark ", block);
            }
        }
    }
}

bool
Cache::isUntouchedPrefetch(Addr addr) const
{
    const std::size_t idx = findIndex(addr);
    return idx != noWay && (tagFlags_[idx] & linePrefetched);
}

bool
Cache::setDirty(Addr addr)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return false;
    tagFlags_[idx] |= lineDirty;
    return true;
}

bool
Cache::markDead(Addr addr)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return false;
    tagFlags_[idx] |= lineAuxBit;
    return true;
}

bool
Cache::isDead(Addr addr) const
{
    const std::size_t idx = findIndex(addr);
    return idx != noWay && (tagFlags_[idx] & lineAuxBit);
}

} // namespace ltc
