#include "cache/cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    config_.validate();
    lineBits_ = exactLog2(config_.lineBytes);
    setMask_ = config_.numSets() - 1;
    lines_.resize(config_.numLines());
}

Cache::Line *
Cache::findLine(Addr block_addr)
{
    const std::uint32_t set = setIndex(block_addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; w++) {
        if (base[w].valid && base[w].blockAddr == block_addr)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr block_addr) const
{
    return const_cast<Cache *>(this)->findLine(block_addr);
}

std::uint32_t
Cache::victimWay(std::uint32_t set)
{
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < config_.assoc; w++) {
        if (!base[w].valid)
            return w;
    }
    switch (config_.policy) {
      case ReplPolicy::LRU: {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < config_.assoc; w++) {
            if (base[w].lastUse < base[victim].lastUse)
                victim = w;
        }
        return victim;
      }
      case ReplPolicy::FIFO: {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < config_.assoc; w++) {
            if (base[w].fillTime < base[victim].fillTime)
                victim = w;
        }
        return victim;
      }
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng_.below(config_.assoc));
    }
    ltc_panic("unreachable replacement policy");
}

CacheOutcome
Cache::insert(Addr block_addr, std::uint32_t way, bool by_prefetch,
              bool mark_prefetched)
{
    const std::uint32_t set = setIndex(block_addr);
    Line &line =
        lines_[static_cast<std::size_t>(set) * config_.assoc + way];

    CacheOutcome out;
    out.set = set;
    if (line.valid) {
        out.evicted = true;
        out.victimAddr = line.blockAddr;
        evictions_++;
        if (listener_) {
            listener_->onEviction(line.blockAddr, block_addr, set,
                                  by_prefetch, line.prefetched);
        }
    }
    line.blockAddr = block_addr;
    line.valid = true;
    line.dirty = false;
    line.prefetched = mark_prefetched;
    line.lastUse = ++stamp_;
    line.fillTime = stamp_;
    return out;
}

CacheOutcome
Cache::access(Addr addr, MemOp op)
{
    const Addr block = blockAlign(addr);
    accesses_++;

    if (Line *line = findLine(block)) {
        line->lastUse = ++stamp_;
        CacheOutcome out;
        out.hit = true;
        out.hitUntouchedPrefetch = line->prefetched;
        out.set = setIndex(block);
        line->prefetched = false;
        if (op == MemOp::Store)
            line->dirty = true;
        return out;
    }

    misses_++;
    const std::uint32_t set = setIndex(block);
    CacheOutcome out = insert(block, victimWay(set), false, false);
    if (op == MemOp::Store) {
        Line *line = findLine(block);
        line->dirty = true;
    }
    return out;
}

CacheOutcome
Cache::fillReplacing(Addr addr, Addr predicted_victim)
{
    const Addr block = blockAlign(addr);
    if (findLine(block)) {
        CacheOutcome out;
        out.hit = true;
        out.set = setIndex(block);
        return out;
    }
    prefetchFills_++;
    const std::uint32_t set = setIndex(block);

    const Addr victim_block = blockAlign(predicted_victim);
    if (setIndex(victim_block) == set) {
        Line *base =
            &lines_[static_cast<std::size_t>(set) * config_.assoc];
        for (std::uint32_t w = 0; w < config_.assoc; w++) {
            if (base[w].valid && base[w].blockAddr == victim_block)
                return insert(block, w, true, true);
        }
    }
    return insert(block, victimWay(set), true, true);
}

CacheOutcome
Cache::fill(Addr addr, bool mark_prefetched)
{
    const Addr block = blockAlign(addr);
    if (findLine(block)) {
        CacheOutcome out;
        out.hit = true;
        out.set = setIndex(block);
        return out;
    }
    prefetchFills_++;
    const std::uint32_t set = setIndex(block);
    return insert(block, victimWay(set), true, mark_prefetched);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(blockAlign(addr)) != nullptr;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(blockAlign(addr))) {
        line->valid = false;
        line->blockAddr = invalidAddr;
        return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.blockAddr = invalidAddr;
        line.dirty = false;
        line.prefetched = false;
    }
}

bool
Cache::isUntouchedPrefetch(Addr addr) const
{
    const Line *line = findLine(blockAlign(addr));
    return line && line->prefetched;
}

} // namespace ltc
