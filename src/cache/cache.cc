#include "cache/cache.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ltc
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    config_.validate();
    lineBits_ = exactLog2(config_.lineBytes);
    setMask_ = config_.numSets() - 1;
    tagFlags_.resize(config_.numLines());
    stamps_.resize(config_.numLines());
    evictMarks_.resize(config_.numSets());
}

CacheOutcome
Cache::fillReplacing(Addr addr, Addr predicted_victim)
{
    if (findIndex(addr) != noWay) {
        CacheOutcome out;
        out.hit = true;
        out.set = setIndex(addr);
        return out;
    }
    prefetchFills_++;
    const std::uint64_t tag = tagOf(addr);
    const std::uint32_t set = setIndex(addr);

    if (setIndex(predicted_victim) == set) {
        const std::size_t victim = findIndex(predicted_victim);
        if (victim != noWay) {
            const std::uint32_t way = static_cast<std::uint32_t>(
                victim - static_cast<std::size_t>(set) * config_.assoc);
            return insert(tag, set, way, true, true, false);
        }
    }
    return insert(tag, set, victimWay(set), true, true, false);
}

CacheOutcome
Cache::fill(Addr addr, bool mark_prefetched)
{
    if (findIndex(addr) != noWay) {
        CacheOutcome out;
        out.hit = true;
        out.set = setIndex(addr);
        return out;
    }
    prefetchFills_++;
    const std::uint32_t set = setIndex(addr);
    return insert(tagOf(addr), set, victimWay(set), true,
                  mark_prefetched, false);
}

bool
Cache::invalidate(Addr addr)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return false;
    tagFlags_[idx] = 0;
    stamps_[idx] = 0;
    return true;
}

void
Cache::flush()
{
    // Line state (including engine metadata) dies with the contents;
    // eviction marks describe non-resident blocks and survive, as
    // the engines' side tables always did.
    std::fill(tagFlags_.begin(), tagFlags_.end(), 0);
    std::fill(stamps_.begin(), stamps_.end(), 0);
}

bool
Cache::setMeta(Addr addr, std::uint8_t meta)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return false;
    tagFlags_[idx] = (tagFlags_[idx] & ~lineMetaMask) |
        (static_cast<std::uint64_t>(meta & 0x3) << lineMetaShift);
    return true;
}

std::uint8_t
Cache::takeMeta(Addr addr)
{
    const std::size_t idx = findIndex(addr);
    if (idx == noWay)
        return 0;
    const std::uint8_t meta = lineMeta(tagFlags_[idx]);
    tagFlags_[idx] &= ~lineMetaMask;
    return meta;
}

void
Cache::markEvicted(Addr addr)
{
    const Addr block = blockAlign(addr);
    std::vector<Addr> &bucket = evictMarks_[setIndex(block)];
    for (Addr marked : bucket) {
        if (marked == block)
            return;
    }
    bucket.push_back(block);
}

bool
Cache::clearEvictedMarkSlow(std::vector<Addr> &bucket, Addr block)
{
    for (std::size_t i = 0; i < bucket.size(); i++) {
        if (bucket[i] == block) {
            bucket[i] = bucket.back();
            bucket.pop_back();
            return true;
        }
    }
    return false;
}

bool
Cache::isUntouchedPrefetch(Addr addr) const
{
    const std::size_t idx = findIndex(addr);
    return idx != noWay && (tagFlags_[idx] & linePrefetched);
}

} // namespace ltc
