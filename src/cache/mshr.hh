/**
 * @file
 * Miss Status Holding Register file.
 *
 * Models the contention the paper calls out ("We extend SimpleScalar
 * to model MSHR contention and queuing accurately"): a miss needs a
 * free MSHR to issue; a miss to a block that is already outstanding
 * merges with the existing entry (and completes with it).
 */

#ifndef LTC_CACHE_MSHR_HH
#define LTC_CACHE_MSHR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hh"

namespace ltc
{

/** Fixed-capacity file of outstanding misses with completion times. */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t capacity);

    /**
     * Earliest cycle >= @p now at which a new miss can allocate an
     * entry (i.e. when a register frees up if the file is full).
     */
    Cycle allocReadyAt(Cycle now) const;

    /**
     * Allocate an entry for @p block_addr completing at @p completion.
     * The caller must have consulted allocReadyAt (panics when full).
     */
    void allocate(Addr block_addr, Cycle start, Cycle completion);

    /** Completion time of an outstanding miss to @p block_addr. */
    std::optional<Cycle> lookup(Addr block_addr) const;

    /** Release entries whose completion time is <= @p now. */
    void retire(Cycle now);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t outstanding() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

    /** Number of allocations that merged with an existing entry. */
    std::uint64_t merges() const { return merges_; }
    /** Count one merged access (bookkeeping by the engine). */
    void noteMerge() { merges_++; }

    /** Peak simultaneous occupancy observed. */
    std::uint32_t peakOccupancy() const { return peak_; }

    void clear();

  private:
    struct Entry
    {
        Addr blockAddr;
        Cycle completion;
    };

    std::uint32_t capacity_;
    std::vector<Entry> entries_;
    std::uint64_t merges_ = 0;
    std::uint32_t peak_ = 0;
};

} // namespace ltc

#endif // LTC_CACHE_MSHR_HH
