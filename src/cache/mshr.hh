/**
 * @file
 * Miss Status Holding Register file.
 *
 * Models the contention the paper calls out ("We extend SimpleScalar
 * to model MSHR contention and queuing accurately"): a miss needs a
 * free MSHR to issue; a miss to a block that is already outstanding
 * merges with the existing entry (and completes with it).
 *
 * The file caches the earliest outstanding completion time so the
 * engines' per-reference retire() tick degenerates to one compare
 * until an entry actually completes — occupancy is then reconciled in
 * event-granular bursts (the batched timing kernel relies on this:
 * skipping no-op retires cannot change the occupancy trajectory,
 * which tests/property_test.cc pins against an eagerly-scanning
 * reference model).
 */

#ifndef LTC_CACHE_MSHR_HH
#define LTC_CACHE_MSHR_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace ltc
{

/** Fixed-capacity file of outstanding misses with completion times. */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t capacity);

    // LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
    // operator and virtual declarations between these markers
    // (lookup/retire run per reference in the batched timing kernel).

    /**
     * Earliest cycle >= @p now at which a new miss can allocate an
     * entry (i.e. when a register frees up if the file is full).
     */
    Cycle
    allocReadyAt(Cycle now) const
    {
        if (entries_.size() < capacity_)
            return now;
        return std::max(now, earliest_);
    }

    /**
     * Allocate an entry for @p block_addr completing at @p completion.
     * The caller must have consulted allocReadyAt (panics when full).
     */
    void
    allocate(Addr block_addr, Cycle start, Cycle completion)
    {
        // Entries completing at or before the allocation time are
        // free.
        retire(start);
        ltc_assert(entries_.size() < capacity_,
                   "MSHR allocate with full file; consult allocReadyAt");
        entries_.push_back({block_addr, completion});
        present_[maskWord(block_addr)] |= maskBit(block_addr);
        earliest_ = std::min(earliest_, completion);
        peak_ = std::max<std::uint32_t>(
            peak_, static_cast<std::uint32_t>(entries_.size()));
    }

    /**
     * Completion time of an outstanding miss to @p block_addr. The
     * presence filter screens the common new-block case down to two
     * loads and a mask test; only possible matches pay the scan.
     */
    std::optional<Cycle>
    lookup(Addr block_addr) const
    {
        if (!(present_[maskWord(block_addr)] & maskBit(block_addr)))
            return std::nullopt;
        for (const Entry &e : entries_)
            if (e.blockAddr == block_addr)
                return e.completion;
        return std::nullopt;
    }

    /**
     * Release entries whose completion time is <= @p now. One compare
     * in the common no-completion case (see the file comment).
     */
    void
    retire(Cycle now)
    {
        if (now < earliest_)
            return;
        retireSlow(now);
    }

    // LTC_HOT_END

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t outstanding() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

    /** Number of allocations that merged with an existing entry. */
    std::uint64_t merges() const { return merges_; }
    /** Count one merged access (bookkeeping by the engine). */
    void noteMerge() { merges_++; }

    /** Peak simultaneous occupancy observed. */
    std::uint32_t peakOccupancy() const { return peak_; }

    void clear();

    /**
     * LTC_CHECK every representation invariant: occupancy within
     * capacity, no duplicate outstanding block, the cached
     * earliest-completion equal to the true minimum, and the presence
     * filter a superset of the entry set (a clear bit must prove
     * absence — one missing bit silently drops MSHR merges). Cold
     * path; panics on the first violation.
     */
    void auditInvariants() const;

  private:
    struct Entry
    {
        Addr blockAddr;
        Cycle completion;
    };

    /** Sentinel earliest-completion when the file is empty. */
    static constexpr Cycle noEarliest =
        std::numeric_limits<Cycle>::max();

    /**
     * Presence filter: 256 bits indexed by a hash of the block
     * number. A set bit is a superset of residency (bits are only
     * cleared when retireSlow rebuilds the filter from the surviving
     * entries), so a clear bit proves absence — no false negatives —
     * and lookup() skips the entry scan for almost every new block.
     */
    static std::size_t
    maskWord(Addr block_addr)
    {
        return (hashBlock(block_addr) >> 6) & 0x3;
    }
    static std::uint64_t
    maskBit(Addr block_addr)
    {
        return std::uint64_t{1} << (hashBlock(block_addr) & 63);
    }
    static std::uint64_t
    hashBlock(Addr block_addr)
    {
        // Fibonacci multiplicative hash of the block number (low
        // line-offset bits are zero and would alias otherwise).
        return (block_addr >> 6) * 0x9e3779b97f4a7c15ull >> 56;
    }

    /** The erase scan behind retire(); recomputes earliest_. */
    void retireSlow(Cycle now);

    std::uint32_t capacity_;
    std::vector<Entry> entries_;
    /** Minimum completion over entries_ (noEarliest when empty). */
    Cycle earliest_ = noEarliest;
    /** Presence filter over entries_ (see maskWord/maskBit). */
    std::array<std::uint64_t, 4> present_{};
    std::uint64_t merges_ = 0;
    std::uint32_t peak_ = 0;

    /** Death-test hook: lets the invariant suite corrupt state. */
    friend struct TestPeer;
};

} // namespace ltc

#endif // LTC_CACHE_MSHR_HH
