#include "cache/hierarchy.hh"

#include "util/logging.hh"

namespace ltc
{

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1:
        return "L1";
      case HitLevel::L2:
        return "L2";
      case HitLevel::Memory:
        return "memory";
    }
    return "?";
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config), l1d_(config.l1d), l2_(config.l2)
{
    if (config_.l1d.lineBytes != config_.l2.lineBytes) {
        ltc_fatal("hierarchy requires equal L1/L2 line sizes, got ",
                  config_.l1d.lineBytes, " and ", config_.l2.lineBytes);
    }
}

PrefetchOutcome
CacheHierarchy::prefetch(Addr addr, Addr predicted_victim)
{
    PrefetchOutcome out;
    if (config_.perfectL1) {
        out.alreadyInL1 = true;
        return out;
    }
    if (l1d_.probe(addr)) {
        out.alreadyInL1 = true;
        return out;
    }

    // Data passes through (and installs into) L2 on its way in; a
    // resident L2 copy makes the prefetch an on-chip transfer.
    out.l2Hit = l2_.probe(addr);
    if (!out.l2Hit) {
        // Waypoint install: the L1 copy tracks usefulness, so the L2
        // line must not be flagged as an untouched prefetch.
        l2_.fill(addr, /*mark_prefetched=*/false);
    }

    const CacheOutcome l1 = l1d_.fillReplacing(addr, predicted_victim);
    out.l1Evicted = l1.evicted;
    out.l1VictimAddr = l1.victimAddr;
    return out;
}

void
CacheHierarchy::flush()
{
    l1d_.flush();
    l2_.flush();
}

} // namespace ltc
