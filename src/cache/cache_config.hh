/**
 * @file
 * Cache geometry and latency configuration (Table 1 of the paper).
 */

#ifndef LTC_CACHE_CACHE_CONFIG_HH
#define LTC_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace ltc
{

/** Replacement policy selector for a cache instance. */
enum class ReplPolicy
{
    LRU,
    FIFO,
    Random,
};

const char *replPolicyName(ReplPolicy policy);

/** Geometry and access latency for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 64;
    Cycle latency = 2;
    ReplPolicy policy = ReplPolicy::LRU;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }

    /** Panics if the geometry is not a valid power-of-two layout. */
    void validate() const;

    /** 64KB 2-way 64B 2-cycle L1D (Table 1). */
    static CacheConfig l1d();
    /** 64KB 4-way 64B 2-cycle L1I (Table 1). */
    static CacheConfig l1i();
    /** 1MB 8-way 64B 20-cycle unified L2 (Table 1). */
    static CacheConfig l2();
};

} // namespace ltc

#endif // LTC_CACHE_CACHE_CONFIG_HH
