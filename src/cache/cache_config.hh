/**
 * @file
 * Cache geometry and latency configuration (Table 1 of the paper).
 */

#ifndef LTC_CACHE_CACHE_CONFIG_HH
#define LTC_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace ltc
{

/**
 * Replacement policy selector for a cache instance. Each enumerator
 * has a compile-time plugin counterpart in cache/repl_policy.hh; the
 * engines devirtualize on it alongside the static associativity.
 */
enum class ReplPolicy
{
    LRU,
    FIFO,
    Random,
    /** SRRIP: static re-reference interval prediction. */
    RRIP,
    /** DRRIP: set-dueling between SRRIP and BRRIP insertion. */
    DRRIP,
    /** SHiP-lite: signature-trained insertion over RRIP. */
    SHiP,
    /** LRU preferring blocks the predictor marked dead. */
    DeadBlock,
};

const char *replPolicyName(ReplPolicy policy);

/** All selectable policies, in enum order (sweep helper). */
inline constexpr ReplPolicy allReplPolicies[] = {
    ReplPolicy::LRU,    ReplPolicy::FIFO,  ReplPolicy::Random,
    ReplPolicy::RRIP,   ReplPolicy::DRRIP, ReplPolicy::SHiP,
    ReplPolicy::DeadBlock,
};

/** Geometry and access latency for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 64;
    Cycle latency = 2;
    ReplPolicy policy = ReplPolicy::LRU;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }

    /** Panics if the geometry is not a valid power-of-two layout. */
    void validate() const;

    /** 64KB 2-way 64B 2-cycle L1D (Table 1). */
    static CacheConfig l1d();
    /** 64KB 4-way 64B 2-cycle L1I (Table 1). */
    static CacheConfig l1i();
    /** 1MB 8-way 64B 20-cycle unified L2 (Table 1). */
    static CacheConfig l2();
};

} // namespace ltc

#endif // LTC_CACHE_CACHE_CONFIG_HH
