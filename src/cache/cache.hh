/**
 * @file
 * Functional set-associative cache model.
 *
 * This is the substrate under every predictor study: it exposes the
 * victim of each replacement (the raw material of last-touch
 * signatures), supports prefetch fills that replace a *predicted*
 * dead block rather than the replacement-policy victim (how DBCP and
 * LT-cords place data directly into L1D without pollution, Section 2),
 * and notifies an optional listener of every eviction.
 */

#ifndef LTC_CACHE_CACHE_HH
#define LTC_CACHE_CACHE_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/repl_policy.hh"
#include "cache/set_scan.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace ltc
{

/**
 * Engine-owned per-line metadata bits.
 *
 * The simulation engines used to keep side tables (hash maps keyed by
 * block address) describing how a prefetched line was fetched; those
 * probes sat on the per-reference hot path. The bits now live on the
 * cache line itself and travel with it: access() reports and clears
 * them (CacheOutcome::meta), evictions hand them to the listener
 * (victim_meta). The cache never interprets them.
 */
enum : std::uint8_t
{
    /** A fetched-off-chip classification entry exists for the line. */
    LineMetaFetched = 0x1,
    /** The prefetch that filled the line crossed the chip boundary. */
    LineMetaOffChip = 0x2,
};

/** Observer of cache events (used by analyses and predictors). */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /**
     * A valid block was evicted.
     * @param victim_addr   Block-aligned address of the evicted block.
     * @param incoming_addr Block-aligned address that replaces it.
     * @param set           Set index.
     * @param by_prefetch   True when the fill was a prefetch.
     * @param victim_was_untouched_prefetch True when the victim had
     *        been prefetched and never referenced by demand (a
     *        useless prefetch).
     * @param victim_dirty  True when the victim line was dirty (a
     *        store had touched it since the fill): the eviction owes
     *        the next level a writeback.
     * @param victim_meta   The victim line's engine-owned metadata
     *        bits (LineMeta*) at eviction time.
     */
    virtual void onEviction(Addr victim_addr, Addr incoming_addr,
                            std::uint32_t set, bool by_prefetch,
                            bool victim_was_untouched_prefetch,
                            bool victim_dirty,
                            std::uint8_t victim_meta) = 0;
};

/** Result of one cache access or fill. */
struct CacheOutcome
{
    bool hit = false;
    /** The hit consumed a prefetched, never-yet-referenced block. */
    bool hitUntouchedPrefetch = false;
    /** A valid block was evicted by this access. */
    bool evicted = false;
    /** The evicted block was dirty (writeback owed), if evicted. */
    bool victimDirty = false;
    /** Block-aligned address of the evicted block (if evicted). */
    Addr victimAddr = invalidAddr;
    /** Set index touched by the access. */
    std::uint32_t set = 0;
    /**
     * On a hit: the line's engine-owned metadata bits, which the
     * access consumed (the line's copy is cleared — a demand touch
     * ends the line's prefetched life, so its classification entry
     * moves to the outcome).
     */
    std::uint8_t meta = 0;
};

/**
 * Set-associative cache with pluggable replacement. Data are not
 * modelled (trace-driven). Each way is packed into 16 bytes — one
 * word holding the block tag plus all status/metadata bits, one word
 * holding the replacement stamp — so a whole 8-way set spans two host
 * cache lines and the lookup/victim scans of the simulation hot path
 * stay memory-cheap. The static-associativity instantiations route
 * those scans through the SIMD kernels of cache/set_scan.hh.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Demand access: on a miss the block is filled, evicting the
     * replacement-policy victim. Defined inline below: this is the
     * innermost call of the engines' batched run loops, and inlining
     * the whole lookup/insert chain there is worth ~2x simulator
     * throughput.
     *
     * @tparam StaticAssoc Compile-time associativity, or 0 (the
     *         default) to read it from the configuration. The
     *         engines' batched kernels dispatch to a non-zero
     *         instantiation for the common geometries so the compiler
     *         unrolls the way scans (the same contract as
     *         accessBaseline); callers must pass either 0 or exactly
     *         config().assoc.
     * @tparam Policy Replacement-policy plugin (cache/repl_policy.hh),
     *         or PolicyAuto (the default) to dispatch on the
     *         configured policy per call. The engines' batched
     *         kernels instantiate the concrete policy alongside
     *         StaticAssoc so the whole decision chain devirtualizes;
     *         callers must pass either PolicyAuto or the policy
     *         matching config().policy.
     */
    template <std::uint32_t StaticAssoc = 0, typename Policy = PolicyAuto>
    CacheOutcome access(Addr addr, MemOp op);

    /**
     * Register-resident counter state for the baseline batch kernel.
     * The stamp counter and occupancy statistics live in this POD for
     * the duration of a batch, so the inner loop carries no
     * loop-carried dependences through the cache object's memory.
     * Snapshot with baselineCursor(), thread through every
     * accessBaseline() of the batch, write back with
     * commitBaseline().
     */
    struct BaselineCursor
    {
        std::uint64_t stamp = 0;
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    /** Snapshot the counters for a baseline batch. */
    BaselineCursor
    baselineCursor() const
    {
        return {stamp_, accesses_, misses_, evictions_};
    }

    /** Write a batch's counters back (pairs with baselineCursor()). */
    void
    commitBaseline(const BaselineCursor &cur)
    {
        stamp_ = cur.stamp;
        accesses_ = cur.accesses;
        misses_ = cur.misses;
        evictions_ = cur.evictions;
    }

    /**
     * Trimmed demand access for baseline (demand-only) runs: same
     * state transitions as access() but reports only hit/miss and
     * counts into @p cur instead of the member statistics.
     *
     * @tparam StaticAssoc Compile-time associativity, or 0 to read it
     *         from the configuration. Engines dispatch to a non-zero
     *         instantiation when the geometry matches a common one
     *         (the constant lets the compiler unroll the way scans,
     *         worth ~2x on miss-heavy streams); callers must pass
     *         either 0 or exactly config().assoc.
     *
     * Preconditions the caller must guarantee (the predictor-less
     * engine fast path does, by construction): no line carries
     * prefetched/metadata state, and any attached listener ignores
     * demand evictions — under those, skipping the outcome struct and
     * the listener call is behaviour-identical, and the batch/scalar
     * equivalence tests pin it.
     *
     * @tparam Policy PolicyAuto or the policy matching
     *         config().policy, as for access().
     */
    template <std::uint32_t StaticAssoc = 0, typename Policy = PolicyAuto>
    bool accessBaseline(Addr addr, MemOp op, BaselineCursor &cur);

    /**
     * Prefetch fill that replaces @p predicted_victim if that block is
     * resident in the target set; otherwise the policy victim is
     * evicted. Filling an already-resident block is a no-op (reported
     * as hit).
     */
    CacheOutcome fillReplacing(Addr addr, Addr predicted_victim);

    /**
     * Prefetch fill using the normal replacement victim.
     * @param mark_prefetched Track the line as an untouched prefetch
     *        (usefulness accounting). Pass false when this cache is
     *        only a waypoint and another level tracks usefulness
     *        (e.g. the L2 install of an L1-directed prefetch).
     */
    CacheOutcome fill(Addr addr, bool mark_prefetched = true);

    /**
     * Non-mutating residence check. Inline: the timing engine's
     * prefetch enqueue/issue filters probe both levels per request.
     */
    bool probe(Addr addr) const { return findIndex(addr) != noWay; }

    /** Invalidate @p addr if resident; returns true if it was. */
    bool invalidate(Addr addr);

    /** Invalidate everything (context loss experiments). */
    void flush();

    /** True if the block was brought in by a prefetch and not yet
     *  referenced by demand. */
    bool isUntouchedPrefetch(Addr addr) const;

    /**
     * Set the dirty bit of @p addr's line (an inclusive outer level
     * absorbing a dirty victim writeback from the level above).
     * No-op when the block is not resident; returns whether it was.
     */
    bool setDirty(Addr addr);

    /**
     * Mark @p addr's line as predicted dead. Only meaningful under
     * ReplPolicy::DeadBlock, whose victim selection prefers marked
     * ways (the engines feed it the predictor's last-touch victim
     * predictions); a later demand touch clears the mark. No-op when
     * the block is not resident; returns whether it was.
     */
    bool markDead(Addr addr);

    /**
     * Whether @p addr is resident and still carries a dead mark (a
     * demand touch since markDead clears it). The engines use this
     * to gate directed prefetch replacement under DeadBlock: a
     * revived block is spared and the policy picks the victim.
     */
    bool isDead(Addr addr) const;

    /**
     * Overwrite the engine-owned metadata bits of @p addr's line.
     * No-op when the block is not resident; returns whether it was.
     */
    bool setMeta(Addr addr, std::uint8_t meta);

    /**
     * Read and clear the engine-owned metadata bits of @p addr's
     * line; 0 when the block is not resident.
     */
    std::uint8_t takeMeta(Addr addr);

    /**
     * Record an engine-owned mark for @p addr, a block that was just
     * evicted from this cache (the trace engine's "early eviction"
     * candidates). Marked blocks are by definition NOT resident, so
     * the mark cannot ride on a line; it lives in a per-set side list
     * instead, which is empty in predictor-less runs and a handful of
     * entries otherwise — checking it costs one indexed load, not a
     * hash probe. Inserting an already-marked block is a no-op.
     */
    void markEvicted(Addr addr);

    /**
     * Remove the eviction mark for @p addr if present; returns
     * whether it was. Engines call this whenever the block becomes
     * resident again (demand miss or prefetch fill). Inline: this
     * sits on the engines' per-miss path, and the common no-marks
     * case is a single indexed load.
     */
    bool
    clearEvictedMark(Addr addr)
    {
        const Addr block = blockAlign(addr);
        std::vector<Addr> &bucket = evictMarks_[setIndex(block)];
        if (bucket.empty())
            return false;
        return clearEvictedMarkSlow(bucket, block);
    }

    void setListener(CacheListener *listener) { listener_ = listener; }

    /**
     * Walk the whole structure and LTC_CHECK every representation
     * invariant of the packed-tag SoA layout: invalid lines are
     * all-zero, valid tag words map back to their own set, no block
     * is resident twice in a set, replacement stamps never run ahead
     * of the global stamp counter, eviction-mark buckets hold only
     * aligned, non-resident, non-duplicate blocks of their own set,
     * and the counters are mutually consistent. Cold path: called at
     * engine batch boundaries when auditing is enabled (see
     * util/check.hh) and directly by the property/death-test suites.
     * Panics on the first violation.
     */
    void auditInvariants() const;

    const CacheConfig &config() const { return config_; }

    /** Block-aligned address for @p addr under this cache's geometry. */
    Addr blockAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(config_.lineBytes - 1);
    }

    /** Set index for @p addr. */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr >> lineBits_) & setMask_);
    }

    // Occupancy statistics.
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t prefetchFills() const { return prefetchFills_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                static_cast<double>(accesses_)
                         : 0.0;
    }

  private:
    // Packed tag word: (block number & tagMask) << tagShift, OR'd
    // with the status bits; 0 = invalid. The layout constants
    // (lineValid .. tagSelect) live at namespace scope in
    // cache/repl_policy.hh, shared with the replacement-policy
    // plugins whose per-line state rides in the policy bits. Tag
    // words and replacement stamps live in parallel row-major arrays
    // (structure-of-arrays): a whole 8-way set's tags span a single
    // host cache line, so the lookup scan of the simulation hot path
    // touches minimal memory, and the stamps are only read by victim
    // selection (LRU last-use, updated on hit; FIFO fill stamp,
    // written at insert — the policies never need both at once).

    /** Block number of @p addr, masked to the packed tag width. */
    std::uint64_t
    tagOf(Addr addr) const
    {
        return (addr >> lineBits_) & tagMask;
    }

    /** Block-aligned address stored in a line's tag word. */
    Addr
    lineAddr(std::uint64_t tag_flags) const
    {
        return (tag_flags >> tagShift) << lineBits_;
    }

    static std::uint8_t
    lineMeta(std::uint64_t tag_flags)
    {
        return static_cast<std::uint8_t>(
            (tag_flags >> lineMetaShift) & 0x3);
    }

    /** No way holds the block. */
    static constexpr std::size_t noWay = ~std::size_t{0};

    /** Index of @p addr's line in tagFlags_/stamps_; noWay if absent. */
    std::size_t findIndex(Addr addr) const;
    /**
     * Way in @p tags (one set's tag words) whose (word & tagSelect)
     * equals @p want; noWay if absent. A non-zero StaticAssoc takes
     * the set-scan kernel (SIMD when compiled in, cache/set_scan.hh);
     * 0 reads the associativity from the configuration.
     */
    template <std::uint32_t StaticAssoc = 0>
    std::size_t matchWay(const std::uint64_t *tags,
                         std::uint64_t want) const;
    /** @tparam StaticAssoc 0 or exactly config().assoc (see access).
     *  @tparam Policy PolicyAuto or the configured policy's plugin. */
    template <std::uint32_t StaticAssoc = 0, typename Policy = PolicyAuto>
    std::uint32_t victimWay(std::uint32_t set);
    template <typename Policy = PolicyAuto>
    CacheOutcome insert(std::uint64_t tag, std::uint32_t set,
                        std::uint32_t way, bool by_prefetch,
                        bool mark_prefetched, bool dirty);
    bool clearEvictedMarkSlow(std::vector<Addr> &bucket, Addr block);

    CacheConfig config_;
    unsigned lineBits_;
    std::uint64_t setMask_;
    std::vector<std::uint64_t> tagFlags_; //!< sets x ways, row-major
    std::vector<std::uint64_t> stamps_;   //!< parallel to tagFlags_
    /**
     * Per-set eviction marks (markEvicted()). Kept sorted by nothing
     * — membership only; buckets stay allocated across clears so the
     * steady state is allocation-free.
     */
    std::vector<std::vector<Addr>> evictMarks_;
    std::uint64_t stamp_ = 0;
    Rng rng_{12345};
    /** Table state for the policies that need it (DRRIP, SHiP). */
    PolicyState policyState_;
    CacheListener *listener_ = nullptr;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t prefetchFills_ = 0;

    /** Death-test hook: lets the invariant suite corrupt state. */
    friend struct TestPeer;
};

// ------------------------------------------------------ hot path
//
// The demand-access chain (findIndex -> access -> insert) is defined
// inline here so the engines' batched run loops compile it into one
// tight loop: no call boundary is crossed per reference except the
// (rare) eviction-listener virtual call.
//
// LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
// operator and virtual declarations between these markers.

template <std::uint32_t StaticAssoc>
inline std::size_t
Cache::matchWay(const std::uint64_t *tags, std::uint64_t want) const
{
    if constexpr (StaticAssoc != 0) {
        // A block is resident at most once per set, so the match mask
        // holds at most one bit and firstWay() is exact, not a
        // tie-break (pinned by auditInvariants / cache_test).
        const std::uint32_t m =
            maskedEqBits<StaticAssoc>(tags, tagSelect, want);
        return m ? firstWay(m) : noWay;
    } else {
        for (std::uint32_t w = 0; w < config_.assoc; w++) {
            if ((tags[w] & tagSelect) == want)
                return w;
        }
        return noWay;
    }
}

inline std::size_t
Cache::findIndex(Addr addr) const
{
    const std::uint64_t tag = tagOf(addr);
    const std::uint32_t set =
        static_cast<std::uint32_t>((addr >> lineBits_) & setMask_);
    const std::uint64_t want = (tag << tagShift) | lineValid;
    const std::size_t base =
        static_cast<std::size_t>(set) * config_.assoc;
    const std::size_t way = matchWay<0>(tagFlags_.data() + base, want);
    return way == noWay ? noWay : base + way;
}

template <std::uint32_t StaticAssoc, typename Policy>
inline std::uint32_t
Cache::victimWay(std::uint32_t set)
{
    if constexpr (std::is_same_v<Policy, PolicyAuto>) {
        return withPolicy(config_.policy, [&](auto pol) {
            return victimWay<StaticAssoc, decltype(pol)>(set);
        });
    } else {
        const std::uint32_t assoc =
            StaticAssoc ? StaticAssoc : config_.assoc;
        const std::size_t base = static_cast<std::size_t>(set) * assoc;
        // Prefer an invalid way: the lowest one, matching the scalar
        // first-invalid scan. Only all-valid sets consult the policy.
        if constexpr (StaticAssoc != 0) {
            const std::uint32_t inv = maskedEqBits<StaticAssoc>(
                tagFlags_.data() + base, lineValid, 0);
            if (inv)
                return firstWay(inv);
        } else {
            for (std::uint32_t w = 0; w < assoc; w++) {
                if (!(tagFlags_[base + w] & lineValid))
                    return w;
            }
        }
        return Policy::template victim<StaticAssoc>(
            tagFlags_.data() + base, stamps_.data() + base, assoc, set,
            rng_, policyState_);
    }
}

template <typename Policy>
inline CacheOutcome
Cache::insert(std::uint64_t tag, std::uint32_t set, std::uint32_t way,
              bool by_prefetch, bool mark_prefetched, bool dirty)
{
    if constexpr (std::is_same_v<Policy, PolicyAuto>) {
        return withPolicy(config_.policy, [&](auto pol) {
            return insert<decltype(pol)>(tag, set, way, by_prefetch,
                                         mark_prefetched, dirty);
        });
    } else {
        const std::size_t idx =
            static_cast<std::size_t>(set) * config_.assoc + way;
        const std::uint64_t old = tagFlags_[idx];

        CacheOutcome out;
        out.set = set;
        if (old & lineValid) {
            out.evicted = true;
            out.victimDirty = (old & lineDirty) != 0;
            out.victimAddr = lineAddr(old);
            evictions_++;
            Policy::onEvict(old, policyState_);
            if (listener_) {
                listener_->onEviction(
                    out.victimAddr, (tag << lineBits_), set,
                    by_prefetch, (old & linePrefetched) != 0,
                    out.victimDirty, lineMeta(old));
            }
        }
        tagFlags_[idx] = (tag << tagShift) | lineValid |
            (dirty ? lineDirty : 0) |
            (mark_prefetched ? linePrefetched : 0) |
            Policy::insertBits(tag, set, policyState_);
        stamps_[idx] = ++stamp_;
        return out;
    }
}

template <std::uint32_t StaticAssoc, typename Policy>
inline CacheOutcome
Cache::access(Addr addr, MemOp op)
{
    if constexpr (std::is_same_v<Policy, PolicyAuto>) {
        return withPolicy(config_.policy, [&](auto pol) {
            return access<StaticAssoc, decltype(pol)>(addr, op);
        });
    } else {
        accesses_++;
        const std::uint32_t assoc =
            StaticAssoc ? StaticAssoc : config_.assoc;
        const std::uint64_t tag = tagOf(addr);
        const std::uint32_t set =
            static_cast<std::uint32_t>((addr >> lineBits_) & setMask_);
        const std::uint64_t want = (tag << tagShift) | lineValid;
        const std::size_t base = static_cast<std::size_t>(set) * assoc;

        const std::size_t w =
            matchWay<StaticAssoc>(tagFlags_.data() + base, want);
        if (w != noWay) {
            const std::uint64_t tf = tagFlags_[base + w];
            CacheOutcome out;
            out.hit = true;
            out.hitUntouchedPrefetch = (tf & linePrefetched) != 0;
            out.set = set;
            out.meta = lineMeta(tf);
            // The demand touch consumes the prefetched/metadata
            // state; the policy then transforms its own bits (RRPV
            // promotion, outcome/dead marks).
            std::uint64_t cleared =
                tf & ~(linePrefetched | lineMetaMask);
            if (op == MemOp::Store)
                cleared |= lineDirty;
            tagFlags_[base + w] = Policy::onHit(cleared, policyState_);
            Policy::touch(stamps_.data() + base, w, stamp_);
            return out;
        }

        misses_++;
        return insert<Policy>(tag, set,
                              victimWay<StaticAssoc, Policy>(set),
                              false, false, op == MemOp::Store);
    }
}

template <std::uint32_t StaticAssoc, typename Policy>
inline bool
Cache::accessBaseline(Addr addr, MemOp op, BaselineCursor &cur)
{
    if constexpr (std::is_same_v<Policy, PolicyAuto>) {
        return withPolicy(config_.policy, [&](auto pol) {
            return accessBaseline<StaticAssoc, decltype(pol)>(addr, op,
                                                              cur);
        });
    } else {
        cur.accesses++;
        const std::uint32_t assoc =
            StaticAssoc ? StaticAssoc : config_.assoc;
        const std::uint64_t bn = addr >> lineBits_;
        const std::uint64_t want =
            ((bn & tagMask) << tagShift) | lineValid;
        const std::uint32_t set =
            static_cast<std::uint32_t>(bn & setMask_);
        std::uint64_t *tags =
            tagFlags_.data() + static_cast<std::size_t>(set) * assoc;
        std::uint64_t *stamps =
            stamps_.data() + static_cast<std::size_t>(set) * assoc;

        // One fused compare per way: tag + valid, status bits masked.
        const std::size_t hit = matchWay<StaticAssoc>(tags, want);
        if (hit != noWay) {
            if constexpr (Policy::rewritesOnHit) {
                std::uint64_t word = tags[hit];
                if (op == MemOp::Store)
                    word |= lineDirty;
                tags[hit] = Policy::onHit(word, policyState_);
            } else {
                // The policy leaves the word alone: skip the store
                // unless the dirty bit changes (keeps the trimmed
                // kernel's hit path load-only for loads).
                if (op == MemOp::Store)
                    tags[hit] |= lineDirty;
            }
            Policy::touch(stamps, hit, cur.stamp);
            return true;
        }

        cur.misses++;
        std::uint32_t way = assoc;
        if constexpr (StaticAssoc != 0) {
            const std::uint32_t inv =
                maskedEqBits<StaticAssoc>(tags, lineValid, 0);
            if (inv)
                way = firstWay(inv);
        } else {
            for (std::uint32_t w = 0; w < assoc; w++) {
                if (!(tags[w] & lineValid)) {
                    way = w;
                    break;
                }
            }
        }
        if (way == assoc) {
            cur.evictions++; // every way valid: the victim is live
            way = Policy::template victim<StaticAssoc>(
                tags, stamps, assoc, set, rng_, policyState_);
            Policy::onEvict(tags[way], policyState_);
        }
        tags[way] = want | (op == MemOp::Store ? lineDirty : 0) |
            Policy::insertBits(bn & tagMask, set, policyState_);
        stamps[way] = ++cur.stamp;
        return false;
    }
}

// LTC_HOT_END

} // namespace ltc

#endif // LTC_CACHE_CACHE_HH
