/**
 * @file
 * Functional set-associative cache model.
 *
 * This is the substrate under every predictor study: it exposes the
 * victim of each replacement (the raw material of last-touch
 * signatures), supports prefetch fills that replace a *predicted*
 * dead block rather than the replacement-policy victim (how DBCP and
 * LT-cords place data directly into L1D without pollution, Section 2),
 * and notifies an optional listener of every eviction.
 */

#ifndef LTC_CACHE_CACHE_HH
#define LTC_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace ltc
{

/** Observer of cache events (used by analyses and predictors). */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /**
     * A valid block was evicted.
     * @param victim_addr   Block-aligned address of the evicted block.
     * @param incoming_addr Block-aligned address that replaces it.
     * @param set           Set index.
     * @param by_prefetch   True when the fill was a prefetch.
     * @param victim_was_untouched_prefetch True when the victim had
     *        been prefetched and never referenced by demand (a
     *        useless prefetch).
     */
    virtual void onEviction(Addr victim_addr, Addr incoming_addr,
                            std::uint32_t set, bool by_prefetch,
                            bool victim_was_untouched_prefetch) = 0;
};

/** Result of one cache access or fill. */
struct CacheOutcome
{
    bool hit = false;
    /** The hit consumed a prefetched, never-yet-referenced block. */
    bool hitUntouchedPrefetch = false;
    /** A valid block was evicted by this access. */
    bool evicted = false;
    /** Block-aligned address of the evicted block (if evicted). */
    Addr victimAddr = invalidAddr;
    /** Set index touched by the access. */
    std::uint32_t set = 0;
};

/**
 * Set-associative cache with pluggable replacement. Tags are stored
 * as full block addresses; data are not modelled (trace-driven).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Demand access: on a miss the block is filled, evicting the
     * replacement-policy victim.
     */
    CacheOutcome access(Addr addr, MemOp op);

    /**
     * Prefetch fill that replaces @p predicted_victim if that block is
     * resident in the target set; otherwise the policy victim is
     * evicted. Filling an already-resident block is a no-op (reported
     * as hit).
     */
    CacheOutcome fillReplacing(Addr addr, Addr predicted_victim);

    /**
     * Prefetch fill using the normal replacement victim.
     * @param mark_prefetched Track the line as an untouched prefetch
     *        (usefulness accounting). Pass false when this cache is
     *        only a waypoint and another level tracks usefulness
     *        (e.g. the L2 install of an L1-directed prefetch).
     */
    CacheOutcome fill(Addr addr, bool mark_prefetched = true);

    /** Non-mutating residence check. */
    bool probe(Addr addr) const;

    /** Invalidate @p addr if resident; returns true if it was. */
    bool invalidate(Addr addr);

    /** Invalidate everything (context loss experiments). */
    void flush();

    /** True if the block was brought in by a prefetch and not yet
     *  referenced by demand. */
    bool isUntouchedPrefetch(Addr addr) const;

    void setListener(CacheListener *listener) { listener_ = listener; }

    const CacheConfig &config() const { return config_; }

    /** Block-aligned address for @p addr under this cache's geometry. */
    Addr blockAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(config_.lineBytes - 1);
    }

    /** Set index for @p addr. */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr >> lineBits_) & setMask_);
    }

    // Occupancy statistics.
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t prefetchFills() const { return prefetchFills_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                static_cast<double>(accesses_)
                         : 0.0;
    }

  private:
    struct Line
    {
        Addr blockAddr = invalidAddr;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;   //!< filled by prefetch, not yet used
        std::uint64_t lastUse = 0; //!< LRU stamp
        std::uint64_t fillTime = 0; //!< FIFO stamp
    };

    Line *findLine(Addr block_addr);
    const Line *findLine(Addr block_addr) const;
    std::uint32_t victimWay(std::uint32_t set);
    CacheOutcome insert(Addr block_addr, std::uint32_t way,
                        bool by_prefetch, bool mark_prefetched);

    CacheConfig config_;
    unsigned lineBits_;
    std::uint64_t setMask_;
    std::vector<Line> lines_; //!< sets x ways, row-major
    std::uint64_t stamp_ = 0;
    Rng rng_{12345};
    CacheListener *listener_ = nullptr;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t prefetchFills_ = 0;
};

} // namespace ltc

#endif // LTC_CACHE_CACHE_HH
