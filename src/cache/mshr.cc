#include "cache/mshr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ltc
{

MshrFile::MshrFile(std::uint32_t capacity) : capacity_(capacity)
{
    ltc_assert(capacity_ > 0, "MshrFile needs at least one register");
    entries_.reserve(capacity_);
}

Cycle
MshrFile::allocReadyAt(Cycle now) const
{
    if (entries_.size() < capacity_)
        return now;
    Cycle earliest = entries_.front().completion;
    for (const Entry &e : entries_)
        earliest = std::min(earliest, e.completion);
    return std::max(now, earliest);
}

void
MshrFile::allocate(Addr block_addr, Cycle start, Cycle completion)
{
    // Entries completing at or before the allocation time are free.
    retire(start);
    ltc_assert(entries_.size() < capacity_,
               "MSHR allocate with full file; consult allocReadyAt");
    entries_.push_back({block_addr, completion});
    peak_ = std::max<std::uint32_t>(
        peak_, static_cast<std::uint32_t>(entries_.size()));
}

std::optional<Cycle>
MshrFile::lookup(Addr block_addr) const
{
    for (const Entry &e : entries_)
        if (e.blockAddr == block_addr)
            return e.completion;
    return std::nullopt;
}

void
MshrFile::retire(Cycle now)
{
    std::erase_if(entries_,
                  [now](const Entry &e) { return e.completion <= now; });
}

void
MshrFile::clear()
{
    entries_.clear();
}

} // namespace ltc
