#include "cache/mshr.hh"

namespace ltc
{

MshrFile::MshrFile(std::uint32_t capacity) : capacity_(capacity)
{
    ltc_assert(capacity_ > 0, "MshrFile needs at least one register");
    entries_.reserve(capacity_);
}

void
MshrFile::retireSlow(Cycle now)
{
    std::erase_if(entries_,
                  [now](const Entry &e) { return e.completion <= now; });
    // Rebuild the earliest-completion cache and the presence filter
    // from the survivors (the only point where filter bits clear).
    Cycle earliest = noEarliest;
    present_.fill(0);
    for (const Entry &e : entries_) {
        earliest = std::min(earliest, e.completion);
        present_[maskWord(e.blockAddr)] |= maskBit(e.blockAddr);
    }
    earliest_ = earliest;
}

void
MshrFile::clear()
{
    entries_.clear();
    earliest_ = noEarliest;
    present_.fill(0);
}

} // namespace ltc
