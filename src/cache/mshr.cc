#include "cache/mshr.hh"

#include "util/check.hh"

namespace ltc
{

MshrFile::MshrFile(std::uint32_t capacity) : capacity_(capacity)
{
    ltc_assert(capacity_ > 0, "MshrFile needs at least one register");
    entries_.reserve(capacity_);
}

void
MshrFile::retireSlow(Cycle now)
{
    std::erase_if(entries_,
                  [now](const Entry &e) { return e.completion <= now; });
    // Rebuild the earliest-completion cache and the presence filter
    // from the survivors (the only point where filter bits clear).
    Cycle earliest = noEarliest;
    present_.fill(0);
    for (const Entry &e : entries_) {
        earliest = std::min(earliest, e.completion);
        present_[maskWord(e.blockAddr)] |= maskBit(e.blockAddr);
    }
    earliest_ = earliest;
}

void
MshrFile::auditInvariants() const
{
    LTC_CHECK(entries_.size() <= capacity_, entries_.size(),
              " outstanding in a ", capacity_, "-register file");
    LTC_CHECK(peak_ <= capacity_, "peak occupancy ", peak_,
              " exceeds capacity ", capacity_);
    LTC_CHECK(peak_ >= entries_.size(), "peak occupancy ", peak_,
              " behind current occupancy ", entries_.size());

    Cycle earliest = noEarliest;
    for (std::size_t i = 0; i < entries_.size(); i++) {
        const Entry &e = entries_[i];
        earliest = std::min(earliest, e.completion);
        LTC_CHECK(present_[maskWord(e.blockAddr)] & maskBit(e.blockAddr),
                  "presence filter misses outstanding block ",
                  e.blockAddr);
        for (std::size_t j = i + 1; j < entries_.size(); j++) {
            LTC_CHECK(entries_[j].blockAddr != e.blockAddr,
                      "duplicate MSHR entry for block ", e.blockAddr);
        }
    }
    LTC_CHECK(earliest_ == earliest, "cached earliest-completion ",
              earliest_, ", true minimum ", earliest);
}

void
MshrFile::clear()
{
    entries_.clear();
    earliest_ = noEarliest;
    present_.fill(0);
}

} // namespace ltc
