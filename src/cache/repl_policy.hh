/**
 * @file
 * Compile-time replacement-policy plugins for the packed-tag cache.
 *
 * Each policy is a stateless struct of static hooks the cache's hot
 * path calls at the three replacement decision points — demand hit,
 * victim selection, line insertion — plus an eviction hook for
 * policies that train on outcomes. The hooks operate directly on one
 * set's packed tag words and replacement stamps (see cache/cache.hh
 * for the layout), so a kernel instantiated with a concrete policy
 * compiles to straight-line code with no per-access dispatch: the
 * engines' batched loops carry a Policy template parameter alongside
 * the static associativity and stay fully devirtualized.
 *
 * Per-line policy state lives in the spare bits of the packed 8-byte
 * tag word (linePolicyMask, three bits between the engine metadata
 * and the tag field):
 *
 *  - bits 5-6  RRPV (re-reference prediction value) for the RRIP
 *              family [Jaleel et al., ISCA 2010],
 *  - bit 7     auxiliary flag: SHiP-lite's "reused" outcome bit, or
 *              the dead-block policy's dead mark.
 *
 * LRU and FIFO keep using the 8-byte stamp array (last-use stamp
 * updated on hit vs fill stamp written at insert); Random draws from
 * the cache's RNG only on all-valid conflict misses, preserving the
 * draw order the equivalence suites pin. Policies with table state
 * (DRRIP's PSEL, SHiP's signature counter table) keep it in the
 * cache-owned PolicyState, off the per-line format.
 */

#ifndef LTC_CACHE_REPL_POLICY_HH
#define LTC_CACHE_REPL_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/set_scan.hh"
#include "util/random.hh"

namespace ltc
{

// Packed tag-word layout, shared by Cache and the policy plugins:
// (block number & tagMask) << tagShift, OR'd with the status bits
// below; 0 = invalid. Block numbers use the top 56 bits, which is
// lossless for every simulated footprint (aliases only past 2^56
// blocks). See cache/cache.hh for how the words are stored.
constexpr std::uint64_t lineValid = 0x01;
constexpr std::uint64_t lineDirty = 0x02;
constexpr std::uint64_t linePrefetched = 0x04;
constexpr unsigned lineMetaShift = 3; //!< 2 LineMeta* bits
constexpr std::uint64_t lineMetaMask = 0x3u << lineMetaShift;
/** Replacement-policy bits: 2-bit RRPV plus the auxiliary flag. */
constexpr unsigned linePolicyShift = 5;
constexpr std::uint64_t linePolicyMask =
    std::uint64_t{0x7} << linePolicyShift;
/** The RRIP family's 2-bit re-reference prediction value. */
constexpr std::uint64_t lineRrpvMask =
    std::uint64_t{0x3} << linePolicyShift;
constexpr std::uint64_t lineRrpvStep = std::uint64_t{1}
    << linePolicyShift;
/** RRPV 3: predicted distant re-reference (the eviction candidate). */
constexpr std::uint64_t lineRrpvDistant = std::uint64_t{3}
    << linePolicyShift;
/** RRPV 2: predicted long re-reference (SRRIP's insertion value). */
constexpr std::uint64_t lineRrpvLong = std::uint64_t{2}
    << linePolicyShift;
/** SHiP-lite's reused-outcome bit / the dead-block policy's mark. */
constexpr std::uint64_t lineAuxBit = std::uint64_t{1}
    << (linePolicyShift + 2);
constexpr unsigned tagShift = 8;
constexpr std::uint64_t tagMask =
    (std::uint64_t{1} << (64 - tagShift)) - 1;
/** Bits compared by the lookup scans: tag + valid, status masked. */
constexpr std::uint64_t tagSelect =
    ~(lineDirty | linePrefetched | lineMetaMask | linePolicyMask);

/**
 * Cache-owned policy table state (one instance per cache). Only the
 * policies that need it read it; the plain stamp policies never touch
 * it, so it costs nothing on their paths.
 */
struct PolicyState
{
    /** DRRIP set-dueling selector (10-bit saturating, MSB decides). */
    std::uint32_t psel = 512;
    /** BRRIP epsilon counter: one long-re-reference insert in 32. */
    std::uint32_t bipCtr = 0;
    /**
     * SHiP-lite signature history counter table (2-bit counters,
     * shipShctEntries entries, initialised weakly-reused). Allocated
     * by the cache constructor only under ReplPolicy::SHiP.
     */
    std::vector<std::uint8_t> shct;
};

/** SHiP-lite signature table size (16K 2-bit counters = 16KB). */
constexpr std::uint32_t shipShctEntries = 16384;

/**
 * SHiP-lite signature of a packed block tag. Recomputed from the tag
 * at insert, hit and eviction time instead of being stored per line
 * (the paper's 14-bit per-line signature field does not fit the
 * 3-bit policy budget); the multiplicative hash keeps neighbouring
 * blocks from training one counter.
 */
inline std::uint32_t
shipSignature(std::uint64_t tag)
{
    return static_cast<std::uint32_t>(
        (tag * 0x9e3779b97f4a7c15ull) >> 50);
}

// ------------------------------------------------------ hot path
//
// LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
// operator and virtual declarations between these markers.

/** Way with the minimum replacement stamp (lowest way wins ties). */
inline std::uint32_t
minStampWay(const std::uint64_t *stamps, std::uint32_t assoc)
{
    // Strict compare keeps the lowest way among stamp ties, and the
    // fixed trip count lets the compiler unroll (the scan only runs
    // on conflict misses, so it stays scalar rather than SIMD).
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < assoc; w++) {
        if (stamps[w] < stamps[victim])
            victim = w;
    }
    return victim;
}

/**
 * RRIP victim scan: first way at distant RRPV, aging every line one
 * step until one reaches it. All ways are valid here (the cache
 * handles invalid ways before consulting the policy) and no way is
 * at RRPV 3 when the aging loop runs, so the +step never carries out
 * of the RRPV field. Terminates in at most three aging rounds.
 */
template <std::uint32_t StaticAssoc>
inline std::uint32_t
rripVictim(std::uint64_t *tags, std::uint32_t assoc)
{
    for (;;) {
        if constexpr (StaticAssoc != 0) {
            const std::uint32_t m = maskedEqBits<StaticAssoc>(
                tags, lineRrpvMask, lineRrpvDistant);
            if (m)
                return firstWay(m);
        } else {
            for (std::uint32_t w = 0; w < assoc; w++) {
                if ((tags[w] & lineRrpvMask) == lineRrpvDistant)
                    return w;
            }
        }
        for (std::uint32_t w = 0; w < assoc; w++)
            tags[w] += lineRrpvStep;
    }
}

/**
 * The plugin interface, by example. Hooks:
 *
 *  - onHit(word, state): transform the hitting line's tag word (the
 *    cache has already cleared the consumed prefetched/metadata bits
 *    and applied the dirty bit). rewritesOnHit tells the trimmed
 *    baseline kernel whether the word write can be skipped when the
 *    hit changes nothing else.
 *  - touch(stamps, way, stamp): update the replacement stamp on a
 *    demand hit (LRU's last-use refresh; FIFO leaves fill order).
 *  - victim<StaticAssoc>(tags, stamps, assoc, set, rng, state): pick
 *    the way to evict from an all-valid set; may mutate tag words
 *    (RRIP aging) and policy state.
 *  - insertBits(tag, set, state): policy bits OR'd into the freshly
 *    inserted line's tag word; may update policy state (DRRIP's PSEL
 *    training happens here, since every miss inserts).
 *  - onEvict(old_word, state): observe the evicted line's final tag
 *    word (SHiP trains its signature counters here).
 *
 * Every policy leaves the insert-time stamp write (++stamp) to the
 * cache, so the stamp invariants audited by Cache::auditInvariants
 * hold for all plugins.
 */
struct PolicyLRU
{
    static constexpr ReplPolicy id = ReplPolicy::LRU;
    static constexpr bool rewritesOnHit = false;

    static std::uint64_t
    onHit(std::uint64_t word, PolicyState &)
    {
        return word;
    }

    static void
    touch(std::uint64_t *stamps, std::size_t way, std::uint64_t &stamp)
    {
        stamps[way] = ++stamp;
    }

    template <std::uint32_t StaticAssoc>
    static std::uint32_t
    victim(std::uint64_t *, const std::uint64_t *stamps,
           std::uint32_t assoc, std::uint32_t, Rng &, PolicyState &)
    {
        return minStampWay(stamps, assoc);
    }

    static std::uint64_t
    insertBits(std::uint64_t, std::uint32_t, PolicyState &)
    {
        return 0;
    }

    static void onEvict(std::uint64_t, PolicyState &) {}
};

/** FIFO: insert-time stamps only; hits do not refresh. */
struct PolicyFIFO
{
    static constexpr ReplPolicy id = ReplPolicy::FIFO;
    static constexpr bool rewritesOnHit = false;

    static std::uint64_t
    onHit(std::uint64_t word, PolicyState &)
    {
        return word;
    }

    static void touch(std::uint64_t *, std::size_t, std::uint64_t &) {}

    template <std::uint32_t StaticAssoc>
    static std::uint32_t
    victim(std::uint64_t *, const std::uint64_t *stamps,
           std::uint32_t assoc, std::uint32_t, Rng &, PolicyState &)
    {
        return minStampWay(stamps, assoc);
    }

    static std::uint64_t
    insertBits(std::uint64_t, std::uint32_t, PolicyState &)
    {
        return 0;
    }

    static void onEvict(std::uint64_t, PolicyState &) {}
};

/**
 * Random: the cache's RNG is drawn exactly once per all-valid
 * conflict miss, in access order — the engine equivalence suites pin
 * the scalar and batched draw streams against each other.
 */
struct PolicyRandom
{
    static constexpr ReplPolicy id = ReplPolicy::Random;
    static constexpr bool rewritesOnHit = false;

    static std::uint64_t
    onHit(std::uint64_t word, PolicyState &)
    {
        return word;
    }

    static void touch(std::uint64_t *, std::size_t, std::uint64_t &) {}

    template <std::uint32_t StaticAssoc>
    static std::uint32_t
    victim(std::uint64_t *, const std::uint64_t *, std::uint32_t assoc,
           std::uint32_t, Rng &rng, PolicyState &)
    {
        return static_cast<std::uint32_t>(rng.below(assoc));
    }

    static std::uint64_t
    insertBits(std::uint64_t, std::uint32_t, PolicyState &)
    {
        return 0;
    }

    static void onEvict(std::uint64_t, PolicyState &) {}
};

/** SRRIP: insert long (RRPV 2), promote to 0 on hit, evict RRPV 3. */
struct PolicyRRIP
{
    static constexpr ReplPolicy id = ReplPolicy::RRIP;
    static constexpr bool rewritesOnHit = true;

    static std::uint64_t
    onHit(std::uint64_t word, PolicyState &)
    {
        return word & ~lineRrpvMask; // near-immediate re-reference
    }

    static void touch(std::uint64_t *, std::size_t, std::uint64_t &) {}

    template <std::uint32_t StaticAssoc>
    static std::uint32_t
    victim(std::uint64_t *tags, const std::uint64_t *,
           std::uint32_t assoc, std::uint32_t, Rng &, PolicyState &)
    {
        return rripVictim<StaticAssoc>(tags, assoc);
    }

    static std::uint64_t
    insertBits(std::uint64_t, std::uint32_t, PolicyState &)
    {
        return lineRrpvLong;
    }

    static void onEvict(std::uint64_t, PolicyState &) {}
};

/** BRRIP insertion: distant, with a 1-in-32 long-re-reference mix. */
inline std::uint64_t
brripInsert(PolicyState &ps)
{
    ps.bipCtr = (ps.bipCtr + 1) & 31;
    return ps.bipCtr == 0 ? lineRrpvLong : lineRrpvDistant;
}

/**
 * DRRIP: set-dueling between SRRIP and BRRIP insertion. Two leader
 * sets per 64 (set & 63 == 0 duels for SRRIP, == 1 for BRRIP) train
 * the 10-bit PSEL on their misses; follower sets use the winner.
 */
struct PolicyDRRIP
{
    static constexpr ReplPolicy id = ReplPolicy::DRRIP;
    static constexpr bool rewritesOnHit = true;

    static std::uint64_t
    onHit(std::uint64_t word, PolicyState &)
    {
        return word & ~lineRrpvMask;
    }

    static void touch(std::uint64_t *, std::size_t, std::uint64_t &) {}

    template <std::uint32_t StaticAssoc>
    static std::uint32_t
    victim(std::uint64_t *tags, const std::uint64_t *,
           std::uint32_t assoc, std::uint32_t, Rng &, PolicyState &)
    {
        return rripVictim<StaticAssoc>(tags, assoc);
    }

    static std::uint64_t
    insertBits(std::uint64_t, std::uint32_t set, PolicyState &ps)
    {
        const std::uint32_t duel = set & 63;
        if (duel == 0) { // SRRIP leader: its misses count against it
            if (ps.psel < 1023)
                ps.psel++;
            return lineRrpvLong;
        }
        if (duel == 1) { // BRRIP leader
            if (ps.psel > 0)
                ps.psel--;
            return brripInsert(ps);
        }
        return ps.psel >= 512 ? brripInsert(ps) : lineRrpvLong;
    }

    static void onEvict(std::uint64_t, PolicyState &) {}
};

/**
 * SHiP-lite: a signature history counter table predicts, per insert,
 * whether the line will be reused. Lines whose signature counter is
 * zero insert at distant RRPV (streaming data self-evicts); others
 * insert like SRRIP. The per-line outcome bit (lineAuxBit) records
 * the first demand reuse; eviction trains the table up or down.
 */
struct PolicySHiP
{
    static constexpr ReplPolicy id = ReplPolicy::SHiP;
    static constexpr bool rewritesOnHit = true;

    static std::uint64_t
    onHit(std::uint64_t word, PolicyState &ps)
    {
        if (!(word & lineAuxBit)) { // first demand reuse
            std::uint8_t &c = ps.shct[shipSignature(word >> tagShift)];
            if (c < 3)
                c++;
        }
        return (word & ~lineRrpvMask) | lineAuxBit;
    }

    static void touch(std::uint64_t *, std::size_t, std::uint64_t &) {}

    template <std::uint32_t StaticAssoc>
    static std::uint32_t
    victim(std::uint64_t *tags, const std::uint64_t *,
           std::uint32_t assoc, std::uint32_t, Rng &, PolicyState &)
    {
        return rripVictim<StaticAssoc>(tags, assoc);
    }

    static std::uint64_t
    insertBits(std::uint64_t tag, std::uint32_t, PolicyState &ps)
    {
        return ps.shct[shipSignature(tag)] == 0 ? lineRrpvDistant
                                                : lineRrpvLong;
    }

    static void
    onEvict(std::uint64_t old_word, PolicyState &ps)
    {
        if (!(old_word & lineAuxBit)) { // died without a reuse
            std::uint8_t &c =
                ps.shct[shipSignature(old_word >> tagShift)];
            if (c > 0)
                c--;
        }
    }
};

/**
 * Dead-block-aware replacement: LRU whose victim choice prefers
 * blocks an external oracle marked dead (Cache::markDead — the
 * engines feed it LT-cords' last-touch victim predictions, so the
 * paper's mechanism drives replacement, not just prefetch). A demand
 * touch clears the mark: the prediction was wrong, the block lives.
 */
struct PolicyDeadBlock
{
    static constexpr ReplPolicy id = ReplPolicy::DeadBlock;
    static constexpr bool rewritesOnHit = true;

    static std::uint64_t
    onHit(std::uint64_t word, PolicyState &)
    {
        return word & ~lineAuxBit;
    }

    static void
    touch(std::uint64_t *stamps, std::size_t way, std::uint64_t &stamp)
    {
        stamps[way] = ++stamp;
    }

    template <std::uint32_t StaticAssoc>
    static std::uint32_t
    victim(std::uint64_t *tags, const std::uint64_t *stamps,
           std::uint32_t assoc, std::uint32_t, Rng &, PolicyState &)
    {
        // Prefer a predicted-dead way (the lowest, for determinism);
        // fall back to LRU when no prediction covers the set.
        if constexpr (StaticAssoc != 0) {
            const std::uint32_t dead = maskedEqBits<StaticAssoc>(
                tags, lineAuxBit, lineAuxBit);
            if (dead)
                return firstWay(dead);
        } else {
            for (std::uint32_t w = 0; w < assoc; w++) {
                if (tags[w] & lineAuxBit)
                    return w;
            }
        }
        return minStampWay(stamps, assoc);
    }

    static std::uint64_t
    insertBits(std::uint64_t, std::uint32_t, PolicyState &)
    {
        return 0;
    }

    static void onEvict(std::uint64_t, PolicyState &) {}
};

// LTC_HOT_END

/**
 * Runtime-dispatch pseudo-policy: cache entry points instantiated
 * with PolicyAuto switch on the configured policy and tail-call the
 * concrete instantiation. The scalar paths use it so every call site
 * stays source-compatible, and scalar and batched runs share one
 * policy implementation by construction.
 */
struct PolicyAuto
{
};

/** Invoke @p f with the concrete policy tag for @p p. */
template <typename F>
auto
withPolicy(ReplPolicy p, F &&f)
{
    switch (p) {
      case ReplPolicy::LRU:
        return f(PolicyLRU{});
      case ReplPolicy::FIFO:
        return f(PolicyFIFO{});
      case ReplPolicy::Random:
        return f(PolicyRandom{});
      case ReplPolicy::RRIP:
        return f(PolicyRRIP{});
      case ReplPolicy::DRRIP:
        return f(PolicyDRRIP{});
      case ReplPolicy::SHiP:
        return f(PolicySHiP{});
      case ReplPolicy::DeadBlock:
        return f(PolicyDeadBlock{});
    }
    return f(PolicyLRU{}); // unreachable: validate() rejects others
}

/**
 * The engines' static-policy dispatch: invoke @p f with the concrete
 * policy tag shared by both cache levels, or PolicyAuto (per-access
 * runtime dispatch) for mixed-policy hierarchies. Composes with
 * dispatchByAssociativity (cache/hierarchy.hh) so the batched
 * kernels devirtualize the policy alongside the way scans.
 */
template <typename F>
auto
dispatchReplPolicy(ReplPolicy l1_policy, ReplPolicy l2_policy, F &&f)
{
    if (l1_policy == l2_policy)
        return withPolicy(l1_policy, f);
    return std::forward<F>(f)(PolicyAuto{});
}

} // namespace ltc

#endif // LTC_CACHE_REPL_POLICY_HH
