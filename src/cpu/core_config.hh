/**
 * @file
 * Out-of-order core configuration (Table 1 of the paper).
 */

#ifndef LTC_CPU_CORE_CONFIG_HH
#define LTC_CPU_CORE_CONFIG_HH

#include <cstdint>

#include "util/types.hh"

namespace ltc
{

/** Core parameters used by the window timing model. */
struct CoreConfig
{
    /** Issue/retire width, instructions per cycle. */
    std::uint32_t width = 8;
    /** Reorder buffer entries. */
    std::uint32_t robSize = 256;
    /** Load/store queue entries. */
    std::uint32_t lsqSize = 128;
    /** L1D MSHRs (outstanding primary misses). */
    std::uint32_t l1dMshrs = 64;
    /** Latency of a non-memory instruction, cycles. */
    Cycle aluLatency = 1;
};

} // namespace ltc

#endif // LTC_CPU_CORE_CONFIG_HH
