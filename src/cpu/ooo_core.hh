/**
 * @file
 * ROB-window out-of-order core timing model.
 *
 * A compact substitute for SimpleScalar's sim-outorder that preserves
 * the mechanisms the paper's speedups depend on:
 *
 *  - issue and retire bandwidth of `width` instructions/cycle,
 *  - a finite reorder buffer: instruction k cannot enter the window
 *    until instruction k - robSize has retired, so long-latency
 *    misses at the ROB head stall the machine,
 *  - a finite load/store queue bounding memory instructions in
 *    flight,
 *  - in-order retirement: retire(k) >= max(complete(k), retire(k-1)),
 *    one retire slot per instruction at `width`/cycle.
 *
 * Internally time is kept in *slots* (1 slot = 1/width cycle) so all
 * arithmetic is exact integers. Independent misses naturally overlap
 * inside the window; dependent misses serialise because the engine
 * feeds the dependence chain in via the ready time of each access.
 */

#ifndef LTC_CPU_OOO_CORE_HH
#define LTC_CPU_OOO_CORE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cpu/core_config.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace ltc
{

class OooCore
{
  public:
    explicit OooCore(const CoreConfig &config);

    /**
     * Issue @p count single-cycle non-memory instructions. They occupy
     * issue bandwidth and ROB slots but never stall on data. Defined
     * inline below: the engines call this once per trace record, and
     * the per-instruction ring bookkeeping is the hot loop.
     */
    void issueNonMem(std::uint32_t count);

    /**
     * Begin issuing one memory instruction.
     * @return The cycle at which the instruction issues (i.e. the
     *         earliest cycle its address is available); the engine
     *         computes the access latency from this point.
     */
    Cycle beginMem();

    /**
     * Finish the memory instruction begun by beginMem().
     * @param completion Cycle its data arrives (>= its issue cycle).
     */
    void completeMem(Cycle completion);

    /** Instructions issued so far. */
    InstCount instructions() const { return instructions_; }

    /** Cycles elapsed once everything issued so far retires. */
    Cycle finishCycle() const;

    /** IPC over the lifetime of the core. */
    double ipc() const;

    /**
     * LTC_CHECK every ring invariant: head indices within their
     * rings, retire slots bounded by the newest retirement and
     * non-decreasing in insertion order (reversed or clobbered ring
     * indices silently violate in-order retirement), and instruction
     * counters mutually consistent. Cold path; panics on the first
     * violation.
     */
    void auditInvariants() const;

    /** Start a measurement interval (resets instruction/cycle base). */
    void beginInterval();
    /** Instructions retired in the current interval. */
    InstCount intervalInstructions() const;
    /** Cycles in the current interval. */
    Cycle intervalCycles() const;

  private:
    using Slot = std::uint64_t; //!< 1 slot = 1/width cycle

    Slot robConstraint() const;
    Slot lsqConstraint() const;
    void retireAt(Slot completion_slot);

    CoreConfig config_;

    /** Ring of retire slots for the last robSize instructions. */
    std::vector<Slot> robRing_;
    std::uint64_t robHead_ = 0; //!< index of oldest entry

    /** Ring of retire slots for the last lsqSize memory insts. */
    std::vector<Slot> lsqRing_;
    std::uint64_t lsqHead_ = 0;

    Slot frontier_ = 0;   //!< next issue slot
    Slot lastRetire_ = 0; //!< retire slot of the newest instruction
    InstCount instructions_ = 0;
    InstCount memInstructions_ = 0;

    bool memPending_ = false;
    Slot pendingIssueSlot_ = 0;

    InstCount intervalInstBase_ = 0;
    Cycle intervalCycleBase_ = 0;

    /** Death-test hook: lets the invariant suite corrupt state. */
    friend struct TestPeer;
};

// ------------------------------------------------------ hot path
//
// issueNonMem/beginMem/completeMem run once per trace record inside
// the engines' batched loops; they are defined inline here so the
// whole issue/retire chain compiles into the loop. The ring indices
// advance by exactly one per retirement, so the wrap is a compare
// (the old modulo was an integer division per instruction).
//
// LTC_HOT_BEGIN: tools/ltc_lint.py bans hash maps, the modulo
// operator and virtual declarations between these markers.

inline OooCore::Slot
OooCore::robConstraint() const
{
    // Instruction k occupies the slot freed when instruction
    // k - robSize retires; the ring stores retire slots in insert
    // order, so the head entry is the blocking one.
    return robRing_[robHead_];
}

inline OooCore::Slot
OooCore::lsqConstraint() const
{
    return lsqRing_[lsqHead_];
}

inline void
OooCore::retireAt(Slot completion_slot)
{
    // In-order retirement, one slot (1/width cycle) per instruction.
    const Slot retire = std::max(completion_slot, lastRetire_ + 1);
    lastRetire_ = retire;
    robRing_[robHead_] = retire;
    if (++robHead_ == config_.robSize)
        robHead_ = 0;
}

inline void
OooCore::issueNonMem(std::uint32_t count)
{
    ltc_assert(!memPending_, "issueNonMem with memory access pending");
    const Slot alu_slots =
        static_cast<Slot>(config_.aluLatency) * config_.width;
    for (std::uint32_t i = 0; i < count; i++) {
        const Slot issue = std::max(frontier_, robConstraint());
        frontier_ = issue + 1;
        retireAt(issue + alu_slots);
    }
    instructions_ += count;
}

inline Cycle
OooCore::beginMem()
{
    ltc_assert(!memPending_, "beginMem with memory access pending");
    const Slot issue =
        std::max({frontier_, robConstraint(), lsqConstraint()});
    memPending_ = true;
    pendingIssueSlot_ = issue;
    // Round up: the address is available at the end of the issue
    // cycle.
    return issue / config_.width;
}

inline void
OooCore::completeMem(Cycle completion)
{
    ltc_assert(memPending_, "completeMem without beginMem");
    const Slot completion_slot = completion * config_.width;
    ltc_assert(completion_slot >= pendingIssueSlot_,
               "memory completes before it issues");
    frontier_ = pendingIssueSlot_ + 1;
    retireAt(completion_slot);
    lsqRing_[lsqHead_] = lastRetire_;
    if (++lsqHead_ == config_.lsqSize)
        lsqHead_ = 0;
    instructions_++;
    memInstructions_++;
    memPending_ = false;
}

// LTC_HOT_END

} // namespace ltc

#endif // LTC_CPU_OOO_CORE_HH
