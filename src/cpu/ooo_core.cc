#include "cpu/ooo_core.hh"

#include <algorithm>

#include "util/check.hh"
#include "util/logging.hh"

namespace ltc
{

OooCore::OooCore(const CoreConfig &config) : config_(config)
{
    ltc_assert(config_.width > 0, "core width must be positive");
    ltc_assert(config_.robSize > 0, "ROB size must be positive");
    ltc_assert(config_.lsqSize > 0, "LSQ size must be positive");
    robRing_.assign(config_.robSize, 0);
    lsqRing_.assign(config_.lsqSize, 0);
}

Cycle
OooCore::finishCycle() const
{
    return lastRetire_ / config_.width + 1;
}

double
OooCore::ipc() const
{
    const Cycle cycles = finishCycle();
    return cycles ? static_cast<double>(instructions_) /
            static_cast<double>(cycles)
                  : 0.0;
}

namespace
{

/**
 * Shared ring audit: entries must be bounded by the newest retire
 * slot and non-decreasing from the head (insertion order), since
 * every retirement slot is strictly later than the one before it.
 */
void
auditRing(const std::vector<std::uint64_t> &ring, std::uint64_t head,
          std::uint64_t size, std::uint64_t last_retire,
          const char *name)
{
    LTC_CHECK(ring.size() == size, name, " ring holds ", ring.size(),
              " slots, configured for ", size);
    LTC_CHECK(head < ring.size(), name, " head ", head,
              " outside ring of ", ring.size());
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < ring.size(); i++) {
        const std::uint64_t slot = ring[(head + i) % ring.size()];
        LTC_CHECK(slot <= last_retire, name, " ring slot ", slot,
                  " ahead of newest retirement ", last_retire);
        LTC_CHECK(slot >= prev, name, " ring out of insertion order (",
                  prev, " then ", slot, ")");
        prev = slot;
    }
}

} // namespace

void
OooCore::auditInvariants() const
{
    auditRing(robRing_, robHead_, config_.robSize, lastRetire_, "ROB");
    auditRing(lsqRing_, lsqHead_, config_.lsqSize, lastRetire_, "LSQ");
    LTC_CHECK(memInstructions_ <= instructions_, memInstructions_,
              " memory instructions out of ", instructions_);
    LTC_CHECK(intervalInstBase_ <= instructions_, "interval base ",
              intervalInstBase_, " ahead of ", instructions_,
              " instructions");
    if (memPending_) {
        LTC_CHECK(pendingIssueSlot_ >= frontier_,
                  "pending memory op issued at slot ",
                  pendingIssueSlot_, " behind frontier ", frontier_);
    }
}

void
OooCore::beginInterval()
{
    intervalInstBase_ = instructions_;
    intervalCycleBase_ = finishCycle();
}

InstCount
OooCore::intervalInstructions() const
{
    return instructions_ - intervalInstBase_;
}

Cycle
OooCore::intervalCycles() const
{
    const Cycle now = finishCycle();
    return now > intervalCycleBase_ ? now - intervalCycleBase_ : 0;
}

} // namespace ltc
