#include "cpu/ooo_core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ltc
{

OooCore::OooCore(const CoreConfig &config) : config_(config)
{
    ltc_assert(config_.width > 0, "core width must be positive");
    ltc_assert(config_.robSize > 0, "ROB size must be positive");
    ltc_assert(config_.lsqSize > 0, "LSQ size must be positive");
    robRing_.assign(config_.robSize, 0);
    lsqRing_.assign(config_.lsqSize, 0);
}

OooCore::Slot
OooCore::robConstraint() const
{
    // Instruction k occupies the slot freed when instruction
    // k - robSize retires; the ring stores retire slots in insert
    // order, so the head entry is the blocking one.
    return robRing_[robHead_];
}

OooCore::Slot
OooCore::lsqConstraint() const
{
    return lsqRing_[lsqHead_];
}

void
OooCore::retireAt(Slot completion_slot)
{
    // In-order retirement, one slot (1/width cycle) per instruction.
    const Slot retire = std::max(completion_slot, lastRetire_ + 1);
    lastRetire_ = retire;
    robRing_[robHead_] = retire;
    robHead_ = (robHead_ + 1) % config_.robSize;
}

void
OooCore::issueNonMem(std::uint32_t count)
{
    ltc_assert(!memPending_, "issueNonMem with memory access pending");
    for (std::uint32_t i = 0; i < count; i++) {
        const Slot issue = std::max(frontier_, robConstraint());
        frontier_ = issue + 1;
        const Slot complete =
            issue + config_.aluLatency * config_.width;
        retireAt(complete);
        instructions_++;
    }
}

Cycle
OooCore::beginMem()
{
    ltc_assert(!memPending_, "beginMem with memory access pending");
    const Slot issue =
        std::max({frontier_, robConstraint(), lsqConstraint()});
    memPending_ = true;
    pendingIssueSlot_ = issue;
    // Round up: the address is available at the end of the issue
    // cycle.
    return issue / config_.width;
}

void
OooCore::completeMem(Cycle completion)
{
    ltc_assert(memPending_, "completeMem without beginMem");
    const Slot completion_slot = completion * config_.width;
    ltc_assert(completion_slot >= pendingIssueSlot_,
               "memory completes before it issues");
    frontier_ = pendingIssueSlot_ + 1;
    retireAt(completion_slot);
    lsqRing_[lsqHead_] = lastRetire_;
    lsqHead_ = (lsqHead_ + 1) % config_.lsqSize;
    instructions_++;
    memInstructions_++;
    memPending_ = false;
}

Cycle
OooCore::finishCycle() const
{
    return lastRetire_ / config_.width + 1;
}

double
OooCore::ipc() const
{
    const Cycle cycles = finishCycle();
    return cycles ? static_cast<double>(instructions_) /
            static_cast<double>(cycles)
                  : 0.0;
}

void
OooCore::beginInterval()
{
    intervalInstBase_ = instructions_;
    intervalCycleBase_ = finishCycle();
}

InstCount
OooCore::intervalInstructions() const
{
    return instructions_ - intervalInstBase_;
}

Cycle
OooCore::intervalCycles() const
{
    const Cycle now = finishCycle();
    return now > intervalCycleBase_ ? now - intervalCycleBase_ : 0;
}

} // namespace ltc
