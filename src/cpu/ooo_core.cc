#include "cpu/ooo_core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ltc
{

OooCore::OooCore(const CoreConfig &config) : config_(config)
{
    ltc_assert(config_.width > 0, "core width must be positive");
    ltc_assert(config_.robSize > 0, "ROB size must be positive");
    ltc_assert(config_.lsqSize > 0, "LSQ size must be positive");
    robRing_.assign(config_.robSize, 0);
    lsqRing_.assign(config_.lsqSize, 0);
}

Cycle
OooCore::finishCycle() const
{
    return lastRetire_ / config_.width + 1;
}

double
OooCore::ipc() const
{
    const Cycle cycles = finishCycle();
    return cycles ? static_cast<double>(instructions_) /
            static_cast<double>(cycles)
                  : 0.0;
}

void
OooCore::beginInterval()
{
    intervalInstBase_ = instructions_;
    intervalCycleBase_ = finishCycle();
}

InstCount
OooCore::intervalInstructions() const
{
    return instructions_ - intervalInstBase_;
}

Cycle
OooCore::intervalCycles() const
{
    const Cycle now = finishCycle();
    return now > intervalCycleBase_ ? now - intervalCycleBase_ : 0;
}

} // namespace ltc
