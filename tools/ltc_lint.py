#!/usr/bin/env python3
"""Project lint for the LT-cords tree (ctest: lint.project).

Machine-checks the conventions the hand-optimised simulator relies on
but a compiler cannot enforce:

  hot-region    Between `LTC_HOT_BEGIN` and `LTC_HOT_END` comment
                markers (the engines' per-reference inline sections),
                hash maps (std::unordered_map/set, std::map), the
                modulo operator and `virtual` declarations are banned:
                the batched kernels were specifically rewritten to
                avoid hash probes, per-reference integer division and
                dispatch (see ARCHITECTURE.md). Markers must be
                balanced.

  registration  Every tests/*.cc must be listed in CMakeLists.txt's
                ltc_tests sources and every bench/*.cc in its
                LTC_BENCHES list — an unregistered file compiles
                nobody and silently rots.

  golden-print  Every test file that pins a golden table (a
                `k...Golden[]` array) must support regeneration via
                the LTC_GOLDEN_PRINT environment hook, so the tables
                never have to be edited by hand.

  header-guard  Every header under src/ uses an include guard derived
                from its path (src/cache/mshr.hh -> LTC_CACHE_MSHR_HH)
                so guards cannot collide as the tree grows.

Exit status is the number of violations (0 = clean). `--self-test`
runs the rule engine against the fixtures in tools/lint_fixtures/ and
verifies each bad fixture trips exactly the rule it is named for
(ctest: lint.selftest).
"""

import argparse
import re
import sys
from pathlib import Path


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so the hot-region scan only sees code."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.extend(ch if ch == "\n" else " " for ch in text[i:j + 2])
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append(" ")
                    i += 1
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# The modulo scan must not trip on '%' inside identifiers-free code
# such as '%=' (also modulo) while ignoring nothing else: after
# comment/string stripping every remaining '%' IS the operator.
HOT_BANNED = [
    (re.compile(r"std\s*::\s*unordered_(map|set)"),
     "hash container in a hot region (use the packed SoA/array forms)"),
    (re.compile(r"std\s*::\s*map\s*<"),
     "tree map in a hot region (use the packed SoA/array forms)"),
    (re.compile(r"%"),
     "modulo operator in a hot region (use masks or compare-wrap)"),
    (re.compile(r"\bvirtual\b"),
     "virtual declaration in a hot region (devirtualise the kernel)"),
]

HOT_BEGIN = "LTC_HOT_BEGIN"
HOT_END = "LTC_HOT_END"


def check_hot_regions(path, text):
    violations = []
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    in_region = False
    begin_line = 0
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        if HOT_BEGIN in raw:
            if in_region:
                violations.append(Violation(
                    "hot-region", path, lineno,
                    f"nested {HOT_BEGIN} (previous at line {begin_line})"))
            in_region, begin_line = True, lineno
            continue
        if HOT_END in raw:
            if not in_region:
                violations.append(Violation(
                    "hot-region", path, lineno,
                    f"{HOT_END} without {HOT_BEGIN}"))
            in_region = False
            continue
        if not in_region:
            continue
        for pattern, message in HOT_BANNED:
            if pattern.search(code):
                violations.append(
                    Violation("hot-region", path, lineno, message))
    if in_region:
        violations.append(Violation(
            "hot-region", path, begin_line,
            f"{HOT_BEGIN} never closed by {HOT_END}"))
    return violations


def check_registration(root, cmake_text):
    violations = []
    for sub, what in (("tests", "ltc_tests sources"),
                      ("bench", "LTC_BENCHES")):
        for path in sorted((root / sub).glob("*.cc")):
            rel = f"{sub}/{path.name}"
            needle = rel if sub == "tests" else path.stem
            token = re.compile(
                r"(?<![\w/])" + re.escape(needle) + r"(?![\w.])"
                if sub == "bench" else re.escape(needle))
            if not token.search(cmake_text):
                violations.append(Violation(
                    "registration", path, 1,
                    f"{rel} is not registered in CMakeLists.txt "
                    f"({what})"))
    return violations


GOLDEN_TABLE = re.compile(r"\bk\w*Golden\w*\s*\[\s*\]")


def check_golden_print(path, text):
    if GOLDEN_TABLE.search(text) and "LTC_GOLDEN_PRINT" not in text:
        return [Violation(
            "golden-print", path, 1,
            "golden table without an LTC_GOLDEN_PRINT regeneration "
            "hook")]
    return []


GUARD_IFNDEF = re.compile(r"^#ifndef\s+(\w+)\s*$", re.M)


def check_header_guard(root, path, text):
    rel = path.relative_to(root)
    expected = "LTC_" + "_".join(
        p.upper().replace(".", "_").replace("-", "_")
        for p in rel.parts[1:])
    m = GUARD_IFNDEF.search(text)
    if not m:
        return [Violation("header-guard", path, 1,
                          f"missing include guard (expected {expected})")]
    if m.group(1) != expected:
        lineno = text[:m.start()].count("\n") + 1
        return [Violation(
            "header-guard", path, lineno,
            f"guard {m.group(1)}, expected {expected} (derived from "
            "the header's path)")]
    if f"#define {m.group(1)}" not in text:
        return [Violation("header-guard", path, 1,
                          f"guard {expected} is never #defined")]
    return []


def lint_tree(root):
    violations = []
    cmake = root / "CMakeLists.txt"
    violations += check_registration(root, cmake.read_text())
    for path in sorted((root / "src").rglob("*.hh")):
        text = path.read_text()
        violations += check_hot_regions(path, text)
        violations += check_header_guard(root, path, text)
    for sub in ("src", "tests", "bench", "tools", "examples"):
        for pattern in ("*.cc", "*.cpp"):
            for path in sorted((root / sub).rglob(pattern)):
                if "lint_fixtures" in path.parts: # deliberately dirty
                    continue
                violations += check_hot_regions(path, path.read_text())
    for path in sorted((root / "tests").glob("*.cc")):
        violations += check_golden_print(path, path.read_text())
    return violations


# --------------------------------------------------------- self-test
#
# Each bad fixture is named <rule>_*.bad.* and must trip exactly its
# rule; each *.good.* fixture must be clean. The fixtures double as
# executable documentation of what the rules catch.

def self_test(fixtures):
    failures = []
    cases = sorted(fixtures.iterdir())
    if not cases:
        print(f"no fixtures under {fixtures}", file=sys.stderr)
        return 1
    # The regtree/ subtree exercises the registration rule: exactly
    # the two orphan files must be flagged, the registered ones not.
    regtree = fixtures / "regtree"
    reg = check_registration(regtree,
                             (regtree / "CMakeLists.txt").read_text())
    flagged = sorted(v.path.name for v in reg)
    if flagged != ["orphan.cc", "orphan_bench.cc"]:
        failures.append(
            f"regtree: expected the two orphans flagged, got {flagged}")

    for path in cases:
        if path.name == "README.md" or path.is_dir():
            continue
        text = path.read_text()
        rules = set()
        rules.update(v.rule for v in check_hot_regions(path, text))
        rules.update(v.rule for v in check_golden_print(path, text))
        if path.suffix == ".hh":
            # header-guard expectations are path-derived; fixtures sit
            # one level under lint_fixtures/, which stands in for src/,
            # so a fixture foo.bad.hh expects LTC_FOO_BAD_HH.
            rules.update(v.rule for v in check_header_guard(
                path.parent.parent, path, text))
        if ".bad." in path.name:
            want = path.name.split("__")[0]
            if want not in rules:
                failures.append(
                    f"{path.name}: expected [{want}], got {sorted(rules)}")
        elif ".good." in path.name:
            if rules:
                failures.append(
                    f"{path.name}: expected clean, got {sorted(rules)}")
        else:
            failures.append(f"{path.name}: not *.bad.* or *.good.*")
    for f in failures:
        print(f"self-test FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"self-test OK ({len(cases)} fixtures)")
    return len(failures)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: the tool's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rule engine against the fixtures")
    args = ap.parse_args()

    if args.self_test:
        return self_test(
            Path(__file__).resolve().parent / "lint_fixtures")

    violations = lint_tree(args.root)
    for v in violations:
        print(v, file=sys.stderr)
    if not violations:
        print("ltc_lint: clean")
    return min(len(violations), 120)


if __name__ == "__main__":
    sys.exit(main())
