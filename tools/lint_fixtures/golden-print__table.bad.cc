// Fixture: a pinned golden table with no regeneration hook (the
// golden-print environment variable) must be flagged — tables that
// can only be updated by hand go stale.
struct Row
{
    const char *workload;
    unsigned long misses;
};

const Row kTraceGolden[] = {
    {"mcf", 123456},
    {"swim", 654321},
};
