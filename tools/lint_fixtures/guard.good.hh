// Fixture: the guard matches the path-derived convention
// (lint_fixtures/ stands in for src/ in the self-test), so the
// header is clean.

#ifndef LTC_GUARD_GOOD_HH
#define LTC_GUARD_GOOD_HH

inline unsigned mask(unsigned x) { return x & 63u; }

#endif // LTC_GUARD_GOOD_HH
