// Fixture: an include guard that does not match the path-derived
// convention must be flagged.

#ifndef SOME_UNRELATED_GUARD_HH
#define SOME_UNRELATED_GUARD_HH

inline unsigned mask(unsigned x) { return x & 63u; }

#endif // SOME_UNRELATED_GUARD_HH
