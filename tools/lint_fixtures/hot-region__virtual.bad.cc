// Fixture: a virtual declaration inside a hot region must be flagged
// (the batched kernels are devirtualised).

// LTC_HOT_BEGIN
struct Hook
{
    virtual void fire() = 0;
};
// LTC_HOT_END
