// Fixture: a golden table whose file wires up the LTC_GOLDEN_PRINT
// regeneration hook is clean.
#include <cstdlib>

struct Row
{
    const char *workload;
    unsigned long misses;
};

const Row kTraceGolden[] = {
    {"mcf", 123456},
};

bool
regenerate()
{
    return std::getenv("LTC_GOLDEN_PRINT") != nullptr;
}
