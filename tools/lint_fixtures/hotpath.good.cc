// Fixture: a clean hot region. Mentions of the banned constructs in
// comments ("no % modulo, no virtual, no std::unordered_map here")
// and string literals must NOT trip the scan, and code outside the
// region is unconstrained.
#include <string>

// LTC_HOT_BEGIN
// The old code used head % size and a virtual hook; both are gone.
unsigned wrap(unsigned head, unsigned size)
{
    const char *label = "utilization %"; // '%' in a string is fine
    (void)label;
    unsigned next = head + 1;
    if (next == size)
        next = 0;
    return next;
}
// LTC_HOT_END

// Outside the region the operator is legal.
unsigned modOutside(unsigned a, unsigned b) { return a % b; }
