// Fixture: an LTC_HOT_BEGIN that is never closed must be flagged.

// LTC_HOT_BEGIN
unsigned mask(unsigned x) { return x & 7u; }
