// Fixture: NOT listed in the regtree CMakeLists.txt — the
// registration rule must flag it.
int orphanTest() { return 0; }
