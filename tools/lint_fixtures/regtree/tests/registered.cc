// Fixture: listed in the regtree CMakeLists.txt.
int registeredTest() { return 0; }
