// Fixture: NOT in the regtree LTC_BENCHES list — the registration
// rule must flag it.
int main() { return 0; }
