// Fixture: its stem appears in the regtree LTC_BENCHES list.
int main() { return 0; }
