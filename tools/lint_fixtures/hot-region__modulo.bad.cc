// Fixture: the modulo operator inside a hot region must be flagged
// (ring indices wrap by compare, set indices by mask).

// LTC_HOT_BEGIN
unsigned wrap(unsigned head, unsigned size) { return head % size; }
// LTC_HOT_END
