// Fixture: a hash container inside a marked hot region must be
// flagged (the kernels use packed SoA arrays instead).
#include <unordered_map>

// LTC_HOT_BEGIN
std::unordered_map<unsigned long, unsigned long> inflight;
// LTC_HOT_END
