/**
 * @file
 * ltc-trace: command-line tool for .ltct trace containers.
 *
 *   ltc-trace record <workload> <out.ltct> [refs] [--seed N]
 *             [--scale F] [--chunk N]
 *       Capture a synthetic workload generator to a v2 container.
 *
 *   ltc-trace convert <in> <out.ltct> [--champsim] [--limit N]
 *             [--chunk N]
 *       Re-encode a v1/v2 container as v2, or import an uncompressed
 *       ChampSim binary instruction trace (auto-detected unless
 *       --champsim forces it).
 *
 *   ltc-trace info <file.ltct>
 *       Header, chunk and size summary, including the size of the
 *       equivalent v1 encoding and the compression ratio.
 *
 *   ltc-trace head <file.ltct> [count]
 *       Print the first records (default 10) as text.
 *
 * All failures exit with status 1 and a message on stderr.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trace/file_trace.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"
#include "util/logging.hh"

namespace
{

using namespace ltc;

[[noreturn]] void
usage()
{
    std::fputs(
        "usage: ltc-trace <command> [args]\n"
        "  record <workload> <out.ltct> [refs] [--seed N] [--scale F]"
        " [--chunk N]\n"
        "  convert <in> <out.ltct> [--champsim] [--limit N]"
        " [--chunk N]\n"
        "  info <file.ltct>\n"
        "  head <file.ltct> [count]\n"
        "workloads: any name from the catalogue (e.g. mcf, swim) or\n"
        "a trace:<stem> name discovered via LTC_TRACE_DIR.\n",
        stderr);
    std::exit(1);
}

[[noreturn]] void
die(const std::string &what, TraceErrc errc)
{
    std::fprintf(stderr, "ltc-trace: %s: %s (%s)\n", what.c_str(),
                 traceErrcMessage(errc), traceErrcName(errc));
    std::exit(1);
}

std::uint64_t
parseU64(const std::string &text, const char *what)
{
    char *end = nullptr;
    const auto v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        std::fprintf(stderr, "ltc-trace: invalid %s '%s'\n", what,
                     text.c_str());
        std::exit(1);
    }
    return v;
}

/** Options shared by record/convert. */
struct Options
{
    std::uint64_t seed = 1;
    double scale = 1.0;
    std::uint32_t chunk = defaultChunkRecords;
    std::uint64_t limit = 0;
    bool champsim = false;
    std::vector<std::string> positional;
};

Options
parseOptions(int argc, char **argv, int first)
{
    Options opt;
    for (int i = first; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ltc-trace: %s requires a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            opt.seed = parseU64(value(), "seed");
        } else if (arg == "--scale") {
            opt.scale = std::atof(value().c_str());
        } else if (arg == "--chunk") {
            const std::uint64_t chunk = parseU64(value(), "chunk");
            if (chunk < 1 || chunk > (1u << 24)) {
                std::fprintf(stderr,
                             "ltc-trace: --chunk must be in "
                             "[1, 16777216]\n");
                std::exit(1);
            }
            opt.chunk = static_cast<std::uint32_t>(chunk);
        } else if (arg == "--limit") {
            opt.limit = parseU64(value(), "limit");
        } else if (arg == "--champsim") {
            opt.champsim = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "ltc-trace: unknown option '%s'\n",
                         arg.c_str());
            std::exit(1);
        } else {
            opt.positional.push_back(arg);
        }
    }
    return opt;
}

int
printInfo(const std::string &path)
{
    TraceFileInfo info;
    const TraceErrc errc = probeTraceFile(path, info);
    if (errc != TraceErrc::Ok)
        die(path, errc);
    std::printf("file            : %s\n", path.c_str());
    std::printf("version         : %u\n", info.version);
    std::printf("records         : %llu\n",
                static_cast<unsigned long long>(info.records));
    if (info.version >= 2) {
        std::printf("chunks          : %llu (capacity %u records)\n",
                    static_cast<unsigned long long>(info.chunks),
                    info.chunkRecords);
        std::printf("payload bytes   : %llu\n",
                    static_cast<unsigned long long>(info.payloadBytes));
    }
    std::printf("file bytes      : %llu (%.2f bytes/record)\n",
                static_cast<unsigned long long>(info.fileBytes),
                info.records ? static_cast<double>(info.fileBytes) /
                        static_cast<double>(info.records)
                             : 0.0);
    std::printf("v1 equivalent   : %llu bytes\n",
                static_cast<unsigned long long>(
                    info.v1EquivalentBytes()));
    std::printf("ratio vs v1     : %.2fx\n", info.compressionVsV1());
    return 0;
}

int
cmdRecord(const Options &opt)
{
    if (opt.positional.size() < 2 || opt.positional.size() > 3)
        usage();
    const std::string &workload = opt.positional[0];
    const std::string &out = opt.positional[1];
    if (!isWorkload(workload))
        ltc_fatal("unknown workload '", workload, "'");
    const std::uint64_t refs = opt.positional.size() == 3
        ? parseU64(opt.positional[2], "refs")
        : suggestedRefs(workload);

    auto src = makeWorkload(workload, opt.seed, opt.scale);
    std::uint64_t written = 0;
    const TraceErrc errc =
        captureToFile(*src, out, refs, &written, opt.chunk);
    if (errc != TraceErrc::Ok)
        die(out, errc);
    std::printf("recorded %llu references of %s\n",
                static_cast<unsigned long long>(written),
                workload.c_str());
    return printInfo(out);
}

int
cmdConvert(const Options &opt)
{
    if (opt.positional.size() != 2)
        usage();
    const std::string &in = opt.positional[0];
    const std::string &out = opt.positional[1];

    bool champsim = opt.champsim;
    if (!champsim) {
        // Auto-detect: an LTCTRACE magic means container conversion;
        // anything else is treated as a ChampSim instruction trace.
        std::FILE *f = std::fopen(in.c_str(), "rb");
        if (!f)
            die(in, TraceErrc::OpenFailed);
        char head[8] = {};
        const std::size_t got = std::fread(head, 1, sizeof(head), f);
        std::fclose(f);
        champsim =
            got != sizeof(head) || std::memcmp(head, "LTCTRACE", 8);
    }

    if (champsim) {
        std::uint64_t written = 0;
        const TraceErrc errc = importChampSimFile(
            in, out, opt.limit, &written, opt.chunk);
        if (errc != TraceErrc::Ok)
            die(in, errc);
        std::printf("imported %llu references from ChampSim trace\n",
                    static_cast<unsigned long long>(written));
    } else {
        const TraceErrc errc =
            convertTraceFile(in, out, opt.limit, opt.chunk);
        if (errc != TraceErrc::Ok)
            die(in, errc);
    }
    return printInfo(out);
}

int
cmdHead(const Options &opt)
{
    if (opt.positional.empty() || opt.positional.size() > 2)
        usage();
    const std::uint64_t count = opt.positional.size() == 2
        ? parseU64(opt.positional[1], "count")
        : 10;
    StreamingTraceReader reader(opt.positional[0]);
    if (!reader.ok())
        die(opt.positional[0], reader.error());
    MemRef ref;
    for (std::uint64_t i = 0; i < count && reader.next(ref); i++)
        std::printf("%8llu  %s\n",
                    static_cast<unsigned long long>(i),
                    to_string(ref).c_str());
    if (!reader.ok())
        die(opt.positional[0], reader.error());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    const Options opt = parseOptions(argc, argv, 2);

    if (cmd == "record")
        return cmdRecord(opt);
    if (cmd == "convert")
        return cmdConvert(opt);
    if (cmd == "info") {
        if (opt.positional.size() != 1)
            usage();
        return printInfo(opt.positional[0]);
    }
    if (cmd == "head")
        return cmdHead(opt);
    usage();
}
