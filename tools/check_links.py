#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Scans the given markdown files (or the repo's default doc set) for
inline links and verifies that every *relative* target exists on
disk. External (http/https/mailto) links and pure in-page anchors
are skipped -- CI must not depend on network access. Exits 1 if any
link is broken, 0 otherwise.

Usage: tools/check_links.py [file.md ...]
"""

import re
import sys
from pathlib import Path

# [text](target) -- stop at whitespace or ')' inside the target so
# "(see [x](y))" parses; images use the same syntax with a '!' prefix.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DEFAULT_DOCS = ["README.md", "ARCHITECTURE.md", "PAPER.md",
                "CHANGES.md", "ROADMAP.md", "docs"]


def doc_files(args):
    root = Path(__file__).resolve().parent.parent
    if args:
        return [Path(a) for a in args]
    files = []
    for entry in DEFAULT_DOCS:
        path = root / entry
        if path.is_dir():
            files.extend(sorted(path.glob("**/*.md")))
        elif path.exists():
            files.append(path)
    return files


def check_file(md):
    broken = []
    text = md.read_text(encoding="utf-8")
    in_code_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main(argv):
    files = doc_files(argv[1:])
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    total_broken = 0
    for md in files:
        for lineno, target in check_file(md):
            print(f"{md}:{lineno}: broken link -> {target}")
            total_broken += 1
    print(f"check_links: {len(files)} files, "
          f"{total_broken} broken links")
    # Not the raw count: exit codes wrap modulo 256.
    return 1 if total_broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
