/**
 * @file
 * ltc-sweep: command-line tool for cell-cache directories
 * (LTC_CELL_CACHE; sim/cell_store.hh).
 *
 *   ltc-sweep info <dir>
 *       Per-status record counts (ok / corrupt / stale-epoch),
 *       plus leftover claim and temporary files.
 *
 *   ltc-sweep verify <dir>
 *       Validate every record; exit status is the number of corrupt
 *       records, so `ltc-sweep verify dir` doubles as a CI gate.
 *
 *   ltc-sweep gc <dir>
 *       Remove corrupt and stale-epoch records plus leftover claim
 *       and temporary files; valid current-epoch records survive.
 *
 *   ltc-sweep clear <dir>
 *       Remove every record, claim and temporary file.
 *
 * Cache records name themselves by content hash
 * (<16-hex-digits>.json); files that do not fit the naming scheme
 * are reported but never deleted.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/cell_store.hh"
#include "sim/experiment.hh"

namespace
{

using namespace ltc;
namespace fs = std::filesystem;

[[noreturn]] void
usage()
{
    std::fputs("usage: ltc-sweep <command> <cache-dir>\n"
               "  info   <dir>   per-status record counts\n"
               "  verify <dir>   exit status = corrupt records\n"
               "  gc     <dir>   drop corrupt/stale records, claims,"
               " tmps\n"
               "  clear  <dir>   drop everything\n",
               stderr);
    std::exit(1);
}

/** One scanned cache entry. */
struct Entry
{
    fs::path path;
    enum Kind
    {
        Record,  //!< <hex>.json
        Claim,   //!< <hex>.claim
        Temp,    //!< *.tmp.<pid>
        Foreign, //!< anything else
    } kind = Foreign;
    std::uint64_t hash = 0;            //!< for Record entries
    CellRecordStatus status = CellRecordStatus::Corrupt;
};

/** Parse "<16 hex>" into a hash; false if it is not one. */
bool
parseHashStem(const std::string &stem, std::uint64_t &hash)
{
    if (stem.size() != 16)
        return false;
    hash = 0;
    for (const char ch : stem) {
        hash <<= 4;
        if (ch >= '0' && ch <= '9')
            hash |= static_cast<std::uint64_t>(ch - '0');
        else if (ch >= 'a' && ch <= 'f')
            hash |= static_cast<std::uint64_t>(ch - 'a' + 10);
        else
            return false;
    }
    return true;
}

std::vector<Entry>
scan(const std::string &dir)
{
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        std::fprintf(stderr, "ltc-sweep: cannot open '%s': %s\n",
                     dir.c_str(), ec.message().c_str());
        std::exit(1);
    }
    std::vector<Entry> entries;
    for (const auto &de : it) {
        Entry e;
        e.path = de.path();
        const std::string name = e.path.filename().string();
        std::uint64_t hash = 0;
        if (name.find(".tmp.") != std::string::npos) {
            e.kind = Entry::Temp;
        } else if (e.path.extension() == ".claim" &&
                   parseHashStem(e.path.stem().string(), hash)) {
            e.kind = Entry::Claim;
        } else if (e.path.extension() == ".json" &&
                   parseHashStem(e.path.stem().string(), hash)) {
            e.kind = Entry::Record;
            e.hash = hash;
            e.status = probeCellRecord(e.path.string(),
                                       cellCodeEpoch(), hash);
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

/** Counts of a scan, shared by info and verify. */
struct Totals
{
    std::size_t ok = 0;
    std::size_t corrupt = 0;
    std::size_t stale = 0;
    std::size_t claims = 0;
    std::size_t temps = 0;
    std::size_t foreign = 0;
};

Totals
tally(const std::vector<Entry> &entries)
{
    Totals t;
    for (const auto &e : entries) {
        switch (e.kind) {
          case Entry::Record:
            if (e.status == CellRecordStatus::Ok)
                t.ok++;
            else if (e.status == CellRecordStatus::StaleEpoch)
                t.stale++;
            else
                t.corrupt++;
            break;
          case Entry::Claim:
            t.claims++;
            break;
          case Entry::Temp:
            t.temps++;
            break;
          case Entry::Foreign:
            t.foreign++;
            break;
        }
    }
    return t;
}

int
cmdInfo(const std::string &dir)
{
    const Totals t = tally(scan(dir));
    std::printf("cache dir       : %s\n", dir.c_str());
    std::printf("code epoch      : %s\n", cellCodeEpoch().c_str());
    std::printf("records ok      : %zu\n", t.ok);
    std::printf("records corrupt : %zu\n", t.corrupt);
    std::printf("records stale   : %zu\n", t.stale);
    std::printf("claim files     : %zu\n", t.claims);
    std::printf("temp files      : %zu\n", t.temps);
    if (t.foreign)
        std::printf("foreign files   : %zu (ignored)\n", t.foreign);
    return 0;
}

int
cmdVerify(const std::string &dir)
{
    const auto entries = scan(dir);
    for (const auto &e : entries) {
        if (e.kind != Entry::Record)
            continue;
        if (e.status == CellRecordStatus::Corrupt)
            std::printf("corrupt: %s\n", e.path.string().c_str());
        else if (e.status == CellRecordStatus::StaleEpoch)
            std::printf("stale:   %s\n", e.path.string().c_str());
    }
    const Totals t = tally(entries);
    std::printf("%zu ok, %zu corrupt, %zu stale\n", t.ok, t.corrupt,
                t.stale);
    return t.corrupt > 255 ? 255 : static_cast<int>(t.corrupt);
}

int
cmdGc(const std::string &dir, bool everything)
{
    std::size_t removed = 0;
    for (const auto &e : scan(dir)) {
        bool drop = false;
        switch (e.kind) {
          case Entry::Record:
            drop = everything || e.status != CellRecordStatus::Ok;
            break;
          case Entry::Claim:
          case Entry::Temp:
            drop = true;
            break;
          case Entry::Foreign:
            std::printf("keeping foreign file %s\n",
                        e.path.string().c_str());
            break;
        }
        if (!drop)
            continue;
        std::error_code ec;
        if (fs::remove(e.path, ec))
            removed++;
        else
            std::fprintf(stderr, "ltc-sweep: cannot remove %s: %s\n",
                         e.path.string().c_str(),
                         ec.message().c_str());
    }
    std::printf("removed %zu file(s)\n", removed);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3)
        usage();
    const std::string cmd = argv[1];
    const std::string dir = argv[2];

    if (cmd == "info")
        return cmdInfo(dir);
    if (cmd == "verify")
        return cmdVerify(dir);
    if (cmd == "gc")
        return cmdGc(dir, false);
    if (cmd == "clear")
        return cmdGc(dir, true);
    usage();
}
