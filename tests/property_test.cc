/**
 * @file
 * Cross-cutting property tests: randomised workload mixes and
 * configurations driven through both engines, checking the global
 * invariants that must hold for *any* input:
 *
 *  - engines never crash and their counters stay consistent,
 *  - identical (seed, config) runs are bit-identical,
 *  - IPC is bounded by issue width and positive,
 *  - coverage is a fraction of opportunity,
 *  - prefetching never changes the demand reference stream's
 *    functional footprint (same blocks touched),
 *  - every predictor obeys the drain/feedback protocol under fuzzed
 *    streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cache/mshr.hh"
#include "core/ltcords.hh"
#include "mem/bus.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"
#include "util/random.hh"

namespace ltc
{
namespace
{

/** Randomised composite workload built from a seed. */
std::unique_ptr<TraceSource>
fuzzWorkload(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::unique_ptr<TraceSource>> kids;
    std::vector<std::uint32_t> chunks;
    const int n = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < n; i++) {
        const Addr base = 0x10000000 + static_cast<Addr>(i) * 0x4000000;
        switch (rng.below(4)) {
          case 0: {
            ScanArray a;
            a.base = base;
            a.blocks = rng.range(64, 8192);
            a.accessesPerBlock =
                static_cast<std::uint32_t>(rng.range(1, 4));
            kids.push_back(std::make_unique<StridedScanSource>(
                std::vector<ScanArray>{a},
                static_cast<std::uint32_t>(rng.below(8))));
            break;
          }
          case 1: {
            PointerChaseParams p;
            p.base = base;
            p.nodes = rng.range(16, 8192);
            p.accessesPerNode =
                static_cast<std::uint32_t>(rng.range(1, 4));
            p.seed = rng.next();
            p.mutateEveryIters = rng.below(3);
            p.mutateFraction = rng.uniform() * 0.3;
            kids.push_back(std::make_unique<PointerChaseSource>(p));
            break;
          }
          case 2: {
            TreeWalkParams p;
            p.base = base;
            p.nodes = rng.range(15, 4095);
            p.regularLayout = rng.chance(0.5);
            p.seed = rng.next();
            kids.push_back(std::make_unique<TreeWalkSource>(p));
            break;
          }
          default: {
            HashProbeParams p;
            p.base = base;
            p.blocks = rng.range(64, 16384);
            p.hotFraction = rng.uniform();
            p.hotBlocks = rng.range(1, 64);
            p.seed = rng.next();
            kids.push_back(std::make_unique<HashProbeSource>(p));
            break;
          }
        }
        chunks.push_back(static_cast<std::uint32_t>(rng.range(1, 8)));
    }
    if (kids.size() == 1)
        return std::move(kids[0]);
    return std::make_unique<InterleaveSource>(std::move(kids),
                                              std::move(chunks));
}

class FuzzProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzProperty, TraceEngineInvariants)
{
    auto src = fuzzWorkload(GetParam());
    auto pred = makePredictor("lt-cords", paperHierarchy());
    TraceEngine engine(paperHierarchy(), pred.get());
    engine.run(*src, 100'000);
    engine.auditInvariants(); // full structural sweep on fuzzed state
    const auto &s = engine.stats();
    EXPECT_EQ(s.accesses, 100'000u);
    EXPECT_LE(s.l1Misses, s.accesses);
    EXPECT_LE(s.l2Misses, s.l1Misses);
    EXPECT_LE(s.correct, s.accesses);
    EXPECT_LE(s.incorrect() + s.train(), s.l1Misses);
    EXPECT_GE(s.instructions, s.accesses);
}

TEST_P(FuzzProperty, TimingEngineInvariants)
{
    auto src = fuzzWorkload(GetParam());
    TimingConfig cfg;
    auto pred = makePredictor("lt-cords", cfg.hier, true);
    TimingSim sim(cfg, pred.get());
    sim.run(*src, 60'000);
    sim.auditInvariants(); // full structural sweep on fuzzed state
    const auto s = sim.stats();
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.ipc, 0.0);
    EXPECT_LE(s.ipc, static_cast<double>(cfg.core.width) + 1e-9);
    EXPECT_LE(s.l2Misses, s.l1Misses);
}

TEST_P(FuzzProperty, RunsAreDeterministic)
{
    auto run = [&](const char *pred_name) {
        auto src = fuzzWorkload(GetParam());
        auto pred = makePredictor(pred_name, paperHierarchy());
        TraceEngine engine(paperHierarchy(), pred.get());
        engine.run(*src, 50'000);
        const auto &s = engine.stats();
        return std::tuple(s.l1Misses, s.l2Misses, s.correct,
                          s.uselessPrefetches, s.early);
    };
    for (const char *name : {"lt-cords", "dbcp", "ghb", "markov"})
        EXPECT_EQ(run(name), run(name)) << name;
}

TEST_P(FuzzProperty, PrefetchingPreservesDemandFootprint)
{
    // The set of blocks demand-touched must not depend on the
    // predictor (prefetching changes timing and residency, never the
    // reference stream).
    auto touched = [&](const char *pred_name) {
        auto src = fuzzWorkload(GetParam());
        auto pred = makePredictor(pred_name, paperHierarchy());
        TraceEngine engine(paperHierarchy(), pred.get());
        MemRef ref;
        std::set<Addr> blocks;
        for (int i = 0; i < 30'000 && src->next(ref); i++) {
            blocks.insert(ref.addr & ~63ull);
            engine.step(ref);
        }
        return blocks;
    };
    EXPECT_EQ(touched("none"), touched("lt-cords"));
}

TEST_P(FuzzProperty, EveryPredictorSurvivesTheStream)
{
    for (const auto &name : predictorNames()) {
        if (name == "none")
            continue;
        auto src = fuzzWorkload(GetParam());
        auto pred = makePredictor(name, paperHierarchy());
        TraceEngine engine(paperHierarchy(), pred.get());
        engine.run(*src, 40'000);
        SUCCEED() << name;
    }
}

TEST_P(FuzzProperty, LtCordsPointersStayValid)
{
    // Stress frame conflicts: a tiny off-chip storage forces constant
    // re-recording; stale on-chip pointers must be detected, never
    // followed into freed fragments.
    LtcordsConfig cfg = paperLtcords(paperHierarchy());
    cfg.numFrames = 8;
    cfg.fragmentSignatures = 64;
    cfg.sigCacheEntries = 256;
    cfg.sigCacheAssoc = 2;
    LtCords ltc(cfg);
    auto src = fuzzWorkload(GetParam());
    TraceEngine engine(paperHierarchy(), &ltc);
    engine.run(*src, 80'000);
    ltc.auditInvariants(); // frame links survive constant conflicts
    EXPECT_GT(ltc.storage().frameConflicts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

/** Hierarchy geometry sweep through the trace engine. */
struct HierGeom
{
    std::uint64_t l1_kb;
    std::uint32_t l1_assoc;
    std::uint64_t l2_kb;
    std::uint32_t l2_assoc;
};

class GeometryProperty : public ::testing::TestWithParam<HierGeom>
{
};

TEST_P(GeometryProperty, LtCordsAdaptsToGeometry)
{
    const auto g = GetParam();
    HierarchyConfig hier;
    hier.l1d.sizeBytes = g.l1_kb * 1024;
    hier.l1d.assoc = g.l1_assoc;
    hier.l2.sizeBytes = g.l2_kb * 1024;
    hier.l2.assoc = g.l2_assoc;

    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 4 * hier.l1d.numLines(); // 4x whatever L1 holds
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);

    LtCords ltc(paperLtcords(hier));
    auto stats = runWithOpportunity(hier, &ltc, src,
                                    10 * a.blocks * 2);
    EXPECT_GT(stats.coverage(), 0.5)
        << g.l1_kb << "KB/" << g.l1_assoc << "-way";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryProperty,
    ::testing::Values(HierGeom{16, 1, 256, 4}, HierGeom{32, 2, 512, 8},
                      HierGeom{64, 2, 1024, 8},
                      HierGeom{64, 4, 1024, 8},
                      HierGeom{128, 8, 2048, 16}));

//
// MSHR file: randomized sequences against a naive reference model.
//
// MshrFile short-circuits its per-reference retire() with a cached
// earliest-completion and screens lookup() with a presence filter;
// both are pure optimizations, so the file must stay observably
// identical to the obvious implementation (eager scans everywhere)
// at EVERY step of any allocate/lookup/retire schedule.
//

/** The obvious MSHR implementation: no caches, no filters. */
class NaiveMshr
{
  public:
    explicit NaiveMshr(std::uint32_t capacity) : capacity_(capacity) {}

    Cycle
    allocReadyAt(Cycle now) const
    {
        if (entries_.size() < capacity_)
            return now;
        Cycle earliest = entries_.front().second;
        for (const auto &e : entries_)
            earliest = std::min(earliest, e.second);
        return std::max(now, earliest);
    }

    void
    allocate(Addr block, Cycle start, Cycle completion)
    {
        retire(start);
        ASSERT_LT(entries_.size(), capacity_);
        entries_.emplace_back(block, completion);
        peak_ = std::max<std::uint32_t>(
            peak_, static_cast<std::uint32_t>(entries_.size()));
    }

    std::optional<Cycle>
    lookup(Addr block) const
    {
        for (const auto &e : entries_)
            if (e.first == block)
                return e.second;
        return std::nullopt;
    }

    void
    retire(Cycle now)
    {
        std::erase_if(entries_,
                      [now](const auto &e) { return e.second <= now; });
    }

    std::uint32_t
    outstanding() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }
    std::uint32_t peakOccupancy() const { return peak_; }

  private:
    std::uint32_t capacity_;
    std::vector<std::pair<Addr, Cycle>> entries_;
    std::uint32_t peak_ = 0;
};

class MshrProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MshrProperty, RandomScheduleMatchesNaiveModelExactly)
{
    Rng rng(GetParam());
    const std::uint32_t capacity =
        static_cast<std::uint32_t>(rng.range(1, 16));
    MshrFile file(capacity);
    NaiveMshr naive(capacity);

    Cycle now = 0;
    for (int op = 0; op < 20'000; op++) {
        now += rng.below(40); // time may stall, never reverses
        const Addr block = (rng.below(24)) * 64;

        // Retire ticks arrive in bursts, as in the batched kernel.
        if (rng.chance(0.6)) {
            file.retire(now);
            naive.retire(now);
        }

        const auto got = file.lookup(block);
        const auto want = naive.lookup(block);
        ASSERT_EQ(got.has_value(), want.has_value()) << "op " << op;
        if (got) {
            ASSERT_EQ(*got, *want) << "op " << op;
            file.noteMerge();
        } else {
            // A pending miss must never be lost: allocate and check
            // it is findable with the exact completion time.
            const Cycle ready = file.allocReadyAt(now);
            ASSERT_EQ(ready, naive.allocReadyAt(now)) << "op " << op;
            const Cycle completion = ready + 1 + rng.below(400);
            file.allocate(block, ready, completion);
            naive.allocate(block, ready, completion);
            ASSERT_EQ(file.lookup(block), std::optional(completion));
        }

        // Occupancy trajectory identical, capacity never exceeded.
        ASSERT_EQ(file.outstanding(), naive.outstanding())
            << "op " << op;
        ASSERT_LE(file.outstanding(), capacity);
        ASSERT_EQ(file.peakOccupancy(), naive.peakOccupancy());

        // Representation invariants (presence filter, cached
        // earliest) hold at every point of the random schedule, not
        // just when the behaviour happens to match the naive model.
        if (op % 256 == 0)
            file.auditInvariants();
    }
    file.auditInvariants();
}

TEST_P(MshrProperty, BurstRetireEqualsSingleStepping)
{
    // The event-granular property the batched timing kernel leans on:
    // retiring once at time T releases exactly the entries that
    // stepping retire() through every intermediate time would have
    // released, so skipped no-op ticks cannot change the occupancy
    // trace.
    Rng rng(GetParam() * 7919 + 1);
    const std::uint32_t capacity = 8;
    MshrFile burst(capacity);
    MshrFile stepped(capacity);

    Cycle now = 0;
    for (int round = 0; round < 500; round++) {
        const std::uint32_t n =
            static_cast<std::uint32_t>(rng.range(1, capacity));
        for (std::uint32_t i = 0; i < n; i++) {
            const Addr block =
                (static_cast<Addr>(round) * capacity + i) * 64;
            const Cycle ready = burst.allocReadyAt(now);
            const Cycle completion = ready + 1 + rng.below(300);
            burst.allocate(block, ready, completion);
            stepped.allocate(block, ready, completion);
        }
        const Cycle target = now + rng.below(500);
        for (Cycle t = now; t <= target; t += 1 + rng.below(60))
            stepped.retire(t);
        stepped.retire(target);
        burst.retire(target);
        now = target;
        ASSERT_EQ(burst.outstanding(), stepped.outstanding())
            << "round " << round;
        ASSERT_EQ(burst.allocReadyAt(now), stepped.allocReadyAt(now));
        burst.auditInvariants();
        stepped.auditInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MshrProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

//
// Bus: randomized transfer schedules against the occupancy algebra.
//

class BusProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BusProperty, RandomScheduleObeysOccupancyAlgebra)
{
    Rng rng(GetParam() * 31 + 5);
    BusConfig cfg;
    cfg.requestCycles = rng.below(3);
    cfg.bytesPerCycle = 1u << rng.range(0, 6);
    cfg.coreCyclesPerBusCycle =
        static_cast<std::uint32_t>(rng.range(1, 4));
    Bus bus(cfg);

    Cycle busy_until = 0; // reference horizon
    Cycle busy_sum = 0;
    Cycle queue_sum = 0;
    std::uint64_t bytes_sum = 0;
    Cycle ready = 0;
    for (int i = 0; i < 10'000; i++) {
        ready += rng.below(20);
        const std::uint32_t bytes =
            static_cast<std::uint32_t>(rng.below(256));

        ASSERT_EQ(bus.freeAt(ready), std::max(ready, busy_until));
        ASSERT_EQ(bus.isFree(ready), busy_until <= ready);

        const Cycle done = bus.transfer(ready, bytes);
        const Cycle start = std::max(ready, busy_until);
        const Cycle occ = cfg.occupancy(bytes);
        ASSERT_EQ(done, start + occ) << "transfer " << i;
        queue_sum += start - ready;
        busy_until = start + occ;
        busy_sum += occ;
        bytes_sum += bytes;

        ASSERT_EQ(bus.busyCycles(), busy_sum);
        ASSERT_EQ(bus.queueCycles(), queue_sum);
        ASSERT_EQ(bus.bytesMoved(), bytes_sum);
        ASSERT_LE(bus.utilization(busy_until), 1.0);
        if (i % 256 == 0)
            bus.auditInvariants();
    }
    EXPECT_EQ(bus.transfers(), 10'000u);
    bus.auditInvariants();
}

TEST_P(BusProperty, PrecomputedOccupancyPathIsIdentical)
{
    // transferPrecomputed(ready, bytes, occupancy(bytes)) is the
    // timing engine's hoisted-division fast path; it must be
    // indistinguishable from transfer() for any schedule.
    Rng rng(GetParam() * 131 + 17);
    BusConfig cfg = BusConfig::memory();
    Bus plain(cfg);
    Bus pre(cfg);

    Cycle ready = 0;
    for (int i = 0; i < 10'000; i++) {
        ready += rng.below(12);
        const std::uint32_t bytes =
            rng.chance(0.5) ? 0u : cfg.bytesPerCycle * 2;
        const Cycle a = plain.transfer(ready, bytes);
        const Cycle b = pre.transferPrecomputed(ready, bytes,
                                                cfg.occupancy(bytes));
        ASSERT_EQ(a, b) << "transfer " << i;
    }
    EXPECT_EQ(plain.busyCycles(), pre.busyCycles());
    EXPECT_EQ(plain.queueCycles(), pre.queueCycles());
    EXPECT_EQ(plain.bytesMoved(), pre.bytesMoved());
    EXPECT_EQ(plain.transfers(), pre.transfers());
    plain.auditInvariants();
    pre.auditInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace ltc
