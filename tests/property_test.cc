/**
 * @file
 * Cross-cutting property tests: randomised workload mixes and
 * configurations driven through both engines, checking the global
 * invariants that must hold for *any* input:
 *
 *  - engines never crash and their counters stay consistent,
 *  - identical (seed, config) runs are bit-identical,
 *  - IPC is bounded by issue width and positive,
 *  - coverage is a fraction of opportunity,
 *  - prefetching never changes the demand reference stream's
 *    functional footprint (same blocks touched),
 *  - every predictor obeys the drain/feedback protocol under fuzzed
 *    streams.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"
#include "util/random.hh"

namespace ltc
{
namespace
{

/** Randomised composite workload built from a seed. */
std::unique_ptr<TraceSource>
fuzzWorkload(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::unique_ptr<TraceSource>> kids;
    std::vector<std::uint32_t> chunks;
    const int n = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < n; i++) {
        const Addr base = 0x10000000 + static_cast<Addr>(i) * 0x4000000;
        switch (rng.below(4)) {
          case 0: {
            ScanArray a;
            a.base = base;
            a.blocks = rng.range(64, 8192);
            a.accessesPerBlock =
                static_cast<std::uint32_t>(rng.range(1, 4));
            kids.push_back(std::make_unique<StridedScanSource>(
                std::vector<ScanArray>{a},
                static_cast<std::uint32_t>(rng.below(8))));
            break;
          }
          case 1: {
            PointerChaseParams p;
            p.base = base;
            p.nodes = rng.range(16, 8192);
            p.accessesPerNode =
                static_cast<std::uint32_t>(rng.range(1, 4));
            p.seed = rng.next();
            p.mutateEveryIters = rng.below(3);
            p.mutateFraction = rng.uniform() * 0.3;
            kids.push_back(std::make_unique<PointerChaseSource>(p));
            break;
          }
          case 2: {
            TreeWalkParams p;
            p.base = base;
            p.nodes = rng.range(15, 4095);
            p.regularLayout = rng.chance(0.5);
            p.seed = rng.next();
            kids.push_back(std::make_unique<TreeWalkSource>(p));
            break;
          }
          default: {
            HashProbeParams p;
            p.base = base;
            p.blocks = rng.range(64, 16384);
            p.hotFraction = rng.uniform();
            p.hotBlocks = rng.range(1, 64);
            p.seed = rng.next();
            kids.push_back(std::make_unique<HashProbeSource>(p));
            break;
          }
        }
        chunks.push_back(static_cast<std::uint32_t>(rng.range(1, 8)));
    }
    if (kids.size() == 1)
        return std::move(kids[0]);
    return std::make_unique<InterleaveSource>(std::move(kids),
                                              std::move(chunks));
}

class FuzzProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzProperty, TraceEngineInvariants)
{
    auto src = fuzzWorkload(GetParam());
    auto pred = makePredictor("lt-cords", paperHierarchy());
    TraceEngine engine(paperHierarchy(), pred.get());
    engine.run(*src, 100'000);
    const auto &s = engine.stats();
    EXPECT_EQ(s.accesses, 100'000u);
    EXPECT_LE(s.l1Misses, s.accesses);
    EXPECT_LE(s.l2Misses, s.l1Misses);
    EXPECT_LE(s.correct, s.accesses);
    EXPECT_LE(s.incorrect() + s.train(), s.l1Misses);
    EXPECT_GE(s.instructions, s.accesses);
}

TEST_P(FuzzProperty, TimingEngineInvariants)
{
    auto src = fuzzWorkload(GetParam());
    TimingConfig cfg;
    auto pred = makePredictor("lt-cords", cfg.hier, true);
    TimingSim sim(cfg, pred.get());
    sim.run(*src, 60'000);
    const auto s = sim.stats();
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.ipc, 0.0);
    EXPECT_LE(s.ipc, static_cast<double>(cfg.core.width) + 1e-9);
    EXPECT_LE(s.l2Misses, s.l1Misses);
}

TEST_P(FuzzProperty, RunsAreDeterministic)
{
    auto run = [&](const char *pred_name) {
        auto src = fuzzWorkload(GetParam());
        auto pred = makePredictor(pred_name, paperHierarchy());
        TraceEngine engine(paperHierarchy(), pred.get());
        engine.run(*src, 50'000);
        const auto &s = engine.stats();
        return std::tuple(s.l1Misses, s.l2Misses, s.correct,
                          s.uselessPrefetches, s.early);
    };
    for (const char *name : {"lt-cords", "dbcp", "ghb", "markov"})
        EXPECT_EQ(run(name), run(name)) << name;
}

TEST_P(FuzzProperty, PrefetchingPreservesDemandFootprint)
{
    // The set of blocks demand-touched must not depend on the
    // predictor (prefetching changes timing and residency, never the
    // reference stream).
    auto touched = [&](const char *pred_name) {
        auto src = fuzzWorkload(GetParam());
        auto pred = makePredictor(pred_name, paperHierarchy());
        TraceEngine engine(paperHierarchy(), pred.get());
        MemRef ref;
        std::set<Addr> blocks;
        for (int i = 0; i < 30'000 && src->next(ref); i++) {
            blocks.insert(ref.addr & ~63ull);
            engine.step(ref);
        }
        return blocks;
    };
    EXPECT_EQ(touched("none"), touched("lt-cords"));
}

TEST_P(FuzzProperty, EveryPredictorSurvivesTheStream)
{
    for (const auto &name : predictorNames()) {
        if (name == "none")
            continue;
        auto src = fuzzWorkload(GetParam());
        auto pred = makePredictor(name, paperHierarchy());
        TraceEngine engine(paperHierarchy(), pred.get());
        engine.run(*src, 40'000);
        SUCCEED() << name;
    }
}

TEST_P(FuzzProperty, LtCordsPointersStayValid)
{
    // Stress frame conflicts: a tiny off-chip storage forces constant
    // re-recording; stale on-chip pointers must be detected, never
    // followed into freed fragments.
    LtcordsConfig cfg = paperLtcords(paperHierarchy());
    cfg.numFrames = 8;
    cfg.fragmentSignatures = 64;
    cfg.sigCacheEntries = 256;
    cfg.sigCacheAssoc = 2;
    LtCords ltc(cfg);
    auto src = fuzzWorkload(GetParam());
    TraceEngine engine(paperHierarchy(), &ltc);
    engine.run(*src, 80'000);
    EXPECT_GT(ltc.storage().frameConflicts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

/** Hierarchy geometry sweep through the trace engine. */
struct HierGeom
{
    std::uint64_t l1_kb;
    std::uint32_t l1_assoc;
    std::uint64_t l2_kb;
    std::uint32_t l2_assoc;
};

class GeometryProperty : public ::testing::TestWithParam<HierGeom>
{
};

TEST_P(GeometryProperty, LtCordsAdaptsToGeometry)
{
    const auto g = GetParam();
    HierarchyConfig hier;
    hier.l1d.sizeBytes = g.l1_kb * 1024;
    hier.l1d.assoc = g.l1_assoc;
    hier.l2.sizeBytes = g.l2_kb * 1024;
    hier.l2.assoc = g.l2_assoc;

    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 4 * hier.l1d.numLines(); // 4x whatever L1 holds
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);

    LtCords ltc(paperLtcords(hier));
    auto stats = runWithOpportunity(hier, &ltc, src,
                                    10 * a.blocks * 2);
    EXPECT_GT(stats.coverage(), 0.5)
        << g.l1_kb << "KB/" << g.l1_assoc << "-way";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryProperty,
    ::testing::Values(HierGeom{16, 1, 256, 4}, HierGeom{32, 2, 512, 8},
                      HierGeom{64, 2, 1024, 8},
                      HierGeom{64, 4, 1024, 8},
                      HierGeom{128, 8, 2048, 16}));

} // namespace
} // namespace ltc
