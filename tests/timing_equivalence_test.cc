/**
 * @file
 * Timing-engine batched/scalar equivalence suite.
 *
 * TimingSim::run (the batched kernel, including the predictor-less
 * register-resident fast path) must be indistinguishable from a
 * manual next()/step() loop: identical TimingStats — cycles, stalls
 * (per-channel queue cycles), bus occupancy, traffic by class,
 * coverage counters — plus identical MSHR high-water marks and
 * hierarchy/cache counters, for every (workload x predictor x
 * machine) cell, under split run() budgets and mixed scalar/batched
 * use. The whole simulator is integer + fixed-seed RNG, so exact
 * equality is portable; any divergence is a kernel bug, not noise.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "trace/primitives.hh"
#include "trace/trace.hh"
#include "trace/workloads.hh"

namespace ltc
{
namespace
{

/** One machine configuration of the sweep. */
struct MachineCase
{
    const char *name;
    TimingConfig (*make)();
};

/** Table 1 machine: (2, 8) associativity, on the dispatch table. */
TimingConfig
paperMachine()
{
    return paperTiming();
}

/**
 * Off the static-associativity dispatch table (8-way L1, 4-way L2),
 * with a small MSHR file so allocReadyAt back-pressure fires.
 */
TimingConfig
genericMachine()
{
    TimingConfig c;
    c.hier.l1d.assoc = 8;
    c.hier.l2.assoc = 4;
    c.core.l1dMshrs = 4;
    return c;
}

/**
 * Stress machine: zero-latency request phases, a core-clocked memory
 * bus, a tiny ROB/LSQ and an 8-entry prefetch queue so overflow
 * drops and queue-full replacement trigger.
 */
TimingConfig
stressMachine()
{
    TimingConfig c;
    c.l1l2Bus.requestCycles = 0;
    c.memBus.requestCycles = 0;
    c.memBus.coreCyclesPerBusCycle = 1;
    c.core.robSize = 16;
    c.core.lsqSize = 8;
    c.core.l1dMshrs = 2;
    c.prefetchQueueEntries = 8;
    return c;
}

const MachineCase kMachines[] = {
    {"paper", paperMachine},
    {"generic", genericMachine},
    {"stress", stressMachine},
};

const char *const kWorkloads[] = {"mcf", "em3d", "gzip", "swim"};
const char *const kPredictors[] = {"none", "lt-cords", "ghb", "dbcp",
                                   "stride"};

void
expectSameTiming(const TimingStats &a, const TimingStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.correct, b.correct);
    EXPECT_EQ(a.partial, b.partial);
    EXPECT_EQ(a.useless, b.useless);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.missLatencyTotal, b.missLatencyTotal);
    EXPECT_EQ(a.memBusBusy, b.memBusBusy);
    EXPECT_EQ(a.l1l2BusBusy, b.l1l2BusBusy);
    EXPECT_EQ(a.l1l2ReqQueue, b.l1l2ReqQueue);
    EXPECT_EQ(a.l1l2DataQueue, b.l1l2DataQueue);
    EXPECT_EQ(a.memReqQueue, b.memReqQueue);
    EXPECT_EQ(a.memDataQueue, b.memDataQueue);
    for (unsigned t = 0;
         t < static_cast<unsigned>(Traffic::NumClasses); t++) {
        EXPECT_EQ(a.traffic.bytes(static_cast<Traffic>(t)),
                  b.traffic.bytes(static_cast<Traffic>(t)))
            << "traffic class " << t;
    }
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

void
expectSameMachineState(TimingSim &a, TimingSim &b)
{
    // MSHR occupancy trajectory (high-water mark + merge count).
    EXPECT_EQ(a.mshrs().peakOccupancy(), b.mshrs().peakOccupancy());
    EXPECT_EQ(a.mshrs().merges(), b.mshrs().merges());
    EXPECT_EQ(a.mshrs().outstanding(), b.mshrs().outstanding());
    // Functional hierarchy counters.
    EXPECT_EQ(a.hierarchy().accesses(), b.hierarchy().accesses());
    EXPECT_EQ(a.hierarchy().l1Misses(), b.hierarchy().l1Misses());
    EXPECT_EQ(a.hierarchy().l2Misses(), b.hierarchy().l2Misses());
    EXPECT_EQ(a.hierarchy().l1d().accesses(),
              b.hierarchy().l1d().accesses());
    EXPECT_EQ(a.hierarchy().l1d().misses(),
              b.hierarchy().l1d().misses());
    EXPECT_EQ(a.hierarchy().l1d().evictions(),
              b.hierarchy().l1d().evictions());
    EXPECT_EQ(a.hierarchy().l2().accesses(),
              b.hierarchy().l2().accesses());
    EXPECT_EQ(a.hierarchy().l2().misses(),
              b.hierarchy().l2().misses());
    EXPECT_EQ(a.hierarchy().l2().evictions(),
              b.hierarchy().l2().evictions());
    EXPECT_EQ(a.core().instructions(), b.core().instructions());
}

/**
 * Drive one (workload, predictor, config) cell through both paths
 * and compare everything. The batched side splits its budget over
 * several run() calls so batch remainders and re-entry are covered.
 */
void
checkCellConfig(const std::string &workload,
                const std::string &pred_name,
                const std::string &label, const TimingConfig &cfg,
                std::uint64_t refs)
{
    SCOPED_TRACE(workload + "/" + pred_name + "/" + label);

    auto src_batch = makeWorkload(workload);
    auto pred_batch = makePredictor(pred_name, cfg.hier,
                                    /*model_stream_latency=*/true);
    TimingSim batched(cfg, pred_batch.get());
    std::uint64_t done = 0;
    done += batched.run(*src_batch, refs / 2);
    done += batched.run(*src_batch, 1);
    done += batched.run(*src_batch, refs - done);
    ASSERT_EQ(done, refs);

    auto src_scalar = makeWorkload(workload);
    auto pred_scalar = makePredictor(pred_name, cfg.hier,
                                     /*model_stream_latency=*/true);
    TimingSim scalar(cfg, pred_scalar.get());
    MemRef ref;
    for (std::uint64_t i = 0; i < refs; i++) {
        ASSERT_TRUE(src_scalar->next(ref));
        scalar.step(ref);
    }

    expectSameTiming(batched.stats(), scalar.stats());
    expectSameMachineState(batched, scalar);
}

void
checkCell(const std::string &workload, const std::string &pred_name,
          const MachineCase &machine, std::uint64_t refs)
{
    checkCellConfig(workload, pred_name, machine.name, machine.make(),
                    refs);
}

// ------------------------------------------------------------ tests

/** The full cell matrix (the PR's acceptance sweep). */
TEST(TimingEquivalence, EveryWorkloadPredictorMachineCell)
{
    for (const MachineCase &machine : kMachines)
        for (const char *wl : kWorkloads)
            for (const char *pred : kPredictors)
                checkCell(wl, pred, machine, 20'000);
}

/** Perfect-L1 machines bypass the fast path but must still agree. */
TEST(TimingEquivalence, PerfectL1Machine)
{
    MachineCase perfect = {"perfect-l1", [] {
                               TimingConfig c;
                               c.hier.perfectL1 = true;
                               return c;
                           }};
    checkCell("mcf", "none", perfect, 20'000);
    checkCell("gzip", "lt-cords", perfect, 20'000);
}

/**
 * Mixed use: scalar step() calls interleaved between batched run()
 * calls must leave the engine in exactly the state a pure-scalar run
 * reaches (the baseline fast path re-engages after manual steps).
 */
TEST(TimingEquivalence, MixedScalarAndBatchedUse)
{
    for (const char *pred_name : {"none", "lt-cords"}) {
        SCOPED_TRACE(pred_name);
        auto src_mixed = makeWorkload("em3d");
        auto pred_mixed = makePredictor(pred_name, paperHierarchy(),
                                        true);
        TimingSim mixed(paperTiming(), pred_mixed.get());
        mixed.run(*src_mixed, 10'000);
        MemRef ref;
        for (int i = 0; i < 1'000; i++) {
            ASSERT_TRUE(src_mixed->next(ref));
            mixed.step(ref);
        }
        mixed.run(*src_mixed, 10'000);

        auto src_scalar = makeWorkload("em3d");
        auto pred_scalar = makePredictor(pred_name, paperHierarchy(),
                                         true);
        TimingSim scalar(paperTiming(), pred_scalar.get());
        for (std::uint64_t i = 0; i < 21'000; i++) {
            ASSERT_TRUE(src_scalar->next(ref));
            scalar.step(ref);
        }

        expectSameTiming(mixed.stats(), scalar.stats());
        expectSameMachineState(mixed, scalar);
    }
}

/**
 * A hand-injected prefetch before run() poisons the fast path's
 * no-prefetch-state precondition; the kernel must detect it and stay
 * on the exact general path.
 */
TEST(TimingEquivalence, HandInjectedPrefetchDisablesFastPath)
{
    auto src_batch = makeWorkload("mcf");
    TimingSim batched(paperTiming(), nullptr);
    batched.hierarchy().prefetch(0x40, invalidAddr);
    batched.run(*src_batch, 30'000);

    auto src_scalar = makeWorkload("mcf");
    TimingSim scalar(paperTiming(), nullptr);
    scalar.hierarchy().prefetch(0x40, invalidAddr);
    MemRef ref;
    for (std::uint64_t i = 0; i < 30'000; i++) {
        ASSERT_TRUE(src_scalar->next(ref));
        scalar.step(ref);
    }

    expectSameTiming(batched.stats(), scalar.stats());
    expectSameMachineState(batched, scalar);
}

/**
 * Scripted predictor: requests one fixed L1 prefetch every time the
 * trigger address is referenced.
 */
class TriggeredPrefetcher : public Prefetcher
{
  public:
    TriggeredPrefetcher(Addr trigger, Addr target)
        : trigger_(trigger), target_(target)
    {
    }

    void
    observe(const MemRef &ref, const HierOutcome &) override
    {
        if (ref.addr == trigger_) {
            PrefetchRequest req;
            req.target = target_;
            req.intoL1 = true;
            enqueue(req);
        }
    }

    std::string name() const override { return "triggered"; }

  private:
    Addr trigger_;
    Addr target_;
};

/**
 * An L1 prefetch whose line is evicted before its fill arrives keeps
 * its in-flight entry — the data is still physically on the busses.
 * Re-requests of the block are filtered while that fill is pending,
 * and allowed again once it has completed: erasing the entry at
 * eviction (the old behaviour) re-issued the duplicate immediately,
 * while a presence-based filter would veto the later, genuinely
 * fresh prefetch. Both engine paths must agree exactly.
 */
TEST(TimingEquivalence, EvictionKeepsPendingFillAndFiltersDuplicates)
{
    const TimingConfig cfg = paperTiming();
    const Addr line = cfg.hier.l1d.lineBytes;
    const Addr stride = cfg.hier.l1d.numSets() * line;
    const Addr target = 16 * stride;  // the prefetched block (set 0)
    const Addr trigger = target + line; // fires the predictor (set 1)
    const Addr idle = target + 2 * line; // neutral address (set 2)

    std::vector<MemRef> refs;
    const auto load = [&refs](Addr addr, std::uint32_t gap) {
        MemRef r;
        r.pc = 0x400000 + refs.size() * 4;
        r.addr = addr;
        r.nonMemGap = gap;
        refs.push_back(r);
    };
    load(trigger, 0);            // prefetch of target goes in flight
    load(target + stride, 0);    // fills the set's second way
    load(target + 2 * stride, 0); // evicts the untouched prefetch
    load(trigger, 0);            // duplicate request: fill pending
    load(idle, 1'000'000);       // idle gap past the fill completion
    load(trigger, 0);            // fresh request: must issue again

    TriggeredPrefetcher pred_scalar(trigger, target);
    TimingSim scalar(cfg, &pred_scalar);
    {
        VectorTrace src(refs);
        MemRef r;
        while (src.next(r))
            scalar.step(r);
    }

    TriggeredPrefetcher pred_batched(trigger, target);
    TimingSim batched(cfg, &pred_batched);
    {
        VectorTrace src(refs);
        EXPECT_EQ(batched.run(src, refs.size()), refs.size());
    }

    // One fill evicted untouched, its in-flight duplicate filtered
    // (not dropped — it never entered the queue), and exactly one
    // genuine re-fill after the data had arrived.
    EXPECT_EQ(scalar.hierarchy().l1d().prefetchFills(), 2u);
    EXPECT_EQ(scalar.stats().useless, 1u);
    EXPECT_EQ(scalar.stats().dropped, 0u);

    expectSameTiming(batched.stats(), scalar.stats());
    expectSameMachineState(batched, scalar);
}

/**
 * Every replacement-policy plugin must keep the batched kernels
 * (static associativity, policy inlined) equal to the scalar step()
 * path — including Random, whose RNG draw order is part of the
 * contract, and DeadBlock, whose markDead wiring is shared by both
 * paths through enqueuePrefetch.
 */
TEST(TimingEquivalence, ReplacementPolicySweep)
{
    for (const ReplPolicy p : allReplPolicies) {
        TimingConfig c;
        c.hier.l1d.policy = p;
        c.hier.l2.policy = p;
        checkCellConfig("mcf", "none", replPolicyName(p), c, 20'000);
        checkCellConfig("em3d", "lt-cords", replPolicyName(p), c,
                        20'000);
    }
}

/** Different L1/L2 policies take the PolicyAuto kernel; must agree. */
TEST(TimingEquivalence, MixedPolicyHierarchy)
{
    TimingConfig c;
    c.hier.l2.policy = ReplPolicy::RRIP; // L1 stays LRU
    checkCellConfig("gzip", "lt-cords", "lru+rrip", c, 20'000);
}

/**
 * modelWritebacks adds eviction-driven bus events inside access();
 * the batched kernel must schedule them identically, and the
 * baseline fast path (which bypasses listeners) must stand down.
 */
TEST(TimingEquivalence, WritebackModelling)
{
    TimingConfig c;
    c.hier.modelWritebacks = true;
    checkCellConfig("gzip", "none", "writebacks", c, 20'000);
    checkCellConfig("mcf", "lt-cords", "writebacks", c, 20'000);
}

/**
 * The dirty bit must actually reach the bus: a store-heavy stream
 * whose footprint overflows L2 produces nonzero Writeback traffic
 * when the knob is on, and exactly zero when it is off (the default
 * — existing goldens depend on it).
 */
TEST(TimingEquivalence, WritebackTrafficNonzeroOnlyWhenEnabled)
{
    ScanArray a;
    a.base = 0x5000000;
    a.blocks = 32768; // 2 MB of 64 B blocks: overflows the 1 MB L2
    a.accessesPerBlock = 2;
    a.stores = true;
    const std::uint64_t refs = 2 * 32768;

    TimingConfig on;
    on.hier.modelWritebacks = true;
    StridedScanSource src_on({a}, 3);
    TimingSim sim_on(on, nullptr);
    sim_on.run(src_on, refs);
    EXPECT_GT(sim_on.stats().traffic.bytes(Traffic::Writeback), 0u);

    StridedScanSource src_off({a}, 3);
    TimingSim sim_off(TimingConfig{}, nullptr);
    sim_off.run(src_off, refs);
    EXPECT_EQ(sim_off.stats().traffic.bytes(Traffic::Writeback), 0u);
}

/** run() must never pull more records than its budget. */
TEST(TimingEquivalence, RunNeverOverdraws)
{
    auto src = makeWorkload("gzip");
    TimingSim sim(paperTiming(), nullptr);
    EXPECT_EQ(sim.run(*src, 777), 777u);
    EXPECT_EQ(sim.stats().accesses, 777u);
    // The next record the source yields is record 778 of the stream:
    // an independent consumer sees the identical continuation.
    auto fresh = makeWorkload("gzip");
    MemRef expect, got;
    for (int i = 0; i < 777; i++)
        ASSERT_TRUE(fresh->next(expect));
    for (int i = 0; i < 100; i++) {
        ASSERT_TRUE(fresh->next(expect));
        ASSERT_TRUE(src->next(got));
        ASSERT_TRUE(got == expect) << "record " << 777 + i;
    }
}

} // namespace
} // namespace ltc
