/**
 * @file
 * Tests for the memory substrate (busses, DRAM, bandwidth accounting,
 * MSHRs) and the ROB-window core model.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"
#include "cpu/ooo_core.hh"
#include "mem/bandwidth.hh"
#include "mem/bus.hh"
#include "mem/dram.hh"

namespace ltc
{
namespace
{

//
// Bus
//

TEST(BusTest, OccupancyFormula)
{
    BusConfig c = BusConfig::l1l2();
    EXPECT_EQ(c.occupancy(0), 1u);    // request only
    EXPECT_EQ(c.occupancy(32), 2u);   // 1 req + 1 data
    EXPECT_EQ(c.occupancy(64), 3u);   // 1 req + 2 data
    c = BusConfig::memory();
    EXPECT_EQ(c.occupancy(64), 9u);   // (1+2)*3 core cycles
}

TEST(BusTest, TransfersQueueInOrder)
{
    Bus bus(BusConfig::l1l2());
    EXPECT_EQ(bus.transfer(10, 64), 13u);
    // Second transfer ready at 11 but bus busy until 13.
    EXPECT_EQ(bus.transfer(11, 64), 16u);
    EXPECT_EQ(bus.queueCycles(), 2u);
    EXPECT_EQ(bus.busyCycles(), 6u);
    EXPECT_EQ(bus.bytesMoved(), 128u);
    EXPECT_EQ(bus.transfers(), 2u);
}

TEST(BusTest, IdleGapNotCounted)
{
    Bus bus(BusConfig::l1l2());
    bus.transfer(0, 64);
    bus.transfer(100, 64);
    EXPECT_EQ(bus.busyCycles(), 6u);
    EXPECT_EQ(bus.queueCycles(), 0u);
}

TEST(BusTest, IsFreeAndFreeAt)
{
    Bus bus(BusConfig::l1l2());
    EXPECT_TRUE(bus.isFree(0));
    bus.transfer(0, 64); // busy until 3
    EXPECT_FALSE(bus.isFree(2));
    EXPECT_TRUE(bus.isFree(3));
    EXPECT_EQ(bus.freeAt(1), 3u);
    EXPECT_EQ(bus.freeAt(10), 10u);
}

TEST(BusTest, UtilizationBounded)
{
    Bus bus(BusConfig::memory());
    for (int i = 0; i < 100; i++)
        bus.transfer(0, 64);
    EXPECT_DOUBLE_EQ(bus.utilization(100), 1.0);
    EXPECT_NEAR(bus.utilization(9 * 100), 1.0, 1e-9);
    EXPECT_NEAR(bus.utilization(9 * 200), 0.5, 1e-9);
}

TEST(BusTest, Reset)
{
    Bus bus(BusConfig::l1l2());
    bus.transfer(0, 64);
    bus.reset();
    EXPECT_EQ(bus.busyCycles(), 0u);
    EXPECT_TRUE(bus.isFree(0));
}

TEST(BusTest, ZeroLatencyConfig)
{
    // A free request phase (requestCycles = 0): a zero-byte transfer
    // occupies nothing, advances no horizon, and never queues — the
    // degenerate machine the batched timing kernel must keep exact
    // (the equivalence suite runs a whole machine configured this
    // way).
    BusConfig cfg;
    cfg.requestCycles = 0;
    Bus bus(cfg);
    EXPECT_EQ(cfg.occupancy(0), 0u);
    EXPECT_EQ(bus.transfer(5, 0), 5u);
    EXPECT_EQ(bus.transfer(5, 0), 5u); // still free: no occupancy
    EXPECT_TRUE(bus.isFree(5));
    EXPECT_EQ(bus.busyCycles(), 0u);
    EXPECT_EQ(bus.queueCycles(), 0u);
    EXPECT_EQ(bus.transfers(), 2u);
    // Data still costs data cycles even with a free request phase.
    EXPECT_EQ(bus.transfer(10, 64), 12u);
}

TEST(BusTest, SaturatedWindowQueuesEveryTransfer)
{
    // All transfers ready at cycle 0: the k-th starts when the
    // (k-1)-th finishes, so waits grow linearly and the bus never
    // idles — utilization clamps at exactly 1.
    Bus bus(BusConfig::l1l2());
    const Cycle occ = bus.config().occupancy(64); // 3 cycles
    const int n = 100;
    Cycle queued = 0;
    for (int k = 0; k < n; k++) {
        EXPECT_EQ(bus.transfer(0, 64), (k + 1) * occ);
        queued += k * occ;
    }
    EXPECT_EQ(bus.queueCycles(), queued);
    EXPECT_EQ(bus.busyCycles(), n * occ);
    EXPECT_DOUBLE_EQ(bus.utilization(n * occ), 1.0);
    // A transfer arriving mid-saturation waits for the full backlog.
    EXPECT_EQ(bus.transfer(1, 64), (n + 1) * occ);
}

//
// DRAM
//

TEST(DramTest, LatencyFormula)
{
    DramModel dram;
    EXPECT_EQ(dram.latency(0), 0u);
    EXPECT_EQ(dram.latency(32), 200u);        // first chunk
    EXPECT_EQ(dram.latency(64), 203u);        // +1 chunk
    EXPECT_EQ(dram.latency(33), 203u);        // rounds up
    EXPECT_EQ(dram.latency(128), 209u);       // 4 chunks
}

TEST(DramTest, TrafficCounters)
{
    DramModel dram;
    dram.read(64);
    dram.read(64);
    dram.write(32);
    EXPECT_EQ(dram.bytesRead(), 128u);
    EXPECT_EQ(dram.bytesWritten(), 32u);
}

TEST(DramTest, NoteReadMatchesRead)
{
    // The timing engine's hoisted-latency path: latency() once up
    // front plus noteRead() per event must leave the model in the
    // same state as read().
    DramModel a;
    DramModel b;
    const Cycle lat = b.latency(64);
    for (int i = 0; i < 5; i++) {
        EXPECT_EQ(a.read(64), lat);
        b.noteRead(64);
    }
    EXPECT_EQ(a.bytesRead(), b.bytesRead());
}

//
// Bandwidth accounting
//

TEST(BandwidthTest, PerClassAccounting)
{
    BandwidthAccount acc;
    acc.add(Traffic::BaseData, 640);
    acc.add(Traffic::SequenceFetch, 50);
    acc.add(Traffic::SequenceCreate, 25);
    acc.add(Traffic::IncorrectPrefetch, 64);
    EXPECT_EQ(acc.bytes(Traffic::BaseData), 640u);
    EXPECT_EQ(acc.totalBytes(), 779u);
    EXPECT_DOUBLE_EQ(acc.perInstruction(Traffic::BaseData, 64), 10.0);
    acc.reset();
    EXPECT_EQ(acc.totalBytes(), 0u);
}

TEST(BandwidthTest, TrafficNames)
{
    EXPECT_STREQ(trafficName(Traffic::BaseData), "base-data");
    EXPECT_STREQ(trafficName(Traffic::SequenceFetch), "sequence-fetch");
}

//
// MSHR
//

TEST(MshrTest, AllocateAndLookup)
{
    MshrFile m(4);
    EXPECT_EQ(m.allocReadyAt(10), 10u);
    m.allocate(0x1000, 10, 100);
    auto hit = m.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 100u);
    EXPECT_FALSE(m.lookup(0x2000).has_value());
    EXPECT_EQ(m.outstanding(), 1u);
}

TEST(MshrTest, FullFileDelaysAllocation)
{
    MshrFile m(2);
    m.allocate(0x1000, 0, 50);
    m.allocate(0x2000, 0, 80);
    // Full: next allocation must wait for the earliest completion.
    EXPECT_EQ(m.allocReadyAt(10), 50u);
    // At 60, one entry has retired.
    EXPECT_EQ(m.allocReadyAt(60), 60u);
}

TEST(MshrTest, RetireReleasesEntries)
{
    MshrFile m(2);
    m.allocate(0x1000, 0, 50);
    m.retire(49);
    EXPECT_EQ(m.outstanding(), 1u);
    m.retire(50);
    EXPECT_EQ(m.outstanding(), 0u);
}

TEST(MshrTest, AllocateRetiresCompleted)
{
    MshrFile m(1);
    m.allocate(0x1000, 0, 50);
    // Allocation at 60 implicitly frees the completed entry.
    m.allocate(0x2000, 60, 100);
    EXPECT_EQ(m.outstanding(), 1u);
}

TEST(MshrTest, PeakOccupancyTracked)
{
    MshrFile m(8);
    for (int i = 0; i < 5; i++)
        m.allocate(static_cast<Addr>(i) * 64, 0, 1000);
    EXPECT_EQ(m.peakOccupancy(), 5u);
    m.clear();
    EXPECT_EQ(m.outstanding(), 0u);
    EXPECT_EQ(m.peakOccupancy(), 5u);
}

TEST(MshrTest, MergeCounter)
{
    MshrFile m(4);
    m.noteMerge();
    m.noteMerge();
    EXPECT_EQ(m.merges(), 2u);
}

TEST(MshrTest, BackToBackMergesKeepTheEntry)
{
    // A burst of accesses to one outstanding block must merge with
    // the same entry every time (no entry lost, no duplicate
    // allocated) until the completion retires it.
    MshrFile m(4);
    m.allocate(0x1000, 0, 500);
    for (int i = 0; i < 10; i++) {
        auto hit = m.lookup(0x1000);
        ASSERT_TRUE(hit.has_value()) << "merge " << i;
        EXPECT_EQ(*hit, 500u);
        m.noteMerge();
    }
    EXPECT_EQ(m.merges(), 10u);
    EXPECT_EQ(m.outstanding(), 1u);
    // Retires strictly before completion keep it; at completion it
    // goes, and the next access to the block is a fresh miss.
    m.retire(499);
    EXPECT_TRUE(m.lookup(0x1000).has_value());
    m.retire(500);
    EXPECT_FALSE(m.lookup(0x1000).has_value());
    EXPECT_EQ(m.outstanding(), 0u);
}

TEST(MshrTest, LateRetireReleasesEverything)
{
    // Event-granular retire: one tick far in the future releases all
    // completed entries at once (the batched kernel never steps
    // through intermediate times).
    MshrFile m(8);
    for (int i = 0; i < 6; i++)
        m.allocate(static_cast<Addr>(i) * 64, 0, 100 + i * 50);
    EXPECT_EQ(m.outstanding(), 6u);
    m.retire(10'000);
    EXPECT_EQ(m.outstanding(), 0u);
    EXPECT_EQ(m.peakOccupancy(), 6u);
    // And the file is immediately reusable at full capacity.
    EXPECT_EQ(m.allocReadyAt(10'000), 10'000u);
}

//
// OooCore
//

TEST(OooCoreTest, WidthBoundIpc)
{
    CoreConfig cfg;
    cfg.width = 8;
    OooCore core(cfg);
    core.issueNonMem(8000);
    // All single-cycle ALU ops: IPC approaches the width.
    EXPECT_NEAR(core.ipc(), 8.0, 0.1);
}

TEST(OooCoreTest, SingleMissLatencyVisible)
{
    OooCore core(CoreConfig{});
    const Cycle issue = core.beginMem();
    core.completeMem(issue + 200);
    EXPECT_GE(core.finishCycle(), 200u);
}

TEST(OooCoreTest, IndependentMissesOverlap)
{
    // 300 independent 200-cycle misses with a 256-entry ROB: wall
    // time must be far below 300*200 (window-level MLP).
    OooCore core(CoreConfig{});
    for (int i = 0; i < 300; i++) {
        core.issueNonMem(2);
        const Cycle issue = core.beginMem();
        core.completeMem(issue + 200);
    }
    EXPECT_LT(core.finishCycle(), 2000u);
    EXPECT_GT(core.finishCycle(), 400u);
}

TEST(OooCoreTest, DependentMissesSerialise)
{
    OooCore core(CoreConfig{});
    Cycle last_complete = 0;
    for (int i = 0; i < 50; i++) {
        const Cycle issue = core.beginMem();
        const Cycle ready = std::max(issue, last_complete);
        last_complete = ready + 200;
        core.completeMem(last_complete);
    }
    // Fully serial: ~50 x 200 cycles.
    EXPECT_GE(core.finishCycle(), 50u * 200u);
}

TEST(OooCoreTest, RobLimitsWindow)
{
    // A tiny ROB (8 entries) must serialise bursts of long misses.
    CoreConfig small;
    small.robSize = 8;
    small.lsqSize = 8;
    OooCore core(small);
    for (int i = 0; i < 64; i++) {
        const Cycle issue = core.beginMem();
        core.completeMem(issue + 100);
    }
    // At most 8 misses in flight: >= 64/8 * 100 cycles.
    EXPECT_GE(core.finishCycle(), 800u);
}

TEST(OooCoreTest, LsqLimitsMemoryInFlight)
{
    CoreConfig cfg;
    cfg.robSize = 256;
    cfg.lsqSize = 4;
    OooCore core(cfg);
    for (int i = 0; i < 64; i++) {
        const Cycle issue = core.beginMem();
        core.completeMem(issue + 100);
    }
    EXPECT_GE(core.finishCycle(), 64u / 4u * 100u);
}

TEST(OooCoreTest, IssueCyclesMonotonic)
{
    OooCore core(CoreConfig{});
    Cycle prev = 0;
    for (int i = 0; i < 200; i++) {
        core.issueNonMem(i % 3);
        const Cycle issue = core.beginMem();
        EXPECT_GE(issue, prev);
        prev = issue;
        core.completeMem(issue + (i % 5) * 50 + 1);
    }
}

TEST(OooCoreTest, InstructionCounting)
{
    OooCore core(CoreConfig{});
    core.issueNonMem(10);
    const Cycle issue = core.beginMem();
    core.completeMem(issue + 1);
    EXPECT_EQ(core.instructions(), 11u);
}

TEST(OooCoreTest, IntervalMeasurement)
{
    OooCore core(CoreConfig{});
    core.issueNonMem(100);
    core.beginInterval();
    core.issueNonMem(800);
    EXPECT_EQ(core.intervalInstructions(), 800u);
    EXPECT_NEAR(static_cast<double>(core.intervalInstructions()) /
                    static_cast<double>(core.intervalCycles()),
                8.0, 0.5);
}

TEST(OooCoreDeathTest, CompleteBeforeIssuePanics)
{
    OooCore core(CoreConfig{});
    core.issueNonMem(100);
    const Cycle issue = core.beginMem();
    if (issue > 0) {
        EXPECT_DEATH(core.completeMem(0), "completes before");
    }
}

TEST(OooCoreDeathTest, DoubleBeginPanics)
{
    OooCore core(CoreConfig{});
    core.beginMem();
    EXPECT_DEATH(core.beginMem(), "pending");
}

/** Property sweep: IPC never exceeds width for any mix. */
class CoreWidthProperty : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CoreWidthProperty, IpcBoundedByWidth)
{
    CoreConfig cfg;
    cfg.width = GetParam();
    OooCore core(cfg);
    for (int i = 0; i < 500; i++) {
        core.issueNonMem(3);
        const Cycle issue = core.beginMem();
        core.completeMem(issue + (i % 7 == 0 ? 100 : 2));
    }
    EXPECT_LE(core.ipc(), static_cast<double>(GetParam()) + 1e-9);
    EXPECT_GT(core.ipc(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, CoreWidthProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace ltc
