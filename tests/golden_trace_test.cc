/**
 * @file
 * Golden-trace regression suite.
 *
 * The .ltct fixtures under tests/data/ are captures of the synthetic
 * primitives (StridedScanSource, PointerChaseSource,
 * InterleaveSource, TreeWalkSource) whose end-to-end metrics through
 * the trace engine (coverage taxonomy) and the timing engine (IPC)
 * are pinned EXACTLY below: any change to the predictor stack, the
 * hierarchy, the engines or the trace container that shifts a single
 * miss fails this suite. The whole simulator is integer + fixed-seed
 * RNG, so exact equality is portable.
 *
 * Maintenance:
 *  - `LTC_GOLDEN_REGEN=1 ./ltc_tests
 *     --gtest_filter='GoldenFixtures.Regenerate'` rewrites the
 *    fixtures from the builders below (they self-verify: the replay
 *    test proves fixture bytes == builder output).
 *  - `LTC_GOLDEN_PRINT=1 ./ltc_tests
 *     --gtest_filter='*Golden*'` prints the expectation tables in
 *    copy-pasteable form after an intended behaviour change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/multiprog.hh"
#include "sim/runner.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/file_trace.hh"
#include "trace/primitives.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace ltc
{
namespace
{

#ifndef LTC_TEST_DATA_DIR
#error "LTC_TEST_DATA_DIR must point at tests/data"
#endif

constexpr std::uint32_t kFixtureChunk = 8192;

std::string
dataPath(const std::string &file)
{
    return std::string(LTC_TEST_DATA_DIR) + "/" + file;
}

// ------------------------------------------------- fixture builders
//
// These are the single source of truth for what the checked-in
// fixtures contain; Replay below asserts the files match them
// record-for-record.

std::unique_ptr<TraceSource>
buildStridedScan()
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 4096;
    a.accessesPerBlock = 2;
    a.pc = 0x1000;
    return std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a}, /*non_mem_gap=*/3, "golden.scan");
}

std::unique_ptr<TraceSource>
buildPointerChase()
{
    PointerChaseParams p;
    p.base = 0x2000000;
    p.nodes = 4096;
    p.accessesPerNode = 1;
    p.seed = 42;
    p.nonMemGap = 4;
    p.pc = 0x2000;
    return std::make_unique<PointerChaseSource>(p, "golden.chase");
}

std::unique_ptr<TraceSource>
buildInterleave()
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 2048;
    a.accessesPerBlock = 2;
    a.pc = 0x1100;
    auto scan = std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a}, /*non_mem_gap=*/2, "golden.mix.scan");

    PointerChaseParams p;
    p.base = 0x1800000;
    p.nodes = 2048;
    p.accessesPerNode = 1;
    p.seed = 9;
    p.nonMemGap = 3;
    p.pc = 0x2100;
    auto chase =
        std::make_unique<PointerChaseSource>(p, "golden.mix.chase");

    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(std::move(scan));
    kids.push_back(std::move(chase));
    return std::make_unique<InterleaveSource>(
        std::move(kids), std::vector<std::uint32_t>{6, 1},
        "golden.mix");
}

std::unique_ptr<TraceSource>
buildTreeWalk()
{
    TreeWalkParams p;
    p.base = 0x3000000;
    p.nodes = 4095;
    p.accessesPerNode = 2;
    p.regularLayout = true;
    p.seed = 5;
    p.nonMemGap = 2;
    p.pc = 0x3000;
    return std::make_unique<TreeWalkSource>(p, "golden.tree");
}

struct FixtureSpec
{
    const char *file;
    std::uint64_t refs;
    std::unique_ptr<TraceSource> (*build)();
};

const FixtureSpec kFixtures[] = {
    {"strided_scan.ltct", 65536, buildStridedScan},
    {"pointer_chase.ltct", 32768, buildPointerChase},
    {"interleave.ltct", 40960, buildInterleave},
    {"tree_walk.ltct", 32760, buildTreeWalk},
};

// --------------------------------------------------- golden metrics

/** Trace-engine expectations (exact; see file comment). */
struct TraceGolden
{
    const char *file;
    std::uint64_t opportunity; //!< baseline L1D misses
    std::uint64_t l1Misses;    //!< misses with LT-cords attached
    std::uint64_t correct;     //!< misses eliminated by streaming
    std::uint64_t early;       //!< premature-eviction extra misses
    std::uint64_t useless;     //!< prefetched blocks never touched
};

/**
 * Timing-engine expectations (exact): cycle count, the coverage
 * counters and the Figure 12 bandwidth numbers (per-class traffic
 * bytes and memory-bus busy cycles), so any batched-kernel change
 * that shifts a single bus transfer or prefetch outcome fails here.
 */
struct TimingGolden
{
    const char *file;
    std::uint64_t cycles;
    std::uint64_t instructions;
    std::uint64_t l1Misses;
    std::uint64_t correct; //!< demand hits on prefetched blocks
    std::uint64_t l2Misses;
    std::uint64_t partial; //!< prefetched but still in flight
    std::uint64_t useless; //!< prefetched blocks never used
    std::uint64_t memBusBusy;  //!< memory-bus busy cycles
    std::uint64_t baseBytes;   //!< Traffic::BaseData
    std::uint64_t wrongBytes;  //!< Traffic::IncorrectPrefetch
    std::uint64_t createBytes; //!< Traffic::SequenceCreate
    std::uint64_t fetchBytes;  //!< Traffic::SequenceFetch
};

// Values pinned from the initial capture (see file comment for the
// regeneration workflow).
const TraceGolden kTraceGolden[] = {
    {"strided_scan.ltct", 32768, 8233, 24535, 1058, 0},
    {"pointer_chase.ltct", 32768, 7727, 25041, 216, 0},
    {"interleave.ltct", 23406, 13695, 9711, 1175, 171},
    {"tree_walk.ltct", 16380, 7203, 9177, 17, 0},
};

const TimingGolden kTimingGolden[] = {
    {"strided_scan.ltct", 123799, 262144, 24002, 8766, 4096, 0, 0,
     270828, 262144, 0, 123384, 348160},
    {"pointer_chase.ltct", 1247944, 163840, 12532, 20236, 4096, 103,
     13, 262206, 262144, 0, 77789, 230470},
    {"interleave.ltct", 99291, 128731, 19548, 3858, 4096, 132, 147,
     189114, 262144, 0, 96121, 92160},
    {"tree_walk.ltct", 74675, 98280, 13075, 3305, 4095, 243, 23,
     149487, 262080, 0, 63583, 87040},
};

/**
 * Predictor-less timing expectations (exact): pins the baseline
 * cycle-engine path — the fast kernel TimingSim::run takes when no
 * predictor is attached — including the stall/latency accounting.
 */
struct TimingBaselineGolden
{
    const char *file;
    std::uint64_t cycles;
    std::uint64_t l1Misses;
    std::uint64_t l2Misses;
    std::uint64_t missLatencyTotal;
    std::uint64_t memBusBusy;
    std::uint64_t baseBytes; //!< Traffic::BaseData
};

const TimingBaselineGolden kTimingBaselineGolden[] = {
    {"strided_scan.ltct", 123113, 32768, 4096, 3937600, 49152,
     262144},
    {"pointer_chase.ltct", 1732609, 32768, 4096, 1732608, 49152,
     262144},
    {"interleave.ltct", 98405, 23406, 4096, 4609307, 49152, 262144},
    {"tree_walk.ltct", 73943, 16380, 4095, 3176062, 49140, 262080},
};

/**
 * Scaled multi-programmed expectations (exact): pins the batched
 * multi-tenant engine loop (TraceEngine::runSchedule), the
 * churn-driven schedule generator and signature-cache partitioning
 * end to end — aggregate opportunity/misses/coverage over all
 * tenants plus the cross-tenant sequence-storage interference
 * counter. Shared-mode rows double as the guarantee that the
 * tenant plumbing leaves single-cache behaviour untouched.
 */
struct Fig11ScaleGolden
{
    std::uint32_t tenants;
    std::uint32_t partitions; //!< 1 = shared signature cache
    std::uint64_t churnSeed;  //!< 0 = static round-robin
    std::uint64_t opportunity;
    std::uint64_t l1Misses;
    std::uint64_t correct;
    std::uint64_t crossConflicts;
};

const Fig11ScaleGolden kFig11ScaleGolden[] = {
    {2, 1, 0, 20090, 18837, 2619, 0},
    {2, 2, 0, 20090, 16819, 3273, 0},
    {8, 1, 7, 127998, 99229, 28769, 1},
    {8, 8, 7, 127998, 109098, 18901, 2},
};

/**
 * Writeback-mode expectations (exact): pins the modelWritebacks knob
 * end to end on a store-heavy stream whose 2 MB footprint overflows
 * the 1 MB L2, so dirty L2 victims actually leave the chip. One row
 * per engine; the off-mode is pinned by every other golden in this
 * file (the knob defaults off and the Writeback class stays zero).
 */
struct WritebackGolden
{
    std::uint64_t traceL1Misses;   //!< trace engine, lt-cords
    std::uint64_t traceCorrect;
    std::uint64_t traceWbBytes;    //!< Traffic::Writeback (trace)
    std::uint64_t timingCycles;    //!< timing engine, lt-cords
    std::uint64_t timingL2Misses;
    std::uint64_t timingWbBytes;   //!< Traffic::Writeback (timing)
    std::uint64_t timingMemBusBusy;
};

const WritebackGolden kWritebackGolden = {
    32768, 0, 1048576, 442601, 32768, 1048576, 731136,
};

/**
 * Per-policy baseline expectations (exact): the trace engine with no
 * predictor over the interleave fixture, one row per replacement
 * policy. Pins every plugin's victim selection bit-for-bit — and
 * documents that DeadBlock with no predictions degenerates to LRU.
 * On this fixture the 2-way L1 makes the deterministic orderings
 * (FIFO/RRIP/DRRIP/SHiP) coincide with LRU; Random is the row that
 * proves victim selection actually flows through the plugin.
 */
struct PolicyGolden
{
    ReplPolicy policy;
    std::uint64_t l1Misses;
    std::uint64_t l2Misses;
};

const PolicyGolden kPolicyGolden[] = {
    {ReplPolicy::LRU, 23406, 4096},
    {ReplPolicy::FIFO, 23406, 4096},
    {ReplPolicy::Random, 22356, 4096},
    {ReplPolicy::RRIP, 23406, 4096},
    {ReplPolicy::DRRIP, 23406, 4096},
    {ReplPolicy::SHiP, 23406, 4096},
    {ReplPolicy::DeadBlock, 23406, 4096},
};

/** Store-heavy scan whose footprint (2 MB) overflows the 1 MB L2. */
std::unique_ptr<TraceSource>
buildStoreScan()
{
    ScanArray a;
    a.base = 0x5000000;
    a.blocks = 32768;
    a.accessesPerBlock = 2;
    a.stores = true;
    a.pc = 0x5000;
    return std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a}, /*non_mem_gap=*/3, "golden.store");
}

bool
printMode()
{
    return std::getenv("LTC_GOLDEN_PRINT") != nullptr;
}

CoverageStats
runTraceEngine(const std::string &file)
{
    FileTrace trace(dataPath(file));
    auto pred = makePredictor("lt-cords", paperHierarchy());
    return runWithOpportunity(paperHierarchy(), pred.get(), trace,
                              trace.size());
}

TimingStats
runTimingEngine(const std::string &file)
{
    FileTrace trace(dataPath(file));
    auto pred = makePredictor("lt-cords", paperHierarchy(),
                              /*model_stream_latency=*/true);
    TimingSim sim(paperTiming(), pred.get());
    sim.run(trace, trace.size());
    return sim.stats();
}

/** Scoped environment override for LTC_TRACE_DIR. */
class TraceDirGuard
{
  public:
    explicit TraceDirGuard(const std::string &dir)
    {
        setenv("LTC_TRACE_DIR", dir.c_str(), 1);
    }
    ~TraceDirGuard() { unsetenv("LTC_TRACE_DIR"); }
};

// ------------------------------------------------------------ tests

TEST(GoldenFixtures, Regenerate)
{
    if (!std::getenv("LTC_GOLDEN_REGEN"))
        GTEST_SKIP() << "set LTC_GOLDEN_REGEN=1 to rewrite fixtures";
    for (const FixtureSpec &spec : kFixtures) {
        auto src = spec.build();
        std::uint64_t written = 0;
        ASSERT_EQ(captureToFile(*src, dataPath(spec.file), spec.refs,
                                &written, kFixtureChunk),
                  TraceErrc::Ok);
        ASSERT_EQ(written, spec.refs) << spec.file;
    }
}

TEST(GoldenFixtures, ReplayMatchesBuilders)
{
    for (const FixtureSpec &spec : kFixtures) {
        SCOPED_TRACE(spec.file);
        FileTrace trace(dataPath(spec.file));
        ASSERT_EQ(trace.size(), spec.refs);
        auto src = spec.build();
        MemRef want, got;
        for (std::uint64_t i = 0; i < spec.refs; i++) {
            ASSERT_TRUE(src->next(want)) << "record " << i;
            ASSERT_TRUE(trace.next(got)) << "record " << i;
            ASSERT_TRUE(got == want) << "record " << i;
        }
        EXPECT_FALSE(trace.next(got)); // fixture holds nothing more
    }
}

TEST(GoldenFixtures, CompressionBeatsV1ByAtLeast4x)
{
    for (const FixtureSpec &spec : kFixtures) {
        SCOPED_TRACE(spec.file);
        TraceFileInfo info;
        ASSERT_EQ(probeTraceFile(dataPath(spec.file), info),
                  TraceErrc::Ok);
        EXPECT_EQ(info.version, 2u);
        EXPECT_EQ(info.records, spec.refs);
        EXPECT_GE(info.compressionVsV1(), 4.0)
            << "v2 must stay >=4x smaller than the v1 encoding ("
            << info.fileBytes << " vs " << info.v1EquivalentBytes()
            << " bytes)";
    }
}

TEST(GoldenTraceEngine, MetricsMatchExactly)
{
    for (const TraceGolden &g : kTraceGolden) {
        SCOPED_TRACE(g.file);
        const CoverageStats s = runTraceEngine(g.file);
        if (printMode()) {
            std::printf("    {\"%s\", %llu, %llu, %llu, %llu, %llu},\n",
                        g.file,
                        static_cast<unsigned long long>(s.opportunity),
                        static_cast<unsigned long long>(s.l1Misses),
                        static_cast<unsigned long long>(s.correct),
                        static_cast<unsigned long long>(s.early),
                        static_cast<unsigned long long>(
                            s.uselessPrefetches));
            continue;
        }
        EXPECT_EQ(s.opportunity, g.opportunity);
        EXPECT_EQ(s.l1Misses, g.l1Misses);
        EXPECT_EQ(s.correct, g.correct);
        EXPECT_EQ(s.early, g.early);
        EXPECT_EQ(s.uselessPrefetches, g.useless);
    }
}

TEST(GoldenTimingEngine, MetricsMatchExactly)
{
    for (const TimingGolden &g : kTimingGolden) {
        SCOPED_TRACE(g.file);
        const TimingStats s = runTimingEngine(g.file);
        if (printMode()) {
            std::printf("    {\"%s\", %llu, %llu, %llu, %llu, %llu, "
                        "%llu, %llu, %llu,\n     %llu, %llu, %llu, "
                        "%llu},\n",
                        g.file,
                        static_cast<unsigned long long>(s.cycles),
                        static_cast<unsigned long long>(
                            s.instructions),
                        static_cast<unsigned long long>(s.l1Misses),
                        static_cast<unsigned long long>(s.correct),
                        static_cast<unsigned long long>(s.l2Misses),
                        static_cast<unsigned long long>(s.partial),
                        static_cast<unsigned long long>(s.useless),
                        static_cast<unsigned long long>(s.memBusBusy),
                        static_cast<unsigned long long>(
                            s.traffic.bytes(Traffic::BaseData)),
                        static_cast<unsigned long long>(
                            s.traffic.bytes(
                                Traffic::IncorrectPrefetch)),
                        static_cast<unsigned long long>(
                            s.traffic.bytes(Traffic::SequenceCreate)),
                        static_cast<unsigned long long>(
                            s.traffic.bytes(Traffic::SequenceFetch)));
            continue;
        }
        EXPECT_EQ(s.cycles, g.cycles);
        EXPECT_EQ(s.instructions, g.instructions);
        EXPECT_EQ(s.l1Misses, g.l1Misses);
        EXPECT_EQ(s.correct, g.correct);
        EXPECT_EQ(s.l2Misses, g.l2Misses);
        EXPECT_EQ(s.partial, g.partial);
        EXPECT_EQ(s.useless, g.useless);
        EXPECT_EQ(s.memBusBusy, g.memBusBusy);
        EXPECT_EQ(s.traffic.bytes(Traffic::BaseData), g.baseBytes);
        EXPECT_EQ(s.traffic.bytes(Traffic::IncorrectPrefetch),
                  g.wrongBytes);
        EXPECT_EQ(s.traffic.bytes(Traffic::SequenceCreate),
                  g.createBytes);
        EXPECT_EQ(s.traffic.bytes(Traffic::SequenceFetch),
                  g.fetchBytes);
    }
}

TEST(GoldenTimingEngine, BaselineMetricsMatchExactly)
{
    for (const TimingBaselineGolden &g : kTimingBaselineGolden) {
        SCOPED_TRACE(g.file);
        FileTrace trace(dataPath(g.file));
        TimingSim sim(paperTiming(), nullptr);
        sim.run(trace, trace.size());
        const TimingStats s = sim.stats();
        if (printMode()) {
            std::printf("    {\"%s\", %llu, %llu, %llu, %llu, %llu,\n"
                        "     %llu},\n",
                        g.file,
                        static_cast<unsigned long long>(s.cycles),
                        static_cast<unsigned long long>(s.l1Misses),
                        static_cast<unsigned long long>(s.l2Misses),
                        static_cast<unsigned long long>(
                            s.missLatencyTotal),
                        static_cast<unsigned long long>(s.memBusBusy),
                        static_cast<unsigned long long>(
                            s.traffic.bytes(Traffic::BaseData)));
            continue;
        }
        EXPECT_EQ(s.cycles, g.cycles);
        EXPECT_EQ(s.l1Misses, g.l1Misses);
        EXPECT_EQ(s.l2Misses, g.l2Misses);
        EXPECT_EQ(s.missLatencyTotal, g.missLatencyTotal);
        EXPECT_EQ(s.memBusBusy, g.memBusBusy);
        EXPECT_EQ(s.traffic.bytes(Traffic::BaseData), g.baseBytes);
        EXPECT_EQ(s.accesses, trace.size());
    }
}

TEST(GoldenWriteback, OnModeMetricsMatchExactly)
{
    const std::uint64_t refs = 2 * 32768;

    HierarchyConfig hc = paperHierarchy();
    hc.modelWritebacks = true;
    auto src_t = buildStoreScan();
    auto pred_t = makePredictor("lt-cords", hc);
    const CoverageStats ts =
        runWithOpportunity(hc, pred_t.get(), *src_t, refs);

    TimingConfig tc = paperTiming();
    tc.hier.modelWritebacks = true;
    auto src_c = buildStoreScan();
    auto pred_c = makePredictor("lt-cords", tc.hier,
                                /*model_stream_latency=*/true);
    TimingSim sim(tc, pred_c.get());
    sim.run(*src_c, refs);
    const TimingStats cs = sim.stats();

    if (printMode()) {
        std::printf("    %llu, %llu, %llu, %llu, %llu, %llu, %llu,\n",
                    static_cast<unsigned long long>(ts.l1Misses),
                    static_cast<unsigned long long>(ts.correct),
                    static_cast<unsigned long long>(
                        ts.traffic.bytes(Traffic::Writeback)),
                    static_cast<unsigned long long>(cs.cycles),
                    static_cast<unsigned long long>(cs.l2Misses),
                    static_cast<unsigned long long>(
                        cs.traffic.bytes(Traffic::Writeback)),
                    static_cast<unsigned long long>(cs.memBusBusy));
        return;
    }
    const WritebackGolden &g = kWritebackGolden;
    EXPECT_GT(ts.traffic.bytes(Traffic::Writeback), 0u);
    EXPECT_GT(cs.traffic.bytes(Traffic::Writeback), 0u);
    EXPECT_EQ(ts.l1Misses, g.traceL1Misses);
    EXPECT_EQ(ts.correct, g.traceCorrect);
    EXPECT_EQ(ts.traffic.bytes(Traffic::Writeback), g.traceWbBytes);
    EXPECT_EQ(cs.cycles, g.timingCycles);
    EXPECT_EQ(cs.l2Misses, g.timingL2Misses);
    EXPECT_EQ(cs.traffic.bytes(Traffic::Writeback), g.timingWbBytes);
    EXPECT_EQ(cs.memBusBusy, g.timingMemBusBusy);
}

TEST(AblationPolicyGolden, BaselineMissCountsMatchExactly)
{
    for (const PolicyGolden &g : kPolicyGolden) {
        SCOPED_TRACE(replPolicyName(g.policy));
        HierarchyConfig hc = paperHierarchy();
        hc.l1d.policy = g.policy;
        hc.l2.policy = g.policy;
        FileTrace trace(dataPath("interleave.ltct"));
        TraceEngine engine(hc, nullptr);
        engine.run(trace, trace.size());
        const CoverageStats &s = engine.stats();
        if (printMode()) {
            std::printf("    {ReplPolicy::%s, %llu, %llu},\n",
                        replPolicyName(g.policy),
                        static_cast<unsigned long long>(s.l1Misses),
                        static_cast<unsigned long long>(s.l2Misses));
            continue;
        }
        EXPECT_EQ(s.l1Misses, g.l1Misses);
        EXPECT_EQ(s.l2Misses, g.l2Misses);
    }
}

TEST(GoldenMultiTenant, Fig11ScaleMetricsMatchExactly)
{
    for (const Fig11ScaleGolden &g : kFig11ScaleGolden) {
        SCOPED_TRACE(std::to_string(g.tenants) + " tenants, " +
                     std::to_string(g.partitions) + " partitions");

        MultiProgConfig cfg;
        cfg.quantumRefs.assign(g.tenants, 4000);
        cfg.switches = static_cast<std::uint64_t>(g.tenants) * 4;
        cfg.churnSeed = g.churnSeed;

        std::vector<std::unique_ptr<TraceSource>> apps;
        for (std::uint32_t i = 0; i < g.tenants; i++) {
            PointerChaseParams p;
            p.nodes = 1024 + (i & 3) * 512;
            p.seed = i + 1;
            p.mutateEveryIters = 2;
            p.mutateFraction = 0.05;
            apps.push_back(std::make_unique<PointerChaseSource>(p));
        }

        LtcordsConfig lc = paperLtcords(cfg.hier, false);
        lc.sigCachePartitions = g.partitions;
        LtCords pred(lc);

        const auto stats =
            runMultiProg(cfg, &pred, std::move(apps));
        std::uint64_t opportunity = 0;
        std::uint64_t l1_misses = 0;
        std::uint64_t correct = 0;
        for (const CoverageStats &s : stats) {
            opportunity += s.opportunity;
            l1_misses += s.l1Misses;
            correct += s.correct;
        }
        const std::uint64_t conflicts =
            pred.storage().crossTenantConflicts();

        if (printMode()) {
            std::printf("    {%u, %u, %llu, %llu, %llu, %llu, "
                        "%llu},\n",
                        g.tenants, g.partitions,
                        static_cast<unsigned long long>(g.churnSeed),
                        static_cast<unsigned long long>(opportunity),
                        static_cast<unsigned long long>(l1_misses),
                        static_cast<unsigned long long>(correct),
                        static_cast<unsigned long long>(conflicts));
            continue;
        }
        EXPECT_EQ(opportunity, g.opportunity);
        EXPECT_EQ(l1_misses, g.l1Misses);
        EXPECT_EQ(correct, g.correct);
        EXPECT_EQ(conflicts, g.crossConflicts);
    }
}

TEST(GoldenRunnerSweep, SetTraceDirOverridesEnvironment)
{
    // The programmatic hook behind a bench's --trace-dir flag.
    ASSERT_FALSE(isWorkload("trace:strided_scan"));
    setTraceDir(LTC_TEST_DATA_DIR);
    EXPECT_TRUE(isWorkload("trace:strided_scan"));
    setTraceDir("");
    EXPECT_FALSE(isWorkload("trace:strided_scan"));
}

/**
 * The acceptance path: fixtures discovered via LTC_TRACE_DIR appear
 * as registry workloads, sweep through the ExperimentRunner, and the
 * export is byte-identical at 1 and 8 worker threads - with metrics
 * agreeing exactly with the direct golden runs above.
 */
TEST(GoldenRunnerSweep, FileWorkloadsAreByteIdenticalAcrossJobs)
{
    TraceDirGuard guard(LTC_TEST_DATA_DIR);

    std::vector<std::string> trace_names;
    for (const std::string &name : workloadNames())
        if (name.rfind("trace:", 0) == 0)
            trace_names.push_back(name);
    ASSERT_EQ(trace_names.size(), std::size(kFixtures));
    ASSERT_TRUE(isWorkload("trace:strided_scan"));

    const auto cells = ExperimentRunner::cells(trace_names);
    auto sweep = [&](unsigned jobs) {
        return ExperimentRunner(jobs).run(
            cells, [](const RunCell &cell, RunResult &r) {
                auto src = makeWorkload(cell.workload);
                auto pred =
                    makePredictor("lt-cords", paperHierarchy());
                auto s = runWithOpportunity(
                    paperHierarchy(), pred.get(), *src,
                    suggestedRefs(cell.workload));
                r.set("opportunity",
                      static_cast<double>(s.opportunity));
                r.set("l1_misses", static_cast<double>(s.l1Misses));
                r.set("correct", static_cast<double>(s.correct));
                r.set("coverage", s.coverage());
            });
    };

    const auto serial = sweep(1);
    const auto parallel = sweep(8);
    EXPECT_EQ(resultsToJson(serial), resultsToJson(parallel));

    // The sweep's numbers are the same goldens as the direct runs.
    if (!printMode()) {
        for (std::size_t i = 0; i < serial.size(); i++) {
            SCOPED_TRACE(serial[i].cell.workload);
            const std::string stem =
                serial[i].cell.workload.substr(6) + ".ltct";
            for (const TraceGolden &g : kTraceGolden) {
                if (stem != g.file)
                    continue;
                EXPECT_EQ(serial[i].get("opportunity"),
                          static_cast<double>(g.opportunity));
                EXPECT_EQ(serial[i].get("correct"),
                          static_cast<double>(g.correct));
            }
        }
    }
}

} // namespace
} // namespace ltc
