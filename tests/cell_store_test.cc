/**
 * @file
 * The experiment fabric under test (sim/cell_store.hh): hash
 * stability (equal inputs hash equal across field orderings and
 * process runs, every identity perturbation changes the hash, and a
 * golden table pins absolute values), the on-disk cell store's
 * round-trip exactness and corruption robustness (truncated,
 * bit-flipped, mislabelled, stale-epoch and garbage records are
 * misses, never crashes, never served), crash/kill resume, the
 * claim-file mutual exclusion behind the multi-process backend, and
 * the counter audits.
 *
 *  - `LTC_GOLDEN_PRINT=1 ./ltc_tests --gtest_filter='*Golden*'`
 *    prints the pinned hash table in copy-pasteable form after an
 *    intended cell-identity change (e.g. a code-epoch bump).
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/cell_store.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace ltc
{

/**
 * Friend hook of CellStore: the audit death tests corrupt exactly
 * one counter relation at a time through it.
 */
struct CellStoreTestPeer
{
    /** Break hits + misses == lookups. */
    static void
    desyncLookups(CellStore &s)
    {
        s.stats_.hits++;
    }

    /** Claim more simulations than there were misses. */
    static void
    overcountSims(CellStore &s)
    {
        s.stats_.sims = s.stats_.misses + 1;
    }
};

} // namespace ltc

namespace
{

using namespace ltc;
namespace fs = std::filesystem;

bool
printMode()
{
    return std::getenv("LTC_GOLDEN_PRINT") != nullptr;
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
freshDir(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "cell_store_" +
        tag + "_" + std::to_string(::getpid());
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Pin LTC_REFS for the duration of a hash test. */
class ScopedRefs
{
  public:
    explicit ScopedRefs(const char *value)
    {
        const char *old = std::getenv("LTC_REFS");
        had_ = old != nullptr;
        old_ = had_ ? old : "";
        if (value)
            ::setenv("LTC_REFS", value, 1);
        else
            ::unsetenv("LTC_REFS");
    }

    ~ScopedRefs()
    {
        if (had_)
            ::setenv("LTC_REFS", old_.c_str(), 1);
        else
            ::unsetenv("LTC_REFS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

SweepSpec
spec(const std::string &bench, std::uint64_t segment = 0)
{
    SweepSpec s;
    s.bench = bench;
    s.segment = segment;
    return s;
}

RunCell
cell(const std::string &workload, const std::string &config,
     std::uint64_t seed, std::size_t index = 0)
{
    RunCell c;
    c.index = index;
    c.workload = workload;
    c.config = config;
    c.seed = seed;
    return c;
}

/** A cheap deterministic cell function with awkward doubles. */
void
evalCell(const RunCell &c, RunResult &r)
{
    const double x = static_cast<double>(c.seed % 1009);
    r.set("third", x / 3.0);
    r.set("tenth", x + 0.1);
    r.set("neg", -x * 1e-17);
    r.set("zero", 0.0);
    r.set("big", x * 1.2345678901234567e18);
}

std::vector<RunCell>
makeCells(std::size_t n, std::uint64_t base_seed = 7)
{
    std::vector<RunCell> cells;
    for (std::size_t i = 0; i < n; i++)
        cells.push_back(cell("wl" + std::to_string(i % 5),
                             "cfg" + std::to_string(i % 3), 0, i));
    ExperimentRunner::assignSeeds(cells, base_seed);
    return cells;
}

// ------------------------------------------------------------ keys

TEST(CellKey, OrderIndependent)
{
    CellKey a;
    a.add("workload", std::string("mcf"));
    a.add("seed", std::uint64_t{42});
    a.add("config", std::string("lt-cords"));

    CellKey b;
    b.add("seed", std::uint64_t{42});
    b.add("config", std::string("lt-cords"));
    b.add("workload", std::string("mcf"));

    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(CellKey, CanonicalFormIsSortedLines)
{
    CellKey k;
    k.add("b", std::string("two"));
    k.add("a", std::uint64_t{1});
    EXPECT_EQ(k.canonical(), "a=1\nb=two\n");
}

TEST(CellKey, EscapingKeepsEncodingInjective)
{
    // A value containing separators must not canonicalize like a
    // different field split ("a" = "x\nb=y" vs "a" = "x" + "b" = "y").
    CellKey tricky;
    tricky.add("a", std::string("x\nb=y"));
    CellKey split;
    split.add("a", std::string("x"));
    split.add("b", std::string("y"));
    EXPECT_NE(tricky.canonical(), split.canonical());
    EXPECT_NE(tricky.hash(), split.hash());

    CellKey backslash;
    backslash.add("a", std::string("x\\nb=y"));
    EXPECT_NE(tricky.canonical(), backslash.canonical());
}

// ---------------------------------------------------- cell hashing

TEST(CellHash, StableAcrossCalls)
{
    ScopedRefs refs(nullptr);
    const RunCell c = cell("mcf", "lt-cords", 42);
    EXPECT_EQ(cellHash(spec("fig8"), c, "epoch-1"),
              cellHash(spec("fig8"), c, "epoch-1"));
}

TEST(CellHash, EveryIdentityFieldPerturbsTheHash)
{
    ScopedRefs refs(nullptr);
    const RunCell base = cell("mcf", "lt-cords", 42);
    const std::uint64_t h = cellHash(spec("fig8"), base, "epoch-1");

    EXPECT_NE(h, cellHash(spec("fig8"), cell("swim", "lt-cords", 42),
                          "epoch-1"));
    EXPECT_NE(h, cellHash(spec("fig8"), cell("mcf", "dbcp", 42),
                          "epoch-1"));
    EXPECT_NE(h, cellHash(spec("fig8"), cell("mcf", "lt-cords", 43),
                          "epoch-1"));
    EXPECT_NE(h, cellHash(spec("fig9"), base, "epoch-1"));
    EXPECT_NE(h, cellHash(spec("fig8", 1), base, "epoch-1"));
    EXPECT_NE(h, cellHash(spec("fig8"), base, "epoch-2"));

    // The cell index is deliberately NOT identity: it already
    // determines the seed, and resume must tolerate reordered cells.
    RunCell moved = base;
    moved.index = 99;
    EXPECT_EQ(h, cellHash(spec("fig8"), moved, "epoch-1"));
}

TEST(CellHash, RefsBudgetIsIdentity)
{
    ScopedRefs refs("150k");
    const RunCell c = cell("mcf", "lt-cords", 42);
    const std::uint64_t h150 = cellHash(spec("fig8"), c, "epoch-1");
    {
        ScopedRefs other("200k");
        EXPECT_NE(h150, cellHash(spec("fig8"), c, "epoch-1"));
    }
    EXPECT_EQ(h150, cellHash(spec("fig8"), c, "epoch-1"));
}

// Golden hashes: absolute values pinned so an accidental change to
// the canonicalization, the FNV constants or the key fields cannot
// slip through as "still self-consistent". Regenerate with
// LTC_GOLDEN_PRINT=1 after an intended identity change.
struct HashGolden
{
    const char *bench;
    std::uint64_t segment;
    const char *workload;
    const char *config;
    std::uint64_t seed;
    const char *epoch;
    const char *hex;
};

const HashGolden kCellHashGolden[] = {
    {"fig8_coverage", 0, "mcf", "lt-cords", 42, "epoch-1",
     "46022733863a4867"},
    {"fig8_coverage", 1, "mcf", "lt-cords", 42, "epoch-1",
     "c5ab24009ab87510"},
    {"table3_speedup", 0, "swim", "dbcp-2mb", 7, "epoch-1",
     "6cf8b31a734fdf04"},
    {"table3_speedup", 0, "swim", "dbcp-2mb", 7, "ltc-fabric-1",
     "3f95353d006da8b4"},
    {"ablation_design", 0, "treeadd", "", 1, "ltc-fabric-1",
     "97f8b01551e50e15"},
};

TEST(CellHash, GoldenValues)
{
    ScopedRefs refs(nullptr);
    for (const HashGolden &g : kCellHashGolden) {
        const std::uint64_t h = cellHash(
            spec(g.bench, g.segment), cell(g.workload, g.config,
                                           g.seed), g.epoch);
        if (printMode()) {
            std::printf("    {\"%s\", %llu, \"%s\", \"%s\", %llu, "
                        "\"%s\",\n     \"%s\"},\n",
                        g.bench,
                        static_cast<unsigned long long>(g.segment),
                        g.workload, g.config,
                        static_cast<unsigned long long>(g.seed),
                        g.epoch, cellHashHex(h).c_str());
            continue;
        }
        EXPECT_EQ(cellHashHex(h), g.hex)
            << g.bench << "/" << g.workload << "/" << g.config;
    }
}

TEST(CellHash, HexFormIsPadded)
{
    EXPECT_EQ(cellHashHex(0xabcULL), "0000000000000abc");
    EXPECT_EQ(cellHashHex(0), "0000000000000000");
}

// ---------------------------------------------------- record store

TEST(CellStoreRecords, RoundTripIsExact)
{
    const std::string dir = freshDir("roundtrip");
    CellStore store(dir, "epoch-1");

    RunResult r;
    r.cell = cell("mcf", "lt-cords", 42, 3);
    evalCell(r.cell, r);
    store.store(1234, r);

    RunResult back;
    ASSERT_TRUE(store.lookup(1234, back));
    EXPECT_EQ(resultsToJson({back}), resultsToJson({r}));

    const CellStoreStats s = store.stats();
    EXPECT_EQ(s.lookups, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.stores, 1u);
}

TEST(CellStoreRecords, MissingRecordIsACleanMiss)
{
    const std::string dir = freshDir("missing");
    CellStore store(dir, "epoch-1");
    RunResult out;
    EXPECT_FALSE(store.lookup(555, out));
    const CellStoreStats s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.corrupt, 0u);
    EXPECT_EQ(s.stale, 0u);
}

TEST(CellStoreRecords, TruncationAtEveryLengthIsAMiss)
{
    const std::string dir = freshDir("truncate");
    CellStore store(dir, "epoch-1");
    RunResult r;
    r.cell = cell("mcf", "lt-cords", 42);
    evalCell(r.cell, r);
    store.store(77, r);

    std::ifstream in(store.recordPath(77), std::ios::binary);
    std::string full((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(full.size(), 16u);

    // Losing only the final newline is tolerated by design (the
    // tail may be "}" or "}\n"); every shorter prefix must read as
    // Corrupt - the trailing checksum cannot survive real tail loss.
    {
        std::ofstream out(store.recordPath(77),
                          std::ios::binary | std::ios::trunc);
        out << full.substr(0, full.size() - 1);
    }
    RunResult still;
    EXPECT_TRUE(store.lookup(77, still));

    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{1}, full.size() / 4,
          full.size() / 2, full.size() - 3, full.size() - 2}) {
        std::ofstream out(store.recordPath(77),
                          std::ios::binary | std::ios::trunc);
        out << full.substr(0, keep);
        out.close();
        RunResult back;
        EXPECT_FALSE(store.lookup(77, back)) << "kept " << keep;
    }
    const CellStoreStats s = store.stats();
    EXPECT_EQ(s.corrupt, 6u);
    EXPECT_EQ(s.misses, 6u);
}

TEST(CellStoreRecords, BitFlipIsAMiss)
{
    const std::string dir = freshDir("bitflip");
    CellStore store(dir, "epoch-1");
    RunResult r;
    r.cell = cell("mcf", "lt-cords", 42);
    evalCell(r.cell, r);
    store.store(88, r);

    std::ifstream in(store.recordPath(88), std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    // Flip one payload bit in the middle of the metrics.
    text[text.size() / 2] ^= 0x08;
    std::ofstream out(store.recordPath(88),
                      std::ios::binary | std::ios::trunc);
    out << text;
    out.close();

    RunResult back;
    EXPECT_FALSE(store.lookup(88, back));
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(CellStoreRecords, GarbageAndEmptyFilesAreMisses)
{
    const std::string dir = freshDir("garbage");
    CellStore store(dir, "epoch-1");
    {
        std::ofstream out(store.recordPath(1));
        out << "this is not a cell record at all {]";
    }
    { std::ofstream out(store.recordPath(2)); }
    {
        // Well-formed JSON, no checksum: still a miss.
        std::ofstream out(store.recordPath(3));
        out << "{\"records\": []}\n";
    }
    RunResult back;
    EXPECT_FALSE(store.lookup(1, back));
    EXPECT_FALSE(store.lookup(2, back));
    EXPECT_FALSE(store.lookup(3, back));
    EXPECT_EQ(store.stats().corrupt, 3u);
}

TEST(CellStoreRecords, StaleEpochIsAMissNotCorruption)
{
    const std::string dir = freshDir("stale");
    RunResult r;
    r.cell = cell("mcf", "lt-cords", 42);
    evalCell(r.cell, r);
    {
        CellStore old(dir, "epoch-old");
        old.store(99, r);
    }
    CellStore now(dir, "epoch-new");
    RunResult back;
    EXPECT_FALSE(now.lookup(99, back));
    const CellStoreStats s = now.stats();
    EXPECT_EQ(s.stale, 1u);
    EXPECT_EQ(s.corrupt, 0u);

    std::string epoch;
    EXPECT_EQ(probeCellRecord(now.recordPath(99), "epoch-new", 99,
                              nullptr, &epoch),
              CellRecordStatus::StaleEpoch);
    EXPECT_EQ(epoch, "epoch-old");
}

TEST(CellStoreRecords, RecordRenamedToWrongHashIsCorrupt)
{
    const std::string dir = freshDir("renamed");
    CellStore store(dir, "epoch-1");
    RunResult r;
    r.cell = cell("mcf", "lt-cords", 42);
    evalCell(r.cell, r);
    store.store(100, r);
    fs::copy_file(store.recordPath(100), store.recordPath(200));

    RunResult back;
    EXPECT_TRUE(store.lookup(100, back));
    EXPECT_FALSE(store.lookup(200, back));
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(CellStoreRecords, ProbeReportsOkWithPayload)
{
    const std::string dir = freshDir("probe");
    CellStore store(dir, "epoch-1");
    RunResult r;
    r.cell = cell("mcf", "lt-cords", 42, 5);
    evalCell(r.cell, r);
    store.store(42, r);

    RunResult out;
    std::string epoch;
    EXPECT_EQ(probeCellRecord(store.recordPath(42), "epoch-1", 42,
                              &out, &epoch),
              CellRecordStatus::Ok);
    EXPECT_EQ(epoch, "epoch-1");
    EXPECT_EQ(resultsToJson({out}), resultsToJson({r}));
    EXPECT_EQ(probeCellRecord(dir + "/nonexistent.json", "epoch-1",
                              42),
              CellRecordStatus::Corrupt);
}

// --------------------------------------------------------- claims

TEST(CellStoreClaims, ClaimIsExclusiveUntilCleared)
{
    const std::string dir = freshDir("claims");
    CellStore store(dir, "epoch-1");
    EXPECT_EQ(store.claimOwner(7), 0);
    EXPECT_TRUE(store.claim(7));
    EXPECT_FALSE(store.claim(7));
    EXPECT_EQ(store.claimOwner(7), static_cast<long>(::getpid()));
    EXPECT_EQ(store.stats().claims, 1u);

    store.clearStale();
    EXPECT_EQ(store.claimOwner(7), 0);
    EXPECT_TRUE(store.claim(7));
}

TEST(CellStoreClaims, ClearStaleKeepsRecords)
{
    const std::string dir = freshDir("clearstale");
    CellStore store(dir, "epoch-1");
    RunResult r;
    r.cell = cell("mcf", "lt-cords", 42);
    evalCell(r.cell, r);
    store.store(1, r);
    EXPECT_TRUE(store.claim(2));
    {
        std::ofstream out(dir + "/deadbeef.json.tmp.12345");
        out << "partial";
    }

    store.clearStale();
    RunResult back;
    EXPECT_TRUE(store.lookup(1, back));
    EXPECT_EQ(store.claimOwner(2), 0);
    EXPECT_FALSE(fs::exists(dir + "/deadbeef.json.tmp.12345"));
}

// ---------------------------------------------------- cached sweeps

TEST(CachedSweep, WarmCachePerformsZeroSimulations)
{
    const std::string dir = freshDir("warm");
    const auto cells = makeCells(12);
    const ExperimentRunner runner(3);

    const auto reference = runner.run(cells, evalCell);

    std::string coldJson;
    {
        CellStore store(dir, "epoch-1");
        const auto cold = runCellsCached(runner, store,
                                         spec("bench"), cells,
                                         evalCell);
        coldJson = resultsToJson(cold);
        const CellStoreStats s = store.stats();
        EXPECT_EQ(s.sims, cells.size());
        EXPECT_EQ(s.stores, cells.size());
        EXPECT_EQ(s.hits, 0u);
    }
    EXPECT_EQ(coldJson, resultsToJson(reference));

    // Fresh store over the same directory: every cell is a hit and
    // the serialized output is byte-identical.
    CellStore store(dir, "epoch-1");
    const auto warm = runCellsCached(runner, store, spec("bench"),
                                     cells, evalCell);
    const CellStoreStats s = store.stats();
    EXPECT_EQ(s.sims, 0u);
    EXPECT_EQ(s.hits, cells.size());
    EXPECT_EQ(resultsToJson(warm), coldJson);
}

TEST(CachedSweep, CorruptedRecordIsRecomputedNotServed)
{
    const std::string dir = freshDir("recompute");
    const auto cells = makeCells(6);
    const ExperimentRunner runner(2);

    std::string coldJson;
    {
        CellStore store(dir, "epoch-1");
        coldJson = resultsToJson(runCellsCached(
            runner, store, spec("bench"), cells, evalCell));
    }

    // Corrupt exactly one record in place.
    CellStore store(dir, "epoch-1");
    const std::uint64_t h =
        cellHash(spec("bench"), cells[2], "epoch-1");
    {
        std::ofstream out(store.recordPath(h),
                          std::ios::binary | std::ios::trunc);
        out << "{\"schema\": 1, \"epoch\": \"epoch-1\"";
    }
    const auto again = runCellsCached(runner, store, spec("bench"),
                                      cells, evalCell);
    const CellStoreStats s = store.stats();
    EXPECT_EQ(s.sims, 1u);
    EXPECT_EQ(s.corrupt, 1u);
    EXPECT_EQ(s.hits, cells.size() - 1);
    EXPECT_EQ(resultsToJson(again), coldJson);

    // The recompute healed the store: all hits next time.
    CellStore healed(dir, "epoch-1");
    runCellsCached(runner, healed, spec("bench"), cells, evalCell);
    EXPECT_EQ(healed.stats().hits, cells.size());
}

TEST(CachedSweep, SegmentsDoNotCollide)
{
    const std::string dir = freshDir("segments");
    const auto cells = makeCells(4);
    const ExperimentRunner runner(1);

    auto evalTimesTwo = [](const RunCell &c, RunResult &r) {
        evalCell(c, r);
        r.set("third", r.get("third") * 2);
    };

    CellStore store(dir, "epoch-1");
    const auto seg0 = runCellsCached(runner, store, spec("bench", 0),
                                     cells, evalCell);
    const auto seg1 = runCellsCached(runner, store, spec("bench", 1),
                                     cells, evalTimesTwo);
    // Same (workload, config, seed) labels, different segment: the
    // second sweep must not be served the first sweep's records.
    EXPECT_EQ(store.stats().sims, 2 * cells.size());
    EXPECT_NE(resultsToJson(seg0), resultsToJson(seg1));
}

// ------------------------------------------------- claim-loop sweep

TEST(ClaimSweep, SingleParticipantMatchesRunner)
{
    const std::string dir = freshDir("claim1");
    const auto cells = makeCells(9);
    const ExperimentRunner serial(1);
    const auto reference = serial.run(cells, evalCell);

    CellStore store(dir, "epoch-1");
    const auto claimed = runCellsClaiming(store, spec("bench"),
                                          cells, evalCell, 5);
    EXPECT_EQ(resultsToJson(claimed), resultsToJson(reference));
    EXPECT_EQ(store.stats().sims, cells.size());
}

TEST(ClaimSweep, ThreeProcessesProduceIdenticalResults)
{
    const std::string dir = freshDir("claim3");
    const auto cells = makeCells(15);
    const ExperimentRunner serial(1);
    const std::string reference =
        resultsToJson(serial.run(cells, evalCell));

    // Two forked children plus this process participate in one
    // claim loop over a shared store, like the spawned workers of
    // runCellsMultiProcess but without the execve (the test binary
    // must not re-run gtest's main).
    std::vector<pid_t> kids;
    for (int k = 1; k <= 2; k++) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            CellStore store(dir, "epoch-1");
            const auto mine = runCellsClaiming(
                store, spec("bench"), cells, evalCell,
                static_cast<std::size_t>(k) * 5);
            ::_exit(resultsToJson(mine) == reference ? 0 : 1);
        }
        kids.push_back(pid);
    }

    CellStore store(dir, "epoch-1");
    const auto mine =
        runCellsClaiming(store, spec("bench"), cells, evalCell, 0);
    EXPECT_EQ(resultsToJson(mine), reference);

    for (const pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // Every cell was computed exactly once across the three
    // participants (no lost cells, no duplicated computes in the
    // uncontended case is NOT guaranteed - but the store must hold
    // one valid record per cell).
    CellStore verify(dir, "epoch-1");
    for (const auto &c : cells) {
        RunResult out;
        EXPECT_TRUE(
            verify.lookup(cellHash(spec("bench"), c, "epoch-1"),
                          out));
    }
}

TEST(ClaimSweep, DeadClaimantIsRecomputed)
{
    const std::string dir = freshDir("deadclaim");
    const auto cells = makeCells(3);
    CellStore store(dir, "epoch-1");

    // Forge a claim owned by a dead process: fork a child that
    // exits immediately after claiming.
    const std::uint64_t h =
        cellHash(spec("bench"), cells[1], "epoch-1");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        CellStore mine(dir, "epoch-1");
        mine.claim(h);
        ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_NE(store.claimOwner(h), 0);

    // The claim loop must not wait forever on the dead owner.
    const ExperimentRunner serial(1);
    const auto results =
        runCellsClaiming(store, spec("bench"), cells, evalCell, 0);
    EXPECT_EQ(resultsToJson(results),
              resultsToJson(serial.run(cells, evalCell)));
}

// ----------------------------------------------------- kill/resume

TEST(KillResume, KilledSweepResumesWithoutRecomputingFinishedCells)
{
    const std::string dir = freshDir("killresume");
    const auto cells = makeCells(20);
    const ExperimentRunner serial(1);
    const std::string reference =
        resultsToJson(serial.run(cells, evalCell));

    // The victim: a serial cached sweep that dawdles per cell so the
    // parent can SIGKILL it mid-flight.
    auto slowEval = [](const RunCell &c, RunResult &r) {
        ::usleep(30 * 1000);
        evalCell(c, r);
    };
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        CellStore store(dir, "epoch-1");
        runCellsCached(serial, store, spec("bench"), cells,
                       slowEval);
        ::_exit(0);
    }

    // Hard-kill once a few records exist (a completed record is an
    // atomic rename, so "a few .json files" means finished cells).
    std::size_t published = 0;
    for (int tries = 0; tries < 4000; tries++) {
        published = 0;
        for (const auto &e : fs::directory_iterator(dir))
            published += e.path().extension() == ".json";
        if (published >= 3)
            break;
        ::usleep(5 * 1000);
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_GE(published, 3u);
    ASSERT_LT(published, cells.size()); // it really died mid-sweep

    // Resume: finished cells are hits, the remainder simulates, and
    // the final output is byte-identical to the uninterrupted run.
    CellStore store(dir, "epoch-1");
    store.clearStale();
    const auto resumed = runCellsCached(serial, store, spec("bench"),
                                        cells, evalCell);
    const CellStoreStats s = store.stats();
    EXPECT_GE(s.hits, published);
    EXPECT_EQ(s.hits + s.sims, cells.size());
    EXPECT_LT(s.sims, cells.size());
    EXPECT_EQ(resultsToJson(resumed), reference);
}

// ----------------------------------------------------------- audits

TEST(CellStoreAudit, CleanStorePassesAfterMixedTraffic)
{
    const std::string dir = freshDir("audit");
    const auto cells = makeCells(8);
    const ExperimentRunner runner(2);
    CellStore store(dir, "epoch-1");
    runCellsCached(runner, store, spec("bench"), cells, evalCell);
    runCellsCached(runner, store, spec("bench"), cells, evalCell);
    RunResult out;
    store.lookup(12345, out); // one plain miss on top
    store.auditInvariants();  // must not panic
}

TEST(CellStoreAuditDeath, DesyncedCountersArePanics)
{
    const std::string dir = freshDir("auditdeath");
    CellStore store(dir, "epoch-1");
    RunResult out;
    store.lookup(1, out);
    CellStoreTestPeer::desyncLookups(store);
    EXPECT_DEATH(store.auditInvariants(), "invariant");
}

TEST(CellStoreAuditDeath, SimWithoutMissIsAPanic)
{
    const std::string dir = freshDir("auditdeath2");
    CellStore store(dir, "epoch-1");
    CellStoreTestPeer::overcountSims(store);
    EXPECT_DEATH(store.auditInvariants(), "invariant");
}

// ----------------------------------------- worker env + trace dirs

TEST(WorkerEnvironment, CarriesStoreWorkerAndTraceDir)
{
    setTraceDir("");
    ::unsetenv("LTC_TRACE_DIR");

    auto env = workerEnvironment("/tmp/cache", 2);
    auto find = [&](const std::string &name) -> std::string {
        for (const auto &[k, v] : env)
            if (k == name)
                return v;
        return "<absent>";
    };
    EXPECT_EQ(find("LTC_SWEEP_WORKER"), "2");
    EXPECT_EQ(find("LTC_CELL_CACHE"), "/tmp/cache");
    EXPECT_EQ(find("LTC_TRACE_DIR"), "<absent>");

    // With a --trace-dir registration active, the worker must be
    // handed the directory explicitly: setTraceDir() state does not
    // survive re-execution (the ResultSink trace-dir fix).
    const std::string traces = freshDir("workerenv");
    setTraceDir(traces);
    env = workerEnvironment("/tmp/cache", 2);
    std::string forwarded = "<absent>";
    for (const auto &[k, v] : env)
        if (k == "LTC_TRACE_DIR")
            forwarded = v;
    EXPECT_EQ(forwarded, traces);
    setTraceDir("");
}

TEST(WorkloadDigest, SyntheticWorkloadsDigestToZero)
{
    EXPECT_EQ(workloadDigest("mcf"), 0u);
    EXPECT_EQ(workloadDigest("swim"), 0u);
}

TEST(WorkloadDigest, DistinguishesTraceContainers)
{
    // Unique directory per run: the registry caches per-dir scans.
    const std::string dir = freshDir("digest");
    {
        auto src = makeWorkload("mcf", 1);
        ASSERT_EQ(captureToFile(*src, dir + "/alpha.ltct", 5000),
                  TraceErrc::Ok);
    }
    {
        auto src = makeWorkload("treeadd", 1);
        ASSERT_EQ(captureToFile(*src, dir + "/beta.ltct", 5000),
                  TraceErrc::Ok);
    }
    setTraceDir(dir);
    const std::uint64_t a = workloadDigest("trace:alpha");
    const std::uint64_t b = workloadDigest("trace:beta");
    setTraceDir("");
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

// -------------------------------------------- ResultSink end to end

TEST(ResultSinkFabric, CellCacheFlagDrivesTheSweep)
{
    const std::string dir = freshDir("sinkrun");
    const auto cells = makeCells(6);
    const ExperimentRunner runner(2);

    const std::string flag = "--cell-cache=" + dir;
    std::vector<char *> argv;
    char arg0[] = "bench";
    std::string flagCopy = flag;
    argv.push_back(arg0);
    argv.push_back(flagCopy.data());

    std::string coldJson;
    {
        ResultSink sink("fabric_test",
                        static_cast<int>(argv.size()), argv.data());
        const auto cold = sink.run(runner, cells, evalCell);
        coldJson = resultsToJson(cold);
        EXPECT_EQ(sink.cellStats().sims, cells.size());
    }
    {
        ResultSink sink("fabric_test",
                        static_cast<int>(argv.size()), argv.data());
        const auto warm = sink.run(runner, cells, evalCell);
        EXPECT_EQ(sink.cellStats().sims, 0u);
        EXPECT_EQ(sink.cellStats().hits, cells.size());
        EXPECT_EQ(resultsToJson(warm), coldJson);
    }
    {
        // cacheable = false must bypass the store entirely.
        ResultSink sink("fabric_test",
                        static_cast<int>(argv.size()), argv.data());
        const auto direct = sink.run(runner, cells, evalCell, false);
        EXPECT_EQ(sink.cellStats().lookups, 0u);
        EXPECT_EQ(resultsToJson(direct), coldJson);
    }
}

TEST(ResultSinkFabric, UncachedSinkReportsZeroStats)
{
    ResultSink sink("fabric_stats_test");
    const CellStoreStats s = sink.cellStats();
    EXPECT_EQ(s.lookups, 0u);
    EXPECT_EQ(s.sims, 0u);
}

} // namespace
