/**
 * @file
 * Tests for the .ltct v2 streaming trace container (trace/trace_io.hh):
 * bit-exact round trips across chunk-boundary sizes, v1 -> v2
 * conversion, typed errors on malformed input, the ChampSim importer,
 * and the O(chunk) replay-memory bound.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/file_trace.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "util/hash.hh"
#include "util/random.hh"

namespace ltc
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

/**
 * Adversarial reference stream: full-width random PCs/addresses (the
 * worst case for delta encoding), gaps spanning the inline and
 * escaped control-byte ranges, and random flags.
 */
std::vector<MemRef>
randomRefs(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        MemRef r;
        r.pc = rng.next();
        r.addr = rng.next();
        r.op = rng.chance(0.3) ? MemOp::Store : MemOp::Load;
        switch (rng.below(4)) {
          case 0:
            r.nonMemGap = 0;
            break;
          case 1:
            r.nonMemGap = static_cast<std::uint32_t>(rng.below(62));
            break;
          case 2: // the control-byte escape boundary
            r.nonMemGap =
                62 + static_cast<std::uint32_t>(rng.below(4));
            break;
          default:
            r.nonMemGap = static_cast<std::uint32_t>(rng.next());
            break;
        }
        r.dependsOnPrev = rng.chance(0.5);
        refs.push_back(r);
    }
    return refs;
}

std::vector<MemRef>
readAll(const std::string &path, TraceErrc &err)
{
    return readTraceFile(path, &err);
}

std::vector<unsigned char>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<unsigned char> bytes;
    unsigned char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(f);
    return bytes;
}

void
spit(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

// v2 layout constants mirrored from docs/TRACE_FORMAT.md.
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kCountOffset = 16;
constexpr std::size_t kChunkHeaderBytes = 16;

// ------------------------------------------------- property: round trip

TEST(TraceIoPropertyTest, RoundTripsBitExactAcrossChunkBoundaries)
{
    constexpr std::uint32_t chunk = 64;
    const std::size_t sizes[] = {0,         1,         chunk - 1,
                                 chunk,     chunk + 1, 3 * chunk + 7};
    for (std::size_t n : sizes) {
        const std::string path =
            tmpPath("rt_" + std::to_string(n) + ".ltct");
        const auto refs = randomRefs(n, 0x1000 + n);

        StreamingTraceWriter writer(path, chunk);
        for (const MemRef &r : refs)
            writer.append(r);
        ASSERT_EQ(writer.finish(), TraceErrc::Ok) << "n=" << n;

        StreamingTraceReader reader(path);
        ASSERT_TRUE(reader.ok()) << traceErrcName(reader.error());
        EXPECT_EQ(reader.version(), 2u);
        EXPECT_EQ(reader.records(), n);
        std::vector<MemRef> back;
        MemRef out;
        while (reader.next(out))
            back.push_back(out);
        ASSERT_TRUE(reader.ok()) << traceErrcName(reader.error());
        ASSERT_EQ(back.size(), refs.size()) << "n=" << n;
        for (std::size_t i = 0; i < refs.size(); i++)
            ASSERT_TRUE(back[i] == refs[i])
                << "n=" << n << " record " << i;
        EXPECT_LE(reader.maxBufferedRecords(), chunk);

        // reset() replays the identical stream.
        reader.reset();
        std::size_t replayed = 0;
        while (reader.next(out)) {
            ASSERT_TRUE(out == refs[replayed]) << "replay " << replayed;
            replayed++;
        }
        EXPECT_EQ(replayed, n);
        std::remove(path.c_str());
    }
}

TEST(TraceIoPropertyTest, V1ToV2ConvertPreservesSequence)
{
    const std::string v1 = tmpPath("conv_v1.bin");
    const std::string v2 = tmpPath("conv_v2.ltct");
    const auto refs = randomRefs(777, 99);
    writeTraceFileV1(v1, refs);

    ASSERT_EQ(convertTraceFile(v1, v2, /*limit=*/0,
                               /*chunk_records=*/128),
              TraceErrc::Ok);
    TraceErrc err = TraceErrc::Ok;
    const auto back = readAll(v2, err);
    ASSERT_EQ(err, TraceErrc::Ok);
    ASSERT_EQ(back.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); i++)
        ASSERT_TRUE(back[i] == refs[i]) << "record " << i;
}

TEST(TraceIoPropertyTest, ConvertHonoursLimit)
{
    const std::string v1 = tmpPath("convlim_v1.bin");
    const std::string v2 = tmpPath("convlim_v2.ltct");
    const auto refs = randomRefs(100, 5);
    writeTraceFileV1(v1, refs);
    ASSERT_EQ(convertTraceFile(v1, v2, /*limit=*/37), TraceErrc::Ok);
    TraceErrc err = TraceErrc::Ok;
    const auto back = readAll(v2, err);
    ASSERT_EQ(err, TraceErrc::Ok);
    ASSERT_EQ(back.size(), 37u);
    for (std::size_t i = 0; i < back.size(); i++)
        ASSERT_TRUE(back[i] == refs[i]) << "record " << i;
}

TEST(TraceIoTest, ReaderAcceptsLegacyV1)
{
    const std::string path = tmpPath("legacy_v1.bin");
    const auto refs = randomRefs(5000, 3);
    writeTraceFileV1(path, refs);
    StreamingTraceReader reader(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.version(), 1u);
    EXPECT_EQ(reader.records(), refs.size());
    std::vector<MemRef> back;
    MemRef out;
    while (reader.next(out))
        back.push_back(out);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(back.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); i++)
        ASSERT_TRUE(back[i] == refs[i]) << "record " << i;
    // v1 replay is streamed in fixed blocks, not loaded eagerly.
    EXPECT_LE(reader.maxBufferedRecords(), 4096u);
}

// ------------------------------------------------------ capture helper

TEST(TraceIoTest, CaptureToFileSnapshotsSource)
{
    const std::string path = tmpPath("capture.ltct");
    const auto refs = randomRefs(500, 11);
    VectorTrace src(refs);

    std::uint64_t written = 0;
    ASSERT_EQ(captureToFile(src, path, 200, &written, 64),
              TraceErrc::Ok);
    EXPECT_EQ(written, 200u);

    // Capturing more than the source holds stops at its end.
    ASSERT_EQ(captureToFile(src, path, 10'000, &written, 64),
              TraceErrc::Ok);
    EXPECT_EQ(written, refs.size());

    TraceErrc err = TraceErrc::Ok;
    const auto back = readAll(path, err);
    ASSERT_EQ(err, TraceErrc::Ok);
    ASSERT_EQ(back.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); i++)
        ASSERT_TRUE(back[i] == refs[i]) << "record " << i;
    std::remove(path.c_str());
}

// ------------------------------------------------------- typed errors

TEST(TraceIoErrorTest, MissingFile)
{
    TraceErrc err = TraceErrc::Ok;
    const auto refs = readAll("/nonexistent/ltc.ltct", err);
    EXPECT_EQ(err, TraceErrc::OpenFailed);
    EXPECT_TRUE(refs.empty());
}

TEST(TraceIoErrorTest, TruncatedHeader)
{
    const std::string path = tmpPath("trunc_header.ltct");
    writeTraceFile(path, randomRefs(10, 1));
    auto bytes = slurp(path);
    bytes.resize(10);
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::TruncatedHeader);
}

TEST(TraceIoErrorTest, BadMagic)
{
    const std::string path = tmpPath("bad_magic.ltct");
    writeTraceFile(path, randomRefs(10, 1));
    auto bytes = slurp(path);
    bytes[0] = 'X';
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::BadMagic);
}

TEST(TraceIoErrorTest, FutureVersion)
{
    const std::string path = tmpPath("future_version.ltct");
    writeTraceFile(path, randomRefs(10, 1));
    auto bytes = slurp(path);
    bytes[kVersionOffset] = 3; // little-endian low byte
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::UnsupportedVersion);
}

TEST(TraceIoErrorTest, CorruptChunkChecksum)
{
    const std::string path = tmpPath("bad_checksum.ltct");
    writeTraceFile(path, randomRefs(100, 2));
    auto bytes = slurp(path);
    const std::size_t payload = kHeaderBytes + kChunkHeaderBytes;
    ASSERT_GT(bytes.size(), payload);
    bytes[payload] ^= 0xff; // flip bits in the first payload byte
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::ChecksumMismatch);
}

TEST(TraceIoErrorTest, TruncatedChunkPayload)
{
    const std::string path = tmpPath("trunc_chunk.ltct");
    writeTraceFile(path, randomRefs(100, 2));
    auto bytes = slurp(path);
    bytes.resize(bytes.size() - 7); // cut mid-payload
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::TruncatedChunk);
}

TEST(TraceIoErrorTest, MalformedRecordEncoding)
{
    const std::string path = tmpPath("malformed.ltct");
    writeTraceFile(path, randomRefs(20, 2));
    auto bytes = slurp(path);
    // Overwrite the payload with non-terminating varint bytes and
    // re-seal the chunk checksum, so decode itself must fail.
    const std::size_t payload_at = kHeaderBytes + kChunkHeaderBytes;
    ASSERT_GT(bytes.size(), payload_at);
    for (std::size_t i = payload_at; i < bytes.size(); i++)
        bytes[i] = 0xff;
    const std::uint32_t checksum = fnv1a32(
        bytes.data() + payload_at, bytes.size() - payload_at);
    for (int i = 0; i < 4; i++)
        bytes[kHeaderBytes + 8 + i] =
            static_cast<unsigned char>(checksum >> (8 * i));
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::MalformedRecord);
}

TEST(TraceIoErrorTest, AbsurdHeaderRecordCount)
{
    const std::string path = tmpPath("absurd_count.ltct");
    writeTraceFile(path, randomRefs(10, 1));
    auto bytes = slurp(path);
    // Claim ~2^56 records in a few-hundred-byte file: must be
    // rejected up front (no multi-petabyte reserve, no long loop).
    bytes[kCountOffset + 7] = 0x01;
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::BadHeader);
    TraceFileInfo info;
    EXPECT_EQ(probeTraceHeader(path, info), TraceErrc::BadHeader);
}

TEST(TraceIoTest, ProbeHeaderIsCheapAndConsistentWithFullProbe)
{
    const std::string path = tmpPath("probe_header.ltct");
    writeTraceFile(path, randomRefs(1000, 8));
    TraceFileInfo head, full;
    ASSERT_EQ(probeTraceHeader(path, head), TraceErrc::Ok);
    ASSERT_EQ(probeTraceFile(path, full), TraceErrc::Ok);
    EXPECT_EQ(head.version, full.version);
    EXPECT_EQ(head.records, full.records);
    EXPECT_EQ(head.chunkRecords, full.chunkRecords);
    EXPECT_EQ(head.fileBytes, full.fileBytes);
    EXPECT_EQ(head.chunks, 0u); // header probe walks no chunks
    std::remove(path.c_str());
}

TEST(TraceIoErrorTest, ChunkCountExceedsHeaderTotal)
{
    const std::string path = tmpPath("count_mismatch.ltct");
    writeTraceFile(path, randomRefs(100, 2));
    auto bytes = slurp(path);
    // Header now promises fewer records than the chunk delivers.
    bytes[kCountOffset] = 10;
    for (int i = 1; i < 8; i++)
        bytes[kCountOffset + i] = 0;
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::CountMismatch);
}

TEST(TraceIoErrorTest, TruncatedV1Body)
{
    const std::string path = tmpPath("trunc_v1.bin");
    writeTraceFileV1(path, randomRefs(50, 4));
    auto bytes = slurp(path);
    bytes.resize(bytes.size() - 11);
    spit(path, bytes);
    TraceErrc err = TraceErrc::Ok;
    readAll(path, err);
    EXPECT_EQ(err, TraceErrc::TruncatedChunk);
}

TEST(TraceIoErrorTest, UnwritableOutputPath)
{
    StreamingTraceWriter writer("/nonexistent/dir/out.ltct");
    EXPECT_FALSE(writer.ok());
    writer.append(MemRef{}); // must not crash
    EXPECT_EQ(writer.finish(), TraceErrc::OpenFailed);
}

TEST(TraceIoErrorTest, ProbeReportsErrorsToo)
{
    const std::string path = tmpPath("probe_bad.ltct");
    writeTraceFile(path, randomRefs(100, 6));
    auto bytes = slurp(path);
    bytes[kHeaderBytes + kChunkHeaderBytes] ^= 0x55;
    spit(path, bytes);
    TraceFileInfo info;
    EXPECT_EQ(probeTraceFile(path, info),
              TraceErrc::ChecksumMismatch);
}

// --------------------------------------------------- ChampSim import

/** Append one little-endian 64-byte ChampSim input_instr record. */
void
champsimInstr(std::vector<unsigned char> &out, std::uint64_t ip,
              std::vector<std::uint64_t> loads,
              std::vector<std::uint64_t> stores)
{
    ASSERT_LE(loads.size(), 4u);
    ASSERT_LE(stores.size(), 2u);
    unsigned char rec[64] = {};
    for (int i = 0; i < 8; i++)
        rec[i] = static_cast<unsigned char>(ip >> (8 * i));
    loads.resize(4, 0);
    stores.resize(2, 0);
    for (std::size_t s = 0; s < 2; s++)
        for (int i = 0; i < 8; i++)
            rec[16 + 8 * s + i] =
                static_cast<unsigned char>(stores[s] >> (8 * i));
    for (std::size_t s = 0; s < 4; s++)
        for (int i = 0; i < 8; i++)
            rec[32 + 8 * s + i] =
                static_cast<unsigned char>(loads[s] >> (8 * i));
    out.insert(out.end(), rec, rec + sizeof(rec));
}

TEST(ChampSimImportTest, ImportsLoadsStoresAndGaps)
{
    const std::string in = tmpPath("champ.bin");
    const std::string out = tmpPath("champ.ltct");
    std::vector<unsigned char> bytes;
    champsimInstr(bytes, 0x400000, {}, {});       // gap
    champsimInstr(bytes, 0x400004, {}, {});       // gap
    champsimInstr(bytes, 0x400008, {0x1000}, {}); // load, gap=2
    champsimInstr(bytes, 0x40000c, {0x2000, 0x2040}, {0x3000});
    champsimInstr(bytes, 0x400010, {}, {});       // gap
    champsimInstr(bytes, 0x400014, {}, {0x4000}); // store, gap=1
    spit(in, bytes);

    std::uint64_t written = 0;
    ASSERT_EQ(importChampSimFile(in, out, 0, &written),
              TraceErrc::Ok);
    EXPECT_EQ(written, 5u);

    TraceErrc err = TraceErrc::Ok;
    const auto refs = readAll(out, err);
    ASSERT_EQ(err, TraceErrc::Ok);
    ASSERT_EQ(refs.size(), 5u);

    EXPECT_EQ(refs[0].pc, 0x400008u);
    EXPECT_EQ(refs[0].addr, 0x1000u);
    EXPECT_TRUE(refs[0].isLoad());
    EXPECT_EQ(refs[0].nonMemGap, 2u);

    EXPECT_EQ(refs[1].addr, 0x2000u);
    EXPECT_EQ(refs[1].nonMemGap, 0u);
    EXPECT_EQ(refs[2].addr, 0x2040u);
    EXPECT_EQ(refs[3].addr, 0x3000u);
    EXPECT_TRUE(refs[3].isStore());
    EXPECT_EQ(refs[3].nonMemGap, 0u);

    EXPECT_EQ(refs[4].addr, 0x4000u);
    EXPECT_TRUE(refs[4].isStore());
    EXPECT_EQ(refs[4].nonMemGap, 1u);
}

TEST(ChampSimImportTest, RejectsTrailingPartialRecord)
{
    const std::string in = tmpPath("champ_trunc.bin");
    const std::string out = tmpPath("champ_trunc.ltct");
    std::vector<unsigned char> bytes;
    champsimInstr(bytes, 0x400000, {0x1000}, {});
    bytes.resize(bytes.size() + 13, 0); // partial second record
    spit(in, bytes);
    EXPECT_EQ(importChampSimFile(in, out),
              TraceErrc::MalformedRecord);
}

TEST(ChampSimImportTest, HonoursLimit)
{
    const std::string in = tmpPath("champ_lim.bin");
    const std::string out = tmpPath("champ_lim.ltct");
    std::vector<unsigned char> bytes;
    for (int i = 0; i < 10; i++)
        champsimInstr(bytes, 0x400000 + 4 * i,
                      {0x1000u + 64u * static_cast<unsigned>(i)}, {});
    spit(in, bytes);
    std::uint64_t written = 0;
    ASSERT_EQ(importChampSimFile(in, out, 4, &written),
              TraceErrc::Ok);
    EXPECT_EQ(written, 4u);
}

// ------------------------------------------------ O(chunk) replay

TEST(FileTraceMemoryTest, ReplayMemoryIsBoundedByChunk)
{
    const std::string path = tmpPath("bounded.ltct");
    constexpr std::uint32_t chunk = 256;
    constexpr std::size_t records = 10'000;
    {
        StreamingTraceWriter writer(path, chunk);
        const auto refs = randomRefs(records, 21);
        for (const MemRef &r : refs)
            writer.append(r);
        ASSERT_EQ(writer.finish(), TraceErrc::Ok);
    }

    FileTrace trace(path);
    EXPECT_EQ(trace.size(), records);
    MemRef out;
    std::size_t n = 0;
    while (trace.next(out))
        n++;
    EXPECT_EQ(n, records);
    // The whole point of the streaming reader: replaying a 10k-record
    // trace never holds more than one chunk of records in memory.
    EXPECT_LE(trace.reader().maxBufferedRecords(), chunk);
    EXPECT_EQ(trace.reader().chunksRead(),
              (records + chunk - 1) / chunk);

    // reset() replays from the start with the same bound.
    trace.reset();
    ASSERT_TRUE(trace.next(out));
    EXPECT_LE(trace.reader().maxBufferedRecords(), chunk);
    std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceIsValid)
{
    const std::string path = tmpPath("empty.ltct");
    writeTraceFile(path, {});
    StreamingTraceReader reader(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.records(), 0u);
    MemRef out;
    EXPECT_FALSE(reader.next(out));
    EXPECT_TRUE(reader.ok());

    TraceFileInfo info;
    ASSERT_EQ(probeTraceFile(path, info), TraceErrc::Ok);
    EXPECT_EQ(info.records, 0u);
    EXPECT_EQ(info.chunks, 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace ltc
