/**
 * @file
 * Tests for the simulation engines: trace-driven coverage engine,
 * cycle timing engine, multi-programming and sampling.
 */

#include <gtest/gtest.h>

#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/multiprog.hh"
#include "sim/sampling.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"
#include "trace/workloads.hh"

namespace ltc
{
namespace
{

std::unique_ptr<TraceSource>
scanSource(std::uint64_t blocks, std::uint32_t apb = 2,
           std::uint32_t gap = 1)
{
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = blocks;
    a.accessesPerBlock = apb;
    return std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a}, gap);
}

//
// TraceEngine
//

TEST(TraceEngineTest, BaselineMissCounting)
{
    auto src = scanSource(4096); // 4K blocks >> 1K-line L1
    TraceEngine engine(HierarchyConfig{}, nullptr);
    engine.run(*src, 4 * 8192);
    const auto &s = engine.stats();
    EXPECT_EQ(s.accesses, 4u * 8192u);
    // Every block misses once per sweep: 4 sweeps x 4096 misses.
    EXPECT_EQ(s.l1Misses, 4u * 4096u);
    EXPECT_DOUBLE_EQ(s.l1MissRate(), 0.5);
}

TEST(TraceEngineTest, InstructionsIncludeGaps)
{
    auto src = scanSource(64, 1, 9);
    TraceEngine engine(HierarchyConfig{}, nullptr);
    engine.run(*src, 100);
    EXPECT_EQ(engine.stats().instructions, 1000u);
}

TEST(TraceEngineTest, OpportunityMatchesBaselineMisses)
{
    auto src = scanSource(2048);
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    auto stats = runWithOpportunity(HierarchyConfig{}, &ltc, *src,
                                    4 * 4096);
    EXPECT_EQ(stats.opportunity, 4u * 2048u);
}

TEST(TraceEngineTest, CategoriesPartitionOpportunity)
{
    auto src = scanSource(2048);
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    auto stats = runWithOpportunity(HierarchyConfig{}, &ltc, *src,
                                    6 * 4096);
    // correct + misses ~= opportunity + early: each baseline miss is
    // either eliminated (correct) or still a miss, and early
    // evictions add extra misses. Slack remains because prefetch
    // fills replace predicted-dead blocks rather than the LRU victim,
    // so residency under prediction diverges from the baseline: some
    // baseline misses become plain hits (blocks kept alive longer)
    // and some early-evicted blocks return before their demand.
    const double lhs =
        static_cast<double>(stats.correct + stats.l1Misses);
    const double rhs =
        static_cast<double>(stats.opportunity + stats.early);
    EXPECT_NEAR(lhs / rhs, 1.0, 0.15);
    EXPECT_LE(stats.incorrect() + stats.train(), stats.l1Misses);
}

TEST(TraceEngineTest, BucketsAttributeSeparately)
{
    TraceEngine engine(HierarchyConfig{}, nullptr, 2);
    auto a = scanSource(64);
    auto b = scanSource(64);
    engine.selectBucket(0);
    engine.run(*a, 100);
    engine.selectBucket(1);
    engine.run(*b, 200);
    EXPECT_EQ(engine.stats(0).accesses, 100u);
    EXPECT_EQ(engine.stats(1).accesses, 200u);
}

TEST(TraceEngineTest, BaseDataTrafficCharged)
{
    auto src = scanSource(4096);
    TraceEngine engine(HierarchyConfig{}, nullptr);
    engine.run(*src, 2 * 8192);
    // Footprint 4096 blocks > L2? No: 4096 blocks = 256KB fits L2, so
    // only cold misses go off chip.
    EXPECT_EQ(engine.stats().traffic.bytes(Traffic::BaseData),
              4096u * 64u);
}

TEST(TraceEngineDeathTest, BucketOutOfRange)
{
    TraceEngine engine(HierarchyConfig{}, nullptr, 2);
    EXPECT_DEATH(engine.selectBucket(2), "bucket out of range");
}

//
// TimingSim
//

TEST(TimingSimTest, AllHitsApproachWidth)
{
    TimingConfig cfg;
    cfg.hier.perfectL1 = true;
    TimingSim sim(cfg, nullptr);
    auto src = scanSource(64, 1, 7);
    sim.run(*src, 20000);
    const auto s = sim.stats();
    // 8-wide core, all L1 hits: IPC near 8.
    EXPECT_GT(s.ipc, 6.0);
    EXPECT_LE(s.ipc, 8.0);
}

TEST(TimingSimTest, MissesCostCycles)
{
    TimingConfig cfg;
    TimingSim miss_sim(cfg, nullptr);
    auto big = scanSource(1 << 16, 1, 7); // 4MB, misses everywhere
    miss_sim.run(*big, 20000);

    TimingSim hit_sim(cfg, nullptr);
    auto small = scanSource(64, 1, 7);
    hit_sim.run(*small, 20000);

    EXPECT_LT(miss_sim.stats().ipc, hit_sim.stats().ipc / 3.0);
}

TEST(TimingSimTest, DependentChainsSerialise)
{
    // Same footprint, same miss count; dependent chain must be much
    // slower than the independent scan.
    PointerChaseParams p;
    p.nodes = 1 << 15;
    p.accessesPerNode = 1;
    p.nonMemGap = 1;
    auto chase = std::make_unique<PointerChaseSource>(p);
    TimingConfig cfg;
    TimingSim dep_sim(cfg, nullptr);
    dep_sim.run(*chase, 30000);

    TimingSim ind_sim(cfg, nullptr);
    auto scan = scanSource(1 << 15, 1, 1);
    ind_sim.run(*scan, 30000);

    EXPECT_LT(dep_sim.stats().ipc, ind_sim.stats().ipc / 4.0);
}

TEST(TimingSimTest, LtCordsImprovesRepetitiveScan)
{
    auto run = [](Prefetcher *pred) {
        TimingConfig cfg;
        TimingSim sim(cfg, pred);
        ScanArray a;
        a.base = 0x10000000;
        a.blocks = 1 << 15; // 2MB > L2
        a.accessesPerBlock = 2;
        a.pc = 0x1000;
        StridedScanSource src({a}, 6);
        sim.run(src, 6 * (2u << 15));
        return sim.stats();
    };
    auto base = run(nullptr);
    LtCords ltc(paperLtcords(HierarchyConfig{}, true));
    auto with = run(&ltc);
    EXPECT_GT(with.ipc, base.ipc * 1.1);
    EXPECT_GT(with.correct, 0u);
}

TEST(TimingSimTest, PerfectL1BeatsEverything)
{
    auto src = makeWorkload("swim");
    TimingConfig cfg;
    cfg.hier = perfectL1Hierarchy();
    TimingSim perfect(cfg, nullptr);
    perfect.run(*src, 200000);

    src = makeWorkload("swim");
    TimingConfig base_cfg;
    TimingSim base(base_cfg, nullptr);
    base.run(*src, 200000);

    EXPECT_GT(perfect.stats().ipc, base.stats().ipc);
}

TEST(TimingSimTest, TrafficAccountingPopulated)
{
    TimingConfig cfg;
    LtCords ltc(paperLtcords(cfg.hier, true));
    TimingSim sim(cfg, &ltc);
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 1 << 15;
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 4);
    sim.run(src, 5 * (2u << 15));
    const auto s = sim.stats();
    EXPECT_GT(s.traffic.bytes(Traffic::BaseData), 0u);
    EXPECT_GT(s.traffic.bytes(Traffic::SequenceCreate), 0u);
    EXPECT_GT(s.traffic.bytes(Traffic::SequenceFetch), 0u);
    EXPECT_GT(s.memBusBusy, 0u);
}

TEST(TimingSimTest, StatsBasicsConsistent)
{
    TimingConfig cfg;
    TimingSim sim(cfg, nullptr);
    auto src = scanSource(4096);
    sim.run(*src, 10000);
    const auto s = sim.stats();
    EXPECT_EQ(s.accesses, 10000u);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.instructions, s.accesses);
    EXPECT_NEAR(s.ipc,
                static_cast<double>(s.instructions) /
                    static_cast<double>(s.cycles),
                1e-9);
}

//
// Multi-programming
//

TEST(MultiProgTest, PerAppAttribution)
{
    MultiProgConfig cfg;
    cfg.quantumRefs = {500, 1000};
    cfg.switches = 8;
    std::vector<std::unique_ptr<TraceSource>> apps;
    apps.push_back(scanSource(2048));
    apps.push_back(scanSource(2048));
    auto stats = runMultiProg(cfg, nullptr, std::move(apps));
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].accesses, 4u * 500u);
    EXPECT_EQ(stats[1].accesses, 4u * 1000u);
    EXPECT_EQ(stats[0].opportunity, stats[0].l1Misses);
}

TEST(MultiProgTest, SharedPredictorCoversBothApps)
{
    MultiProgConfig cfg;
    cfg.quantumRefs = {4096, 4096};
    cfg.switches = 24;
    LtCords ltc(paperLtcords(cfg.hier));
    std::vector<std::unique_ptr<TraceSource>> apps;
    apps.push_back(scanSource(1024));
    apps.push_back(scanSource(1024));
    auto stats = runMultiProg(cfg, &ltc, std::move(apps));
    EXPECT_GT(stats[0].coverage(), 0.3);
    EXPECT_GT(stats[1].coverage(), 0.3);
}

TEST(MultiProgTest, AddressSpacesDisjoint)
{
    // Same generator in both apps; without the shift they would
    // share cache blocks, with it they must behave as two footprints.
    MultiProgConfig cfg;
    cfg.quantumRefs = {1000, 1000};
    cfg.switches = 4;
    std::vector<std::unique_ptr<TraceSource>> apps;
    apps.push_back(scanSource(512));
    apps.push_back(scanSource(512));
    auto stats = runMultiProg(cfg, nullptr, std::move(apps));
    // Both apps have their own cold misses: at least one sweep's
    // worth each.
    EXPECT_GE(stats[0].l1Misses, 512u);
    EXPECT_GE(stats[1].l1Misses, 512u);
}

TEST(MultiProgDeathTest, QuantumMismatch)
{
    MultiProgConfig cfg;
    cfg.quantumRefs = {100};
    std::vector<std::unique_ptr<TraceSource>> apps;
    apps.push_back(scanSource(64));
    apps.push_back(scanSource(64));
    EXPECT_DEATH(runMultiProg(cfg, nullptr, std::move(apps)),
                 "one entry per app");
}

//
// Sampling
//

TEST(SamplingTest, CollectsRequestedSamples)
{
    TimingConfig cfg;
    TimingSim sim(cfg, nullptr);
    auto src = scanSource(1024, 2, 3);
    SamplingConfig sc;
    sc.skipRefs = 1000;
    sc.warmupRefs = 500;
    sc.measureRefs = 500;
    sc.maxSamples = 5;
    auto result = runSampled(sim, *src, sc);
    EXPECT_EQ(result.samples, 5u);
    EXPECT_GT(result.meanIpc, 0.0);
    EXPECT_GT(result.instructions, 0u);
}

TEST(SamplingTest, StopsAtStreamEnd)
{
    TimingConfig cfg;
    TimingSim sim(cfg, nullptr);
    auto inner = scanSource(1024);
    LimitSource src(std::move(inner), 3000);
    SamplingConfig sc;
    sc.skipRefs = 500;
    sc.warmupRefs = 500;
    sc.measureRefs = 500;
    sc.maxSamples = 100;
    auto result = runSampled(sim, src, sc);
    EXPECT_LE(result.samples, 2u);
}

TEST(SamplingTest, SteadyWorkloadHasTightCi)
{
    TimingConfig cfg;
    TimingSim sim(cfg, nullptr);
    auto src = scanSource(4096, 2, 3);
    SamplingConfig sc;
    sc.skipRefs = 2000;
    sc.warmupRefs = 1000;
    sc.measureRefs = 2000;
    sc.maxSamples = 8;
    auto result = runSampled(sim, *src, sc);
    ASSERT_EQ(result.samples, 8u);
    // A periodic workload: the 95% CI should be moderate; window
    // boundaries do not align with sweep boundaries, so some
    // variance remains (the paper targets +-3% at much larger
    // sample sizes).
    EXPECT_LT(result.ci95Frac, 0.3);
}

//
// Experiment presets
//

TEST(ExperimentTest, PresetGeometry)
{
    EXPECT_EQ(bigL2Hierarchy().l2.sizeBytes, 4u * 1024u * 1024u);
    EXPECT_TRUE(perfectL1Hierarchy().perfectL1);
    EXPECT_EQ(paperTiming().core.width, 8u);
    EXPECT_EQ(paperTiming().core.robSize, 256u);
    EXPECT_EQ(paperTiming().prefetchQueueEntries, 128u);
}

TEST(ExperimentTest, FactoryBuildsAllNames)
{
    for (const auto &name : predictorNames()) {
        auto pred = makePredictor(name, paperHierarchy());
        if (name == "none") {
            EXPECT_EQ(pred, nullptr);
        } else {
            ASSERT_NE(pred, nullptr) << name;
            EXPECT_FALSE(pred->name().empty());
        }
    }
}

TEST(ExperimentDeathTest, UnknownPredictorFatal)
{
    EXPECT_EXIT(makePredictor("magic", paperHierarchy()),
                ::testing::ExitedWithCode(1), "unknown predictor");
}

TEST(ExperimentTest, LtcordsSizedForHierarchy)
{
    auto cfg = paperLtcords(paperHierarchy());
    EXPECT_EQ(cfg.l1Sets, 512u);
    EXPECT_EQ(cfg.lineBytes, 64u);
    EXPECT_FALSE(cfg.modelStreamLatency);
    EXPECT_TRUE(paperLtcords(paperHierarchy(), true).modelStreamLatency);
}

} // namespace
} // namespace ltc
