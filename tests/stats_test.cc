/**
 * @file
 * Unit tests for the statistics primitives and table rendering.
 */

#include <gtest/gtest.h>

#include "util/stats.hh"
#include "util/table.hh"

namespace ltc
{
namespace
{

TEST(Log2HistogramTest, ZeroGoesToFirstBucket)
{
    Log2Histogram h;
    h.sample(0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 1.0);
}

TEST(Log2HistogramTest, BucketBoundaries)
{
    Log2Histogram h;
    h.sample(1);  // bucket 1: [1,1]
    h.sample(2);  // bucket 2: [2,3]
    h.sample(3);  // bucket 2
    h.sample(4);  // bucket 3: [4,7]
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2HistogramTest, MergePreservesTotalsAndMean)
{
    Log2Histogram a, b;
    for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull})
        a.sample(v);
    for (std::uint64_t v : {3ull, 1000ull, 1ull << 20})
        b.sample(v, 2);

    Log2Histogram merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.samples(), a.samples() + b.samples());
    // merge() folds the exact sums, unlike re-sampling bucket lower
    // bounds, so the mean stays exact.
    EXPECT_DOUBLE_EQ(merged.mean() *
                         static_cast<double>(merged.samples()),
                     a.mean() * static_cast<double>(a.samples()) +
                         b.mean() * static_cast<double>(b.samples()));
    for (unsigned i = 0; i < merged.numBuckets(); i++)
        EXPECT_EQ(merged.bucket(i), a.bucket(i) + b.bucket(i));

    // Merging an empty histogram is a no-op.
    Log2Histogram empty;
    Log2Histogram copy = merged;
    copy.merge(empty);
    EXPECT_EQ(copy.samples(), merged.samples());
}

TEST(Log2HistogramTest, MergeClampsWiderHistograms)
{
    Log2Histogram narrow(4);
    Log2Histogram wide(40);
    wide.sample(1ull << 30);
    narrow.merge(wide);
    EXPECT_EQ(narrow.samples(), 1u);
    EXPECT_EQ(narrow.bucket(3), 1u); // clamped into the last bucket
}

TEST(RunningStatsTest, MergeMatchesCombinedSampling)
{
    RunningStats a, b, all;
    for (double v : {1.0, 2.0, 3.5}) {
        a.sample(v);
        all.sample(v);
    }
    for (double v : {-4.0, 10.0}) {
        b.sample(v);
        all.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    EXPECT_DOUBLE_EQ(a.variance(), all.variance());

    // Merging into an empty accumulator copies the other side.
    RunningStats fresh;
    fresh.merge(all);
    EXPECT_EQ(fresh.count(), all.count());
    EXPECT_DOUBLE_EQ(fresh.min(), all.min());
}

TEST(Log2HistogramTest, CdfMonotone)
{
    Log2Histogram h;
    for (std::uint64_t v = 1; v <= 4096; v *= 2)
        h.sample(v, v); // weighted
    double prev = 0.0;
    for (std::uint64_t v = 1; v <= 1 << 20; v *= 2) {
        const double c = h.cdfAt(v);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(1 << 20), 1.0);
}

TEST(Log2HistogramTest, Percentile)
{
    Log2Histogram h;
    for (int i = 0; i < 90; i++)
        h.sample(1);
    for (int i = 0; i < 10; i++)
        h.sample(1000);
    // 90% of samples are at value 1 (bucket upper bound 1).
    EXPECT_EQ(h.percentile(0.5), 1u);
    EXPECT_GE(h.percentile(0.95), 512u);
}

TEST(Log2HistogramTest, MeanIsExact)
{
    Log2Histogram h;
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Log2HistogramTest, WeightedSamples)
{
    Log2Histogram h;
    h.sample(5, 7);
    EXPECT_EQ(h.samples(), 7u);
}

TEST(Log2HistogramTest, ClearResets)
{
    Log2Histogram h;
    h.sample(100);
    h.clear();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Log2HistogramTest, CdfSeriesEndsAtOne)
{
    Log2Histogram h;
    h.sample(1);
    h.sample(100);
    h.sample(10000);
    const auto series = h.cdfSeries();
    ASSERT_FALSE(series.empty());
    EXPECT_DOUBLE_EQ(series.back().second, 1.0);
    // Cumulative fractions non-decreasing.
    for (std::size_t i = 1; i < series.size(); i++)
        EXPECT_GE(series[i].second, series[i - 1].second);
}

TEST(Log2HistogramTest, OverflowClampsToLastBucket)
{
    Log2Histogram h(4); // buckets 0..3
    h.sample(~std::uint64_t{0});
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(RunningStatsTest, Basics)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_NEAR(s.variance(), 8.0 / 3.0, 1e-9);
}

TEST(RunningStatsTest, SingleSampleVarianceZero)
{
    RunningStats s;
    s.sample(5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, Clear)
{
    RunningStats s;
    s.sample(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
}

TEST(StatSetTest, SetAddGet)
{
    StatSet s("pred");
    EXPECT_FALSE(s.has("hits"));
    EXPECT_DOUBLE_EQ(s.get("hits"), 0.0);
    s.set("hits", 10);
    s.add("hits", 5);
    EXPECT_TRUE(s.has("hits"));
    EXPECT_DOUBLE_EQ(s.get("hits"), 15.0);
}

TEST(StatSetTest, DumpFormat)
{
    StatSet s("core");
    s.set("ipc", 1.5);
    const std::string dump = s.dump();
    EXPECT_NE(dump.find("core.ipc 1.5"), std::string::npos);
}

TEST(MeansTest, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-9);
}

TEST(MeansTest, Amean)
{
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
}

TEST(TableTest, RenderAligned)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Columns aligned: "value" starts at the same offset in each row.
    const auto header_pos = out.find("value");
    ASSERT_NE(header_pos, std::string::npos);
}

TEST(TableTest, Csv)
{
    Table t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TableTest, NumAndPct)
{
    EXPECT_EQ(Table::num(1.2345, 2), "1.23");
    EXPECT_EQ(Table::pct(0.5, 0), "50%");
    EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

TEST(TableDeathTest, RowWidthMismatch)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace ltc
