/**
 * @file
 * Multi-tenant batched/scalar equivalence suite.
 *
 * TraceEngine::runSchedule — the batched multi-tenant loop that
 * hoists dispatch, cursors and pull buffers outside the quantum
 * loop — must be indistinguishable from the scalar reference loop
 * (selectBucket + selectTenant + run per quantum). These tests drive
 * both paths over identical tenant sets and schedules — static and
 * churn-driven, on- and off-dispatch geometries, shared and
 * partitioned signature caches, 2 to 1024 tenants — and compare
 * every per-bucket counter and both caches exactly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/multiprog.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"
#include "trace/trace.hh"

namespace ltc
{
namespace
{

/**
 * Cheap per-tenant sources: small pointer chases with distinct
 * layouts, shifted into disjoint address ranges (what runMultiProg's
 * ShiftSource wrapping does). Small enough that 1024 of them build in
 * milliseconds, miss-heavy enough to exercise the predictors.
 */
std::vector<std::unique_ptr<TraceSource>>
makeTenants(std::uint32_t n)
{
    std::vector<std::unique_ptr<TraceSource>> apps;
    for (std::uint32_t i = 0; i < n; i++) {
        PointerChaseParams p;
        p.nodes = 256 + (i & 3) * 128;
        p.seed = i + 1;
        p.mutateEveryIters = 2;
        p.mutateFraction = 0.05;
        apps.push_back(std::make_unique<ShiftSource>(
            std::make_unique<PointerChaseSource>(p),
            static_cast<Addr>(i) << 28));
    }
    return apps;
}

/** A schedule from the production generator (static or churn). */
std::vector<TraceEngine::ScheduleQuantum>
makeSchedule(std::uint32_t tenants, std::uint64_t quantum,
             std::uint64_t switches, std::uint64_t churn_seed)
{
    MultiProgConfig cfg;
    cfg.quantumRefs.assign(tenants, quantum);
    cfg.switches = switches;
    cfg.churnSeed = churn_seed;
    return buildMultiProgSchedule(cfg);
}

void
expectSameCoverage(const CoverageStats &a, const CoverageStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.correct, b.correct);
    EXPECT_EQ(a.uselessPrefetches, b.uselessPrefetches);
    EXPECT_EQ(a.early, b.early);
    for (unsigned t = 0;
         t < static_cast<unsigned>(Traffic::NumClasses); t++) {
        EXPECT_EQ(a.traffic.bytes(static_cast<Traffic>(t)),
                  b.traffic.bytes(static_cast<Traffic>(t)))
            << "traffic class " << t;
    }
}

/**
 * The property itself: runSchedule over @p schedule must produce the
 * same per-bucket stats and cache counters as the scalar loop it
 * documents itself against.
 */
void
checkSchedule(const std::string &pred_name, std::uint32_t tenants,
              const std::vector<TraceEngine::ScheduleQuantum> &schedule,
              const HierarchyConfig &hc,
              std::uint32_t partitions = 1)
{
    SCOPED_TRACE(pred_name + " x " + std::to_string(tenants) +
                 " tenants, " + std::to_string(partitions) +
                 " partitions");

    const auto make_pred =
        [&]() -> std::unique_ptr<Prefetcher> {
        if (pred_name == "none")
            return nullptr;
        if (partitions > 1) {
            LtcordsConfig lc = paperLtcords(hc, false);
            lc.sigCachePartitions = partitions;
            return std::make_unique<LtCords>(lc);
        }
        return makePredictor(pred_name, hc);
    };

    // Batched path.
    auto apps_b = makeTenants(tenants);
    auto pred_b = make_pred();
    TraceEngine batched(hc, pred_b.get(), tenants);
    std::vector<TraceEngine::TenantSlot> slots(tenants);
    for (std::uint32_t i = 0; i < tenants; i++) {
        slots[i].src = apps_b[i].get();
        slots[i].bucket = i;
    }
    const std::uint64_t done_b = batched.runSchedule(slots, schedule);

    // Scalar oracle.
    auto apps_s = makeTenants(tenants);
    auto pred_s = make_pred();
    TraceEngine scalar(hc, pred_s.get(), tenants);
    std::uint64_t done_s = 0;
    for (const TraceEngine::ScheduleQuantum &q : schedule) {
        scalar.selectBucket(q.tenant);
        if (pred_s)
            pred_s->selectTenant(q.tenant);
        done_s += scalar.run(*apps_s[q.tenant], q.refs);
    }

    EXPECT_EQ(done_b, done_s);
    for (std::uint32_t i = 0; i < tenants; i++) {
        SCOPED_TRACE("bucket " + std::to_string(i));
        expectSameCoverage(batched.stats(i), scalar.stats(i));
    }
    EXPECT_EQ(batched.hierarchy().l1d().accesses(),
              scalar.hierarchy().l1d().accesses());
    EXPECT_EQ(batched.hierarchy().l1d().misses(),
              scalar.hierarchy().l1d().misses());
    EXPECT_EQ(batched.hierarchy().l1d().evictions(),
              scalar.hierarchy().l1d().evictions());
    EXPECT_EQ(batched.hierarchy().l2().accesses(),
              scalar.hierarchy().l2().accesses());
    EXPECT_EQ(batched.hierarchy().l2().misses(),
              scalar.hierarchy().l2().misses());
}

TEST(MultiProgEquivalence, StaticScheduleAcrossTenantCounts)
{
    for (const std::uint32_t tenants : {2u, 4u, 33u}) {
        const auto schedule = makeSchedule(
            tenants, /*quantum=*/700,
            /*switches=*/static_cast<std::uint64_t>(tenants) * 3 + 1,
            /*churn_seed=*/0);
        for (const char *pred : {"none", "lt-cords", "ghb"})
            checkSchedule(pred, tenants, schedule, paperHierarchy());
    }
}

TEST(MultiProgEquivalence, ChurnSchedule)
{
    for (const std::uint32_t tenants : {4u, 33u}) {
        const auto schedule = makeSchedule(
            tenants, /*quantum=*/500,
            /*switches=*/static_cast<std::uint64_t>(tenants) * 4,
            /*churn_seed=*/0xC0FFEE + tenants);
        for (const char *pred : {"none", "lt-cords"})
            checkSchedule(pred, tenants, schedule, paperHierarchy());
    }
}

TEST(MultiProgEquivalence, ThousandTenants)
{
    // Fig. 11 at scale: 1024 tenants with churn, ~150 refs per
    // quantum — the regime where the scalar loop's per-quantum
    // re-entry cost dominates and the batched loop must still match
    // it event-for-event.
    const std::uint32_t tenants = 1024;
    const auto schedule =
        makeSchedule(tenants, /*quantum=*/150, /*switches=*/1500,
                     /*churn_seed=*/99);
    checkSchedule("lt-cords", tenants, schedule, paperHierarchy());
}

TEST(MultiProgEquivalence, ReplacementPolicySweep)
{
    // Every policy plugin through the hoisted multi-tenant kernels —
    // the schedule kernels dispatch on (assoc, policy) exactly like
    // run(), so Random's draw order and DeadBlock's mark wiring must
    // survive the quantum hoisting too.
    const auto schedule =
        makeSchedule(4, /*quantum=*/600, /*switches=*/17,
                     /*churn_seed=*/3);
    for (const ReplPolicy p : allReplPolicies) {
        SCOPED_TRACE(replPolicyName(p));
        HierarchyConfig hc = paperHierarchy();
        hc.l1d.policy = p;
        hc.l2.policy = p;
        checkSchedule("none", 4, schedule, hc);
        checkSchedule("lt-cords", 4, schedule, hc);
    }
}

TEST(MultiProgEquivalence, WritebackModelling)
{
    // modelWritebacks forces the schedule kernels off the trimmed
    // baseline path; both predictor-less and predicted runs must
    // still match the scalar loop event-for-event.
    HierarchyConfig hc = paperHierarchy();
    hc.modelWritebacks = true;
    const auto schedule =
        makeSchedule(4, /*quantum=*/600, /*switches=*/17,
                     /*churn_seed=*/0);
    checkSchedule("none", 4, schedule, hc);
    checkSchedule("lt-cords", 4, schedule, hc);
}

TEST(MultiProgEquivalence, OffDispatchGeometry)
{
    // Associativities outside the static dispatch table take the
    // runtime-assoc kernel instantiation; it must agree too.
    HierarchyConfig hc = paperHierarchy();
    hc.l1d.assoc = 8;
    hc.l2.assoc = 4;
    const auto schedule =
        makeSchedule(4, /*quantum=*/600, /*switches=*/17,
                     /*churn_seed=*/0);
    checkSchedule("none", 4, schedule, hc);
    checkSchedule("lt-cords", 4, schedule, hc);
}

TEST(MultiProgEquivalence, PartitionedSignatureCache)
{
    const std::uint32_t tenants = 8;
    const auto schedule =
        makeSchedule(tenants, /*quantum=*/500,
                     /*switches=*/tenants * 4, /*churn_seed=*/5);
    checkSchedule("lt-cords", tenants, schedule, paperHierarchy(),
                  /*partitions=*/tenants);
}

TEST(MultiProgEquivalence, SharedModeMatchesTenantObliviousLoop)
{
    // Backward compatibility: with an unpartitioned signature cache,
    // selectTenant must not perturb a single stat — the batched loop
    // must match the historical scalar loop that never called it.
    const std::uint32_t tenants = 4;
    const auto schedule =
        makeSchedule(tenants, /*quantum=*/800,
                     /*switches=*/tenants * 5, /*churn_seed=*/0);
    const HierarchyConfig hc = paperHierarchy();

    auto apps_b = makeTenants(tenants);
    auto pred_b = makePredictor("lt-cords", hc);
    TraceEngine batched(hc, pred_b.get(), tenants);
    std::vector<TraceEngine::TenantSlot> slots(tenants);
    for (std::uint32_t i = 0; i < tenants; i++) {
        slots[i].src = apps_b[i].get();
        slots[i].bucket = i;
    }
    batched.runSchedule(slots, schedule);

    auto apps_s = makeTenants(tenants);
    auto pred_s = makePredictor("lt-cords", hc);
    TraceEngine scalar(hc, pred_s.get(), tenants);
    for (const TraceEngine::ScheduleQuantum &q : schedule) {
        scalar.selectBucket(q.tenant);
        scalar.run(*apps_s[q.tenant], q.refs); // no selectTenant
    }

    for (std::uint32_t i = 0; i < tenants; i++) {
        SCOPED_TRACE("bucket " + std::to_string(i));
        expectSameCoverage(batched.stats(i), scalar.stats(i));
    }
}

TEST(MultiProgEquivalence, RunMultiProgScalarKnobMatches)
{
    // The end-to-end harness: runMultiProg with scalarQuantums on and
    // off must agree on every per-app stat including opportunity,
    // with and without churn.
    for (const std::uint64_t churn : {std::uint64_t{0},
                                      std::uint64_t{31}}) {
        SCOPED_TRACE("churn seed " + std::to_string(churn));
        MultiProgConfig cfg;
        cfg.quantumRefs = {900, 700, 800};
        cfg.switches = 24;
        cfg.churnSeed = churn;

        auto run_once = [&](bool scalar) {
            MultiProgConfig c = cfg;
            c.scalarQuantums = scalar;
            auto pred = makePredictor("lt-cords", c.hier);
            std::vector<std::unique_ptr<TraceSource>> apps;
            PointerChaseParams p;
            p.nodes = 700;
            p.seed = 3;
            apps.push_back(std::make_unique<PointerChaseSource>(p));
            p.nodes = 500;
            p.seed = 4;
            apps.push_back(std::make_unique<PointerChaseSource>(p));
            p.nodes = 900;
            p.seed = 5;
            apps.push_back(std::make_unique<PointerChaseSource>(p));
            return runMultiProg(c, pred.get(), std::move(apps));
        };

        const auto batched = run_once(false);
        const auto scalar = run_once(true);
        ASSERT_EQ(batched.size(), scalar.size());
        for (std::size_t i = 0; i < batched.size(); i++) {
            SCOPED_TRACE("app " + std::to_string(i));
            expectSameCoverage(batched[i], scalar[i]);
            EXPECT_EQ(batched[i].opportunity, scalar[i].opportunity);
        }
    }
}

TEST(MultiProgEquivalence, ScheduleGeneratorIsDeterministic)
{
    MultiProgConfig cfg;
    cfg.quantumRefs.assign(16, 250);
    cfg.switches = 200;
    cfg.churnSeed = 1234;
    const auto a = buildMultiProgSchedule(cfg);
    const auto b = buildMultiProgSchedule(cfg);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), cfg.switches);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].tenant, b[i].tenant) << "quantum " << i;
        EXPECT_EQ(a[i].refs, b[i].refs) << "quantum " << i;
        ASSERT_LT(a[i].tenant, 16u);
    }

    // Static mode reproduces the historical round-robin exactly.
    cfg.churnSeed = 0;
    const auto s = buildMultiProgSchedule(cfg);
    for (std::size_t i = 0; i < s.size(); i++)
        EXPECT_EQ(s[i].tenant, i % 16) << "quantum " << i;
}

} // namespace
} // namespace ltc
