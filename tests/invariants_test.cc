/**
 * @file
 * Invariant-audit death tests.
 *
 * Each hand-rolled hot-path structure exposes auditInvariants()
 * (util/check.hh); this suite proves the audits actually fire by
 * corrupting private state through the TestPeer friend hook and
 * expecting the audit to panic, and — just as important — that
 * legitimately exercised state passes every audit cleanly. The
 * corruption classes cover the silent-failure modes the packed
 * representations are exposed to: a clobbered tag word, a dropped
 * MSHR presence bit, reversed ring order, a rewound bus horizon and
 * a broken sequence-storage frame link.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/cache_config.hh"
#include "cache/mshr.hh"
#include "core/ltcords_config.hh"
#include "core/sequence_storage.hh"
#include "cpu/core_config.hh"
#include "cpu/ooo_core.hh"
#include "mem/bus.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"
#include "util/check.hh"

namespace ltc
{

/**
 * The corruption hook: every audited structure befriends TestPeer, so
 * the death tests below can reach into private state and break
 * exactly one representation invariant at a time. Each mutator
 * documents the invariant it violates.
 */
struct TestPeer
{
    // ----------------------------------------------------- Cache

    /** Set a foreign-policy tag-word bit on the first valid line. */
    static void
    clobberTagWord(Cache &c)
    {
        for (std::uint64_t &tf : c.tagFlags_) {
            if (tf & lineValid) {
                // Bit 5 is the bottom of the policy field — an RRPV
                // bit, forbidden under the LRU default.
                tf |= std::uint64_t{1} << 5;
                return;
            }
        }
        FAIL() << "no valid line to clobber";
    }

    /** Flip the low tag bit so the line maps to a foreign set. */
    static void
    migrateLineToForeignSet(Cache &c)
    {
        for (std::uint64_t &tf : c.tagFlags_) {
            if (tf & lineValid) {
                tf ^= std::uint64_t{1} << tagShift;
                return;
            }
        }
        FAIL() << "no valid line to migrate";
    }

    /** Run a line's replacement stamp ahead of the global counter. */
    static void
    runawayStamp(Cache &c)
    {
        for (std::size_t i = 0; i < c.tagFlags_.size(); i++) {
            if (c.tagFlags_[i] & lineValid) {
                c.stamps_[i] = c.stamp_ + 1;
                return;
            }
        }
        FAIL() << "no valid line to stamp";
    }

    // -------------------------------------------------- MshrFile

    /** Zero the presence filter under live entries (false negative). */
    static void
    dropPresenceBits(MshrFile &m)
    {
        ASSERT_FALSE(m.entries_.empty());
        m.present_.fill(0);
    }

    /** Desynchronise the cached earliest-completion time. */
    static void
    staleEarliest(MshrFile &m)
    {
        ASSERT_FALSE(m.entries_.empty());
        m.earliest_ += 1;
    }

    /** Duplicate an outstanding entry (a merge that allocated). */
    static void
    duplicateEntry(MshrFile &m)
    {
        ASSERT_FALSE(m.entries_.empty());
        m.entries_.push_back(m.entries_.front());
    }

    // --------------------------------------------------- OooCore

    /** Swap the oldest and newest ROB entries (reversed order). */
    static void
    reverseRobOrder(OooCore &c)
    {
        const std::size_t newest =
            (c.robHead_ + c.robRing_.size() - 1) % c.robRing_.size();
        ASSERT_NE(c.robRing_[c.robHead_], c.robRing_[newest])
            << "exercise the core until retire slots differ";
        std::swap(c.robRing_[c.robHead_], c.robRing_[newest]);
    }

    /** Push the ROB head index past the ring. */
    static void
    robHeadOutOfRange(OooCore &c)
    {
        c.robHead_ = c.robRing_.size();
    }

    // ------------------------------------------------------- Bus

    /** Rewind the busy horizon behind the accumulated occupancy. */
    static void
    rewindBusyHorizon(Bus &b)
    {
        ASSERT_GT(b.transfers_, 0u);
        b.busyUntil_ = 0;
    }

    /** Account moved bytes on a bus that never transferred. */
    static void
    phantomWork(Bus &b)
    {
        ASSERT_EQ(b.transfers_, 0u);
        b.bytesMoved_ = 64;
    }

    // --------------------------------------- SequenceStorage

    /** Break a valid frame's direct-mapped head-key link. */
    static void
    breakFrameLink(SequenceStorage &s)
    {
        for (auto &frame : s.frames_) {
            if (frame.valid) {
                frame.headKey ^= 1;
                return;
            }
        }
        FAIL() << "no valid frame to corrupt";
    }

    /** Overfill a fragment past the configured length. */
    static void
    overfillFragment(SequenceStorage &s)
    {
        for (auto &frame : s.frames_) {
            if (!frame.valid)
                continue;
            frame.sigs.resize(s.config_.fragmentSignatures + 1);
            return;
        }
        FAIL() << "no valid frame to overfill";
    }
};

namespace
{

// ------------------------------------------------- exercised state
//
// Each helper drives the structure through its normal API far enough
// that every audited invariant is load-bearing (valid lines, live
// MSHR entries, differing retire slots, accounted transfers, valid
// frames), then the positive tests check the audit passes and the
// death tests corrupt from there.

CacheConfig
tinyCacheConfig()
{
    CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = 8 * 64 * 2; // 8 sets, 2-way
    c.assoc = 2;
    c.lineBytes = 64;
    return c;
}

void
exerciseCache(Cache &c)
{
    // Touch more blocks than lines so hits, misses, evictions and
    // eviction marks all occur.
    for (Addr a = 0; a < 40 * 64; a += 64) {
        const CacheOutcome out =
            c.access(a, (a / 64) % 3 ? MemOp::Load : MemOp::Store);
        if (out.evicted)
            c.markEvicted(out.victimAddr);
    }
    c.fill(0x100000);
    c.fillReplacing(0x200000, 0x100000);
}

MshrFile
exercisedMshrs()
{
    MshrFile m(8);
    m.allocate(0x1000, 0, 120);
    m.allocate(0x2000, 5, 90);
    m.allocate(0x3000, 10, 300);
    return m;
}

void
exerciseCore(OooCore &c)
{
    c.issueNonMem(50);
    for (int i = 0; i < 8; i++) {
        const Cycle issue = c.beginMem();
        c.completeMem(issue + 200); // long misses spread the slots
        c.issueNonMem(10);
    }
}

Bus
exercisedBus()
{
    Bus b(BusConfig::memory());
    b.transfer(0, 64);
    b.transfer(10, 8);
    b.transfer(5, 64); // queues behind the second transfer
    return b;
}

LtcordsConfig
tinyStorageConfig()
{
    LtcordsConfig cfg;
    cfg.numFrames = 8;
    cfg.fragmentSignatures = 4;
    return cfg;
}

void
exerciseStorage(SequenceStorage &s)
{
    // Spread keys across frames; enough records to fill several
    // fragments and force at least one frame conflict.
    for (std::uint64_t i = 0; i < 64; i++) {
        const std::uint64_t key = i * 0x9e3779b97f4a7c15ull;
        s.record(key, 0x1000 + i * 64, 0x8000 + i * 64);
    }
}

// ------------------------------------------------- positive audits

TEST(InvariantAudit, ExercisedCachePasses)
{
    Cache c(tinyCacheConfig());
    c.auditInvariants(); // fresh
    exerciseCache(c);
    c.auditInvariants(); // exercised
    c.flush();
    c.auditInvariants(); // flushed
}

TEST(InvariantAudit, ExercisedMshrFilePasses)
{
    MshrFile m = exercisedMshrs();
    m.auditInvariants();
    m.retire(150); // partial drain recomputes earliest_
    m.auditInvariants();
    m.clear();
    m.auditInvariants();
}

TEST(InvariantAudit, ExercisedCorePasses)
{
    OooCore c(CoreConfig{});
    c.auditInvariants();
    exerciseCore(c);
    c.auditInvariants();
}

TEST(InvariantAudit, ExercisedBusPasses)
{
    Bus b(BusConfig::l1l2());
    b.auditInvariants();
    b.transfer(0, 64);
    b.auditInvariants();
    b.reset();
    b.auditInvariants();
}

TEST(InvariantAudit, ExercisedStoragePasses)
{
    SequenceStorage s(tinyStorageConfig());
    s.auditInvariants();
    exerciseStorage(s);
    s.auditInvariants();
    s.clear();
    s.auditInvariants();
}

TEST(InvariantAudit, TraceEngineAuditPassesAfterRun)
{
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 4096;
    StridedScanSource src({a}, 2);
    auto pred = makePredictor("lt-cords", paperHierarchy());
    TraceEngine engine(paperHierarchy(), pred.get());
    engine.run(src, 50'000);
    engine.auditInvariants();
}

TEST(InvariantAudit, TimingEngineAuditPassesAfterRun)
{
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 4096;
    StridedScanSource src({a}, 2);
    TimingConfig cfg;
    auto pred = makePredictor("lt-cords", cfg.hier, true);
    TimingSim sim(cfg, pred.get());
    sim.run(src, 50'000);
    sim.auditInvariants();
}

TEST(InvariantAudit, CheckMacroPassesOnTrueCondition)
{
    LTC_CHECK(1 + 1 == 2, "arithmetic holds");
    LTC_DCHECK(1 + 1 == 2, "arithmetic holds");
    SUCCEED();
}

// --------------------------------------------------- death tests
//
// Every EXPECT_DEATH matches "invariant": LTC_CHECK failures panic
// with "invariant '<cond>' violated: <context>", distinct from
// ltc_assert precondition failures.

class CacheAuditDeathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

TEST_F(CacheAuditDeathTest, ClobberedTagWordIsCaught)
{
    Cache c(tinyCacheConfig());
    exerciseCache(c);
    TestPeer::clobberTagWord(c);
    EXPECT_DEATH(c.auditInvariants(), "invariant");
}

TEST_F(CacheAuditDeathTest, LineMappedToForeignSetIsCaught)
{
    Cache c(tinyCacheConfig());
    exerciseCache(c);
    TestPeer::migrateLineToForeignSet(c);
    EXPECT_DEATH(c.auditInvariants(), "invariant");
}

TEST_F(CacheAuditDeathTest, RunawayStampIsCaught)
{
    Cache c(tinyCacheConfig());
    exerciseCache(c);
    TestPeer::runawayStamp(c);
    EXPECT_DEATH(c.auditInvariants(), "invariant");
}

class MshrAuditDeathTest : public CacheAuditDeathTest
{
};

TEST_F(MshrAuditDeathTest, DroppedPresenceBitIsCaught)
{
    MshrFile m = exercisedMshrs();
    TestPeer::dropPresenceBits(m);
    EXPECT_DEATH(m.auditInvariants(), "invariant");
}

TEST_F(MshrAuditDeathTest, StaleEarliestCompletionIsCaught)
{
    MshrFile m = exercisedMshrs();
    TestPeer::staleEarliest(m);
    EXPECT_DEATH(m.auditInvariants(), "invariant");
}

TEST_F(MshrAuditDeathTest, DuplicateEntryIsCaught)
{
    MshrFile m = exercisedMshrs();
    TestPeer::duplicateEntry(m);
    EXPECT_DEATH(m.auditInvariants(), "invariant");
}

class CoreAuditDeathTest : public CacheAuditDeathTest
{
};

TEST_F(CoreAuditDeathTest, ReversedRingOrderIsCaught)
{
    OooCore c(CoreConfig{});
    exerciseCore(c);
    TestPeer::reverseRobOrder(c);
    EXPECT_DEATH(c.auditInvariants(), "invariant");
}

TEST_F(CoreAuditDeathTest, RingHeadOutOfRangeIsCaught)
{
    OooCore c(CoreConfig{});
    exerciseCore(c);
    TestPeer::robHeadOutOfRange(c);
    EXPECT_DEATH(c.auditInvariants(), "invariant");
}

class BusAuditDeathTest : public CacheAuditDeathTest
{
};

TEST_F(BusAuditDeathTest, RewoundBusyHorizonIsCaught)
{
    Bus b = exercisedBus();
    TestPeer::rewindBusyHorizon(b);
    EXPECT_DEATH(b.auditInvariants(), "invariant");
}

TEST_F(BusAuditDeathTest, PhantomWorkOnIdleBusIsCaught)
{
    Bus b(BusConfig::l1l2());
    TestPeer::phantomWork(b);
    EXPECT_DEATH(b.auditInvariants(), "invariant");
}

class StorageAuditDeathTest : public CacheAuditDeathTest
{
};

TEST_F(StorageAuditDeathTest, BrokenFrameLinkIsCaught)
{
    SequenceStorage s(tinyStorageConfig());
    exerciseStorage(s);
    TestPeer::breakFrameLink(s);
    EXPECT_DEATH(s.auditInvariants(), "invariant");
}

TEST_F(StorageAuditDeathTest, OverfilledFragmentIsCaught)
{
    SequenceStorage s(tinyStorageConfig());
    exerciseStorage(s);
    TestPeer::overfillFragment(s);
    EXPECT_DEATH(s.auditInvariants(), "invariant");
}

} // namespace
} // namespace ltc
