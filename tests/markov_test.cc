/**
 * @file
 * Tests for the Markov prefetcher baseline.
 */

#include <gtest/gtest.h>

#include "pred/markov.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"
#include "util/random.hh"

namespace ltc
{
namespace
{

std::vector<PrefetchRequest>
feedMisses(MarkovPrefetcher &mp, const std::vector<Addr> &addrs)
{
    std::vector<PrefetchRequest> all;
    for (Addr a : addrs) {
        MemRef ref;
        ref.pc = 0x400;
        ref.addr = a;
        HierOutcome out;
        out.level = HitLevel::Memory;
        mp.observe(ref, out);
        for (auto &req : mp.drainRequests())
            all.push_back(req);
    }
    return all;
}

TEST(MarkovTest, LearnsSuccessorPairs)
{
    MarkovPrefetcher mp(MarkovConfig{});
    // Miss sequence A,B,C repeated: on the second pass, A predicts B.
    std::vector<Addr> seq = {0x1000, 0x9000, 0x5000,
                             0x1000, 0x9000, 0x5000};
    auto reqs = feedMisses(mp, seq);
    ASSERT_FALSE(reqs.empty());
    bool predicted_b = false;
    for (auto &r : reqs)
        predicted_b |= (r.target & ~63ull) == 0x9000;
    EXPECT_TRUE(predicted_b);
    EXPECT_FALSE(reqs.front().intoL1); // L2 only
}

TEST(MarkovTest, MostRecentSuccessorFirst)
{
    MarkovConfig cfg;
    cfg.ways = 2;
    cfg.degree = 1;
    MarkovPrefetcher mp(cfg);
    // A->B, then A->C: the next A must predict C first (degree 1).
    feedMisses(mp, {0x1000, 0xB000, 0x1000, 0xC000});
    auto reqs = feedMisses(mp, {0x1000});
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].target & ~63ull, 0xC000u);
}

TEST(MarkovTest, SuccessorListBounded)
{
    MarkovConfig cfg;
    cfg.ways = 2;
    cfg.degree = 4;
    MarkovPrefetcher mp(cfg);
    feedMisses(mp, {0x1000, 0xA000, 0x1000, 0xB000, 0x1000, 0xC000});
    auto reqs = feedMisses(mp, {0x1000});
    EXPECT_LE(reqs.size(), 2u); // at most `ways` successors kept
}

TEST(MarkovTest, HitsIgnored)
{
    MarkovPrefetcher mp(MarkovConfig{});
    MemRef ref;
    ref.addr = 0x1000;
    HierOutcome out;
    out.level = HitLevel::L1;
    for (int i = 0; i < 10; i++)
        mp.observe(ref, out);
    EXPECT_FALSE(mp.hasRequests());
}

TEST(MarkovTest, RepeatedMissToSameBlockNotSelfSuccessor)
{
    MarkovPrefetcher mp(MarkovConfig{});
    auto reqs = feedMisses(mp, {0x1000, 0x1000, 0x1000});
    for (auto &r : reqs)
        EXPECT_NE(r.target & ~63ull, 0x1000u);
}

TEST(MarkovTest, CoversRepetitiveChaseStream)
{
    // A repeating pointer-chase miss stream is exactly a first-order
    // Markov chain: the predictor should convert most L2 misses into
    // L2 hits after training.
    PointerChaseParams p;
    p.base = 0x10000000;
    p.nodes = 32 << 10; // 2MB footprint, exceeds the 1MB L2
    p.accessesPerNode = 1;
    p.seed = 5;
    PointerChaseSource src(p);
    MarkovPrefetcher mp(MarkovConfig{});
    TraceEngine engine(HierarchyConfig{}, &mp);
    engine.run(src, 6 * (32 << 10));
    // L1-miss elimination stays 0 (fills stop at L2)...
    EXPECT_EQ(engine.stats().correct, 0u);
    // ...but the L2 miss count collapses relative to a baseline run.
    src.reset();
    TraceEngine base(HierarchyConfig{}, nullptr);
    base.run(src, 6 * (32 << 10));
    EXPECT_LT(engine.stats().l2Misses, base.stats().l2Misses / 2);
}

TEST(MarkovTest, RandomStreamLearnsNothingUseful)
{
    MarkovPrefetcher mp(MarkovConfig{});
    Rng rng(3);
    std::vector<Addr> seq;
    for (int i = 0; i < 5000; i++)
        seq.push_back((rng.below(1 << 18)) * 64);
    auto reqs = feedMisses(mp, seq);
    // Predictions fire only on (rare) repeated pairs.
    EXPECT_LT(reqs.size(), seq.size() / 4);
}

TEST(MarkovTest, StatsAndClear)
{
    MarkovPrefetcher mp(MarkovConfig{});
    feedMisses(mp, {0x1000, 0x2000, 0x1000, 0x2000});
    StatSet s("markov");
    mp.exportStats(s);
    EXPECT_GT(s.get("misses_observed"), 0.0);
    EXPECT_GT(s.get("updates"), 0.0);
    mp.clear();
    auto reqs = feedMisses(mp, {0x1000});
    EXPECT_TRUE(reqs.empty());
}

TEST(MarkovTest, StorageEstimate)
{
    MarkovConfig cfg;
    cfg.entries = 1024;
    cfg.ways = 2;
    MarkovPrefetcher mp(cfg);
    EXPECT_EQ(mp.storageBytes(), 1024u * 2u * 8u);
}

} // namespace
} // namespace ltc
