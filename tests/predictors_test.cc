/**
 * @file
 * Tests for the baseline predictors: history table, DBCP, GHB PC/DC
 * and the stride prefetcher.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "pred/dbcp.hh"
#include "pred/ghb.hh"
#include "pred/history_table.hh"
#include "pred/stride.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"

namespace ltc
{
namespace
{

//
// HistoryTable
//

TEST(HistoryTableTest, KeyReproducible)
{
    HistoryTable h(16, 64);
    h.recordAccess(3, 0x100);
    h.recordAccess(3, 0x104);
    const std::uint64_t key = h.signatureKey(3);

    HistoryTable h2(16, 64);
    h2.recordAccess(3, 0x100);
    h2.recordAccess(3, 0x104);
    EXPECT_EQ(h2.signatureKey(3), key);
}

TEST(HistoryTableTest, KeyDependsOnSet)
{
    HistoryTable h(16, 64);
    h.recordAccess(3, 0x100);
    h.recordAccess(5, 0x100);
    EXPECT_NE(h.signatureKey(3), h.signatureKey(5));
}

TEST(HistoryTableTest, CloseWindowResetsTraceAndShiftsTags)
{
    HistoryTable h(16, 64);
    h.recordAccess(0, 0x100);
    const std::uint64_t before = h.signatureKey(0);
    h.closeWindow(0, 0xAB00);
    EXPECT_NE(h.signatureKey(0), before);

    // Same trace, same evicted history -> same key.
    HistoryTable h2(16, 64);
    h2.closeWindow(0, 0xAB00);
    h2.recordAccess(0, 0x200);
    h.recordAccess(0, 0x200);
    EXPECT_EQ(h.signatureKey(0), h2.signatureKey(0));
}

TEST(HistoryTableTest, EvictedTagHistoryDepthTwo)
{
    HistoryTable a(4, 64);
    HistoryTable b(4, 64);
    a.closeWindow(0, 0x1000);
    a.closeWindow(0, 0x2000);
    b.closeWindow(0, 0x9000); // older tag differs
    b.closeWindow(0, 0x2000);
    EXPECT_NE(a.signatureKey(0), b.signatureKey(0));
    // Third eviction pushes the differing tag out of the history.
    a.closeWindow(0, 0x3000);
    b.closeWindow(0, 0x3000);
    a.closeWindow(0, 0x4000);
    b.closeWindow(0, 0x4000);
    EXPECT_EQ(a.signatureKey(0), b.signatureKey(0));
}

TEST(HistoryTableTest, ClearForgets)
{
    HistoryTable h(4, 64);
    h.recordAccess(0, 0x100);
    h.closeWindow(0, 0x1000);
    h.clear();
    HistoryTable fresh(4, 64);
    EXPECT_EQ(h.signatureKey(0), fresh.signatureKey(0));
}

TEST(HistoryTableTest, StorageEstimate)
{
    HistoryTable h(512, 64);
    // 512 x (23 + 2*20) bits = 32256 bits ~ 4KB.
    EXPECT_EQ(h.storageBits(20), 512u * 63u);
}

//
// DBCP: drive through the trace engine on a tiny repetitive scan.
//

CoverageStats
runScan(Prefetcher *pred, std::uint64_t blocks, std::uint64_t refs,
        std::uint32_t apb = 2)
{
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = blocks;
    a.accessesPerBlock = apb;
    StridedScanSource src({a}, 1);
    return runWithOpportunity(HierarchyConfig{}, pred, src, refs);
}

TEST(DbcpTest, UnlimitedCoversRepetitiveScan)
{
    Dbcp dbcp(DbcpConfig{});
    // 4K blocks x 2 accesses = 8K refs per sweep; 10 sweeps.
    auto stats = runScan(&dbcp, 4096, 10 * 8192);
    EXPECT_GT(stats.coverage(), 0.5);
    EXPECT_LT(static_cast<double>(stats.uselessPrefetches),
              0.1 * static_cast<double>(stats.opportunity));
}

TEST(DbcpTest, RecordsSignatures)
{
    Dbcp dbcp(DbcpConfig{});
    runScan(&dbcp, 2048, 3 * 4096);
    EXPECT_GT(dbcp.storedSignatures(), 1000u);
    StatSet s("dbcp");
    dbcp.exportStats(s);
    EXPECT_GT(s.get("recorded"), 0.0);
    EXPECT_GT(s.get("predictions"), 0.0);
}

TEST(DbcpTest, FiniteTableThrashesOnLargeFootprint)
{
    DbcpConfig small;
    small.tableEntries = 1024; // tiny table
    Dbcp dbcp(small);
    // 16K blocks -> 16K signatures >> 1K entries.
    auto stats = runScan(&dbcp, 16384, 5 * 32768);
    EXPECT_LT(stats.coverage(), 0.15);
}

TEST(DbcpTest, FiniteVsUnlimitedOrdering)
{
    DbcpConfig small;
    small.tableEntries = 1024;
    Dbcp finite(small);
    Dbcp unlimited(DbcpConfig{});
    auto fs = runScan(&finite, 8192, 5 * 16384);
    auto us = runScan(&unlimited, 8192, 5 * 16384);
    EXPECT_GT(us.coverage(), fs.coverage());
}

TEST(DbcpTest, NoCoverageOnFirstSweep)
{
    Dbcp dbcp(DbcpConfig{});
    auto stats = runScan(&dbcp, 4096, 8192); // exactly one sweep
    EXPECT_EQ(stats.correct, 0u);
}

TEST(DbcpTest, Name)
{
    EXPECT_EQ(Dbcp(DbcpConfig{}).name(), "dbcp-unlimited");
    DbcpConfig c;
    c.tableEntries = DbcpConfig::entriesForBytes(2 * 1024 * 1024);
    EXPECT_EQ(Dbcp(c).name(), "dbcp-2048KB");
}

TEST(DbcpTest, ClearForgets)
{
    Dbcp dbcp(DbcpConfig{});
    runScan(&dbcp, 1024, 3 * 2048);
    dbcp.clear();
    EXPECT_EQ(dbcp.storedSignatures(), 0u);
}

TEST(DbcpTest, EntriesForBytes)
{
    EXPECT_EQ(DbcpConfig::entriesForBytes(2 * 1024 * 1024, 8),
              256u * 1024u);
}

//
// GHB PC/DC
//

/** Feed the GHB a synthetic miss stream directly. */
std::vector<PrefetchRequest>
feedMisses(Ghb &ghb, const std::vector<Addr> &addrs, Addr pc)
{
    std::vector<PrefetchRequest> all;
    for (Addr a : addrs) {
        MemRef ref;
        ref.pc = pc;
        ref.addr = a;
        HierOutcome out;
        out.level = HitLevel::Memory; // miss
        ghb.observe(ref, out);
        for (auto &req : ghb.drainRequests())
            all.push_back(req);
    }
    return all;
}

TEST(GhbTest, ConstantStrideDetected)
{
    Ghb ghb(GhbConfig{});
    std::vector<Addr> misses;
    for (int i = 0; i < 10; i++)
        misses.push_back(0x100000 + static_cast<Addr>(i) * 64);
    auto reqs = feedMisses(ghb, misses, 0x400);
    ASSERT_FALSE(reqs.empty());
    // Prefetches must continue the +64 stride past the last miss.
    EXPECT_EQ(reqs.back().target & ~63ull,
              (misses.back() & ~63ull) + 64 * GhbConfig{}.depth);
    EXPECT_FALSE(reqs.back().intoL1);
}

TEST(GhbTest, RepeatingDeltaPatternDetected)
{
    Ghb ghb(GhbConfig{});
    // Pattern of deltas +64, +192 repeating.
    std::vector<Addr> misses;
    Addr a = 0x200000;
    for (int i = 0; i < 12; i++) {
        misses.push_back(a);
        a += (i % 2 == 0) ? 64 : 192;
    }
    auto reqs = feedMisses(ghb, misses, 0x400);
    EXPECT_FALSE(reqs.empty());
}

TEST(GhbTest, RandomMissesYieldFewPrefetches)
{
    Ghb ghb(GhbConfig{});
    Rng rng(5);
    std::vector<Addr> misses;
    for (int i = 0; i < 200; i++)
        misses.push_back(0x100000 + rng.below(1 << 20) * 64);
    auto reqs = feedMisses(ghb, misses, 0x400);
    EXPECT_LT(reqs.size(), 20u);
}

TEST(GhbTest, SeparatePcsSeparateChains)
{
    Ghb ghb(GhbConfig{});
    // Interleave two strided streams by different PCs; both must be
    // detected despite interleaving.
    std::vector<PrefetchRequest> reqs;
    for (int i = 0; i < 10; i++) {
        for (Addr pc : {0x400ull, 0x500ull}) {
            MemRef ref;
            ref.pc = pc;
            ref.addr = (pc == 0x400 ? 0x100000 : 0x900000) +
                static_cast<Addr>(i) * 64;
            HierOutcome out;
            out.level = HitLevel::Memory;
            ghb.observe(ref, out);
            for (auto &r : ghb.drainRequests())
                reqs.push_back(r);
        }
    }
    bool low = false;
    bool high = false;
    for (auto &r : reqs) {
        low |= r.target < 0x900000;
        high |= r.target >= 0x900000;
    }
    EXPECT_TRUE(low);
    EXPECT_TRUE(high);
}

TEST(GhbTest, HitsAreIgnored)
{
    Ghb ghb(GhbConfig{});
    MemRef ref;
    ref.pc = 0x400;
    ref.addr = 0x1000;
    HierOutcome out;
    out.level = HitLevel::L1;
    for (int i = 0; i < 100; i++)
        ghb.observe(ref, out);
    EXPECT_FALSE(ghb.hasRequests());
}

TEST(GhbTest, StatsExported)
{
    Ghb ghb(GhbConfig{});
    std::vector<Addr> misses;
    for (int i = 0; i < 10; i++)
        misses.push_back(0x100000 + static_cast<Addr>(i) * 64);
    feedMisses(ghb, misses, 0x400);
    StatSet s("ghb");
    ghb.exportStats(s);
    EXPECT_GT(s.get("misses_observed"), 0.0);
    EXPECT_GT(s.get("prefetches_issued"), 0.0);
}

TEST(GhbTest, ClearForgets)
{
    Ghb ghb(GhbConfig{});
    std::vector<Addr> misses;
    for (int i = 0; i < 10; i++)
        misses.push_back(0x100000 + static_cast<Addr>(i) * 64);
    feedMisses(ghb, misses, 0x400);
    ghb.clear();
    // A single new miss must not find chain context.
    MemRef ref;
    ref.pc = 0x400;
    ref.addr = misses.back() + 64;
    HierOutcome out;
    out.level = HitLevel::Memory;
    ghb.observe(ref, out);
    EXPECT_FALSE(ghb.hasRequests());
}

//
// Stride prefetcher
//

TEST(StrideTest, ArmsAfterTwoConfirmations)
{
    StridePrefetcher sp(StrideConfig{});
    MemRef ref;
    ref.pc = 0x400;
    HierOutcome out;
    out.level = HitLevel::Memory;
    int issued = 0;
    for (int i = 0; i < 6; i++) {
        ref.addr = 0x100000 + static_cast<Addr>(i) * 128;
        sp.observe(ref, out);
        issued += static_cast<int>(sp.drainRequests().size());
    }
    EXPECT_GT(issued, 0);
}

TEST(StrideTest, PrefetchesFollowStride)
{
    StrideConfig cfg;
    cfg.degree = 2;
    StridePrefetcher sp(cfg);
    MemRef ref;
    ref.pc = 0x400;
    HierOutcome out;
    out.level = HitLevel::Memory;
    std::vector<PrefetchRequest> reqs;
    for (int i = 0; i < 8; i++) {
        ref.addr = 0x100000 + static_cast<Addr>(i) * 256;
        sp.observe(ref, out);
        for (auto &r : sp.drainRequests())
            reqs.push_back(r);
    }
    ASSERT_FALSE(reqs.empty());
    EXPECT_EQ(reqs.back().target, ref.addr + 2 * 256);
    EXPECT_FALSE(reqs.back().intoL1);
}

TEST(StrideTest, IrregularStreamStaysQuiet)
{
    StridePrefetcher sp(StrideConfig{});
    Rng rng(9);
    MemRef ref;
    ref.pc = 0x400;
    HierOutcome out;
    out.level = HitLevel::Memory;
    int issued = 0;
    for (int i = 0; i < 200; i++) {
        ref.addr = 0x100000 + rng.below(1 << 22);
        sp.observe(ref, out);
        issued += static_cast<int>(sp.drainRequests().size());
    }
    EXPECT_LT(issued, 10);
}

} // namespace
} // namespace ltc
