/**
 * @file
 * Integration tests reproducing the paper's headline comparisons at
 * miniature scale, plus whole-pipeline determinism.
 */

#include <gtest/gtest.h>

#include "core/ltcords.hh"
#include "pred/dbcp.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"
#include "trace/workloads.hh"

namespace ltc
{
namespace
{

/** Big multi-array scan whose signature set exceeds a small table. */
std::unique_ptr<TraceSource>
bigScan()
{
    std::vector<ScanArray> arrays;
    for (unsigned i = 0; i < 3; i++) {
        ScanArray a;
        a.base = 0x10000000 + static_cast<Addr>(i) * 0x4000000;
        a.blocks = 16 << 10;
        a.accessesPerBlock = 2;
        a.pc = 0x1000 + i * 0x40;
        arrays.push_back(a);
    }
    return std::make_unique<StridedScanSource>(std::move(arrays), 2);
}

constexpr std::uint64_t bigScanIter = 3 * (16 << 10) * 2;

TEST(HeadlineTest, LtCordsMatchesUnlimitedDbcp)
{
    // Headline claim 1: LT-cords with practical on-chip storage
    // achieves the coverage of a last-touch predictor with unlimited
    // storage.
    auto src = bigScan();
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    auto ltc_stats = runWithOpportunity(HierarchyConfig{}, &ltc, *src,
                                        6 * bigScanIter);

    src = bigScan();
    Dbcp oracle(DbcpConfig{}); // unlimited
    auto oracle_stats = runWithOpportunity(HierarchyConfig{}, &oracle,
                                           *src, 6 * bigScanIter);

    EXPECT_GT(oracle_stats.coverage(), 0.6);
    EXPECT_GT(ltc_stats.coverage(), 0.85 * oracle_stats.coverage());
}

TEST(HeadlineTest, LtCordsBeatsFiniteDbcpOnLargeFootprint)
{
    // Headline claim 2: a practically-sized on-chip correlation table
    // cannot hold the signatures of footprint-scale workloads.
    auto src = bigScan();
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    auto ltc_stats = runWithOpportunity(HierarchyConfig{}, &ltc, *src,
                                        6 * bigScanIter);

    src = bigScan();
    DbcpConfig finite_cfg;
    finite_cfg.tableEntries = 16 * 1024; // << 48K signatures
    Dbcp finite(finite_cfg);
    auto finite_stats = runWithOpportunity(HierarchyConfig{}, &finite,
                                           *src, 6 * bigScanIter);

    EXPECT_GT(ltc_stats.coverage(), 2.0 * finite_stats.coverage());
}

TEST(HeadlineTest, OnChipStorageIsTwoOrdersSmaller)
{
    // LT-cords on-chip state vs the unlimited-DBCP table it matches:
    // ~214KB vs tens of MB in the paper; at our scale the oracle
    // stores ~50K signatures x 8B = ~400KB+ while LT-cords' on-chip
    // state is fixed and most of its data lives off chip.
    auto src = bigScan();
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    runWithOpportunity(HierarchyConfig{}, &ltc, *src, 4 * bigScanIter);
    EXPECT_LT(ltc.onChipBytes(), 256u * 1024u);
    EXPECT_GT(ltc.storage().recordedTotal(), 40u * 1024u);
}

TEST(HeadlineTest, NoPredictorHelpsRandomAccess)
{
    HashProbeParams p;
    p.base = 0x10000000;
    p.blocks = 1 << 15;
    for (const char *name : {"lt-cords", "dbcp-unlimited", "ghb"}) {
        HashProbeSource src(p);
        auto pred = makePredictor(name, paperHierarchy());
        auto stats = runWithOpportunity(paperHierarchy(), pred.get(),
                                        src, 200000);
        EXPECT_LT(stats.coverage(), 0.05) << name;
    }
}

TEST(HeadlineTest, GhbCoversStridesButNotChases)
{
    // Delta correlation works on regular layouts (gap-like streams)
    // and fails on pointer chasing; address correlation covers both
    // when sequences recur (Section 5.7's comparison).
    auto ghb_on = [](TraceSource &src, std::uint64_t refs) {
        auto pred = makePredictor("ghb", paperHierarchy());
        TimingConfig cfg;
        TimingSim sim(cfg, pred.get());
        sim.run(src, refs);
        return sim.stats();
    };
    // Fresh-memory stream: GHB should generate useful prefetches.
    ScanArray fresh;
    fresh.base = 0x10000000;
    fresh.blocks = 8 << 10;
    fresh.accessesPerBlock = 8;
    fresh.advancePerIter = (8 << 10) * 64;
    StridedScanSource stream({fresh}, 4);
    auto s1 = ghb_on(stream, 200000);
    EXPECT_GT(s1.correct + s1.partial, 1000u);

    PointerChaseParams p;
    p.nodes = 1 << 15;
    p.seed = 3;
    PointerChaseSource chase(p);
    auto s2 = ghb_on(chase, 200000);
    EXPECT_LT(s2.correct + s2.partial, 500u);
}

TEST(IntegrationTest, WholePipelineDeterministic)
{
    auto run_once = [] {
        auto src = makeWorkload("mcf", 1);
        LtCords ltc(paperLtcords(HierarchyConfig{}));
        TraceEngine engine(HierarchyConfig{}, &ltc);
        engine.run(*src, 300000);
        const auto &s = engine.stats();
        return std::tuple(s.l1Misses, s.correct, s.uselessPrefetches,
                          s.early,
                          s.traffic.bytes(Traffic::SequenceFetch));
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, TimingDeterministic)
{
    auto run_once = [] {
        auto src = makeWorkload("em3d", 1);
        TimingConfig cfg;
        auto pred = makePredictor("lt-cords", cfg.hier, true);
        TimingSim sim(cfg, pred.get());
        sim.run(*src, 150000);
        const auto s = sim.stats();
        return std::tuple(s.cycles, s.instructions, s.l1Misses,
                          s.correct);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, EarlyEvictionsAreRare)
{
    // Accurate dead-block prediction places prefetches without
    // polluting: early evictions stay a small fraction of
    // opportunity (Fig. 8 shows them as a thin sliver).
    auto src = bigScan();
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    auto stats = runWithOpportunity(HierarchyConfig{}, &ltc, *src,
                                    6 * bigScanIter);
    EXPECT_LT(static_cast<double>(stats.early),
              0.05 * static_cast<double>(stats.opportunity));
}

/**
 * Property sweep over signature cache sizes (Fig. 9's experiment as
 * a monotonicity test): more signature-cache entries never hurt
 * much, and very small caches lose coverage.
 */
class SigCacheSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SigCacheSweep, CoverageReasonable)
{
    LtcordsConfig cfg = paperLtcords(HierarchyConfig{});
    cfg.sigCacheEntries = GetParam();
    cfg.sigCacheAssoc = 8;
    auto src = bigScan();
    LtCords ltc(cfg);
    auto stats = runWithOpportunity(HierarchyConfig{}, &ltc, *src,
                                    5 * bigScanIter);
    if (GetParam() >= 8192) {
        EXPECT_GT(stats.coverage(), 0.5) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SigCacheSweep,
                         ::testing::Values(512, 2048, 8192, 32768));

} // namespace
} // namespace ltc
