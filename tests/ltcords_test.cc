/**
 * @file
 * Tests for the LT-cords core: signature cache, off-chip sequence
 * storage and the full predictor.
 */

#include <gtest/gtest.h>

#include "core/ltcords.hh"
#include "core/sequence_storage.hh"
#include "core/signature_cache.hh"
#include "sim/trace_engine.hh"
#include "trace/primitives.hh"

namespace ltc
{
namespace
{

//
// SignatureCache
//

SigCacheEntry
entry(std::uint64_t key, Addr repl = 0x1000, std::uint32_t frame = 0,
      std::uint32_t offset = 0)
{
    SigCacheEntry e;
    e.key = key;
    e.replacement = repl;
    e.victim = repl + 64;
    e.confidence = 2;
    e.frame = frame;
    e.offset = offset;
    return e;
}

TEST(SignatureCacheTest, InsertLookup)
{
    SignatureCache sc(16, 2);
    sc.insert(entry(0x1234));
    auto *e = sc.lookup(0x1234);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->replacement, 0x1000u);
    EXPECT_EQ(sc.lookup(0x9999), nullptr);
    EXPECT_EQ(sc.hits(), 1u);
    EXPECT_EQ(sc.lookups(), 2u);
}

TEST(SignatureCacheTest, FifoEvictionOrder)
{
    SignatureCache sc(4, 2); // 2 sets x 2 ways
    // Keys 0, 2, 4 all map to set 0 (low bit selects the set).
    sc.insert(entry(0));
    sc.insert(entry(2));
    sc.insert(entry(4)); // evicts key 0 (oldest fill)
    EXPECT_EQ(sc.lookup(0), nullptr);
    EXPECT_NE(sc.lookup(2), nullptr);
    EXPECT_NE(sc.lookup(4), nullptr);
    EXPECT_EQ(sc.fifoEvictions(), 1u);
}

TEST(SignatureCacheTest, FifoIgnoresLookupRecency)
{
    SignatureCache sc(4, 2);
    sc.insert(entry(0));
    sc.insert(entry(2));
    sc.lookup(0); // touching must not save it under FIFO
    sc.insert(entry(4));
    EXPECT_EQ(sc.lookup(0), nullptr);
}

TEST(SignatureCacheTest, ReinsertRefreshesInPlace)
{
    SignatureCache sc(4, 2);
    sc.insert(entry(0, 0x1000));
    sc.insert(entry(2, 0x2000));
    sc.insert(entry(0, 0x3000)); // refresh, keeps FIFO position
    EXPECT_EQ(sc.occupancy(), 2u);
    EXPECT_EQ(sc.lookup(0)->replacement, 0x3000u);
    sc.insert(entry(4, 0x4000)); // still evicts key 0 first
    EXPECT_EQ(sc.lookup(0), nullptr);
}

TEST(SignatureCacheTest, InvalidateFrame)
{
    SignatureCache sc(16, 2);
    sc.insert(entry(1, 0x1000, /*frame=*/3));
    sc.insert(entry(2, 0x2000, /*frame=*/5));
    sc.invalidateFrame(3);
    EXPECT_EQ(sc.lookup(1), nullptr);
    EXPECT_NE(sc.lookup(2), nullptr);
}

TEST(SignatureCacheTest, StorageBytesMatchesPaper)
{
    // 32K entries x 42 bits = 168KB... the paper's 204KB counts the
    // index overhead differently; our model reports the entry bits.
    SignatureCache sc(32 * 1024, 2);
    EXPECT_EQ(sc.storageBytes(), 32u * 1024u * 42u / 8u);
}

TEST(SignatureCacheTest, ClearAndOccupancy)
{
    SignatureCache sc(8, 2);
    sc.insert(entry(1));
    sc.insert(entry(2));
    EXPECT_EQ(sc.occupancy(), 2u);
    sc.clear();
    EXPECT_EQ(sc.occupancy(), 0u);
}

TEST(SignatureCacheDeathTest, BadGeometry)
{
    EXPECT_DEATH(SignatureCache(10, 3), "multiple of assoc");
}

//
// SequenceStorage
//

LtcordsConfig
tinyStorageConfig()
{
    LtcordsConfig c;
    c.numFrames = 16;
    c.fragmentSignatures = 8;
    c.headLookahead = 4;
    return c;
}

TEST(SequenceStorageTest, RecordFillsFragments)
{
    SequenceStorage st(tinyStorageConfig());
    for (std::uint64_t i = 0; i < 20; i++)
        st.record(1000 + i, i * 64, i * 64 + 4096);
    EXPECT_EQ(st.recordedTotal(), 20u);
    EXPECT_GE(st.framesInUse(), 2u); // 20 sigs / 8 per fragment
    EXPECT_EQ(st.residentSignatures(), 20u);
}

TEST(SequenceStorageTest, SignaturesReadableThroughPointer)
{
    SequenceStorage st(tinyStorageConfig());
    st.record(42, 0xAAA0, 0xBBB0);
    // Find it by scanning frames.
    const StoredSignature *found = nullptr;
    for (std::uint32_t f = 0; f < 16; f++) {
        if (st.frameValid(f) && st.frameFill(f) > 0)
            found = st.at(f, 0);
    }
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->key, 42u);
    EXPECT_EQ(found->replacement, 0xAAA0u);
    EXPECT_EQ(found->victim, 0xBBB0u);
    EXPECT_EQ(found->confidence, 2u); // initialised to 2 (Section 4.4)
}

TEST(SequenceStorageTest, HeadLookaheadSelectsEarlierKey)
{
    SequenceStorage st(tinyStorageConfig());
    // Fill the first fragment (8 sigs); fragment 2 begins at sig 8,
    // whose head is the key recorded 4 positions earlier (sig 4).
    for (std::uint64_t i = 0; i < 9; i++)
        st.record(100 + i, i, i);
    auto frame = st.frameForHead(104); // key of sig index 4
    EXPECT_TRUE(frame.has_value());
}

TEST(SequenceStorageTest, FrameConflictInvokesCallback)
{
    LtcordsConfig c = tinyStorageConfig();
    c.numFrames = 1; // every fragment maps to frame 0
    SequenceStorage st(c);
    std::uint32_t reallocated = 999;
    st.setReallocCallback([&](std::uint32_t f) { reallocated = f; });
    for (std::uint64_t i = 0; i < 20; i++)
        st.record(i, i, i);
    EXPECT_EQ(reallocated, 0u);
    EXPECT_GT(st.frameConflicts(), 0u);
}

TEST(SequenceStorageTest, ConfidenceUpdateThroughPointer)
{
    SequenceStorage st(tinyStorageConfig());
    st.record(1, 0x100, 0x200);
    std::uint32_t frame = 0;
    for (std::uint32_t f = 0; f < 16; f++)
        if (st.frameValid(f))
            frame = f;
    st.updateConfidence(frame, 0, 0);
    EXPECT_EQ(st.at(frame, 0)->confidence, 0u);
    // Stale pointer (past fill) is ignored, not fatal.
    st.updateConfidence(frame, 7, 3);
}

TEST(SequenceStorageTest, TrafficAccounting)
{
    SequenceStorage st(tinyStorageConfig());
    for (int i = 0; i < 10; i++)
        st.record(static_cast<std::uint64_t>(i), 0, 0);
    EXPECT_EQ(st.drainWriteBytes(), 10u * 5u); // 5B per signature
    EXPECT_EQ(st.drainWriteBytes(), 0u);       // drained
    st.noteStreamRead(4);
    EXPECT_EQ(st.drainReadBytes(), 20u);
}

TEST(SequenceStorageTest, ClearEmpties)
{
    SequenceStorage st(tinyStorageConfig());
    for (int i = 0; i < 10; i++)
        st.record(static_cast<std::uint64_t>(i), 0, 0);
    st.clear();
    EXPECT_EQ(st.residentSignatures(), 0u);
    EXPECT_EQ(st.framesInUse(), 0u);
}

TEST(SequenceStorageTest, HeadRingWrapsWithoutSkew)
{
    // Regression for the head-history ring: with a non-power-of-two
    // lookahead the ring cursor must wrap explicitly (indexing a
    // monotonic counter with `% size` skews slot selection once the
    // counter wraps). Pin the fixed semantics directly: across many
    // fragments, every new fragment's head is exactly the key
    // recorded `headLookahead` positions before the fragment start.
    LtcordsConfig c;
    c.numFrames = 4096;
    c.fragmentSignatures = 5;
    c.headLookahead = 3; // non-power-of-two
    SequenceStorage st(c);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 2000; i++) {
        // Distinct keys spread over the frame index space.
        const std::uint64_t key = i * 2654435761u + 17;
        if (!keys.empty() && keys.size() % c.fragmentSignatures == 0 &&
            keys.size() >= c.headLookahead) {
            // This record starts a fragment whose head must be the
            // key recorded `headLookahead` positions earlier.
            const std::uint64_t head =
                keys[keys.size() - c.headLookahead];
            st.record(key, 0, 0);
            auto frame = st.frameForHead(head);
            ASSERT_TRUE(frame.has_value())
                << "fragment at record " << keys.size()
                << " not linked to its head";
            ASSERT_NE(st.at(*frame, 0), nullptr);
            EXPECT_EQ(st.at(*frame, 0)->key, key);
        } else {
            st.record(key, 0, 0);
        }
        keys.push_back(key);
    }
    st.auditInvariants();
}

TEST(SequenceStorageTest, AdversarialStreamsKeepInvariants)
{
    // Property test: colliding frames (tiny frame count), fragment
    // overflow mid-stream (tiny fragments), and a realloc callback
    // that re-enters the storage's query interface — the invariant
    // audit must stay green throughout.
    LtcordsConfig c;
    c.numFrames = 2; // nearly every fragment collides
    c.fragmentSignatures = 3;
    c.headLookahead = 5; // longer than a fragment
    SequenceStorage st(c);
    std::uint64_t reallocs = 0;
    st.setReallocCallback([&](std::uint32_t frame) {
        reallocs++;
        // Reentrancy: the owner invalidating on-chip copies may query
        // the storage (and push a stale confidence) mid-realloc.
        EXPECT_LT(frame, 2u);
        st.frameFill(frame);
        st.frameValid(frame);
        st.updateConfidence(frame, 99, 1); // stale: must be ignored
        st.frameForHead(0xdead);
    });
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 5000; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        st.record(x, x & ~std::uint64_t{63}, (x >> 8) & ~std::uint64_t{63});
        if (i % 257 == 0)
            st.auditInvariants();
    }
    st.auditInvariants();
    EXPECT_GT(reallocs, 0u);
    EXPECT_EQ(st.recordedTotal(), 5000u);
    // Collisions bound residency: at most numFrames full fragments.
    EXPECT_LE(st.residentSignatures(),
              static_cast<std::uint64_t>(c.numFrames) *
                  c.fragmentSignatures);
    st.clear();
    st.auditInvariants();
}

TEST(SequenceStorageTest, CapacityMatchesPaper)
{
    LtcordsConfig paper = LtcordsConfig::paper();
    EXPECT_EQ(paper.offChipSignatures(), 4096ull * 8192ull); // 32M
    EXPECT_EQ(paper.offChipBytes(), 4096ull * 8192ull * 5ull);
    EXPECT_NEAR(static_cast<double>(paper.offChipBytes()) /
                    (1024.0 * 1024.0),
                160.0, 1.0); // 160MB (Section 5.6)
}

//
// LtCords predictor end to end
//

CoverageStats
runLtcScan(const LtcordsConfig &cfg, std::uint64_t blocks,
           std::uint64_t refs)
{
    LtCords ltc(cfg);
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = blocks;
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);
    return runWithOpportunity(HierarchyConfig{}, &ltc, src, refs);
}

LtcordsConfig
testLtcConfig()
{
    LtcordsConfig c;
    c.l1Sets = 512;
    c.lineBytes = 64;
    return c;
}

TEST(LtCordsTest, CoversRepetitiveScan)
{
    auto stats = runLtcScan(testLtcConfig(), 4096, 10 * 8192);
    EXPECT_GT(stats.coverage(), 0.6);
    EXPECT_LT(static_cast<double>(stats.uselessPrefetches),
              0.05 * static_cast<double>(stats.opportunity));
}

TEST(LtCordsTest, NoCoverageWithoutRecurrence)
{
    // A single sweep never recurs: everything is training.
    auto stats = runLtcScan(testLtcConfig(), 8192, 16384);
    EXPECT_EQ(stats.correct, 0u);
}

TEST(LtCordsTest, SmallSignatureCacheStillWorks)
{
    // The stream is followed through sliding windows, so a signature
    // cache far smaller than the footprint retains most coverage
    // (Fig. 9's plateau).
    LtcordsConfig small = testLtcConfig();
    small.sigCacheEntries = 4096;
    small.sigCacheAssoc = 8;
    auto stats = runLtcScan(small, 8192, 10 * 16384);
    EXPECT_GT(stats.coverage(), 0.5);
}

TEST(LtCordsTest, StatsExported)
{
    LtCords ltc(testLtcConfig());
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 2048;
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);
    runWithOpportunity(HierarchyConfig{}, &ltc, src, 5 * 4096);
    StatSet s("ltc");
    ltc.exportStats(s);
    EXPECT_GT(s.get("signatures_recorded"), 0.0);
    EXPECT_GT(s.get("signatures_streamed"), 0.0);
    EXPECT_GT(s.get("head_activations"), 0.0);
    EXPECT_GT(s.get("predictions"), 0.0);
}

TEST(LtCordsTest, MetaTrafficReported)
{
    LtCords ltc(testLtcConfig());
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 2048;
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);
    TraceEngine engine(HierarchyConfig{}, &ltc);
    engine.run(src, 5 * 4096);
    const auto &traffic = engine.stats().traffic;
    EXPECT_GT(traffic.bytes(Traffic::SequenceCreate), 0u);
    EXPECT_GT(traffic.bytes(Traffic::SequenceFetch), 0u);
}

TEST(LtCordsTest, OnChipBudgetIsPractical)
{
    // Headline claim: ~214KB of on-chip storage (204KB signature
    // cache + 10KB sequence tag array).
    LtCords ltc(LtcordsConfig::paper());
    const double kb = static_cast<double>(ltc.onChipBytes()) / 1024.0;
    EXPECT_LT(kb, 230.0);
    EXPECT_GT(kb, 150.0);
}

TEST(LtCordsTest, StreamLatencyDefersInstallation)
{
    LtcordsConfig cfg = testLtcConfig();
    cfg.modelStreamLatency = true;
    cfg.streamLatencyCycles = 1'000'000'000; // effectively never
    LtCords ltc(cfg);
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 1024;
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);
    // Without setNow() advancing past the stream latency, signatures
    // never arrive and coverage stays zero.
    auto stats = runWithOpportunity(HierarchyConfig{}, &ltc, src,
                                    6 * 2048);
    EXPECT_EQ(stats.correct, 0u);
}

TEST(LtCordsTest, ClearForgetsEverything)
{
    LtCords ltc(testLtcConfig());
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 1024;
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);
    runWithOpportunity(HierarchyConfig{}, &ltc, src, 6 * 2048);
    ltc.clear();
    EXPECT_EQ(ltc.storage().recordedTotal(), 0u);
    EXPECT_EQ(ltc.signatureCache().occupancy(), 0u);
}

TEST(LtCordsTest, ConfidenceFeedbackReachesStorage)
{
    LtCords ltc(testLtcConfig());
    ScanArray a;
    a.base = 0x10000000;
    a.blocks = 4096; // must exceed the L1 so evictions happen
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);
    runWithOpportunity(HierarchyConfig{}, &ltc, src, 8 * 8192);
    StatSet s("ltc");
    ltc.exportStats(s);
    // Correct predictions produce confidence increments.
    EXPECT_GT(s.get("confidence_ups"), 0.0);
}

/** Fragment-size sweep: coverage is insensitive above ~256 sigs. */
class FragmentSizeProperty
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FragmentSizeProperty, ScanCoverageHolds)
{
    LtcordsConfig cfg = testLtcConfig();
    cfg.fragmentSignatures = GetParam();
    auto stats = runLtcScan(cfg, 4096, 10 * 8192);
    EXPECT_GT(stats.coverage(), 0.45)
        << "fragment=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fragments, FragmentSizeProperty,
                         ::testing::Values(256, 512, 1024, 2048));

} // namespace
} // namespace ltc
