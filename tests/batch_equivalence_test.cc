/**
 * @file
 * Batch/scalar equivalence property suite.
 *
 * The batched kernel (TraceSource::fill + the engines' batched run
 * loops) must be indistinguishable from the scalar next()/step()
 * path: identical reference streams for every adapter under any
 * batch-size schedule, and identical CoverageStats/TimingStats from
 * both engines. These tests drive every TraceSource implementation
 * and both engines through the two paths and compare exactly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/file_trace.hh"
#include "trace/primitives.hh"
#include "trace/trace.hh"
#include "trace/workloads.hh"
#include "util/random.hh"

namespace ltc
{
namespace
{

/** Factory for one adapter under test. */
struct SourceCase
{
    std::string name;
    std::unique_ptr<TraceSource> (*make)();
};

std::vector<MemRef>
sampleRefs(std::size_t n)
{
    std::vector<MemRef> refs;
    Rng rng(99);
    Addr addr = 0x1000;
    for (std::size_t i = 0; i < n; i++) {
        MemRef r;
        r.pc = 0x400000 + (i % 7) * 4;
        addr += (rng.below(5) + 1) * 64;
        r.addr = addr;
        r.op = rng.chance(0.3) ? MemOp::Store : MemOp::Load;
        r.nonMemGap = static_cast<std::uint32_t>(rng.below(9));
        r.dependsOnPrev = rng.chance(0.25);
        refs.push_back(r);
    }
    return refs;
}

std::unique_ptr<TraceSource>
makeVector()
{
    return std::make_unique<VectorTrace>(sampleRefs(10'000));
}

std::unique_ptr<TraceSource>
makeLimited()
{
    PointerChaseParams p;
    p.nodes = 512;
    p.seed = 3;
    return std::make_unique<LimitSource>(
        std::make_unique<PointerChaseSource>(p), 7'777);
}

std::unique_ptr<TraceSource>
makeShifted()
{
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 300;
    a.accessesPerBlock = 3;
    return std::make_unique<ShiftSource>(
        std::make_unique<StridedScanSource>(std::vector<ScanArray>{a},
                                            2),
        0x40000000);
}

std::unique_ptr<TraceSource>
makeCapture()
{
    return std::make_unique<CaptureSource>(
        std::make_unique<VectorTrace>(sampleRefs(5'000)), 5'000);
}

std::unique_ptr<TraceSource>
makeScan()
{
    ScanArray a;
    a.base = 0x2000000;
    a.blocks = 1024;
    a.accessesPerBlock = 2;
    ScanArray b;
    b.base = 0x4000000;
    b.blocks = 97;
    b.accessesPerBlock = 1;
    b.stores = true;
    return std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a, b}, 3);
}

std::unique_ptr<TraceSource>
makeChase()
{
    PointerChaseParams p;
    p.nodes = 2048;
    p.seed = 11;
    p.mutateEveryIters = 2;
    p.mutateFraction = 0.05;
    return std::make_unique<PointerChaseSource>(p);
}

std::unique_ptr<TraceSource>
makeTree()
{
    TreeWalkParams p;
    p.nodes = 1023;
    p.regularLayout = false;
    p.seed = 17;
    p.accessesPerNode = 2;
    return std::make_unique<TreeWalkSource>(p);
}

std::unique_ptr<TraceSource>
makeHash()
{
    HashProbeParams p;
    p.blocks = 4096;
    p.hotFraction = 0.4;
    p.seed = 23;
    return std::make_unique<HashProbeSource>(p);
}

std::unique_ptr<TraceSource>
makeInterleave()
{
    // A finite child (vector) interleaved with an infinite one and a
    // second finite one: exercises the child-exhaustion path.
    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(std::make_unique<VectorTrace>(sampleRefs(1'000)));
    ScanArray a;
    a.base = 0x3000000;
    a.blocks = 128;
    kids.push_back(std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a}, 1));
    kids.push_back(std::make_unique<VectorTrace>(sampleRefs(321)));
    return std::make_unique<InterleaveSource>(
        std::move(kids), std::vector<std::uint32_t>{5, 3, 2});
}

std::unique_ptr<TraceSource>
makePhases()
{
    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(std::make_unique<VectorTrace>(sampleRefs(2'000)));
    ScanArray a;
    a.base = 0x5000000;
    a.blocks = 64;
    kids.push_back(std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a}, 2));
    return std::make_unique<PhaseSequenceSource>(
        std::move(kids), std::vector<std::uint64_t>{700, 450});
}

std::unique_ptr<TraceSource>
makeWorkloadMcf()
{
    return makeWorkload("mcf");
}

const SourceCase kSources[] = {
    {"vector", makeVector},       {"limit", makeLimited},
    {"shift", makeShifted},       {"capture", makeCapture},
    {"scan", makeScan},           {"chase", makeChase},
    {"tree", makeTree},           {"hash", makeHash},
    {"interleave", makeInterleave}, {"phases", makePhases},
    {"workload:mcf", makeWorkloadMcf},
};

/** Deterministic "random" batch-size schedule. */
std::size_t
nextBatchSize(Rng &rng)
{
    static const std::size_t sizes[] = {1, 2, 3, 7, 64, 255, 256,
                                        257, 1000};
    return sizes[rng.below(std::size(sizes))];
}

constexpr std::uint64_t kStreamRefs = 60'000;

// ---------------------------------------------------------- streams

TEST(BatchEquivalence, FillMatchesNextForEveryAdapter)
{
    for (const SourceCase &c : kSources) {
        SCOPED_TRACE(c.name);
        auto scalar = c.make();
        auto batched = c.make();

        Rng rng(1234);
        std::vector<MemRef> buf(1000);
        std::uint64_t produced = 0;
        bool scalar_ended = false;
        while (produced < kStreamRefs && !scalar_ended) {
            const std::size_t want = nextBatchSize(rng);
            const std::size_t got = batched->fill({buf.data(), want});
            for (std::size_t i = 0; i < got; i++) {
                MemRef ref;
                ASSERT_TRUE(scalar->next(ref))
                    << "scalar ended before batch at record "
                    << produced + i;
                ASSERT_TRUE(ref == buf[i])
                    << "divergence at record " << produced + i;
            }
            produced += got;
            if (got < want) {
                MemRef ref;
                EXPECT_FALSE(scalar->next(ref))
                    << "batch ended early at record " << produced;
                scalar_ended = true;
            }
        }
    }
}

TEST(BatchEquivalence, FillMatchesNextAfterReset)
{
    for (const SourceCase &c : kSources) {
        SCOPED_TRACE(c.name);
        auto src = c.make();

        // Consume a prefix via fill, reset, then replay via next and
        // compare against a second fill pass: reset must restart the
        // identical stream whichever path consumed it.
        std::vector<MemRef> first(4'000);
        const std::size_t got =
            src->fill({first.data(), first.size()});
        src->reset();
        std::vector<MemRef> second;
        MemRef ref;
        while (second.size() < got && src->next(ref))
            second.push_back(ref);
        ASSERT_EQ(second.size(), got);
        for (std::size_t i = 0; i < got; i++)
            ASSERT_TRUE(first[i] == second[i]) << "record " << i;
    }
}

TEST(BatchEquivalence, FileTraceFillMatchesNext)
{
    const std::string path = testing::TempDir() + "batch_equiv.ltct";
    auto src = makeScan();
    ASSERT_EQ(captureToFile(*src, path, 50'000, nullptr,
                            /*chunk_records=*/512),
              TraceErrc::Ok);

    FileTrace scalar(path);
    FileTrace batched(path);
    Rng rng(77);
    std::vector<MemRef> buf(1000);
    std::uint64_t produced = 0;
    for (;;) {
        const std::size_t want = nextBatchSize(rng);
        const std::size_t got = batched.fill({buf.data(), want});
        for (std::size_t i = 0; i < got; i++) {
            MemRef ref;
            ASSERT_TRUE(scalar.next(ref));
            ASSERT_TRUE(ref == buf[i])
                << "divergence at record " << produced + i;
        }
        produced += got;
        if (got < want)
            break;
    }
    MemRef ref;
    EXPECT_FALSE(scalar.next(ref));
    EXPECT_EQ(produced, 50'000u);
}

// ---------------------------------------------------------- engines

void
expectSameCoverage(const CoverageStats &a, const CoverageStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.correct, b.correct);
    EXPECT_EQ(a.uselessPrefetches, b.uselessPrefetches);
    EXPECT_EQ(a.early, b.early);
    for (unsigned t = 0;
         t < static_cast<unsigned>(Traffic::NumClasses); t++) {
        EXPECT_EQ(a.traffic.bytes(static_cast<Traffic>(t)),
                  b.traffic.bytes(static_cast<Traffic>(t)))
            << "traffic class " << t;
    }
}

/** Engine-level property: run() == manual next()+step() loop. */
void
checkTraceEngine(const std::string &pred_name,
                 const HierarchyConfig &hc = paperHierarchy(),
                 std::uint64_t refs = 120'000)
{
    SCOPED_TRACE(pred_name);

    auto src_batch = makeWorkload("mcf");
    auto pred_batch = makePredictor(pred_name, hc);
    TraceEngine batched(hc, pred_batch.get());
    // Split the budget over several run() calls so batch remainders
    // and re-entry are covered too.
    std::uint64_t done = 0;
    done += batched.run(*src_batch, 50'000);
    done += batched.run(*src_batch, 1);
    done += batched.run(*src_batch, refs - done);
    ASSERT_EQ(done, refs);

    auto src_scalar = makeWorkload("mcf");
    auto pred_scalar = makePredictor(pred_name, hc);
    TraceEngine scalar(hc, pred_scalar.get());
    MemRef ref;
    for (std::uint64_t i = 0; i < refs; i++) {
        ASSERT_TRUE(src_scalar->next(ref));
        scalar.step(ref);
    }

    expectSameCoverage(batched.stats(), scalar.stats());
    EXPECT_EQ(batched.hierarchy().accesses(),
              scalar.hierarchy().accesses());
    EXPECT_EQ(batched.hierarchy().l1Misses(),
              scalar.hierarchy().l1Misses());
    EXPECT_EQ(batched.hierarchy().l2Misses(),
              scalar.hierarchy().l2Misses());
    EXPECT_EQ(batched.hierarchy().l1d().accesses(),
              scalar.hierarchy().l1d().accesses());
    EXPECT_EQ(batched.hierarchy().l1d().misses(),
              scalar.hierarchy().l1d().misses());
    EXPECT_EQ(batched.hierarchy().l1d().evictions(),
              scalar.hierarchy().l1d().evictions());
    EXPECT_EQ(batched.hierarchy().l2().accesses(),
              scalar.hierarchy().l2().accesses());
    EXPECT_EQ(batched.hierarchy().l2().misses(),
              scalar.hierarchy().l2().misses());
}

TEST(BatchEquivalence, TraceEngineBaselineKernel)
{
    // pred == nullptr exercises the trimmed runBaseline kernel.
    checkTraceEngine("none");
}

TEST(BatchEquivalence, TraceEngineWithPredictors)
{
    checkTraceEngine("lt-cords");
    checkTraceEngine("ghb");
    checkTraceEngine("dbcp");
}

TEST(BatchEquivalence, TraceEngineReplacementPolicies)
{
    // Every policy plugin, through both the trimmed baseline kernel
    // ("none") and the full predicted kernel. Random's per-conflict
    // RNG draw order and DeadBlock's markDead wiring are part of the
    // batched/scalar contract.
    for (const ReplPolicy p : allReplPolicies) {
        SCOPED_TRACE(replPolicyName(p));
        HierarchyConfig hc = paperHierarchy();
        hc.l1d.policy = p;
        hc.l2.policy = p;
        checkTraceEngine("none", hc, 60'000);
        checkTraceEngine("lt-cords", hc, 60'000);
    }
}

TEST(BatchEquivalence, TraceEngineWritebackModelling)
{
    // modelWritebacks disables the trimmed baseline kernel (its
    // listeners are bypassed there); the general kernel must carry
    // the writeback charges identically on both paths.
    HierarchyConfig hc = paperHierarchy();
    hc.modelWritebacks = true;
    checkTraceEngine("none", hc, 60'000);
    checkTraceEngine("lt-cords", hc, 60'000);
}

TEST(BatchEquivalence, TimingEngineMatchesScalar)
{
    for (const char *pred_name : {"none", "lt-cords"}) {
        SCOPED_TRACE(pred_name);
        const std::uint64_t refs = 60'000;

        auto src_batch = makeWorkload("em3d");
        auto pred_batch = makePredictor(pred_name, paperHierarchy(),
                                        true);
        TimingSim batched(paperTiming(), pred_batch.get());
        ASSERT_EQ(batched.run(*src_batch, refs), refs);

        auto src_scalar = makeWorkload("em3d");
        auto pred_scalar = makePredictor(pred_name, paperHierarchy(),
                                         true);
        TimingSim scalar(paperTiming(), pred_scalar.get());
        MemRef ref;
        for (std::uint64_t i = 0; i < refs; i++) {
            ASSERT_TRUE(src_scalar->next(ref));
            scalar.step(ref);
        }

        const TimingStats a = batched.stats();
        const TimingStats b = scalar.stats();
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.accesses, b.accesses);
        EXPECT_EQ(a.l1Misses, b.l1Misses);
        EXPECT_EQ(a.l2Misses, b.l2Misses);
        EXPECT_EQ(a.correct, b.correct);
        EXPECT_EQ(a.partial, b.partial);
        EXPECT_EQ(a.useless, b.useless);
        EXPECT_EQ(a.dropped, b.dropped);
        EXPECT_EQ(a.missLatencyTotal, b.missLatencyTotal);
        EXPECT_EQ(a.memBusBusy, b.memBusBusy);
        EXPECT_EQ(a.l1l2BusBusy, b.l1l2BusBusy);
    }
}

/**
 * The baseline kernel must also agree for geometries outside the
 * specialized (L1 assoc, L2 assoc) dispatch table, and interleave
 * with manual step() calls without drift.
 */
TEST(BatchEquivalence, BaselineKernelGenericGeometryAndMixedUse)
{
    HierarchyConfig hc = paperHierarchy();
    hc.l1d.assoc = 8; // off the dispatch table -> runtime loop
    hc.l2.assoc = 4;

    auto src_batch = makeWorkload("gcc");
    TraceEngine batched(hc, nullptr);
    batched.run(*src_batch, 30'000);
    // Mixed use: scalar steps between batched runs.
    MemRef ref;
    for (int i = 0; i < 1'000; i++) {
        ASSERT_TRUE(src_batch->next(ref));
        batched.step(ref);
    }
    batched.run(*src_batch, 30'000);

    auto src_scalar = makeWorkload("gcc");
    TraceEngine scalar(hc, nullptr);
    for (std::uint64_t i = 0; i < 61'000; i++) {
        ASSERT_TRUE(src_scalar->next(ref));
        scalar.step(ref);
    }

    expectSameCoverage(batched.stats(), scalar.stats());
}

} // namespace
} // namespace ltc
