/**
 * @file
 * Tests for the two-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace ltc
{
namespace
{

HierarchyConfig
smallHier()
{
    HierarchyConfig h;
    h.l1d.sizeBytes = 4 * 2 * 64; // 4 sets x 2 ways
    h.l1d.assoc = 2;
    h.l2.sizeBytes = 16 * 4 * 64; // 16 sets x 4 ways
    h.l2.assoc = 4;
    return h;
}

TEST(HierarchyTest, MissGoesToMemoryThenHits)
{
    CacheHierarchy hier(smallHier());
    auto out = hier.access(0x1000, MemOp::Load);
    EXPECT_EQ(out.level, HitLevel::Memory);
    out = hier.access(0x1000, MemOp::Load);
    EXPECT_EQ(out.level, HitLevel::L1);
    EXPECT_EQ(hier.accesses(), 2u);
    EXPECT_EQ(hier.l1Misses(), 1u);
    EXPECT_EQ(hier.l2Misses(), 1u);
}

TEST(HierarchyTest, L2HitAfterL1Eviction)
{
    CacheHierarchy hier(smallHier());
    // Fill L1 set 0 (blocks aliasing with 4-set L1 but distinct in
    // 16-set L2).
    hier.access(0x0000, MemOp::Load);
    hier.access(0x0400, MemOp::Load);
    hier.access(0x0800, MemOp::Load); // evicts 0x0000 from L1
    auto out = hier.access(0x0000, MemOp::Load);
    EXPECT_EQ(out.level, HitLevel::L2);
}

TEST(HierarchyTest, VictimReported)
{
    CacheHierarchy hier(smallHier());
    hier.access(0x0000, MemOp::Load);
    hier.access(0x0400, MemOp::Load);
    auto out = hier.access(0x0800, MemOp::Load);
    EXPECT_TRUE(out.l1Evicted);
    EXPECT_EQ(out.l1VictimAddr, 0x0000u);
    EXPECT_EQ(out.l1Set, 0u);
}

TEST(HierarchyTest, PerfectL1AlwaysHits)
{
    HierarchyConfig cfg = smallHier();
    cfg.perfectL1 = true;
    CacheHierarchy hier(cfg);
    for (Addr a = 0; a < 100; a++) {
        auto out = hier.access(a * 64, MemOp::Load);
        EXPECT_EQ(out.level, HitLevel::L1);
    }
    EXPECT_EQ(hier.l1Misses(), 0u);
}

TEST(HierarchyTest, PrefetchInstallsIntoBothLevels)
{
    CacheHierarchy hier(smallHier());
    auto pf = hier.prefetch(0x1000, invalidAddr);
    EXPECT_FALSE(pf.alreadyInL1);
    EXPECT_FALSE(pf.l2Hit);
    EXPECT_TRUE(hier.l1d().probe(0x1000));
    EXPECT_TRUE(hier.l2().probe(0x1000));
    // Demand access is an L1 hit on the prefetched block.
    auto out = hier.access(0x1000, MemOp::Load);
    EXPECT_EQ(out.level, HitLevel::L1);
    EXPECT_TRUE(out.l1HitOnPrefetch);
}

TEST(HierarchyTest, PrefetchL2CopyNotMarkedUntouched)
{
    // The L2 waypoint copy must not register as a useless prefetch
    // when it later dies in L2 (the L1 copy tracks usefulness).
    CacheHierarchy hier(smallHier());
    hier.prefetch(0x1000, invalidAddr);
    EXPECT_FALSE(hier.l2().isUntouchedPrefetch(0x1000));
    EXPECT_TRUE(hier.l1d().isUntouchedPrefetch(0x1000));
}

TEST(HierarchyTest, PrefetchReplacesPredictedVictim)
{
    CacheHierarchy hier(smallHier());
    hier.access(0x0000, MemOp::Load);
    hier.access(0x0400, MemOp::Load); // 0x0000 is LRU
    auto pf = hier.prefetch(0x0800, 0x0400);
    EXPECT_TRUE(pf.l1Evicted);
    EXPECT_EQ(pf.l1VictimAddr, 0x0400u);
    EXPECT_TRUE(hier.l1d().probe(0x0000)); // LRU survived
}

TEST(HierarchyTest, PrefetchAlreadyResident)
{
    CacheHierarchy hier(smallHier());
    hier.access(0x1000, MemOp::Load);
    auto pf = hier.prefetch(0x1000, invalidAddr);
    EXPECT_TRUE(pf.alreadyInL1);
}

TEST(HierarchyTest, PrefetchSeesL2Hit)
{
    CacheHierarchy hier(smallHier());
    hier.access(0x0000, MemOp::Load);
    hier.access(0x0400, MemOp::Load);
    hier.access(0x0800, MemOp::Load); // 0x0000 now only in L2
    auto pf = hier.prefetch(0x0000, invalidAddr);
    EXPECT_FALSE(pf.alreadyInL1);
    EXPECT_TRUE(pf.l2Hit);
}

TEST(HierarchyTest, FlushEmptiesBothLevels)
{
    CacheHierarchy hier(smallHier());
    hier.access(0x1000, MemOp::Load);
    hier.flush();
    EXPECT_FALSE(hier.l1d().probe(0x1000));
    EXPECT_FALSE(hier.l2().probe(0x1000));
}

TEST(HierarchyTest, HitLevelNames)
{
    EXPECT_STREQ(hitLevelName(HitLevel::L1), "L1");
    EXPECT_STREQ(hitLevelName(HitLevel::L2), "L2");
    EXPECT_STREQ(hitLevelName(HitLevel::Memory), "memory");
}

TEST(HierarchyDeathTest, MismatchedLineSizesFatal)
{
    HierarchyConfig cfg = smallHier();
    cfg.l2.lineBytes = 128;
    cfg.l2.sizeBytes = 16 * 4 * 128;
    EXPECT_EXIT(CacheHierarchy{cfg}, ::testing::ExitedWithCode(1),
                "line sizes");
}

TEST(HierarchyTest, PaperConfigDefaults)
{
    HierarchyConfig cfg;
    EXPECT_EQ(cfg.l1d.sizeBytes, 64u * 1024u);
    EXPECT_EQ(cfg.l1d.assoc, 2u);
    EXPECT_EQ(cfg.l1d.latency, 2u);
    EXPECT_EQ(cfg.l2.sizeBytes, 1024u * 1024u);
    EXPECT_EQ(cfg.l2.assoc, 8u);
    EXPECT_EQ(cfg.l2.latency, 20u);
}

} // namespace
} // namespace ltc
