/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/cache_config.hh"
#include "cache/set_scan.hh"
#include "util/random.hh"

namespace ltc
{
namespace
{

CacheConfig
tinyConfig(std::uint32_t assoc = 2, ReplPolicy policy = ReplPolicy::LRU)
{
    CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = 4 * 64 * assoc; // 4 sets
    c.assoc = assoc;
    c.lineBytes = 64;
    c.policy = policy;
    return c;
}

/** Listener capturing eviction events. */
struct Recorder : CacheListener
{
    struct Event
    {
        Addr victim;
        Addr incoming;
        std::uint32_t set;
        bool byPrefetch;
        bool victimUntouched;
        bool victimDirty;
        std::uint8_t victimMeta;
    };
    std::vector<Event> events;

    void
    onEviction(Addr victim, Addr incoming, std::uint32_t set,
               bool by_prefetch, bool untouched, bool dirty,
               std::uint8_t victim_meta) override
    {
        events.push_back({victim, incoming, set, by_prefetch,
                          untouched, dirty, victim_meta});
    }
};

TEST(CacheConfigTest, GeometryHelpers)
{
    auto c = CacheConfig::l1d();
    EXPECT_EQ(c.numLines(), 1024u);
    EXPECT_EQ(c.numSets(), 512u);
    c = CacheConfig::l2();
    EXPECT_EQ(c.numLines(), 16384u);
    EXPECT_EQ(c.numSets(), 2048u);
}

TEST(CacheConfigDeathTest, BadGeometryIsFatal)
{
    CacheConfig c;
    c.lineBytes = 48; // not a power of two
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "power of two");
    c = CacheConfig{};
    c.assoc = 3;
    c.sizeBytes = 64 * 64; // 64 lines, not divisible into 3-way sets
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), "");
}

TEST(CacheConfigTest, PolicyNames)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "LRU");
    EXPECT_STREQ(replPolicyName(ReplPolicy::FIFO), "FIFO");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Random), "Random");
    EXPECT_STREQ(replPolicyName(ReplPolicy::RRIP), "RRIP");
    EXPECT_STREQ(replPolicyName(ReplPolicy::DRRIP), "DRRIP");
    EXPECT_STREQ(replPolicyName(ReplPolicy::SHiP), "SHiP");
    EXPECT_STREQ(replPolicyName(ReplPolicy::DeadBlock), "DeadBlock");
    // The canonical sweep order covers every policy exactly once.
    EXPECT_EQ(std::size(allReplPolicies), 7u);
}

TEST(CacheTest, MissThenHit)
{
    Cache c(tinyConfig());
    EXPECT_FALSE(c.access(0x1000, MemOp::Load).hit);
    EXPECT_TRUE(c.access(0x1000, MemOp::Load).hit);
    EXPECT_TRUE(c.access(0x1030, MemOp::Load).hit); // same block
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, BlockAlignAndSetIndex)
{
    Cache c(tinyConfig());
    EXPECT_EQ(c.blockAlign(0x1037), 0x1000u);
    // 4 sets: block address 0x1000>>6 = 0x40 -> set 0.
    EXPECT_EQ(c.setIndex(0x1000), 0u);
    EXPECT_EQ(c.setIndex(0x1040), 1u);
    EXPECT_EQ(c.setIndex(0x1100), 0u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyConfig(2, ReplPolicy::LRU));
    // Fill set 0 with A and B (4 sets, so stride 4*64=256 aliases).
    c.access(0x0000, MemOp::Load);  // A
    c.access(0x0100, MemOp::Load);  // B
    c.access(0x0000, MemOp::Load);  // touch A -> B is LRU
    auto out = c.access(0x0200, MemOp::Load); // C evicts B
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 0x0100u);
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0100));
}

TEST(CacheTest, FifoEvictsOldestFill)
{
    Cache c(tinyConfig(2, ReplPolicy::FIFO));
    c.access(0x0000, MemOp::Load);  // A filled first
    c.access(0x0100, MemOp::Load);  // B
    c.access(0x0000, MemOp::Load);  // touching A must NOT save it
    auto out = c.access(0x0200, MemOp::Load);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 0x0000u);
}

TEST(CacheTest, RandomPolicyEvictsValidWay)
{
    Cache c(tinyConfig(4, ReplPolicy::Random));
    for (Addr a = 0; a < 4; a++)
        c.access(a * 4 * 64 * 4, MemOp::Load); // fill set 0? keep easy
    // Just exercise: more fills than capacity never crash and keep
    // occupancy bounded.
    for (Addr a = 0; a < 100; a++)
        c.access(a * 1024, MemOp::Load);
    SUCCEED();
}

TEST(CacheTest, RripEvictsDistantBeforeRecent)
{
    Cache c(tinyConfig(2, ReplPolicy::RRIP));
    c.access(0x0000, MemOp::Load); // A: inserted long (RRPV 2)
    c.access(0x0100, MemOp::Load); // B: inserted long (RRPV 2)
    c.access(0x0000, MemOp::Load); // hit promotes A to RRPV 0
    // Conflict: no way is distant, so both age until B reaches 3.
    auto out = c.access(0x0200, MemOp::Load);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 0x0100u);
    EXPECT_TRUE(c.probe(0x0000));
}

TEST(CacheTest, DeadBlockPrefersMarkedVictim)
{
    Cache c(tinyConfig(2, ReplPolicy::DeadBlock));
    c.access(0x0000, MemOp::Load); // A: the LRU way
    c.access(0x0100, MemOp::Load); // B: more recent
    EXPECT_TRUE(c.markDead(0x0100));
    auto out = c.access(0x0200, MemOp::Load);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 0x0100u) << "dead mark must override LRU";
    // A re-touch clears the mark: back to plain LRU order.
    c.access(0x0000, MemOp::Load);
    EXPECT_TRUE(c.markDead(0x0000));
    c.access(0x0000, MemOp::Load); // touching the block revives it
    auto out2 = c.access(0x0300, MemOp::Load);
    EXPECT_TRUE(out2.evicted);
    EXPECT_EQ(out2.victimAddr, 0x0200u);
}

TEST(CacheTest, MarkDeadOnAbsentBlockIsFalse)
{
    Cache c(tinyConfig(2, ReplPolicy::DeadBlock));
    EXPECT_FALSE(c.markDead(0x0000));
    c.access(0x0000, MemOp::Load);
    EXPECT_TRUE(c.markDead(0x0000));
}

TEST(CacheTest, ShipAndDrripSweepNeverCorruptState)
{
    // Behavioural pin for the table-backed policies: full pressure
    // sweep with hits mixed in, then the invariant audit (which
    // checks SHCT bounds, PSEL bounds and per-policy forbidden bits)
    // must pass.
    for (const ReplPolicy p : {ReplPolicy::SHiP, ReplPolicy::DRRIP}) {
        Cache c(tinyConfig(4, p));
        for (Addr a = 0; a < 4000; a++)
            c.access((a % 97) * 64 * ((a & 1) + 1),
                     (a % 5) ? MemOp::Load : MemOp::Store);
        c.auditInvariants();
        EXPECT_EQ(c.accesses(), 4000u);
    }
}

TEST(CacheTest, VictimDirtySurfacedOnEviction)
{
    Cache c(tinyConfig());
    Recorder rec;
    c.setListener(&rec);
    c.access(0x0000, MemOp::Store); // A, dirtied
    c.access(0x0100, MemOp::Load);  // B, clean
    auto out = c.access(0x0200, MemOp::Load); // evicts dirty A
    EXPECT_TRUE(out.evicted);
    EXPECT_TRUE(out.victimDirty);
    auto out2 = c.access(0x0300, MemOp::Load); // evicts clean B
    EXPECT_TRUE(out2.evicted);
    EXPECT_FALSE(out2.victimDirty);
    ASSERT_EQ(rec.events.size(), 2u);
    EXPECT_TRUE(rec.events[0].victimDirty);
    EXPECT_FALSE(rec.events[1].victimDirty);
    c.setListener(nullptr);
}

TEST(CacheTest, SetDirtyMarksResidentBlocksOnly)
{
    Cache c(tinyConfig());
    EXPECT_FALSE(c.setDirty(0x0000));
    c.access(0x0000, MemOp::Load);
    EXPECT_TRUE(c.setDirty(0x0000));
    // The externally-set dirty bit surfaces at eviction.
    c.access(0x0100, MemOp::Load);
    auto out = c.access(0x0200, MemOp::Load);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 0x0000u);
    EXPECT_TRUE(out.victimDirty);
}

TEST(CacheTest, ListenerSeesEvictions)
{
    Cache c(tinyConfig());
    Recorder rec;
    c.setListener(&rec);
    c.access(0x0000, MemOp::Load);
    c.access(0x0100, MemOp::Load);
    c.access(0x0200, MemOp::Load); // evicts 0x0000 (LRU)
    ASSERT_EQ(rec.events.size(), 1u);
    EXPECT_EQ(rec.events[0].victim, 0x0000u);
    EXPECT_EQ(rec.events[0].incoming, 0x0200u);
    EXPECT_EQ(rec.events[0].set, 0u);
    EXPECT_FALSE(rec.events[0].byPrefetch);
    c.setListener(nullptr);
}

TEST(CacheTest, FillReplacingEvictsPredictedVictim)
{
    Cache c(tinyConfig(2));
    c.access(0x0000, MemOp::Load); // A
    c.access(0x0100, MemOp::Load); // B; A is LRU
    // Prefetch C replacing B (the MRU): must evict B, not LRU A.
    auto out = c.fillReplacing(0x0200, 0x0100);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 0x0100u);
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0200));
}

TEST(CacheTest, FillReplacingFallsBackToPolicyVictim)
{
    Cache c(tinyConfig(2));
    c.access(0x0000, MemOp::Load); // A
    c.access(0x0100, MemOp::Load); // B
    // Predicted victim not resident: evict the LRU (A).
    auto out = c.fillReplacing(0x0200, 0x0300);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 0x0000u);
}

TEST(CacheTest, FillReplacingResidentIsNoop)
{
    Cache c(tinyConfig());
    c.access(0x0000, MemOp::Load);
    auto out = c.fillReplacing(0x0000, 0x0100);
    EXPECT_TRUE(out.hit);
    EXPECT_FALSE(out.evicted);
    EXPECT_EQ(c.prefetchFills(), 0u);
}

TEST(CacheTest, PrefetchedFlagLifecycle)
{
    Cache c(tinyConfig());
    c.fill(0x0000);
    EXPECT_TRUE(c.isUntouchedPrefetch(0x0000));
    auto out = c.access(0x0000, MemOp::Load);
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.hitUntouchedPrefetch);
    EXPECT_FALSE(c.isUntouchedPrefetch(0x0000));
    out = c.access(0x0000, MemOp::Load);
    EXPECT_FALSE(out.hitUntouchedPrefetch);
}

TEST(CacheTest, UnmarkedFillIsNotUntouchedPrefetch)
{
    Cache c(tinyConfig());
    c.fill(0x0000, /*mark_prefetched=*/false);
    EXPECT_FALSE(c.isUntouchedPrefetch(0x0000));
}

TEST(CacheTest, ListenerReportsUntouchedPrefetchVictim)
{
    Cache c(tinyConfig(2));
    Recorder rec;
    c.setListener(&rec);
    c.fill(0x0000);                // prefetched, never touched
    c.access(0x0100, MemOp::Load); // B
    c.access(0x0200, MemOp::Load); // evicts prefetched A
    ASSERT_FALSE(rec.events.empty());
    EXPECT_TRUE(rec.events.back().victimUntouched);
    c.setListener(nullptr);
}

TEST(CacheTest, InvalidateAndFlush)
{
    Cache c(tinyConfig());
    c.access(0x0000, MemOp::Load);
    c.access(0x0100, MemOp::Load);
    EXPECT_TRUE(c.invalidate(0x0000));
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_FALSE(c.invalidate(0x0000));
    c.flush();
    EXPECT_FALSE(c.probe(0x0100));
}

TEST(CacheTest, StoreSetsDirty)
{
    Cache c(tinyConfig());
    c.access(0x0000, MemOp::Store);
    // No public dirty getter; behaviour is exercised via no crash and
    // hit on subsequent access.
    EXPECT_TRUE(c.access(0x0000, MemOp::Load).hit);
}

TEST(CacheTest, MissRate)
{
    Cache c(tinyConfig());
    c.access(0x0000, MemOp::Load);
    c.access(0x0000, MemOp::Load);
    c.access(0x0000, MemOp::Load);
    c.access(0x0000, MemOp::Load);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

/**
 * Property sweep: for any geometry, occupancy never exceeds capacity,
 * a just-filled block always hits, and total evictions equal fills
 * minus capacity (once warm).
 */
struct Geometry
{
    std::uint64_t sets;
    std::uint32_t assoc;
    ReplPolicy policy;
};

class CacheProperty : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheProperty, FilledBlockHitsImmediately)
{
    const auto g = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = g.sets * g.assoc * 64;
    cfg.assoc = g.assoc;
    cfg.policy = g.policy;
    Cache c(cfg);
    for (Addr a = 0; a < 1000; a++) {
        const Addr addr = a * 64 * 3; // stride of 3 blocks
        c.access(addr, MemOp::Load);
        ASSERT_TRUE(c.probe(addr)) << "addr " << addr;
    }
}

TEST_P(CacheProperty, EvictionCountMatchesCapacity)
{
    const auto g = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = g.sets * g.assoc * 64;
    cfg.assoc = g.assoc;
    cfg.policy = g.policy;
    Cache c(cfg);
    const std::uint64_t capacity = cfg.numLines();
    const std::uint64_t fills = capacity * 4;
    for (Addr a = 0; a < fills; a++)
        c.access(a * 64, MemOp::Load); // distinct blocks, round robin
    EXPECT_EQ(c.misses(), fills);
    EXPECT_EQ(c.evictions(), fills - capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(Geometry{1, 1, ReplPolicy::LRU},
                      Geometry{4, 2, ReplPolicy::LRU},
                      Geometry{16, 4, ReplPolicy::FIFO},
                      Geometry{8, 8, ReplPolicy::LRU},
                      Geometry{64, 2, ReplPolicy::FIFO},
                      Geometry{4, 2, ReplPolicy::Random},
                      Geometry{512, 2, ReplPolicy::LRU}));

// ---------------------------------------------------------- set scan
//
// The SIMD and portable maskedEqBits kernels must agree bit-for-bit
// on every input: the engines' golden/equivalence suites pin the
// end-to-end consequence, this pins the primitive directly (and on a
// SIMD-less build it degenerates to portable-vs-portable, still
// checking the dispatcher wiring).

template <std::uint32_t Assoc>
void
scanAgreementRound(Rng &rng)
{
    std::uint64_t words[Assoc];
    for (std::uint32_t w = 0; w < Assoc; w++)
        words[w] = rng.next();
    // Mix of structured and random select/want pairs: a tag-style
    // mask, a single-bit valid probe, and raw noise.
    const std::uint64_t selects[] = {~std::uint64_t{0x3e}, 0x01,
                                     rng.next()};
    for (const std::uint64_t select : selects) {
        // Force some matches: copy a masked word into `want` half of
        // the time so the all-zero mask is not the only case covered.
        const std::uint64_t want = (rng.next() & 1)
            ? (words[rng.below(Assoc)] & select)
            : (rng.next() & select);
        const std::uint32_t got = maskedEqBits<Assoc>(words, select,
                                                      want);
        std::uint32_t expect = 0;
        for (std::uint32_t w = 0; w < Assoc; w++)
            expect |= ((words[w] & select) == want ? 1u : 0u) << w;
        ASSERT_EQ(got, expect)
            << "assoc " << Assoc << " select " << select;
        ASSERT_EQ(maskedEqBitsPortable<Assoc>(words, select, want),
                  expect);
        if (got) {
            ASSERT_EQ(firstWay(got),
                      static_cast<std::uint32_t>(
                          __builtin_ctz(expect)));
        }
    }
}

TEST(SetScan, SimdAndPortableKernelsAgree)
{
    Rng rng(0xdecafbad);
    for (int round = 0; round < 20000; round++) {
        scanAgreementRound<2>(rng);
        scanAgreementRound<4>(rng);
        scanAgreementRound<8>(rng);
        scanAgreementRound<16>(rng);
    }
}

TEST(SetScan, MatchlessAndFullMasks)
{
    // Degenerate corners: all ways match, no way matches.
    std::uint64_t words[8];
    for (std::uint32_t w = 0; w < 8; w++)
        words[w] = 0xabcd0000 + w; // differ only in low bits
    EXPECT_EQ(maskedEqBits<8>(words, ~std::uint64_t{0xff},
                              0xabcd0000),
              0xffu);
    EXPECT_EQ(maskedEqBits<8>(words, ~std::uint64_t{0}, 0x1234), 0u);
    EXPECT_EQ(firstWay(0x80u), 7u);
    EXPECT_EQ(firstWay(0x01u), 0u);
}

} // namespace
} // namespace ltc
