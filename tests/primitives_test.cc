/**
 * @file
 * Unit and property tests for the synthetic access-pattern
 * primitives. The key invariants: determinism (reset replays the
 * identical stream), full-coverage traversals (chases and tree walks
 * visit every node), and the structural properties each pattern
 * claims (dependence flags, interleave schedules, hot-set bias).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/primitives.hh"
#include "trace/trace.hh"

namespace ltc
{
namespace
{

std::vector<MemRef>
take(TraceSource &src, std::size_t n)
{
    std::vector<MemRef> refs;
    MemRef r;
    while (refs.size() < n && src.next(r))
        refs.push_back(r);
    return refs;
}

//
// StridedScanSource
//

TEST(StridedScanTest, SequentialBlocks)
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 4;
    a.accessesPerBlock = 1;
    StridedScanSource src({a}, 2);
    auto refs = take(src, 8);
    for (int i = 0; i < 8; i++) {
        EXPECT_EQ(refs[static_cast<std::size_t>(i)].addr,
                  a.base + static_cast<Addr>(i % 4) * 64);
        EXPECT_EQ(refs[static_cast<std::size_t>(i)].nonMemGap, 2u);
        EXPECT_FALSE(refs[static_cast<std::size_t>(i)].dependsOnPrev);
    }
}

TEST(StridedScanTest, AccessesPerBlockStayInBlock)
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 2;
    a.accessesPerBlock = 3;
    StridedScanSource src({a}, 0);
    auto refs = take(src, 6);
    // First three accesses in block 0, next three in block 1.
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(refs[static_cast<std::size_t>(i)].addr & ~63ull,
                  a.base);
    for (int i = 3; i < 6; i++)
        EXPECT_EQ(refs[static_cast<std::size_t>(i)].addr & ~63ull,
                  a.base + 64);
    // Distinct word offsets and distinct PCs per access index.
    EXPECT_NE(refs[0].addr, refs[1].addr);
    EXPECT_NE(refs[0].pc, refs[1].pc);
}

TEST(StridedScanTest, MultipleArraysInOrder)
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 2;
    a.pc = 0x100;
    ScanArray b;
    b.base = 0x2000000;
    b.blocks = 3;
    b.pc = 0x200;
    StridedScanSource src({a, b}, 0);
    auto refs = take(src, 5);
    EXPECT_EQ(refs[0].addr & ~63ull, a.base);
    EXPECT_EQ(refs[1].addr & ~63ull, a.base + 64);
    EXPECT_EQ(refs[2].addr & ~63ull, b.base);
    EXPECT_EQ(refs[4].addr & ~63ull, b.base + 128);
    EXPECT_EQ(src.iterations(), 1u);
}

TEST(StridedScanTest, AdvancePerIterMovesWindow)
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 2;
    a.advancePerIter = 1024;
    StridedScanSource src({a}, 0);
    auto refs = take(src, 4);
    EXPECT_EQ(refs[0].addr, a.base);
    EXPECT_EQ(refs[2].addr, a.base + 1024); // second sweep shifted
}

TEST(StridedScanTest, ResetReplaysIdentically)
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 7;
    a.accessesPerBlock = 2;
    StridedScanSource src({a}, 1);
    auto first = take(src, 50);
    src.reset();
    auto second = take(src, 50);
    EXPECT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); i++)
        EXPECT_TRUE(first[i] == second[i]) << "ref " << i;
}

TEST(StridedScanTest, StoresFlag)
{
    ScanArray a;
    a.base = 0x1000000;
    a.blocks = 1;
    a.stores = true;
    StridedScanSource src({a}, 0);
    MemRef r;
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.op, MemOp::Store);
}

//
// PointerChaseSource
//

TEST(PointerChaseTest, VisitsEveryNodeOncePerIteration)
{
    PointerChaseParams p;
    p.nodes = 256;
    p.accessesPerNode = 1;
    p.seed = 42;
    PointerChaseSource src(p);
    auto refs = take(src, 256);
    std::set<Addr> blocks;
    for (const auto &r : refs)
        blocks.insert(r.addr & ~63ull);
    EXPECT_EQ(blocks.size(), 256u) << "traversal must be a full cycle";
    EXPECT_EQ(src.iterations(), 1u);
}

TEST(PointerChaseTest, SecondIterationIdenticalOrder)
{
    PointerChaseParams p;
    p.nodes = 128;
    p.seed = 7;
    PointerChaseSource src(p);
    auto first = take(src, 128);
    auto second = take(src, 128);
    for (std::size_t i = 0; i < 128; i++)
        EXPECT_EQ(first[i].addr, second[i].addr) << "pos " << i;
}

TEST(PointerChaseTest, FirstAccessPerNodeDependsOnPrev)
{
    PointerChaseParams p;
    p.nodes = 16;
    p.accessesPerNode = 3;
    PointerChaseSource src(p);
    auto refs = take(src, 9);
    EXPECT_TRUE(refs[0].dependsOnPrev);
    EXPECT_FALSE(refs[1].dependsOnPrev);
    EXPECT_FALSE(refs[2].dependsOnPrev);
    EXPECT_TRUE(refs[3].dependsOnPrev);
}

TEST(PointerChaseTest, ShuffleZeroIsLayoutOrder)
{
    PointerChaseParams p;
    p.nodes = 8;
    p.shuffle = 0.0;
    PointerChaseSource src(p);
    auto refs = take(src, 8);
    for (std::size_t i = 1; i < 8; i++)
        EXPECT_EQ(refs[i].addr, refs[i - 1].addr + p.nodeBytes);
}

TEST(PointerChaseTest, ShuffledOrderIsNotSequential)
{
    PointerChaseParams p;
    p.nodes = 1024;
    p.shuffle = 1.0;
    p.seed = 3;
    PointerChaseSource src(p);
    auto refs = take(src, 1024);
    int sequential = 0;
    for (std::size_t i = 1; i < refs.size(); i++)
        sequential += refs[i].addr == refs[i - 1].addr + p.nodeBytes;
    EXPECT_LT(sequential, 32); // a few by chance are fine
}

TEST(PointerChaseTest, MutationKeepsFullCycle)
{
    PointerChaseParams p;
    p.nodes = 512;
    p.seed = 5;
    p.mutateEveryIters = 1;
    p.mutateFraction = 0.2;
    PointerChaseSource src(p);
    // After several mutations, a full iteration must still visit
    // every node exactly once.
    take(src, 512 * 4);
    auto refs = take(src, 512);
    std::set<Addr> blocks;
    for (const auto &r : refs)
        blocks.insert(r.addr & ~63ull);
    EXPECT_EQ(blocks.size(), 512u);
}

TEST(PointerChaseTest, MutationChangesOrder)
{
    PointerChaseParams p;
    p.nodes = 512;
    p.seed = 5;
    p.mutateEveryIters = 1;
    p.mutateFraction = 0.3;
    PointerChaseSource src(p);
    auto first = take(src, 512);
    auto second = take(src, 512);
    int same = 0;
    for (std::size_t i = 0; i < 512; i++)
        same += first[i].addr == second[i].addr;
    EXPECT_LT(same, 512);
}

TEST(PointerChaseTest, ResetReproducesIncludingMutations)
{
    PointerChaseParams p;
    p.nodes = 256;
    p.seed = 11;
    p.mutateEveryIters = 2;
    p.mutateFraction = 0.2;
    PointerChaseSource src(p);
    auto first = take(src, 256 * 5);
    src.reset();
    auto second = take(src, 256 * 5);
    for (std::size_t i = 0; i < first.size(); i++)
        ASSERT_TRUE(first[i] == second[i]) << "pos " << i;
}

//
// TreeWalkSource
//

TEST(TreeWalkTest, VisitsEveryNode)
{
    TreeWalkParams p;
    p.nodes = 127; // complete tree of depth 7
    TreeWalkSource src(p);
    auto refs = take(src, 127);
    std::set<Addr> blocks;
    for (const auto &r : refs)
        blocks.insert(r.addr & ~63ull);
    EXPECT_EQ(blocks.size(), 127u);
    EXPECT_EQ(src.iterations(), 1u);
}

TEST(TreeWalkTest, RegularLayoutPreOrder)
{
    TreeWalkParams p;
    p.nodes = 7;
    p.regularLayout = true;
    TreeWalkSource src(p);
    auto refs = take(src, 7);
    // Pre-order of the implicit tree 0,1,3,4,2,5,6.
    const std::uint32_t expected[] = {0, 1, 3, 4, 2, 5, 6};
    for (std::size_t i = 0; i < 7; i++)
        EXPECT_EQ(refs[i].addr, p.base + expected[i] * p.nodeBytes);
}

TEST(TreeWalkTest, IrregularLayoutDiffers)
{
    TreeWalkParams reg;
    reg.nodes = 1023;
    reg.regularLayout = true;
    TreeWalkParams irr = reg;
    irr.regularLayout = false;
    irr.seed = 9;
    TreeWalkSource a(reg);
    TreeWalkSource b(irr);
    auto ra = take(a, 1023);
    auto rb = take(b, 1023);
    int same = 0;
    for (std::size_t i = 0; i < 1023; i++)
        same += ra[i].addr == rb[i].addr;
    EXPECT_LT(same, 100);
}

TEST(TreeWalkTest, IterationsRepeatIdentically)
{
    TreeWalkParams p;
    p.nodes = 63;
    p.regularLayout = false;
    p.seed = 4;
    TreeWalkSource src(p);
    auto first = take(src, 63);
    auto second = take(src, 63);
    for (std::size_t i = 0; i < 63; i++)
        EXPECT_EQ(first[i].addr, second[i].addr);
}

TEST(TreeWalkTest, DependsOnPrevPerNode)
{
    TreeWalkParams p;
    p.nodes = 7;
    p.accessesPerNode = 2;
    TreeWalkSource src(p);
    auto refs = take(src, 4);
    EXPECT_TRUE(refs[0].dependsOnPrev);
    EXPECT_FALSE(refs[1].dependsOnPrev);
    EXPECT_TRUE(refs[2].dependsOnPrev);
}

//
// HashProbeSource
//

TEST(HashProbeTest, StaysInRegion)
{
    HashProbeParams p;
    p.base = 0x4000000;
    p.blocks = 100;
    p.blockStride = 1;
    HashProbeSource src(p);
    for (auto &r : take(src, 1000)) {
        EXPECT_GE(r.addr, p.base);
        EXPECT_LT(r.addr, p.base + 100 * 64);
    }
}

TEST(HashProbeTest, HotBiasObserved)
{
    HashProbeParams p;
    p.blocks = 10000;
    p.hotFraction = 0.9;
    p.hotBlocks = 10;
    HashProbeSource src(p);
    int hot = 0;
    auto refs = take(src, 5000);
    for (auto &r : refs)
        hot += (r.addr - p.base) / 64 < 10 * p.blockStride;
    EXPECT_GT(hot, 4000);
}

TEST(HashProbeTest, BlockStrideConfinesSets)
{
    HashProbeParams p;
    p.blocks = 4096;
    p.blockStride = 8;
    HashProbeSource src(p);
    std::set<std::uint64_t> sets;
    for (auto &r : take(src, 4000))
        sets.insert((r.addr >> 6) & 511); // 512-set L1D
    EXPECT_LE(sets.size(), 64u);
}

TEST(HashProbeTest, DeterministicAfterReset)
{
    HashProbeParams p;
    p.blocks = 1000;
    p.seed = 21;
    HashProbeSource src(p);
    auto first = take(src, 100);
    src.reset();
    auto second = take(src, 100);
    for (std::size_t i = 0; i < 100; i++)
        EXPECT_TRUE(first[i] == second[i]);
}

TEST(HashProbeTest, NoShortPeriod)
{
    HashProbeParams p;
    p.blocks = 1 << 16;
    HashProbeSource src(p);
    auto refs = take(src, 1 << 12);
    std::set<Addr> unique;
    for (auto &r : refs)
        unique.insert(r.addr);
    EXPECT_GT(unique.size(), (1u << 12) / 2);
}

TEST(HashProbeTest, StoreFraction)
{
    HashProbeParams p;
    p.blocks = 100;
    p.storeFraction = 0.5;
    HashProbeSource src(p);
    int stores = 0;
    for (auto &r : take(src, 2000))
        stores += r.isStore();
    EXPECT_NEAR(stores / 2000.0, 0.5, 0.05);
}

//
// InterleaveSource / PhaseSequenceSource
//

std::unique_ptr<TraceSource>
constSource(Addr addr, std::size_t count)
{
    std::vector<MemRef> refs(count);
    for (auto &r : refs)
        r.addr = addr;
    return std::make_unique<VectorTrace>(std::move(refs));
}

TEST(InterleaveTest, ChunkSchedule)
{
    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(constSource(0xA000, 100));
    kids.push_back(constSource(0xB000, 100));
    InterleaveSource src(std::move(kids), {3, 2});
    auto refs = take(src, 10);
    const Addr expect[] = {0xA000, 0xA000, 0xA000, 0xB000, 0xB000,
                           0xA000, 0xA000, 0xA000, 0xB000, 0xB000};
    for (std::size_t i = 0; i < 10; i++)
        EXPECT_EQ(refs[i].addr, expect[i]) << "pos " << i;
}

TEST(InterleaveTest, SkipsExhaustedChildren)
{
    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(constSource(0xA000, 2));
    kids.push_back(constSource(0xB000, 6));
    InterleaveSource src(std::move(kids), {2, 2});
    auto refs = take(src, 100);
    EXPECT_EQ(refs.size(), 8u);
    EXPECT_EQ(refs.back().addr, 0xB000u);
}

TEST(PhaseSequenceTest, PhasesAlternate)
{
    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(constSource(0xA000, 100));
    kids.push_back(constSource(0xB000, 100));
    PhaseSequenceSource src(std::move(kids), {4, 2});
    auto refs = take(src, 12);
    int a_count = 0;
    for (std::size_t i = 0; i < 4; i++)
        a_count += refs[i].addr == 0xA000;
    EXPECT_EQ(a_count, 4);
    EXPECT_EQ(refs[4].addr, 0xB000u);
    EXPECT_EQ(refs[5].addr, 0xB000u);
    EXPECT_EQ(refs[6].addr, 0xA000u); // cycles back
}

TEST(PhaseSequenceTest, ChildrenKeepStateAcrossPhases)
{
    // A child resumes where it left off when its phase comes again.
    std::vector<MemRef> seq(8);
    for (std::size_t i = 0; i < 8; i++)
        seq[i].addr = 0x1000 + i;
    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(std::make_unique<VectorTrace>(seq));
    kids.push_back(constSource(0xB000, 100));
    PhaseSequenceSource src(std::move(kids), {2, 1});
    auto refs = take(src, 6);
    EXPECT_EQ(refs[0].addr, 0x1000u);
    EXPECT_EQ(refs[1].addr, 0x1001u);
    EXPECT_EQ(refs[2].addr, 0xB000u);
    EXPECT_EQ(refs[3].addr, 0x1002u);
    EXPECT_EQ(refs[4].addr, 0x1003u);
}

//
// Parameterised determinism sweep across all primitive kinds.
//

class PrimitiveDeterminism
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PrimitiveDeterminism, ChaseResetIsIdentical)
{
    PointerChaseParams p;
    p.nodes = 64;
    p.seed = GetParam();
    PointerChaseSource src(p);
    auto first = take(src, 200);
    src.reset();
    auto second = take(src, 200);
    for (std::size_t i = 0; i < first.size(); i++)
        ASSERT_TRUE(first[i] == second[i]);
}

TEST_P(PrimitiveDeterminism, HashResetIsIdentical)
{
    HashProbeParams p;
    p.blocks = 64;
    p.seed = GetParam();
    HashProbeSource src(p);
    auto first = take(src, 200);
    src.reset();
    auto second = take(src, 200);
    for (std::size_t i = 0; i < first.size(); i++)
        ASSERT_TRUE(first[i] == second[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveDeterminism,
                         ::testing::Values(1, 2, 3, 17, 12345));

} // namespace
} // namespace ltc
