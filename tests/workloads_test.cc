/**
 * @file
 * Tests for the workload registry: catalogue completeness, build-
 * ability, determinism, and structural sanity of every benchmark
 * generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/trace.hh"
#include "trace/workloads.hh"

namespace ltc
{
namespace
{

TEST(WorkloadsTest, CatalogueMatchesPaperSuite)
{
    // All SPEC CPU2000 except vpr (25 benchmarks) plus 3 Olden.
    const auto &cat = workloadCatalog();
    EXPECT_EQ(cat.size(), 28u);
    int olden = 0;
    int fp = 0;
    int intw = 0;
    for (const auto &info : cat) {
        switch (info.suite) {
          case Suite::Olden:
            olden++;
            break;
          case Suite::SPECfp:
            fp++;
            break;
          case Suite::SPECint:
            intw++;
            break;
          case Suite::Captured:
            ADD_FAILURE() << "catalogue holds no file-backed entries";
            break;
        }
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_GT(info.refsPerIteration, 0u) << info.name;
    }
    EXPECT_EQ(olden, 3);
    EXPECT_EQ(fp, 14);
    EXPECT_EQ(intw, 11);
}

TEST(WorkloadsTest, NoVprAndKeyNamesPresent)
{
    auto names = workloadNames();
    std::set<std::string> set(names.begin(), names.end());
    EXPECT_EQ(set.count("vpr"), 0u);
    for (const char *name : {"mcf", "swim", "gcc", "em3d", "bh",
                             "treeadd", "wupwise", "gzip"}) {
        EXPECT_EQ(set.count(name), 1u) << name;
    }
}

TEST(WorkloadsTest, IsWorkload)
{
    EXPECT_TRUE(isWorkload("mcf"));
    EXPECT_FALSE(isWorkload("doom"));
}

TEST(WorkloadsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("doom"), ::testing::ExitedWithCode(1),
                "unknown workload");
    EXPECT_EXIT(workloadInfo("doom"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(WorkloadsDeathTest, NonPositiveScaleIsFatal)
{
    EXPECT_EXIT(makeWorkload("mcf", 1, 0.0),
                ::testing::ExitedWithCode(1), "scale");
}

TEST(WorkloadsTest, SuggestedRefsBounds)
{
    for (const auto &name : workloadNames()) {
        const std::uint64_t refs = suggestedRefs(name);
        EXPECT_GE(refs, 1'500'000u) << name;
        EXPECT_LE(refs, 10'000'000u) << name;
    }
}

TEST(WorkloadsTest, SuiteNames)
{
    EXPECT_STREQ(suiteName(Suite::SPECint), "SPECint");
    EXPECT_STREQ(suiteName(Suite::SPECfp), "SPECfp");
    EXPECT_STREQ(suiteName(Suite::Olden), "Olden");
}

TEST(WorkloadsTest, RefBudgetDefault)
{
    unsetenv("LTC_REFS");
    EXPECT_EQ(refBudget(123), 123u);
}

TEST(WorkloadsTest, RefBudgetEnvSuffixes)
{
    setenv("LTC_REFS", "2m", 1);
    EXPECT_EQ(refBudget(1), 2'000'000u);
    setenv("LTC_REFS", "500k", 1);
    EXPECT_EQ(refBudget(1), 500'000u);
    setenv("LTC_REFS", "777", 1);
    EXPECT_EQ(refBudget(1), 777u);
    unsetenv("LTC_REFS");
}

TEST(WorkloadsTest, SelectedWorkloadsQuickSubset)
{
    setenv("LTC_WORKLOADS", "quick", 1);
    auto names = selectedWorkloads();
    EXPECT_EQ(names.size(), 8u);
    unsetenv("LTC_WORKLOADS");
}

TEST(WorkloadsTest, SelectedWorkloadsList)
{
    setenv("LTC_WORKLOADS", "mcf,swim", 1);
    auto names = selectedWorkloads();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "mcf");
    EXPECT_EQ(names[1], "swim");
    unsetenv("LTC_WORKLOADS");
}

TEST(WorkloadsTest, SelectedWorkloadsDefaultAll)
{
    unsetenv("LTC_WORKLOADS");
    EXPECT_EQ(selectedWorkloads().size(), 28u);
}

/** Every workload must build and produce a deterministic stream. */
class WorkloadParam : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadParam, BuildsAndProducesRefs)
{
    auto src = makeWorkload(GetParam());
    ASSERT_NE(src, nullptr);
    MemRef ref;
    for (int i = 0; i < 1000; i++)
        ASSERT_TRUE(src->next(ref)) << "workload ended early";
}

TEST_P(WorkloadParam, DeterministicAcrossInstances)
{
    auto a = makeWorkload(GetParam(), 1);
    auto b = makeWorkload(GetParam(), 1);
    MemRef ra;
    MemRef rb;
    for (int i = 0; i < 5000; i++) {
        ASSERT_TRUE(a->next(ra));
        ASSERT_TRUE(b->next(rb));
        ASSERT_TRUE(ra == rb) << GetParam() << " diverged at " << i;
    }
}

TEST_P(WorkloadParam, ResetReplays)
{
    auto src = makeWorkload(GetParam(), 1);
    auto first = collect(*src, 3000);
    src->reset();
    auto second = collect(*src, 3000);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); i++)
        ASSERT_TRUE(first[i] == second[i])
            << GetParam() << " pos " << i;
}

TEST_P(WorkloadParam, AddressesAreBlockReasonable)
{
    auto src = makeWorkload(GetParam());
    MemRef ref;
    for (int i = 0; i < 2000; i++) {
        ASSERT_TRUE(src->next(ref));
        EXPECT_GT(ref.addr, 0u);
        EXPECT_LT(ref.addr, Addr{1} << 32);
        EXPECT_GT(ref.pc, 0u);
    }
}

TEST_P(WorkloadParam, ScaleChangesFootprint)
{
    // Doubling the scale should not break generation.
    auto src = makeWorkload(GetParam(), 1, 0.5);
    MemRef ref;
    for (int i = 0; i < 500; i++)
        ASSERT_TRUE(src->next(ref));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParam,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace ltc
