/**
 * @file
 * Unit tests for the parallel experiment runner and the result
 * serialization layer (sim/runner.hh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "sim/runner.hh"
#include "util/hash.hh"
#include "util/random.hh"

namespace ltc
{
namespace
{

/**
 * A deterministic but nontrivial cell function: a few thousand RNG
 * draws seeded only by the cell, so any scheduling nondeterminism
 * would show up in the output.
 */
void
mixCell(const RunCell &cell, RunResult &r)
{
    Rng rng = cell.rng();
    std::uint64_t acc = 0;
    for (int i = 0; i < 4096; i++)
        acc ^= rng.next();
    r.set("mix", static_cast<double>(acc >> 11));
    r.set("uniform", rng.uniform());
}

std::vector<RunCell>
sampleSweep()
{
    return ExperimentRunner::cross(
        {"mcf", "swim", "em3d", "gap", "art"},
        {"base", "lt-cords", "ghb"});
}

TEST(ExperimentRunnerTest, OneThreadVsEightThreadsBitIdentical)
{
    const auto cells = sampleSweep();
    const auto serial = ExperimentRunner(1).run(cells, mixCell);
    const auto parallel = ExperimentRunner(8).run(cells, mixCell);

    ASSERT_EQ(serial.size(), parallel.size());
    // Byte-identical serialized records, the same guarantee the
    // bench JSON export relies on.
    EXPECT_EQ(resultsToJson(serial), resultsToJson(parallel));
    EXPECT_EQ(resultsToCsv(serial), resultsToCsv(parallel));
}

TEST(ExperimentRunnerTest, EmptySweep)
{
    const auto results = ExperimentRunner(4).run({}, mixCell);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(resultsToJson(results), "[]");
}

TEST(ExperimentRunnerTest, SingleCell)
{
    std::vector<RunCell> cells;
    cells.emplace_back();
    cells.back().workload = "mcf";
    ExperimentRunner::assignSeeds(cells, 7);

    const auto results = ExperimentRunner(8).run(cells, mixCell);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].cell.workload, "mcf");
    EXPECT_EQ(results[0].cell.index, 0u);
    EXPECT_TRUE(results[0].has("mix"));
}

TEST(ExperimentRunnerTest, CrossShapeAndSeeds)
{
    const auto cells =
        ExperimentRunner::cross({"a", "b"}, {"x", "y", "z"}, 42);
    ASSERT_EQ(cells.size(), 6u);
    // Workloads-major layout with sequential indices.
    EXPECT_EQ(cells[0].workload, "a");
    EXPECT_EQ(cells[0].config, "x");
    EXPECT_EQ(cells[4].workload, "b");
    EXPECT_EQ(cells[4].config, "y");
    for (std::size_t i = 0; i < cells.size(); i++)
        EXPECT_EQ(cells[i].index, i);
    // Seeds depend only on (base seed, index): distinct across
    // cells, reproducible across calls.
    const auto again =
        ExperimentRunner::cross({"a", "b"}, {"x", "y", "z"}, 42);
    for (std::size_t i = 0; i < cells.size(); i++) {
        EXPECT_EQ(cells[i].seed, again[i].seed);
        for (std::size_t j = i + 1; j < cells.size(); j++)
            EXPECT_NE(cells[i].seed, cells[j].seed);
    }
    // A different base seed reseeds every cell.
    const auto other =
        ExperimentRunner::cross({"a", "b"}, {"x", "y", "z"}, 43);
    EXPECT_NE(cells[0].seed, other[0].seed);
}

TEST(ExperimentRunnerTest, AllCellsExecuteExactlyOnce)
{
    std::atomic<std::uint64_t> calls{0};
    const auto cells = sampleSweep();
    ExperimentRunner(8).run(cells,
                            [&](const RunCell &, RunResult &r) {
                                calls.fetch_add(1);
                                r.set("v", 1.0);
                            });
    EXPECT_EQ(calls.load(), cells.size());
}

TEST(ExperimentRunnerTest, MapPreservesIndexOrder)
{
    ExperimentRunner runner(8);
    const auto out = runner.map<std::uint64_t>(
        100, [](std::size_t i) { return mix64(i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); i++)
        EXPECT_EQ(out[i], mix64(i));
}

TEST(ExperimentRunnerTest, CellExceptionPropagates)
{
    const auto cells = sampleSweep();
    EXPECT_THROW(
        ExperimentRunner(4).run(cells,
                                [](const RunCell &cell, RunResult &) {
                                    if (cell.index == 7)
                                        throw std::runtime_error(
                                            "cell failed");
                                }),
        std::runtime_error);
}

TEST(DefaultJobsTest, HonoursLtcJobsEnv)
{
    setenv("LTC_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    EXPECT_EQ(ExperimentRunner(0).jobs(), 3u);
    unsetenv("LTC_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(RunResultTest, SetGetOverwrite)
{
    RunResult r;
    EXPECT_FALSE(r.has("ipc"));
    EXPECT_DOUBLE_EQ(r.get("ipc"), 0.0);
    r.set("ipc", 1.5);
    r.set("coverage", 0.25);
    r.set("ipc", 2.5); // overwrite keeps position
    ASSERT_EQ(r.metrics().size(), 2u);
    EXPECT_EQ(r.metrics()[0].first, "ipc");
    EXPECT_DOUBLE_EQ(r.get("ipc"), 2.5);
    EXPECT_DOUBLE_EQ(r.get("coverage"), 0.25);
}

std::vector<RunResult>
sampleRecords()
{
    std::vector<RunCell> cells = ExperimentRunner::cross(
        {"mcf", "a,b \"quoted\"", "multi\nline"},
        {"cfg", "w/ partner, escaped"}, 99);
    std::vector<RunResult> records(cells.size());
    for (std::size_t i = 0; i < cells.size(); i++) {
        records[i].cell = cells[i];
        records[i].set("ipc", 0.1 * static_cast<double>(i + 1));
        records[i].set("gain_pct", -12.75 + static_cast<double>(i));
    }
    // One record with a sparse metric to exercise empty CSV fields.
    records[1].set("extra", 1.0 / 3.0);
    return records;
}

void
expectRecordsEqual(const std::vector<RunResult> &a,
                   const std::vector<RunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].cell.index, b[i].cell.index);
        EXPECT_EQ(a[i].cell.workload, b[i].cell.workload);
        EXPECT_EQ(a[i].cell.config, b[i].cell.config);
        EXPECT_EQ(a[i].cell.seed, b[i].cell.seed);
        ASSERT_EQ(a[i].metrics().size(), b[i].metrics().size());
        for (const auto &[key, value] : a[i].metrics()) {
            EXPECT_TRUE(b[i].has(key));
            EXPECT_DOUBLE_EQ(value, b[i].get(key));
        }
    }
}

TEST(ResultSerializationTest, JsonRoundTrip)
{
    const auto records = sampleRecords();
    const std::string json = resultsToJson(records);
    const auto parsed = resultsFromJson(json);
    expectRecordsEqual(records, parsed);
    // Serialize-parse-serialize is a fixed point.
    EXPECT_EQ(json, resultsToJson(parsed));
}

TEST(ResultSerializationTest, CsvRoundTrip)
{
    const auto records = sampleRecords();
    const std::string csv = resultsToCsv(records);
    const auto parsed = resultsFromCsv(csv);
    expectRecordsEqual(records, parsed);
    EXPECT_EQ(csv, resultsToCsv(parsed));
}

TEST(ResultSerializationTest, EmptyRecords)
{
    EXPECT_EQ(resultsToJson({}), "[]");
    EXPECT_TRUE(resultsFromJson("[]").empty());
    const auto parsed = resultsFromCsv(resultsToCsv({}));
    EXPECT_TRUE(parsed.empty());
}

TEST(ResultSerializationTest, ParsesFullSinkDocument)
{
    ResultSink sink("unit_test");
    std::vector<RunResult> records = sampleRecords();
    sink.add(records);
    const auto parsed = resultsFromJson(sink.json());
    expectRecordsEqual(records, parsed);
}

TEST(ResultSinkTest, JsonDocumentShape)
{
    ResultSink sink("shape_test");
    Table t("A \"title\"");
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});

    testing::internal::CaptureStdout();
    sink.table(t);
    sink.note("a note");
    testing::internal::GetCapturedStdout();

    const std::string json = sink.json();
    EXPECT_NE(json.find("\"bench\": \"shape_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"A \\\"title\\\"\""), std::string::npos);
    EXPECT_NE(json.find("\"notes\": [\"a note\"]"),
              std::string::npos);
}

} // namespace
} // namespace ltc
