/**
 * @file
 * Unit tests for util: bit operations, hashing, varints, PRNG,
 * logging.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "util/bitops.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"
#include "util/varint.hh"

namespace ltc
{
namespace
{

TEST(BitopsTest, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitopsTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~std::uint64_t{0}), 63u);
}

TEST(BitopsTest, ExactLog2)
{
    EXPECT_EQ(exactLog2(64), 6u);
    EXPECT_EQ(exactLog2(1ull << 33), 33u);
}

TEST(BitopsTest, CeilPowerOf2)
{
    EXPECT_EQ(ceilPowerOf2(0), 1u);
    EXPECT_EQ(ceilPowerOf2(1), 1u);
    EXPECT_EQ(ceilPowerOf2(2), 2u);
    EXPECT_EQ(ceilPowerOf2(3), 4u);
    EXPECT_EQ(ceilPowerOf2(1000), 1024u);
    EXPECT_EQ(ceilPowerOf2(1024), 1024u);
}

TEST(BitopsTest, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(BitopsTest, Bits)
{
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
}

TEST(BitopsTest, Align)
{
    EXPECT_EQ(alignDown(0x1234, 64), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 64), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 64), 0x1240u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(HashTest, Mix64Avalanche)
{
    // Flipping any input bit should change roughly half the output
    // bits; we only check that outputs differ and look scrambled.
    const std::uint64_t base = mix64(0x12345678);
    for (int bit = 0; bit < 64; bit++) {
        const std::uint64_t flipped =
            mix64(0x12345678ull ^ (1ull << bit));
        EXPECT_NE(base, flipped) << "bit " << bit;
    }
}

TEST(HashTest, Mix64Deterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(HashTest, HashCombineOrderSensitive)
{
    const std::uint64_t a = hashCombine(hashCombine(0, 1), 2);
    const std::uint64_t b = hashCombine(hashCombine(0, 2), 1);
    EXPECT_NE(a, b);
}

TEST(TraceHashTest, OrderSensitive)
{
    TraceHash h1;
    h1.update(0x100);
    h1.update(0x200);
    TraceHash h2;
    h2.update(0x200);
    h2.update(0x100);
    EXPECT_NE(h1.value(), h2.value());
}

TEST(TraceHashTest, ClearResets)
{
    TraceHash h;
    h.update(0x100);
    EXPECT_EQ(h.length(), 1u);
    h.clear();
    EXPECT_EQ(h.value(), 0u);
    EXPECT_EQ(h.length(), 0u);
    h.update(0x100);
    TraceHash fresh;
    fresh.update(0x100);
    EXPECT_EQ(h.value(), fresh.value());
}

TEST(TraceHashTest, LengthDistinguishes)
{
    // A prefix trace must differ from the full trace.
    TraceHash h;
    h.update(0x100);
    const std::uint64_t one = h.value();
    h.update(0x100);
    EXPECT_NE(one, h.value());
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedReproduces)
{
    Rng a(99);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; i++)
        first.push_back(a.next());
    a.reseed(99);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; i++)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(RngTest, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 400; i++)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        const std::uint64_t v = rng.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; i++) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceApproximatesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; i++)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(TypesTest, MemRefBasics)
{
    MemRef ref;
    ref.op = MemOp::Load;
    EXPECT_TRUE(ref.isLoad());
    EXPECT_FALSE(ref.isStore());
    ref.op = MemOp::Store;
    EXPECT_TRUE(ref.isStore());
    EXPECT_STREQ(memOpName(MemOp::Load), "load");
    EXPECT_STREQ(memOpName(MemOp::Store), "store");
}

TEST(TypesTest, MemRefToString)
{
    MemRef ref;
    ref.pc = 0x1000;
    ref.addr = 0x2040;
    ref.op = MemOp::Load;
    ref.nonMemGap = 3;
    ref.dependsOnPrev = true;
    const std::string s = to_string(ref);
    EXPECT_NE(s.find("1000"), std::string::npos);
    EXPECT_NE(s.find("2040"), std::string::npos);
    EXPECT_NE(s.find("load"), std::string::npos);
    EXPECT_NE(s.find("dep"), std::string::npos);
}

TEST(TypesTest, MemRefEquality)
{
    MemRef a;
    a.pc = 1;
    a.addr = 2;
    MemRef b = a;
    EXPECT_TRUE(a == b);
    b.addr = 3;
    EXPECT_FALSE(a == b);
}

TEST(LoggingTest, WarnIncrementsCounter)
{
    const std::uint64_t before = warnCount();
    ltc_warn("test warning ", 42);
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(ltc_panic("boom ", 1), "boom 1");
}

TEST(LoggingDeathTest, AssertFires)
{
    EXPECT_DEATH(ltc_assert(1 == 2, "math broke"), "math broke");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(ltc_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

// ------------------------------------------------------------ varint

TEST(ZigzagTest, RoundTripsBoundaryValues)
{
    const std::int64_t values[] = {
        0,  1,  -1, 2,  -2,  63, -63, 64, -64,
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()};
    for (std::int64_t v : values)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
    // Small magnitudes of either sign map to small codes.
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
}

TEST(VarintTest, RoundTripsAndSizes)
{
    const std::uint64_t values[] = {
        0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 0xffffffffull,
        std::numeric_limits<std::uint64_t>::max()};
    for (std::uint64_t v : values) {
        std::vector<unsigned char> buf;
        putVarint(buf, v);
        EXPECT_LE(buf.size(), 10u);
        std::uint64_t back = 0;
        const unsigned char *p =
            getVarint(buf.data(), buf.data() + buf.size(), back);
        ASSERT_EQ(p, buf.data() + buf.size()) << v;
        EXPECT_EQ(back, v);
    }
    std::vector<unsigned char> one;
    putVarint(one, 0x7f);
    EXPECT_EQ(one.size(), 1u); // 7-bit values stay single-byte
}

TEST(VarintTest, RejectsTruncatedAndOverlongInput)
{
    std::vector<unsigned char> buf;
    putVarint(buf, 1u << 20);
    std::uint64_t v = 0;
    // Every strict prefix ends mid-varint.
    for (std::size_t n = 0; n < buf.size(); n++)
        EXPECT_EQ(getVarint(buf.data(), buf.data() + n, v), nullptr);
    // Eleven continuation bytes exceed any 64-bit encoding.
    const std::vector<unsigned char> overlong(11, 0xff);
    EXPECT_EQ(getVarint(overlong.data(),
                        overlong.data() + overlong.size(), v),
              nullptr);
}

TEST(Fnv1a32Test, MatchesReferenceVectorsAndDetectsFlips)
{
    // Published FNV-1a test vectors.
    const unsigned char a[] = {'a'};
    EXPECT_EQ(fnv1a32(a, 1), 0xe40c292cu);
    const unsigned char foobar[] = {'f', 'o', 'o', 'b', 'a', 'r'};
    EXPECT_EQ(fnv1a32(foobar, 6), 0xbf9cf968u);
    EXPECT_EQ(fnv1a32(nullptr, 0), 2166136261u);

    unsigned char data[64];
    for (std::size_t i = 0; i < sizeof(data); i++)
        data[i] = static_cast<unsigned char>(i * 7);
    const std::uint32_t h = fnv1a32(data, sizeof(data));
    data[13] ^= 0x01;
    EXPECT_NE(fnv1a32(data, sizeof(data)), h);
}

} // namespace
} // namespace ltc
