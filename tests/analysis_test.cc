/**
 * @file
 * Tests for the analyses: temporal correlation distances, dead times,
 * and the energy model.
 */

#include <gtest/gtest.h>

#include "analysis/correlation.hh"
#include "analysis/deadtime.hh"
#include "analysis/energy.hh"
#include "trace/primitives.hh"
#include "trace/trace.hh"

namespace ltc
{
namespace
{

CacheConfig
tinyL1()
{
    CacheConfig c;
    c.sizeBytes = 8 * 2 * 64; // 8 sets x 2 ways
    c.assoc = 2;
    return c;
}

//
// CorrelationAnalysis
//

TEST(CorrelationTest, RepeatingScanIsPerfectlyCorrelated)
{
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 64; // 4x the tiny cache
    StridedScanSource src({a}, 0);
    CorrelationAnalysis ca(tinyL1());
    ca.run(src, 64 * 20);
    auto result = ca.finish();
    EXPECT_GT(result.misses, 500u);
    // After warmup, every miss pair recurs in identical order.
    EXPECT_GT(result.perfectFraction(), 0.8);
    EXPECT_LT(result.uncorrelatedFraction(), 0.1);
}

TEST(CorrelationTest, RandomStreamIsUncorrelated)
{
    HashProbeParams p;
    p.base = 0x100000;
    p.blocks = 1 << 14;
    HashProbeSource src(p);
    CorrelationAnalysis ca(tinyL1());
    ca.run(src, 5000);
    auto result = ca.finish();
    EXPECT_GT(result.uncorrelatedFraction(), 0.9);
    EXPECT_LT(result.perfectFraction(), 0.05);
}

TEST(CorrelationTest, PointerChaseIsCorrelated)
{
    PointerChaseParams p;
    p.nodes = 256;
    p.seed = 3;
    PointerChaseSource src(p);
    CorrelationAnalysis ca(tinyL1());
    ca.run(src, 256 * 16);
    auto result = ca.finish();
    EXPECT_GT(result.perfectFraction(), 0.7);
}

TEST(CorrelationTest, SequenceLengthsGrowWithRepetition)
{
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 64;
    StridedScanSource src({a}, 0);
    CorrelationAnalysis ca(tinyL1());
    ca.run(src, 64 * 30);
    auto result = ca.finish();
    // Correlated runs should reach at least one sweep in length.
    EXPECT_GT(result.sequenceLength.percentile(0.9), 32u);
}

TEST(CorrelationTest, LastTouchDistanceSmallForScan)
{
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 64;
    StridedScanSource src({a}, 0);
    CorrelationAnalysis ca(tinyL1());
    ca.run(src, 64 * 20);
    auto result = ca.finish();
    // A pure sequential scan evicts in near last-touch order: the
    // reorder distance should be tightly bounded (Fig. 7's point).
    EXPECT_GT(result.lastTouchDistance.samples(), 100u);
    EXPECT_LE(result.lastTouchDistance.percentile(0.98), 64u);
}

TEST(CorrelationTest, MixedStreamsReorderLastTouches)
{
    // Interleaving two scans in different sets produces the
    // {A1,B1,B2,A2} reorderings of Section 3.2: distances beyond +-1
    // must appear.
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 32;
    a.pc = 0x100;
    ScanArray b;
    b.base = 0x200000;
    b.blocks = 48;
    b.pc = 0x200;
    std::vector<std::unique_ptr<TraceSource>> kids;
    kids.push_back(std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{a}, 0));
    kids.push_back(std::make_unique<StridedScanSource>(
        std::vector<ScanArray>{b}, 0));
    InterleaveSource src(std::move(kids), {3, 2});
    CorrelationAnalysis ca(tinyL1());
    ca.run(src, 20000);
    auto result = ca.finish();
    const double at_one = result.lastTouchDistance.cdfAt(1);
    EXPECT_LT(at_one, 0.95); // some reordering beyond +-1
}

//
// DeadTimeAnalysis
//

TEST(DeadTimeTest, ScanDeadTimesSpanResidency)
{
    // In a sequential scan over 64 blocks with an 16-line cache, a
    // block is touched once and evicted ~16 misses later: dead time
    // ~= 16 accesses * cycles per access.
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 64;
    StridedScanSource src({a}, 0);
    DeadTimeAnalysis dt(tinyL1(), 10.0);
    dt.run(src, 64 * 10);
    EXPECT_GT(dt.histogram().samples(), 100u);
    // Residency of 16 lines at 10 cycles/access: ~160 cycles.
    EXPECT_GT(dt.fractionLongerThan(64), 0.9);
    EXPECT_LT(dt.fractionLongerThan(10000), 0.1);
}

TEST(DeadTimeTest, HotBlocksHaveShortDeadTimes)
{
    // A block touched right before eviction has dead time ~0; the
    // scan's last-touch = only-touch so dead times equal residency.
    // Compare against a 2-block hot loop that always hits: virtually
    // no evictions at all.
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 2;
    StridedScanSource src({a}, 0);
    DeadTimeAnalysis dt(tinyL1(), 10.0);
    dt.run(src, 1000);
    EXPECT_EQ(dt.histogram().samples(), 0u); // nothing evicted
}

TEST(DeadTimeTest, MostDeadTimesExceedMemoryLatency)
{
    // The paper's Fig. 2 argument at miniature scale: with realistic
    // cycles-per-access, most dead times exceed the 200-cycle memory
    // latency, so last-touch prefetches are timely.
    ScanArray a;
    a.base = 0x100000;
    a.blocks = 256;
    StridedScanSource src({a}, 0);
    DeadTimeAnalysis dt(CacheConfig::l1d(), 5.0);
    dt.run(src, 256 * 30);
    EXPECT_GT(dt.fractionLongerThan(200), 0.85);
}

TEST(DeadTimeDeathTest, NonPositiveCyclesPerAccess)
{
    EXPECT_DEATH(DeadTimeAnalysis(tinyL1(), 0.0), "positive");
}

//
// Energy model (Section 5.9)
//

TEST(EnergyTest, PaperArithmetic)
{
    EnergyModel m;
    // Serial lookup + infrequent data read beats the parallel L1D.
    EXPECT_LT(m.ltcDynamicPerAccessPj(0.2), m.l1dAccessPj);
    // The paper's ~48% claim at a conservative 20% miss rate; our
    // constants give ~43%, same ballpark.
    EXPECT_NEAR(m.relativeDynamic(0.2), 0.43, 0.07);
    // Monotone in miss rate.
    EXPECT_LT(m.relativeDynamic(0.0), m.relativeDynamic(1.0));
}

TEST(EnergyTest, LeakageNumbersPreserved)
{
    EnergyModel m;
    EXPECT_DOUBLE_EQ(m.l1dLeakMw, 230.0);
    EXPECT_DOUBLE_EQ(m.ltcLeakMw, 800.0);
    EXPECT_LT(m.sigReadPj, m.l1dDataReadPj);
}

} // namespace
} // namespace ltc
