/**
 * @file
 * Unit tests for the trace infrastructure: sources, adapters, file
 * round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/file_trace.hh"
#include "trace/trace.hh"

namespace ltc
{
namespace
{

std::vector<MemRef>
sampleRefs(std::size_t n)
{
    std::vector<MemRef> refs;
    for (std::size_t i = 0; i < n; i++) {
        MemRef r;
        r.pc = 0x1000 + i * 4;
        r.addr = 0x10000 + i * 64;
        r.op = i % 3 == 0 ? MemOp::Store : MemOp::Load;
        r.nonMemGap = static_cast<std::uint32_t>(i % 7);
        r.dependsOnPrev = i % 2 == 0;
        refs.push_back(r);
    }
    return refs;
}

TEST(VectorTraceTest, ReplaysInOrder)
{
    auto refs = sampleRefs(10);
    VectorTrace t(refs);
    MemRef out;
    for (std::size_t i = 0; i < refs.size(); i++) {
        ASSERT_TRUE(t.next(out));
        EXPECT_TRUE(out == refs[i]);
    }
    EXPECT_FALSE(t.next(out));
}

TEST(VectorTraceTest, ResetRestarts)
{
    auto refs = sampleRefs(3);
    VectorTrace t(refs);
    MemRef out;
    while (t.next(out)) {
    }
    t.reset();
    ASSERT_TRUE(t.next(out));
    EXPECT_TRUE(out == refs[0]);
}

TEST(LimitSourceTest, BoundsOutput)
{
    auto inner = std::make_unique<VectorTrace>(sampleRefs(100));
    LimitSource limited(std::move(inner), 7);
    MemRef out;
    int n = 0;
    while (limited.next(out))
        n++;
    EXPECT_EQ(n, 7);
}

TEST(LimitSourceTest, ResetRestoresBudget)
{
    auto inner = std::make_unique<VectorTrace>(sampleRefs(100));
    LimitSource limited(std::move(inner), 5);
    MemRef out;
    while (limited.next(out)) {
    }
    limited.reset();
    int n = 0;
    while (limited.next(out))
        n++;
    EXPECT_EQ(n, 5);
}

TEST(ShiftSourceTest, AddsOffset)
{
    auto refs = sampleRefs(4);
    auto inner = std::make_unique<VectorTrace>(refs);
    ShiftSource shifted(std::move(inner), 0x100000);
    MemRef out;
    ASSERT_TRUE(shifted.next(out));
    EXPECT_EQ(out.addr, refs[0].addr + 0x100000);
    EXPECT_EQ(out.pc, refs[0].pc); // PCs unchanged
}

TEST(CaptureSourceTest, CapturesStream)
{
    auto refs = sampleRefs(6);
    CaptureSource cap(std::make_unique<VectorTrace>(refs));
    MemRef out;
    while (cap.next(out)) {
    }
    EXPECT_EQ(cap.captured().size(), 6u);
    EXPECT_TRUE(cap.captured()[2] == refs[2]);
}

TEST(CaptureSourceTest, ResetClearsCapture)
{
    CaptureSource cap(std::make_unique<VectorTrace>(sampleRefs(3)));
    MemRef out;
    cap.next(out);
    cap.reset();
    EXPECT_TRUE(cap.captured().empty());
}

TEST(CollectTest, GathersUpToLimit)
{
    VectorTrace t(sampleRefs(10));
    auto collected = collect(t, 4);
    EXPECT_EQ(collected.size(), 4u);
    t.reset();
    collected = collect(t, 100);
    EXPECT_EQ(collected.size(), 10u);
}

TEST(FileTraceTest, RoundTrip)
{
    const std::string path = ::testing::TempDir() + "/ltc_trace_rt.bin";
    auto refs = sampleRefs(50);
    writeTraceFile(path, refs);
    auto back = readTraceFile(path);
    ASSERT_EQ(back.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); i++)
        EXPECT_TRUE(back[i] == refs[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(FileTraceTest, SourceReplaysFile)
{
    const std::string path = ::testing::TempDir() + "/ltc_trace_src.bin";
    auto refs = sampleRefs(8);
    writeTraceFile(path, refs);
    FileTrace t(path);
    EXPECT_EQ(t.size(), 8u);
    MemRef out;
    int n = 0;
    while (t.next(out))
        n++;
    EXPECT_EQ(n, 8);
    t.reset();
    ASSERT_TRUE(t.next(out));
    EXPECT_TRUE(out == refs[0]);
    std::remove(path.c_str());
}

TEST(FileTraceDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/ltc.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(FileTraceDeathTest, BadMagicIsFatal)
{
    const std::string path = ::testing::TempDir() + "/ltc_bad_magic.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("NOTATRACE1234567", 1, 16, f);
    std::fclose(f);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "bad trace magic");
    std::remove(path.c_str());
}

} // namespace
} // namespace ltc
