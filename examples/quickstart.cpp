/**
 * @file
 * Quickstart: attach LT-cords to the paper's cache hierarchy, run a
 * workload through the trace engine, and read out coverage.
 *
 *   $ ./quickstart [workload] [refs]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"
#include "trace/workloads.hh"
#include "util/stats.hh"

int
main(int argc, char **argv)
{
    using namespace ltc;

    const std::string workload = argc > 1 ? argv[1] : "mcf";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                 : suggestedRefs(workload);

    // 1. The simulated machine: Table 1's 64KB L1D + 1MB L2.
    const HierarchyConfig hier = paperHierarchy();

    // 2. The predictor: LT-cords with the Section 5.6 configuration
    //    (32K-entry signature cache, 4K off-chip frames).
    LtCords ltcords(paperLtcords(hier));
    std::printf("LT-cords on-chip budget: %.0f KB (paper: ~214KB)\n",
                static_cast<double>(ltcords.onChipBytes()) / 1024.0);

    // 3. A workload: one of the 28 synthetic SPEC/Olden stand-ins.
    auto source = makeWorkload(workload);
    std::printf("workload: %s (%s) -- %s\n", workload.c_str(),
                suiteName(workloadInfo(workload).suite),
                workloadInfo(workload).description.c_str());

    // 4. Run: a baseline pass measures prediction opportunity, then
    //    the predictor pass classifies every miss.
    const CoverageStats stats =
        runWithOpportunity(hier, &ltcords, *source, refs);

    std::printf("\nreferences simulated : %llu\n",
                static_cast<unsigned long long>(stats.accesses));
    std::printf("baseline L1D misses  : %llu\n",
                static_cast<unsigned long long>(stats.opportunity));
    std::printf("misses eliminated    : %llu (%.1f%% coverage)\n",
                static_cast<unsigned long long>(stats.correct),
                100.0 * stats.coverage());
    std::printf("incorrect predictions: %llu\n",
                static_cast<unsigned long long>(stats.incorrect()));
    std::printf("early evictions      : %llu\n",
                static_cast<unsigned long long>(stats.early));

    // 5. Predictor internals.
    StatSet internals("lt-cords");
    ltcords.exportStats(internals);
    std::printf("\npredictor internals:\n%s", internals.dump().c_str());
    return 0;
}
