/**
 * @file
 * Bring-your-own-trace: build a reference stream programmatically
 * (or load one from a file captured elsewhere), write it to the
 * binary trace format, reload it, analyse its temporal correlation,
 * and run LT-cords over it.
 *
 *   $ ./custom_trace [path.bin]   # analyse an existing trace file
 */

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/correlation.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"
#include "trace/file_trace.hh"
#include "trace/primitives.hh"

int
main(int argc, char **argv)
{
    using namespace ltc;

    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        // Synthesise a demo trace: a loop nest touching two arrays
        // plus a short pointer walk, repeated 8 times.
        path = "custom_demo_trace.bin";
        std::vector<ScanArray> arrays;
        ScanArray a;
        a.base = 0x10000000;
        a.blocks = 4096;
        a.accessesPerBlock = 2;
        a.pc = 0x1000;
        arrays.push_back(a);
        auto scan = std::make_unique<StridedScanSource>(arrays, 2);

        PointerChaseParams p;
        p.base = 0x20000000;
        p.nodes = 4096;
        p.seed = 7;
        auto chase = std::make_unique<PointerChaseSource>(p);

        std::vector<std::unique_ptr<TraceSource>> kids;
        kids.push_back(std::move(scan));
        kids.push_back(std::move(chase));
        InterleaveSource mixed(std::move(kids), {4, 1});

        const auto refs = collect(mixed, 8 * 5 * 4096);
        writeTraceFile(path, refs);
        std::printf("wrote %zu references to %s\n", refs.size(),
                    path.c_str());
    }

    FileTrace trace(path);
    std::printf("loaded %zu references from %s\n\n", trace.size(),
                path.c_str());

    // Temporal-correlation profile (is this trace LT-cords
    // friendly?).
    CorrelationAnalysis ca(CacheConfig::l1d());
    ca.run(trace, trace.size());
    auto corr = ca.finish();
    std::printf("miss-stream profile:\n");
    std::printf("  misses               : %llu\n",
                static_cast<unsigned long long>(corr.misses));
    std::printf("  perfectly correlated : %.1f%%\n",
                100.0 * corr.perfectFraction());
    std::printf("  uncorrelated         : %.1f%%\n",
                100.0 * corr.uncorrelatedFraction());
    std::printf("  last-touch reorder p98: %llu\n\n",
                static_cast<unsigned long long>(
                    corr.lastTouchDistance.percentile(0.98)));

    // Run LT-cords over the trace.
    trace.reset();
    LtCords ltcords(paperLtcords(paperHierarchy()));
    auto stats = runWithOpportunity(paperHierarchy(), &ltcords, trace,
                                    trace.size());
    std::printf("LT-cords on this trace:\n");
    std::printf("  opportunity: %llu misses\n",
                static_cast<unsigned long long>(stats.opportunity));
    std::printf("  coverage   : %.1f%%\n", 100.0 * stats.coverage());
    std::printf("  incorrect  : %.1f%%  early: %.1f%%\n",
                stats.opportunity
                    ? 100.0 * static_cast<double>(stats.incorrect()) /
                        static_cast<double>(stats.opportunity)
                    : 0.0,
                stats.opportunity
                    ? 100.0 * static_cast<double>(stats.early) /
                        static_cast<double>(stats.opportunity)
                    : 0.0);
    return 0;
}
