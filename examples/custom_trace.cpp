/**
 * @file
 * Bring-your-own-trace: build a reference stream programmatically
 * (or load one from a file captured elsewhere), stream it into the
 * .ltct v2 container, demonstrate v1 -> v2 conversion, reload it,
 * analyse its temporal correlation, and run LT-cords over it.
 *
 *   $ ./custom_trace [path.ltct]   # analyse an existing trace file
 *
 * Accepts v1 or v2 containers; see docs/TRACE_FORMAT.md and the
 * ltc-trace CLI for recording, converting (including ChampSim
 * imports) and inspecting containers from the shell.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/correlation.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"
#include "trace/file_trace.hh"
#include "trace/primitives.hh"
#include "trace/trace_io.hh"

int
main(int argc, char **argv)
{
    using namespace ltc;

    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        // Synthesise a demo trace: a loop nest touching two arrays
        // plus a short pointer walk, repeated 8 times.
        path = "custom_demo_trace.ltct";
        std::vector<ScanArray> arrays;
        ScanArray a;
        a.base = 0x10000000;
        a.blocks = 4096;
        a.accessesPerBlock = 2;
        a.pc = 0x1000;
        arrays.push_back(a);
        auto scan = std::make_unique<StridedScanSource>(arrays, 2);

        PointerChaseParams p;
        p.base = 0x20000000;
        p.nodes = 4096;
        p.seed = 7;
        auto chase = std::make_unique<PointerChaseSource>(p);

        std::vector<std::unique_ptr<TraceSource>> kids;
        kids.push_back(std::move(scan));
        kids.push_back(std::move(chase));
        InterleaveSource mixed(std::move(kids), {4, 1});

        // Stream straight to the v2 container: no in-memory copy of
        // the whole trace is needed, however long the capture.
        std::uint64_t written = 0;
        TraceErrc errc = captureToFile(mixed, path, 8 * 5 * 4096,
                                       &written);
        if (errc != TraceErrc::Ok) {
            std::fprintf(stderr, "capture failed: %s\n",
                         traceErrcMessage(errc));
            return 1;
        }
        std::printf("wrote %llu references to %s\n",
                    static_cast<unsigned long long>(written),
                    path.c_str());

        // Round-trip the same stream through the legacy v1 format to
        // show the conversion path (ltc-trace convert does the same,
        // and also imports ChampSim instruction traces).
        const std::string v1_path = "custom_demo_trace_v1.bin";
        writeTraceFileV1(v1_path, readTraceFile(path));
        errc = convertTraceFile(v1_path, "custom_demo_trace_conv.ltct");
        if (errc != TraceErrc::Ok) {
            std::fprintf(stderr, "conversion failed: %s\n",
                         traceErrcMessage(errc));
            return 1;
        }
        TraceFileInfo info;
        if (probeTraceFile(path, info) == TraceErrc::Ok) {
            std::printf("v2 container: %llu bytes in %llu chunks "
                        "(%.1fx smaller than v1)\n",
                        static_cast<unsigned long long>(info.fileBytes),
                        static_cast<unsigned long long>(info.chunks),
                        info.compressionVsV1());
        }
    }

    FileTrace trace(path);
    std::printf("loaded %zu references from %s\n\n", trace.size(),
                path.c_str());

    // Temporal-correlation profile (is this trace LT-cords
    // friendly?).
    CorrelationAnalysis ca(CacheConfig::l1d());
    ca.run(trace, trace.size());
    auto corr = ca.finish();
    std::printf("miss-stream profile:\n");
    std::printf("  misses               : %llu\n",
                static_cast<unsigned long long>(corr.misses));
    std::printf("  perfectly correlated : %.1f%%\n",
                100.0 * corr.perfectFraction());
    std::printf("  uncorrelated         : %.1f%%\n",
                100.0 * corr.uncorrelatedFraction());
    std::printf("  last-touch reorder p98: %llu\n\n",
                static_cast<unsigned long long>(
                    corr.lastTouchDistance.percentile(0.98)));

    // Run LT-cords over the trace.
    trace.reset();
    LtCords ltcords(paperLtcords(paperHierarchy()));
    auto stats = runWithOpportunity(paperHierarchy(), &ltcords, trace,
                                    trace.size());
    std::printf("LT-cords on this trace:\n");
    std::printf("  opportunity: %llu misses\n",
                static_cast<unsigned long long>(stats.opportunity));
    std::printf("  coverage   : %.1f%%\n", 100.0 * stats.coverage());
    std::printf("  incorrect  : %.1f%%  early: %.1f%%\n",
                stats.opportunity
                    ? 100.0 * static_cast<double>(stats.incorrect()) /
                        static_cast<double>(stats.opportunity)
                    : 0.0,
                stats.opportunity
                    ? 100.0 * static_cast<double>(stats.early) /
                        static_cast<double>(stats.opportunity)
                    : 0.0);
    return 0;
}
