/**
 * @file
 * The paper's motivating scenario: a pointer-chasing workload whose
 * dependent misses the out-of-order core cannot overlap. Compares
 * baseline, GHB PC/DC (delta correlation — helpless on irregular
 * pointers), LT-cords, and a perfect L1D on the cycle engine.
 *
 *   $ ./pointer_chase_speedup [nodes]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "trace/primitives.hh"

int
main(int argc, char **argv)
{
    using namespace ltc;

    const std::uint64_t nodes =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (96 << 10);

    auto make_chase = [nodes] {
        PointerChaseParams p;
        p.base = 0x10000000;
        p.nodes = nodes;          // one cache block per node
        p.accessesPerNode = 2;    // pointer + payload word
        p.nonMemGap = 3;
        p.seed = 1;
        return std::make_unique<PointerChaseSource>(p, "listwalk");
    };
    const std::uint64_t refs = 6 * nodes * 2;

    std::printf("linked-list walk over %llu nodes (%.1f MB footprint),"
                " %llu refs\n\n",
                static_cast<unsigned long long>(nodes),
                static_cast<double>(nodes) * 64.0 / (1 << 20),
                static_cast<unsigned long long>(refs));

    double base_ipc = 0.0;
    struct Row
    {
        const char *label;
        const char *pred;
        bool perfect;
    };
    for (const Row row : {Row{"baseline", "none", false},
                          Row{"ghb pc/dc", "ghb", false},
                          Row{"lt-cords", "lt-cords", false},
                          Row{"perfect L1D", "none", true}}) {
        TimingConfig cfg = paperTiming();
        if (row.perfect)
            cfg.hier = perfectL1Hierarchy();
        auto pred = makePredictor(row.pred, cfg.hier,
                                  /*model_stream_latency=*/true);
        TimingSim sim(cfg, pred.get());
        auto src = make_chase();
        sim.run(*src, refs);
        const TimingStats s = sim.stats();
        if (base_ipc == 0.0)
            base_ipc = s.ipc;
        std::printf("%-12s ipc=%6.3f  speedup=%+6.1f%%  misses=%llu"
                    "  covered=%llu\n",
                    row.label, s.ipc,
                    100.0 * (s.ipc / base_ipc - 1.0),
                    static_cast<unsigned long long>(s.l1Misses),
                    static_cast<unsigned long long>(s.correct));
    }

    std::printf("\nLT-cords turns the serial miss chain into "
                "prefetched hits; delta correlation finds no pattern "
                "in the shuffled pointers (Section 5.7).\n");
    return 0;
}
