/**
 * @file
 * ltcsim — command-line driver for the library: run any workload
 * against any predictor on either engine, with the paper's machine
 * or overrides.
 *
 *   ltcsim --list
 *   ltcsim --workload mcf --predictor lt-cords --engine trace
 *   ltcsim --workload swim --predictor ghb --engine timing \
 *          --refs 2m --l2 4mb --seed 7
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/experiment.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"
#include "trace/workloads.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace
{

using namespace ltc;

struct Options
{
    std::string workload = "mcf";
    std::string predictor = "lt-cords";
    std::string engine = "trace"; // trace | timing
    std::uint64_t refs = 0;       // 0 = suggested
    std::uint64_t seed = 1;
    double scale = 1.0;
    bool perfectL1 = false;
    bool bigL2 = false;
    bool list = false;
};

std::uint64_t
parseCount(const std::string &text)
{
    char *end = nullptr;
    const auto v = std::strtoull(text.c_str(), &end, 10);
    std::uint64_t mult = 1;
    if (end && (*end == 'k' || *end == 'K'))
        mult = 1000;
    else if (end && (*end == 'm' || *end == 'M'))
        mult = 1000 * 1000;
    return v * mult;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: ltcsim [--list]\n"
        "              [--workload NAME] [--predictor NAME]\n"
        "              [--engine trace|timing] [--refs N[k|m]]\n"
        "              [--seed N] [--scale F] [--perfect-l1]"
        " [--l2 4mb]\n");
    std::exit(1);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list")
            opt.list = true;
        else if (arg == "--workload")
            opt.workload = value();
        else if (arg == "--predictor")
            opt.predictor = value();
        else if (arg == "--engine")
            opt.engine = value();
        else if (arg == "--refs")
            opt.refs = parseCount(value());
        else if (arg == "--seed")
            opt.seed = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--scale")
            opt.scale = std::strtod(value().c_str(), nullptr);
        else if (arg == "--perfect-l1")
            opt.perfectL1 = true;
        else if (arg == "--l2" && value() == "4mb")
            opt.bigL2 = true;
        else
            usage();
    }
    return opt;
}

void
listEverything()
{
    std::printf("workloads:\n");
    for (const auto &info : workloadCatalog()) {
        std::printf("  %-9s %-8s %s\n", info.name.c_str(),
                    suiteName(info.suite), info.description.c_str());
    }
    // File-backed workloads discovered via LTC_TRACE_DIR, if any.
    for (const auto &w : fileWorkloads()) {
        std::printf("  %-9s %-8s %s\n", w.info.name.c_str(),
                    suiteName(w.info.suite),
                    w.info.description.c_str());
    }
    std::printf("\npredictors:\n");
    for (const auto &name : predictorNames())
        std::printf("  %s\n", name.c_str());
    std::printf("\nengines: trace (coverage), timing (IPC)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ltc;
    const Options opt = parse(argc, argv);
    if (opt.list) {
        listEverything();
        return 0;
    }
    if (!isWorkload(opt.workload))
        ltc_fatal("unknown workload '", opt.workload,
                  "' (try --list)");

    HierarchyConfig hier = opt.perfectL1 ? perfectL1Hierarchy()
        : opt.bigL2                      ? bigL2Hierarchy()
                                         : paperHierarchy();
    const std::uint64_t refs =
        opt.refs ? opt.refs : suggestedRefs(opt.workload);

    std::printf("workload=%s predictor=%s engine=%s refs=%llu\n\n",
                opt.workload.c_str(), opt.predictor.c_str(),
                opt.engine.c_str(),
                static_cast<unsigned long long>(refs));

    if (opt.engine == "trace") {
        auto pred = makePredictor(opt.predictor, hier);
        auto src = makeWorkload(opt.workload, opt.seed, opt.scale);
        const CoverageStats s =
            runWithOpportunity(hier, pred.get(), *src, refs);
        std::printf("opportunity  %llu\n",
                    static_cast<unsigned long long>(s.opportunity));
        std::printf("coverage     %.1f%%\n", 100.0 * s.coverage());
        std::printf("incorrect    %llu\n",
                    static_cast<unsigned long long>(s.incorrect()));
        std::printf("train        %llu\n",
                    static_cast<unsigned long long>(s.train()));
        std::printf("early        %llu\n",
                    static_cast<unsigned long long>(s.early));
        std::printf("L1 miss rate %.1f%%\n", 100.0 * s.l1MissRate());
        if (pred) {
            StatSet internals(pred->name());
            pred->exportStats(internals);
            std::printf("\n%s", internals.dump().c_str());
        }
    } else if (opt.engine == "timing") {
        TimingConfig cfg = paperTiming();
        cfg.hier = hier;
        auto pred = makePredictor(opt.predictor, hier,
                                  /*model_stream_latency=*/true);
        TimingSim sim(cfg, pred.get());
        auto src = makeWorkload(opt.workload, opt.seed, opt.scale);
        sim.run(*src, refs);
        const TimingStats s = sim.stats();
        std::printf("cycles       %llu\n",
                    static_cast<unsigned long long>(s.cycles));
        std::printf("instructions %llu\n",
                    static_cast<unsigned long long>(s.instructions));
        std::printf("IPC          %.3f\n", s.ipc);
        std::printf("L1 misses    %llu (covered %llu, partial %llu)\n",
                    static_cast<unsigned long long>(s.l1Misses),
                    static_cast<unsigned long long>(s.correct),
                    static_cast<unsigned long long>(s.partial));
        std::printf("traffic B/I  base=%.2f incorrect=%.2f "
                    "seq-create=%.2f seq-fetch=%.2f\n",
                    s.bytesPerInstruction(Traffic::BaseData),
                    s.bytesPerInstruction(Traffic::IncorrectPrefetch),
                    s.bytesPerInstruction(Traffic::SequenceCreate),
                    s.bytesPerInstruction(Traffic::SequenceFetch));
    } else {
        usage();
    }
    return 0;
}
