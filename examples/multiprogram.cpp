/**
 * @file
 * Multi-programmed execution (Section 5.5): two applications
 * alternate in scheduling quanta over shared LT-cords structures,
 * with disjoint physical address ranges. Shows per-application
 * coverage standalone vs co-scheduled.
 *
 *   $ ./multiprogram [appA] [appB]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "sim/multiprog.hh"
#include "trace/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace ltc;

    const std::string app_a = argc > 1 ? argv[1] : "mcf";
    const std::string app_b = argc > 2 ? argv[2] : "swim";

    // Standalone references.
    auto standalone = [](const std::string &name) {
        auto pred = makePredictor("lt-cords", paperHierarchy());
        auto src = makeWorkload(name);
        auto s = runWithOpportunity(paperHierarchy(), pred.get(), *src,
                                    suggestedRefs(name));
        return s.coverage();
    };
    std::printf("standalone coverage: %s %.1f%%, %s %.1f%%\n",
                app_a.c_str(), 100.0 * standalone(app_a),
                app_b.c_str(), 100.0 * standalone(app_b));

    // Co-scheduled: 60 context switches, predictor state persists,
    // address spaces shifted apart.
    MultiProgConfig cfg;
    cfg.quantumRefs = {workloadInfo(app_a).refsPerIteration / 4,
                       workloadInfo(app_b).refsPerIteration / 4};
    cfg.switches = 60;
    auto pred = makePredictor("lt-cords", paperHierarchy());
    std::vector<std::unique_ptr<TraceSource>> apps;
    apps.push_back(makeWorkload(app_a));
    apps.push_back(makeWorkload(app_b, /*seed=*/2));
    auto stats = runMultiProg(cfg, pred.get(), std::move(apps));

    std::printf("co-scheduled (60 switches, shared predictor):\n");
    std::printf("  %-9s coverage %.1f%% (opportunity %llu)\n",
                app_a.c_str(), 100.0 * stats[0].coverage(),
                static_cast<unsigned long long>(stats[0].opportunity));
    std::printf("  %-9s coverage %.1f%% (opportunity %llu)\n",
                app_b.c_str(), 100.0 * stats[1].coverage(),
                static_cast<unsigned long long>(stats[1].opportunity));

    std::printf("\nAs long as predictor state persists across context"
                " switches and the off-chip sequence storage fits both"
                " programs, coverage is close to standalone"
                " (Section 5.5).\n");
    return 0;
}
