/**
 * @file
 * Table 3: percent performance improvement over the baseline
 * processor for Perfect L1, LT-cords, GHB PC/DC, realistic DBCP and
 * a 4MB L2, per benchmark with suite means.
 *
 * Expected shape (the paper's result): mean ordering PerfectL1 >
 * LT-cords > GHB > DBCP ~ 4MB-L2; LT-cords wins big on repetitive
 * memory-bound workloads (pointer chases included), GHB wins on
 * regular layouts with little reuse (gap), DBCP only where signature
 * sets fit its table (mcf, bh, treeadd), nothing helps hashed access
 * (gzip, bzip2, twolf).
 */

#include <map>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

namespace
{

struct Config
{
    const char *label;
    const char *predictor;
    int hier; // 0 = base, 1 = perfect L1, 2 = 4MB L2
};

/** Sweep column order; "base" is the normalization run. */
const Config kConfigs[] = {
    {"base", "none", 0},       {"Perfect L1", "none", 1},
    {"LT-cords", "lt-cords", 0}, {"GHB", "ghb", 0},
    {"DBCP", "dbcp", 0},       {"4MB L2", "none", 2},
};

const Config &
configByLabel(const std::string &label)
{
    for (const Config &c : kConfigs)
        if (label == c.label)
            return c;
    ltc_fatal("unknown config label '", label, "'");
}

double
runIpc(const std::string &workload, const Config &cfg)
{
    TimingConfig tc = paperTiming();
    tc.hier = cfg.hier == 0 ? paperHierarchy()
        : cfg.hier == 1     ? perfectL1Hierarchy()
                            : bigL2Hierarchy();
    auto pred = makePredictor(cfg.predictor, tc.hier,
                              /*model_stream_latency=*/true);
    TimingSim sim(tc, pred.get());
    auto src = makeWorkload(workload);
    sim.run(*src, benchRefs(workload, 3'000'000));
    return sim.stats().ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("table3_speedup", argc, argv);
    ExperimentRunner runner;

    std::vector<std::string> labels;
    for (const Config &c : kConfigs)
        labels.push_back(c.label);
    const auto workloads = benchWorkloads({"all"});
    const auto cells = ExperimentRunner::cross(workloads, labels);

    auto results = sink.run(runner, cells, [](const RunCell &cell,
                                        RunResult &r) {
        r.set("ipc",
              runIpc(cell.workload, configByLabel(cell.config)));
    });

    // Gains relative to each workload's "base" cell (first config).
    const std::size_t stride = labels.size();
    setGainsVsBase(results, stride);

    Table table("Table 3: % performance improvement over baseline");
    table.setHeader({"benchmark", "suite", "Perfect L1", "LT-cords",
                     "GHB", "DBCP", "4MB L2"});

    std::map<std::string, std::vector<double>> suite_gains[5];
    std::vector<double> overall[5];

    for (std::size_t w = 0; w < workloads.size(); w++) {
        const auto &info = workloadInfo(workloads[w]);
        std::vector<std::string> row = {workloads[w],
                                        suiteName(info.suite)};
        for (std::size_t c = 1; c < stride; c++) {
            const double gain =
                ExperimentRunner::at(results, w, c, stride)
                    .get("gain_pct") /
                100.0;
            row.push_back(Table::num(gain * 100.0, 0));
            suite_gains[c - 1][suiteName(info.suite)].push_back(gain);
            overall[c - 1].push_back(gain);
        }
        table.addRow(row);
    }

    for (const char *suite : {"SPECint", "SPECfp", "Olden"}) {
        std::vector<std::string> row = {std::string(suite) + " mean",
                                        ""};
        for (int c = 0; c < 5; c++)
            row.push_back(
                Table::num(amean(suite_gains[c][suite]) * 100.0, 0));
        table.addRow(row);
    }
    std::vector<std::string> row = {"overall mean", ""};
    for (int c = 0; c < 5; c++)
        row.push_back(Table::num(amean(overall[c]) * 100.0, 0));
    table.addRow(row);

    sink.table(table);
    sink.add(std::move(results));
    sink.note("paper means: Perfect L1 +123%, LT-cords +60%, GHB "
              "+31%, DBCP +17%, 4MB L2 +16%");
    return sink.finish();
}
