/**
 * @file
 * Section 5.9: the analytical power comparison of LT-cords on-chip
 * structures against the L1D, using the paper's CACTI 4.2 anchors
 * (70nm), evaluated at the measured per-benchmark L1D miss rates.
 */

#include "analysis/energy.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

int
main(int argc, char **argv)
{
    ResultSink sink("power_model", argc, argv);
    ExperimentRunner runner;
    EnergyModel m;

    Table anchors("Section 5.9: CACTI anchors (70nm)");
    anchors.setHeader({"quantity", "value"});
    anchors.addRow({"L1D parallel tag+data access",
                    Table::num(m.l1dAccessPj, 1) + " pJ"});
    anchors.addRow({"L1D data-array block read",
                    Table::num(m.l1dDataReadPj, 1) + " pJ"});
    anchors.addRow({"LT-cords serial tag check (both structures)",
                    Table::num(m.ltcTagCheckPj, 1) + " pJ"});
    anchors.addRow({"LT-cords signature data read (per L1D miss)",
                    Table::num(m.ltcDataReadPj, 1) + " pJ"});
    anchors.addRow({"L1D leakage", Table::num(m.l1dLeakMw, 0) + " mW"});
    anchors.addRow({"LT-cords leakage (same transistors)",
                    Table::num(m.ltcLeakMw, 0) + " mW"});
    sink.table(anchors);

    const auto cells =
        ExperimentRunner::cells(benchWorkloads({"all"}));
    auto results = sink.run(runner, cells, [&](const RunCell &cell,
                                         RunResult &r) {
        TraceEngine engine(paperHierarchy(), nullptr);
        auto src = makeWorkload(cell.workload);
        engine.run(*src, benchRefs(cell.workload, 1'000'000));
        const double miss_rate = engine.stats().l1MissRate();
        r.set("l1_miss_rate", miss_rate);
        r.set("ltc_pj_per_access",
              m.ltcDynamicPerAccessPj(miss_rate));
        r.set("relative_dynamic", m.relativeDynamic(miss_rate));
    });

    Table table("LT-cords dynamic power relative to L1D, at measured"
                " miss rates");
    table.setHeader({"benchmark", "L1 miss rate", "LT-cords pJ/access",
                     "relative to L1D"});
    for (const auto &r : results) {
        table.addRow({r.cell.workload,
                      Table::pct(r.get("l1_miss_rate")),
                      Table::num(r.get("ltc_pj_per_access"), 1),
                      Table::pct(r.get("relative_dynamic"))});
    }
    sink.table(table);

    sink.add(std::move(results));
    sink.note("at the paper's conservative 20% miss rate: " +
              Table::pct(m.relativeDynamic(0.2)) +
              " of L1D dynamic power (paper: ~48%)");
    return sink.finish();
}
