/**
 * @file
 * Figure 10: off-chip sequence storage needed to achieve coverage,
 * for the benchmarks with the largest storage demands.
 *
 * The paper sweeps 2M..32M signatures and shows lucas/mgrid/applu
 * need the full 32M while facerec/mcf/art get by with ~2M. Our
 * footprints are ~8x smaller, so the sweep covers 32K..1M signatures;
 * the per-benchmark ordering is the reproduced result.
 */

#include <algorithm>

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

int
main(int argc, char **argv)
{
    ResultSink sink("fig10_offchip_storage", argc, argv);
    ExperimentRunner runner;

    // The paper's Figure 10 benchmark list (largest demands first).
    const auto workloads = benchWorkloads(
        {"lucas", "mgrid", "applu", "wupwise", "swim", "fma3d", "ammp",
         "equake", "facerec", "mcf", "art"});

    const std::vector<std::uint32_t> sig_capacities = {
        32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20};

    std::vector<std::string> capacity_labels;
    for (auto c : sig_capacities)
        capacity_labels.push_back(std::to_string(c >> 10) + "K sigs");

    auto results = sink.run(
        runner, ExperimentRunner::cross(workloads, capacity_labels),
        [&](const RunCell &cell, RunResult &r) {
            const std::uint32_t sigs =
                sig_capacities[ExperimentRunner::configIndex(
                    cell, sig_capacities.size())];
            LtcordsConfig cfg = paperLtcords(paperHierarchy());
            // Capacity = frames x fragment; scale the frame count.
            cfg.fragmentSignatures = 1024;
            cfg.numFrames = std::max<std::uint32_t>(
                16, sigs / cfg.fragmentSignatures);
            LtCords ltc(cfg);
            auto src = makeWorkload(cell.workload);
            auto s = runWithOpportunity(paperHierarchy(), &ltc, *src,
                                        benchRefs(cell.workload,
                                                  2'500'000));
            r.set("coverage", s.coverage());
        });

    Table table("Figure 10: coverage vs off-chip sequence storage"
                " (signatures); 100% = largest capacity");
    std::vector<std::string> header = {"benchmark"};
    for (const auto &label : capacity_labels)
        header.push_back(label);
    table.setHeader(header);

    const std::size_t stride = sig_capacities.size();
    for (std::size_t w = 0; w < workloads.size(); w++) {
        double best = 1e-9;
        for (std::size_t s = 0; s < stride; s++)
            best = std::max(best,
                            ExperimentRunner::at(results, w, s, stride)
                                .get("coverage"));
        std::vector<std::string> row = {workloads[w]};
        for (std::size_t s = 0; s < stride; s++) {
            RunResult &r = ExperimentRunner::at(results, w, s, stride);
            const double norm = r.get("coverage") / best;
            r.set("normalized", norm);
            row.push_back(Table::pct(norm, 0));
        }
        table.addRow(row);
    }
    sink.table(table);
    sink.add(std::move(results));
    return sink.finish();
}
