/**
 * @file
 * Figure 10: off-chip sequence storage needed to achieve coverage,
 * for the benchmarks with the largest storage demands.
 *
 * The paper sweeps 2M..32M signatures and shows lucas/mgrid/applu
 * need the full 32M while facerec/mcf/art get by with ~2M. Our
 * footprints are ~8x smaller, so the sweep covers 32K..1M signatures;
 * the per-benchmark ordering is the reproduced result.
 */

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

int
main()
{
    // The paper's Figure 10 benchmark list (largest demands first).
    const auto workloads = benchWorkloads(
        {"lucas", "mgrid", "applu", "wupwise", "swim", "fma3d", "ammp",
         "equake", "facerec", "mcf", "art"});

    const std::vector<std::uint32_t> sig_capacities = {
        32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20};

    Table table("Figure 10: coverage vs off-chip sequence storage"
                " (signatures); 100% = largest capacity");
    std::vector<std::string> header = {"benchmark"};
    for (auto c : sig_capacities)
        header.push_back(std::to_string(c >> 10) + "K sigs");
    table.setHeader(header);

    for (const auto &name : workloads) {
        std::vector<double> cov;
        for (const std::uint32_t sigs : sig_capacities) {
            LtcordsConfig cfg = paperLtcords(paperHierarchy());
            // Capacity = frames x fragment; scale the frame count.
            cfg.fragmentSignatures = 1024;
            cfg.numFrames = std::max<std::uint32_t>(
                16, sigs / cfg.fragmentSignatures);
            LtCords ltc(cfg);
            auto src = makeWorkload(name);
            auto s = runWithOpportunity(paperHierarchy(), &ltc, *src,
                                        benchRefs(name, 2'500'000));
            cov.push_back(s.coverage());
        }
        const double best = std::max(
            1e-9, *std::max_element(cov.begin(), cov.end()));
        std::vector<std::string> row = {name};
        for (double c : cov)
            row.push_back(Table::pct(c / best, 0));
        table.addRow(row);
    }
    emitTable(table);
    return 0;
}
