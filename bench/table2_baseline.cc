/**
 * @file
 * Table 2: benchmarks, base miss rates and IPCs.
 *
 * For every workload, the baseline (no predictor) L1D miss rate, L2
 * miss rate (fraction of L2 accesses missing) and IPC of the Table 1
 * machine.
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

int
main(int argc, char **argv)
{
    ResultSink sink("table2_baseline", argc, argv);
    ExperimentRunner runner;

    const auto cells =
        ExperimentRunner::cells(benchWorkloads({"all"}));
    auto results = sink.run(runner, cells, [](const RunCell &cell,
                                        RunResult &r) {
        TimingConfig cfg = paperTiming();
        TimingSim sim(cfg, nullptr);
        auto src = makeWorkload(cell.workload);
        sim.run(*src, benchRefs(cell.workload, 2'000'000));
        const TimingStats s = sim.stats();
        r.set("l1_miss_pct", s.accesses
            ? 100.0 * static_cast<double>(s.l1Misses) /
                static_cast<double>(s.accesses)
            : 0.0);
        r.set("l2_miss_pct", s.l1Misses
            ? 100.0 * static_cast<double>(s.l2Misses) /
                static_cast<double>(s.l1Misses)
            : 0.0);
        r.set("ipc", s.ipc);
    });

    Table table("Table 2: baseline L1/L2 miss rates and IPC");
    table.setHeader({"benchmark", "suite", "L1 miss %", "L2 miss %",
                     "IPC"});
    for (const auto &r : results) {
        const auto &info = workloadInfo(r.cell.workload);
        table.addRow({r.cell.workload, suiteName(info.suite),
                      Table::num(r.get("l1_miss_pct"), 0),
                      Table::num(r.get("l2_miss_pct"), 0),
                      Table::num(r.get("ipc"), 2)});
    }
    sink.table(table);
    sink.add(std::move(results));
    return sink.finish();
}
