/**
 * @file
 * Table 2: benchmarks, base miss rates and IPCs.
 *
 * For every workload, the baseline (no predictor) L1D miss rate, L2
 * miss rate (fraction of L2 accesses missing) and IPC of the Table 1
 * machine.
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

int
main()
{
    Table table("Table 2: baseline L1/L2 miss rates and IPC");
    table.setHeader({"benchmark", "suite", "L1 miss %", "L2 miss %",
                     "IPC"});

    for (const auto &name : benchWorkloads({"all"})) {
        const auto &info = workloadInfo(name);
        TimingConfig cfg = paperTiming();
        TimingSim sim(cfg, nullptr);
        auto src = makeWorkload(name);
        sim.run(*src, benchRefs(name, 2'000'000));
        const TimingStats s = sim.stats();
        const double l1 = s.accesses
            ? 100.0 * static_cast<double>(s.l1Misses) /
                static_cast<double>(s.accesses)
            : 0.0;
        const double l2 = s.l1Misses
            ? 100.0 * static_cast<double>(s.l2Misses) /
                static_cast<double>(s.l1Misses)
            : 0.0;
        table.addRow({name, suiteName(info.suite), Table::num(l1, 0),
                      Table::num(l2, 0), Table::num(s.ipc, 2)});
    }
    emitTable(table);
    return 0;
}
