/**
 * @file
 * Figure 11: LT-cords coverage in a multi-programmed environment.
 *
 * Pairs of benchmarks alternate in scheduling quanta with shifted
 * address spaces; on-chip and off-chip predictor state is shared and
 * persists across context switches. The reproduced result: coverage
 * is essentially unaffected as long as predictor state persists and
 * the sequence storage has room for both programs (the paper's
 * lucas+applu / lucas+mgrid pairs show the storage-pressure failure
 * mode).
 */

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/multiprog.hh"

using namespace ltc;

namespace
{

/**
 * The one predictor recipe every Fig. 11 cell uses; standalone and
 * paired cells must not drift apart in configuration, so both build
 * through here from the geometry main() computed once.
 */
std::unique_ptr<Prefetcher>
fig11Predictor(const HierarchyConfig &hier)
{
    return makePredictor("lt-cords", hier);
}

/** The paper's quantum scaled to our run lengths (~1/8 iteration). */
std::uint64_t
fig11Quantum(const std::string &name)
{
    return std::max<std::uint64_t>(
        20'000, workloadInfo(name).refsPerIteration / 4);
}

/** Standalone coverage for reference. */
double
standalone(const HierarchyConfig &hier, const std::string &name)
{
    auto pred = fig11Predictor(hier);
    auto src = makeWorkload(name);
    auto s = runWithOpportunity(hier, pred.get(), *src,
                                benchRefs(name, 3'000'000));
    return s.coverage();
}

/** Coverage of `primary` when co-scheduled with `partner`. */
double
paired(const HierarchyConfig &hier, const std::string &primary,
       const std::string &partner)
{
    MultiProgConfig cfg;
    cfg.hier = hier;
    // The paper uses 60M/120M-instruction quanta; scaled to our run
    // lengths this is ~1/8 of an iteration per switch.
    cfg.quantumRefs = {fig11Quantum(primary), fig11Quantum(partner)};
    cfg.switches = 60;
    auto pred = fig11Predictor(hier);
    std::vector<std::unique_ptr<TraceSource>> apps;
    apps.push_back(makeWorkload(primary));
    apps.push_back(makeWorkload(partner, /*seed=*/2));
    auto stats = runMultiProg(cfg, pred.get(), std::move(apps));
    return stats[0].coverage();
}

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("fig11_multiprog", argc, argv);
    ExperimentRunner runner;

    // The paper's pairings (Figure 11). Not a plain cross product,
    // so build the cell list by hand: config "" = standalone.
    const std::vector<std::pair<std::string, std::vector<std::string>>>
        pairings = {
            {"gcc", {"mcf", "gzip", "swim"}},
            {"mcf", {"gcc", "vortex", "fma3d"}},
            {"swim", {"fma3d", "mesa", "gcc"}},
            {"fma3d", {"swim", "facerec", "mcf"}},
            {"lucas", {"applu", "mgrid"}},
        };

    std::vector<RunCell> cells;
    for (const auto &[primary, partners] : pairings) {
        RunCell alone;
        alone.workload = primary;
        cells.push_back(alone);
        for (const auto &partner : partners) {
            RunCell cell;
            cell.workload = primary;
            cell.config = partner;
            cells.push_back(cell);
        }
    }
    ExperimentRunner::assignSeeds(cells);

    // One geometry for the whole figure (every cell shares it).
    const HierarchyConfig hier = paperHierarchy();

    auto results = sink.run(runner, cells, [&hier](const RunCell &cell,
                                                   RunResult &r) {
        r.set("coverage", cell.config.empty()
            ? standalone(hier, cell.workload)
            : paired(hier, cell.workload, cell.config));
    });

    Table table("Figure 11: LT-cords coverage, standalone vs"
                " multi-programmed");
    table.setHeader({"benchmark", "partner", "coverage"});
    for (const auto &r : results) {
        table.addRow({r.cell.workload,
                      r.cell.config.empty() ? "(standalone)"
                                            : "w/ " + r.cell.config,
                      Table::pct(r.get("coverage"))});
    }
    sink.table(table);
    sink.add(std::move(results));
    return sink.finish();
}
