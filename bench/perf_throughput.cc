/**
 * @file
 * Simulator throughput: references per second through each engine.
 *
 * Unlike every other bench in this directory, this one measures the
 * simulator itself, not the simulated machine: how many trace
 * references per wall-clock second the trace engine (coverage
 * taxonomy) and the timing engine (IPC) retire, per workload and
 * predictor. The paper's coverage/ordering results (Figs. 6-8) only
 * stabilize over tens of millions of references, so refs/sec is the
 * quantity that bounds every experiment's turnaround; CI uploads this
 * bench's JSON as BENCH_perf.json to track the trajectory.
 *
 * Measurement hygiene: cells run serially (one worker) regardless of
 * LTC_JOBS, so cells never compete for cores; each cell is timed
 * around engine.run() only (workload and predictor construction are
 * excluded); LTC_PERF_REPS (default 1) repeats each cell and keeps
 * the fastest repetition, squeezing out scheduler noise on shared
 * hosts. The exported numbers are wall-clock and therefore
 * machine-dependent - compare runs on one host only.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/multiprog.hh"
#include "sim/timing_engine.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

namespace
{

/** One engine x predictor configuration of the sweep. */
struct EngineConfig
{
    const char *label;     //!< config label in tables and JSON
    const char *predictor; //!< predictor name ("none" = baseline)
    bool timing;           //!< cycle engine instead of trace engine
};

/**
 * The acceptance path ("trace/none": the predictor-less per-reference
 * pipeline) first, then the predictor-heavy trace runs, then the
 * cycle engine.
 */
const EngineConfig kConfigs[] = {
    {"trace/none", "none", false},
    {"trace/lt-cords", "lt-cords", false},
    {"trace/ghb", "ghb", false},
    {"timing/none", "none", true},
    {"timing/lt-cords", "lt-cords", true},
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Repetitions per cell (fastest kept); LTC_PERF_REPS, default 1. */
unsigned
perfReps()
{
    const char *env = std::getenv("LTC_PERF_REPS");
    if (!env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 ? static_cast<unsigned>(v) : 1;
}

/**
 * One multi-tenant throughput cell: the Fig. 11 scheduling regime
 * (n tenants, ~4 rounds each, so quanta shrink as tenants multiply)
 * timed through both engine paths over the identical static
 * round-robin schedule — the batched TraceEngine::runSchedule loop
 * ("refs_per_sec") and the re-enter-run()-per-quantum reference loop
 * ("scalar_refs_per_sec", MultiProgConfig::scalarQuantums semantics).
 * The ratio is the hoisting win; at 1024 tenants each quantum is only
 * a few hundred references, the regime runSchedule exists for.
 */
void
runMultiProgCell(std::uint32_t n, RunResult &r)
{
    static constexpr std::array<const char *, 4> mix = {
        "mcf", "em3d", "gcc", "swim"};
    const double scale = n <= 8 ? 1.0 : (n <= 64 ? 0.5 : 0.25);
    std::vector<std::unique_ptr<TraceSource>> apps;
    for (std::uint32_t i = 0; i < n; i++)
        apps.push_back(makeWorkload(mix[i & 3], /*seed=*/i + 1, scale));

    MultiProgConfig cfg;
    const std::uint64_t total = refBudget(2'000'000);
    cfg.switches = static_cast<std::uint64_t>(n) * 4;
    cfg.quantumRefs.assign(
        n, std::max<std::uint64_t>(64, total / cfg.switches));
    const auto schedule = buildMultiProgSchedule(cfg);

    std::uint64_t done = 0;
    double best_batched = 0.0;
    double best_scalar = 0.0;
    {
        // Untimed warmup: touch every tenant's generator state once
        // so neither timed path pays the first-touch cost of the
        // other's measurement order.
        TraceEngine engine(paperHierarchy(), nullptr, n);
        std::vector<TraceEngine::TenantSlot> tenants(n);
        for (std::uint32_t i = 0; i < n; i++) {
            tenants[i].src = apps[i].get();
            tenants[i].bucket = i;
        }
        engine.runSchedule(tenants, schedule);
    }
    for (unsigned rep = 0; rep < perfReps(); rep++) {
        {
            for (auto &app : apps)
                app->reset();
            TraceEngine engine(paperHierarchy(), nullptr, n);
            std::vector<TraceEngine::TenantSlot> tenants(n);
            for (std::uint32_t i = 0; i < n; i++) {
                tenants[i].src = apps[i].get();
                tenants[i].bucket = i;
            }
            const auto t0 = std::chrono::steady_clock::now();
            done = engine.runSchedule(tenants, schedule);
            const double secs =
                seconds(t0, std::chrono::steady_clock::now());
            if (secs > 0.0)
                best_batched = std::max(
                    best_batched, static_cast<double>(done) / secs);
        }
        {
            for (auto &app : apps)
                app->reset();
            TraceEngine engine(paperHierarchy(), nullptr, n);
            std::uint64_t scalar_done = 0;
            const auto t0 = std::chrono::steady_clock::now();
            for (const TraceEngine::ScheduleQuantum &q : schedule) {
                engine.selectBucket(q.tenant);
                scalar_done += engine.run(*apps[q.tenant], q.refs);
            }
            const double secs =
                seconds(t0, std::chrono::steady_clock::now());
            if (secs > 0.0)
                best_scalar = std::max(
                    best_scalar,
                    static_cast<double>(scalar_done) / secs);
        }
    }

    r.set("refs", static_cast<double>(done));
    r.set("refs_per_sec", best_batched);
    r.set("scalar_refs_per_sec", best_scalar);
    r.set("speedup",
          best_scalar > 0.0 ? best_batched / best_scalar : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("perf_throughput", argc, argv);
    // Serial on purpose: parallel cells would share cores and corrupt
    // every cell's wall-clock measurement (see file comment).
    ExperimentRunner runner(1);

    std::vector<std::string> config_names;
    for (const EngineConfig &c : kConfigs)
        config_names.emplace_back(c.label);

    const std::vector<std::string> workloads =
        benchWorkloads({"swim", "mcf", "em3d", "gzip"});
    const auto cells = ExperimentRunner::cross(workloads, config_names);

    // Deliberately NOT sink.run(): refs_per_sec is a host-dependent
    // self-timed metric, so caching or resuming it across runs would
    // serve stale timings as fresh measurements.
    auto results = runner.run(cells, [](const RunCell &cell,
                                        RunResult &r) {
        const EngineConfig &cfg =
            kConfigs[ExperimentRunner::configIndex(cell,
                                                   std::size(kConfigs))];
        // The cycle engine models per-reference queue/bus state and
        // is an order of magnitude heavier; give it a smaller default
        // budget so the sweep stays in seconds.
        const std::uint64_t refs =
            refBudget(cfg.timing ? 1'000'000 : 4'000'000);

        std::uint64_t done = 0;
        double best = 0.0;
        for (unsigned rep = 0; rep < perfReps(); rep++) {
            // Fresh engine and stream per repetition: every rep
            // simulates the identical work from cold caches.
            auto src = makeWorkload(cell.workload);
            auto pred =
                makePredictor(cfg.predictor, paperHierarchy(),
                              /*model_stream_latency=*/cfg.timing);
            double secs = 0.0;
            if (cfg.timing) {
                TimingSim sim(paperTiming(), pred.get());
                const auto t0 = std::chrono::steady_clock::now();
                done = sim.run(*src, refs);
                secs = seconds(t0, std::chrono::steady_clock::now());
            } else {
                TraceEngine engine(paperHierarchy(), pred.get());
                const auto t0 = std::chrono::steady_clock::now();
                done = engine.run(*src, refs);
                secs = seconds(t0, std::chrono::steady_clock::now());
            }
            if (secs > 0.0)
                best = std::max(best,
                                static_cast<double>(done) / secs);
        }

        r.set("refs", static_cast<double>(done));
        r.set("refs_per_sec", best);
    });

    Table table("Simulator throughput (Mrefs/s of wall clock;"
                " higher is faster)");
    std::vector<std::string> header = {"benchmark"};
    header.insert(header.end(), config_names.begin(),
                  config_names.end());
    table.setHeader(header);

    const std::size_t stride = std::size(kConfigs);
    std::vector<double> base_mrps; // trace/none, the acceptance path
    for (std::size_t w = 0; w < workloads.size(); w++) {
        std::vector<std::string> row = {workloads[w]};
        for (std::size_t c = 0; c < stride; c++) {
            const double mrps =
                ExperimentRunner::at(results, w, c, stride)
                    .get("refs_per_sec") /
                1e6;
            if (c == 0)
                base_mrps.push_back(mrps);
            row.push_back(Table::num(mrps, 2));
        }
        table.addRow(row);
    }
    sink.table(table);

    // Multi-tenant engine cells: the batched schedule loop vs the
    // scalar per-quantum reference path, at 2 / 64 / 1024 tenants.
    const std::vector<std::uint32_t> tenant_counts = {2, 64, 1024};
    std::vector<RunCell> mp_cells;
    for (std::uint32_t n : tenant_counts) {
        RunCell cell;
        cell.workload = "multiprog";
        cell.config = "t";
        cell.config += std::to_string(n);
        mp_cells.push_back(cell);
    }
    ExperimentRunner::assignSeeds(mp_cells);

    auto mp_results = runner.run(
        mp_cells, [&tenant_counts](const RunCell &cell, RunResult &r) {
            runMultiProgCell(tenant_counts[cell.index], r);
        });

    Table mp_table("Multi-tenant engine throughput (Mrefs/s;"
                   " batched runSchedule vs scalar per-quantum)");
    mp_table.setHeader(
        {"tenants", "batched", "scalar", "speedup"});
    double speedup64 = 0.0;
    for (const auto &r : mp_results) {
        mp_table.addRow(
            {r.cell.config.substr(1),
             Table::num(r.get("refs_per_sec") / 1e6, 2),
             Table::num(r.get("scalar_refs_per_sec") / 1e6, 2),
             Table::num(r.get("speedup"), 2) + "x"});
        if (r.cell.config == "t64")
            speedup64 = r.get("speedup");
    }
    sink.table(mp_table);
    std::string mp_note =
        "multiprog at 64 tenants: batched schedule loop is ";
    mp_note += Table::num(speedup64, 2);
    mp_note += "x the scalar per-quantum path on the identical "
               "interleaving";
    sink.note(mp_note);
    sink.add(std::move(mp_results));

    sink.add(std::move(results));
    sink.note("trace/none (predictor-less trace engine, the batched-"
              "kernel acceptance path): " +
              Table::num(amean(base_mrps), 2) +
              " Mrefs/s mean over " +
              std::to_string(workloads.size()) +
              " workloads; wall-clock numbers, compare on one host "
              "only");
    return sink.finish();
}
