/**
 * @file
 * Figure 7: last-touch to cache-miss correlation distance, as a
 * cumulative percentage of all misses.
 *
 * The paper: only ~21% of misses are perfectly correlated (+1) with
 * the last touches that precede them, but ~98% fall within +-1K —
 * the reordering LT-cords' signature cache must absorb when
 * following sequences recorded in miss order (Section 5.2).
 */

#include "analysis/correlation.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"

using namespace ltc;

namespace
{

/** Per-workload product: scalar record plus the full histogram. */
struct LastTouchCell
{
    RunResult result;
    Log2Histogram hist{40};
};

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("fig7_lasttouch_order", argc, argv);
    ExperimentRunner runner;

    const auto workloads = benchWorkloads({"all"});
    auto cells = ExperimentRunner::cells(workloads);

    auto per_cell = runner.map<LastTouchCell>(
        cells.size(), [&](std::size_t i) {
            const RunCell &cell = cells[i];
            LastTouchCell out;
            out.result.cell = cell;

            CorrelationAnalysis ca(CacheConfig::l1d());
            auto src = makeWorkload(cell.workload);
            ca.run(*src, benchRefs(cell.workload, 3'000'000));
            auto result = ca.finish();
            out.hist = result.lastTouchDistance;
            if (out.hist.samples() != 0) {
                out.result.set("within_1", out.hist.cdfAt(1));
                out.result.set("within_16", out.hist.cdfAt(16));
                out.result.set("within_256", out.hist.cdfAt(256));
                out.result.set("within_1k", out.hist.cdfAt(1024));
            }
            return out;
        });

    Log2Histogram combined(40);
    Table per("Figure 7 (per benchmark): |last-touch to miss"
              " correlation distance|");
    per.setHeader({"benchmark", "<=1", "<=16", "<=256", "<=1K"});

    std::vector<RunResult> records;
    for (auto &c : per_cell) {
        if (c.hist.samples() == 0) {
            per.addRow({c.result.cell.workload, "-", "-", "-", "-"});
        } else {
            per.addRow({c.result.cell.workload,
                        Table::pct(c.hist.cdfAt(1)),
                        Table::pct(c.hist.cdfAt(16)),
                        Table::pct(c.hist.cdfAt(256)),
                        Table::pct(c.hist.cdfAt(1024))});
            combined.merge(c.hist);
        }
        records.push_back(std::move(c.result));
    }
    sink.table(per);

    Table avg("Figure 7: CDF of |last-touch to miss correlation"
              " distance|, average");
    avg.setHeader({"|distance| <=", "CDF of misses"});
    for (const auto &[upper, frac] : combined.cdfSeries())
        avg.addRow({std::to_string(upper), Table::pct(frac)});
    sink.table(avg);

    sink.add(std::move(records));
    sink.note("perfectly ordered (distance <= 1): " +
              Table::pct(combined.cdfAt(1)) +
              " of misses (paper: ~21% at exactly +1)");
    sink.note("within +-1K: " + Table::pct(combined.cdfAt(1024)) +
              " of misses (paper: >98%)");
    return sink.finish();
}
