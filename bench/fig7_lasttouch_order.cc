/**
 * @file
 * Figure 7: last-touch to cache-miss correlation distance, as a
 * cumulative percentage of all misses.
 *
 * The paper: only ~21% of misses are perfectly correlated (+1) with
 * the last touches that precede them, but ~98% fall within +-1K —
 * the reordering LT-cords' signature cache must absorb when
 * following sequences recorded in miss order (Section 5.2).
 */

#include "analysis/correlation.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"

using namespace ltc;

int
main()
{
    const auto workloads = benchWorkloads({"all"});

    Log2Histogram combined(40);
    std::uint64_t perfect = 0;

    Table per("Figure 7 (per benchmark): |last-touch to miss"
              " correlation distance|");
    per.setHeader({"benchmark", "<=1", "<=16", "<=256", "<=1K"});

    for (const auto &name : workloads) {
        CorrelationAnalysis ca(CacheConfig::l1d());
        auto src = makeWorkload(name);
        ca.run(*src, benchRefs(name, 3'000'000));
        auto result = ca.finish();
        const auto &h = result.lastTouchDistance;
        if (h.samples() == 0) {
            per.addRow({name, "-", "-", "-", "-"});
            continue;
        }
        per.addRow({name, Table::pct(h.cdfAt(1)),
                    Table::pct(h.cdfAt(16)), Table::pct(h.cdfAt(256)),
                    Table::pct(h.cdfAt(1024))});
        for (unsigned b = 0; b < h.numBuckets(); b++)
            combined.sample(b == 0 ? 0 : (1ull << b) - 1, h.bucket(b));
        perfect += static_cast<std::uint64_t>(
            h.cdfAt(1) * static_cast<double>(h.samples()));
    }
    emitTable(per);

    Table avg("Figure 7: CDF of |last-touch to miss correlation"
              " distance|, average");
    avg.setHeader({"|distance| <=", "CDF of misses"});
    for (const auto &[upper, frac] : combined.cdfSeries())
        avg.addRow({std::to_string(upper), Table::pct(frac)});
    emitTable(avg);

    std::printf("perfectly ordered (distance <= 1): %s of misses "
                "(paper: ~21%% at exactly +1)\n",
                Table::pct(combined.cdfAt(1)).c_str());
    std::printf("within +-1K: %s of misses (paper: >98%%)\n",
                Table::pct(combined.cdfAt(1024)).c_str());
    return 0;
}
