/**
 * @file
 * Figure 4: sensitivity of DBCP to on-chip correlation table size,
 * normalized to DBCP with unlimited storage; average and worst case.
 *
 * The paper sweeps 160KB..320MB and finds DBCP needs ~160MB to reach
 * full potential, with wupwise as the worst case. Our workloads are
 * ~8x scaled down, so the sweep covers a correspondingly scaled
 * range; the shape — coverage crawls until the table approaches the
 * benchmark's signature footprint — is the reproduced result.
 */

#include "bench_common.hh"
#include "pred/dbcp.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

int
main()
{
    // Default subset includes the worst case (wupwise) and a spread
    // of footprint classes; LTC_WORKLOADS=all for the full suite.
    const auto workloads = benchWorkloads(
        {"swim", "mcf", "em3d", "facerec", "lucas", "applu",
         "treeadd", "wupwise"});

    const std::vector<std::uint64_t> sizesKb = {
        16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};

    // Oracle coverage per workload.
    std::vector<double> oracle;
    for (const auto &name : workloads) {
        Dbcp dbcp(DbcpConfig{});
        auto src = makeWorkload(name);
        auto stats = runWithOpportunity(paperHierarchy(), &dbcp, *src,
                                        benchRefs(name));
        oracle.push_back(std::max(stats.coverage(), 1e-9));
    }

    Table table("Figure 4: DBCP coverage vs on-chip table size,"
                " normalized to unlimited DBCP");
    table.setHeader({"table size", "avg % of achievable",
                     "worst-case % (workload)"});

    for (const std::uint64_t kb : sizesKb) {
        std::vector<double> normalized;
        double worst = 2.0;
        std::string worst_name;
        for (std::size_t i = 0; i < workloads.size(); i++) {
            DbcpConfig cfg;
            cfg.tableEntries = DbcpConfig::entriesForBytes(kb * 1024);
            Dbcp dbcp(cfg);
            auto src = makeWorkload(workloads[i]);
            auto stats = runWithOpportunity(paperHierarchy(), &dbcp,
                                            *src,
                                            benchRefs(workloads[i]));
            const double norm = stats.coverage() / oracle[i];
            normalized.push_back(norm);
            if (norm < worst) {
                worst = norm;
                worst_name = workloads[i];
            }
        }
        table.addRow({std::to_string(kb) + "KB",
                      Table::pct(amean(normalized)),
                      Table::pct(worst) + " (" + worst_name + ")"});
    }
    emitTable(table);
    return 0;
}
