/**
 * @file
 * Figure 4: sensitivity of DBCP to on-chip correlation table size,
 * normalized to DBCP with unlimited storage; average and worst case.
 *
 * The paper sweeps 160KB..320MB and finds DBCP needs ~160MB to reach
 * full potential, with wupwise as the worst case. Our workloads are
 * ~8x scaled down, so the sweep covers a correspondingly scaled
 * range; the shape — coverage crawls until the table approaches the
 * benchmark's signature footprint — is the reproduced result.
 */

#include "bench_common.hh"
#include "pred/dbcp.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

int
main(int argc, char **argv)
{
    ResultSink sink("fig4_dbcp_storage", argc, argv);
    ExperimentRunner runner;

    // Default subset includes the worst case (wupwise) and a spread
    // of footprint classes; LTC_WORKLOADS=all for the full suite.
    const auto workloads = benchWorkloads(
        {"swim", "mcf", "em3d", "facerec", "lucas", "applu",
         "treeadd", "wupwise"});

    const std::vector<std::uint64_t> sizesKb = {
        16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};

    // One sweep: config 0 is the unlimited-table oracle, the rest
    // are the finite sizes. Folding both passes into one cell list
    // keeps every exported record's cell index unique.
    std::vector<std::string> configs = {"unlimited"};
    for (const std::uint64_t kb : sizesKb)
        configs.push_back(std::to_string(kb) + "KB");
    const std::size_t stride = configs.size();

    auto results = sink.run(
        runner, ExperimentRunner::cross(workloads, configs),
        [&](const RunCell &cell, RunResult &r) {
            const std::size_t c =
                ExperimentRunner::configIndex(cell, stride);
            DbcpConfig cfg; // default: unlimited table
            if (c > 0)
                cfg.tableEntries = DbcpConfig::entriesForBytes(
                    sizesKb[c - 1] * 1024);
            Dbcp dbcp(cfg);
            auto src = makeWorkload(cell.workload);
            auto stats = runWithOpportunity(paperHierarchy(), &dbcp,
                                            *src,
                                            benchRefs(cell.workload));
            r.set("coverage", stats.coverage());
        });

    for (auto &r : results) {
        const std::size_t w =
            ExperimentRunner::workloadIndex(r.cell, stride);
        const double oracle = std::max(
            ExperimentRunner::at(results, w, 0, stride)
                .get("coverage"),
            1e-9);
        r.set("normalized", r.get("coverage") / oracle);
    }

    Table table("Figure 4: DBCP coverage vs on-chip table size,"
                " normalized to unlimited DBCP");
    table.setHeader({"table size", "avg % of achievable",
                     "worst-case % (workload)"});

    for (std::size_t s = 1; s < stride; s++) {
        std::vector<double> normalized;
        double worst = 2.0;
        std::string worst_name;
        for (std::size_t w = 0; w < workloads.size(); w++) {
            const double norm =
                ExperimentRunner::at(results, w, s, stride)
                    .get("normalized");
            normalized.push_back(norm);
            if (norm < worst) {
                worst = norm;
                worst_name = workloads[w];
            }
        }
        table.addRow({configs[s], Table::pct(amean(normalized)),
                      Table::pct(worst) + " (" + worst_name + ")"});
    }
    sink.table(table);
    sink.add(std::move(results));
    return sink.finish();
}
