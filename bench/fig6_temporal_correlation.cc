/**
 * @file
 * Figure 6: temporal correlation of L1D cache misses.
 *
 * Left plot: CDF of absolute temporal correlation distance of all
 * misses (distance +1 = perfect repetition). Right plot: lengths of
 * correlated-miss sequences (distance within +-16) for applications
 * with more than 5% uncorrelated misses.
 */

#include "analysis/correlation.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"

using namespace ltc;

namespace
{

/** Per-workload product: scalar record plus result histograms. */
struct CorrelationCell
{
    RunResult result;
    Log2Histogram distance{40};
    Log2Histogram sequenceLength{40};
};

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("fig6_temporal_correlation", argc, argv);
    ExperimentRunner runner;

    const auto workloads = benchWorkloads({"all"});
    auto cells = ExperimentRunner::cells(workloads);

    auto per_cell = runner.map<CorrelationCell>(
        cells.size(), [&](std::size_t i) {
            const RunCell &cell = cells[i];
            CorrelationCell out;
            out.result.cell = cell;

            CorrelationAnalysis ca(CacheConfig::l1d(), 16);
            auto src = makeWorkload(cell.workload);
            ca.run(*src, benchRefs(cell.workload, 3'000'000));
            auto result = ca.finish();

            out.distance = result.distance;
            out.sequenceLength = result.sequenceLength;
            out.result.set("misses",
                           static_cast<double>(result.misses));
            out.result.set("perfect_frac", result.perfectFraction());
            out.result.set("within_16",
                (1.0 - result.uncorrelatedFraction()) *
                    result.distance.cdfAt(16));
            out.result.set("within_256",
                (1.0 - result.uncorrelatedFraction()) *
                    result.distance.cdfAt(256));
            out.result.set("uncorrelated_frac",
                           result.uncorrelatedFraction());
            return out;
        });

    Table left("Figure 6 (left): temporal correlation distance"
               " of all cache misses");
    left.setHeader({"benchmark", "misses", "perfect (+1)",
                    "|dist|<=16", "|dist|<=256", "uncorrelated"});

    std::vector<const CorrelationCell *> imperfect;
    for (const auto &c : per_cell) {
        const RunResult &r = c.result;
        left.addRow({r.cell.workload,
                     std::to_string(static_cast<std::uint64_t>(
                         r.get("misses"))),
                     Table::pct(r.get("perfect_frac")),
                     Table::pct(r.get("within_16")),
                     Table::pct(r.get("within_256")),
                     Table::pct(r.get("uncorrelated_frac"))});
        if (r.get("uncorrelated_frac") > 0.05)
            imperfect.push_back(&c);
    }
    sink.table(left);

    Table right("Figure 6 (right): correlated-sequence lengths for"
                " benchmarks with >5% uncorrelated misses");
    right.setHeader({"benchmark", "p50 length", "p90 length",
                     ">=2K frac", ">=32K frac"});
    for (const CorrelationCell *c : imperfect) {
        const auto &lengths = c->sequenceLength;
        if (lengths.samples() == 0) {
            right.addRow({c->result.cell.workload, "-", "-", "-",
                          "-"});
            continue;
        }
        right.addRow({c->result.cell.workload,
                      std::to_string(lengths.percentile(0.5)),
                      std::to_string(lengths.percentile(0.9)),
                      Table::pct(1.0 - lengths.cdfAt(2047)),
                      Table::pct(1.0 - lengths.cdfAt(32767))});
    }
    sink.table(right);

    std::vector<RunResult> records;
    for (auto &c : per_cell)
        records.push_back(std::move(c.result));
    sink.add(std::move(records));
    return sink.finish();
}
