/**
 * @file
 * Figure 6: temporal correlation of L1D cache misses.
 *
 * Left plot: CDF of absolute temporal correlation distance of all
 * misses (distance +1 = perfect repetition). Right plot: lengths of
 * correlated-miss sequences (distance within +-16) for applications
 * with more than 5% uncorrelated misses.
 */

#include "analysis/correlation.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"

using namespace ltc;

int
main()
{
    const auto workloads = benchWorkloads({"all"});

    Table left("Figure 6 (left): temporal correlation distance"
               " of all cache misses");
    left.setHeader({"benchmark", "misses", "perfect (+1)",
                    "|dist|<=16", "|dist|<=256", "uncorrelated"});

    struct SeqRow
    {
        std::string name;
        Log2Histogram lengths;
    };
    std::vector<SeqRow> imperfect;

    for (const auto &name : workloads) {
        CorrelationAnalysis ca(CacheConfig::l1d(), 16);
        auto src = makeWorkload(name);
        ca.run(*src, benchRefs(name, 3'000'000));
        auto result = ca.finish();

        left.addRow({name, std::to_string(result.misses),
                     Table::pct(result.perfectFraction()),
                     Table::pct((1.0 - result.uncorrelatedFraction()) *
                                result.distance.cdfAt(16)),
                     Table::pct((1.0 - result.uncorrelatedFraction()) *
                                result.distance.cdfAt(256)),
                     Table::pct(result.uncorrelatedFraction())});

        if (result.uncorrelatedFraction() > 0.05)
            imperfect.push_back({name, result.sequenceLength});
    }
    emitTable(left);

    Table right("Figure 6 (right): correlated-sequence lengths for"
                " benchmarks with >5% uncorrelated misses");
    right.setHeader({"benchmark", "p50 length", "p90 length",
                     ">=2K frac", ">=32K frac"});
    for (auto &row : imperfect) {
        if (row.lengths.samples() == 0) {
            right.addRow({row.name, "-", "-", "-", "-"});
            continue;
        }
        right.addRow({row.name,
                      std::to_string(row.lengths.percentile(0.5)),
                      std::to_string(row.lengths.percentile(0.9)),
                      Table::pct(1.0 - row.lengths.cdfAt(2047)),
                      Table::pct(1.0 - row.lengths.cdfAt(32767))});
    }
    emitTable(right);
    return 0;
}
