/**
 * @file
 * Figure 11 scaled out: LT-cords under 2 to 1024 co-scheduled
 * tenants.
 *
 * The paper's multi-programmed study (Section 5.5) stops at pairs;
 * this sweep pushes the same shared-predictor setup through the
 * batched multi-tenant engine loop (TraceEngine::runSchedule) to a
 * thousand tenants with deterministic churn (arrivals, deaths and
 * out-of-order context swaps drawn from the cell seed), and contrasts
 * the shared signature cache against per-tenant set-slice
 * partitioning (LtcordsConfig::sigCachePartitions). Tracked per cell:
 * aggregate coverage, bus overhead (Fig. 12's categories over base
 * data) and cross-tenant sequence-storage interference.
 *
 * Knobs: LTC_TENANTS (comma-separated tenant counts, default
 * "2,8,64,256,1024") on top of the usual LTC_REFS / LTC_JSON /
 * LTC_CELL_CACHE set.
 */

#include <array>
#include <cstdlib>

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/multiprog.hh"

using namespace ltc;

namespace
{

/** Tenant counts to sweep (LTC_TENANTS override). */
std::vector<std::uint32_t>
tenantCounts()
{
    const char *env = std::getenv("LTC_TENANTS");
    if (!env)
        return {2, 8, 64, 256, 1024};
    std::vector<std::uint32_t> counts;
    std::uint32_t value = 0;
    bool have = false;
    for (const char *p = env;; p++) {
        if (*p >= '0' && *p <= '9') {
            value = value * 10 + static_cast<std::uint32_t>(*p - '0');
            have = true;
        } else if (*p == ',' || *p == '\0') {
            if (have && value >= 2)
                counts.push_back(value);
            value = 0;
            have = false;
            if (*p == '\0')
                break;
        }
    }
    if (counts.empty())
        counts = {2, 8, 64, 256, 1024};
    return counts;
}

/** One scaled Fig. 11 cell: n tenants, shared or partitioned. */
void
runScaleCell(const HierarchyConfig &hier, std::uint32_t n,
             const RunCell &cell, RunResult &r)
{
    const bool partitioned = cell.config == "part";

    MultiProgConfig cfg;
    cfg.hier = hier;
    // Tenant mix: the chase/stream-heavy quartet, cycling, each with
    // its own seed (distinct layouts) and a footprint that shrinks as
    // the tenant count grows so the sweep's total memory stays
    // bounded.
    static constexpr std::array<const char *, 4> mix = {
        "mcf", "em3d", "gcc", "swim"};
    const double scale = n <= 8 ? 1.0 : (n <= 64 ? 0.5 : 0.25);
    std::vector<std::unique_ptr<TraceSource>> apps;
    for (std::uint32_t i = 0; i < n; i++)
        apps.push_back(
            makeWorkload(mix[i & 3], /*seed=*/i + 1, scale));

    // Constant total work regardless of tenant count: every tenant
    // is scheduled ~4 rounds, so quanta shrink as tenants multiply
    // (the regime the batched engine loop exists for).
    const std::uint64_t total = refBudget(2'000'000);
    cfg.switches = static_cast<std::uint64_t>(n) * 4;
    cfg.quantumRefs.assign(
        n, std::max<std::uint64_t>(64, total / cfg.switches));
    cfg.churnSeed = cell.seed;

    LtcordsConfig lc = paperLtcords(hier, false);
    lc.sigCachePartitions = partitioned ? n : 1;
    LtCords pred(lc);

    const auto stats = runMultiProg(cfg, &pred, std::move(apps));

    std::uint64_t correct = 0;
    std::uint64_t opportunity = 0;
    std::uint64_t base_bytes = 0;
    std::uint64_t over_bytes = 0;
    for (const CoverageStats &s : stats) {
        correct += s.correct;
        opportunity += s.opportunity;
        base_bytes += s.traffic.bytes(Traffic::BaseData);
        over_bytes += s.traffic.bytes(Traffic::IncorrectPrefetch) +
            s.traffic.bytes(Traffic::SequenceCreate) +
            s.traffic.bytes(Traffic::SequenceFetch);
    }
    r.set("coverage", opportunity
        ? static_cast<double>(correct) /
            static_cast<double>(opportunity)
        : 0.0);
    r.set("bus_overhead", base_bytes
        ? static_cast<double>(over_bytes) /
            static_cast<double>(base_bytes)
        : 0.0);
    r.set("cross_tenant_conflicts",
          static_cast<double>(pred.storage().crossTenantConflicts()));
    r.set("frames_in_use",
          static_cast<double>(pred.storage().framesInUse()));
}

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("fig11_scale", argc, argv);
    ExperimentRunner runner;

    const std::vector<std::uint32_t> counts = tenantCounts();
    std::vector<std::string> labels;
    for (std::uint32_t n : counts) {
        std::string label = "t";
        label += std::to_string(n);
        labels.push_back(std::move(label));
    }
    const std::vector<std::string> configs = {"shared", "part"};
    auto cells = ExperimentRunner::cross(labels, configs);

    // One geometry for the whole sweep.
    const HierarchyConfig hier = paperHierarchy();

    auto results = sink.run(
        runner, cells,
        [&](const RunCell &cell, RunResult &r) {
            const std::size_t which =
                ExperimentRunner::workloadIndex(cell, configs.size());
            runScaleCell(hier, counts[which], cell, r);
        });

    Table table("Figure 11 scaled: LT-cords coverage vs tenant count");
    table.setHeader({"tenants", "sig cache", "coverage",
                     "bus overhead", "x-tenant conflicts"});
    for (const auto &r : results) {
        table.addRow({r.cell.workload.substr(1),
                      r.cell.config == "part" ? "partitioned"
                                              : "shared",
                      Table::pct(r.get("coverage")),
                      Table::pct(r.get("bus_overhead")),
                      Table::num(r.get("cross_tenant_conflicts"), 0)});
    }
    sink.table(table);

    const auto &last_shared = results[results.size() - 2];
    const auto &last_part = results.back();
    std::string note = "at ";
    note += last_shared.cell.workload.substr(1);
    note += " tenants: coverage ";
    note += Table::pct(last_shared.get("coverage"));
    note += " shared vs ";
    note += Table::pct(last_part.get("coverage"));
    note += " partitioned; conflicts ";
    note += Table::num(last_shared.get("cross_tenant_conflicts"), 0);
    note += " vs ";
    note += Table::num(last_part.get("cross_tenant_conflicts"), 0);
    sink.note(note);
    sink.add(std::move(results));
    return sink.finish();
}
