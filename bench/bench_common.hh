/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures. Common knobs (environment variables):
 *
 *   LTC_WORKLOADS  comma-separated names, "all", or "quick"
 *                  (sensitivity sweeps default to a representative
 *                  subset to keep runtimes in seconds; set "all" to
 *                  reproduce with the full suite)
 *   LTC_REFS       reference budget override (suffixes k/m/g)
 */

#ifndef LTC_BENCH_BENCH_COMMON_HH
#define LTC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "trace/workloads.hh"
#include "util/table.hh"

namespace ltc
{

/** Per-workload reference budget, capped for sweep-style benches. */
inline std::uint64_t
benchRefs(const std::string &workload,
          std::uint64_t cap = 4'000'000)
{
    const std::uint64_t suggested = suggestedRefs(workload);
    return refBudget(std::min(suggested, cap));
}

/**
 * Workload selection for a bench: LTC_WORKLOADS wins; otherwise the
 * bench's own default list ("all" = full catalogue).
 */
inline std::vector<std::string>
benchWorkloads(const std::vector<std::string> &fallback)
{
    if (std::getenv("LTC_WORKLOADS"))
        return selectedWorkloads();
    if (fallback.size() == 1 && fallback[0] == "all")
        return workloadNames();
    return fallback;
}

/** Emit a table in both human and CSV form. */
inline void
emitTable(const Table &table)
{
    std::fputs(table.render().c_str(), stdout);
    std::fputs("\n[csv]\n", stdout);
    std::fputs(table.csv().c_str(), stdout);
    std::fputs("\n", stdout);
}

} // namespace ltc

#endif // LTC_BENCH_BENCH_COMMON_HH
