/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures by sweeping (workload x config) cells through the
 * experiment runner (sim/runner.hh). Common knobs (environment
 * variables):
 *
 *   LTC_WORKLOADS  comma-separated names, "all", or "quick"
 *                  (sensitivity sweeps default to a representative
 *                  subset to keep runtimes in seconds; set "all" to
 *                  reproduce with the full suite)
 *   LTC_REFS       reference budget override (suffixes k/m/g)
 *   LTC_JOBS       worker threads for the sweep (default: all
 *                  hardware threads); results are bit-identical for
 *                  any value
 *   LTC_JSON       path for the machine-readable JSON export
 *                  ("-" = stdout); also `--json <path>` on the
 *                  command line
 *   LTC_CSV        path for the per-cell CSV export ("-" = stdout);
 *                  also `--csv <path>`
 *   LTC_TRACE_DIR  directory of captured .ltct trace containers;
 *                  each is registered as workload "trace:<stem>"
 *                  and swept like a built-in (also `--trace-dir`)
 *   LTC_CELL_CACHE directory of the content-addressed cell cache
 *                  (sim/cell_store.hh; also `--cell-cache <dir>`):
 *                  sweeps consult it before simulating, so repeat
 *                  runs skip finished cells and killed runs resume
 *   LTC_SWEEP_PROCS run cached sweeps with N cooperating processes
 *                  (also `--procs <n>`; needs LTC_CELL_CACHE);
 *                  exports stay byte-identical for any N
 *   LTC_CELL_STATS print one `[cell-cache] ... sims=N ...` counter
 *                  line to stderr at finish()
 */

#ifndef LTC_BENCH_BENCH_COMMON_HH
#define LTC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

namespace ltc
{

/** Per-workload reference budget, capped for sweep-style benches. */
inline std::uint64_t
benchRefs(const std::string &workload,
          std::uint64_t cap = 4'000'000)
{
    const std::uint64_t suggested = suggestedRefs(workload);
    return refBudget(std::min(suggested, cap));
}

/**
 * Workload selection for a bench: LTC_WORKLOADS wins; otherwise the
 * bench's own default list ("all" = full catalogue).
 */
inline std::vector<std::string>
benchWorkloads(const std::vector<std::string> &fallback)
{
    if (std::getenv("LTC_WORKLOADS"))
        return selectedWorkloads();
    if (fallback.size() == 1 && fallback[0] == "all")
        return workloadNames();
    return fallback;
}

/**
 * For a workloads-major sweep with @p stride configs per workload
 * whose *first* config is the normalization baseline, set a
 * "gain_pct" metric (100 * (ipc / base_ipc - 1)) on every non-base
 * cell.
 */
inline void
setGainsVsBase(std::vector<RunResult> &results, std::size_t stride)
{
    for (std::size_t i = 0; i < results.size(); i++) {
        if (i % stride == 0)
            continue; // the baseline cell itself
        const double base = results[(i / stride) * stride].get("ipc");
        results[i].set("gain_pct", base > 0
            ? (results[i].get("ipc") / base - 1.0) * 100.0
            : 0.0);
    }
}

} // namespace ltc

#endif // LTC_BENCH_BENCH_COMMON_HH
